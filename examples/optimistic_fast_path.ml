(* The optimistic fast path in action (the paper's Section 6 future work).

   Phase 1: the sequencer (party 0) is honest and the WAN is timely — each
   message costs one verifiable consistent broadcast plus an ACK round, an
   order of magnitude below the randomized protocol.

   Phase 2: the sequencer crashes mid-stream.  Complaints end the epoch,
   one recovery agreement fixes a common cut, and epoch 1 resumes at
   fast-path speed under the next leader.  Nothing is lost, nothing is
   duplicated.

     dune exec examples/optimistic_fast_path.exe *)

open Sintra

let () =
  let n = 4 in
  let cfg = Config.test ~n ~t:1 () in
  let topo = Sim.Topology.internet in
  let cluster = Cluster.create ~seed:"fast-path" ~topo cfg in

  let logs = Array.init n (fun _ -> ref []) in
  let chans =
    Array.init n (fun i ->
      Optimistic_channel.create ~timeout:6.0 (Cluster.runtime cluster i)
        ~pid:"demo"
        ~on_deliver:(fun ~sender msg ->
          logs.(i) := (Cluster.now cluster, sender, msg) :: !(logs.(i)))
        ())
  in

  (* Phase 1: ten messages under the honest sequencer. *)
  for k = 0 to 9 do
    Cluster.at cluster ~time:(0.3 *. float_of_int k) (fun () ->
      Cluster.inject cluster 1 (fun () ->
        Optimistic_channel.send chans.(1) (Printf.sprintf "fast-%d" k)))
  done;

  (* Phase 2: the sequencer dies at t=4s with traffic still flowing. *)
  Cluster.at cluster ~time:4.0 (fun () ->
    print_endline ">>> t=4.0s: crashing the epoch-0 sequencer (party 0)";
    Cluster.crash cluster 0);
  for k = 0 to 4 do
    Cluster.at cluster ~time:(4.2 +. (0.3 *. float_of_int k)) (fun () ->
      Cluster.inject cluster 2 (fun () ->
        Optimistic_channel.send chans.(2) (Printf.sprintf "after-crash-%d" k)))
  done;

  ignore (Cluster.run cluster ~until:600.0);

  Printf.printf "\ndeliveries at party 1 (leader of epoch 1):\n";
  List.iter
    (fun (time, sender, msg) -> Printf.printf "  t=%7.2fs  P%d  %s\n" time sender msg)
    (List.rev !(logs.(1)));

  Printf.printf "\nepoch: %d (leader now P%d)   fast-path deliveries: %d   recovered: %d\n"
    (Optimistic_channel.current_epoch chans.(1))
    (Optimistic_channel.current_leader chans.(1))
    (Optimistic_channel.deliveries_fast chans.(1))
    (Optimistic_channel.deliveries_recovered chans.(1));

  (* Safety check: the three live parties hold identical sequences. *)
  let strip l = List.rev_map (fun (_, s, m) -> (s, m)) !l in
  if strip logs.(1) = strip logs.(2) && strip logs.(2) = strip logs.(3) then
    print_endline "all live parties agree on the order despite the crash."
  else begin
    prerr_endline "order divergence!";
    exit 1
  end
