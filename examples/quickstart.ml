(* Quickstart: secure state-machine replication in ~40 lines.

   Four servers (one of which crashes mid-run) atomically broadcast client
   commands; every honest server delivers the identical sequence, even
   though the network is fully asynchronous and delivery order is decided
   by randomized Byzantine agreement.

     dune exec examples/quickstart.exe *)

open Sintra

let () =
  (* n = 4 servers tolerating t = 1 Byzantine fault; a uniform ~10 ms
     network.  All keys come from the (deterministic, seeded) dealer. *)
  let cfg = Config.test ~n:4 ~t:1 () in
  let topo = Sim.Topology.uniform ~count:4 () in
  let cluster = Cluster.create ~seed:"quickstart" ~topo cfg in

  (* One atomic broadcast channel, one delivery log per server. *)
  let logs = Array.init 4 (fun _ -> ref []) in
  let channels =
    Array.init 4 (fun i ->
      Atomic_channel.create (Cluster.runtime cluster i) ~pid:"demo"
        ~on_deliver:(fun ~sender msg ->
          logs.(i) := Printf.sprintf "P%d:%s" sender msg :: !(logs.(i)))
        ())
  in

  (* Three servers broadcast concurrently... *)
  List.iter
    (fun (server, msg) ->
      Cluster.inject cluster server (fun () ->
        Atomic_channel.send channels.(server) msg))
    [ (0, "credit alice 100"); (1, "debit bob 40"); (2, "credit carol 7");
      (0, "debit alice 60"); (1, "credit bob 5") ];

  (* ...and server 3 crashes before doing anything useful. *)
  Cluster.crash cluster 3;

  let events = Cluster.run cluster in
  Printf.printf "simulation: %d events, %.3f virtual seconds\n\n"
    events (Cluster.now cluster);

  for i = 0 to 2 do
    Printf.printf "server %d delivered: %s\n" i
      (String.concat " | " (List.rev !(logs.(i))))
  done;
  let seqs = List.init 3 (fun i -> List.rev !(logs.(i))) in
  match seqs with
  | first :: rest when List.for_all (( = ) first) rest ->
    Printf.printf "\nall honest servers agree on the order. state machine replicated.\n"
  | _ ->
    prerr_endline "DISAGREEMENT - this should be impossible";
    exit 1
