(* A replicated key-value store on top of SINTRA's atomic broadcast — the
   state-machine replication pattern of Section 2.5.

   Each replica applies SET/DEL commands in atomic delivery order, so all
   honest replicas hold byte-identical state although commands arrive from
   different frontends concurrently and one replica actively lies on the
   network (its forged frontend commands carry bad signatures and are
   filtered by the protocol).

     dune exec examples/replicated_kv.exe *)

open Sintra

type command =
  | Set of string * string
  | Del of string

let encode_command = function
  | Set (k, v) -> Wire.encode (fun b -> Wire.Enc.u8 b 0; Wire.Enc.bytes b k; Wire.Enc.bytes b v)
  | Del k -> Wire.encode (fun b -> Wire.Enc.u8 b 1; Wire.Enc.bytes b k)

let decode_command s =
  Wire.decode s (fun d ->
    match Wire.Dec.u8 d with
    | 0 ->
      let k = Wire.Dec.bytes d in
      let v = Wire.Dec.bytes d in
      Set (k, v)
    | 1 -> Del (Wire.Dec.bytes d)
    | t -> Wire.fail "bad command tag %d" t)

(* A replica: an atomic channel endpoint plus the materialized store. *)
type replica = {
  store : (string, string) Hashtbl.t;
  mutable applied : int;
  channel : Atomic_channel.t;
}

let apply (r : replica) (cmd : command) =
  r.applied <- r.applied + 1;
  match cmd with
  | Set (k, v) -> Hashtbl.replace r.store k v
  | Del k -> Hashtbl.remove r.store k

let fingerprint (r : replica) : string =
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.store []
    |> List.sort compare
    |> List.map (fun (k, v) -> k ^ "=" ^ v)
  in
  Hashes.Sha256.hex_of_digest
    (Hashes.Sha256.digest (String.concat ";" entries))

let () =
  let n = 4 in
  let cfg = Config.test ~n ~t:1 () in
  let topo = Sim.Topology.uniform ~count:n () in
  let cluster = Cluster.create ~seed:"kv-store" ~topo cfg in

  let replicas =
    Array.init n (fun i ->
      let rec r =
        lazy {
          store = Hashtbl.create 16;
          applied = 0;
          channel =
            Atomic_channel.create (Cluster.runtime cluster i) ~pid:"kv"
              ~on_deliver:(fun ~sender:_ payload ->
                match decode_command payload with
                | Some cmd -> apply (Lazy.force r) cmd
                | None -> ())   (* garbage from a corrupted frontend *)
              ();
        }
      in
      Lazy.force r)
  in

  (* Frontends submit workloads through different replicas, concurrently. *)
  let submit replica cmd =
    Cluster.inject cluster replica (fun () ->
      Atomic_channel.send replicas.(replica).channel (encode_command cmd))
  in
  submit 0 (Set ("user:1", "alice"));
  submit 1 (Set ("user:2", "bob"));
  submit 2 (Set ("user:1", "ALICE"));   (* conflicting write: order decides *)
  submit 0 (Set ("balance:1", "100"));
  submit 1 (Del "user:2");
  submit 2 (Set ("balance:1", "250"));
  submit 0 (Set ("user:3", "carol"));

  (* Replica 3 is corrupted: it floods the channel pid with junk that must
     be ignored by everyone. *)
  Cluster.inject cluster 3 (fun () ->
    let rt = Cluster.runtime cluster 3 in
    for dst = 0 to n - 1 do
      Runtime.send rt ~dst ~pid:"kv" "totally bogus protocol message";
      Runtime.send rt ~dst ~pid:"kv"
        (Wire.encode (fun b ->
           Wire.Enc.u8 b 0;
           Wire.Enc.int b 0;
           Wire.Enc.int b 0;
           Wire.Enc.int b 99;
           Wire.Enc.bytes b "\x01forged";
           Wire.Enc.int b 3;
           Wire.Enc.bytes b "not a signature"))
    done);

  let events = Cluster.run cluster in
  Printf.printf "simulation: %d events, %.3f virtual seconds\n\n"
    events (Cluster.now cluster);

  Array.iteri
    (fun i r ->
      Printf.printf "replica %d: applied=%d fingerprint=%s%s\n" i r.applied
        (String.sub (fingerprint r) 0 16)
        (if i = 3 then "  (corrupted node - ran protocol but its junk was dropped)" else ""))
    replicas;

  let fps = Array.to_list (Array.map fingerprint replicas) in
  (match fps with
   | f :: rest when List.for_all (( = ) f) rest ->
     print_endline "\nall replicas converged to identical state."
   | _ ->
     prerr_endline "replica divergence - impossible under n > 3t";
     exit 1);

  (* Read back through any replica. *)
  Printf.printf "\nfinal store (via replica 1):\n";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) replicas.(1).store []
  |> List.sort compare
  |> List.iter (fun (k, v) -> Printf.printf "  %-10s -> %s\n" k v)
