(* A sealed-bid auction over the secure causal atomic broadcast channel
   (Section 2.6).

   Bids are threshold-encrypted under the group key, so no server — not
   even a Byzantine one colluding with a bidder — learns any bid before its
   position in the delivery order is fixed.  This kills the classic
   front-running attack: a corrupted server cannot observe Alice's bid and
   rush a higher one in front of it, because what travels the network until
   ordering completes is CCA-secure ciphertext.

   The example records every byte that crosses the wire and checks that no
   bid appears in cleartext before its delivery.

     dune exec examples/sealed_bid_auction.exe *)

open Sintra

let contains (hay : string) (needle : string) : bool =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m > 0 && go 0

let () =
  let n = 4 in
  let cfg = Config.test ~n ~t:1 () in
  let topo = Sim.Topology.uniform ~count:n () in
  let cluster = Cluster.create ~seed:"auction" ~topo cfg in

  (* Auction servers: order and then open the bids. *)
  let opened = Array.init n (fun _ -> ref []) in
  let channels =
    Array.init n (fun i ->
      Secure_atomic_channel.create (Cluster.runtime cluster i) ~pid:"auction"
        ~on_deliver:(fun ~sender bid ->
          opened.(i) := (sender, bid, Cluster.now cluster) :: !(opened.(i)))
        ())
  in

  let bids =
    [ (0, "alice:1700"); (1, "bob:2450"); (2, "carol:2200"); (1, "dave:990") ]
  in

  (* Wire-tap everything; bids must never appear in cleartext in flight. *)
  let leaked = ref [] in
  Cluster.set_intercept cluster (fun ~src:_ ~dst:_ payload ->
    List.iter
      (fun (_, bid) -> if contains payload bid then leaked := bid :: !leaked)
      bids;
    Sim.Net.Deliver);

  List.iter
    (fun (server, bid) ->
      Cluster.inject cluster server (fun () ->
        Secure_atomic_channel.send channels.(server) bid))
    bids;

  let events = Cluster.run cluster in
  Printf.printf "simulation: %d events, %.3f virtual seconds\n\n"
    events (Cluster.now cluster);

  Printf.printf "bids opened (in agreed order) at server 0:\n";
  List.iter
    (fun (srv, bid, time) ->
      Printf.printf "  t=%.3fs  via server %d: %s\n" time srv bid)
    (List.rev !(opened.(0)));

  let orders = Array.map (fun l -> List.rev_map (fun (s, b, _) -> (s, b)) !l) opened in
  if not (Array.for_all (fun o -> o = orders.(0)) orders) then begin
    prerr_endline "servers opened bids in different orders!";
    exit 1
  end;
  if !leaked <> [] then begin
    Printf.eprintf "CONFIDENTIALITY VIOLATION: %s leaked in flight\n"
      (String.concat ", " !leaked);
    exit 1
  end;
  Printf.printf
    "\nno bid bytes appeared on the wire before opening (checked %d bids).\n"
    (List.length bids);

  (* Determine the winner from the (identical) opened list. *)
  let parse bid =
    match String.index_opt bid ':' with
    | Some i ->
      (String.sub bid 0 i,
       int_of_string (String.sub bid (i + 1) (String.length bid - i - 1)))
    | None -> (bid, 0)
  in
  let winner, amount =
    List.fold_left
      (fun (w, best) (_, bid, _) ->
        let who, amt = parse bid in
        if amt > best then (who, amt) else (w, best))
      ("", 0)
      (List.rev !(opened.(0)))
  in
  Printf.printf "winner: %s at %d\n" winner amount
