(* A distributed certification authority in the style of COCA (the one
   Internet-deployed system the paper compares against, Section 5) — built
   here the SINTRA way: atomic broadcast orders the certificate requests,
   and the CA's signing key exists only as threshold shares, so certificates
   get issued even while t servers are corrupted, yet no coalition of t
   servers can forge one.

     dune exec examples/threshold_ca.exe *)

open Sintra

let cert_statement ~name ~pubkey ~serial =
  Printf.sprintf "cert|serial=%d|name=%s|key=%s" serial name pubkey

let () =
  let n = 4 and t = 1 in
  let cfg = Config.test ~n ~t () in
  let topo = Sim.Topology.uniform ~count:n () in
  let cluster = Cluster.create ~seed:"threshold-ca" ~topo cfg in
  let byzantine = 2 in   (* this server will refuse to sign *)

  (* Each CA server orders requests on an atomic channel and then releases a
     threshold-signature share for the certificate; shares are exchanged on
     the same runtime and assembled by everyone independently. *)
  let issued : (int, (string * string) list ref) Hashtbl.t = Hashtbl.create 4 in
  Array.iter (fun i -> Hashtbl.replace issued i (ref [])) [| 0; 1; 2; 3 |];

  let share_pool : (int, (string * Tsig.share list ref)) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 8)
  in

  let channels = Array.make n None in
  let serials = Array.make n 0 in

  let share_pid = "ca/shares" in

  let try_issue i serial statement =
    let rt = Cluster.runtime cluster i in
    let pub = Tsig.public_of_secret rt.Runtime.keys.Dealer.bc_tsig in
    match Hashtbl.find_opt share_pool.(i) serial with
    | Some (stmt, shares) when stmt = statement && List.length !shares >= Tsig.k pub ->
      let signature = Tsig.assemble pub ~ctx:"ca" stmt !shares in
      if Tsig.verify pub ~ctx:"ca" ~signature stmt then begin
        let log = Hashtbl.find issued i in
        if not (List.mem_assoc stmt !log) then log := (stmt, signature) :: !log
      end
    | _ -> ()
  in

  (* Share exchange handler per server. *)
  Array.iteri
    (fun i _ ->
      let rt = Cluster.runtime cluster i in
      Runtime.register rt ~pid:share_pid (fun ~src body ->
        match
          Wire.decode body (fun d ->
            let serial = Wire.Dec.int d in
            let stmt = Wire.Dec.bytes d in
            let share = Tsig.dec_share d in
            (serial, stmt, share))
        with
        | None -> ()
        | Some (serial, stmt, share) ->
          let pub = Tsig.public_of_secret rt.Runtime.keys.Dealer.bc_tsig in
          if Tsig.share_origin share = src + 1
             && Tsig.verify_share pub ~ctx:"ca" stmt share
          then begin
            let _, shares =
              match Hashtbl.find_opt share_pool.(i) serial with
              | Some entry -> entry
              | None ->
                let entry = (stmt, ref []) in
                Hashtbl.replace share_pool.(i) serial entry;
                entry
            in
            shares := share :: !shares;
            try_issue i serial stmt
          end))
    channels;

  (* Atomic delivery of a request: everyone signs (except the corrupted
     server, which stays silent) and broadcasts its share. *)
  let on_request i payload =
    let rt = Cluster.runtime cluster i in
    let serial = serials.(i) in
    serials.(i) <- serial + 1;
    match String.index_opt payload '/' with
    | None -> ()
    | Some cut ->
      let name = String.sub payload 0 cut in
      let pubkey = String.sub payload (cut + 1) (String.length payload - cut - 1) in
      let statement = cert_statement ~name ~pubkey ~serial in
      (match Hashtbl.find_opt share_pool.(i) serial with
       | Some _ -> ()
       | None -> Hashtbl.replace share_pool.(i) serial (statement, ref []));
      if i <> byzantine then begin
        let share =
          Tsig.release ~drbg:rt.Runtime.drbg rt.Runtime.keys.Dealer.bc_tsig
            ~ctx:"ca" statement
        in
        let body =
          Wire.encode (fun b ->
            Wire.Enc.int b serial;
            Wire.Enc.bytes b statement;
            Tsig.enc_share b share)
        in
        Runtime.broadcast rt ~pid:share_pid body
      end
  in

  Array.iteri
    (fun i _ ->
      channels.(i) <-
        Some
          (Atomic_channel.create (Cluster.runtime cluster i) ~pid:"ca/requests"
             ~on_deliver:(fun ~sender:_ payload -> on_request i payload)
             ()))
    channels;

  (* Clients submit certificate requests through different servers. *)
  let request via name pubkey =
    Cluster.inject cluster via (fun () ->
      match channels.(via) with
      | Some ch -> Atomic_channel.send ch (name ^ "/" ^ pubkey)
      | None -> ())
  in
  request 0 "alice.example.org" "rsa:a1b2c3";
  request 1 "bob.example.org" "rsa:d4e5f6";
  request 3 "carol.example.org" "rsa:778899";

  let events = Cluster.run cluster in
  Printf.printf "simulation: %d events, %.3f virtual seconds\n" events
    (Cluster.now cluster);
  Printf.printf "(server %d is corrupted and refused to sign anything)\n\n" byzantine;

  (* Every honest server assembled every certificate.  (With the
     multi-signature scheme the signature bytes may differ between servers —
     each assembles whichever k shares arrived first — but the set of signed
     statements must match.) *)
  let statements i = List.sort compare (List.map fst !(Hashtbl.find issued i)) in
  let reference = List.sort compare !(Hashtbl.find issued 0) in
  List.iter
    (fun i ->
      Printf.printf "server %d issued %d certificates\n" i
        (List.length (statements i));
      if statements i <> statements 0 then begin
        prerr_endline "certificate sets differ between honest servers!";
        exit 1
      end)
    [ 0; 1; 3 ];

  print_newline ();
  List.iter
    (fun (stmt, signature) ->
      let rt = Cluster.runtime cluster 0 in
      let pub = Tsig.public_of_secret rt.Runtime.keys.Dealer.bc_tsig in
      let ok = Tsig.verify pub ~ctx:"ca" ~signature stmt in
      Printf.printf "  %-55s  signature: %s\n" stmt
        (if ok then "VALID (under the group key)" else "INVALID");
      if not ok then exit 1)
    (List.rev reference);

  Printf.printf
    "\n%d certificates issued despite %d corrupted server(s); no t-coalition\n\
     holds the CA key - it exists only as threshold shares.\n"
    (List.length reference) 1
