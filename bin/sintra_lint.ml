(* sintra-lint: the repo's protocol-safety static analysis pass.

     sintra_lint [DIR-or-FILE ...]     default roots: lib bin

   Exit status 0 when the tree is clean, 1 when any rule fires.  Run as
   part of `dune runtest` (and `dune build @lint`), so protocol-safety
   regressions fail the build. *)

let usage () =
  print_endline "usage: sintra_lint [--rules] [DIR-or-FILE ...]   (default: lib bin)";
  print_endline "";
  print_endline "rules:";
  List.iter
    (fun (name, descr) -> Printf.printf "  %-14s %s\n" name descr)
    Lint.rule_names;
  print_endline "";
  print_endline "suppress a finding with: (* lint: allow <rule> -- reason *)"

let () =
  let args = match Array.to_list Sys.argv with [] -> [] | _ :: rest -> rest in
  if List.mem "--help" args || List.mem "--rules" args then usage ()
  else begin
    let roots = if args = [] then [ "lib"; "bin" ] else args in
    let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
    if missing <> [] then begin
      List.iter (Printf.eprintf "sintra_lint: no such path: %s\n") missing;
      exit 2
    end;
    let files = Lint.discover roots in
    let findings = Lint.check_paths files in
    List.iter (fun f -> print_endline (Lint.render f)) findings;
    print_endline (Lint.summary ~files:(List.length files) findings);
    if findings <> [] then exit 1
  end
