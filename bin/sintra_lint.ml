(* sintra-lint: the repo's protocol-safety static analysis pass.

     sintra_lint [--format text|json] [--config FILE] [--budget SEC]
                 [--rules] [DIR-or-FILE ...]        default roots: lib bin

   Line rules (L1-L5) and semantic rules (S1-S6) run together; findings
   are filtered through the inline allow directives and then through the
   .sintra-lint policy file (allow entries and count-based baselines).

   Exit status: 0 clean (possibly with policy-suppressed findings), 1 new
   findings, 2 usage/IO error, 3 wall-clock budget exceeded.  Run as part
   of `dune runtest` (and `dune build @lint`), so protocol-safety
   regressions fail the build. *)

let usage () =
  print_endline
    "usage: sintra_lint [--format text|json] [--config FILE] [--budget SEC] \
     [--rules] [DIR-or-FILE ...]   (default roots: lib bin)";
  print_endline "";
  print_endline "rules:";
  List.iter
    (fun (name, descr) -> Printf.printf "  %-16s %s\n" name descr)
    Lint.rule_names;
  print_endline "";
  print_endline "suppress a finding with: (* lint: allow <rule> -- reason *)";
  print_endline "or a policy entry in .sintra-lint: allow|baseline <rule> <path> [count]"

let bad_usage (msg : string) : 'a =
  Printf.eprintf "sintra_lint: %s (try --help)\n" msg;
  exit 2

let () =
  let args = match Array.to_list Sys.argv with [] -> [] | _ :: rest -> rest in
  if List.mem "--help" args || List.mem "--rules" args then usage ()
  else begin
    let format = ref "text" in
    let config = ref None in
    let budget = ref None in
    let roots = ref [] in
    let rec parse = function
      | [] -> ()
      | "--format" :: v :: rest ->
        if v <> "text" && v <> "json" then bad_usage ("bad --format " ^ v);
        format := v;
        parse rest
      | "--config" :: v :: rest -> config := Some v; parse rest
      | "--budget" :: v :: rest ->
        (match float_of_string_opt v with
         | Some s when s > 0.0 -> budget := Some s
         | _ -> bad_usage ("bad --budget " ^ v));
        parse rest
      | [ ("--format" | "--config" | "--budget") as flag ] ->
        bad_usage (flag ^ " needs a value")
      | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        bad_usage ("unknown flag " ^ arg)
      | arg :: rest -> roots := arg :: !roots; parse rest
    in
    parse args;
    let roots =
      match List.rev !roots with [] -> [ "lib"; "bin" ] | rs -> rs
    in
    let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
    if missing <> [] then begin
      List.iter (Printf.eprintf "sintra_lint: no such path: %s\n") missing;
      exit 2
    end;
    let policy =
      match !config with
      | Some path ->
        (match Lint.Baseline.load path with
         | Ok t -> t
         | Error e -> Printf.eprintf "sintra_lint: %s\n" e; exit 2)
      | None ->
        if Sys.file_exists ".sintra-lint" then
          match Lint.Baseline.load ".sintra-lint" with
          | Ok t -> t
          | Error e -> Printf.eprintf "sintra_lint: %s\n" e; exit 2
        else Lint.Baseline.empty
    in
    let t0 = Unix.gettimeofday () in
    let files = Lint.discover roots in
    let all = Lint.check_paths files in
    let findings, suppressed = Lint.Baseline.apply policy all in
    let elapsed = Unix.gettimeofday () -. t0 in
    let nfiles = List.length files in
    (match !format with
     | "json" ->
       print_endline (Lint.render_json ~files:nfiles ~suppressed findings)
     | _ ->
       List.iter (fun f -> print_endline (Lint.render f)) findings;
       List.iter
         (fun (rule, count) ->
           if count > 0 then Printf.printf "  %-16s %d\n" rule count)
         (Lint.per_rule findings);
       print_endline (Lint.summary ~suppressed ~files:nfiles findings);
       Printf.printf "sintra-lint: %d files in %.2fs%s\n" nfiles elapsed
         (match !budget with
          | Some b -> Printf.sprintf " (budget %.0fs)" b
          | None -> ""));
    let over_budget =
      match !budget with Some b -> elapsed > b | None -> false
    in
    if over_budget then begin
      Printf.eprintf "sintra_lint: wall-clock budget exceeded (%.2fs)\n"
        elapsed;
      exit 3
    end;
    if findings <> [] then exit 1
  end
