(* sintra_doc: the repo's documentation build-and-check pass (the @doc
   alias).  The container has no odoc binary, so "building the docs" here
   means enforcing what odoc would: full doc coverage of the crypto and
   bignum interfaces, and zero broken {!...} references anywhere in lib.

     sintra_doc [LIB-ROOT]              default root: lib
     sintra_doc --strict DIR ...        extra strict (full-coverage) dirs

   Exit status 0 when clean, 1 on any finding. *)

let default_strict =
  [ "bignum"; "crypto"; "vopr"; "sim"; "trace"; "load";
    "sintra"; "lint"; "wire"; "det"; "hashes"; "store" ]

let read_file (path : string) : string =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let () =
  let args = match Array.to_list Sys.argv with [] -> [] | _ :: rest -> rest in
  let rec parse root strict = function
    | [] -> (root, strict)
    | "--strict" :: d :: rest -> parse root (d :: strict) rest
    | "--strict" :: [] ->
      prerr_endline "sintra_doc: --strict needs a directory name";
      exit 2
    | r :: rest -> parse r strict rest
  in
  let root, strict = parse "lib" default_strict args in
  if not (Sys.file_exists root) then begin
    Printf.eprintf "sintra_doc: no such path: %s\n" root;
    exit 2
  end;
  let mlis =
    List.filter (fun p -> Filename.check_suffix p ".mli") (Lint.discover [ root ])
  in
  let files =
    List.map
      (fun path ->
        (* lib/<dir>/<file>.mli: the dir is the wrapper library *)
        let dir = Filename.basename (Filename.dirname path) in
        {
          Lint.Doccheck.library = String.capitalize_ascii dir;
          path;
          contents = read_file path;
          strict = List.mem dir strict;
        })
      mlis
  in
  let findings = Lint.Doccheck.check files in
  List.iter (fun f -> print_endline (Lint.Doccheck.render f)) findings;
  let strict_count = List.length (List.filter (fun f -> f.Lint.Doccheck.strict) files) in
  Printf.printf
    "sintra_doc: %d interfaces scanned (%d strict), %d finding%s\n"
    (List.length files) strict_count (List.length findings)
    (if List.length findings = 1 then "" else "s");
  if findings <> [] then exit 1
