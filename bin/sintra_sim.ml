(* sintra_sim: a command-line driver for the SINTRA simulator.

     dune exec bin/sintra_sim.exe -- run --channel atomic --topology internet \
         --senders 0,1,2 --messages 30
     dune exec bin/sintra_sim.exe -- topologies
     dune exec bin/sintra_sim.exe -- agree --proposals 1,0,1,0
     dune exec bin/sintra_sim.exe -- crypto --op coin

   Useful for poking at the system interactively: pick a channel, topology,
   fault set and workload; get the delivery trace and per-host statistics. *)

open Cmdliner
open Sintra

(* --- shared arguments --- *)

let topology_of_string = function
  | "lan" -> Ok Sim.Topology.lan
  | "internet" -> Ok Sim.Topology.internet
  | "combined" -> Ok Sim.Topology.combined
  | s ->
    (match int_of_string_opt s with
     | Some n when n >= 4 -> Ok (Sim.Topology.uniform ~count:n ())
     | _ -> Error (`Msg (Printf.sprintf "unknown topology %S (lan|internet|combined|<n>)" s)))

let topology_conv =
  Arg.conv
    ((fun s -> topology_of_string s),
     fun fmt t -> Format.pp_print_string fmt t.Sim.Topology.label)

let topology_arg =
  Arg.(value & opt topology_conv Sim.Topology.lan
       & info [ "topology" ] ~docv:"TOPO" ~doc:"lan, internet, combined, or a node count.")

let seed_arg =
  Arg.(value & opt string "cli" & info [ "seed" ] ~docv:"SEED" ~doc:"Determinism seed.")

let scheme_arg =
  let scheme_conv =
    Arg.enum [ ("multi", Config.Multi); ("shoup", Config.Shoup) ]
  in
  Arg.(value & opt scheme_conv Config.Multi
       & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Threshold signatures: multi or shoup.")

let crashes_arg =
  Arg.(value & opt (list int) [] & info [ "crash" ] ~docv:"IDS" ~doc:"Parties to crash at t=0.")

let int_list_arg name ~doc ~default =
  Arg.(value & opt (list int) default & info [ name ] ~docv:"IDS" ~doc)

let faults_t (topo : Sim.Topology.t) : int =
  (Sim.Topology.n topo - 1) / 3

let make_cluster ~seed ~scheme (topo : Sim.Topology.t) : Cluster.t =
  let n = Sim.Topology.n topo in
  let t = faults_t topo in
  let cfg =
    Config.make ~tsig_scheme:scheme ~perm_mode:Config.Random_local
      ~rsa_bits:256 ~tsig_bits:256 ~dl_pbits:256 ~dl_qbits:96 ~n ~t ()
  in
  Cluster.create ~seed ~topo cfg

(* --- run: drive a channel --- *)

type channel_kind = Atomic | Secure | Reliable | Consistent

let channel_arg =
  let channel_conv =
    Arg.enum
      [ ("atomic", Atomic); ("secure", Secure); ("reliable", Reliable);
        ("consistent", Consistent) ]
  in
  Arg.(value & opt channel_conv Atomic
       & info [ "channel" ] ~docv:"KIND" ~doc:"atomic, secure, reliable or consistent.")

let run_cmd =
  let run channel topo seed scheme senders messages crashes verbose =
    let c = make_cluster ~seed ~scheme topo in
    let n = Cluster.n c in
    let senders = List.filter (fun s -> s >= 0 && s < n) senders in
    let deliveries = ref [] in
    let record i ~sender msg =
      if i = 0 then deliveries := (Cluster.now c, sender, msg) :: !deliveries
    in
    let senders_fn =
      match channel with
      | Atomic ->
        let chans =
          Array.init n (fun i ->
            Atomic_channel.create (Cluster.runtime c i) ~pid:"cli"
              ~on_deliver:(record i) ())
        in
        fun s m -> Atomic_channel.send chans.(s) m
      | Secure ->
        let chans =
          Array.init n (fun i ->
            Secure_atomic_channel.create (Cluster.runtime c i) ~pid:"cli"
              ~on_deliver:(record i) ())
        in
        fun s m -> Secure_atomic_channel.send chans.(s) m
      | Reliable ->
        let chans =
          Array.init n (fun i ->
            Reliable_channel.create (Cluster.runtime c i) ~pid:"cli"
              ~on_deliver:(record i) ())
        in
        fun s m -> Reliable_channel.send chans.(s) m
      | Consistent ->
        let chans =
          Array.init n (fun i ->
            Consistent_channel.create (Cluster.runtime c i) ~pid:"cli"
              ~on_deliver:(record i) ())
        in
        fun s m -> Consistent_channel.send chans.(s) m
    in
    List.iter (Cluster.crash c) crashes;
    List.iter
      (fun s ->
        if not (List.mem s crashes) then
          for k = 0 to messages - 1 do
            Cluster.inject c s (fun () ->
              senders_fn s (Printf.sprintf "msg-%d.%d" s k))
          done)
      senders;
    let events = Cluster.run c in
    let ds = List.rev !deliveries in
    Printf.printf "topology %s, n=%d t=%d, %d events, %.3f virtual seconds\n"
      topo.Sim.Topology.label n (faults_t topo) events (Cluster.now c);
    Printf.printf "%d deliveries observed at party 0%s\n" (List.length ds)
      (if crashes = [] then "" else
         Printf.sprintf " (crashed: %s)" (String.concat "," (List.map string_of_int crashes)));
    if verbose then
      List.iter
        (fun (time, sender, msg) -> Printf.printf "  %8.3fs  P%d  %s\n" time sender msg)
        ds
    else begin
      (match ds with
       | [] -> ()
       | (t0, _, _) :: _ ->
         let tn = List.fold_left (fun _ (time, _, _) -> time) t0 ds in
         let count = List.length ds in
         Printf.printf "first delivery %.3fs, last %.3fs, avg inter-delivery %.3fs\n"
           t0 tn
           (if count > 1 then (tn -. t0) /. float_of_int (count - 1) else 0.0))
    end
  in
  let senders =
    int_list_arg "senders" ~doc:"Comma-separated sending parties." ~default:[ 0 ]
  in
  let messages =
    Arg.(value & opt int 10 & info [ "messages" ] ~docv:"N" ~doc:"Messages per sender.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the full delivery trace.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Drive a broadcast channel over a simulated test-bed.")
    Term.(const run $ channel_arg $ topology_arg $ seed_arg $ scheme_arg
          $ senders $ messages $ crashes_arg $ verbose)

(* --- agree: one multi-valued or binary agreement --- *)

let agree_cmd =
  let run topo seed scheme proposals binary =
    let c = make_cluster ~seed ~scheme topo in
    let n = Cluster.n c in
    let decided = Array.make n None in
    if binary then begin
      let insts =
        Array.init n (fun i ->
          Binary_agreement.create (Cluster.runtime c i) ~pid:"cli-aba"
            ~on_decide:(fun b _ -> decided.(i) <- Some (string_of_bool b)))
      in
      List.iteri
        (fun i v ->
          if i < n then
            Cluster.inject c i (fun () -> Binary_agreement.propose insts.(i) (v <> 0)))
        proposals
    end
    else begin
      let insts =
        Array.init n (fun i ->
          Array_agreement.create (Cluster.runtime c i) ~pid:"cli-mvba"
            ~validator:(fun _ -> true)
            ~on_decide:(fun v -> decided.(i) <- Some v))
      in
      List.iteri
        (fun i v ->
          if i < n then
            Cluster.inject c i (fun () ->
              Array_agreement.propose insts.(i) (Printf.sprintf "value-%d" v)))
        proposals
    end;
    let events = Cluster.run c in
    Printf.printf "%d events, %.3f virtual seconds\n" events (Cluster.now c);
    Array.iteri
      (fun i d ->
        Printf.printf "party %d decided: %s\n" i
          (match d with Some v -> v | None -> "(nothing)"))
      decided
  in
  let proposals =
    int_list_arg "proposals" ~doc:"Per-party proposals (ints; binary uses 0/non-0)."
      ~default:[ 1; 0; 1; 0 ]
  in
  let binary =
    Arg.(value & flag & info [ "binary" ] ~doc:"Run binary agreement instead of multi-valued.")
  in
  Cmd.v (Cmd.info "agree" ~doc:"Run one Byzantine agreement instance.")
    Term.(const run $ topology_arg $ seed_arg $ scheme_arg $ proposals $ binary)

(* --- topologies: list the built-in test-beds --- *)

let topologies_cmd =
  let run () =
    List.iter
      (fun (t : Sim.Topology.t) ->
        Printf.printf "%s (n=%d):\n" t.Sim.Topology.label (Sim.Topology.n t);
        Array.iter
          (fun h ->
            Printf.printf "  %-18s exp(1024-bit) = %5.0f ms\n"
              h.Sim.Topology.name h.Sim.Topology.exp_ms)
          t.Sim.Topology.hosts)
      [ Sim.Topology.lan; Sim.Topology.internet; Sim.Topology.combined ]
  in
  Cmd.v (Cmd.info "topologies" ~doc:"List the built-in test-beds (Section 4).")
    Term.(const run $ const ())

(* --- crypto: exercise one threshold primitive --- *)

let crypto_cmd =
  let run seed op =
    let drbg = Hashes.Drbg.create ~seed in
    let group = Crypto.Group.generate ~drbg ~pbits:512 ~qbits:160 in
    match op with
    | "coin" ->
      let keys = Crypto.Threshold_coin.deal ~drbg ~group ~n:4 ~k:2 ~t:1 in
      let pub = keys.Crypto.Threshold_coin.public in
      for round = 1 to 5 do
        let name = Printf.sprintf "round-%d" round in
        let shares =
          List.map
            (fun i ->
              Crypto.Threshold_coin.release ~drbg pub
                keys.Crypto.Threshold_coin.shares.(i) ~name)
            [ 0; 2 ]
        in
        Printf.printf "coin %-8s = %b\n" name
          (Crypto.Threshold_coin.assemble_bit pub ~name shares)
      done
    | "sign" ->
      let keys =
        Crypto.Threshold_sig.deal ~drbg ~modulus_bits:512 ~nparties:4 ~k:3 ~t:1 ()
      in
      let pub = keys.Crypto.Threshold_sig.public in
      let msg = "the quick brown fox" in
      let shares =
        List.map
          (fun i ->
            Crypto.Threshold_sig.release ~drbg pub
              keys.Crypto.Threshold_sig.shares.(i) ~ctx:"cli" msg)
          [ 0; 1; 3 ]
      in
      let signature = Crypto.Threshold_sig.assemble pub ~ctx:"cli" msg shares in
      Printf.printf "assembled %d-byte RSA signature from shares {1,2,4}; verifies: %b\n"
        (String.length signature)
        (Crypto.Threshold_sig.verify pub ~ctx:"cli" ~signature msg)
    | "encrypt" ->
      let keys = Crypto.Threshold_enc.deal ~drbg ~group ~n:4 ~k:2 ~t:1 in
      let pub = keys.Crypto.Threshold_enc.public in
      let ct = Crypto.Threshold_enc.encrypt ~drbg pub ~label:"cli" "hello threshold world" in
      let shares =
        List.filter_map
          (fun i ->
            Crypto.Threshold_enc.dec_share ~drbg pub
              keys.Crypto.Threshold_enc.shares.(i) ct)
          [ 1; 2 ]
      in
      (match Crypto.Threshold_enc.combine pub ct shares with
       | Some m -> Printf.printf "decrypted with shares {2,3}: %S\n" m
       | None -> print_endline "decryption failed")
    | other -> Printf.eprintf "unknown op %S (coin|sign|encrypt)\n" other
  in
  let op =
    Arg.(value & opt string "coin" & info [ "op" ] ~docv:"OP" ~doc:"coin, sign or encrypt.")
  in
  Cmd.v (Cmd.info "crypto" ~doc:"Exercise one threshold-cryptography primitive.")
    Term.(const run $ seed_arg $ op)

let () =
  let doc = "SINTRA: secure intrusion-tolerant replication (DSN 2002), simulated" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "sintra_sim" ~doc)
          [ run_cmd; agree_cmd; topologies_cmd; crypto_cmd ]))
