(* sintra_sim: a command-line driver for the SINTRA simulator.

     dune exec bin/sintra_sim.exe -- run --channel atomic --topology internet \
         --senders 0,1,2 --messages 30
     dune exec bin/sintra_sim.exe -- topologies
     dune exec bin/sintra_sim.exe -- agree --proposals 1,0,1,0
     dune exec bin/sintra_sim.exe -- crypto --op coin

   Useful for poking at the system interactively: pick a channel, topology,
   fault set and workload; get the delivery trace and per-host statistics. *)

open Cmdliner
open Sintra

(* --- shared arguments --- *)

let topology_of_string = function
  | "lan" -> Ok Sim.Topology.lan
  | "internet" -> Ok Sim.Topology.internet
  | "combined" -> Ok Sim.Topology.combined
  | s ->
    (match int_of_string_opt s with
     | Some n when n >= 4 -> Ok (Sim.Topology.uniform ~count:n ())
     | _ -> Error (`Msg (Printf.sprintf "unknown topology %S (lan|internet|combined|<n>)" s)))

let topology_conv =
  Arg.conv
    ((fun s -> topology_of_string s),
     fun fmt t -> Format.pp_print_string fmt t.Sim.Topology.label)

let topology_arg =
  Arg.(value & opt topology_conv Sim.Topology.lan
       & info [ "topology" ] ~docv:"TOPO" ~doc:"lan, internet, combined, or a node count.")

let seed_arg =
  Arg.(value & opt string "cli" & info [ "seed" ] ~docv:"SEED" ~doc:"Determinism seed.")

let scheme_arg =
  let scheme_conv =
    Arg.enum [ ("multi", Config.Multi); ("shoup", Config.Shoup) ]
  in
  Arg.(value & opt scheme_conv Config.Multi
       & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Threshold signatures: multi or shoup.")

let crashes_arg =
  Arg.(value & opt (list int) [] & info [ "crash" ] ~docv:"IDS" ~doc:"Parties to crash at t=0.")

let int_list_arg name ~doc ~default =
  Arg.(value & opt (list int) default & info [ name ] ~docv:"IDS" ~doc)

let faults_t (topo : Sim.Topology.t) : int =
  (Sim.Topology.n topo - 1) / 3

let no_fast_path_arg =
  Arg.(value & flag
       & info [ "no-fast-path" ]
           ~doc:"Charge virtual CPU as plain square-and-multiply \
                 exponentiations (the paper's cost tables) instead of the \
                 multi-exponentiation / fixed-base fast path.")

let no_batching_arg =
  Arg.(value & flag
       & info [ "no-batching" ]
           ~doc:"Force max_batch = 1: one payload per party per atomic \
                 round, the pre-batching baseline of the throughput \
                 benchmarks.")

let pipeline_depth_arg =
  Arg.(value & opt int 4
       & info [ "pipeline-depth" ] ~docv:"W"
           ~doc:"Atomic-broadcast rounds in flight concurrently (the \
                 pipeline window); 1 reproduces the strictly sequential \
                 protocol.")

let no_adaptive_batch_arg =
  Arg.(value & flag
       & info [ "no-adaptive-batch" ]
           ~doc:"Pin the per-round vector cap at max_batch instead of \
                 AIMD self-tuning from the observed queue depth.")

let no_batch_verify_arg =
  Arg.(value & flag
       & info [ "no-batch-verify" ]
           ~doc:"Verify signature and coin shares one at a time (the \
                 reference path) instead of checking same-statement proofs \
                 as one random-linear-combination batch.")

let no_share_cache_arg =
  Arg.(value & flag
       & info [ "no-share-cache" ]
           ~doc:"Re-verify every share at every sighting instead of \
                 remembering verified shares in the bounded per-party \
                 cache.")

let no_coin_pregen_arg =
  Arg.(value & flag
       & info [ "no-coin-pregen" ]
           ~doc:"Release threshold-coin shares on the critical path when a \
                 round fails to decide, instead of pre-generating them at \
                 round start.")

let durable_arg =
  Arg.(value & flag
       & info [ "durable" ]
           ~doc:"Attach the durability layer to every party (atomic channel \
                 only): write-ahead logging of delivered rounds, \
                 threshold-signed checkpoints, and log/backlog garbage \
                 collection below the latest stable checkpoint.")

let checkpoint_interval_arg ~default =
  Arg.(value & opt int default
       & info [ "checkpoint-interval" ] ~docv:"R"
           ~doc:"Rounds between checkpoints; 0 disables checkpointing (log \
                 only).")

let store_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "store-dir" ] ~docv:"DIR"
           ~doc:"Back each party's write-ahead log with a real file \
                 $(docv)/p<i>.wal (inspectable with store-check) instead of \
                 an in-memory device.  The directory is created if missing.")

let make_cluster ~seed ~scheme ?(no_fast_path = false) ?(no_batching = false)
    ?(pipeline_depth = 4) ?(adaptive_batch = true) ?(no_batch_verify = false)
    ?(no_share_cache = false) ?(no_coin_pregen = false)
    (topo : Sim.Topology.t) : Cluster.t =
  let n = Sim.Topology.n topo in
  let t = faults_t topo in
  let cfg =
    Config.make ~tsig_scheme:scheme ~perm_mode:Config.Random_local
      ~crypto_fast_path:(not no_fast_path)
      ~max_batch:(if no_batching then 1 else 256)
      ~pipeline_depth ~adaptive_batch
      ~batch_verify:(not no_batch_verify) ~share_cache:(not no_share_cache)
      ~coin_pregen:(not no_coin_pregen)
      ~rsa_bits:256 ~tsig_bits:256 ~dl_pbits:256 ~dl_qbits:96 ~n ~t ()
  in
  Cluster.create ~seed ~topo cfg

(* --- tracing and metrics options --- *)

type trace_format = Jsonl | Chrome

let trace_file_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE" ~doc:"Write a structured event trace to $(docv).")

let trace_format_arg =
  let fmt_conv = Arg.enum [ ("jsonl", Jsonl); ("chrome", Chrome) ] in
  Arg.(value & opt fmt_conv Jsonl
       & info [ "trace-format" ] ~docv:"FMT"
           ~doc:"Trace format: jsonl (one event per line) or chrome \
                 (trace-event JSON, loadable in Perfetto / chrome://tracing).")

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ] ~doc:"Print per-party metrics after the run.")

let write_file (path : string) (contents : string) : unit =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* Install the requested sink on [c]; returns a finalizer that writes the
   file and reports the event count. *)
let setup_trace (c : Cluster.t) (file : string option) (fmt : trace_format)
  : unit -> unit =
  match file with
  | None -> (fun () -> ())
  | Some path ->
    (match fmt with
     | Jsonl ->
       let buf = Buffer.create (1 lsl 16) in
       Cluster.set_sink c (Trace.Sink.jsonl buf);
       fun () ->
         write_file path (Buffer.contents buf);
         Printf.printf "trace: wrote %s (jsonl)\n" path
     | Chrome ->
       let ch = Trace.Sink.chrome () in
       Cluster.set_sink c (Trace.Sink.chrome_sink ch);
       fun () ->
         write_file path (Trace.Sink.chrome_contents ch);
         Printf.printf "trace: wrote %s (chrome, %d events)\n" path
           (Trace.Sink.chrome_count ch))

let print_stats (c : Cluster.t) : unit =
  let m = Cluster.publish_metrics c in
  let get name =
    match Trace.Metrics.find_counter m name with
    | Some ct -> Trace.Metrics.value ct
    | None -> 0.0
  in
  let n = Cluster.n c in
  Printf.printf "\nper-party metrics:\n";
  Printf.printf "  %5s %10s %12s %10s %9s %7s %7s %7s\n"
    "party" "sent_msgs" "sent_bytes" "recv_msgs" "cpu_s" "exps" "exp2s" "fixed";
  for i = 0 to n - 1 do
    let p fmt = Printf.sprintf fmt i in
    Printf.printf "  %5d %10.0f %12.0f %10.0f %9.2f %7.0f %7.0f %7.0f\n" i
      (get (p "p%d/net.sent_msgs")) (get (p "p%d/net.sent_bytes"))
      (get (p "p%d/net.recv_msgs")) (get (p "p%d/cpu.charged_s"))
      (get (p "p%d/crypto.exps")) (get (p "p%d/crypto.exp2s"))
      (get (p "p%d/crypto.fixed"))
  done;
  (* Everything else (protocol counters, drops), minus the table columns
     and the per-link detail. *)
  let tabled name =
    List.exists (fun suffix ->
      String.length name > String.length suffix
      && String.sub name (String.length name - String.length suffix)
           (String.length suffix) = suffix)
      [ "/net.sent_msgs"; "/net.sent_bytes"; "/net.recv_msgs";
        "/cpu.charged_s"; "/crypto.exps"; "/crypto.exp2s"; "/crypto.fixed";
        (* published histogram quantiles render in the histogram table *)
        "/p50"; "/p90"; "/p99" ]
    || (String.length name >= 5 && String.sub name 0 5 = "link/")
  in
  let rest = List.filter (fun (name, _) -> not (tabled name)) (Trace.Metrics.dump m) in
  if rest <> [] then begin
    Printf.printf "\ncounters:\n";
    List.iter (fun (name, v) -> Printf.printf "  %-40s %12.0f\n" name v) rest
  end;
  let hists = Trace.Metrics.hists m in
  if hists <> [] then begin
    Printf.printf "\nlatency histograms (seconds):\n";
    List.iter
      (fun h ->
        Printf.printf "  %-40s n=%-6d mean=%.3f p50=%.3f p90=%.3f p99=%.3f\n"
          (Trace.Metrics.hist_name h) (Trace.Metrics.hist_count h)
          (Trace.Metrics.hist_mean h)
          (Trace.Metrics.hist_quantile h 0.5)
          (Trace.Metrics.hist_quantile h 0.9)
          (Trace.Metrics.hist_quantile h 0.99))
      hists
  end

(* --- run: drive a channel --- *)

type channel_kind = Atomic | Secure | Reliable | Consistent

let channel_arg =
  let channel_conv =
    Arg.enum
      [ ("atomic", Atomic); ("secure", Secure); ("reliable", Reliable);
        ("consistent", Consistent) ]
  in
  Arg.(value & opt channel_conv Atomic
       & info [ "channel" ] ~docv:"KIND" ~doc:"atomic, secure, reliable or consistent.")

let run_cmd =
  let run channel topo seed scheme no_fast_path no_batching pipeline_depth
      no_adaptive_batch no_batch_verify no_share_cache no_coin_pregen
      durable checkpoint_interval store_dir
      senders messages crashes verbose trace_file trace_format stats =
    if durable && channel <> Atomic then begin
      prerr_endline "sintra_sim run: --durable requires --channel atomic";
      exit 2
    end;
    let c =
      make_cluster ~seed ~scheme ~no_fast_path ~no_batching ~pipeline_depth
        ~adaptive_batch:(not no_adaptive_batch) ~no_batch_verify
        ~no_share_cache ~no_coin_pregen topo
    in
    let finish_trace = setup_trace c trace_file trace_format in
    let n = Cluster.n c in
    let senders = List.filter (fun s -> s >= 0 && s < n) senders in
    let deliveries = ref [] in
    let record i ~sender msg =
      if i = 0 then deliveries := (Cluster.now c, sender, msg) :: !deliveries
    in
    let durables : (int * Durable.t) list ref = ref [] in
    let senders_fn =
      match channel with
      | Atomic ->
        (match store_dir with
         | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
         | Some _ | None -> ());
        let chans =
          Array.init n (fun i ->
            let ch =
              Atomic_channel.create (Cluster.runtime c i) ~pid:"cli"
                ~on_deliver:(record i) ()
            in
            if durable then begin
              let dev =
                match store_dir with
                | Some dir ->
                  Store.Device.file
                    (Filename.concat dir (Printf.sprintf "p%d.wal" i))
                | None -> Store.Device.mem ()
              in
              let d =
                Durable.attach (Cluster.runtime c i) ~chan:ch ~pid:"cli" ~dev
                  ~interval:checkpoint_interval ()
              in
              durables := (i, d) :: !durables
            end;
            ch)
        in
        fun s m -> Atomic_channel.send chans.(s) m
      | Secure ->
        let chans =
          Array.init n (fun i ->
            Secure_atomic_channel.create (Cluster.runtime c i) ~pid:"cli"
              ~on_deliver:(record i) ())
        in
        fun s m -> Secure_atomic_channel.send chans.(s) m
      | Reliable ->
        let chans =
          Array.init n (fun i ->
            Reliable_channel.create (Cluster.runtime c i) ~pid:"cli"
              ~on_deliver:(record i) ())
        in
        fun s m -> Reliable_channel.send chans.(s) m
      | Consistent ->
        let chans =
          Array.init n (fun i ->
            Consistent_channel.create (Cluster.runtime c i) ~pid:"cli"
              ~on_deliver:(record i) ())
        in
        fun s m -> Consistent_channel.send chans.(s) m
    in
    List.iter (Cluster.crash c) crashes;
    List.iter
      (fun s ->
        if not (List.mem s crashes) then
          for k = 0 to messages - 1 do
            Cluster.inject c s (fun () ->
              senders_fn s (Printf.sprintf "msg-%d.%d" s k))
          done)
      senders;
    let events = Cluster.run c in
    let ds = List.rev !deliveries in
    Printf.printf "topology %s, n=%d t=%d, %d events, %.3f virtual seconds\n"
      topo.Sim.Topology.label n (faults_t topo) events (Cluster.now c);
    Printf.printf "%d deliveries observed at party 0%s\n" (List.length ds)
      (if crashes = [] then "" else
         Printf.sprintf " (crashed: %s)" (String.concat "," (List.map string_of_int crashes)));
    if verbose then
      List.iter
        (fun (time, sender, msg) -> Printf.printf "  %8.3fs  P%d  %s\n" time sender msg)
        ds
    else begin
      (match ds with
       | [] -> ()
       | (t0, _, _) :: _ ->
         let tn = List.fold_left (fun _ (time, _, _) -> time) t0 ds in
         let count = List.length ds in
         Printf.printf "first delivery %.3fs, last %.3fs, avg inter-delivery %.3fs\n"
           t0 tn
           (if count > 1 then (tn -. t0) /. float_of_int (count - 1) else 0.0))
    end;
    if durable then begin
      Printf.printf "store (checkpoint interval %d):\n" checkpoint_interval;
      List.iter
        (fun (i, d) ->
          Printf.printf
            "  p%d  log=%dB  ckpts=%d  stable=%s  served=%d  adopted=%d\n" i
            (Store.Device.size (Durable.device d))
            (Durable.checkpoints d)
            (match Durable.stable_checkpoint d with
             | Some cp -> string_of_int cp.Store.Checkpoint.round
             | None -> "-")
            (Durable.snapshots_served d) (Durable.snapshots_adopted d))
        (List.sort compare !durables)
    end;
    finish_trace ();
    if stats then print_stats c
  in
  let senders =
    int_list_arg "senders" ~doc:"Comma-separated sending parties." ~default:[ 0 ]
  in
  let messages =
    Arg.(value & opt int 10 & info [ "messages" ] ~docv:"N" ~doc:"Messages per sender.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the full delivery trace.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Drive a broadcast channel over a simulated test-bed.")
    Term.(const run $ channel_arg $ topology_arg $ seed_arg $ scheme_arg
          $ no_fast_path_arg $ no_batching_arg $ pipeline_depth_arg
          $ no_adaptive_batch_arg $ no_batch_verify_arg $ no_share_cache_arg
          $ no_coin_pregen_arg $ durable_arg
          $ checkpoint_interval_arg ~default:256 $ store_dir_arg
          $ senders $ messages
          $ crashes_arg $ verbose $ trace_file_arg $ trace_format_arg
          $ stats_arg)

(* --- agree: one multi-valued or binary agreement --- *)

let agree_cmd =
  let run topo seed scheme proposals binary =
    let c = make_cluster ~seed ~scheme topo in
    let n = Cluster.n c in
    let decided = Array.make n None in
    if binary then begin
      let insts =
        Array.init n (fun i ->
          Binary_agreement.create (Cluster.runtime c i) ~pid:"cli-aba"
            ~on_decide:(fun b _ -> decided.(i) <- Some (string_of_bool b)))
      in
      List.iteri
        (fun i v ->
          if i < n then
            Cluster.inject c i (fun () -> Binary_agreement.propose insts.(i) (v <> 0)))
        proposals
    end
    else begin
      let insts =
        Array.init n (fun i ->
          Array_agreement.create (Cluster.runtime c i) ~pid:"cli-mvba"
            ~validator:(fun _ -> true)
            ~on_decide:(fun v -> decided.(i) <- Some v))
      in
      List.iteri
        (fun i v ->
          if i < n then
            Cluster.inject c i (fun () ->
              Array_agreement.propose insts.(i) (Printf.sprintf "value-%d" v)))
        proposals
    end;
    let events = Cluster.run c in
    Printf.printf "%d events, %.3f virtual seconds\n" events (Cluster.now c);
    Array.iteri
      (fun i d ->
        Printf.printf "party %d decided: %s\n" i
          (match d with Some v -> v | None -> "(nothing)"))
      decided
  in
  let proposals =
    int_list_arg "proposals" ~doc:"Per-party proposals (ints; binary uses 0/non-0)."
      ~default:[ 1; 0; 1; 0 ]
  in
  let binary =
    Arg.(value & flag & info [ "binary" ] ~doc:"Run binary agreement instead of multi-valued.")
  in
  Cmd.v (Cmd.info "agree" ~doc:"Run one Byzantine agreement instance.")
    Term.(const run $ topology_arg $ seed_arg $ scheme_arg $ proposals $ binary)

(* --- topologies: list the built-in test-beds --- *)

let topologies_cmd =
  let run () =
    List.iter
      (fun (t : Sim.Topology.t) ->
        Printf.printf "%s (n=%d):\n" t.Sim.Topology.label (Sim.Topology.n t);
        Array.iter
          (fun h ->
            Printf.printf "  %-18s exp(1024-bit) = %5.0f ms\n"
              h.Sim.Topology.name h.Sim.Topology.exp_ms)
          t.Sim.Topology.hosts)
      [ Sim.Topology.lan; Sim.Topology.internet; Sim.Topology.combined ]
  in
  Cmd.v (Cmd.info "topologies" ~doc:"List the built-in test-beds (Section 4).")
    Term.(const run $ const ())

(* --- crypto: exercise one threshold primitive --- *)

let crypto_cmd =
  let run seed op =
    let drbg = Hashes.Drbg.create ~seed in
    let group = Crypto.Group.generate ~drbg ~pbits:512 ~qbits:160 in
    match op with
    | "coin" ->
      let keys = Crypto.Threshold_coin.deal ~drbg ~group ~n:4 ~k:2 ~t:1 in
      let pub = keys.Crypto.Threshold_coin.public in
      for round = 1 to 5 do
        let name = Printf.sprintf "round-%d" round in
        let shares =
          List.map
            (fun i ->
              Crypto.Threshold_coin.release ~drbg pub
                keys.Crypto.Threshold_coin.shares.(i) ~name)
            [ 0; 2 ]
        in
        Printf.printf "coin %-8s = %b\n" name
          (Crypto.Threshold_coin.assemble_bit pub ~name shares)
      done
    | "sign" ->
      let keys =
        Crypto.Threshold_sig.deal ~drbg ~modulus_bits:512 ~nparties:4 ~k:3 ~t:1 ()
      in
      let pub = keys.Crypto.Threshold_sig.public in
      let msg = "the quick brown fox" in
      let shares =
        List.map
          (fun i ->
            Crypto.Threshold_sig.release ~drbg pub
              keys.Crypto.Threshold_sig.shares.(i) ~ctx:"cli" msg)
          [ 0; 1; 3 ]
      in
      let signature = Crypto.Threshold_sig.assemble pub ~ctx:"cli" msg shares in
      Printf.printf "assembled %d-byte RSA signature from shares {1,2,4}; verifies: %b\n"
        (String.length signature)
        (Crypto.Threshold_sig.verify pub ~ctx:"cli" ~signature msg)
    | "encrypt" ->
      let keys = Crypto.Threshold_enc.deal ~drbg ~group ~n:4 ~k:2 ~t:1 in
      let pub = keys.Crypto.Threshold_enc.public in
      let ct = Crypto.Threshold_enc.encrypt ~drbg pub ~label:"cli" "hello threshold world" in
      let shares =
        List.filter_map
          (fun i ->
            Crypto.Threshold_enc.dec_share ~drbg pub
              keys.Crypto.Threshold_enc.shares.(i) ct)
          [ 1; 2 ]
      in
      (match Crypto.Threshold_enc.combine pub ct shares with
       | Some m -> Printf.printf "decrypted with shares {2,3}: %S\n" m
       | None -> print_endline "decryption failed")
    | other -> Printf.eprintf "unknown op %S (coin|sign|encrypt)\n" other
  in
  let op =
    Arg.(value & opt string "coin" & info [ "op" ] ~docv:"OP" ~doc:"coin, sign or encrypt.")
  in
  Cmd.v (Cmd.info "crypto" ~doc:"Exercise one threshold-cryptography primitive.")
    Term.(const run $ seed_arg $ op)

(* --- trace-check: validate a trace file written by --trace --- *)

let trace_check_cmd =
  let read_file path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  (* Balanced B/E per (pid, tid) lane: the count never goes negative and
     ends at zero. *)
  let check_chrome (events : Trace.Json.value list) : (int, string) result =
    let lanes : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let lane_order : string list ref = ref [] in
    let depth k = Option.value ~default:0 (Hashtbl.find_opt lanes k) in
    let bump k d =
      if not (Hashtbl.mem lanes k) then lane_order := k :: !lane_order;
      Hashtbl.replace lanes k (depth k + d)
    in
    let key ev =
      let num f =
        match Option.bind (Trace.Json.member f ev) Trace.Json.num_opt with
        | Some v -> int_of_float v
        | None -> -1
      in
      Printf.sprintf "%d:%d" (num "pid") (num "tid")
    in
    let bad = ref None in
    List.iter
      (fun ev ->
        match Option.bind (Trace.Json.member "ph" ev) Trace.Json.str_opt with
        | Some "B" -> bump (key ev) 1
        | Some "E" ->
          let k = key ev in
          if depth k <= 0 && !bad = None then
            bad := Some (Printf.sprintf "unmatched E on lane %s" k);
          bump k (-1)
        | Some _ -> ()
        | None -> if !bad = None then bad := Some "event without a \"ph\" field")
      events;
    (match !bad with
     | None ->
       List.iter
         (fun k ->
           let d = depth k in
           if d <> 0 && !bad = None then
             bad := Some (Printf.sprintf "%d unclosed span(s) on lane %s" d k))
         (List.rev !lane_order)
     | Some _ -> ());
    match !bad with
    | Some msg -> Error msg
    | None -> Ok (List.length events)
  in
  let run file =
    let contents = read_file file in
    let outcome =
      match Trace.Json.parse contents with
      | Ok doc when Trace.Json.member "traceEvents" doc <> None ->
        (match Option.bind (Trace.Json.member "traceEvents" doc) Trace.Json.list_opt with
         | None -> Error "\"traceEvents\" is not an array"
         | Some events ->
           (match check_chrome events with
            | Ok n -> Ok ("chrome", n)
            | Error e -> Error e))
      | Ok _ -> Error "a JSON document without \"traceEvents\" is not a trace"
      | Error _ ->
        (* Not one JSON document: try JSONL, then check the event stream's
           causal well-formedness (every cause id emitted, edges monotone,
           per-message times ordered). *)
        (match Trace.Json.parse_lines contents with
         | Ok events ->
           (match Trace.Causal.validate (List.filter_map Trace.Causal.of_json events) with
            | [] -> Ok ("jsonl", List.length events)
            | errs ->
              Error ("causally ill-formed:\n  " ^ String.concat "\n  " errs))
         | Error e -> Error e)
    in
    match outcome with
    | Ok (kind, n) ->
      Printf.printf "%s: valid %s trace, %d events\n" file kind n
    | Error msg ->
      Printf.eprintf "%s: INVALID trace: %s\n" file msg;
      exit 1
  in
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Trace file to validate.")
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Validate a trace file (chrome: JSON + balanced spans; jsonl: \
             parses and is causally well-formed).")
    Term.(const run $ file)

(* --- critical-path: causal-DAG latency attribution over a JSONL trace --- *)

let critical_path_cmd =
  let read_file path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  let run file json min_coverage =
    match Trace.Causal.of_jsonl (read_file file) with
    | Error e ->
      Printf.eprintf "%s: not a JSONL trace: %s\n" file e;
      exit 1
    | Ok events ->
      (match Trace.Causal.validate events with
       | [] -> ()
       | errs ->
         Printf.eprintf "%s: causally ill-formed trace:\n  %s\n" file
           (String.concat "\n  " errs);
         exit 1);
      let rep = Trace.Causal.analyze events in
      print_string
        (if json then Trace.Causal.report_json rep
         else Trace.Causal.report_text rep);
      let worst = Trace.Causal.min_coverage rep in
      if worst < min_coverage then begin
        Printf.eprintf
          "critical-path: worst per-payload coverage %.4f is below the %.4f \
           floor\n"
        worst min_coverage;
        exit 1
      end
  in
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"JSONL trace file (written by --trace).")
  in
  let json =
    let fmt_conv = Arg.enum [ ("text", false); ("json", true) ] in
    Arg.(value & opt fmt_conv false
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: text (tables) or json \
                   (sintra-critical-path-v1).")
  in
  let min_coverage =
    Arg.(value & opt float 0.0
         & info [ "min-coverage" ] ~docv:"X"
             ~doc:"Fail unless every delivered payload's attributed fraction \
                   is at least $(docv) (the smoke gate uses 0.95).")
  in
  Cmd.v
    (Cmd.info "critical-path"
       ~doc:"Reconstruct the causal message DAG from a JSONL trace and \
             attribute each delivered payload's enqueue-to-deliver latency \
             to named phases (pending, queue, transit, crypto, compute) \
             along its critical path.")
    Term.(const run $ file $ json $ min_coverage)

(* --- bench-latency: traced offered-load ladder with phase attribution --- *)

let bench_latency_cmd =
  let run smoke out duration rates seed =
    let rates = match rates with [] -> None | rs -> Some rs in
    let report = Load.Latency.run ~smoke ?duration ?rates ~seed () in
    List.iter
      (fun (p : Load.Latency.point) ->
        Printf.printf
          "offered %6.1f req/s: %4d payloads  p50 %.3fs  p90 %.3fs  p99 \
           %.3fs  coverage %.3f\n"
          p.Load.Latency.offered_per_s p.Load.Latency.payloads
          p.Load.Latency.latency_p50_s p.Load.Latency.latency_p90_s
          p.Load.Latency.latency_p99_s p.Load.Latency.coverage)
      report.Load.Latency.points;
    write_file out (Load.Latency.to_json report);
    Printf.printf "wrote %s\n" out
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"CI-sized bench: 1 virtual second per point over three \
                   offered rates.")
  in
  let out =
    Arg.(value & opt string "BENCH_latency.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Output report path.")
  in
  let duration =
    Arg.(value & opt (some float) None
         & info [ "duration" ] ~docv:"SECONDS"
             ~doc:"Virtual seconds per measurement point (default 8, or 1 \
                   with --smoke).")
  in
  let rates =
    Arg.(value & opt (list float) []
         & info [ "rates" ] ~docv:"R1,R2,..."
             ~doc:"Offered-rate ladder in requests per virtual second \
                   (default 5,10,20,40,80, or 10,20,40 with --smoke).")
  in
  let seed =
    Arg.(value & opt string "latency"
         & info [ "seed" ] ~docv:"SEED" ~doc:"Determinism seed.")
  in
  Cmd.v
    (Cmd.info "bench-latency"
       ~doc:"Measure atomic-broadcast completion latency at several offered \
             loads with end-to-end causal tracing: per-point percentiles \
             plus a critical-path phase breakdown, written as \
             BENCH_latency.json.")
    Term.(const run $ smoke $ out $ duration $ rates $ seed)

(* --- latency-check: validate BENCH_latency.json --- *)

let latency_check_cmd =
  let read_file path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  let check (min_points : int) (min_coverage : float)
      (doc : Trace.Json.value) : (string, string) result =
    let str v f = Option.bind (Trace.Json.member f v) Trace.Json.str_opt in
    let num v f = Option.bind (Trace.Json.member f v) Trace.Json.num_opt in
    match str doc "format" with
    | Some "sintra-bench-latency-v1" ->
      (match Option.bind (Trace.Json.member "points" doc) Trace.Json.list_opt with
       | None -> Error "missing \"points\" array"
       | Some points when List.length points < min_points ->
         Error
           (Printf.sprintf "only %d point(s), need at least %d"
              (List.length points) min_points)
       | Some points ->
         let bad_point p =
           List.exists
             (fun f -> num p f = None)
             [ "offered_per_s"; "latency_p50_s"; "latency_p90_s";
               "latency_p99_s"; "unattributed_s"; "coverage" ]
           || Trace.Json.member "phases_s" p = None
           || Trace.Json.member "stages_s" p = None
         in
         if List.exists bad_point points then
           Error
             "a point lacks a latency percentile, coverage, or the \
              phases_s/stages_s breakdown"
         else begin
           let low =
             List.filter
               (fun p ->
                 match num p "coverage" with
                 | Some c -> c < min_coverage
                 | None -> true)
               points
           in
           if low <> [] then
             Error
               (Printf.sprintf
                  "%d point(s) attribute less than %.2f of measured latency"
                  (List.length low) min_coverage)
           else
             Ok
               (Printf.sprintf "%d points, all with phase attribution"
                  (List.length points))
         end)
    | Some other -> Error (Printf.sprintf "unknown format %S" other)
    | None -> Error "missing \"format\" field"
  in
  let run file min_points min_coverage =
    match Trace.Json.parse (read_file file) with
    | Error e ->
      Printf.eprintf "%s: INVALID: not JSON: %s\n" file e;
      exit 1
    | Ok doc ->
      (match check min_points min_coverage doc with
       | Ok msg -> Printf.printf "%s: valid latency report, %s\n" file msg
       | Error msg ->
         Printf.eprintf "%s: INVALID latency report: %s\n" file msg;
         exit 1)
  in
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"BENCH_latency.json file to validate.")
  in
  let min_points =
    Arg.(value & opt int 3
         & info [ "min-points" ] ~docv:"N"
             ~doc:"Fail unless the report carries at least $(docv) offered \
                   loads.")
  in
  let min_coverage =
    Arg.(value & opt float 0.0
         & info [ "min-coverage" ] ~docv:"X"
             ~doc:"Fail unless every point attributes at least fraction \
                   $(docv) of its measured latency.")
  in
  Cmd.v
    (Cmd.info "latency-check"
       ~doc:"Validate a BENCH_latency.json report: parses, carries enough \
             offered-load points, and each point's critical-path \
             attribution meets the coverage floor.")
    Term.(const run $ file $ min_points $ min_coverage)

(* --- explore: the vopr seed-sweeping schedule explorer --- *)

let explore_cmd =
  let print_failure ~kind ~base_seed (f : Vopr.Explorer.failure) : unit =
    Printf.printf "seed #%d (%s): oracle=%s: %s\n" f.Vopr.Explorer.index
      f.Vopr.Explorer.run_seed f.Vopr.Explorer.outcome.Vopr.Explorer.oracle
      f.Vopr.Explorer.outcome.Vopr.Explorer.reason;
    Printf.printf "  schedule: %s\n"
      (match Vopr.Schedule.to_string f.Vopr.Explorer.schedule with
       | "" -> "(empty)"
       | s -> s);
    Printf.printf "  shrunk (%d runs): %s -> oracle=%s: %s\n"
      f.Vopr.Explorer.shrink_runs
      (match Vopr.Schedule.to_string f.Vopr.Explorer.shrunk with
       | "" -> "(empty)"
       | s -> s)
      f.Vopr.Explorer.shrunk_outcome.Vopr.Explorer.oracle
      f.Vopr.Explorer.shrunk_outcome.Vopr.Explorer.reason;
    Printf.printf "  repro: %s\n"
      (Vopr.Explorer.repro ~workload:kind ~base_seed f)
  in
  let print_obs (o : Vopr.Oracle.obs) : unit =
    Printf.printf
      "  run: %d events, %.3f virtual seconds, quiesced=%b, degraded=[%s], corrupted=[%s]\n"
      o.Vopr.Oracle.events o.Vopr.Oracle.vtime o.Vopr.Oracle.quiesced
      (String.concat ";" (List.map string_of_int o.Vopr.Oracle.degraded))
      (String.concat ";" (List.map string_of_int o.Vopr.Oracle.corrupted));
    Printf.printf "  sent: %d\n" (List.length o.Vopr.Oracle.sent);
    Array.iteri
      (fun p log ->
        Printf.printf "  party %d: %d delivered%s%s%s\n" p (List.length log)
          (match o.Vopr.Oracle.decisions.(p) with
           | Some d -> Printf.sprintf ", decided %s" d
           | None -> "")
          (match o.Vopr.Oracle.proposals.(p) with
           | Some v -> Printf.sprintf ", proposed %s" v
           | None -> "")
          (match o.Vopr.Oracle.flagged.(p) with
           | [] -> ""
           | fl ->
             Printf.sprintf ", flagged [%s]"
               (String.concat "; "
                  (List.map
                     (fun (off, why) -> Printf.sprintf "%d: %s" off why)
                     fl)));
        List.iter
          (fun (sender, m) -> Printf.printf "    %d: %S\n" sender m)
          log)
      o.Vopr.Oracle.delivered
  in
  let run kind seeds seed index mutations max_failures shrink_budget progress
      verbose =
    let runner ~seed sched = Vopr.Workload.run ~kind ~seed sched in
    let oracles = Vopr.Oracle.all kind in
    let generate ~run_seed =
      (* The durable workload scripts a power failure of party 3 itself,
         which spends the whole t=1 fault budget: its generated schedules
         carry only benign noise (delays, dups, replays). *)
      let max_faulty = if kind = Vopr.Oracle.Durable then 0 else 1 in
      Vopr.Explorer.schedule_of ~run_seed ~n:4 ~max_faulty
        ~allow_equiv:(Vopr.Workload.byz_supported kind)
    in
    match (mutations, index) with
    | Some muts, _ ->
      (* Replay one run under an explicit schedule (a repro line). *)
      let idx = Option.value index ~default:0 in
      let run_seed = Vopr.Explorer.run_seed_of ~base:seed idx in
      (match Vopr.Schedule.of_string muts with
       | None ->
         Printf.eprintf "malformed --mutations %S\n" muts;
         exit 2
       | Some sched ->
         if verbose then (
           match runner ~seed:run_seed sched with
           | obs -> print_obs obs
           | exception e ->
             Printf.printf "  run raised: %s\n" (Printexc.to_string e));
         (match Vopr.Explorer.eval ~runner ~oracles ~seed:run_seed sched with
          | Vopr.Explorer.Clean ->
            Printf.printf "replay %s [%s]: clean\n" run_seed
              (Vopr.Schedule.to_string sched)
          | Vopr.Explorer.Failed f ->
            Printf.printf "replay %s [%s]: FAIL oracle=%s: %s\n" run_seed
              (Vopr.Schedule.to_string sched) f.Vopr.Explorer.oracle
              f.Vopr.Explorer.reason;
            exit 1))
    | None, Some idx ->
      (* Re-run one sweep index with its generated schedule. *)
      let run_seed = Vopr.Explorer.run_seed_of ~base:seed idx in
      let sched = generate ~run_seed in
      Printf.printf "seed #%d (%s): schedule %s\n" idx run_seed
        (match Vopr.Schedule.to_string sched with "" -> "(empty)" | s -> s);
      (match Vopr.Explorer.eval ~runner ~oracles ~seed:run_seed sched with
       | Vopr.Explorer.Clean -> Printf.printf "clean\n"
       | Vopr.Explorer.Failed f ->
         Printf.printf "FAIL oracle=%s: %s\n" f.Vopr.Explorer.oracle
           f.Vopr.Explorer.reason;
         exit 1)
    | None, None ->
      let t0 = Sys.time () in
      let progress_fn =
        if progress then
          Some
            (fun k ->
              if k > 0 && k mod 50 = 0 then (
                Printf.printf "  ... %d seeds\n" k;
                flush stdout))
        else None
      in
      let report =
        Vopr.Explorer.explore ?progress:progress_fn ~max_failures
          ~shrink_budget ~runner ~oracles ~generate ~seed ~seeds ()
      in
      let dt = Sys.time () -. t0 in
      List.iter (print_failure ~kind ~base_seed:seed)
        report.Vopr.Explorer.failures;
      Printf.printf
        "explore workload=%s seed=%s: %d seeds, %d runs, %d failure(s)%s\n"
        (Vopr.Oracle.kind_to_string kind)
        seed seeds report.Vopr.Explorer.runs
        (List.length report.Vopr.Explorer.failures)
        (if dt > 0.0 then
           Printf.sprintf " (%.1f seeds/sec)" (float_of_int seeds /. dt)
         else "");
      if report.Vopr.Explorer.failures <> [] then exit 1
  in
  let workload =
    let workload_conv =
      Arg.enum
        [ ("reliable", Vopr.Oracle.Reliable);
          ("consistent", Vopr.Oracle.Consistent); ("aba", Vopr.Oracle.Aba);
          ("mvba", Vopr.Oracle.Mvba); ("atomic", Vopr.Oracle.Atomic);
          ("secure", Vopr.Oracle.Secure);
          ("throughput", Vopr.Oracle.Throughput);
          ("pipeline", Vopr.Oracle.Pipeline);
          ("crypto-amortized", Vopr.Oracle.Amortized);
          ("durable", Vopr.Oracle.Durable) ]
    in
    Arg.(value & opt workload_conv Vopr.Oracle.Atomic
         & info [ "workload" ] ~docv:"KIND"
             ~doc:"reliable, consistent, aba, mvba, atomic, secure, \
                   throughput, pipeline, crypto-amortized or durable.")
  in
  let seeds =
    Arg.(value & opt int 100
         & info [ "seeds" ] ~docv:"N" ~doc:"Seed indices to sweep.")
  in
  let base_seed =
    Arg.(value & opt string "vopr"
         & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed of the sweep.")
  in
  let index =
    Arg.(value & opt (some int) None
         & info [ "index" ] ~docv:"K"
             ~doc:"Run only sweep index $(docv) (with its generated \
                   schedule, or --mutations if given).")
  in
  let mutations =
    Arg.(value & opt (some string) None
         & info [ "mutations" ] ~docv:"LIST"
             ~doc:"Replay an explicit comma-separated mutation list (from a \
                   repro line) instead of generating one.")
  in
  let max_failures =
    Arg.(value & opt int 1
         & info [ "max-failures" ] ~docv:"N"
             ~doc:"Stop the sweep after $(docv) failing seeds.")
  in
  let shrink_budget =
    Arg.(value & opt int 200
         & info [ "shrink-budget" ] ~docv:"N"
             ~doc:"Extra runs the shrinker may spend per failure.")
  in
  let progress =
    Arg.(value & flag & info [ "progress" ] ~doc:"Print sweep progress.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose"; "v" ]
             ~doc:"With --mutations: dump the full observation record \
                   (per-party deliveries, decisions, flags).")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Sweep seeded adversarial schedules over a protocol workload, \
             check the protocol oracles, and shrink any counterexample to \
             a minimal replayable schedule.")
    Term.(const run $ workload $ seeds $ base_seed $ index $ mutations
          $ max_failures $ shrink_budget $ progress $ verbose)

(* --- perf-check: validate BENCH_perf.json written by `bench/main.exe perf` --- *)

let perf_check_cmd =
  let read_file path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  (* Floors on the speedups the docs claim: the DLEQ fast path must beat
     the reference by 1.5x everywhere.  The batch-verification claims are
     stated at the paper's 1024-bit moduli — there one k-share batch
     verification must beat k single reference verifications by 3x for
     Shoup signature shares and by 2x for coin (DLEQ) shares (whose
     reference singles are cheaper relative to the batch's fixed costs).
     At the 512-bit quick-smoke size the proof transcripts are half as
     wide, so the amortization is structurally smaller and the floors
     relax accordingly. *)
  let floors ~(speedup_bits : int) =
    if speedup_bits >= 1024 then
      [ ("dleq_verify", 1.5); ("tsig_batch_verify", 3.0); ("coin_batch_verify", 2.0) ]
    else
      [ ("dleq_verify", 1.5); ("tsig_batch_verify", 2.0); ("coin_batch_verify", 1.5) ]
  in
  let check ~(require_bits : int option) (doc : Trace.Json.value)
      : (string, string) result =
    let str f = Option.bind (Trace.Json.member f doc) Trace.Json.str_opt in
    let num v f = Option.bind (Trace.Json.member f v) Trace.Json.num_opt in
    match str "schema" with
    | Some "sintra-bench-perf-v2" ->
      (match Option.bind (Trace.Json.member "results" doc) Trace.Json.list_opt with
       | None -> Error "missing \"results\" array"
       | Some results ->
         let bad_result =
           List.exists
             (fun r ->
               Option.bind (Trace.Json.member "name" r) Trace.Json.str_opt = None
               || num r "mod_bits" = None
               || num r "ms_per_op" = None)
             results
         in
         let bits_of r = match num r "mod_bits" with Some b -> int_of_float b | None -> 0 in
         if results = [] then Error "empty \"results\" array"
         else if bad_result then
           Error "a result lacks \"name\", numeric \"mod_bits\" or \"ms_per_op\""
         else begin
           match require_bits with
           | Some bits when not (List.exists (fun r -> bits_of r = bits) results) ->
             Error (Printf.sprintf "no result rows at the required %d-bit modulus" bits)
           | Some bits
             when (match num doc "speedup_mod_bits" with
                   | Some b -> int_of_float b < bits
                   | None -> true) ->
             Error
               (Printf.sprintf
                  "speedups are not quoted at the required %d-bit modulus" bits)
           | Some _ | None ->
             (match Trace.Json.member "speedups" doc with
              | None -> Error "missing \"speedups\" object"
              | Some sp ->
                let missing =
                  List.filter
                    (fun k -> num sp k = None)
                    [ "montgomery"; "multi_exp"; "fixed_base"; "dleq_verify";
                      "tsig_batch_verify"; "coin_batch_verify" ]
                in
                if missing <> [] then
                  Error ("speedups missing: " ^ String.concat ", " missing)
                else begin
                  let speedup_bits =
                    match num doc "speedup_mod_bits" with
                    | Some b -> int_of_float b
                    | None -> 0
                  in
                  let below =
                    List.filter_map
                      (fun (k, floor) ->
                        match num sp k with
                        | Some s when s >= floor -> None
                        | Some s ->
                          Some (Printf.sprintf "%s %.2fx < %.1fx floor" k s floor)
                        | None -> Some (k ^ " is not a number"))
                      (floors ~speedup_bits)
                  in
                  if below <> [] then Error (String.concat "; " below)
                  else
                    let bits_list =
                      List.sort_uniq compare (List.map bits_of results)
                    in
                    Ok (Printf.sprintf
                          "%d results at %s-bit moduli; dleq %.2fx, tsig batch \
                           %.2fx, coin batch %.2fx (at %.0f bits)"
                          (List.length results)
                          (String.concat "/" (List.map string_of_int bits_list))
                          (Option.value ~default:0.0 (num sp "dleq_verify"))
                          (Option.value ~default:0.0 (num sp "tsig_batch_verify"))
                          (Option.value ~default:0.0 (num sp "coin_batch_verify"))
                          (Option.value ~default:0.0 (num doc "speedup_mod_bits")))
                end)
         end)
    | Some other ->
      Error (Printf.sprintf "unknown schema %S (expected \"sintra-bench-perf-v2\")" other)
    | None -> Error "missing \"schema\" field"
  in
  let run require_bits file =
    match Trace.Json.parse (read_file file) with
    | Error e ->
      Printf.eprintf "%s: INVALID: not JSON: %s\n" file e;
      exit 1
    | Ok doc ->
      (match check ~require_bits doc with
       | Ok msg -> Printf.printf "%s: valid perf report, %s\n" file msg
       | Error msg ->
         Printf.eprintf "%s: INVALID perf report: %s\n" file msg;
         exit 1)
  in
  let require_bits =
    Arg.(value & opt (some int) None
         & info [ "require-bits" ] ~docv:"BITS"
             ~doc:"Require at least one result row at this modulus size \
                   (the committed full report must carry the paper's \
                   1024-bit rows; quick smoke reports need not).")
  in
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"BENCH_perf.json file to validate.")
  in
  Cmd.v
    (Cmd.info "perf-check"
       ~doc:"Validate a BENCH_perf.json fast-path report (v2 shape with \
             per-row mod_bits, the 1.5x DLEQ-verification floor, and the \
             3x batch-verification floors).")
    Term.(const run $ require_bits $ file)

(* --- bench-throughput: the latency-vs-offered-load sweep --- *)

let bench_throughput_cmd =
  let run smoke out duration rates clients seed =
    let rates = match rates with [] -> None | rs -> Some rs in
    let report =
      Load.Sweep.run ~smoke ?duration ?rates ?clients_per_party:clients ~seed
        ()
    in
    List.iter
      (fun (s : Load.Sweep.series) ->
        Printf.printf
          "n=%d %-9s saturation %7.1f req/s  (%d rounds, %d delivered)\n"
          s.Load.Sweep.n
          (if s.Load.Sweep.batched then "batched" else "unbatched")
          s.Load.Sweep.saturation.Load.Sweep.throughput_per_s
          s.Load.Sweep.rounds s.Load.Sweep.saturation.Load.Sweep.delivered)
      report.Load.Sweep.series;
    (match
       ( Load.Sweep.saturation_throughput report ~n:4 ~batched:true,
         Load.Sweep.saturation_throughput report ~n:4 ~batched:false )
     with
     | Some b, Some u when u > 0.0 ->
       Printf.printf "n=4 batched/unbatched saturation ratio: %.2fx\n" (b /. u)
     | _ -> ());
    write_file out (Load.Sweep.to_json report);
    Printf.printf "wrote %s\n" out
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"CI-sized sweep: n=4 only, 2 virtual seconds per point, \
                   a single offered rate.")
  in
  let out =
    Arg.(value & opt string "BENCH_throughput.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Output report path.")
  in
  let duration =
    Arg.(value & opt (some float) None
         & info [ "duration" ] ~docv:"SECONDS"
             ~doc:"Virtual seconds per measurement point (default 10, or 2 \
                   with --smoke).")
  in
  let rates =
    Arg.(value & opt (list float) []
         & info [ "rates" ] ~docv:"R1,R2,..."
             ~doc:"Offered-rate ladder in requests per virtual second \
                   (default 5,10,20,40,80, or a single rate with --smoke); \
                   lets a report be reproduced byte for byte from the \
                   command line.")
  in
  let clients =
    Arg.(value & opt (some int) None
         & info [ "clients" ] ~docv:"N"
             ~doc:"Closed-loop clients per party for the saturation probe \
                   (default 64).")
  in
  let seed =
    Arg.(value & opt string "throughput"
         & info [ "seed" ] ~docv:"SEED" ~doc:"Determinism seed.")
  in
  Cmd.v
    (Cmd.info "bench-throughput"
       ~doc:"Measure atomic-broadcast throughput, batched vs unbatched \
             (--no-batching semantics): open-loop latency-vs-offered-load \
             curves plus a closed-loop saturation probe, written as \
             BENCH_throughput.json.")
    Term.(const run $ smoke $ out $ duration $ rates $ clients $ seed)

(* --- adaptive-check: AIMD batch-cap convergence under a bursty load --- *)

let adaptive_check_cmd =
  let run seed max_batch =
    (* A bursty closed-loop workload on the benchmark configuration: the
       adaptive cap must rise above its floor while the backlog is deep,
       and must never leave [min 8 max_batch, max_batch]. *)
    let cfg = Load.Sweep.sweep_cfg ~n:4 ~t:1 ~max_batch () in
    let c = Load.Sweep.make_cluster ~seed:("adaptive|" ^ seed) cfg in
    let chans =
      Array.init 4 (fun i ->
        Atomic_channel.create (Cluster.runtime c i) ~pid:"adapt"
          ~on_deliver:(fun ~sender:_ _ -> ()) ())
    in
    for wave = 0 to 7 do
      Cluster.at c ~time:(0.01 +. (0.25 *. float_of_int wave)) (fun () ->
        for i = 0 to 3 do
          Cluster.inject c i (fun () ->
            for k = 0 to 5 do
              Atomic_channel.send chans.(i)
                (Printf.sprintf "m%d.%d.%d" i wave k)
            done)
        done)
    done;
    let floor = min 8 max_batch in
    let hi = ref 0 and lo = ref max_int in
    for k = 1 to 750 do
      Cluster.at c ~time:(float_of_int k *. 0.02) (fun () ->
        let cap = Atomic_channel.batch_limit chans.(0) in
        if cap > !hi then hi := cap;
        if cap < !lo then lo := cap)
    done;
    ignore (Cluster.run c ~until:300.0);
    let delivered = Atomic_channel.deliveries chans.(0) in
    Printf.printf
      "adaptive-check: cap ranged [%d, %d] (floor %d, ceiling %d), %d \
       payloads delivered\n"
      !lo !hi floor max_batch delivered;
    let ok =
      !lo >= floor && !hi <= max_batch && !hi > floor && delivered = 192
    in
    if not ok then begin
      Printf.eprintf
        "adaptive-check: FAILED (want floor <= cap <= ceiling, growth \
         above the floor, and all 192 payloads)\n";
      exit 1
    end
  in
  let seed =
    Arg.(value & opt string "adaptive"
         & info [ "seed" ] ~docv:"SEED" ~doc:"Determinism seed.")
  in
  let max_batch =
    Arg.(value & opt int 256
         & info [ "max-batch" ] ~docv:"B"
             ~doc:"Vector-cap ceiling for the run (default 256).")
  in
  Cmd.v
    (Cmd.info "adaptive-check"
       ~doc:"Drive a bursty atomic-broadcast workload and verify the \
             adaptive batch cap converges between its AIMD floor and the \
             max-batch ceiling.")
    Term.(const run $ seed $ max_batch)

(* --- throughput-check: validate BENCH_throughput.json --- *)

let throughput_check_cmd =
  let read_file path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  let check (min_ratio : float) (doc : Trace.Json.value) :
      (string, string) result =
    let str v f = Option.bind (Trace.Json.member f v) Trace.Json.str_opt in
    let num v f = Option.bind (Trace.Json.member f v) Trace.Json.num_opt in
    match str doc "format" with
    | Some "sintra-bench-throughput-v1" ->
      (match Option.bind (Trace.Json.member "series" doc) Trace.Json.list_opt with
       | None -> Error "missing \"series\" array"
       | Some [] -> Error "empty \"series\" array"
       | Some series ->
         let modes =
           List.filter_map (fun s -> str s "mode") series |> List.sort_uniq compare
         in
         if not (List.mem "batched" modes && List.mem "unbatched" modes) then
           Error
             (Printf.sprintf "need both modes, found: %s"
                (String.concat ", " modes))
         else begin
           let bad =
             List.exists
               (fun s ->
                 num s "n" = None
                 || (match
                       Option.bind (Trace.Json.member "points" s)
                         Trace.Json.list_opt
                     with
                     | Some (_ :: _) -> false
                     | _ -> true)
                 || (match Trace.Json.member "saturation" s with
                     | Some sat -> num sat "throughput_per_s" = None
                     | None -> true))
               series
           in
           if bad then
             Error
               "a series lacks \"n\", a non-empty \"points\" array, or a \
                \"saturation\" point"
           else begin
             match
               Option.bind (Trace.Json.member "crossover" doc) (fun c ->
                 num c "ratio")
             with
             | None -> Error "missing \"crossover\" with numeric \"ratio\""
             | Some ratio when ratio >= min_ratio ->
               Ok
                 (Printf.sprintf
                    "%d series, both modes, batched/unbatched saturation \
                     ratio %.2fx"
                    (List.length series) ratio)
             | Some ratio ->
               Error
                 (Printf.sprintf
                    "saturation ratio %.2fx is below the %.2fx floor" ratio
                    min_ratio)
           end
         end)
    | Some other -> Error (Printf.sprintf "unknown format %S" other)
    | None -> Error "missing \"format\" field"
  in
  let run file min_ratio =
    match Trace.Json.parse (read_file file) with
    | Error e ->
      Printf.eprintf "%s: INVALID: not JSON: %s\n" file e;
      exit 1
    | Ok doc ->
      (match check min_ratio doc with
       | Ok msg -> Printf.printf "%s: valid throughput report, %s\n" file msg
       | Error msg ->
         Printf.eprintf "%s: INVALID throughput report: %s\n" file msg;
         exit 1)
  in
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"BENCH_throughput.json file to validate.")
  in
  let min_ratio =
    Arg.(value & opt float 1.0
         & info [ "min-ratio" ] ~docv:"X"
             ~doc:"Fail unless the batched/unbatched saturation ratio is at \
                   least $(docv) (the committed full-run report is held to \
                   10.0).")
  in
  Cmd.v
    (Cmd.info "throughput-check"
       ~doc:"Validate a BENCH_throughput.json report: parses, carries both \
             batched and unbatched series with data points, and meets the \
             saturation-ratio floor.")
    Term.(const run $ file $ min_ratio)

(* --- store-check: validate write-ahead log files --- *)

let store_check_cmd =
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let run verbose files =
    let failed = ref false in
    List.iter
      (fun file ->
        if not (Sys.file_exists file) then begin
          Printf.eprintf "%s: INVALID: no such file\n" file;
          failed := true
        end
        else begin
          let rp = Store.Log.replay_string (read_file file) in
          let rounds = ref 0 and deltas = ref 0 and snaps = ref 0 in
          let bad_digest = ref None in
          List.iter
            (fun r ->
              match r with
              | Store.Log.Round { round; batch } ->
                incr rounds;
                if verbose then
                  Printf.printf "  round %-6d  batch %dB\n" round
                    (String.length batch)
              | Store.Log.Delta { key; data } ->
                incr deltas;
                if verbose then
                  Printf.printf "  delta %s = %dB\n" key (String.length data)
              | Store.Log.Snapshot { checkpoint; state } ->
                incr snaps;
                if
                  Hashes.Sha256.digest state
                  <> checkpoint.Store.Checkpoint.digest
                then bad_digest := Some checkpoint.Store.Checkpoint.round;
                if verbose then
                  Printf.printf "  snapshot round %-6d  state %dB  cert %dB\n"
                    checkpoint.Store.Checkpoint.round (String.length state)
                    (String.length checkpoint.Store.Checkpoint.cert))
            rp.Store.Log.records;
          let summary =
            Printf.sprintf "%d record(s) (%d round(s), %d delta(s), %d \
                            snapshot(s), %dB)"
              (List.length rp.Store.Log.records) !rounds !deltas !snaps
              rp.Store.Log.bytes
          in
          match (!bad_digest, rp.Store.Log.status) with
          | Some r, _ ->
            Printf.eprintf
              "%s: INVALID: snapshot at round %d: state does not match the \
               certified digest\n" file r;
            failed := true
          | None, Store.Log.Corrupt (off, why) ->
            Printf.eprintf "%s: INVALID: corrupt frame at offset %d: %s\n"
              file off why;
            failed := true
          | None, Store.Log.Torn off ->
            Printf.printf
              "%s: valid prefix, %s; torn tail at offset %d (crash \
               mid-append — replay drops it)\n" file summary off
          | None, Store.Log.Complete ->
            Printf.printf "%s: valid log, %s\n" file summary
        end)
      files;
    if !failed then exit 1
  in
  let files =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"FILE" ~doc:"Write-ahead log file(s) to validate.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every record.")
  in
  Cmd.v
    (Cmd.info "store-check"
       ~doc:"Validate write-ahead log files (framing, CRC, snapshot \
             digests).  A torn tail is reported but accepted — that is the \
             normal aftermath of a crash mid-append; corruption or a \
             digest mismatch fails with exit 1.")
    Term.(const run $ verbose $ files)

(* --- durability-check: the durability layer's end-to-end gate --- *)

let durability_check_cmd =
  let run topo seed rounds interval =
    if interval <= 0 then begin
      prerr_endline "sintra_sim durability-check: --checkpoint-interval must be positive";
      exit 2
    end;
    let n = Sim.Topology.n topo in
    let pipeline_depth = 4 in
    (* One variant of the run: same cluster, same seed, same injected
       traffic; [durable] additionally attaches the durability layer to
       every party and, after traffic has drained, power-fails the last
       party with a WIPED device — its restart must adopt a peer snapshot,
       not replay history it no longer has. *)
    let run_variant ~(durable : bool) =
      let c = make_cluster ~seed ~scheme:Config.Multi topo in
      let deliveries : (int * string) list ref = ref [] in
      let backlog_peak = ref 0 in
      let devs = Array.init n (fun _ -> Store.Device.mem ()) in
      let durs : Durable.t list ref array = Array.init n (fun _ -> ref []) in
      let chans : Atomic_channel.t option array = Array.make n None in
      let make_party i =
        let rt = Cluster.runtime c i in
        let ch =
          Atomic_channel.create rt ~pid:"dchk"
            ~on_deliver:(fun ~sender m ->
              if i = 0 then deliveries := (sender, m) :: !deliveries)
            ()
        in
        if durable then begin
          let d =
            Durable.attach rt ~chan:ch ~pid:"dchk" ~dev:devs.(i) ~interval ()
          in
          durs.(i) := d :: !(durs.(i))
        end;
        chans.(i) <- Some ch
      in
      for i = 0 to n - 1 do
        make_party i;
        Runtime.on_rebuild (Cluster.runtime c i) (fun () -> make_party i)
      done;
      (* Phase 1: drive the history one round per injected payload —
         inject, drain, repeat, round-robin over the senders.  Draining
         between payloads keeps the round count exact (independent of
         topology and adaptive batching), so --rounds really is the
         history length.  Identical in both variants, so delivery order
         must match byte for byte. *)
      let events = ref 0 in
      for k = 0 to rounds - 1 do
        let p = k mod n in
        let payload = Printf.sprintf "p%d.m%d" p k in
        Cluster.inject c p (fun () ->
          match chans.(p) with
          | Some ch -> Atomic_channel.send ch payload
          | None -> ());
        events := !events + Cluster.run c;
        match chans.(0) with
        | Some ch ->
          backlog_peak :=
            Stdlib.max !backlog_peak (Atomic_channel.backlog_rounds ch)
        | None -> ()
      done;
      (* Phase 2 (durable only): power-fail the last party at the drained
         tip with a WIPED device, restart it, and drain the recovery — the
         rebuild happens "at round N", after the full history. *)
      if durable then begin
        let victim = n - 1 in
        Runtime.crash (Cluster.runtime c victim);
        Store.Device.rewrite devs.(victim) "";
        Runtime.recover (Cluster.runtime c victim);
        events := !events + Cluster.run c
      end;
      (List.rev !deliveries, !backlog_peak, !events, devs, durs, chans)
    in
    let plain_log, plain_peak, plain_events, _, _, _ =
      run_variant ~durable:false
    in
    let dur_log, dur_peak, dur_events, devs, durs, chans =
      run_variant ~durable:true
    in
    Printf.printf
      "durability-check topology=%s seed=%s: %d rounds, checkpoint interval %d\n"
      topo.Sim.Topology.label seed rounds interval;
    Printf.printf "  plain:   %7d events, %4d deliveries at p0, backlog peak %d\n"
      plain_events (List.length plain_log) plain_peak;
    Printf.printf "  durable: %7d events, %4d deliveries at p0, backlog peak %d\n"
      dur_events (List.length dur_log) dur_peak;
    (match (chans.(0), !(durs.(0))) with
     | Some ch, d0 :: _ ->
       Printf.printf
         "  history: %d round(s), stable checkpoint %s, GC floor %d, p0 log \
          %dB\n"
         (Atomic_channel.current_round ch)
         (match Durable.stable_checkpoint d0 with
          | Some cp -> string_of_int cp.Store.Checkpoint.round
          | None -> "none")
         (Atomic_channel.gc_floor ch)
         (Store.Device.size devs.(0))
     | _ -> ());
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
    (* 1. The storage plane must not perturb the protocol schedule: the
       delivery sequence at party 0 is byte-identical with and without the
       durability layer. *)
    if plain_log <> dur_log then begin
      let describe log =
        String.concat " "
          (List.map (fun (s, m) -> Printf.sprintf "%d:%s" s m) log)
      in
      fail "delivery order diverged between the plain and durable runs";
      Printf.printf "    plain:   %s\n    durable: %s\n" (describe plain_log)
        (describe dur_log)
    end
    else Printf.printf "  delivery order: byte-identical across variants\n";
    (* 2. Checkpoint GC keeps the resident DECIDED backlog bounded by the
       checkpoint interval (plus one interval of straggler slack and the
       pipeline window), independent of history length. *)
    let bound = (2 * interval) + (2 * pipeline_depth) + 4 in
    if dur_peak > bound then
      fail "durable backlog peak %d exceeds the bound %d" dur_peak bound
    else Printf.printf "  backlog bound:  peak %d <= %d\n" dur_peak bound;
    (* 3. The wiped party's restart adopted a verified peer snapshot and
       caught up without a full-history replay. *)
    let victim = n - 1 in
    (match !(durs.(victim)) with
     | newest :: _ :: _ ->
       if Durable.restored_from newest <> -1 then
         fail "rebuilt p%d restored from a wiped disk (impossible)" victim;
       if Durable.snapshots_adopted newest < 1 then
         fail "rebuilt p%d adopted no peer snapshot" victim;
       let tip p =
         match chans.(p) with
         | Some ch -> Atomic_channel.current_round ch
         | None -> -1
       in
       if tip victim < tip 0 then
         fail "rebuilt p%d stopped at round %d, cluster is at %d" victim
           (tip victim) (tip 0);
       if !failures = [] then
         Printf.printf
           "  rebuilt p%d:    adopted a verified snapshot (stable round %s), \
            caught up to round %d\n"
           victim
           (match Durable.stable_checkpoint newest with
            | Some cp -> string_of_int cp.Store.Checkpoint.round
            | None -> "-")
           (tip victim)
     | _ -> fail "p%d was never rebuilt" victim);
    (* 4. Log round-trip: re-encoding party 0's parsed log reproduces the
       device bytes exactly. *)
    let rp = Store.Log.replay devs.(0) in
    let reenc =
      String.concat "" (List.map Store.Log.frame rp.Store.Log.records)
    in
    if rp.Store.Log.status <> Store.Log.Complete then
      fail "p0's log did not parse to completion"
    else if reenc <> Store.Device.contents devs.(0) then
      fail "re-encoding p0's parsed log does not reproduce the device bytes"
    else
      Printf.printf "  log round-trip: %d record(s), byte-identical re-encoding\n"
        (List.length rp.Store.Log.records);
    if !failures <> [] then begin
      List.iter (Printf.eprintf "INVALID: %s\n") (List.rev !failures);
      exit 1
    end
  in
  let rounds =
    Arg.(value & opt int 48
         & info [ "rounds" ] ~docv:"N"
             ~doc:"History length in atomic-broadcast rounds (one payload \
                   per round).")
  in
  Cmd.v
    (Cmd.info "durability-check"
       ~doc:"End-to-end durability gate: runs the same seed with and \
             without the durability layer and checks byte-identical \
             delivery order, a bounded DECIDED backlog, snapshot adoption \
             by a party restarted on a wiped disk, and a byte-exact log \
             round-trip.")
    Term.(const run $ topology_arg $ seed_arg $ rounds
          $ checkpoint_interval_arg ~default:8)

let () =
  let doc = "SINTRA: secure intrusion-tolerant replication (DSN 2002), simulated" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "sintra_sim" ~doc)
          [ run_cmd; agree_cmd; explore_cmd; topologies_cmd; crypto_cmd;
            trace_check_cmd; critical_path_cmd; perf_check_cmd;
            bench_throughput_cmd; throughput_check_cmd; adaptive_check_cmd;
            bench_latency_cmd; latency_check_cmd; store_check_cmd;
            durability_check_cmd ]))
