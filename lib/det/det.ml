(* Canonical-order iteration over hash tables.

   OCaml's [Hashtbl] iterates in an order that depends on the hash seed and
   insertion history, so any protocol decision derived from [Hashtbl.iter]
   or [Hashtbl.fold] output is a replay-determinism hazard: two runs (or two
   honest parties) can assemble the same set in different orders and diverge
   in message bytes, signature-share subsets or tie-breaks.  All protocol
   code goes through this module instead — it is the single allowed seam for
   raw table iteration, and `sintra_lint` (rule hashtbl-order) enforces
   that. *)

(* lint: allow hashtbl-order — this module IS the canonical-order seam *)
let bindings (tbl : ('k, 'v) Hashtbl.t) ~(compare : 'k -> 'k -> int) : ('k * 'v) list =
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.sort (fun (ka, _) (kb, _) -> compare ka kb) items

let keys (tbl : ('k, 'v) Hashtbl.t) ~(compare : 'k -> 'k -> int) : 'k list =
  List.map fst (bindings tbl ~compare)

let values (tbl : ('k, 'v) Hashtbl.t) ~(compare : 'k -> 'k -> int) : 'v list =
  List.map snd (bindings tbl ~compare)

let iter (tbl : ('k, 'v) Hashtbl.t) ~(compare : 'k -> 'k -> int)
    (f : 'k -> 'v -> unit) : unit =
  List.iter (fun (k, v) -> f k v) (bindings tbl ~compare)

let fold (tbl : ('k, 'v) Hashtbl.t) ~(compare : 'k -> 'k -> int)
    (f : 'k -> 'v -> 'acc -> 'acc) (init : 'acc) : 'acc =
  List.fold_left (fun acc (k, v) -> f k v acc) init (bindings tbl ~compare)

(* Comparators for the key shapes the protocols use. *)
let by_int : int -> int -> int = Int.compare

let by_int_pair (a1, a2) (b1, b2) : int =
  let c = Int.compare a1 b1 in
  if c <> 0 then c else Int.compare a2 b2
