(** Canonical-order iteration over hash tables.

    [Hashtbl] iteration order depends on the hash seed and insertion
    history; protocol decisions derived from it are a replay-determinism
    hazard.  This module is the single allowed seam for table iteration in
    protocol code: every accessor sorts the bindings by key under an
    explicit comparator, so two honest parties (or two replays) always see
    the same order.  The [sintra_lint] rule [hashtbl-order] forbids raw
    [Hashtbl.iter]/[Hashtbl.fold] outside this module. *)

val bindings : ('k, 'v) Hashtbl.t -> compare:('k -> 'k -> int) -> ('k * 'v) list
(** All bindings, sorted by key.  Tables written through
    [Hashtbl.replace]/guarded [Hashtbl.add] have one binding per key. *)

val keys : ('k, 'v) Hashtbl.t -> compare:('k -> 'k -> int) -> 'k list
(** Keys in sorted order, one per binding. *)

val values : ('k, 'v) Hashtbl.t -> compare:('k -> 'k -> int) -> 'v list
(** Values in key order — the common case: votes/shares by sender index. *)

val iter : ('k, 'v) Hashtbl.t -> compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> unit
(** [Hashtbl.iter] in ascending key order. *)

val fold :
  ('k, 'v) Hashtbl.t -> compare:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) -> 'acc -> 'acc
(** [Hashtbl.fold] in ascending key order (left to right). *)

val by_int : int -> int -> int
(** [Int.compare], for 0-based party / sequence-number keys. *)

val by_int_pair : int * int -> int * int -> int
(** Lexicographic order on [(orig, seq)]-style keys. *)
