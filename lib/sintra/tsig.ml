(* The threshold-signature abstraction used by the broadcast and agreement
   protocols: either Shoup's proper RSA threshold signatures or the
   multi-signature implementation (a vector of ordinary RSA signatures).
   The paper stresses that swapping one for the other requires no change to
   the protocols — this module is that seam. *)

type public =
  | Shoup_pub of Crypto.Threshold_sig.public
  | Multi_pub of Crypto.Multi_sig.public

type secret =
  | Shoup_sec of Crypto.Threshold_sig.public * Crypto.Threshold_sig.secret_share
  | Multi_sec of Crypto.Multi_sig.public * Crypto.Multi_sig.secret_share

type share =
  | Shoup_share of Crypto.Threshold_sig.share
  | Multi_share of Crypto.Multi_sig.share

let public_of_secret = function
  | Shoup_sec (p, _) -> Shoup_pub p
  | Multi_sec (p, _) -> Multi_pub p

let k = function
  | Shoup_pub p -> p.Crypto.Threshold_sig.k
  | Multi_pub p -> p.Crypto.Multi_sig.k

let share_origin = function
  | Shoup_share s -> s.Crypto.Threshold_sig.origin
  | Multi_share s -> s.Crypto.Multi_sig.origin

let release ~(drbg : Hashes.Drbg.t) (sec : secret) ~(ctx : string) (msg : string) : share =
  match sec with
  | Shoup_sec (pub, sk) -> Shoup_share (Crypto.Threshold_sig.release ~drbg pub sk ~ctx msg)
  | Multi_sec (pub, sk) -> Multi_share (Crypto.Multi_sig.release pub sk ~ctx msg)

let verify_share (pub : public) ~(ctx : string) (msg : string) (s : share) : bool =
  match pub, s with
  | Shoup_pub p, Shoup_share sh -> Crypto.Threshold_sig.verify_share p ~ctx msg sh
  | Multi_pub p, Multi_share sh -> Crypto.Multi_sig.verify_share p ~ctx msg sh
  | _ -> false

let assemble (pub : public) ~(ctx : string) (msg : string) (shares : share list) : string =
  match pub with
  | Shoup_pub p ->
    let shares =
      List.filter_map (function Shoup_share s -> Some s | Multi_share _ -> None) shares
    in
    Crypto.Threshold_sig.assemble p ~ctx msg shares
  | Multi_pub p ->
    let shares =
      List.filter_map (function Multi_share s -> Some s | Shoup_share _ -> None) shares
    in
    Crypto.Multi_sig.assemble p ~ctx msg shares

let verify (pub : public) ~(ctx : string) ~(signature : string) (msg : string) : bool =
  match pub with
  | Shoup_pub p -> Crypto.Threshold_sig.verify p ~ctx ~signature msg
  | Multi_pub p -> Crypto.Multi_sig.verify p ~ctx ~signature msg

let signature_bytes (pub : public) : int =
  match pub with
  | Shoup_pub p -> Crypto.Threshold_sig.signature_bytes p
  | Multi_pub p -> Crypto.Multi_sig.signature_bytes p

(* Wire codecs for shares. *)

let enc_share (b : Wire.Enc.t) (s : share) : unit =
  match s with
  | Shoup_share sh ->
    Wire.Enc.u8 b 0;
    Wire.Enc.int b sh.Crypto.Threshold_sig.origin;
    Wire.Enc.bytes b (Bignum.Nat.to_bytes_be sh.Crypto.Threshold_sig.x_i);
    Wire.Enc.bytes b (Bignum.Nat.to_bytes_be sh.Crypto.Threshold_sig.proof_v);
    Wire.Enc.bytes b (Bignum.Nat.to_bytes_be sh.Crypto.Threshold_sig.proof_x);
    Wire.Enc.bytes b (Bignum.Nat.to_bytes_be sh.Crypto.Threshold_sig.proof_z)
  | Multi_share sh ->
    Wire.Enc.u8 b 1;
    Wire.Enc.int b sh.Crypto.Multi_sig.origin;
    Wire.Enc.bytes b sh.Crypto.Multi_sig.signature

let dec_share (d : Wire.Dec.t) : share =
  match Wire.Dec.u8 d with
  | 0 ->
    let origin = Wire.Dec.int d in
    let x_i = Bignum.Nat.of_bytes_be (Wire.Dec.bytes d) in
    let proof_v = Bignum.Nat.of_bytes_be (Wire.Dec.bytes d) in
    let proof_x = Bignum.Nat.of_bytes_be (Wire.Dec.bytes d) in
    let proof_z = Bignum.Nat.of_bytes_be (Wire.Dec.bytes d) in
    Shoup_share { Crypto.Threshold_sig.origin; x_i; proof_v; proof_x; proof_z }
  | 1 ->
    let origin = Wire.Dec.int d in
    let signature = Wire.Dec.bytes d in
    Multi_share { Crypto.Multi_sig.origin; signature }
  | tag -> Wire.fail "Tsig.dec_share: bad tag %d" tag
