(** Randomized binary Byzantine agreement: the Cachin-Kursawe-Shoup
    protocol (PODC 2000), Section 2.3 of the paper.

    Rounds of justified pre-votes and main-votes, with the threshold coin
    breaking symmetry; terminates in an expected constant number of rounds.
    {b Agreement}: honest parties decide the same bit.  {b Validity}: the
    decision was proposed by an honest party.  Every vote carries
    non-interactively verifiable justification (threshold signatures over
    vote statements, or the previous round's coin shares), so corrupted
    parties cannot vote outside the protocol.

    [?bias] replaces the round-1 coin by a fixed value: the protocol then
    always decides the preferred value when it detects an honest party
    proposed it.  [?validator] adds external validity: an honest party only
    decides a value it holds validation data for, and the data accompanies
    the decision (deferred until it arrives, if necessary). *)

type t

val create :
  ?bias:bool ->
  ?validator:(bool -> string -> bool) ->
  Runtime.t -> pid:string ->
  on_decide:(bool -> string option -> unit) -> t
(** [on_decide value proof] fires exactly once; [proof] is the external
    validation data when a validator is installed. *)

val propose : ?proof:string -> t -> bool -> unit
(** Start this party's participation.  Each party proposes exactly once.
    @raise Invalid_argument on a second proposal, or (with a validator) if
    the proof does not validate the value. *)

val decided : t -> bool option
(** The decision at this party, if reached. *)

val abort : t -> unit
(** Terminate the local instance immediately. *)
