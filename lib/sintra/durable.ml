(* The durability controller: one per party and channel, binding the
   deterministic store (lib/store) to the atomic broadcast channel.

   Three jobs:

   1. WAL.  Every delivered round is appended to the device through the
      channel's round hook — the decided batch exactly as agreed on the
      wire — so a restart replays the delivery sequence byte for byte.
      Replayed tail rounds are NOT trusted from disk: each batch is
      re-validated through the channel's signature checks
      (Atomic_channel.adopt_round), so a tampered disk can at worst lose
      data, never forge it.  The CRC catches accidents; the signatures
      catch malice.

   2. Checkpoints.  Every [interval] rounds each party digests its
      canonical channel state (Atomic_channel.encode_state — identical
      bytes at every honest party), threshold-signs the statement
      (pid, round, digest) with its agreement-quorum key, and broadcasts
      the share.  n-t valid shares assemble into a certificate no
      coalition of t parties can forge.  A stable checkpoint compacts the
      log (snapshot record + history since) and garbage-collects the
      channel's in-memory DECIDED backlog below it.

   3. Snapshots.  A straggler asking for history below the GC floor — or
      broadcasting SNAP_REQ after a rebuild — is served the latest
      certificate plus state blob; the receiver re-digests the blob,
      verifies the certificate, and only then installs the state.  A bad
      snapshot from a Byzantine peer is flagged and dropped. *)

type stats = {
  mutable checkpoints : int;
  mutable snapshots_served : int;
  mutable snapshots_adopted : int;
  mutable replayed_rounds : int;
  mutable restored_from : int;
}

type t = {
  rt : Runtime.t;
  base_pid : string;          (* the channel's pid: names the statement *)
  dpid : string;              (* our own network pid *)
  chan : Atomic_channel.t;
  dev : Store.Device.t;
  interval : int;
  pub : Tsig.public;
  charge : Charge.t;
      (* the storage core's charging context (rt.store_charge): durability
         work never lands on the protocol CPU meter *)
  drbg : Hashes.Drbg.t;
      (* own randomness stream, forked from the party's: checkpoint share
         blinding must not consume protocol randomness, or a durable run's
         protocol schedule would diverge from a non-durable one *)
  (* cp round -> (state blob, digest, signed statement) for checkpoints we
     computed ourselves *)
  pending : (int, string * string * string) Hashtbl.t;
  (* cp round -> signer -> share (verified lazily, through the cache) *)
  shares : (int, (int, Tsig.share) Hashtbl.t) Hashtbl.t;
  (* dst -> stable round last served, to avoid re-sending one snapshot *)
  served : (int, int) Hashtbl.t;
  mutable stable : Store.Checkpoint.t option;
  mutable stable_state : string;
  mutable deltas : (string * string) list;   (* replayed deltas, oldest first *)
  mutable replaying : bool;
  mutable last_announce : int;   (* channel round of the last Snap_req *)
  stats : stats;
}

type msg =
  | Cp_share of int * Tsig.share
  | Snap_req of int
  | Snap of Store.Checkpoint.t * string

let enc_msg (b : Wire.Enc.t) (m : msg) : unit =
  match m with
  | Cp_share (round, share) ->
    Wire.Enc.u8 b 0;
    Wire.Enc.int b round;
    Tsig.enc_share b share
  | Snap_req round ->
    Wire.Enc.u8 b 1;
    Wire.Enc.int b round
  | Snap (cp, state) ->
    Wire.Enc.u8 b 2;
    Store.Checkpoint.enc b cp;
    Wire.Enc.bytes b state

let dec_msg (d : Wire.Dec.t) : msg =
  match Wire.Dec.u8 d with
  | 0 ->
    let round = Wire.Dec.int d in
    let share = Tsig.dec_share d in
    Cp_share (round, share)
  | 1 -> Snap_req (Wire.Dec.int d)
  | 2 ->
    let cp = Store.Checkpoint.dec d in
    let state = Wire.Dec.bytes d in
    Snap (cp, state)
  | tag -> Wire.fail "durable: unknown tag %d" tag

let trace (t : t) : Trace.Ctx.t = t.rt.Runtime.trace

let stable_round (t : t) : int =
  match t.stable with Some cp -> cp.Store.Checkpoint.round | None -> 0

let gauges (t : t) : unit =
  let tr = trace t in
  Trace.Ctx.gauge tr "store.log_bytes" (float_of_int (Store.Device.size t.dev));
  Trace.Ctx.gauge tr "store.ckpt_rounds" (float_of_int (stable_round t));
  Trace.Ctx.gauge tr "store.backlog"
    (float_of_int (Atomic_channel.backlog_rounds t.chan))

(* Rewrite the device to [Snapshot; latest delta per key; rounds >= cp].
   A delta supersedes earlier deltas with the same key, so only the newest
   survives (first-occurrence key order, kept deterministic by the fold). *)
let compact (t : t) (cp : Store.Checkpoint.t) (state : string) : unit =
  let rp = Store.Log.replay t.dev in
  let deltas =
    List.fold_left
      (fun acc r ->
        match r with
        | Store.Log.Delta { key; data } ->
          if List.mem_assoc key acc then
            List.map (fun (k, d) -> if k = key then (k, data) else (k, d)) acc
          else acc @ [ (key, data) ]
        | _ -> acc)
      [] rp.Store.Log.records
  in
  let rounds =
    List.filter
      (function
        | Store.Log.Round { round; _ } -> round >= cp.Store.Checkpoint.round
        | _ -> false)
      rp.Store.Log.records
  in
  let records =
    Store.Log.Snapshot { checkpoint = cp; state }
    :: List.map (fun (key, data) -> Store.Log.Delta { key; data }) deltas
    @ rounds
  in
  let bytes = Store.Log.rewrite t.dev records in
  Charge.store_append t.charge ~bytes

let stabilize (t : t) (cp : Store.Checkpoint.t) (state : string) : unit =
  t.stable <- Some cp;
  t.stable_state <- state;
  t.stats.checkpoints <- t.stats.checkpoints + 1;
  compact t cp state;
  (* GC with one interval of slack below the stable round (PBFT's high/low
     water marks): a transiently-lagging party is then caught up by DECIDED
     round replay — which re-delivers the payloads its application missed —
     rather than a snapshot, which would skip them. *)
  Atomic_channel.gc_below t.chan
    ~round:(max 0 (cp.Store.Checkpoint.round - t.interval));
  List.iter
    (fun r ->
      if r <= cp.Store.Checkpoint.round then begin
        Hashtbl.remove t.pending r;
        Hashtbl.remove t.shares r
      end)
    (Det.keys t.pending ~compare:Det.by_int);
  List.iter
    (fun r -> if r <= cp.Store.Checkpoint.round then Hashtbl.remove t.shares r)
    (Det.keys t.shares ~compare:Det.by_int);
  let tr = trace t in
  if Trace.Ctx.enabled tr then
    Trace.Ctx.span_end tr ~pid:t.dpid ~cat:"store"
      ~args:[ ("round", Trace.Event.Int cp.Store.Checkpoint.round) ]
      (Printf.sprintf "checkpoint %d" cp.Store.Checkpoint.round);
  gauges t

(* Try to assemble a certificate for a checkpoint we computed: batch-verify
   the collected shares (cached ones cost a probe), assemble n-t of them,
   and check the result before trusting it. *)
let try_stable (t : t) (round : int) : unit =
  if round > stable_round t then
    match Hashtbl.find_opt t.pending round with
    | None -> ()
    | Some (state, digest, stmt) ->
      (match Hashtbl.find_opt t.shares round with
       | None -> ()
       | Some by_signer ->
         let entries = Det.bindings by_signer ~compare:Det.by_int in
         let shares = List.map snd entries in
         let k = Tsig.k t.pub in
         if List.length shares >= k then begin
           let ok =
             Verify.tsig_shares ~charge:t.charge t.rt ~pub:t.pub ~ctx:t.dpid
               stmt shares
           in
           let valid =
             List.filteri (fun i _ -> ok.(i)) shares |> List.filteri (fun i _ -> i < k)
           in
           if List.length valid >= k then begin
             Charge.tsig_assemble t.charge ~k;
             let cert = Tsig.assemble t.pub ~ctx:t.dpid stmt valid in
             if
               Verify.tsig_signature ~charge:t.charge t.rt ~pub:t.pub
                 ~ctx:t.dpid ~signature:cert stmt
             then stabilize t { Store.Checkpoint.round; digest; cert } state
           end
         end)

(* Open a checkpoint at [cp_round] = the channel's current base: digest the
   canonical state, sign our share, broadcast it (the broadcast includes
   ourselves, so our own share arrives through the same handler). *)
let begin_checkpoint (t : t) ~(cp_round : int) : unit =
  let state = Atomic_channel.encode_state t.chan in
  Charge.hash t.charge ~bytes:(String.length state);
  let digest = Hashes.Sha256.digest state in
  let stmt =
    Store.Checkpoint.statement ~pid:t.base_pid ~round:cp_round ~digest
  in
  Hashtbl.replace t.pending cp_round (state, digest, stmt);
  let tr = trace t in
  if Trace.Ctx.enabled tr then
    Trace.Ctx.span_begin tr ~pid:t.dpid ~cat:"store"
      ~args:[ ("round", Trace.Event.Int cp_round) ]
      (Printf.sprintf "checkpoint %d" cp_round);
  Charge.tsig_release t.charge;
  let share =
    Tsig.release ~drbg:t.drbg t.rt.Runtime.keys.Dealer.ag_tsig
      ~ctx:t.dpid stmt
  in
  Runtime.broadcast_store t.rt ~pid:t.dpid
    (Wire.encode (fun b -> enc_msg b (Cp_share (cp_round, share))));
  (* Shares from faster parties may have arrived before we reached the
     round; they were parked and can be judged now. *)
  try_stable t cp_round

(* Broadcast our round on the storage plane.  Peers ahead reply with
   retained DECIDED rounds (or a snapshot, if our round fell below their
   GC floor); peers at or behind our round reply with nothing, so
   announcements are self-terminating.  Re-announced every catch-up window
   of progress and after each snapshot adoption: a rebuilt straggler in an
   otherwise quiet cluster sees no stale INITs to trigger the channel's
   own re-REQUESTs, so the pull is on us. *)
let announce (t : t) : unit =
  t.last_announce <- Atomic_channel.current_round t.chan;
  Runtime.broadcast_store t.rt ~pid:t.dpid
    (Wire.encode (fun b -> enc_msg b (Snap_req t.last_announce)))

let on_round (t : t) ~(round : int) ~(batch : string) : unit =
  if not t.replaying then begin
    let bytes = Store.Log.append t.dev (Store.Log.Round { round; batch }) in
    Charge.store_append t.charge ~bytes;
    gauges t;
    if t.interval > 0 && (round + 1) mod t.interval = 0 then
      begin_checkpoint t ~cp_round:(round + 1);
    if round + 1 >= t.last_announce + Atomic_channel.catchup_window then
      announce t;
    (* The round hook runs inside a protocol handler: fold the storage
       work just charged into the storage core's busy clock. *)
    Sim.Net.oob_advance t.rt.Runtime.net t.rt.Runtime.me
  end

(* Serve the latest stable snapshot to a straggler whose needed history is
   below the GC floor; at most once per (party, stable round). *)
let serve_snapshot (t : t) ~(dst : int) : unit =
  match t.stable with
  | None -> ()
  | Some cp ->
    let r = cp.Store.Checkpoint.round in
    if Hashtbl.find_opt t.served dst <> Some r then begin
      Hashtbl.replace t.served dst r;
      t.stats.snapshots_served <- t.stats.snapshots_served + 1;
      let tr = trace t in
      if Trace.Ctx.enabled tr then
        Trace.Ctx.instant tr ~pid:t.dpid ~cat:"store"
          ~args:
            [ ("dst", Trace.Event.Int dst); ("round", Trace.Event.Int r) ]
          "snapshot_serve";
      Runtime.send_store t.rt ~dst ~pid:t.dpid
        (Wire.encode (fun b -> enc_msg b (Snap (cp, t.stable_state))));
      (* catchup_miss fires from the channel's protocol-plane backlog
         service: flush the transfer cost onto the storage core. *)
      Sim.Net.oob_advance t.rt.Runtime.net t.rt.Runtime.me
    end

(* Verify a snapshot before trusting it — wherever it came from (a peer or
   our own disk): the state blob must hash to the certified digest and the
   certificate must verify under the agreement-quorum public key.  This is
   the Byzantine-safety core: no single replica's word (or disk) is ever
   adopted unverified. *)
let snapshot_valid (t : t) (cp : Store.Checkpoint.t) (state : string) : bool =
  Charge.hash t.charge ~bytes:(String.length state);
  let digest = Hashes.Sha256.digest state in
  String.equal digest cp.Store.Checkpoint.digest
  && begin
    let stmt =
      Store.Checkpoint.statement ~pid:t.base_pid
        ~round:cp.Store.Checkpoint.round ~digest
    in
    Verify.tsig_signature ~charge:t.charge t.rt ~pub:t.pub ~ctx:t.dpid
      ~signature:cp.Store.Checkpoint.cert stmt
  end

let adopt_snapshot (t : t) ~(src : int) (cp : Store.Checkpoint.t)
    (state : string) : unit =
  if cp.Store.Checkpoint.round > Atomic_channel.current_round t.chan then begin
    if not (snapshot_valid t cp state) then
      Invariant.flag t.rt.Runtime.inv ~offender:src
        (Printf.sprintf "durable %s: invalid snapshot for round %d" t.base_pid
           cp.Store.Checkpoint.round)
    else if Atomic_channel.install_state t.chan state then begin
      t.stable <- Some cp;
      t.stable_state <- state;
      compact t cp state;
      Atomic_channel.gc_below t.chan ~round:cp.Store.Checkpoint.round;
      t.stats.snapshots_adopted <- t.stats.snapshots_adopted + 1;
      (* The tail beyond the adopted checkpoint still has to come from the
         peers' retained backlogs: ask from the new round. *)
      announce t;
      let tr = trace t in
      if Trace.Ctx.enabled tr then
        Trace.Ctx.instant tr ~pid:t.dpid ~cat:"store"
          ~args:
            [ ("src", Trace.Event.Int src);
              ("round", Trace.Event.Int cp.Store.Checkpoint.round) ]
          "snapshot_adopt";
      gauges t
    end
  end

let handle (t : t) ~(src : int) (body : string) : unit =
  match Wire.decode body dec_msg with
  | None -> ()
  | Some m ->
    Invariant.sender_in_range t.rt.Runtime.inv src;
    Runtime.handling t.rt ~pid:t.dpid ~cat:"store"
      (match m with
       | Cp_share _ -> "cp_share"
       | Snap_req _ -> "snap_req"
       | Snap _ -> "snap");
    (match m with
     | Cp_share (round, share) ->
       (* Park the share (bounded lead) and judge it lazily: verification
          needs the statement, which needs our own state at that round. *)
       if
         round > stable_round t
         && round <= stable_round t + (4 * max 1 t.interval)
         && Tsig.share_origin share = src + 1
       then begin
         let by_signer =
           match Hashtbl.find_opt t.shares round with
           | Some m -> m
           | None ->
             let m = Hashtbl.create 8 in
             Hashtbl.add t.shares round m;
             m
         in
         if not (Hashtbl.mem by_signer src) then begin
           Hashtbl.add by_signer src share;
           try_stable t round
         end
       end
     | Snap_req from_round ->
       (* Funnel into the channel's catch-up: retained rounds are served
          as DECIDED; a request below the GC floor fires the snapshot
          path. *)
       Atomic_channel.serve_backlog t.chan ~dst:src ~from_round
     | Snap (cp, state) -> adopt_snapshot t ~src cp state)

let log_delta (t : t) ~(key : string) ~(data : string) : unit =
  if not t.replaying then begin
    let bytes = Store.Log.append t.dev (Store.Log.Delta { key; data }) in
    Charge.store_append t.charge ~bytes;
    gauges t;
    Sim.Net.oob_advance t.rt.Runtime.net t.rt.Runtime.me
  end

(* The delta key persisting this party's own-INIT water-mark: the highest
   round it ever initiated.  Written write-ahead (before the INIT leaves),
   superseded per round like any delta, and replayed at restore to bar
   re-initiating rounds a pre-crash INIT may already cover — a second INIT
   for the same round is equivocation in every peer's eyes. *)
let init_hwm_key = "abc.init_hwm"

(* Restore from the device at attach time.  The snapshot record (if the
   log was compacted) is verified exactly like a network snapshot; tail
   rounds re-enter through Atomic_channel.adopt_round, which re-validates
   the batch signatures.  A torn tail is tolerated (valid prefix kept); a
   snapshot that fails verification distrusts the whole device — the party
   restarts empty and fetches a snapshot from its peers instead. *)
let restore (t : t) : unit =
  let rp = Store.Log.replay t.dev in
  (match rp.Store.Log.status with
   | Store.Log.Complete -> ()
   | Store.Log.Torn off ->
     Trace.Ctx.instant (trace t) ~pid:t.dpid ~cat:"store"
       ~args:[ ("offset", Trace.Event.Int off) ]
       "store_torn_tail"
   | Store.Log.Corrupt (off, _) ->
     Trace.Ctx.instant (trace t) ~pid:t.dpid ~cat:"store"
       ~args:[ ("offset", Trace.Event.Int off) ]
       "store_corrupt");
  t.replaying <- true;
  let distrusted = ref false in
  List.iter
    (fun r ->
      if not !distrusted then
        match r with
        | Store.Log.Snapshot { checkpoint; state } ->
          if
            snapshot_valid t checkpoint state
            && Atomic_channel.install_state t.chan state
          then begin
            t.stable <- Some checkpoint;
            t.stable_state <- state;
            t.stats.restored_from <- checkpoint.Store.Checkpoint.round
          end
          else distrusted := true
        | Store.Log.Round { round; batch } ->
          let before = Atomic_channel.current_round t.chan in
          Atomic_channel.adopt_round t.chan ~round ~batch;
          if Atomic_channel.current_round t.chan > before then
            t.stats.replayed_rounds <-
              t.stats.replayed_rounds + (Atomic_channel.current_round t.chan - before)
        | Store.Log.Delta { key; data } -> t.deltas <- t.deltas @ [ (key, data) ])
    rp.Store.Log.records;
  t.replaying <- false;
  if !distrusted then begin
    ignore (Store.Log.rewrite t.dev []);
    t.stable <- None;
    t.stable_state <- "";
    t.stats.restored_from <- -1;
    Trace.Ctx.instant (trace t) ~pid:t.dpid ~cat:"store" "store_distrusted"
  end;
  (* Re-anchor the GC floor at whatever we restored: history below it is
     covered by the (verified) snapshot, not the backlog. *)
  (match t.stable with
   | Some cp -> Atomic_channel.gc_below t.chan ~round:cp.Store.Checkpoint.round
   | None -> ());
  gauges t

let attach (rt : Runtime.t) ~(chan : Atomic_channel.t) ~(pid : string)
    ~(dev : Store.Device.t) ?(interval = 256) () : t =
  let t =
    {
      rt;
      base_pid = pid;
      dpid = pid ^ "!dur";
      chan;
      dev;
      interval;
      pub = Tsig.public_of_secret rt.Runtime.keys.Dealer.ag_tsig;
      charge = rt.Runtime.store_charge;
      drbg = Hashes.Drbg.fork rt.Runtime.drbg (pid ^ "!store");
      pending = Hashtbl.create 4;
      shares = Hashtbl.create 4;
      served = Hashtbl.create 4;
      stable = None;
      stable_state = "";
      deltas = [];
      replaying = false;
      last_announce = 0;
      stats =
        {
          checkpoints = 0;
          snapshots_served = 0;
          snapshots_adopted = 0;
          replayed_rounds = 0;
          restored_from = -1;
        };
    }
  in
  Runtime.register_store rt ~pid:t.dpid (fun ~src body -> handle t ~src body);
  Atomic_channel.set_round_hook chan (fun ~round ~batch ->
    on_round t ~round ~batch);
  Atomic_channel.set_catchup_miss chan (fun ~dst -> serve_snapshot t ~dst);
  restore t;
  (* Crash-recovery discipline for our own INITs: restore the persisted
     initiation water-mark and bar self-INITs at or below it, then hook
     the channel so every new initiation is persisted write-ahead. *)
  let hwm =
    ref
      (List.fold_left
         (fun acc (key, data) ->
           if key = init_hwm_key then
             match int_of_string_opt data with
             | Some r -> Stdlib.max acc r
             | None -> acc
           else acc)
         (-1) t.deltas)
  in
  if !hwm >= 0 then Atomic_channel.set_init_floor chan ~round:(!hwm + 1);
  Atomic_channel.set_init_hook chan (fun ~round ->
    if round > !hwm then begin
      hwm := round;
      log_delta t ~key:init_hwm_key ~data:(string_of_int round)
    end);
  (* Announce where we stand: peers ahead of us reply with retained rounds
     or — if our needed history is GC'd everywhere — a signed snapshot.
     At a fresh cluster start this is a no-op round trip. *)
  announce t;
  (* Restore and announcement ran synchronously (attach or rebuild hook):
     their cost belongs to the storage core, not the protocol CPU. *)
  Sim.Net.oob_advance rt.Runtime.net rt.Runtime.me;
  t

let observe_optimistic (t : t) (oc : Optimistic_channel.t) : unit =
  Optimistic_channel.set_epoch_hook oc (fun ~epoch ~data ->
    ignore epoch;
    log_delta t ~key:"opt.epoch" ~data)

let device (t : t) : Store.Device.t = t.dev
let stable_checkpoint (t : t) : Store.Checkpoint.t option = t.stable
let deltas (t : t) : (string * string) list = t.deltas
let checkpoints (t : t) : int = t.stats.checkpoints
let snapshots_served (t : t) : int = t.stats.snapshots_served
let snapshots_adopted (t : t) : int = t.stats.snapshots_adopted
let replayed_rounds (t : t) : int = t.stats.replayed_rounds
let restored_from (t : t) : int = t.stats.restored_from
