(* Cached and batched verification of shares and assembled signatures.

   Protocol verify paths go through this module so the two amortization
   mechanisms compose in one place:

   - the verified-share cache ([Config.share_cache]): a share or signature
     that already passed verification under the same
     (scheme, statement+share digest, sender, index) key is accepted for
     the price of a hash-table probe, so retransmits, replayed
     justifications and catch-up closings stop re-paying exponentiations;
   - batch verification ([Config.batch_verify]): same-statement share
     proofs are checked as one random-linear-combination equation
     (Crypto.Batch), with bisection isolating bad shares so Byzantine
     senders are still identified exactly.

   Acceptance is EXACTLY that of the reference one-at-a-time verifiers:
   cache keys cover the share bytes (a mutated retransmit misses and is
   verified for real), only shares that passed verification are inserted,
   and Crypto.Batch agrees with the single verifiers item by item.  Only
   the virtual-CPU charges move. *)

(* Cache schemes.  The key's digest covers the statement AND the share
   bytes, so a key identifies one concrete verification, not just a
   (statement, sender) slot — a corrupted retransmit cannot ride on an
   earlier honest share's entry. *)
let sch_tsig_share = "tsig-share"
let sch_tsig_sig = "tsig-sig"
let sch_coin = "coin"
let sch_enc = "enc-share"

let len_sum (parts : string list) : int =
  List.fold_left (fun a s -> a + String.length s) 0 parts

(* The S5 lint rule (cache-key-digest) checks that every Share_cache
   insertion is keyed through a Hashes digest; this is that digest.
   [charge] names the meter the hashing cost lands on: the party's
   protocol CPU by default, or the storage core when a durability
   endpoint verifies checkpoint certificates out-of-band. *)
let stmt_digest (charge : Charge.t) (parts : string list) : string =
  Charge.hash charge ~bytes:(len_sum parts);
  Hashes.Sha256.digest_list parts

let probe (rt : Runtime.t) ~(charge : Charge.t) ~(scheme : string)
    ~(digest : string) ~(sender : int) ~(index : int) : bool =
  rt.Runtime.cfg.Config.share_cache
  && begin
    if Crypto.Share_cache.mem rt.Runtime.cache ~scheme ~digest ~sender ~index
    then begin
      Charge.cache_hit charge;
      Trace.Ctx.incr rt.Runtime.trace "verify.cache_hit";
      true
    end
    else begin
      Trace.Ctx.incr rt.Runtime.trace "verify.cache_miss";
      false
    end
  end

let record (rt : Runtime.t) ~(group : string) ~(scheme : string)
    ~(digest : string) ~(sender : int) ~(index : int) : unit =
  if rt.Runtime.cfg.Config.share_cache then begin
    Crypto.Share_cache.add rt.Runtime.cache ~group ~scheme ~digest ~sender
      ~index;
    Trace.Ctx.gauge rt.Runtime.trace "verify.cache_size"
      (float_of_int (Crypto.Share_cache.size rt.Runtime.cache))
  end

(* --- threshold-signature shares --- *)

let tsig_share_digest (charge : Charge.t) ~(ctx : string) (msg : string)
    (share : Tsig.share) : string =
  stmt_digest charge [ ctx; msg; Wire.encode (fun b -> Tsig.enc_share b share) ]

let tsig_share ?charge (rt : Runtime.t) ~(pub : Tsig.public) ~(ctx : string)
    (msg : string) (share : Tsig.share) : bool =
  let charge = Option.value charge ~default:rt.Runtime.charge in
  let digest = tsig_share_digest charge ~ctx msg share in
  let sender = Tsig.share_origin share in
  if probe rt ~charge ~scheme:sch_tsig_share ~digest ~sender ~index:sender
  then true
  else begin
    Charge.tsig_verify_share charge;
    let ok = Tsig.verify_share pub ~ctx msg share in
    if ok then
      record rt ~group:ctx ~scheme:sch_tsig_share ~digest ~sender
        ~index:sender;
    ok
  end

(* Batch-verify same-message shares; [valid.(i)] reports share [i].  The
   combined random-linear-combination equation only exists for Shoup
   shares; multi-signature shares (independent RSA signatures) and
   singleton lists fall back to cached single verification. *)
let tsig_shares ?charge (rt : Runtime.t) ~(pub : Tsig.public) ~(ctx : string)
    (msg : string) (shares : Tsig.share list) : bool array =
  let charge = Option.value charge ~default:rt.Runtime.charge in
  let cfg = rt.Runtime.cfg in
  let n = List.length shares in
  let valid = Array.make n false in
  let keyed =
    List.mapi (fun i s -> (i, tsig_share_digest charge ~ctx msg s, s)) shares
  in
  let fresh =
    List.filter
      (fun (i, digest, s) ->
        let sender = Tsig.share_origin s in
        if probe rt ~charge ~scheme:sch_tsig_share ~digest ~sender ~index:sender
        then begin
          valid.(i) <- true;
          false
        end
        else true)
      keyed
  in
  let shoup =
    List.filter_map
      (fun (i, d, s) ->
        match s with
        | Tsig.Shoup_share sh -> Some (i, d, sh)
        | Tsig.Multi_share _ -> None)
      fresh
  in
  let accept (i, digest, s) =
    valid.(i) <- true;
    let sender = Tsig.share_origin s in
    record rt ~group:ctx ~scheme:sch_tsig_share ~digest ~sender ~index:sender
  in
  if cfg.Config.batch_verify
     && List.length shoup = List.length fresh
     && List.length shoup >= 2
  then begin
    let p =
      match pub with
      | Tsig.Shoup_pub p -> p
      | Tsig.Multi_pub _ -> assert false (* shoup shares imply a shoup key *)
    in
    Charge.tsig_verify_share_batch charge ~k:(List.length shoup);
    Trace.Ctx.observe rt.Runtime.trace "verify.batch_size"
      (float_of_int (List.length shoup));
    let bad =
      match
        Crypto.Batch.tsig_shares p ~ctx msg (List.map (fun (_, _, s) -> s) shoup)
      with
      | Crypto.Batch.All_valid -> []
      | Crypto.Batch.Invalid idxs -> idxs
    in
    List.iteri
      (fun j (i, digest, sh) ->
        if not (List.mem j bad) then
          accept (i, digest, Tsig.Shoup_share sh))
      shoup
  end
  else
    List.iter
      (fun (i, digest, s) ->
        Charge.tsig_verify_share charge;
        if Tsig.verify_share pub ~ctx msg s then accept (i, digest, s))
      fresh;
  valid

(* --- assembled threshold signatures --- *)

(* Closings and vote justifications repeat the same (statement, signature)
   pair across many messages — the cache collapses all but the first
   verification to a probe. *)
let tsig_signature ?charge (rt : Runtime.t) ~(pub : Tsig.public)
    ~(ctx : string) ~(signature : string) (msg : string) : bool =
  let charge = Option.value charge ~default:rt.Runtime.charge in
  let digest = stmt_digest charge [ ctx; msg; signature ] in
  if probe rt ~charge ~scheme:sch_tsig_sig ~digest ~sender:0 ~index:0 then true
  else begin
    Charge.tsig_verify charge ~k:(Tsig.k pub);
    let ok = Tsig.verify pub ~ctx ~signature msg in
    if ok then
      record rt ~group:ctx ~scheme:sch_tsig_sig ~digest ~sender:0 ~index:0;
    ok
  end

(* --- threshold-decryption shares --- *)

let enc_dec_share (rt : Runtime.t) ~(group : string)
    ~(ct : Crypto.Threshold_enc.ciphertext)
    (s : Crypto.Threshold_enc.dec_share) : bool =
  let pub = rt.Runtime.keys.Dealer.enc_pub in
  let digest =
    stmt_digest rt.Runtime.charge
      [ Crypto.Threshold_enc.ciphertext_to_bytes pub ct;
        string_of_int s.Crypto.Threshold_enc.origin;
        Bignum.Nat.to_bytes_be s.Crypto.Threshold_enc.u_i;
        Bignum.Nat.to_bytes_be s.Crypto.Threshold_enc.proof.Crypto.Dleq.a1;
        Bignum.Nat.to_bytes_be s.Crypto.Threshold_enc.proof.Crypto.Dleq.a2;
        Bignum.Nat.to_bytes_be s.Crypto.Threshold_enc.proof.Crypto.Dleq.response
      ]
  in
  let sender = s.Crypto.Threshold_enc.origin in
  if
    probe rt ~charge:rt.Runtime.charge ~scheme:sch_enc ~digest ~sender
      ~index:sender
  then true
  else begin
    Charge.enc_verify_share rt.Runtime.charge;
    let ok = Crypto.Threshold_enc.verify_dec_share pub ct s in
    if ok then record rt ~group ~scheme:sch_enc ~digest ~sender ~index:sender;
    ok
  end

(* --- threshold-coin shares --- *)

let coin_digest (rt : Runtime.t) ~(name : string)
    (s : Crypto.Threshold_coin.share) : string =
  stmt_digest rt.Runtime.charge
    [ name;
      string_of_int s.Crypto.Threshold_coin.origin;
      Bignum.Nat.to_bytes_be s.Crypto.Threshold_coin.value;
      Bignum.Nat.to_bytes_be s.Crypto.Threshold_coin.proof.Crypto.Dleq.a1;
      Bignum.Nat.to_bytes_be s.Crypto.Threshold_coin.proof.Crypto.Dleq.a2;
      Bignum.Nat.to_bytes_be s.Crypto.Threshold_coin.proof.Crypto.Dleq.response ]

let coin_share (rt : Runtime.t) ~(group : string) ~(name : string)
    (s : Crypto.Threshold_coin.share) : bool =
  let digest = coin_digest rt ~name s in
  let sender = s.Crypto.Threshold_coin.origin in
  if
    probe rt ~charge:rt.Runtime.charge ~scheme:sch_coin ~digest ~sender
      ~index:sender
  then true
  else begin
    Charge.coin_verify_share rt.Runtime.charge;
    let ok =
      Crypto.Threshold_coin.verify_share rt.Runtime.keys.Dealer.coin_pub ~name
        s
    in
    if ok then record rt ~group ~scheme:sch_coin ~digest ~sender ~index:sender;
    ok
  end

(* Verify a justification's coin shares together: cached shares are
   skipped, the rest go through one RLC batch (or singles when batching is
   off).  Returns whether EVERY share is valid — the all-or-nothing
   contract of a J_coin justification. *)
let coin_shares (rt : Runtime.t) ~(group : string) ~(name : string)
    (shares : Crypto.Threshold_coin.share list) : bool =
  let cfg = rt.Runtime.cfg in
  let pub = rt.Runtime.keys.Dealer.coin_pub in
  let keyed = List.map (fun s -> (coin_digest rt ~name s, s)) shares in
  let fresh =
    List.filter
      (fun (digest, s) ->
        let sender = s.Crypto.Threshold_coin.origin in
        not
          (probe rt ~charge:rt.Runtime.charge ~scheme:sch_coin ~digest ~sender
             ~index:sender))
      keyed
  in
  let accept (digest, s) =
    let sender = s.Crypto.Threshold_coin.origin in
    record rt ~group ~scheme:sch_coin ~digest ~sender ~index:sender
  in
  match fresh with
  | [] -> true
  | _ :: _ when cfg.Config.batch_verify && List.length fresh >= 2 ->
    Charge.coin_verify_share_batch rt.Runtime.charge
      ~k:(List.length fresh);
    Trace.Ctx.observe rt.Runtime.trace "verify.batch_size"
      (float_of_int (List.length fresh));
    (match Crypto.Batch.coin_shares pub ~name (List.map snd fresh) with
     | Crypto.Batch.All_valid ->
       List.iter accept fresh;
       true
     | Crypto.Batch.Invalid bad ->
       (* Bisection proved the complement individually valid: cache it, so
          a justification retransmitted without its bad shares amortizes. *)
       List.iteri (fun j ks -> if not (List.mem j bad) then accept ks) fresh;
       false)
  | _ :: _ ->
    List.for_all
      (fun (digest, s) ->
        Charge.coin_verify_share rt.Runtime.charge;
        let ok = Crypto.Threshold_coin.verify_share pub ~name s in
        if ok then accept (digest, s);
        ok)
      fresh
