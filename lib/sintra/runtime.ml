(* The per-party protocol runtime: multiplexes the single authenticated
   network endpoint among protocol instances, which register by protocol
   identifier (the paper's [pid]).

   Messages for a pid with no registered handler yet are buffered ("orphan"
   messages) and replayed on registration — protocol instances are created
   lazily and asynchronously at different parties, so early messages from
   faster parties must not be lost.  The buffer is bounded per pid so a
   corrupted party cannot exhaust memory. *)

type t = {
  me : int;
  cfg : Config.t;
  keys : Dealer.party_keys;
  net : Sim.Net.t;
  engine : Sim.Engine.t;
  drbg : Hashes.Drbg.t;
  charge : Charge.t;
  store_charge : Charge.t;
      (* charges land on the storage core's meter, not the protocol CPU *)
  inv : Invariant.t option;
  trace : Trace.Ctx.t;
  handlers : (string, src:int -> string -> unit) Hashtbl.t;
  store_handlers : (string, src:int -> string -> unit) Hashtbl.t;
  orphans : (string, (int * string * int) Queue.t) Hashtbl.t;
      (* src, body, causal flow id at buffering time *)
  mutable dropped_orphans : int;
  mutable rebuild : (unit -> unit) list;   (* newest first *)
  cache : Crypto.Share_cache.t;
      (* verified shares, grouped by pid; volatile (cleared on crash),
         a pid's group is evicted when the instance unregisters *)
}

let orphan_cap_per_pid = 4096

(* Emit the "msg" flow-end closing a causal edge: the dispatched message's
   id is the context's current cause (installed by the network layer), and
   the envelope pid names the protocol stage the analyzer attributes the
   hop to. *)
let dispatched (trace : Trace.Ctx.t) ~(pid : string) : unit =
  if Trace.Ctx.enabled trace then begin
    let id = Trace.Ctx.cause trace in
    if id >= 0 then
      Trace.Ctx.emit_at trace ~time:(Trace.Ctx.now trace) ~pid ~cat:"net"
        ~ph:Trace.Event.Flow_end
        ~args:[ ("id", Trace.Event.Int id) ]
        "msg"
  end

let envelope ~(pid : string) (body : string) : string =
  Wire.encode (fun b ->
    Wire.Enc.bytes b pid;
    Wire.Enc.bytes b body)

let create ~(engine : Sim.Engine.t) ~(net : Sim.Net.t) ~(cfg : Config.t)
    ~(keys : Dealer.party_keys) : t =
  let me = keys.Dealer.index in
  let inv = Invariant.create cfg in
  if Invariant.enabled inv then Invariant.check_quorums cfg;
  let trace = Sim.Net.trace_ctx net me in
  let rt = {
    me;
    cfg;
    keys;
    net;
    engine;
    drbg = Hashes.Drbg.fork (Sim.Engine.drbg engine) (Printf.sprintf "party-%d" me);
    charge = { Charge.meter = Sim.Net.meter net me; cfg; trace };
    store_charge = { Charge.meter = Sim.Net.oob_meter net me; cfg; trace };
    inv;
    trace;
    handlers = Hashtbl.create 64;
    store_handlers = Hashtbl.create 8;
    orphans = Hashtbl.create 64;
    dropped_orphans = 0;
    rebuild = [];
    cache = Crypto.Share_cache.create ~cap:cfg.Config.share_cache_cap;
  }
  in
  Sim.Net.set_handler net me (fun ~src payload ->
    Sim.Cost.per_message rt.charge.Charge.meter ~bytes:(String.length payload);
    match Wire.decode payload (fun d ->
      let pid = Wire.Dec.bytes d in
      let body = Wire.Dec.bytes d in
      (pid, body))
    with
    | None -> ()   (* malformed envelope: drop, as a real server would *)
    | Some (pid, body) ->
      (match Hashtbl.find_opt rt.handlers pid with
       | Some h ->
         dispatched rt.trace ~pid;
         h ~src body
       | None ->
         let q =
           match Hashtbl.find_opt rt.orphans pid with
           | Some q -> q
           | None ->
             let q = Queue.create () in
             Hashtbl.add rt.orphans pid q;
             q
         in
         if Queue.length q < orphan_cap_per_pid then begin
           Queue.push (src, body, Trace.Ctx.cause rt.trace) q;
           Trace.Ctx.incr rt.trace "runtime.orphans_buffered"
         end
         else begin
           rt.dropped_orphans <- rt.dropped_orphans + 1;
           Trace.Ctx.incr rt.trace "runtime.dropped_orphans";
           Trace.Ctx.instant rt.trace ~pid ~cat:"runtime"
             ~level:Trace.Event.Warn
             ~args:[ ("src", Trace.Event.Int src) ]
             "orphan_dropped"
         end));
  (* Storage-plane dispatcher: same envelope format, costs charged to the
     storage core's meter.  No orphan buffering — a durability endpoint
     solicits peer traffic only after registering (it broadcasts its
     snapshot request from [Durable.attach]), so an unknown pid here means
     a stale or hostile frame and is dropped. *)
  Sim.Net.set_oob_handler net me (fun ~src payload ->
    Sim.Cost.per_message rt.store_charge.Charge.meter
      ~bytes:(String.length payload);
    match Wire.decode payload (fun d ->
      let pid = Wire.Dec.bytes d in
      let body = Wire.Dec.bytes d in
      (pid, body))
    with
    | None -> ()
    | Some (pid, body) ->
      (match Hashtbl.find_opt rt.store_handlers pid with
       | Some h -> h ~src body
       | None -> ()));
  rt

let register (rt : t) ~(pid : string) (h : src:int -> string -> unit) : unit =
  if Hashtbl.mem rt.handlers pid then
    invalid_arg (Printf.sprintf "Runtime.register: duplicate pid %S" pid);
  Hashtbl.replace rt.handlers pid h;
  (* Replay buffered messages for this pid, preserving arrival order.  The
     replay runs asynchronously on the party's virtual CPU so that (a) the
     instance being constructed is complete before callbacks fire and
     (b) the handling cost is charged like any other message. *)
  match Hashtbl.find_opt rt.orphans pid with
  | None -> ()
  | Some q ->
    Hashtbl.remove rt.orphans pid;
    Sim.Net.inject rt.net rt.me (fun () ->
      Queue.iter
        (fun (src, body, cause) ->
          match Hashtbl.find_opt rt.handlers pid with
          (* lint: allow poly-compare — intentional physical identity check:
             replay must target exactly the handler closure that buffered the
             orphans, not a successor registered under the same pid. *)
          | Some h' when h' == h ->
            (* Restore the buffering-time cause so the replayed dispatch —
               and everything the handler emits — keeps its causal edge. *)
            Trace.Ctx.set_cause rt.trace cause;
            dispatched rt.trace ~pid;
            h ~src body
          | Some _ | None -> ())
        q;
      Trace.Ctx.set_cause rt.trace (-1))

let unregister (rt : t) ~(pid : string) : unit =
  Hashtbl.remove rt.handlers pid;
  (* The instance is gone: its cached verification state must go with it,
     so a replayed frame arriving after GC cannot resurrect it. *)
  Crypto.Share_cache.evict_group rt.cache pid

(* Tag the in-flight dispatch with its decoded protocol message kind, so
   the causal analyzer can label the hop ("vcbc.echo", "aba.coinshare"…).
   A no-op outside a causal dispatch or without a sink. *)
let handling (rt : t) ~(pid : string) ~(cat : string) (kind : string) : unit =
  if Trace.Ctx.enabled rt.trace && Trace.Ctx.cause rt.trace >= 0 then
    Trace.Ctx.instant rt.trace ~pid ~cat ("h." ^ kind)

let send (rt : t) ~(dst : int) ~(pid : string) (body : string) : unit =
  Sim.Net.send rt.net ~src:rt.me ~dst (envelope ~pid body)

(* Send to every party, including ourselves (self-delivery goes through the
   network with negligible latency, keeping the protocol code uniform). *)
let broadcast (rt : t) ~(pid : string) (body : string) : unit =
  let payload = envelope ~pid body in
  for dst = 0 to rt.cfg.Config.n - 1 do
    Sim.Net.send rt.net ~src:rt.me ~dst payload
  done

(* The storage plane: registration and sends for durability endpoints.
   Messages travel out-of-band (see {!Sim.Net.send_oob}) so durable runs
   never perturb the protocol plane's schedule. *)

let register_store (rt : t) ~(pid : string) (h : src:int -> string -> unit)
    : unit =
  if Hashtbl.mem rt.store_handlers pid then
    invalid_arg (Printf.sprintf "Runtime.register_store: duplicate pid %S" pid);
  Hashtbl.replace rt.store_handlers pid h

let send_store (rt : t) ~(dst : int) ~(pid : string) (body : string) : unit =
  Sim.Net.send_oob rt.net ~src:rt.me ~dst (envelope ~pid body)

let broadcast_store (rt : t) ~(pid : string) (body : string) : unit =
  let payload = envelope ~pid body in
  for dst = 0 to rt.cfg.Config.n - 1 do
    Sim.Net.send_oob rt.net ~src:rt.me ~dst payload
  done

let now (rt : t) : float = Sim.Engine.now rt.engine

(* Crash/recovery.  A crash models a power failure: the party stops sending
   and processing (at the network layer) and loses all volatile protocol
   state — registered handlers and buffered orphans.  Durable state is
   whatever the application chooses to rebuild on recovery: [on_rebuild]
   registers a hook (e.g. "re-create my atomic channel instance") that runs
   on the party's virtual CPU when [recover] is called, so reconstruction
   cost is charged like any other computation. *)

let on_rebuild (rt : t) (f : unit -> unit) : unit =
  rt.rebuild <- f :: rt.rebuild

let crash (rt : t) : unit =
  Sim.Net.crash rt.net rt.me;
  Hashtbl.reset rt.handlers;
  Hashtbl.reset rt.store_handlers;
  Hashtbl.reset rt.orphans;
  Crypto.Share_cache.clear rt.cache;
  Trace.Ctx.instant rt.trace ~pid:"runtime" ~cat:"runtime"
    ~level:Trace.Event.Warn "crash"

let recover (rt : t) : unit =
  Sim.Net.recover rt.net rt.me;
  Trace.Ctx.instant rt.trace ~pid:"runtime" ~cat:"runtime"
    ~level:Trace.Event.Warn "recover";
  let hooks = List.rev rt.rebuild in
  if hooks <> [] then
    Sim.Net.inject rt.net rt.me (fun () -> List.iter (fun f -> f ()) hooks)
