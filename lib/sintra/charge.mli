(** Virtual-CPU charging for cryptographic operations.

    Protocols run real cryptography at the configured {e actual} key sizes
    but charge the simulated clock according to the {e model} key sizes;
    the per-scheme operation counts (exponentiations by exponent width) are
    spelled out in the implementation.

    When [cfg.crypto_fast_path] is set (the default), operations that the
    real bignum layer serves from a precomputed fixed-base window table or
    as a simultaneous double exponentiation charge the cheaper
    [Sim.Cost.exp_fixed] / [Sim.Cost.exp2] classes, mirroring the actual
    algorithms; when clear, everything is priced as plain
    square-and-multiply, as in the paper's cost tables. *)

type t = {
  meter : Sim.Cost.meter;
  cfg : Config.t;
  trace : Trace.Ctx.t;
}

val rsa_sign : t -> unit
(** One RSA signature at the model key size (a full private
    exponentiation). *)

val rsa_verify : t -> unit
(** One RSA verification (short public exponent). *)

val tsig_release : t -> unit
(** Releasing one threshold-signature share: the share exponentiation
    plus its proof of correctness. *)

val tsig_verify_share : t -> unit
(** Checking one received signature share against its proof. *)

val tsig_verify_share_batch : t -> k:int -> unit
(** Checking [k] signature shares on one message at once by random linear
    combination: the shared base is computed once and the combined
    equation costs two multi-exponentiations, far below [k] single
    checks.  Multi-signature shares do not batch and charge [k] RSA
    verifications. *)

val tsig_assemble : t -> k:int -> unit
(** Combining [k] verified shares into the group signature (Lagrange
    interpolation in the exponent). *)

val tsig_verify : t -> k:int -> unit
(** Verifying an assembled [k]-share group signature. *)

val coin_release : t -> unit
(** Releasing one common-coin share with its proof. *)

val coin_verify_share : t -> unit
(** Checking one received coin share against its proof. *)

val coin_verify_share_batch : t -> k:int -> unit
(** Checking [k] coin (or decryption) shares at once by random linear
    combination: two multi-exponentiations for the combined DLEQ
    equation, far below [k] single checks. *)

val coin_assemble : t -> k:int -> unit
(** Combining [k] verified coin shares into the coin value. *)

val enc_encrypt : t -> bytes:int -> unit
(** Threshold-encrypting a [bytes]-long payload (label hashing included). *)

val enc_ct_valid : t -> unit
(** The public ciphertext-validity check run before decryption shares are
    released. *)

val enc_dec_share : t -> unit
(** Computing one decryption share with its proof. *)

val enc_verify_share : t -> unit
(** Checking one received decryption share against its proof. *)

val enc_combine : t -> k:int -> bytes:int -> unit
(** Combining [k] decryption shares and unmasking a [bytes]-long
    plaintext. *)

val cache_hit : t -> unit
(** A verified-share cache hit: one flat-key hash-table probe in place of
    a share verification. *)

val hash : t -> bytes:int -> unit
(** Hashing [bytes] of input (charged per compression-function block). *)

val store_append : t -> bytes:int -> unit
(** Appending [bytes] to the durable write-ahead log (CRC pass plus a
    buffered sequential write). *)
