(** Virtual-CPU charging for cryptographic operations.

    Protocols run real cryptography at the configured {e actual} key sizes
    but charge the simulated clock according to the {e model} key sizes;
    the per-scheme operation counts (exponentiations by exponent width) are
    spelled out in the implementation.

    When [cfg.crypto_fast_path] is set (the default), operations that the
    real bignum layer serves from a precomputed fixed-base window table or
    as a simultaneous double exponentiation charge the cheaper
    [Sim.Cost.exp_fixed] / [Sim.Cost.exp2] classes, mirroring the actual
    algorithms; when clear, everything is priced as plain
    square-and-multiply, as in the paper's cost tables. *)

type t = {
  meter : Sim.Cost.meter;
  cfg : Config.t;
  trace : Trace.Ctx.t;
}

val rsa_sign : t -> unit
val rsa_verify : t -> unit

val tsig_release : t -> unit
val tsig_verify_share : t -> unit
val tsig_assemble : t -> k:int -> unit
val tsig_verify : t -> k:int -> unit

val coin_release : t -> unit
val coin_verify_share : t -> unit
val coin_assemble : t -> k:int -> unit

val enc_encrypt : t -> bytes:int -> unit
val enc_ct_valid : t -> unit
val enc_dec_share : t -> unit
val enc_verify_share : t -> unit
val enc_combine : t -> k:int -> bytes:int -> unit

val hash : t -> bytes:int -> unit
