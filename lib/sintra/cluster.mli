(** The test-bed harness: a full SINTRA group — engine, network, dealer,
    one runtime per party — built from a topology, a configuration and a
    seed.  Used by the tests, the examples and the benchmark drivers. *)

type t = {
  engine : Sim.Engine.t;
  net : Sim.Net.t;
  cfg : Config.t;
  dealer : Dealer.t;
  runtimes : Runtime.t array;
}

val create : ?seed:string -> ?loss:float -> topo:Sim.Topology.t -> Config.t -> t
(** [loss] switches the network to unreliable datagrams with the given
    per-frame loss probability, recovered by sliding-window links
    ({!Sim.Net.create_lossy}).
    @raise Invalid_argument if the topology size differs from [cfg.n]. *)

val runtime : t -> int -> Runtime.t
(** Party [i]'s runtime. *)

val n : t -> int
(** The group size [cfg.n]. *)

val run : ?until:float -> ?max_events:int -> t -> int
(** Run the simulation to quiescence (or a bound); returns events executed. *)

val now : t -> float
(** Current virtual time of the engine. *)

val inject : ?cause:int -> t -> int -> (unit -> unit) -> unit
(** Schedule an application action on party [i]'s virtual CPU now (e.g. a
    client request causing a channel send).  [cause] optionally names the
    causal flow id (a load generator's submit) triggering the action. *)

val at : t -> time:float -> (unit -> unit) -> unit
(** Schedule an arbitrary action at an absolute virtual time (test
    scripting: staged sends, probes, fault injection). *)

val crash : t -> int -> unit
(** Net-level crash of party [i]: frames to and from it are dropped until
    {!recover}. *)

val recover : t -> int -> unit
(** Net-level recovery of a crashed party (protocol state intact — a pause,
    not a power failure; see {!Runtime.crash} for the state-losing kind). *)

val set_intercept : t -> (src:int -> dst:int -> string -> Sim.Net.action) -> unit
(** Install a per-frame adversary hook deciding deliver/drop/delay/replace
    for every frame on every link. *)

val clear_intercept : t -> unit
(** Remove the intercept; subsequent frames deliver normally. *)

val honest_indices : t -> corrupted:int list -> int list
(** Party indices not listed in [corrupted], ascending. *)

val set_sink : t -> Trace.Sink.t -> unit
(** Install a trace sink on the cluster's engine; every party's
    instrumentation reports through it. *)

val metrics : t -> Trace.Metrics.t
(** The cluster's metrics registry (counters and histograms accumulate
    here as the simulation runs). *)

val publish_metrics : t -> Trace.Metrics.t
(** Flush per-node network/CPU counters (and orphan-drop counts) into the
    registry, publish p50/p90/p99 summaries for every histogram, and
    return it.  Idempotent. *)
