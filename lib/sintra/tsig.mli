(** The threshold-signature seam: Shoup RSA threshold signatures or
    multi-signatures behind one interface.

    The paper stresses that swapping one implementation for the other
    requires no change to the protocols that use threshold signatures; every
    SINTRA protocol goes through this module, and {!Config.tsig_scheme}
    picks the implementation (Figure 6 measures the difference). *)

type public =
  | Shoup_pub of Crypto.Threshold_sig.public
  | Multi_pub of Crypto.Multi_sig.public

type secret =
  | Shoup_sec of Crypto.Threshold_sig.public * Crypto.Threshold_sig.secret_share
  | Multi_sec of Crypto.Multi_sig.public * Crypto.Multi_sig.secret_share

type share =
  | Shoup_share of Crypto.Threshold_sig.share
  | Multi_share of Crypto.Multi_sig.share

val public_of_secret : secret -> public
(** The public key packaged inside a party's secret share. *)

val k : public -> int
(** The reconstruction threshold. *)

val share_origin : share -> int
(** The 1-based index of the releasing party. *)

val release : drbg:Hashes.Drbg.t -> secret -> ctx:string -> string -> share
(** This party's signature share on a message; [ctx] domain-separates
    protocol instances so shares cannot be replayed across them. *)

val verify_share : public -> ctx:string -> string -> share -> bool
(** Check one received share (and its proof) against the message. *)

val assemble : public -> ctx:string -> string -> share list -> string
(** @raise Invalid_argument with fewer than [k] distinct valid-scheme
    shares. *)

val verify : public -> ctx:string -> signature:string -> string -> bool
(** Check an assembled group signature on a message. *)

val signature_bytes : public -> int
(** Wire size of an assembled signature, for bandwidth accounting. *)

(** Wire codec for shares. *)

val enc_share : Wire.Enc.t -> share -> unit
(** Encode a share (scheme-tagged) into a wire buffer. *)

val dec_share : Wire.Dec.t -> share
(** @raise Wire.Decode on malformed input. *)
