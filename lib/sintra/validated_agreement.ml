(* Validated (binary) Byzantine agreement: binary agreement with external
   validity and optional bias (end of Section 2.3).

   The proposal carries a "proof" that a [validator] predicate accepts; the
   protocol guarantees every honest party decides a value for which
   validation data exists, and returns that data with the decision.  A
   biased instance always decides the preferred value when it detects that
   an honest party proposed it. *)

type t = {
  aba : Binary_agreement.t;
  mutable decision : (bool * string) option;
}

let create ?bias (rt : Runtime.t) ~(pid : string)
    ~(validator : bool -> string -> bool)
    ~(on_decide : bool -> proof:string -> unit) : t =
  let cell = ref None in
  let aba =
    Binary_agreement.create ?bias rt ~pid ~validator
      ~on_decide:(fun value proof ->
        let proof = Option.value proof ~default:"" in
        (match !cell with
         | Some t -> t.decision <- Some (value, proof)
         | None -> ());
        on_decide value ~proof)
  in
  let t = { aba; decision = None } in
  cell := Some t;
  t

let propose (t : t) (value : bool) ~(proof : string) : unit =
  Binary_agreement.propose ~proof t.aba value

let decided (t : t) : bool option = Option.map fst t.decision

(* The validation data for the decided value (the paper's getProof). *)
let get_proof (t : t) : string option = Option.map snd t.decision

let abort (t : t) : unit = Binary_agreement.abort t.aba
