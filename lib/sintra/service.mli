(** State-machine replication as a library: the pattern the paper builds
    atomic broadcast for (Schneider [16]), packaged for direct use.

    A service is a deterministic transition function; each replica feeds
    atomically delivered requests to it in order, so all honest replicas
    traverse identical state sequences.  Requests are executed exactly once
    and every replica computes every reply — a client reading from [t+1]
    replicas can match answers and is guaranteed one honest one. *)

type 'state t

val create :
  ?on_reply:(origin:int -> tag:int -> reply:string -> unit) ->
  Runtime.t -> pid:string -> init:'state ->
  apply:('state -> string -> 'state * string) -> 'state t
(** [apply state request] must be deterministic; it returns the next state
    and the reply. *)

val submit : 'state t -> string -> int
(** Submit a request through this replica; returns its tag (unique per
    submitting replica). *)

val state : 'state t -> 'state
(** The replica's current state. *)

val executed : 'state t -> int
(** Number of requests executed so far at this replica. *)

val reply : 'state t -> origin:int -> tag:int -> string option
(** The reply computed for the request submitted via replica [origin] with
    [tag], once executed. *)

val reply_digest : 'state t -> string
(** A digest of the reply log — identical across honest replicas that have
    executed the same prefix; useful for cross-replica auditing. *)

val close : 'state t -> unit
(** Close the underlying atomic channel (no further submissions here). *)

val abort : 'state t -> unit
(** Terminate the replica and the underlying channel. *)
