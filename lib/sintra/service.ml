(* State-machine replication as a library: the pattern the paper motivates
   atomic broadcast with (Schneider's tutorial, [16]) packaged for direct
   use.

   A service is a deterministic transition function [apply : state ->
   request -> state * reply].  Each replica feeds the requests delivered by
   the atomic channel to [apply] in order, so all honest replicas move
   through identical state sequences; requests are identified by
   (submitting replica, client tag) and executed exactly once.  Replies are
   produced at every replica — a client talking to t+1 replicas can match
   answers and is guaranteed one from an honest replica. *)

type 'state t = {
  mutable channel : Atomic_channel.t option;
  apply : 'state -> string -> 'state * string;
  mutable state : 'state;
  mutable executed : int;
  replies : (int * int, string) Hashtbl.t;   (* (origin, tag) -> reply *)
  mutable next_tag : int;
  on_reply : origin:int -> tag:int -> reply:string -> unit;
}

let encode_request ~(tag : int) (request : string) : string =
  Wire.encode (fun b ->
    Wire.Enc.int b tag;
    Wire.Enc.bytes b request)

let decode_request (s : string) : (int * string) option =
  Wire.decode s (fun d ->
    let tag = Wire.Dec.int d in
    let request = Wire.Dec.bytes d in
    (tag, request))

let execute (t : 'state t) ~(sender : int) (payload : string) : unit =
  match decode_request payload with
  | None -> ()   (* garbage from a corrupted frontend: skip deterministically *)
  | Some (tag, request) ->
    let state, reply = t.apply t.state request in
    t.state <- state;
    t.executed <- t.executed + 1;
    Hashtbl.replace t.replies (sender, tag) reply;
    t.on_reply ~origin:sender ~tag ~reply

let create ?(on_reply = fun ~origin:_ ~tag:_ ~reply:_ -> ()) (rt : Runtime.t)
    ~(pid : string) ~(init : 'state)
    ~(apply : 'state -> string -> 'state * string) : 'state t =
  let t = {
    channel = None;
    apply;
    state = init;
    executed = 0;
    replies = Hashtbl.create 64;
    next_tag = 0;
    on_reply;
  }
  in
  t.channel <-
    Some
      (Atomic_channel.create rt ~pid
         ~on_deliver:(fun ~sender payload -> execute t ~sender payload)
         ());
  t

let channel (t : 'state t) : Atomic_channel.t =
  match t.channel with Some c -> c | None -> assert false

(* Submit a request through this replica; returns the tag identifying it in
   [reply] / [on_reply]. *)
let submit (t : 'state t) (request : string) : int =
  let tag = t.next_tag in
  t.next_tag <- tag + 1;
  Atomic_channel.send (channel t) (encode_request ~tag request);
  tag

let state (t : 'state t) : 'state = t.state
let executed (t : 'state t) : int = t.executed

(* The reply computed for a request submitted via replica [origin]. *)
let reply (t : 'state t) ~(origin : int) ~(tag : int) : string option =
  Hashtbl.find_opt t.replies (origin, tag)

(* A digest of the reply log: identical across honest replicas once they
   have executed the same prefix (useful for cross-replica auditing). *)
let reply_digest (t : 'state t) : string =
  let entries =
    Det.bindings t.replies ~compare:Det.by_int_pair
    |> List.map (fun ((o, g), r) -> Printf.sprintf "%d.%d=%s" o g r)
  in
  (* lint: allow charge-coverage — cross-replica audit helper outside the
     simulation's cost model; a generic service has no Runtime handle *)
  Hashes.Sha256.hex_of_digest (Hashes.Sha256.digest (String.concat ";" entries))

let close (t : 'state t) : unit = Atomic_channel.close (channel t)
let abort (t : 'state t) : unit = Atomic_channel.abort (channel t)
