(* The atomic broadcast channel (Section 2.5): Chandra-Toueg-style rounds of
   multi-valued Byzantine agreement on batches of signed messages.

   Every round r agrees on a *batch of payload vectors* (the paper proposes
   whole queues of undelivered payloads per round; HoneyBadgerBFT calls the
   same lever "batching" and shows it is what turns agreement latency into
   throughput):
   - each party signs the vector of its locally-queued undelivered
     payloads — capped at the adaptive batch limit, at most
     [Config.max_batch] — together with r, and sends this INIT to everyone;
     one RSA signature covers the whole vector, so per-round crypto cost is
     amortized over every payload in it.  A party with nothing of its own
     to send adopts (and re-signs) the undelivered payloads it has seen in
     this round's INITs; failing that it signs an empty vector, which keeps
     the round from stalling without spinning up rounds of its own;
   - once a party holds INITs from B = batch_size distinct signers (and a
     vote quorum of n-t, which is guaranteed to arrive) it proposes that
     batch of vectors to the round's multi-valued agreement, whose external
     validity checks all B signatures, that the signers are distinct and
     that no vector exceeds the cap — so at least B - t vectors come from
     honest parties, which yields the fairness property;
   - the decided batch's union of payloads is delivered in one round in a
     deterministic order (by original sender, then sequence number),
     skipping duplicates — identical bytes decide at every party, so the
     union order is identical everywhere.

   Payloads are identified by (original sender, per-sender sequence number),
   exactly the weakened integrity the paper adopts for practicality.

   Pipelining: up to [Config.pipeline_depth] rounds run their agreements
   concurrently.  [base] is the next round to deliver; rounds in the window
   [base, base + w) may be INITed and proposed while earlier rounds are
   still undecided, each round carrying a disjoint chunk of the local queue
   (an own payload is assigned to exactly one in-flight round at a time).
   Decisions can land out of order; a decided round parks in the reorder
   buffer ([decided_batches] entries at or beyond [base]) until every
   earlier round has delivered, so delivery order — and hence the paper's
   total-order obligation — is exactly the sequential protocol's.  With
   [pipeline_depth = 1] the window is one round and the channel reproduces
   the strictly sequential protocol.

   Batching adapts: when [Config.adaptive_batch] is set the per-round
   vector cap self-tunes by AIMD on the observed queue depth — additive
   increase while the backlog exceeds the cap, halving when the backlog
   falls below a quarter of it — between a floor of [min 8 max_batch] and
   the [max_batch] ceiling.  With [max_batch = 1] each vector carries at
   most one payload and the channel degrades to the original
   one-payload-per-party rounds (the benchmarks' --no-batching baseline).

   Termination: [close] broadcasts a termination request as a regular
   payload; the channel closes after the round in which t+1 distinct
   parties' requests have been delivered (so it terminates iff at least one
   honest party asked).

   Catch-up: a party whose round-r agreement messages were delayed past the
   point where its peers garbage-collected the round-r instance can never
   finish round r through the agreement itself.  (The schedule explorer
   found exactly this: delay one link long enough and the victim stalls
   forever, losing its own payloads.)  Three extra message kinds repair it:
   - REQUEST(r): broadcast when we see a validly signed INIT for a round
     beyond our window — proof that someone delivered our base round;
   - DECIDED(r, batch): sent point-to-point in reply to a REQUEST or to a
     stale INIT, carrying the whole batch we decided in round r (catch-up
     moves whole batches, never single payloads);
   - a straggler adopts a batch for any undelivered round once t+1 distinct
     parties claim the same one — any t+1 set contains an honest party, so
     the batch really is the round's decision and agreement is preserved
     without re-verifying its signatures.  Adopted rounds beyond [base]
     park in the reorder buffer like any other decision, so a rebuilt party
     can absorb a whole backlog while its own window is still open. *)

type item = {
  it_orig : int;          (* original sender, 0-based *)
  it_seq : int;           (* per-original-sender sequence number *)
  it_payload : string;
}

(* One party's signed payload vector for a round: what an INIT carries and
   what the agreed batch is made of. *)
type entry = {
  en_signer : int;
  en_items : item list;   (* at most [Config.max_batch] *)
  en_sig : string;        (* one signature over the whole vector *)
}

type t = {
  rt : Runtime.t;
  pid : string;
  on_deliver : sender:int -> string -> unit;
  on_close : unit -> unit;
  (* outgoing queue of this party's own payloads *)
  queue : (int * string) Queue.t;               (* seq, marked payload *)
  mutable next_seq : int;
  mutable base : int;                  (* next round to deliver, in order *)
  (* round -> signer -> (arrival rank, entry); the rank (table size at
     insertion) reproduces the paper's behaviour of considering messages in
     the order they arrive in the current round *)
  inits : (int, (int, int * entry) Hashtbl.t) Hashtbl.t;
  delivered : (int * int, unit) Hashtbl.t;          (* (orig, seq) *)
  term_requests : (int, unit) Hashtbl.t;            (* parties asking to close *)
  my_init : (int, entry) Hashtbl.t;         (* round -> our own INIT *)
  mvbas : (int, Array_agreement.t) Hashtbl.t;      (* open, per in-flight round *)
  past_mvba : (int, Array_agreement.t) Hashtbl.t;  (* delivered, awaiting GC *)
  proposed_rounds : (int, unit) Hashtbl.t;  (* rounds we proposed a batch for *)
  mutable cur_batch : int;         (* adaptive per-round vector cap *)
  mutable parked : int;            (* decided-but-undelivered rounds *)
  mutable closing : bool;                            (* close requested here *)
  mutable closed : bool;
  mutable deliveries : int;
  mutable rounds_completed : int;
  (* Backpressure: while the gate is closed this party neither INITs nor
     proposes for any in-window round.  Models a consumer that has not yet
     drained the channel's outputs (the paper: "if the outputs are not
     removed ... the channel will stall"). *)
  mutable gate : unit -> bool;
  enqueued_at : (int, float) Hashtbl.t;   (* seq -> enqueue virtual time *)
  (* Catch-up state.  [decided_batches] keeps decided batches down to
     [floor] so we can serve stragglers; entries at or beyond [base] double
     as the reorder buffer.  Without a durability layer the floor stays at
     0 and the backlog is unbounded; with one ({!Durable}), [gc_below]
     raises the floor to the latest stable checkpoint and stragglers
     further behind are served a signed snapshot instead ([catchup_miss]).
     [claims] tallies DECIDED messages for rounds we have not finished:
     round -> batch -> claiming senders. *)
  decided_batches : (int, string) Hashtbl.t;
  mutable floor : int;           (* lowest round still in decided_batches *)
  claims : (int, (string, (int, unit) Hashtbl.t) Hashtbl.t) Hashtbl.t;
  mutable requested_for : int;   (* highest future round that triggered a REQUEST *)
  (* Durability hooks: [round_hook] fires after each round is delivered and
     the window slides (WAL append); [catchup_miss] fires when a straggler
     asks for history below [floor] (snapshot state transfer). *)
  mutable round_hook : (round:int -> batch:string -> unit) option;
  mutable catchup_miss : (dst:int -> unit) option;
  (* Crash-recovery discipline for our own INITs.  [init_hook] fires
     write-ahead — before the INIT for a round first leaves this party —
     so a durability layer can persist the round number; [init_floor] bars
     self-INITs below it.  A restarted party must never re-initiate a
     round it may already have initiated pre-crash: the old INIT can still
     be in flight, and a second one with different content is
     equivocation, indistinguishable from Byzantine behaviour to every
     peer.  Rounds below the floor still complete — the other n-1 parties
     INIT and propose them; we merely abstain from initiating. *)
  mutable init_hook : (round:int -> unit) option;
  mutable init_floor : int;
}

let tag_init = 0
let tag_decided = 1
let tag_request = 2

(* DECIDED batches sent per stale INIT or REQUEST; the straggler re-INITs
   (or re-REQUESTs) as it advances, so a small window still converges. *)
let catchup_window = 8

(* Future-round DECIDED claims kept at most this far ahead, bounding what a
   Byzantine flood can make us store. *)
let max_claim_lead = 256

(* AIMD parameters for the adaptive vector cap: grow by [adaptive_step]
   while the backlog exceeds the cap, halve when it falls below a quarter
   of it, never below the floor. *)
let adaptive_step = 8

(* Batch-occupancy and queue-depth buckets: payload counts, not latencies. *)
let count_buckets =
  [| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512. |]

(* Payload framing: 0x01 = application payload, 0x00 = termination request. *)
let frame_payload (s : string) : string = "\x01" ^ s
let frame_term : string = "\x00"

let enc_item (b : Wire.Enc.t) (it : item) : unit =
  Wire.Enc.int b it.it_orig;
  Wire.Enc.int b it.it_seq;
  Wire.Enc.bytes b it.it_payload

let dec_item (d : Wire.Dec.t) : item =
  let it_orig = Wire.Dec.int d in
  let it_seq = Wire.Dec.int d in
  let it_payload = Wire.Dec.bytes d in
  { it_orig; it_seq; it_payload }

let enc_entry (b : Wire.Enc.t) (en : entry) : unit =
  Wire.Enc.int b en.en_signer;
  Wire.Enc.list b enc_item en.en_items;
  Wire.Enc.bytes b en.en_sig

let dec_entry (d : Wire.Dec.t) : entry =
  let en_signer = Wire.Dec.int d in
  let en_items = Wire.Dec.list d dec_item in
  let en_sig = Wire.Dec.bytes d in
  { en_signer; en_items; en_sig }

(* The signed statement: one signature binds the round, the signer and a
   digest of the whole payload vector — per-round crypto cost is constant
   in the vector length. *)
let init_stmt (t : t) ~(round : int) ~(signer : int) (items : item list) : string =
  let encoded = Wire.encode (fun b -> Wire.Enc.list b enc_item items) in
  Charge.hash t.rt.Runtime.charge ~bytes:(String.length encoded);
  let digest = Hashes.Sha256.digest encoded in
  Printf.sprintf "abc-init|%s|%d|%d|%s" t.pid round signer digest

let mvba_pid (t : t) (round : int) : string = Printf.sprintf "%s/mv.%d" t.pid round

(* The in-flight window: rounds [base, base + window) may run concurrently. *)
let window (t : t) : int = t.rt.Runtime.cfg.Config.pipeline_depth

let batch_floor (t : t) : int = min adaptive_step t.rt.Runtime.cfg.Config.max_batch

(* How deep the agreement pipeline currently runs: proposed, undecided
   rounds inside the window. *)
let inflight_rounds (t : t) : int =
  let count = ref 0 in
  for r = t.base to t.base + window t - 1 do
    if Hashtbl.mem t.proposed_rounds r && not (Hashtbl.mem t.decided_batches r)
    then incr count
  done;
  !count

let entry_signature_valid (t : t) ~(round : int) (en : entry) : bool =
  en.en_signer >= 0 && en.en_signer < t.rt.Runtime.cfg.Config.n
  && List.for_all
       (fun it ->
         it.it_orig >= 0 && it.it_orig < t.rt.Runtime.cfg.Config.n
         && it.it_seq >= 0)
       en.en_items
  && begin
    Charge.rsa_verify t.rt.Runtime.charge;
    Crypto.Rsa.verify t.rt.Runtime.keys.Dealer.sign_pks.(en.en_signer)
      ~ctx:t.pid ~signature:en.en_sig
      (init_stmt t ~round ~signer:en.en_signer en.en_items)
  end

(* External validity for a round's batch: B entries, distinct signers, no
   vector over the cap, all vector signatures valid for this round (one
   verification per entry, not per payload). *)
let batch_valid (t : t) ~(round : int) (batch : string) : bool =
  match Wire.decode batch (fun d -> Wire.Dec.list d dec_entry) with
  | None -> false
  | Some entries ->
    let b = t.rt.Runtime.cfg.Config.batch_size in
    List.length entries = b
    && begin
      let signers =
        List.sort_uniq compare (List.map (fun en -> en.en_signer) entries)
      in
      List.length signers = b
    end
    && List.for_all
         (fun en -> List.length en.en_items <= t.rt.Runtime.cfg.Config.max_batch)
         entries
    && List.for_all (fun en -> entry_signature_valid t ~round en) entries

(* --- tracing: queue -> agree -> deliver, one round span per round on the
   channel's thread with the agreement span nested inside it; concurrent
   rounds interleave their spans on the same lane (the Chrome sink checks
   begin/end balance, not nesting). --- *)

let trace (t : t) : Trace.Ctx.t = t.rt.Runtime.trace

let trace_phase (t : t) (name : string) (r : int) (ph : Trace.Event.phase) :
    unit =
  let tr = trace t in
  if Trace.Ctx.enabled tr then
    Trace.Ctx.emit_at tr ~time:(Trace.Ctx.now tr) ~pid:t.pid ~cat:"abc" ~ph
      ~args:[ ("round", Trace.Event.Int r) ]
      (Printf.sprintf "%s %d" name r)

let round_inits (t : t) (round : int) : (int, int * entry) Hashtbl.t =
  match Hashtbl.find_opt t.inits round with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.add t.inits round tbl;
    tbl

type msg =
  | Init of int * entry
  | Decided of int * string
  | Request of int

let decode_msg (body : string) : msg option =
  Wire.decode body (fun d ->
    let tag = Wire.Dec.u8 d in
    let round = Wire.Dec.int d in
    if tag = tag_init then Init (round, dec_entry d)
    else if tag = tag_decided then Decided (round, Wire.Dec.bytes d)
    else if tag = tag_request then Request round
    else Wire.fail "abc: unknown tag %d" tag)

(* Reply to a straggler with the batches it is missing, oldest first; only
   rounds already delivered here — parked decisions are served once they
   clear our own reorder buffer.  History below [floor] has been garbage
   collected under a stable checkpoint: fire [catchup_miss] so the
   durability layer can serve a signed snapshot instead, and send whatever
   retained rounds still help. *)
let send_backlog (t : t) ~(dst : int) ~(from_round : int) : unit =
  if from_round < t.floor then
    (match t.catchup_miss with Some f -> f ~dst | None -> ());
  let from_round = max from_round t.floor in
  let upto = min (from_round + catchup_window - 1) (t.base - 1) in
  for r = from_round to upto do
    match Hashtbl.find_opt t.decided_batches r with
    | Some batch ->
      Runtime.send t.rt ~dst ~pid:t.pid
        (Wire.encode (fun b ->
          Wire.Enc.u8 b tag_decided;
          Wire.Enc.int b r;
          Wire.Enc.bytes b batch))
    | None -> ()
  done

(* Sign and broadcast our INIT vector for one in-window round.  The init
   hook fires first — write-ahead — so the round number is on disk before
   the INIT can reach any peer. *)
let send_init (t : t) (round : int) (items : item list) : unit =
  (match t.init_hook with Some h -> h ~round | None -> ());
  trace_phase t "round" round Trace.Event.Span_begin;
  Charge.rsa_sign t.rt.Runtime.charge;
  let signature =
    Crypto.Rsa.sign t.rt.Runtime.keys.Dealer.sign_sk ~ctx:t.pid
      (init_stmt t ~round ~signer:t.rt.Runtime.me items)
  in
  let en = { en_signer = t.rt.Runtime.me; en_items = items; en_sig = signature } in
  Hashtbl.replace t.my_init round en;
  let body =
    Wire.encode (fun b ->
      Wire.Enc.u8 b tag_init;
      Wire.Enc.int b round;
      enc_entry b en)
  in
  Runtime.broadcast t.rt ~pid:t.pid body

(* Drop the delivered prefix so the queue never regrows past deliveries. *)
let trim_queue (t : t) : unit =
  let rec trim () =
    match Queue.peek_opt t.queue with
    | Some (seq, _) when Hashtbl.mem t.delivered (t.rt.Runtime.me, seq) ->
      ignore (Queue.pop t.queue);
      trim ()
    | Some _ | None -> ()
  in
  trim ()

(* After a state-losing rebuild our early sequence numbers can collide with
   pre-crash history adopted through catch-up: the old payload owns the
   (party, seq) identity, so a queued payload reusing that seq would be
   silently treated as delivered and lost.  When a delivered own item
   reveals such a clash, renumber the whole undelivered queue past the
   adopted history (relative order — and so FIFO — is preserved; any
   in-flight vector still carrying the stale identity deduplicates away at
   delivery). *)
let heal_seq_collision (t : t) (it : item) : unit =
  let me = t.rt.Runtime.me in
  let clash =
    Queue.fold
      (fun acc (seq, framed) ->
        acc || (seq = it.it_seq && not (String.equal framed it.it_payload)))
      false t.queue
  in
  if clash then begin
    let entries = List.rev (Queue.fold (fun acc e -> e :: acc) [] t.queue) in
    Queue.clear t.queue;
    List.iter
      (fun (old_seq, framed) ->
        while Hashtbl.mem t.delivered (me, t.next_seq) do
          t.next_seq <- t.next_seq + 1
        done;
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        Queue.push (seq, framed) t.queue;
        match Hashtbl.find_opt t.enqueued_at old_seq with
        | Some t0 ->
          Hashtbl.remove t.enqueued_at old_seq;
          Hashtbl.replace t.enqueued_at seq t0
        | None -> ())
      entries
  end

(* AIMD self-tuning of the vector cap from the observed backlog. *)
let adapt_batch (t : t) (depth : int) : unit =
  let cfg = t.rt.Runtime.cfg in
  if cfg.Config.adaptive_batch then begin
    let floor = batch_floor t in
    let cur = t.cur_batch in
    let next =
      if depth > cur then min cfg.Config.max_batch (cur + adaptive_step)
      else if depth * 4 < cur then max floor (cur / 2)
      else cur
    in
    if next <> cur then begin
      t.cur_batch <- next;
      Trace.Ctx.observe (trace t) ~buckets:count_buckets "abc.batch_limit"
        (float_of_int next)
    end
  end

(* The undelivered prefix of our own queue, up to the current adaptive cap.
   Every in-flight round's vector is such a prefix — never a disjoint
   chunk — which is what preserves per-sender FIFO order under pipelining:
   a batch can only carry our payload s together with (or after the
   delivery of) every earlier payload, whichever rounds our vectors end up
   riding in.  Concurrent rounds deduplicate the overlap at delivery. *)
let own_items (t : t) : item list =
  let cap = t.cur_batch in
  trim_queue t;
  let items = ref [] in
  let count = ref 0 in
  (try
     Queue.iter
       (fun (seq, payload) ->
         if !count >= cap then raise Exit;
         if not (Hashtbl.mem t.delivered (t.rt.Runtime.me, seq)) then begin
           items :=
             { it_orig = t.rt.Runtime.me; it_seq = seq; it_payload = payload }
             :: !items;
           incr count
         end)
       t.queue
   with Exit -> ());
  List.rev !items

(* The highest own sequence number riding in any open INIT of ours; fresh
   payloads beyond it are what justify opening a deeper pipeline round. *)
let own_hwm (t : t) : int =
  Det.fold t.my_init ~compare:Det.by_int
    (fun _ en acc ->
      List.fold_left
        (fun acc it ->
          if it.it_orig = t.rt.Runtime.me && it.it_seq > acc then it.it_seq
          else acc)
        acc en.en_items)
    (-1)

(* Is there an undelivered own payload no open INIT of ours carries yet? *)
let has_fresh_items (t : t) : bool =
  let hwm = own_hwm t in
  let fresh = ref false in
  (try
     Queue.iter
       (fun (seq, _) ->
         if seq > hwm && not (Hashtbl.mem t.delivered (t.rt.Runtime.me, seq))
         then begin
           fresh := true;
           raise Exit
         end)
       t.queue
   with Exit -> ());
  !fresh

(* Undelivered payloads seen in one round's INITs, in arrival order and
   capped — what an empty-queue party adopts so that slow parties' payloads
   appear in more than one vector (the fairness lever). *)
let adoptable_items (t : t) (round : int) : item list =
  let cap = t.cur_batch in
  let tbl = round_inits t round in
  let entries = Det.values tbl ~compare:Det.by_int in
  let entries = List.sort (fun (r1, _) (r2, _) -> compare r1 r2) entries in
  let chosen = Hashtbl.create 8 in
  let items = ref [] in
  let count = ref 0 in
  List.iter
    (fun (_, en) ->
      List.iter
        (fun it ->
          if !count < cap
             && not (Hashtbl.mem t.delivered (it.it_orig, it.it_seq))
             && not (Hashtbl.mem chosen (it.it_orig, it.it_seq))
          then begin
            Hashtbl.replace chosen (it.it_orig, it.it_seq) ();
            items := it :: !items;
            incr count
          end)
        en.en_items)
    entries;
  List.rev !items

(* Anti-spin, generalized per in-window round: INIT round r only when we
   have fresh payloads no open INIT of ours carries yet (new content
   justifies a deeper pipeline round), or someone else already started
   round r — then we join it, with our undelivered prefix if we have one,
   adopting their undelivered payloads or contributing an empty vector
   otherwise.  Never start a round unprompted, or idle parties would spin
   empty (or redundant) rounds forever. *)
let rec try_send_init_round (t : t) (round : int) : unit =
  if not t.closed && t.gate () && round >= t.base && round < t.base + window t
     && round >= t.init_floor
     && not (Hashtbl.mem t.my_init round)
  then begin
    trim_queue t;
    let depth = Queue.length t.queue in
    if depth > 0 then adapt_batch t depth;
    let joined = Hashtbl.length (round_inits t round) > 0 in
    if has_fresh_items t || joined then begin
      match own_items t with
      | _ :: _ as items ->
        Trace.Ctx.observe (trace t) ~buckets:count_buckets "abc.queue_depth"
          (float_of_int (Queue.length t.queue));
        send_init t round items
      | [] -> if joined then send_init t round (adoptable_items t round)
    end
  end

and try_send_inits (t : t) : unit =
  for r = t.base to t.base + window t - 1 do
    try_send_init_round t r
  done

and try_propose_round (t : t) (round : int) : unit =
  if not t.closed && round >= t.base && round < t.base + window t
     && not (Hashtbl.mem t.proposed_rounds round)
     && Hashtbl.mem t.my_init round
  then begin
    let tbl = round_inits t round in
    (* Include our own INIT in the pool. *)
    (match Hashtbl.find_opt t.my_init round with
     | Some en ->
       if not (Hashtbl.mem tbl en.en_signer) then
         Hashtbl.replace tbl en.en_signer (Hashtbl.length tbl, en)
     | None -> ());
    let b = t.rt.Runtime.cfg.Config.batch_size in
    (* Wait for INITs from n-t distinct signers (guaranteed to arrive, since
       every honest party signs or adopts) before choosing the batch: the
       extra signers usually contribute *distinct* payloads from slower
       hosts, which is what fills the paper's 0-second band in Figures 4-5
       with messages from P2/AIX and P3/Win2k. *)
    let need = max b (Config.vote_quorum t.rt.Runtime.cfg) in
    if Hashtbl.length tbl >= need then begin
      (* Batch selection: walk the INIT vectors in arrival order and prefer
         those contributing at least one payload not already covered, so
         the union usually carries every queued message in the pool; fall
         back to redundant vectors from distinct signers only when short. *)
      let entries = Det.values tbl ~compare:Det.by_int in
      let entries = List.sort (fun (r1, _) (r2, _) -> compare r1 r2) entries in
      let entries = List.map snd entries in
      let covered = Hashtbl.create 16 in
      let contributes (en : entry) : bool =
        List.exists
          (fun it ->
            not (Hashtbl.mem covered (it.it_orig, it.it_seq))
            && not (Hashtbl.mem t.delivered (it.it_orig, it.it_seq)))
          en.en_items
      in
      let cover (en : entry) : unit =
        List.iter
          (fun it -> Hashtbl.replace covered (it.it_orig, it.it_seq) ())
          en.en_items
      in
      let primary, rest =
        List.partition
          (fun en ->
            if contributes en then begin
              cover en;
              true
            end
            else false)
          entries
      in
      let batch = List.filteri (fun i _ -> i < b) (primary @ rest) in
      let encoded = Wire.encode (fun b -> Wire.Enc.list b enc_entry batch) in
      Hashtbl.replace t.proposed_rounds round ();
      trace_phase t "agree" round Trace.Event.Span_begin;
      let mvba =
        match Hashtbl.find_opt t.mvbas round with
        | Some m -> m
        | None ->
          let m =
            Array_agreement.create t.rt ~pid:(mvba_pid t round)
              ~validator:(fun batch -> batch_valid t ~round batch)
              ~on_decide:(fun decided -> round_decided t round decided)
          in
          Hashtbl.replace t.mvbas round m;
          m
      in
      Array_agreement.propose mvba encoded;
      Trace.Ctx.observe (trace t) ~buckets:count_buckets "abc.inflight_rounds"
        (float_of_int (inflight_rounds t))
    end
  end

and try_propose_all (t : t) : unit =
  for r = t.base to t.base + window t - 1 do
    try_propose_round t r
  done

(* A round decided — through its own agreement or a claims quorum.  Park
   the batch in the reorder buffer and deliver whatever prefix is ready:
   out-of-order decisions wait here until every earlier round has
   delivered, which is all it takes to keep total order. *)
and round_decided (t : t) (round : int) (batch : string) : unit =
  if (not t.closed) && round >= t.base
     && not (Hashtbl.mem t.decided_batches round)
  then begin
    Hashtbl.replace t.decided_batches round batch;
    t.parked <- t.parked + 1;
    if Hashtbl.mem t.proposed_rounds round then
      trace_phase t "agree" round Trace.Event.Span_end;
    Trace.Ctx.observe (trace t) ~buckets:count_buckets "abc.reorder_depth"
      (float_of_int t.parked);
    advance t
  end

(* Deliver decided rounds in round order from the reorder buffer, opening
   the window one round at a time; after each delivery give the freed
   window slot a chance to INIT/propose and absorb any claims that became
   adoptable. *)
and advance (t : t) : unit =
  match Hashtbl.find_opt t.decided_batches t.base with
  | None -> ()
  | Some batch ->
    deliver_round t t.base batch;
    if not t.closed then begin
      try_send_inits t;
      try_propose_all t;
      try_adopt_claims t;
      advance t
    end

(* Deliver round [base]'s batch (union order: by original sender, then
   sequence number) and slide the window forward one round. *)
and deliver_round (t : t) (round : int) (batch : string) : unit =
  t.parked <- t.parked - 1;
  (match Wire.decode batch (fun d -> Wire.Dec.list d dec_entry) with
   | None -> ()   (* cannot happen: validator enforced the format *)
   | Some entries ->
     (* Deterministic union order: flatten every vector, sort by original
        sender then sequence number, drop duplicates.  The decided bytes
        are identical at every party, so this order is too. *)
     let items = List.concat_map (fun en -> en.en_items) entries in
     let items =
       List.sort_uniq
         (fun a b -> compare (a.it_orig, a.it_seq) (b.it_orig, b.it_seq))
         items
     in
     let fresh = ref 0 in
     List.iter
       (fun it ->
         if not (Hashtbl.mem t.delivered (it.it_orig, it.it_seq)) then begin
           Hashtbl.replace t.delivered (it.it_orig, it.it_seq) ();
           t.deliveries <- t.deliveries + 1;
           incr fresh;
           (* Own-payload end-to-end latency: enqueue -> atomic delivery
              (the per-message latency of Figures 4 and 5). *)
           if it.it_orig = t.rt.Runtime.me then begin
             heal_seq_collision t it;
             match Hashtbl.find_opt t.enqueued_at it.it_seq with
             | Some t0 ->
               Hashtbl.remove t.enqueued_at it.it_seq;
               Trace.Ctx.observe (trace t) "abc.latency" (Runtime.now t.rt -. t0)
             | None -> ()
           end;
           let tr = trace t in
           if Trace.Ctx.enabled tr then
             Trace.Ctx.instant tr ~pid:t.pid ~cat:"abc"
               ~args:
                 [ ("sender", Trace.Event.Int it.it_orig);
                   ("seq", Trace.Event.Int it.it_seq) ]
               "deliver";
           if it.it_payload = frame_term then
             Hashtbl.replace t.term_requests it.it_orig ()
           else if String.length it.it_payload >= 1 && it.it_payload.[0] = '\x01' then
             t.on_deliver ~sender:it.it_orig
               (String.sub it.it_payload 1 (String.length it.it_payload - 1))
         end)
       items;
     t.rounds_completed <- t.rounds_completed + 1;
     (* Throughput accounting: rounds, payloads carried, and how full the
        decided batches run (the batch-occupancy histogram behind the
        latency-vs-throughput crossover). *)
     Trace.Ctx.incr (trace t) "abc.rounds";
     Trace.Ctx.count (trace t) "abc.batch_payloads" (float_of_int !fresh);
     Trace.Ctx.observe (trace t) ~buckets:count_buckets "abc.batch_occupancy"
       (float_of_int !fresh));
  (* Rounds adopted through catch-up never opened a round span. *)
  if Hashtbl.mem t.my_init round then
    trace_phase t "round" round Trace.Event.Span_end;
  (* Close once t+1 distinct parties asked. *)
  if Hashtbl.length t.term_requests >= Config.one_honest t.rt.Runtime.cfg then begin
    t.closed <- true;
    Det.iter t.mvbas ~compare:Det.by_int (fun _ m -> Array_agreement.abort m);
    Hashtbl.reset t.mvbas;
    t.on_close ()
  end
  else begin
    t.base <- round + 1;
    (* Keep the delivered round's agreement registered for a grace period:
       lagging parties may still need our (already broadcast) messages
       replayed from their orphan buffers, but instances a full window
       behind the base are dead weight.  This GC is what makes catch-up
       necessary: a party whose round-r traffic was delayed past this point
       can no longer finish round r through the agreement, and recovers by
       adopting DECIDED claims instead. *)
    (match Hashtbl.find_opt t.mvbas round with
     | Some m ->
       Hashtbl.remove t.mvbas round;
       Hashtbl.replace t.past_mvba round m
     | None -> ());
    let gc = round - max 2 (window t) in
    (match Hashtbl.find_opt t.past_mvba gc with
     | Some old ->
       Array_agreement.abort old;
       Hashtbl.remove t.past_mvba gc
     | None -> ());
    Hashtbl.remove t.inits round;
    Hashtbl.remove t.my_init round;
    Hashtbl.remove t.claims round;
    Hashtbl.remove t.proposed_rounds round;
    (* The WAL hook sees the round only after the window slid, so the
       durability layer observes the post-delivery state (base = round+1).
       The closing round is not logged: a closed channel never restarts. *)
    (match t.round_hook with
     | Some f -> f ~round ~batch
     | None -> ())
  end

(* Adopt a round's batch once t+1 distinct parties claim the same one; the
   adopted decision parks in the reorder buffer like any other, so claims
   for any undelivered round — in-window or far ahead — are usable the
   moment their quorum completes. *)
and maybe_adopt_round (t : t) (round : int) : unit =
  if (not t.closed) && round >= t.base
     && not (Hashtbl.mem t.decided_batches round)
  then
    match Hashtbl.find_opt t.claims round with
    | None -> ()
    | Some by_batch ->
      let quorum = Config.one_honest t.rt.Runtime.cfg in
      let winner = ref None in
      Det.iter by_batch ~compare:String.compare (fun batch senders ->
        if !winner = None && Hashtbl.length senders >= quorum then
          winner := Some batch);
      (match !winner with
       | Some batch -> round_decided t round batch
       | None -> ())

and try_adopt_claims (t : t) : unit =
  if not t.closed then
    Det.iter t.claims ~compare:Det.by_int (fun round _ ->
      maybe_adopt_round t round)

let handle (t : t) ~src body =
  if not t.closed then begin
    match decode_msg body with
    | None -> ()
    | Some m ->
      let inv = t.rt.Runtime.inv in
      Invariant.sender_in_range inv src;
      Runtime.handling t.rt ~pid:t.pid ~cat:"abc"
        (match m with
        | Init _ -> "init"
        | Decided _ -> "decided"
        | Request _ -> "request");
      match m with
      | Init (round, en) when en.en_signer = src && round >= t.base ->
        let tbl = round_inits t round in
        (* A conflicting, validly signed INIT from a signer we already hold
           one from is Byzantine evidence — record it, drop the duplicate. *)
        (match Hashtbl.find_opt tbl src with
         | Some (_, prev)
           when Invariant.enabled inv
                && prev.en_items <> en.en_items
                && entry_signature_valid t ~round en ->
           Invariant.flag inv ~offender:src
             (Printf.sprintf "abc %s: conflicting INIT in round %d" t.pid round)
         | Some _ | None -> ());
        if not (Hashtbl.mem tbl src)
           && List.length en.en_items <= t.rt.Runtime.cfg.Config.max_batch
           && entry_signature_valid t ~round en
        then begin
          Invariant.fresh_sender inv tbl src "INIT pool";
          Hashtbl.add tbl src (Hashtbl.length tbl, en);
          (* An INIT for a round beyond our window proves its signer
             delivered our base round: ask everyone for the decided
             batches.  An INIT merely ahead of [base] is normal pipelining —
             unless our base round shows no activity at all (no INITs, no
             decision), which after a rebuild means the round is long dead
             and only catch-up can revive us. *)
          let base_dark () =
            (not (Hashtbl.mem t.decided_batches t.base))
            && (not (Hashtbl.mem t.my_init t.base))
            && (match Hashtbl.find_opt t.inits t.base with
                | Some tbl -> Hashtbl.length tbl = 0
                | None -> true)
          in
          if round > t.base && round > t.requested_for
             && (round >= t.base + window t || base_dark ())
          then begin
            t.requested_for <- round;
            Runtime.broadcast t.rt ~pid:t.pid
              (Wire.encode (fun b ->
                Wire.Enc.u8 b tag_request;
                Wire.Enc.int b t.base))
          end;
          if round < t.base + window t then begin
            try_send_init_round t round;
            try_propose_round t round
          end
        end
      | Init (round, en) when en.en_signer = src ->
        (* Stale INIT: the sender is behind — help it catch up. *)
        send_backlog t ~dst:src ~from_round:round
      | Init _ -> ()
      | Request round ->
        if round >= 0 && round < t.base then
          send_backlog t ~dst:src ~from_round:round
      | Decided (round, batch) ->
        if round >= t.base && round <= t.base + max_claim_lead then begin
          let by_batch =
            match Hashtbl.find_opt t.claims round with
            | Some m -> m
            | None ->
              let m = Hashtbl.create 4 in
              Hashtbl.add t.claims round m;
              m
          in
          (* One claim per (round, sender); a second claim with a different
             batch is Byzantine evidence. *)
          let conflicting = ref false and already = ref false in
          Det.iter by_batch ~compare:String.compare (fun b srcs ->
            if Hashtbl.mem srcs src then
              if b = batch then already := true else conflicting := true);
          if !conflicting then
            Invariant.flag inv ~offender:src
              (Printf.sprintf "abc %s: conflicting DECIDED for round %d" t.pid
                 round)
          else if not !already then begin
            let srcs =
              match Hashtbl.find_opt by_batch batch with
              | Some s -> s
              | None ->
                let s = Hashtbl.create 4 in
                Hashtbl.add by_batch batch s;
                s
            in
            Hashtbl.replace srcs src ();
            maybe_adopt_round t round
          end
        end
  end

let create (rt : Runtime.t) ~(pid : string)
    ~(on_deliver : sender:int -> string -> unit)
    ?(on_close = fun () -> ()) () : t =
  let cfg = rt.Runtime.cfg in
  let t = {
    rt; pid; on_deliver; on_close;
    queue = Queue.create ();
    next_seq = 0;
    base = 0;
    inits = Hashtbl.create 16;
    delivered = Hashtbl.create 64;
    term_requests = Hashtbl.create 4;
    my_init = Hashtbl.create 16;
    mvbas = Hashtbl.create 8;
    past_mvba = Hashtbl.create 8;
    proposed_rounds = Hashtbl.create 8;
    cur_batch =
      (if cfg.Config.adaptive_batch then min adaptive_step cfg.Config.max_batch
       else cfg.Config.max_batch);
    parked = 0;
    closing = false;
    closed = false;
    deliveries = 0;
    rounds_completed = 0;
    gate = (fun () -> true);
    enqueued_at = Hashtbl.create 16;
    decided_batches = Hashtbl.create 32;
    floor = 0;
    claims = Hashtbl.create 8;
    requested_for = -1;
    round_hook = None;
    catchup_miss = None;
    init_hook = None;
    init_floor = 0;
  }
  in
  Runtime.register rt ~pid (fun ~src body -> handle t ~src body);
  t

let enqueue (t : t) (framed : string) : unit =
  (* A rebuilt party restarts its counter at 0 but learns its own pre-crash
     deliveries through catch-up; skip those sequence numbers, or the fresh
     payload would be mistaken for an already-delivered one and dropped. *)
  while Hashtbl.mem t.delivered (t.rt.Runtime.me, t.next_seq) do
    t.next_seq <- t.next_seq + 1
  done;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Queue.push (seq, framed) t.queue;
  Hashtbl.replace t.enqueued_at seq (Runtime.now t.rt);
  let tr = trace t in
  if Trace.Ctx.enabled tr then
    Trace.Ctx.instant tr ~pid:t.pid ~cat:"abc"
      ~args:[ ("seq", Trace.Event.Int seq) ]
      "enqueue";
  try_send_inits t;
  try_propose_all t

(* Broadcast a payload on the channel (the paper's send event). *)
let send (t : t) (payload : string) : unit =
  if t.closed then invalid_arg "Atomic_channel.send: channel closed";
  enqueue t (frame_payload payload)

(* Request channel termination (the paper's close event). *)
let close (t : t) : unit =
  if not t.closing && not t.closed then begin
    t.closing <- true;
    enqueue t frame_term
  end

let is_closed (t : t) = t.closed
let deliveries (t : t) = t.deliveries
let current_round (t : t) = t.base
let rounds_completed (t : t) = t.rounds_completed
let queue_depth (t : t) = Queue.length t.queue
let batch_limit (t : t) = t.cur_batch
let reorder_depth (t : t) = t.parked

(* --- the durability seam --- *)

let set_round_hook (t : t) (f : round:int -> batch:string -> unit) : unit =
  t.round_hook <- Some f

let set_catchup_miss (t : t) (f : dst:int -> unit) : unit =
  t.catchup_miss <- Some f

let set_init_hook (t : t) (f : round:int -> unit) : unit = t.init_hook <- Some f

let set_init_floor (t : t) ~(round : int) : unit =
  t.init_floor <- Stdlib.max t.init_floor round

let backlog_rounds (t : t) : int = Hashtbl.length t.decided_batches

let gc_floor (t : t) : int = t.floor

(* Drop retained batches strictly below [round], never past [base]: a
   parked (decided-but-undelivered) round is part of the reorder buffer
   and must survive any GC, whatever checkpoint round the caller names. *)
let gc_below (t : t) ~(round : int) : unit =
  let limit = min round t.base in
  List.iter
    (fun r -> if r < limit then Hashtbl.remove t.decided_batches r)
    (Det.keys t.decided_batches ~compare:Det.by_int);
  if limit > t.floor then t.floor <- limit

(* Re-feed one decided round from the local WAL (recovery replay).  The
   batch re-enters through the normal reorder buffer, so replaying rounds
   in log order re-delivers them in round order, byte for byte.  The disk
   is NOT trusted: the batch must carry its full complement of valid INIT
   signatures over this round number (the same external-validity predicate
   the agreement enforces), so a tampered log can lose history but never
   forge it.  The CRC catches accidents; this check catches malice. *)
let adopt_round (t : t) ~(round : int) ~(batch : string) : unit =
  if
    (not t.closed) && round >= t.base
    && (not (Hashtbl.mem t.decided_batches round))
    && batch_valid t ~round batch
  then round_decided t round batch

(* Serve a straggler's catch-up request on behalf of the durability layer
   (its snapshot-request message funnels into the same path as REQUEST). *)
let serve_backlog (t : t) ~(dst : int) ~(from_round : int) : unit =
  if from_round >= 0 && from_round < t.base then
    send_backlog t ~dst ~from_round

(* The channel state a checkpoint covers: the next round to deliver, the
   delivered (origin, seq) set as per-origin runs, and the termination
   requests seen so far.  Everything else (open agreements, claims, the
   reorder buffer) is in-flight traffic the protocol regenerates.  The
   encoding is canonical — runs are sorted — so every honest party
   checkpointing the same round produces identical bytes, which is what
   lets a threshold quorum sign one digest. *)
let encode_state (t : t) : string =
  let pairs = Det.keys t.delivered ~compare:Det.by_int_pair in
  let runs = ref [] in
  let cur = ref None in
  List.iter
    (fun (o, s) ->
      match !cur with
      | Some (co, lo, hi) when co = o && s = hi + 1 -> cur := Some (co, lo, s)
      | Some r ->
        runs := r :: !runs;
        cur := Some (o, s, s)
      | None -> cur := Some (o, s, s))
    pairs;
  (match !cur with Some r -> runs := r :: !runs | None -> ());
  let runs = List.rev !runs in
  let terms = Det.keys t.term_requests ~compare:Det.by_int in
  Wire.encode (fun b ->
    Wire.Enc.int b t.base;
    Wire.Enc.list b
      (fun b (o, lo, hi) ->
        Wire.Enc.int b o;
        Wire.Enc.int b lo;
        Wire.Enc.int b (hi - lo))
      runs;
    Wire.Enc.list b (fun b p -> Wire.Enc.int b p) terms)

(* Adopt a verified snapshot state: jump [base] forward, replace the
   delivered set and termination votes, and drop now-stale bookkeeping
   below the new base.  Refuses stale or malformed blobs — the caller has
   already verified the certificate, but the state must still move us
   strictly forward.  Queued own payloads whose sequence numbers collide
   with the adopted history are renumbered past it (same healing rule as
   post-rebuild catch-up). *)
let install_state (t : t) (state : string) : bool =
  match
    Wire.decode state (fun d ->
      let base = Wire.Dec.int d in
      let runs =
        Wire.Dec.list d (fun d ->
          let o = Wire.Dec.int d in
          let lo = Wire.Dec.int d in
          let len = Wire.Dec.int d in
          (o, lo, lo + len))
      in
      let terms = Wire.Dec.list d Wire.Dec.int in
      (base, runs, terms))
  with
  | None -> false
  | Some (base, runs, terms) ->
    let n = t.rt.Runtime.cfg.Config.n in
    if t.closed || base <= t.base
       || not
            (List.for_all
               (fun (o, lo, hi) -> o >= 0 && o < n && lo >= 0 && hi >= lo)
               runs)
       || not (List.for_all (fun p -> p >= 0 && p < n) terms)
    then false
    else begin
      Hashtbl.reset t.delivered;
      List.iter
        (fun (o, lo, hi) ->
          for s = lo to hi do
            Hashtbl.replace t.delivered (o, s) ()
          done)
        runs;
      Hashtbl.reset t.term_requests;
      List.iter (fun p -> Hashtbl.replace t.term_requests p ()) terms;
      let drop_below (type k) (tbl : (int, k) Hashtbl.t) (f : k -> unit) : unit
          =
        List.iter
          (fun r ->
            if r < base then begin
              (match Hashtbl.find_opt tbl r with Some v -> f v | None -> ());
              Hashtbl.remove tbl r
            end)
          (Det.keys tbl ~compare:Det.by_int)
      in
      List.iter
        (fun r ->
          if r < base then begin
            if r >= t.base then t.parked <- t.parked - 1;
            Hashtbl.remove t.decided_batches r
          end)
        (Det.keys t.decided_batches ~compare:Det.by_int);
      drop_below t.inits (fun _ -> ());
      drop_below t.my_init (fun _ -> ());
      drop_below t.claims (fun _ -> ());
      drop_below t.proposed_rounds (fun _ -> ());
      drop_below t.mvbas (fun m -> Array_agreement.abort m);
      drop_below t.past_mvba (fun m -> Array_agreement.abort m);
      t.base <- base;
      if base > t.floor then t.floor <- base;
      (* Renumber queued payloads shadowed by the adopted history. *)
      let me = t.rt.Runtime.me in
      let entries = List.rev (Queue.fold (fun acc e -> e :: acc) [] t.queue) in
      Queue.clear t.queue;
      List.iter
        (fun (old_seq, framed) ->
          if Hashtbl.mem t.delivered (me, old_seq) then begin
            while Hashtbl.mem t.delivered (me, t.next_seq) do
              t.next_seq <- t.next_seq + 1
            done;
            let seq = t.next_seq in
            t.next_seq <- seq + 1;
            Queue.push (seq, framed) t.queue;
            match Hashtbl.find_opt t.enqueued_at old_seq with
            | Some t0 ->
              Hashtbl.remove t.enqueued_at old_seq;
              Hashtbl.replace t.enqueued_at seq t0
            | None -> ()
          end
          else Queue.push (old_seq, framed) t.queue)
        entries;
      (* Parked decisions at or past the new base may be deliverable now. *)
      advance t;
      if not t.closed then begin
        try_send_inits t;
        try_propose_all t;
        try_adopt_claims t
      end;
      true
    end

(* Install a backpressure gate; call {!kick} when it opens again. *)
let set_gate (t : t) (gate : unit -> bool) : unit = t.gate <- gate

let kick (t : t) : unit =
  try_send_inits t;
  try_propose_all t

let abort (t : t) : unit =
  t.closed <- true;
  Det.iter t.mvbas ~compare:Det.by_int (fun _ m -> Array_agreement.abort m);
  Hashtbl.reset t.mvbas;
  Det.iter t.past_mvba ~compare:Det.by_int (fun _ m -> Array_agreement.abort m);
  Hashtbl.reset t.past_mvba;
  Runtime.unregister t.rt ~pid:t.pid
