(* Reusable fault-injection scenarios over the network adversary hook.

   The asynchronous model gives the adversary full control of message
   scheduling; these helpers package the standard attacks so tests and
   experiments can say what they mean:

     Faults.partition cluster ~groups:[[0;1];[2;3]] ~heal_at:5.0

   Only one intercept can be active at a time (they compose by replacing,
   matching Sim.Net's single-hook design). *)

type spec = src:int -> dst:int -> string -> Sim.Net.action

let install (c : Cluster.t) (spec : spec) : unit = Cluster.set_intercept c spec
let clear (c : Cluster.t) : unit = Cluster.clear_intercept c

(* Silence one party entirely in both directions (a network-level crash). *)
let silence (party : int) : spec =
 fun ~src ~dst _ -> if src = party || dst = party then Sim.Net.Drop else Sim.Net.Deliver

(* Delay all traffic into [party] by [delay] seconds (an eclipsed node). *)
let eclipse (party : int) ~(delay : float) : spec =
 fun ~src:_ ~dst _ -> if dst = party then Sim.Net.Delay delay else Sim.Net.Deliver

(* Drop every [nth] message globally (a flaky scheduler). *)
let drop_every (nth : int) : spec =
  let counter = ref 0 in
  fun ~src:_ ~dst:_ _ ->
    incr counter;
    if !counter mod nth = 0 then Sim.Net.Drop else Sim.Net.Deliver

(* Duplicate every [nth] message globally: both copies carry valid MACs, so
   deduplication is the protocols' job. *)
let duplicate_every (nth : int) : spec =
  let counter = ref 0 in
  fun ~src:_ ~dst:_ _ ->
    incr counter;
    if !counter mod nth = 0 then Sim.Net.Duplicate else Sim.Net.Deliver

(* Replay every [nth] message after [delay] extra seconds; the copy bypasses
   the FIFO clamp, modelling an adversary re-injecting recorded frames. *)
let replay_every (nth : int) ~(delay : float) : spec =
  let counter = ref 0 in
  fun ~src:_ ~dst:_ _ ->
    incr counter;
    if !counter mod nth = 0 then Sim.Net.Replay delay else Sim.Net.Deliver

(* Byzantine selective send: [party] silently omits its messages to the
   [victims], who must reconstruct the protocol state from the others. *)
let selective_send (party : int) ~(victims : int list) : spec =
 fun ~src ~dst _ ->
  if src = party && List.mem dst victims then Sim.Net.Drop else Sim.Net.Deliver

(* Split the group into components: traffic inside a component flows,
   traffic across components is held back until [heal_at] (virtual time),
   after which everything is delivered.  With n <= 3t parties on each side
   no component can decide alone, so protocols stall and must resume after
   healing - the classic partition-tolerance check. *)
let partition (c : Cluster.t) ~(groups : int list list) ~(heal_at : float) : spec =
  let component = Hashtbl.create 8 in
  List.iteri
    (fun idx members -> List.iter (fun m -> Hashtbl.replace component m idx) members)
    groups;
  fun ~src ~dst _ ->
    let now = Cluster.now c in
    if now >= heal_at then Sim.Net.Deliver
    else
      match Hashtbl.find_opt component src, Hashtbl.find_opt component dst with
      | Some a, Some b when a <> b ->
        (* Hold the message until just after healing; links stay reliable,
           so nothing is lost - only delayed, as the asynchronous model
           allows. *)
        Sim.Net.Delay (heal_at -. now +. 0.001)
      | _ -> Sim.Net.Deliver

(* --- Byzantine party harnesses ---

   These run a *corrupted* party: instead of an honest protocol instance it
   emits hand-crafted frames under its genuine keys.  The wire layouts are
   deliberately duplicated from the protocol modules (a real attacker does
   not link against our implementation); the formats are part of each
   protocol's external interface. *)

(* Send a broadcast SEND frame (tag 0) for instance [pid] from [party]:
   payload [a] to the parties in [to_a], payload [b] to everyone else.
   Reliable and consistent broadcast share this opening frame layout, so the
   same equivocation works against both. *)
let equivocate_send (c : Cluster.t) ~(party : int) ~(pid : string)
    ~(to_a : int list) ~(a : string) ~(b : string) : unit =
  let rt = Cluster.runtime c party in
  let frame payload =
    Wire.encode (fun buf ->
      Wire.Enc.u8 buf 0;                 (* tag_send *)
      Wire.Enc.bytes buf payload)
  in
  Cluster.inject c party (fun () ->
    for dst = 0 to Cluster.n c - 1 do
      if dst <> party then
        Runtime.send rt ~dst ~pid (frame (if List.mem dst to_a then a else b))
    done)

(* The statement consistent broadcast binds into its threshold signature;
   must match Consistent_broadcast.statement. *)
let cbc_statement ~(pid : string) (payload : string) : string =
  "cbc-ready|" ^ pid ^ "|" ^ payload

(* A full equivocating consistent-broadcast sender: split SEND payloads as
   in {!equivocate_send}, then collect echo shares for [a] (contributing our
   own share) and broadcast the assembled closing message to everyone —
   including the parties that were shown [b], who deliver [a] anyway
   (consistency) and can flag the sender. *)
let equivocating_cbc_sender (c : Cluster.t) ~(party : int) ~(pid : string)
    ~(to_a : int list) ~(a : string) ~(b : string) : unit =
  let rt = Cluster.runtime c party in
  let cfg = rt.Runtime.cfg in
  let pub = Tsig.public_of_secret rt.Runtime.keys.Dealer.bc_tsig in
  let stmt = cbc_statement ~pid a in
  let shares = ref [] in
  let origins = Hashtbl.create 8 in
  let final_sent = ref false in
  Runtime.register rt ~pid (fun ~src body ->
    match Wire.decode_prefix body (fun d -> (Wire.Dec.u8 d, d)) with
    | Some (1, d) when not !final_sent ->    (* tag_echo *)
      (match (try Some (Tsig.dec_share d) with Wire.Decode _ -> None) with
       | Some share
         when Tsig.share_origin share = src + 1
              && not (Hashtbl.mem origins (src + 1))
              && Tsig.verify_share pub ~ctx:pid stmt share ->
         Hashtbl.replace origins (src + 1) ();
         shares := share :: !shares;
         if Hashtbl.length origins >= Config.echo_quorum cfg then begin
           final_sent := true;
           let signature = Tsig.assemble pub ~ctx:pid stmt !shares in
           Runtime.broadcast rt ~pid
             (Wire.encode (fun buf ->
                Wire.Enc.u8 buf 2;          (* tag_final *)
                Wire.Enc.bytes buf a;
                Wire.Enc.bytes buf signature))
         end
       | Some _ | None -> ())
    | Some _ | None -> ());
  (* Our own echo share for [a] counts toward the quorum. *)
  let own =
    Tsig.release ~drbg:rt.Runtime.drbg rt.Runtime.keys.Dealer.bc_tsig ~ctx:pid stmt
  in
  Hashtbl.replace origins (party + 1) ();
  shares := own :: !shares;
  equivocate_send c ~party ~pid ~to_a ~a ~b

(* A Byzantine echo responder against consistent broadcast: for each
   instance in [pids], answer the sender's SEND (tag 0) with an echo (tag 1)
   carrying a signature share released for a *corrupted* statement.  The
   share parses, carries our genuine origin, and its proof is internally
   consistent — it is just a proof about the wrong message, so every
   verification path (single, batched, cached) must reject it.  Against an
   amortizing sender this lands one bad share in the echo batch, forcing
   {!Crypto.Batch}'s bisection fall-back to isolate it; the sender flags us
   and still closes from the honest [echo_quorum]. *)
let bad_share_cbc_responder (c : Cluster.t) ~(party : int)
    ~(pids : string list) : unit =
  let rt = Cluster.runtime c party in
  List.iter
    (fun pid ->
      Runtime.register rt ~pid (fun ~src body ->
        match
          Wire.decode_prefix body (fun d ->
            let tag = Wire.Dec.u8 d in
            let payload = if tag = 0 then Wire.Dec.bytes d else "" in
            (tag, payload))
        with
        | Some (0, payload) ->               (* tag_send *)
          let bogus = cbc_statement ~pid (payload ^ "|corrupted") in
          let share =
            Tsig.release ~drbg:rt.Runtime.drbg rt.Runtime.keys.Dealer.bc_tsig
              ~ctx:pid bogus
          in
          Runtime.send rt ~dst:src ~pid
            (Wire.encode (fun buf ->
               Wire.Enc.u8 buf 1;            (* tag_echo *)
               Tsig.enc_share buf share))
        | Some _ | None -> ()))
    pids

(* An equivocating binary-agreement party: validly signed round-1 pre-votes
   for [true] to the parties in [to_true] and for [false] to everyone else.
   No single honest party sees both directly; the conflict surfaces through
   abstain justifications. *)
let equivocating_aba (c : Cluster.t) ~(party : int) ~(pid : string)
    ~(to_true : int list) : unit =
  let rt = Cluster.runtime c party in
  let forged (value : bool) : string =
    let stmt = Printf.sprintf "aba-pre|%s|%d|%b" pid 1 value in
    let share =
      Tsig.release ~drbg:rt.Runtime.drbg rt.Runtime.keys.Dealer.ag_tsig
        ~ctx:pid stmt
    in
    Wire.encode (fun buf ->
      Wire.Enc.u8 buf 0;                     (* tag_prevote *)
      Wire.Enc.int buf 1;                    (* round *)
      Wire.Enc.bool buf value;
      Tsig.enc_share buf share;
      Wire.Enc.u8 buf 0;                     (* J_initial *)
      Wire.Enc.option buf Wire.Enc.bytes None)
  in
  Cluster.inject c party (fun () ->
    for dst = 0 to Cluster.n c - 1 do
      if dst <> party then
        Runtime.send rt ~dst ~pid (forged (List.mem dst to_true))
    done)
