(* Reusable fault-injection scenarios over the network adversary hook.

   The asynchronous model gives the adversary full control of message
   scheduling; these helpers package the standard attacks so tests and
   experiments can say what they mean:

     Faults.partition cluster ~groups:[[0;1];[2;3]] ~heal_at:5.0

   Only one intercept can be active at a time (they compose by replacing,
   matching Sim.Net's single-hook design). *)

type spec = src:int -> dst:int -> string -> Sim.Net.action

let install (c : Cluster.t) (spec : spec) : unit = Cluster.set_intercept c spec
let clear (c : Cluster.t) : unit = Cluster.clear_intercept c

(* Silence one party entirely in both directions (a network-level crash). *)
let silence (party : int) : spec =
 fun ~src ~dst _ -> if src = party || dst = party then Sim.Net.Drop else Sim.Net.Deliver

(* Delay all traffic into [party] by [delay] seconds (an eclipsed node). *)
let eclipse (party : int) ~(delay : float) : spec =
 fun ~src:_ ~dst _ -> if dst = party then Sim.Net.Delay delay else Sim.Net.Deliver

(* Drop every [nth] message globally (a flaky scheduler). *)
let drop_every (nth : int) : spec =
  let counter = ref 0 in
  fun ~src:_ ~dst:_ _ ->
    incr counter;
    if !counter mod nth = 0 then Sim.Net.Drop else Sim.Net.Deliver

(* Split the group into components: traffic inside a component flows,
   traffic across components is held back until [heal_at] (virtual time),
   after which everything is delivered.  With n <= 3t parties on each side
   no component can decide alone, so protocols stall and must resume after
   healing - the classic partition-tolerance check. *)
let partition (c : Cluster.t) ~(groups : int list list) ~(heal_at : float) : spec =
  let component = Hashtbl.create 8 in
  List.iteri
    (fun idx members -> List.iter (fun m -> Hashtbl.replace component m idx) members)
    groups;
  fun ~src ~dst _ ->
    let now = Cluster.now c in
    if now >= heal_at then Sim.Net.Deliver
    else
      match Hashtbl.find_opt component src, Hashtbl.find_opt component dst with
      | Some a, Some b when a <> b ->
        (* Hold the message until just after healing; links stay reliable,
           so nothing is lost - only delayed, as the asynchronous model
           allows. *)
        Sim.Net.Delay (heal_at -. now +. 0.001)
      | _ -> Sim.Net.Deliver
