(** The consistent channel: the aggregated-channel construction over
    consistent (echo) broadcast (Section 2.7).

    Guarantees only {b consistency} per message; linear communication per
    message, paid for with threshold-signature computation.  Combined with
    an external stability mechanism this corresponds to the
    Malkhi-Merritt-Rodeh WAN multicast (Section 5). *)

type t

val create :
  Runtime.t -> pid:string ->
  on_deliver:(sender:int -> string -> unit) ->
  ?on_close:(unit -> unit) -> unit -> t
(** Join channel [pid]; [on_deliver] fires per delivered payload with its
    sender, [on_close] once when termination completes. *)

val send : t -> string -> unit
(** Queue a payload on this party's current broadcast instance.
    @raise Invalid_argument once closing or closed. *)

val close : t -> unit
(** Send the termination request as this party's last message. *)

val is_closed : t -> bool
(** Whether termination has completed at this party. *)

val deliveries : t -> int
(** Total payloads delivered here so far, across all senders. *)

val abort : t -> unit
(** Tear the channel down without the closing handshake. *)
