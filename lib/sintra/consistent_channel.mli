(** The consistent channel: the aggregated-channel construction over
    consistent (echo) broadcast (Section 2.7).

    Guarantees only {b consistency} per message; linear communication per
    message, paid for with threshold-signature computation.  Combined with
    an external stability mechanism this corresponds to the
    Malkhi-Merritt-Rodeh WAN multicast (Section 5). *)

type t

val create :
  Runtime.t -> pid:string ->
  on_deliver:(sender:int -> string -> unit) ->
  ?on_close:(unit -> unit) -> unit -> t

val send : t -> string -> unit
val close : t -> unit
val is_closed : t -> bool
val deliveries : t -> int
val abort : t -> unit
