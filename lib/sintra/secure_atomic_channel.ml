(* Secure causal atomic broadcast (Section 2.6): an atomic broadcast channel
   whose payloads are encrypted under the group's TDH2 threshold key, so a
   payload remains confidential until its position in the delivery sequence
   is fixed — which is what enforces causal order against a Byzantine
   adversary (Reiter-Birman).

   send: encrypt under the channel public key, broadcast the ciphertext
   atomically.  On every atomic delivery, each party releases a decryption
   share (one extra round of interaction); t+1 valid shares recover the
   cleartext, and cleartexts are delivered strictly in atomic order. *)

type slot = {
  sl_index : int;
  sl_sender : int;
  sl_ct : Crypto.Threshold_enc.ciphertext;
  shares : (int, Crypto.Threshold_enc.dec_share) Hashtbl.t;
  mutable plaintext : string option;
  mutable emitted : bool;
}

type t = {
  rt : Runtime.t;
  pid : string;
  on_deliver : sender:int -> string -> unit;
  on_ciphertext : (sender:int -> string -> unit) option;
  mutable atomic : Atomic_channel.t option;
  slots : (int, slot) Hashtbl.t;          (* atomic delivery index -> slot *)
  dead : (int, unit) Hashtbl.t;           (* slots holding invalid ciphertexts *)
  pending_shares : (int, (int * string) Queue.t) Hashtbl.t;
                                          (* shares arriving before the slot opens *)
  mutable next_index : int;               (* next atomic delivery index *)
  mutable next_emit : int;                (* next slot to deliver in order *)
}

let dec_pid (t : t) : string = t.pid ^ "/dec"

let label (pid : string) : string = "sac|" ^ pid

(* Tracing: one "decrypt" span per ordered slot on the channel's decryption
   thread — the extra round of interaction the paper puts on the critical
   path — plus an instant per in-order cleartext delivery. *)
let trace_slot (t : t) (index : int) (ph : Trace.Event.phase) : unit =
  let tr = t.rt.Runtime.trace in
  if Trace.Ctx.enabled tr then
    Trace.Ctx.emit_at tr ~time:(Trace.Ctx.now tr) ~pid:(dec_pid t) ~cat:"abc"
      ~ph
      ~args:[ ("index", Trace.Event.Int index) ]
      (Printf.sprintf "decrypt %d" index)

(* Encrypt a message for the channel; usable by non-members who know only
   the channel's public key (the paper's static encrypt). *)
let encrypt ~(drbg : Hashes.Drbg.t) ~(enc_pub : Crypto.Threshold_enc.public)
    ~(pid : string) (message : string) : string =
  (* lint: allow charge-coverage — static helper for non-member clients, who
     have no meter; member sends charge enc_encrypt in [send] *)
  let ct = Crypto.Threshold_enc.encrypt ~drbg enc_pub ~label:(label pid) message in
  Crypto.Threshold_enc.ciphertext_to_bytes enc_pub ct

let rec emit_ready (t : t) : unit =
  if Hashtbl.mem t.dead t.next_emit then begin
    (* An invalid ciphertext occupied this position at every honest party;
       skip it consistently. *)
    t.next_emit <- t.next_emit + 1;
    emit_ready t
  end
  else
    match Hashtbl.find_opt t.slots t.next_emit with
    | None -> ()
    | Some slot ->
      (match slot.plaintext with
       | None -> ()
       | Some m ->
         if not slot.emitted then begin
           slot.emitted <- true;
           let tr = t.rt.Runtime.trace in
           if Trace.Ctx.enabled tr then
             Trace.Ctx.instant tr ~pid:(dec_pid t) ~cat:"abc"
               ~args:[ ("sender", Trace.Event.Int slot.sl_sender) ]
               "deliver_clear";
           t.next_emit <- t.next_emit + 1;
           t.on_deliver ~sender:slot.sl_sender m;
           emit_ready t
         end)

(* Advance in-order delivery, then reopen the atomic channel's gate if all
   delivered ciphertexts have been decrypted (the decryption round is on the
   critical path, as in the prototype's blocking consumer loop). *)
let drain (t : t) : unit =
  emit_ready t;
  if t.next_emit >= t.next_index then
    match t.atomic with
    | Some a -> Atomic_channel.kick a
    | None -> ()

let try_combine (t : t) (slot : slot) : unit =
  if slot.plaintext = None
     && Hashtbl.length slot.shares >= Config.dec_threshold t.rt.Runtime.cfg
  then begin
    let pub = t.rt.Runtime.keys.Dealer.enc_pub in
    let shares = Det.values slot.shares ~compare:Det.by_int in
    Charge.enc_combine t.rt.Runtime.charge ~k:(Config.dec_threshold t.rt.Runtime.cfg)
      ~bytes:(String.length slot.sl_ct.Crypto.Threshold_enc.c);
    match Crypto.Threshold_enc.combine pub slot.sl_ct shares with
    | None -> ()
    | Some m ->
      slot.plaintext <- Some m;
      trace_slot t slot.sl_index Trace.Event.Span_end;
      drain t
  end

(* Apply one decryption share to an open slot. *)
let apply_share (t : t) ~(src : int) (slot : slot)
    (share : Crypto.Threshold_enc.dec_share) : unit =
  if share.Crypto.Threshold_enc.origin = src + 1
     && not (Hashtbl.mem slot.shares src)
     && slot.plaintext = None
  then begin
    if Verify.enc_dec_share t.rt ~group:(dec_pid t) ~ct:slot.sl_ct share
    then begin
      Hashtbl.add slot.shares src share;
      try_combine t slot
    end
  end

let parse_share (body : string) : (int * Crypto.Threshold_enc.dec_share) option =
  Wire.decode body (fun d ->
    let index = Wire.Dec.int d in
    let origin = Wire.Dec.int d in
    let u_i = Bignum.Nat.of_bytes_be (Wire.Dec.bytes d) in
    let a1 = Bignum.Nat.of_bytes_be (Wire.Dec.bytes d) in
    let a2 = Bignum.Nat.of_bytes_be (Wire.Dec.bytes d) in
    let response = Bignum.Nat.of_bytes_be (Wire.Dec.bytes d) in
    (index,
     { Crypto.Threshold_enc.origin; u_i;
       proof = { Crypto.Dleq.a1; a2; response } }))

(* A ciphertext was atomically delivered: open a slot and release our
   decryption share. *)
let on_atomic_deliver (t : t) ~(sender : int) (ct_bytes : string) : unit =
  let index = t.next_index in
  t.next_index <- index + 1;
  let invalid () =
    Hashtbl.replace t.dead index ();
    drain t
  in
  match Crypto.Threshold_enc.ciphertext_of_bytes ct_bytes with
  | None -> invalid ()   (* a corrupted sender broadcast garbage *)
  | Some ct ->
    if ct.Crypto.Threshold_enc.label <> label t.pid then invalid ()
    else begin
      (match t.on_ciphertext with
       | Some f -> f ~sender ct_bytes
       | None -> ());
      let slot = {
        sl_index = index; sl_sender = sender; sl_ct = ct;
        shares = Hashtbl.create 8;
        plaintext = None;
        emitted = false;
      }
      in
      Hashtbl.replace t.slots index slot;
      Charge.enc_dec_share t.rt.Runtime.charge;
      match
        Crypto.Threshold_enc.dec_share ~drbg:t.rt.Runtime.drbg
          t.rt.Runtime.keys.Dealer.enc_pub t.rt.Runtime.keys.Dealer.enc_share ct
      with
      | None ->
        (* The ciphertext fails its own validity proof: nobody can decrypt
           it, so all honest parties skip the slot. *)
        Hashtbl.remove t.slots index;
        invalid ()
      | Some share ->
        trace_slot t index Trace.Event.Span_begin;
        Hashtbl.replace slot.shares t.rt.Runtime.me share;
        let body =
          Wire.encode (fun b ->
            Wire.Enc.int b index;
            Wire.Enc.int b share.Crypto.Threshold_enc.origin;
            Wire.Enc.bytes b (Bignum.Nat.to_bytes_be share.Crypto.Threshold_enc.u_i);
            Wire.Enc.bytes b
              (Bignum.Nat.to_bytes_be share.Crypto.Threshold_enc.proof.Crypto.Dleq.a1);
            Wire.Enc.bytes b
              (Bignum.Nat.to_bytes_be share.Crypto.Threshold_enc.proof.Crypto.Dleq.a2);
            Wire.Enc.bytes b
              (Bignum.Nat.to_bytes_be share.Crypto.Threshold_enc.proof.Crypto.Dleq.response))
        in
        Runtime.broadcast t.rt ~pid:(dec_pid t) body;
        (* Shares from faster parties may have arrived before we opened the
           slot. *)
        (match Hashtbl.find_opt t.pending_shares index with
         | None -> ()
         | Some q ->
           Hashtbl.remove t.pending_shares index;
           Queue.iter
             (fun (src, body) ->
               match parse_share body with
               | Some (_, sh) -> apply_share t ~src slot sh
               | None -> ())
             q);
        try_combine t slot
    end

let pending_cap = 4096

let handle_dec (t : t) ~src body =
  match parse_share body with
  | None -> ()
  | Some (index, share) ->
    Runtime.handling t.rt ~pid:(dec_pid t) ~cat:"abc" "decshare";
    if index >= 0 then begin
      match Hashtbl.find_opt t.slots index with
      | Some slot -> apply_share t ~src slot share
      | None ->
        if index >= t.next_index && not (Hashtbl.mem t.dead index) then begin
          (* Slot not opened yet at this party: buffer the share. *)
          let q =
            match Hashtbl.find_opt t.pending_shares index with
            | Some q -> q
            | None ->
              let q = Queue.create () in
              Hashtbl.add t.pending_shares index q;
              q
          in
          if Queue.length q < pending_cap then Queue.push (src, body) q
        end
    end

let create (rt : Runtime.t) ~(pid : string)
    ~(on_deliver : sender:int -> string -> unit)
    ?(on_ciphertext : (sender:int -> string -> unit) option)
    ?(on_close = fun () -> ()) () : t =
  let t = {
    rt; pid; on_deliver; on_ciphertext;
    atomic = None;
    slots = Hashtbl.create 64;
    dead = Hashtbl.create 4;
    pending_shares = Hashtbl.create 16;
    next_index = 0;
    next_emit = 0;
  }
  in
  Runtime.register rt ~pid:(dec_pid t) (fun ~src body -> handle_dec t ~src body);
  t.atomic <-
    Some (Atomic_channel.create rt ~pid:(pid ^ "/abc")
            ~on_deliver:(fun ~sender ct -> on_atomic_deliver t ~sender ct)
            ~on_close ());
  (* The decryption round gates the next atomic round: the channel's output
     is consumed (and hence the next round started) only once every ordered
     ciphertext so far has been decrypted. *)
  (match t.atomic with
   | Some a -> Atomic_channel.set_gate a (fun () -> t.next_emit >= t.next_index)
   | None -> ());
  t

let atomic (t : t) : Atomic_channel.t =
  match t.atomic with Some a -> a | None -> assert false

(* Send a cleartext message: encrypted here, ordered atomically, decrypted
   after ordering. *)
let send (t : t) (message : string) : unit =
  Charge.enc_encrypt t.rt.Runtime.charge ~bytes:(String.length message);
  let ct =
    encrypt ~drbg:t.rt.Runtime.drbg ~enc_pub:t.rt.Runtime.keys.Dealer.enc_pub
      ~pid:t.pid message
  in
  Atomic_channel.send (atomic t) ct

(* Broadcast an externally produced ciphertext (the paper's sendCiphertext,
   for messages encrypted by non-members). *)
let send_ciphertext (t : t) (ct_bytes : string) : unit =
  Atomic_channel.send (atomic t) ct_bytes

let close (t : t) : unit = Atomic_channel.close (atomic t)
let is_closed (t : t) = Atomic_channel.is_closed (atomic t)

let abort (t : t) : unit =
  Atomic_channel.abort (atomic t);
  Runtime.unregister t.rt ~pid:(dec_pid t)
