(* The trusted dealer (Section 2): generates, from one seed, every key of a
   configuration — per-pair link MAC keys, per-party RSA signing keys, the
   dual-threshold coin keys, two threshold-signature keys (one with the
   broadcast quorum ceil((n+t+1)/2), one with the agreement quorum n-t), and
   the threshold-encryption keys.  The dealer runs once at initialization,
   exactly as in the paper. *)

type party_keys = {
  index : int;                                     (* 0-based party id *)
  sign_sk : Crypto.Rsa.secret;                     (* own signing key *)
  sign_pks : Crypto.Rsa.public array;              (* everyone's public keys *)
  coin_pub : Crypto.Threshold_coin.public;
  coin_share : Crypto.Threshold_coin.secret_share;
  bc_tsig : Tsig.secret;                           (* k = ceil((n+t+1)/2) *)
  ag_tsig : Tsig.secret;                           (* k = n - t *)
  enc_pub : Crypto.Threshold_enc.public;
  enc_share : Crypto.Threshold_enc.secret_share;
}

type t = {
  cfg : Config.t;
  mac_keys : string array array;                   (* [i].[j] for i <= j *)
  parties : party_keys array;
  coin_pub : Crypto.Threshold_coin.public;
  bc_tsig_pub : Tsig.public;
  ag_tsig_pub : Tsig.public;
  enc_pub : Crypto.Threshold_enc.public;
  group : Crypto.Group.t;
}

let deal_tsig ~(drbg : Hashes.Drbg.t) (cfg : Config.t) ~(k : int) ~(label : string)
    : Tsig.secret array =
  match cfg.Config.tsig_scheme with
  | Config.Shoup ->
    let keys =
      Crypto.Threshold_sig.deal ~drbg:(Hashes.Drbg.fork drbg label)
        ~modulus_bits:cfg.Config.tsig_bits ~nparties:cfg.Config.n ~k ~t:cfg.Config.t ()
    in
    Array.map
      (fun s -> Tsig.Shoup_sec (keys.Crypto.Threshold_sig.public, s))
      keys.Crypto.Threshold_sig.shares
  | Config.Multi ->
    let keys =
      Crypto.Multi_sig.deal ~drbg:(Hashes.Drbg.fork drbg label)
        ~modulus_bits:cfg.Config.rsa_bits ~nparties:cfg.Config.n ~k ~t:cfg.Config.t ()
    in
    Array.map
      (fun s -> Tsig.Multi_sec (keys.Crypto.Multi_sig.public, s))
      keys.Crypto.Multi_sig.shares

let deal ~(seed : string) (cfg : Config.t) : t =
  Config.validate cfg;
  let n = cfg.Config.n and t = cfg.Config.t in
  let drbg = Hashes.Drbg.create ~seed:("sintra-dealer|" ^ seed) in
  (* Link MAC keys: one 16-byte key per unordered pair, as in the paper. *)
  let mac_keys =
    Array.init n (fun i ->
      Array.init n (fun j ->
        if j < i then ""
        else Hashes.Drbg.bytes (Hashes.Drbg.fork drbg (Printf.sprintf "mac-%d-%d" i j)) 16))
  in
  (* Per-party signing keys. *)
  let sign_keys =
    Array.init n (fun i ->
      Crypto.Rsa.keygen ~drbg:(Hashes.Drbg.fork drbg (Printf.sprintf "sign-%d" i))
        ~bits:cfg.Config.rsa_bits ())
  in
  let sign_pks = Array.map (fun sk -> sk.Crypto.Rsa.pub) sign_keys in
  (* The discrete-log group shared by the coin and the cryptosystem. *)
  let group =
    Crypto.Group.generate ~drbg:(Hashes.Drbg.fork drbg "group")
      ~pbits:cfg.Config.dl_pbits ~qbits:cfg.Config.dl_qbits
  in
  let coin =
    Crypto.Threshold_coin.deal ~drbg:(Hashes.Drbg.fork drbg "coin") ~group
      ~n ~k:(Config.coin_threshold cfg) ~t
  in
  let bc = deal_tsig ~drbg cfg ~k:(Config.echo_quorum cfg) ~label:"tsig-bc" in
  let ag = deal_tsig ~drbg cfg ~k:(Config.vote_quorum cfg) ~label:"tsig-ag" in
  let enc =
    Crypto.Threshold_enc.deal ~drbg:(Hashes.Drbg.fork drbg "enc") ~group
      ~n ~k:(Config.dec_threshold cfg) ~t
  in
  let parties =
    Array.init n (fun i ->
      {
        index = i;
        sign_sk = sign_keys.(i);
        sign_pks;
        coin_pub = coin.Crypto.Threshold_coin.public;
        coin_share = coin.Crypto.Threshold_coin.shares.(i);
        bc_tsig = bc.(i);
        ag_tsig = ag.(i);
        enc_pub = enc.Crypto.Threshold_enc.public;
        enc_share = enc.Crypto.Threshold_enc.shares.(i);
      })
  in
  {
    cfg;
    mac_keys;
    parties;
    coin_pub = coin.Crypto.Threshold_coin.public;
    bc_tsig_pub = Tsig.public_of_secret bc.(0);
    ag_tsig_pub = Tsig.public_of_secret ag.(0);
    enc_pub = enc.Crypto.Threshold_enc.public;
    group;
  }

(* MAC key matrix in the symmetric layout Net expects. *)
let net_mac_keys (d : t) : string array array =
  let n = d.cfg.Config.n in
  Array.init n (fun i -> Array.init n (fun j -> d.mac_keys.(min i j).(max i j)))
