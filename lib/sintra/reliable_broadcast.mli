(** Reliable broadcast: the Bracha-Toueg echo/ready protocol (Section 2.2).

    {b Agreement}: all honest parties deliver the same payload or nothing —
    even when the designated sender equivocates.  {b Authenticity}: for an
    honest sender, what is delivered is what was sent.  {b Termination}:
    guaranteed for honest senders.  Quadratic message complexity, but no
    public-key cryptography — only the authenticated links. *)

type t

val create :
  Runtime.t -> pid:string -> sender:int -> on_deliver:(string -> unit) -> t
(** Join broadcast instance [pid] with the given designated [sender];
    [on_deliver] fires at most once. *)

val send : t -> string -> unit
(** Start the broadcast.  Only the designated sender may call this, once.
    @raise Invalid_argument otherwise. *)

val delivered : t -> bool
(** Whether this instance has delivered its payload here. *)

val abort : t -> unit
(** Terminate the local instance immediately (the paper's abort: the state
    of other parties is unspecified). *)

(** {2 Wire format}

    Exposed so tests can play a Byzantine sender. *)

val tag_send : int
(** Message tag of the sender's initial SEND. *)

val tag_echo : int
(** Message tag of the first-phase ECHO votes. *)

val tag_ready : int
(** Message tag of the second-phase READY votes. *)

val encode : tag:int -> string -> string
(** A raw protocol frame for [pid]-less injection: [tag] then the
    payload, in the instance wire format. *)
