(* The reliable channel: the aggregated-channel construction over reliable
   (Bracha) broadcast.  Guarantees agreement on every delivered message but
   no ordering; the cheapest of SINTRA's channels in most settings
   (Table 1) because it uses no public-key operations at all. *)

include Broadcast_channel.Make (struct
  type t = Reliable_broadcast.t

  let create = Reliable_broadcast.create
  let send = Reliable_broadcast.send
  let abort = Reliable_broadcast.abort
end)
