(* Static group configuration.

   SINTRA's group model is static: n servers, at most t < n/3 corrupted, all
   keys dealt up front by a trusted dealer.  [actual] key sizes are what the
   OCaml crypto really computes with (tests keep them small for speed);
   [model] key sizes drive the virtual-time cost model, so experiments can
   faithfully model 1024-bit keys (or sweep 128..1024 as in Figure 6)
   while the underlying — real — cryptography runs at a convenient size. *)

type tsig_scheme =
  | Shoup        (* proper RSA threshold signatures [Shoup, EUROCRYPT 2000] *)
  | Multi        (* vector of ordinary RSA signatures (Section 2.1) *)

type perm_mode =
  | Fixed           (* candidate order 1..n *)
  | Random_local    (* pseudo-random order derived from the protocol id *)

type t = {
  n : int;
  t : int;
  batch_size : int;          (* atomic broadcast batch (paper: t + 1) *)
  max_batch : int;           (* payloads per party per atomic round; 1 = unbatched *)
  pipeline_depth : int;      (* atomic rounds in flight concurrently; 1 = sequential *)
  adaptive_batch : bool;     (* AIMD self-tuning of the per-round vector cap *)
  tsig_scheme : tsig_scheme;
  perm_mode : perm_mode;
  (* actual cryptographic sizes *)
  rsa_bits : int;            (* per-party signing keys and multi-signatures *)
  tsig_bits : int;           (* Shoup threshold-signature modulus *)
  dl_pbits : int;            (* discrete-log field prime *)
  dl_qbits : int;            (* discrete-log subgroup order *)
  (* modeled sizes, for virtual-time cost accounting *)
  model_rsa_bits : int;
  model_dl_pbits : int;
  model_dl_qbits : int;
  (* Run the Invariant checker inside the protocol handlers: local protocol
     invariants (quorum arithmetic, index ranges, no duplicate senders)
     raise, remote misbehaviour (equivocation) is recorded for inspection.
     Off by default; the simulator and the fault tests switch it on. *)
  check_invariants : bool;
  (* Charge virtual CPU for the multi-exponentiation / fixed-base fast path
     the real bignum layer always uses (Nat.powmod2, Nat.Fixed_base); when
     off, every operation is priced as a plain square-and-multiply
     exponentiation, as in the paper's cost tables.  On by default;
     `sintra_sim run --no-fast-path` and the benchmarks can switch it off
     to measure what the fast path buys. *)
  crypto_fast_path : bool;
  (* The amortized-crypto layer.  Each knob preserves the reference
     behaviour when off (`--no-batch-verify', `--no-share-cache',
     `--no-coin-pregen'); delivery logs are byte-identical either way —
     only the virtual-CPU charges (and thus timings) move. *)
  batch_verify : bool;       (* RLC batch verification of share proofs *)
  share_cache : bool;        (* remember verified shares across retransmits *)
  coin_pregen : bool;        (* release coin shares during idle virtual time *)
  share_cache_cap : int;     (* bound on cached verified shares per party *)
}

let validate (c : t) : unit =
  if c.n < 3 * c.t + 1 then invalid_arg "Config: need n > 3t";
  (* Paper: batch = n - f + 1 with t+1 <= f <= n-t, i.e. t+1 <= B <= n-t;
     liveness needs B <= n - t (only n - t INITs are guaranteed). *)
  if c.batch_size < 1 || c.batch_size > c.n - c.t then
    invalid_arg "Config: batch size must satisfy 1 <= B <= n - t";
  if c.max_batch < 1 then invalid_arg "Config: max batch must be >= 1";
  if c.pipeline_depth < 1 then invalid_arg "Config: pipeline depth must be >= 1";
  if c.share_cache_cap < 1 then invalid_arg "Config: share cache cap must be >= 1";
  ()

(* Quorum sizes used throughout the protocols. *)
let echo_quorum (c : t) : int = (c.n + c.t + 2) / 2      (* ceil((n+t+1)/2) *)
let vote_quorum (c : t) : int = c.n - c.t
let ready_quorum (c : t) : int = (2 * c.t) + 1
let coin_threshold (c : t) : int = c.t + 1
let dec_threshold (c : t) : int = c.t + 1

(* The smallest set certain to contain an honest party: READY
   amplification, batch adoption, termination-request counting. *)
let one_honest (c : t) : int = c.t + 1

(* Default: real crypto at modest sizes, cost model at the paper's 1024-bit
   RSA / 1024-bit p with 160-bit q. *)
let make ?(batch_size : int option) ?(max_batch = 256) ?(pipeline_depth = 4)
    ?(adaptive_batch = true) ?(tsig_scheme = Multi)
    ?(perm_mode = Fixed)
    ?(rsa_bits = 512) ?(tsig_bits = 512) ?(dl_pbits = 512) ?(dl_qbits = 160)
    ?(model_rsa_bits = 1024) ?(model_dl_pbits = 1024) ?(model_dl_qbits = 160)
    ?(check_invariants = false) ?(crypto_fast_path = true)
    ?(batch_verify = true) ?(share_cache = true) ?(coin_pregen = true)
    ?(share_cache_cap = 4096)
    ~n ~t () : t =
  let batch_size = match batch_size with Some b -> b | None -> t + 1 in
  let c = {
    n; t; batch_size; max_batch; pipeline_depth; adaptive_batch;
    tsig_scheme; perm_mode;
    rsa_bits; tsig_bits; dl_pbits; dl_qbits;
    model_rsa_bits; model_dl_pbits; model_dl_qbits;
    check_invariants; crypto_fast_path;
    batch_verify; share_cache; coin_pregen; share_cache_cap;
  }
  in
  validate c;
  c

(* A small fast configuration for unit tests: tiny real keys. *)
let test ?(n = 4) ?(t = 1) ?(tsig_scheme = Multi) ?(perm_mode = Fixed)
    ?(batch_size : int option) ?max_batch ?pipeline_depth ?adaptive_batch
    ?check_invariants ?crypto_fast_path
    ?batch_verify ?share_cache ?coin_pregen ?share_cache_cap () : t =
  make ?batch_size ?max_batch ?pipeline_depth ?adaptive_batch
    ?check_invariants ?crypto_fast_path
    ?batch_verify ?share_cache ?coin_pregen ?share_cache_cap ~tsig_scheme
    ~perm_mode ~rsa_bits:256 ~tsig_bits:256 ~dl_pbits:256 ~dl_qbits:96 ~n ~t ()
