(** Optimistic atomic broadcast — the paper's "largest performance gain"
    future-work item (Section 6), in the style of Kursawe-Shoup and
    Castro-Liskov.

    With a timely network and an honest sequencer, a message is ordered by
    one verifiable consistent broadcast plus one acknowledgement round — no
    Byzantine agreement, no coin.  On complaints (triggered by a [timeout]
    on any outstanding request) the parties exchange signed, self-certifying
    progress reports and run one multi-valued agreement to fix a common cut,
    then continue under the next leader.

    Safety is timeout-independent (a wrong timeout only costs performance):
    fast delivery waits for n-t acknowledgements, and any n-t recovery
    reports must include one from that quorum, so the agreed cut covers
    every fast-delivered message. *)

type t

val create :
  ?timeout:float ->
  Runtime.t -> pid:string ->
  on_deliver:(sender:int -> string -> unit) -> unit -> t
(** [timeout] (virtual seconds, default 5.0) is the complaint trigger for
    unordered requests. *)

val send : t -> string -> unit
(** Broadcast a payload; any number per party. *)

val current_epoch : t -> int
(** The epoch this party is in (bumped by each recovery). *)

val current_leader : t -> int
(** The sequencer of the current epoch ([epoch mod n]). *)

val deliveries_fast : t -> int
(** Locally delivered on the fast path. *)

val deliveries_recovered : t -> int
(** Locally delivered during epoch-change recovery. *)

val set_epoch_hook : t -> (epoch:int -> data:string -> unit) -> unit
(** Install the durability layer's epoch observer: fires after each epoch
    change with the new epoch number and an encoded state delta (epoch and
    delivery counters) for the write-ahead log — see [Durable.observe_optimistic]. *)

val abort : t -> unit
(** Terminate the local instance and its live sub-protocols. *)
