(** Aggregated broadcast channels (Section 2.7): a virtual channel running
    [n] broadcast instances in parallel — one per sender — allocating a new
    instance whenever one delivers.  No ordering across senders; per-sender
    FIFO by construction.  Exchanges no messages of its own.

    Termination: a closing party sends a termination request as its last
    message; on delivering [t+1] requests the channel aborts the live
    instances and terminates. *)

module type BROADCAST = sig
  type t

  val create :
    Runtime.t -> pid:string -> sender:int -> on_deliver:(string -> unit) -> t
  (** One single-shot broadcast instance with [sender] as its designated
      origin, delivering at most once through [on_deliver]. *)

  val send : t -> string -> unit
  (** Start the broadcast (designated sender only). *)

  val abort : t -> unit
  (** Tear the instance down: unregister handlers, ignore late frames. *)
end

module Make (_ : BROADCAST) : sig
  type t

  val create :
    Runtime.t -> pid:string ->
    on_deliver:(sender:int -> string -> unit) ->
    ?on_close:(unit -> unit) -> unit -> t
  (** The aggregated channel: [n] underlying instances, re-allocated as
      they deliver; [on_close] fires once when termination completes. *)

  val send : t -> string -> unit
  (** Queue a payload on this party's current instance.
      @raise Invalid_argument once closing or closed. *)

  val close : t -> unit
  (** Send the termination request as this party's last message. *)

  val is_closed : t -> bool
  (** Whether termination has completed at this party. *)

  val deliveries : t -> int
  (** Total payloads delivered here so far, across all senders. *)

  val abort : t -> unit
  (** Tear the channel and its live instances down without the closing
      handshake. *)
end
