(** Aggregated broadcast channels (Section 2.7): a virtual channel running
    [n] broadcast instances in parallel — one per sender — allocating a new
    instance whenever one delivers.  No ordering across senders; per-sender
    FIFO by construction.  Exchanges no messages of its own.

    Termination: a closing party sends a termination request as its last
    message; on delivering [t+1] requests the channel aborts the live
    instances and terminates. *)

module type BROADCAST = sig
  type t

  val create :
    Runtime.t -> pid:string -> sender:int -> on_deliver:(string -> unit) -> t

  val send : t -> string -> unit
  val abort : t -> unit
end

module Make (_ : BROADCAST) : sig
  type t

  val create :
    Runtime.t -> pid:string ->
    on_deliver:(sender:int -> string -> unit) ->
    ?on_close:(unit -> unit) -> unit -> t

  val send : t -> string -> unit
  (** Queue a payload on this party's current instance.
      @raise Invalid_argument once closing or closed. *)

  val close : t -> unit
  val is_closed : t -> bool
  val deliveries : t -> int
  val abort : t -> unit
end
