(** Reusable fault-injection scenarios over the network adversary hook.

    The asynchronous model gives the adversary full control of message
    scheduling; these helpers package the standard attacks for tests and
    experiments.  Only one spec is active at a time. *)

type spec = src:int -> dst:int -> string -> Sim.Net.action

val install : Cluster.t -> spec -> unit
val clear : Cluster.t -> unit

val silence : int -> spec
(** Drop all traffic to and from one party (a network-level crash). *)

val eclipse : int -> delay:float -> spec
(** Delay all traffic {e into} one party (an eclipsed node). *)

val drop_every : int -> spec
(** Drop every nth message globally. *)

val partition : Cluster.t -> groups:int list list -> heal_at:float -> spec
(** Split the group into components whose cross-traffic is held back until
    [heal_at] virtual seconds, then released — nothing is lost, only
    delayed, as the asynchronous model allows.  Protocols must stall during
    the partition (no component has n-t members) and resume after. *)
