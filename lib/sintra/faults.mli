(** Reusable fault-injection scenarios over the network adversary hook.

    The asynchronous model gives the adversary full control of message
    scheduling; these helpers package the standard attacks for tests and
    experiments.  Only one spec is active at a time. *)

type spec = src:int -> dst:int -> string -> Sim.Net.action

val install : Cluster.t -> spec -> unit
(** Make [spec] the cluster's active network intercept. *)

val clear : Cluster.t -> unit
(** Remove the active spec; traffic flows normally again. *)

val silence : int -> spec
(** Drop all traffic to and from one party (a network-level crash). *)

val eclipse : int -> delay:float -> spec
(** Delay all traffic {e into} one party (an eclipsed node). *)

val drop_every : int -> spec
(** Drop every nth message globally. *)

val duplicate_every : int -> spec
(** Duplicate every nth message globally; both copies carry valid MACs, so
    protocols must deduplicate. *)

val replay_every : int -> delay:float -> spec
(** Replay every nth message after [delay] extra seconds (the copy bypasses
    FIFO order, like an adversary re-injecting recorded frames). *)

val selective_send : int -> victims:int list -> spec
(** Byzantine selective send: the given party silently omits its messages
    to the victims. *)

val partition : Cluster.t -> groups:int list list -> heal_at:float -> spec
(** Split the group into components whose cross-traffic is held back until
    [heal_at] virtual seconds, then released — nothing is lost, only
    delayed, as the asynchronous model allows.  Protocols must stall during
    the partition (no component has n-t members) and resume after. *)

(** {1 Byzantine party harnesses}

    These run a {e corrupted} party: instead of an honest instance it emits
    hand-crafted frames under its genuine keys.  Wire layouts are duplicated
    from the protocol modules on purpose — a real attacker does not link
    against our implementation. *)

val equivocate_send :
  Cluster.t -> party:int -> pid:string -> to_a:int list -> a:string ->
  b:string -> unit
(** Send a broadcast SEND frame for [pid] from [party] with payload [a] to
    the parties in [to_a] and [b] to everyone else.  Works against both
    reliable and consistent broadcast (same opening frame layout). *)

val equivocating_cbc_sender :
  Cluster.t -> party:int -> pid:string -> to_a:int list -> a:string ->
  b:string -> unit
(** A full equivocating consistent-broadcast sender: splits SEND payloads,
    collects echo shares for [a] (adding its own), and broadcasts the
    assembled closing message to everyone — including the parties shown
    [b], who deliver [a] anyway and flag the sender.  [to_a] needs at least
    [echo_quorum - 1] honest members for the closing to assemble. *)

val bad_share_cbc_responder :
  Cluster.t -> party:int -> pids:string list -> unit
(** A Byzantine consistent-broadcast echo responder: for each instance in
    [pids], answer the sender's SEND with a wire-well-formed signature share
    released under [party]'s genuine key for a {e corrupted} statement.
    Every verification path — single, batched, cached — must reject it; an
    amortizing sender sees one bad share per echo batch, driving
    {!Crypto.Batch} bisection, and still closes from the honest
    [echo_quorum] while flagging [party]. *)

val equivocating_aba :
  Cluster.t -> party:int -> pid:string -> to_true:int list -> unit
(** An equivocating binary-agreement party: validly signed round-1
    pre-votes for [true] to the parties in [to_true], [false] to the rest.
    The conflict surfaces via abstain justifications and is flagged. *)
