(** Consistent broadcast: Reiter's "echo broadcast" with threshold
    signatures (Section 2.2), in its {e verifiable} form (Section 3.2).

    {b Consistency}: parties that deliver, deliver the same payload — but
    some may deliver nothing (weaker than reliable broadcast's agreement).
    Linear communication, paid for with threshold-signature computation:
    the trade-off Table 1 measures.

    Verifiability: the (payload, threshold signature) pair is a {e closing
    message} that lets any party deliver and terminate without further
    communication; multi-valued agreement uses closing messages as
    transferable proofs that a candidate proposed. *)

type t

val create :
  Runtime.t -> pid:string -> sender:int -> on_deliver:(string -> unit) -> t
(** Join echo-broadcast instance [pid] with the given designated [sender];
    [on_deliver] fires at most once. *)

val send : t -> string -> unit
(** @raise Invalid_argument if not the sender, or already sent. *)

val delivered : t -> bool
(** Whether this instance has delivered its payload here. *)

val get_closing : t -> string option
(** The closing message of a delivered instance (the paper's getClosing). *)

val parse_closing : string -> (string * string) option
(** (payload, signature), without verification. *)

val payload_of_closing : string -> string option
(** The paper's getPayloadFromClosing. *)

val closing_valid : Runtime.t -> pid:string -> string -> bool
(** The paper's isValidClosing: verify a closing message against instance
    [pid] using only public keys. *)

val deliver_closing : t -> string -> bool
(** Deliver from a closing message alone; true iff delivered (also when
    already delivered).  The paper's deliverClosing. *)

val abort : t -> unit
(** Terminate the local instance immediately. *)

(** {2 Wire format} (exposed for adversarial tests) *)

val tag_send : int
(** Message tag of the sender's initial SEND. *)

val tag_echo : int
(** Message tag of the signed ECHO replies. *)

val tag_final : int
(** Message tag of the FINAL (closing) message. *)

val statement : pid:string -> string -> string
(** The string actually threshold-signed: binds instance and payload. *)
