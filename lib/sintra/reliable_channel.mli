(** The reliable channel: the aggregated-channel construction over Bracha
    reliable broadcast (Section 2.7).

    Guarantees {b agreement} on every delivered message but no cross-sender
    ordering; the cheapest of SINTRA's channels in most settings (Table 1)
    because it uses no public-key operations at all. *)

type t

val create :
  Runtime.t -> pid:string ->
  on_deliver:(sender:int -> string -> unit) ->
  ?on_close:(unit -> unit) -> unit -> t

val send : t -> string -> unit
val close : t -> unit
val is_closed : t -> bool
val deliveries : t -> int
val abort : t -> unit
