(* Consistent broadcast: Reiter's "echo broadcast" with threshold signatures
   (Section 2.2).

   The sender sends the payload to all parties; each replies to the sender
   with a threshold-signature share binding the payload to this protocol
   instance; from ceil((n+t+1)/2) valid shares the sender assembles the
   threshold signature and sends it with the payload to everyone, and a
   party delivers on receiving a valid (payload, signature) pair.

   Only consistency is guaranteed — parties that deliver, deliver the same
   payload, but some parties may deliver nothing.  Communication is linear
   in n (vs. quadratic for reliable broadcast), paid for with public-key
   operations: exactly the trade-off Table 1 measures.

   This implementation is *verifiable* (the paper's
   VerifiableConsistentBroadcast, Section 3.2): the (payload, signature)
   pair is the "closing message" that lets any third party deliver and
   terminate the instance without further communication; the multi-valued
   agreement protocol relies on this. *)

type t = {
  rt : Runtime.t;
  pid : string;
  sender : int;
  on_deliver : string -> unit;
  mutable echoed : bool;                  (* this party already sent a share *)
  mutable echoed_payload : string option; (* what we signed, for equivocation checks *)
  mutable shares : Tsig.share list;       (* sender only *)
  share_origins : (int, unit) Hashtbl.t;
  (* Sender only, batch-verify mode: echo shares awaiting verification.
     Shares are parked here unverified until enough distinct origins are on
     hand to close the quorum, then checked as ONE batch — the whole point
     of amortized verification.  Invalid shares are flagged and dropped;
     collection then continues. *)
  pending : (int, Tsig.share) Hashtbl.t;
  mutable sent_payload : string option;   (* sender only *)
  mutable final_sent : bool;
  mutable delivered : bool;
  mutable closing : (string * string) option;  (* payload, signature *)
  mutable aborted : bool;
}

let tag_send = 0
let tag_echo = 1
let tag_final = 2

(* The string actually signed: binds instance and payload. *)
let statement ~(pid : string) (payload : string) : string =
  "cbc-ready|" ^ pid ^ "|" ^ payload

let trace (t : t) : Trace.Ctx.t = t.rt.Runtime.trace

let trace_deliver (t : t) : unit =
  if t.echoed && t.rt.Runtime.me <> t.sender then
    Trace.Ctx.span_end (trace t) ~pid:t.pid ~cat:"bcast" "echo";
  Trace.Ctx.instant (trace t) ~pid:t.pid ~cat:"bcast" "deliver"

let handle (t : t) ~src body =
  if not t.aborted then begin
    let cfg = t.rt.Runtime.cfg in
    let charge = t.rt.Runtime.charge in
    let inv = t.rt.Runtime.inv in
    Invariant.sender_in_range inv src;
    match Wire.decode_prefix body (fun d -> (Wire.Dec.u8 d, d)) with
    | None -> ()
    | Some (tag, d) ->
      Runtime.handling t.rt ~pid:t.pid ~cat:"bcast"
        (if tag = tag_send then "send"
         else if tag = tag_echo then "echo"
         else if tag = tag_final then "final"
         else "other");
      if tag = tag_send && src = t.sender then begin
        match (try Some (Wire.Dec.bytes d) with Wire.Decode _ -> None) with
        | None -> ()
        | Some payload when t.echoed ->
          (* A second SEND carrying a different payload is direct evidence
             of an equivocating sender (we sign only the first). *)
          (match t.echoed_payload with
           | Some p when p <> payload ->
             Invariant.flag inv ~offender:t.sender
               (Printf.sprintf "cbc %s: equivocating SEND" t.pid)
           | Some _ | None -> ())
        | Some payload ->
          t.echoed <- true;
          t.echoed_payload <- Some payload;
          if t.rt.Runtime.me <> t.sender then
            Trace.Ctx.span_begin (trace t) ~pid:t.pid ~cat:"bcast" "echo";
          Charge.tsig_release charge;
          let share =
            Tsig.release ~drbg:t.rt.Runtime.drbg t.rt.Runtime.keys.Dealer.bc_tsig
              ~ctx:t.pid (statement ~pid:t.pid payload)
          in
          let body =
            Wire.encode (fun b ->
              Wire.Enc.u8 b tag_echo;
              Tsig.enc_share b share)
          in
          Runtime.send t.rt ~dst:t.sender ~pid:t.pid body
      end
      else if tag = tag_echo && t.rt.Runtime.me = t.sender && not t.final_sent then begin
        match t.sent_payload with
        | None -> ()  (* we have not sent yet; shares cannot be valid *)
        | Some payload ->
          (match (try Some (Tsig.dec_share d) with Wire.Decode _ -> None) with
           | None -> ()
           | Some share ->
             let stmt = statement ~pid:t.pid payload in
             let pub = Tsig.public_of_secret t.rt.Runtime.keys.Dealer.bc_tsig in
             let accept sh =
               let o = Tsig.share_origin sh in
               Invariant.share_index inv o;
               Invariant.require inv (not (Hashtbl.mem t.share_origins o))
                 "duplicate share origin in echo tally";
               Hashtbl.replace t.share_origins o ();
               t.shares <- sh :: t.shares
             in
             let try_final () =
               if Hashtbl.length t.share_origins >= Config.echo_quorum cfg
               then begin
                 t.final_sent <- true;
                 Trace.Ctx.span_end (trace t) ~pid:t.pid ~cat:"bcast" "send";
                 Charge.tsig_assemble charge ~k:(Config.echo_quorum cfg);
                 let signature = Tsig.assemble pub ~ctx:t.pid stmt t.shares in
                 let body =
                   Wire.encode (fun b ->
                     Wire.Enc.u8 b tag_final;
                     Wire.Enc.bytes b payload;
                     Wire.Enc.bytes b signature)
                 in
                 Runtime.broadcast t.rt ~pid:t.pid body
               end
             in
             let origin = Tsig.share_origin share in
             if origin = src + 1 && not (Hashtbl.mem t.share_origins origin)
             then begin
               if cfg.Config.batch_verify then begin
                 (* Park the share unverified; once enough distinct origins
                    are on hand to close the quorum, check them as one
                    batch.  Invalid shares are identified exactly (bisection
                    in Crypto.Batch), flagged, and dropped — collection then
                    resumes until the quorum really closes. *)
                 Hashtbl.replace t.pending origin share;
                 if Hashtbl.length t.share_origins + Hashtbl.length t.pending
                    >= Config.echo_quorum cfg
                 then begin
                   let batch = Det.bindings t.pending ~compare:Det.by_int in
                   Hashtbl.reset t.pending;
                   let valid =
                     Verify.tsig_shares t.rt ~pub ~ctx:t.pid stmt
                       (List.map snd batch)
                   in
                   List.iteri
                     (fun i (o, sh) ->
                       if valid.(i) then accept sh
                       else
                         Invariant.flag inv ~offender:(o - 1)
                           (Printf.sprintf "cbc %s: invalid echo share" t.pid))
                     batch;
                   try_final ()
                 end
               end
               else if Verify.tsig_share t.rt ~pub ~ctx:t.pid stmt share
               then begin
                 accept share;
                 try_final ()
               end
             end)
      end
      else if tag = tag_final && not t.delivered then begin
        match
          (try
             let payload = Wire.Dec.bytes d in
             let signature = Wire.Dec.bytes d in
             Some (payload, signature)
           with Wire.Decode _ -> None)
        with
        | None -> ()
        | Some (payload, signature) ->
          let pub = Tsig.public_of_secret t.rt.Runtime.keys.Dealer.bc_tsig in
          if
            Verify.tsig_signature t.rt ~pub ~ctx:t.pid ~signature
              (statement ~pid:t.pid payload)
          then begin
            (* A valid closing for a payload other than the one we signed
               means the sender showed different payloads to different
               parties.  Consistency still holds (only one payload can ever
               gather a quorum of shares), so we deliver — but we record the
               equivocator. *)
            (match t.echoed_payload with
             | Some p when p <> payload ->
               Invariant.flag inv ~offender:t.sender
                 (Printf.sprintf "cbc %s: FINAL differs from echoed payload" t.pid)
             | Some _ | None -> ());
            t.delivered <- true;
            t.closing <- Some (payload, signature);
            trace_deliver t;
            t.on_deliver payload
          end
      end
  end

let create (rt : Runtime.t) ~(pid : string) ~(sender : int)
    ~(on_deliver : string -> unit) : t =
  let t = {
    rt; pid; sender; on_deliver;
    echoed = false;
    echoed_payload = None;
    shares = [];
    share_origins = Hashtbl.create 8;
    pending = Hashtbl.create 8;
    sent_payload = None;
    final_sent = false;
    delivered = false;
    closing = None;
    aborted = false;
  }
  in
  Runtime.register rt ~pid (fun ~src body -> handle t ~src body);
  t

let send (t : t) (payload : string) : unit =
  if t.rt.Runtime.me <> t.sender then invalid_arg "Consistent_broadcast.send: not the sender";
  if t.sent_payload <> None then invalid_arg "Consistent_broadcast.send: already sent";
  t.sent_payload <- Some payload;
  Trace.Ctx.span_begin (trace t) ~pid:t.pid ~cat:"bcast" "send";
  let body =
    Wire.encode (fun b ->
      Wire.Enc.u8 b tag_send;
      Wire.Enc.bytes b payload)
  in
  Runtime.broadcast t.rt ~pid:t.pid body

let delivered (t : t) = t.delivered

(* --- the verifiable interface (closing messages) --- *)

(* Encode the closing message of a terminated instance. *)
let get_closing (t : t) : string option =
  match t.closing with
  | None -> None
  | Some (payload, signature) ->
    Some (Wire.encode (fun b ->
      Wire.Enc.bytes b payload;
      Wire.Enc.bytes b signature))

let parse_closing (v : string) : (string * string) option =
  Wire.decode v (fun d ->
    let payload = Wire.Dec.bytes d in
    let signature = Wire.Dec.bytes d in
    (payload, signature))

let payload_of_closing (v : string) : string option =
  Option.map fst (parse_closing v)

(* Validity of a closing message for instance [pid], checkable by anyone who
   knows the group's public keys.  Routed through the verified-share cache:
   multi-valued agreement re-checks the same closings inside many
   justification vectors, and catch-up re-validates DECIDED batches — all
   repeats collapse to a cache probe. *)
let closing_valid (rt : Runtime.t) ~(pid : string) (v : string) : bool =
  match parse_closing v with
  | None -> false
  | Some (payload, signature) ->
    let pub = Tsig.public_of_secret rt.Runtime.keys.Dealer.bc_tsig in
    Verify.tsig_signature rt ~pub ~ctx:pid ~signature (statement ~pid payload)

(* Deliver from a closing message, terminating the instance locally without
   waiting for network messages. *)
let deliver_closing (t : t) (v : string) : bool =
  if t.delivered then true
  else
    match parse_closing v with
    | None -> false
    | Some (payload, signature) ->
      if closing_valid t.rt ~pid:t.pid v then begin
        t.delivered <- true;
        t.closing <- Some (payload, signature);
        trace_deliver t;
        t.on_deliver payload;
        true
      end
      else false

let abort (t : t) : unit =
  t.aborted <- true;
  Runtime.unregister t.rt ~pid:t.pid
