(* Randomized binary Byzantine agreement: the protocol of Cachin, Kursawe
   and Shoup (PODC 2000), Section 2.3 of the paper.

   Each round has three exchanges — pre-votes, main-votes, coin shares — and
   every vote is justified by non-interactively verifiable information:

   - a pre-vote for b in round 1 carries (under external validity) a proof
     that b is acceptable;
   - a pre-vote for b in round r > 1 is justified either by a threshold
     signature on "pre-vote b in round r-1" (a main-vote for b carried it),
     or by a threshold signature on "main-vote abstain in round r-1"
     together with the round-(r-1) coin shares showing the coin was b;
   - a main-vote for b is justified by a threshold signature assembled from
     n-t pre-vote shares for b; a main-vote of abstain by one justified
     pre-vote for 0 and one for 1;
   - a party decides b on n-t main-votes for b.

   The threshold signatures use the agreement key (k = n-t); the coin is the
   (n, t+1, t) Diffie-Hellman threshold coin.  The [bias] option replaces
   the round-1 coin by a fixed value (Section 2.3, biased validated
   agreement); [validator] implements external validity: an honest party
   only decides a value it holds validation data for, and the data is
   returned with the decision. *)

type justification =
  | J_initial
  | J_hard of string                                    (* sig on pre r-1 b *)
  | J_coin of string * Crypto.Threshold_coin.share list (* sig on abstain + coin *)

type prevote = {
  pv_round : int;
  pv_value : bool;
  pv_share : Tsig.share;
  pv_just : justification;
  pv_proof : string option;
}

type mainvote_value = MV_bit of bool | MV_abstain

type mainjust =
  | MJ_value of string                  (* threshold sig on "pre r b" *)
  | MJ_abstain of prevote * prevote     (* a justified pre-vote for each bit *)

type mainvote = {
  mv_round : int;
  mv_value : mainvote_value;
  mv_share : Tsig.share;
  mv_just : mainjust;
}

type round_state = {
  prevotes : (int, prevote) Hashtbl.t;        (* by 0-based sender *)
  mainvotes : (int, mainvote) Hashtbl.t;
  coin_shares : (int, Crypto.Threshold_coin.share) Hashtbl.t;
  mutable coin_value : bool option;
  (* Our own coin share for this round, pre-released at the idle start of
     the round ([Config.coin_pregen]) so [try_finish_round] finds it ready
     instead of paying the exponentiations on the critical path.  Volatile:
     a crash loses it, and the release path recomputes on demand. *)
  mutable pregen_coin : Crypto.Threshold_coin.share option;
  mutable sent_prevote : bool;
  mutable sent_mainvote : bool;
  mutable released_coin : bool;
  mutable finished : bool;                    (* processed n-t main-votes *)
}

type t = {
  rt : Runtime.t;
  pid : string;
  bias : bool option;
  validator : (bool -> string -> bool) option;
  on_decide : bool -> string option -> unit;
  rounds : (int, round_state) Hashtbl.t;
  proofs : (bool, string) Hashtbl.t;          (* external validity data *)
  mutable proposal : (bool * string) option;
  mutable decided : (bool * int) option;      (* value, round *)
  mutable decide_emitted : bool;
  mutable pending_decide : bool option;       (* waiting for a proof *)
  mutable halted : bool;
  mutable aborted : bool;
}

(* --- statements bound into threshold signatures and the coin --- *)

let pre_stmt (t : t) (r : int) (b : bool) : string =
  Printf.sprintf "aba-pre|%s|%d|%b" t.pid r b

let main_stmt (t : t) (r : int) (v : mainvote_value) : string =
  let vs = match v with MV_bit b -> string_of_bool b | MV_abstain -> "abstain" in
  Printf.sprintf "aba-main|%s|%d|%s" t.pid r vs

let coin_name (t : t) (r : int) : string = Printf.sprintf "aba-coin|%s|%d" t.pid r

(* --- wire encoding --- *)

let enc_coin_share (b : Wire.Enc.t) (s : Crypto.Threshold_coin.share) : unit =
  Wire.Enc.int b s.Crypto.Threshold_coin.origin;
  Wire.Enc.bytes b (Bignum.Nat.to_bytes_be s.Crypto.Threshold_coin.value);
  Wire.Enc.bytes b (Bignum.Nat.to_bytes_be s.Crypto.Threshold_coin.proof.Crypto.Dleq.a1);
  Wire.Enc.bytes b (Bignum.Nat.to_bytes_be s.Crypto.Threshold_coin.proof.Crypto.Dleq.a2);
  Wire.Enc.bytes b (Bignum.Nat.to_bytes_be s.Crypto.Threshold_coin.proof.Crypto.Dleq.response)

let dec_coin_share (d : Wire.Dec.t) : Crypto.Threshold_coin.share =
  let origin = Wire.Dec.int d in
  let value = Bignum.Nat.of_bytes_be (Wire.Dec.bytes d) in
  let a1 = Bignum.Nat.of_bytes_be (Wire.Dec.bytes d) in
  let a2 = Bignum.Nat.of_bytes_be (Wire.Dec.bytes d) in
  let response = Bignum.Nat.of_bytes_be (Wire.Dec.bytes d) in
  { Crypto.Threshold_coin.origin; value;
    proof = { Crypto.Dleq.a1; a2; response } }

let enc_prevote (b : Wire.Enc.t) (pv : prevote) : unit =
  Wire.Enc.int b pv.pv_round;
  Wire.Enc.bool b pv.pv_value;
  Tsig.enc_share b pv.pv_share;
  (match pv.pv_just with
   | J_initial -> Wire.Enc.u8 b 0
   | J_hard sig_ -> Wire.Enc.u8 b 1; Wire.Enc.bytes b sig_
   | J_coin (sig_, shares) ->
     Wire.Enc.u8 b 2;
     Wire.Enc.bytes b sig_;
     Wire.Enc.list b enc_coin_share shares);
  Wire.Enc.option b Wire.Enc.bytes pv.pv_proof

and dec_prevote (d : Wire.Dec.t) : prevote =
  let pv_round = Wire.Dec.int d in
  let pv_value = Wire.Dec.bool d in
  let pv_share = Tsig.dec_share d in
  let pv_just =
    match Wire.Dec.u8 d with
    | 0 -> J_initial
    | 1 -> J_hard (Wire.Dec.bytes d)
    | 2 ->
      let sig_ = Wire.Dec.bytes d in
      let shares = Wire.Dec.list d dec_coin_share in
      J_coin (sig_, shares)
    | tag -> Wire.fail "bad prevote justification tag %d" tag
  in
  let pv_proof = Wire.Dec.option d Wire.Dec.bytes in
  { pv_round; pv_value; pv_share; pv_just; pv_proof }

let enc_mainvote (b : Wire.Enc.t) (mv : mainvote) : unit =
  Wire.Enc.int b mv.mv_round;
  (match mv.mv_value with
   | MV_bit bit -> Wire.Enc.u8 b (if bit then 1 else 0)
   | MV_abstain -> Wire.Enc.u8 b 2);
  Tsig.enc_share b mv.mv_share;
  match mv.mv_just with
  | MJ_value sig_ -> Wire.Enc.u8 b 0; Wire.Enc.bytes b sig_
  | MJ_abstain (pv0, pv1) ->
    Wire.Enc.u8 b 1;
    enc_prevote b pv0;
    enc_prevote b pv1

let dec_mainvote (d : Wire.Dec.t) : mainvote =
  let mv_round = Wire.Dec.int d in
  let mv_value =
    match Wire.Dec.u8 d with
    | 0 -> MV_bit false
    | 1 -> MV_bit true
    | 2 -> MV_abstain
    | tag -> Wire.fail "bad mainvote value tag %d" tag
  in
  let mv_share = Tsig.dec_share d in
  let mv_just =
    match Wire.Dec.u8 d with
    | 0 -> MJ_value (Wire.Dec.bytes d)
    | 1 ->
      let pv0 = dec_prevote d in
      let pv1 = dec_prevote d in
      MJ_abstain (pv0, pv1)
    | tag -> Wire.fail "bad mainvote justification tag %d" tag
  in
  { mv_round; mv_value; mv_share; mv_just }

let tag_prevote = 0
let tag_mainvote = 1
let tag_coinshare = 2

(* --- helpers --- *)

let ag_pub (t : t) : Tsig.public = Tsig.public_of_secret t.rt.Runtime.keys.Dealer.ag_tsig

let round_state (t : t) (r : int) : round_state =
  match Hashtbl.find_opt t.rounds r with
  | Some st -> st
  | None ->
    let st = {
      prevotes = Hashtbl.create 8;
      mainvotes = Hashtbl.create 8;
      coin_shares = Hashtbl.create 8;
      coin_value = None;
      pregen_coin = None;
      sent_prevote = false;
      sent_mainvote = false;
      released_coin = false;
      finished = false;
    }
    in
    Hashtbl.add t.rounds r st;
    st

let quorum (t : t) : int = Config.vote_quorum t.rt.Runtime.cfg
let coin_k (t : t) : int = Config.coin_threshold t.rt.Runtime.cfg

(* --- tracing: one span per round on the instance's thread, coin flips on
   a dedicated "<pid>/coin" thread so overlapping rounds stay nested. --- *)

let trace (t : t) : Trace.Ctx.t = t.rt.Runtime.trace

let trace_round (t : t) (r : int) (ph : Trace.Event.phase) : unit =
  let tr = trace t in
  if Trace.Ctx.enabled tr then
    Trace.Ctx.emit_at tr ~time:(Trace.Ctx.now tr) ~pid:t.pid ~cat:"aba" ~ph
      ~args:[ ("round", Trace.Event.Int r) ]
      (Printf.sprintf "round %d" r)

let trace_coin (t : t) (r : int) (ph : Trace.Event.phase)
    (args : (string * Trace.Event.arg) list) : unit =
  let tr = trace t in
  if Trace.Ctx.enabled tr then
    Trace.Ctx.emit_at tr ~time:(Trace.Ctx.now tr) ~pid:(t.pid ^ "/coin")
      ~cat:"aba" ~ph ~args
      (Printf.sprintf "coin %d" r)

let store_proof (t : t) (b : bool) (proof : string) : unit =
  match t.validator with
  | None -> ()
  | Some valid ->
    if not (Hashtbl.mem t.proofs b) && valid b proof then
      Hashtbl.add t.proofs b proof

(* --- verification of incoming votes --- *)

(* Check the coin shares embedded in a J_coin justification and return the
   coin value they determine, or None.  The shares arrive together, so this
   is the protocol's natural batch-verification site: [Verify.coin_shares]
   checks them as one random-linear-combination equation (minus any already
   cached from earlier justifications for the same coin). *)
let check_coin_just (t : t) (r_prev : int) (shares : Crypto.Threshold_coin.share list)
    : bool option =
  let charge = t.rt.Runtime.charge in
  let pub = t.rt.Runtime.keys.Dealer.coin_pub in
  let name = coin_name t r_prev in
  let distinct = Hashtbl.create 8 in
  List.iter
    (fun s -> Hashtbl.replace distinct s.Crypto.Threshold_coin.origin ())
    shares;
  if Hashtbl.length distinct < List.length shares    (* duplicated origin *)
     || Hashtbl.length distinct < coin_k t
     || not (Verify.coin_shares t.rt ~group:t.pid ~name shares)
  then None
  else begin
    Charge.coin_assemble charge ~k:(coin_k t);
    Some (Crypto.Threshold_coin.assemble_bit pub ~name shares)
  end

(* Full validity check of a pre-vote, including its justification; also
   harvests external-validity proofs and coin values as a side effect. *)
let rec prevote_valid (t : t) ~(sender : int) (pv : prevote) : bool =
  pv.pv_round >= 1
  && Tsig.share_origin pv.pv_share = sender + 1
  && Verify.tsig_share t.rt ~pub:(ag_pub t) ~ctx:t.pid
       (pre_stmt t pv.pv_round pv.pv_value) pv.pv_share
  && begin
    let just_ok =
      match pv.pv_just, pv.pv_round with
      | J_initial, 1 ->
        (match t.validator with
         | None -> true
         | Some valid ->
           (match pv.pv_proof with
            | Some proof -> valid pv.pv_value proof
            | None -> false))
      | J_hard sig_, r when r > 1 ->
        (* Every round-r pre-vote adopting bit b carries the SAME threshold
           signature statement — all but the first check is a cache probe. *)
        Verify.tsig_signature t.rt ~pub:(ag_pub t) ~ctx:t.pid ~signature:sig_
          (pre_stmt t (r - 1) pv.pv_value)
      | J_coin (sig_, shares), r when r > 1 ->
        Verify.tsig_signature t.rt ~pub:(ag_pub t) ~ctx:t.pid ~signature:sig_
          (main_stmt t (r - 1) MV_abstain)
        && begin
          match t.bias with
          | Some bias_value when r - 1 = 1 ->
            (* The round-1 coin is replaced by the bias. *)
            shares = [] && pv.pv_value = bias_value
          | _ ->
            (match check_coin_just t (r - 1) shares with
             | Some coin -> coin = pv.pv_value
             | None -> false)
        end
      | (J_initial | J_hard _ | J_coin _), _ -> false
    in
    if just_ok then begin
      (match pv.pv_proof with
       | Some proof -> store_proof t pv.pv_value proof
       | None -> ());
      (* Equivocation: this pre-vote is fully valid, so if we already hold a
         conflicting valid pre-vote from the same sender the sender signed
         both bits.  Checking here (not only in [handle]) also catches
         selective equivocation, where the conflicting vote reaches us only
         embedded in another party's abstain justification. *)
      (match Hashtbl.find_opt (round_state t pv.pv_round).prevotes sender with
       | Some prev when prev.pv_value <> pv.pv_value ->
         Invariant.flag t.rt.Runtime.inv ~offender:sender
           (Printf.sprintf "aba %s: equivocating pre-vote in round %d"
              t.pid pv.pv_round)
       | Some _ | None -> ());
      true
    end
    else false
  end

and mainvote_valid (t : t) ~(sender : int) (mv : mainvote) : bool =
  mv.mv_round >= 1
  && Tsig.share_origin mv.mv_share = sender + 1
  && Verify.tsig_share t.rt ~pub:(ag_pub t) ~ctx:t.pid
       (main_stmt t mv.mv_round mv.mv_value) mv.mv_share
  && begin
    match mv.mv_value, mv.mv_just with
    | MV_bit b, MJ_value sig_ ->
      Verify.tsig_signature t.rt ~pub:(ag_pub t) ~ctx:t.pid ~signature:sig_
        (pre_stmt t mv.mv_round b)
    | MV_abstain, MJ_abstain (pv0, pv1) ->
      pv0.pv_round = mv.mv_round && pv1.pv_round = mv.mv_round
      && pv0.pv_value = false && pv1.pv_value = true
      && prevote_valid t ~sender:(Tsig.share_origin pv0.pv_share - 1) pv0
      && prevote_valid t ~sender:(Tsig.share_origin pv1.pv_share - 1) pv1
    | MV_bit _, MJ_abstain _ | MV_abstain, MJ_value _ -> false
  end

(* --- sending votes --- *)

let send_prevote (t : t) (r : int) (b : bool) (just : justification) : unit =
  let st = round_state t r in
  if not st.sent_prevote then begin
    st.sent_prevote <- true;
    trace_round t r Trace.Event.Span_begin;
    let charge = t.rt.Runtime.charge in
    Charge.tsig_release charge;
    let share =
      Tsig.release ~drbg:t.rt.Runtime.drbg t.rt.Runtime.keys.Dealer.ag_tsig
        ~ctx:t.pid (pre_stmt t r b)
    in
    let proof = Hashtbl.find_opt t.proofs b in
    let pv = { pv_round = r; pv_value = b; pv_share = share; pv_just = just; pv_proof = proof } in
    let body = Wire.encode (fun buf -> Wire.Enc.u8 buf tag_prevote; enc_prevote buf pv) in
    Runtime.broadcast t.rt ~pid:t.pid body;
    (* Coin pre-generation: our round-r coin share depends only on the coin
       name, known now, so release it at the idle start of the round rather
       than on the critical path when the round fails to decide.  The bias
       stands in for the round-1 coin, so there is nothing to precompute
       there.  Broadcasting still happens in [try_finish_round]: revealing
       the share early would let the adversary see coins ahead of votes. *)
    (match t.bias with
     | Some _ when r = 1 -> ()
     | Some _ | None ->
       if t.rt.Runtime.cfg.Config.coin_pregen && st.pregen_coin = None
       then begin
         Charge.coin_release charge;
         st.pregen_coin <-
           Some
             (Crypto.Threshold_coin.release ~drbg:t.rt.Runtime.drbg
                t.rt.Runtime.keys.Dealer.coin_pub
                t.rt.Runtime.keys.Dealer.coin_share ~name:(coin_name t r))
       end)
  end

let try_send_mainvote (t : t) (r : int) : unit =
  let st = round_state t r in
  if st.sent_prevote && not st.sent_mainvote
     && Hashtbl.length st.prevotes >= quorum t
  then begin
    st.sent_mainvote <- true;
    let charge = t.rt.Runtime.charge in
    (* Canonical sender order: the abstain justification picks the first
       vote for each bit, and that choice must not depend on hash order. *)
    let votes = Det.values st.prevotes ~compare:Det.by_int in
    let zeros = List.filter (fun pv -> not pv.pv_value) votes in
    let ones = List.filter (fun pv -> pv.pv_value) votes in
    let value, just =
      match zeros, ones with
      | [], _ :: _ | _ :: _, [] ->
        (* Unanimous pre-votes: main-vote the bit, justified by the
           assembled threshold signature on the pre-vote statement. *)
        let b = ones <> [] in
        Charge.tsig_assemble charge ~k:(quorum t);
        let sig_ =
          Tsig.assemble (ag_pub t) ~ctx:t.pid (pre_stmt t r b)
            (List.map (fun pv -> pv.pv_share) votes)
        in
        (MV_bit b, MJ_value sig_)
      | pv0 :: _, pv1 :: _ -> (MV_abstain, MJ_abstain (pv0, pv1))
      | [], [] -> assert false
    in
    Charge.tsig_release charge;
    let share =
      Tsig.release ~drbg:t.rt.Runtime.drbg t.rt.Runtime.keys.Dealer.ag_tsig
        ~ctx:t.pid (main_stmt t r value)
    in
    let mv = { mv_round = r; mv_value = value; mv_share = share; mv_just = just } in
    let body = Wire.encode (fun buf -> Wire.Enc.u8 buf tag_mainvote; enc_mainvote buf mv) in
    Runtime.broadcast t.rt ~pid:t.pid body;
    (* Deciding in round r means halting after our round-(r+1) main-vote:
       by then every honest party can finish round r+1 without us. *)
    match t.decided with
    | Some (_, dr) when r >= dr + 1 -> t.halted <- true
    | _ -> ()
  end

let emit_decide (t : t) : unit =
  if not t.decide_emitted then begin
    match t.decided with
    | None -> ()
    | Some (b, _) ->
      let trace_decide () =
        let tr = trace t in
        if Trace.Ctx.enabled tr then
          Trace.Ctx.instant tr ~pid:t.pid ~cat:"aba"
            ~args:[ ("value", Trace.Event.Bool b) ]
            "decide"
      in
      (match t.validator with
       | None ->
         t.decide_emitted <- true;
         trace_decide ();
         t.on_decide b None
       | Some _ ->
         (match Hashtbl.find_opt t.proofs b with
          | Some proof ->
            t.decide_emitted <- true;
            t.pending_decide <- None;
            trace_decide ();
            t.on_decide b (Some proof)
          | None ->
            (* External validity: defer until validation data arrives (a
               justified round-1 pre-vote for b is on its way). *)
            t.pending_decide <- Some b))
  end

let rec try_finish_round (t : t) (r : int) : unit =
  let st = round_state t r in
  if st.sent_mainvote && not st.finished
     && Hashtbl.length st.mainvotes >= quorum t
  then begin
    st.finished <- true;
    trace_round t r Trace.Event.Span_end;
    let votes = Det.values st.mainvotes ~compare:Det.by_int in
    let bit_votes =
      List.filter_map (fun mv -> match mv.mv_value with MV_bit b -> Some (b, mv) | MV_abstain -> None) votes
    in
    let unanimous_bit =
      match bit_votes with
      | [] -> None
      | (b, _) :: _ ->
        if List.length bit_votes = List.length votes
           && List.for_all (fun (b', _) -> b' = b) bit_votes
        then Some b
        else None
    in
    (match unanimous_bit with
     | Some b ->
       if t.decided = None then begin
         t.decided <- Some (b, r);
         emit_decide t
       end
     | None ->
       (* Not decided: release our coin share for this round (unless the
          bias stands in for the round-1 coin). *)
       (match t.bias with
        | Some bias_value when r = 1 -> st.coin_value <- Some bias_value
        | _ ->
          if not st.released_coin then begin
            st.released_coin <- true;
            trace_coin t r Trace.Event.Span_begin [];
            let charge = t.rt.Runtime.charge in
            let share =
              match st.pregen_coin with
              | Some share -> share    (* already paid for at round start *)
              | None ->
                Charge.coin_release charge;
                Crypto.Threshold_coin.release ~drbg:t.rt.Runtime.drbg
                  t.rt.Runtime.keys.Dealer.coin_pub
                  t.rt.Runtime.keys.Dealer.coin_share ~name:(coin_name t r)
            in
            let body =
              Wire.encode (fun buf ->
                Wire.Enc.u8 buf tag_coinshare;
                Wire.Enc.int buf r;
                enc_coin_share buf share)
            in
            Runtime.broadcast t.rt ~pid:t.pid body
          end));
    try_advance t r
  end

(* Move to round r+1 once round r is finished and the new preference is
   determined (step 4 of the protocol). *)
and try_advance (t : t) (r : int) : unit =
  let st = round_state t r in
  if st.finished && not t.halted && not (round_state t (r + 1)).sent_prevote then begin
    (* Canonical sender order: the adopted bit-vote (and the signature we
       re-broadcast with it) must be the same at every replay. *)
    let votes = Det.values st.mainvotes ~compare:Det.by_int in
    let bit_vote =
      List.find_map
        (fun mv -> match mv.mv_value with MV_bit b -> Some (b, mv) | MV_abstain -> None)
        votes
    in
    match bit_vote with
    | Some (b, mv) ->
      (* A non-abstain main-vote was received: adopt it, justified by the
         threshold signature it carried. *)
      let sig_ = (match mv.mv_just with MJ_value s -> s | MJ_abstain _ -> assert false) in
      send_prevote t (r + 1) b (J_hard sig_);
      try_send_mainvote t (r + 1);
      try_finish_round t (r + 1)
    | None ->
      (* All main-votes abstained: follow the coin. *)
      (match st.coin_value with
       | None -> ()   (* wait for coin shares *)
       | Some coin ->
         let charge = t.rt.Runtime.charge in
         let abstain_shares =
           List.filter_map
             (fun mv ->
               match mv.mv_value with
               | MV_abstain -> Some mv.mv_share
               | MV_bit _ -> None)
             votes
         in
         Charge.tsig_assemble charge ~k:(quorum t);
         let sigbar =
           Tsig.assemble (ag_pub t) ~ctx:t.pid (main_stmt t r MV_abstain) abstain_shares
         in
         let shares =
           match t.bias with
           | Some _ when r = 1 -> []
           | _ ->
             (* Keep exactly the threshold, smallest senders first, so the
                justification is compact and deterministic (the table is
                keyed by 0-based sender = origin - 1). *)
             let sorted = Det.values st.coin_shares ~compare:Det.by_int in
             List.filteri (fun i _ -> i < coin_k t) sorted
         in
         send_prevote t (r + 1) coin (J_coin (sigbar, shares));
         try_send_mainvote t (r + 1);
         try_finish_round t (r + 1))
  end

(* --- message handling --- *)

let handle (t : t) ~src body =
  if not t.aborted && not (t.halted && t.decide_emitted) then begin
    match Wire.decode_prefix body (fun d -> (Wire.Dec.u8 d, d)) with
    | None -> ()
    | Some (tag, d) ->
      Runtime.handling t.rt ~pid:t.pid ~cat:"aba"
        (if tag = tag_prevote then "prevote"
         else if tag = tag_mainvote then "mainvote"
         else if tag = tag_coinshare then "coinshare"
         else "other");
      if tag = tag_prevote then begin
        match (try Some (dec_prevote d) with Wire.Decode _ -> None) with
        | None -> ()
        | Some pv ->
          let inv = t.rt.Runtime.inv in
          Invariant.sender_in_range inv src;
          let st = round_state t pv.pv_round in
          (* Equivocation: a second, conflicting, validly signed pre-vote
             from the same sender is Byzantine evidence — [prevote_valid]
             records it, then the duplicate is ignored as usual. *)
          (match Hashtbl.find_opt st.prevotes src with
           | Some prev
             when Invariant.enabled inv && prev.pv_value <> pv.pv_value ->
             ignore (prevote_valid t ~sender:src pv)
           | Some _ | None -> ());
          if not (Hashtbl.mem st.prevotes src) && prevote_valid t ~sender:src pv
          then begin
            Invariant.share_index inv (Tsig.share_origin pv.pv_share);
            Invariant.fresh_sender inv st.prevotes src "pre-vote tally";
            Hashtbl.add st.prevotes src pv;
            (* A coin-justified pre-vote reveals the previous round's coin.
               Keep its embedded shares (already verified by
               [check_coin_just]) too: our own coin-justified pre-vote for
               this round must cite a full threshold of shares, and we may
               never receive that many directly — e.g. when one link is
               slow and the sender's share is the only one to reach us. *)
            (match pv.pv_just with
             | J_coin (_, shares) when pv.pv_round > 1 ->
               let prev = round_state t (pv.pv_round - 1) in
               List.iter
                 (fun s ->
                   let sender = s.Crypto.Threshold_coin.origin - 1 in
                   if not (Hashtbl.mem prev.coin_shares sender) then
                     Hashtbl.add prev.coin_shares sender s)
                 shares;
               if prev.coin_value = None then begin
                 prev.coin_value <- Some pv.pv_value;
                 if prev.released_coin then
                   trace_coin t (pv.pv_round - 1) Trace.Event.Span_end
                     [ ("value", Trace.Event.Bool pv.pv_value) ]
               end;
               (* The reveal may be what a finished round was waiting on. *)
               if not t.halted then try_advance t (pv.pv_round - 1)
             | J_initial | J_hard _ | J_coin _ -> ());
            if not t.halted then begin
              try_send_mainvote t pv.pv_round;
              try_finish_round t pv.pv_round;
              (match t.pending_decide with
               | Some b when Hashtbl.mem t.proofs b -> emit_decide t
               | _ -> ())
            end
          end
      end
      else if tag = tag_mainvote then begin
        match (try Some (dec_mainvote d) with Wire.Decode _ -> None) with
        | None -> ()
        | Some mv ->
          let inv = t.rt.Runtime.inv in
          Invariant.sender_in_range inv src;
          let st = round_state t mv.mv_round in
          (match Hashtbl.find_opt st.mainvotes src with
           | Some prev
             when Invariant.enabled inv && prev.mv_value <> mv.mv_value
                  && mainvote_valid t ~sender:src mv ->
             Invariant.flag inv ~offender:src
               (Printf.sprintf "aba %s: equivocating main-vote in round %d"
                  t.pid mv.mv_round)
           | Some _ | None -> ());
          if not (Hashtbl.mem st.mainvotes src) && mainvote_valid t ~sender:src mv
          then begin
            Invariant.share_index inv (Tsig.share_origin mv.mv_share);
            Invariant.fresh_sender inv st.mainvotes src "main-vote tally";
            Hashtbl.add st.mainvotes src mv;
            if not t.halted then begin
              try_finish_round t mv.mv_round;
              try_advance t mv.mv_round;
              (match t.pending_decide with
               | Some b when Hashtbl.mem t.proofs b -> emit_decide t
               | _ -> ())
            end
          end
      end
      else if tag = tag_coinshare then begin
        match
          (try
             let r = Wire.Dec.int d in
             let share = dec_coin_share d in
             Some (r, share)
           with Wire.Decode _ -> None)
        with
        | None -> ()
        | Some (r, share) ->
          if r >= 1 && share.Crypto.Threshold_coin.origin = src + 1 then begin
            let st = round_state t r in
            if not (Hashtbl.mem st.coin_shares src) && st.coin_value = None then begin
              let charge = t.rt.Runtime.charge in
              if Verify.coin_share t.rt ~group:t.pid ~name:(coin_name t r) share
              then begin
                let inv = t.rt.Runtime.inv in
                Invariant.share_index inv share.Crypto.Threshold_coin.origin;
                Invariant.fresh_sender inv st.coin_shares src "coin-share tally";
                Hashtbl.add st.coin_shares src share;
                if Hashtbl.length st.coin_shares >= coin_k t then begin
                  Charge.coin_assemble charge ~k:(coin_k t);
                  let shares = Det.values st.coin_shares ~compare:Det.by_int in
                  let coin =
                    Crypto.Threshold_coin.assemble_bit
                      t.rt.Runtime.keys.Dealer.coin_pub ~name:(coin_name t r) shares
                  in
                  st.coin_value <- Some coin;
                  if st.released_coin then
                    trace_coin t r Trace.Event.Span_end
                      [ ("value", Trace.Event.Bool coin) ];
                  if not t.halted then try_advance t r
                end
              end
            end
          end
      end
  end

(* --- public interface --- *)

let create ?bias ?validator (rt : Runtime.t) ~(pid : string)
    ~(on_decide : bool -> string option -> unit) : t =
  let t = {
    rt; pid; bias; validator; on_decide;
    rounds = Hashtbl.create 8;
    proofs = Hashtbl.create 2;
    proposal = None;
    decided = None;
    decide_emitted = false;
    pending_decide = None;
    halted = false;
    aborted = false;
  }
  in
  Runtime.register rt ~pid (fun ~src body -> handle t ~src body);
  t

(* Propose a value (with validation data under external validity); each
   party proposes exactly once. *)
let propose ?(proof = "") (t : t) (value : bool) : unit =
  if t.proposal <> None then invalid_arg "Binary_agreement.propose: already proposed";
  (match t.validator with
   | Some valid when not (valid value proof) ->
     invalid_arg "Binary_agreement.propose: proposal fails validation"
   | _ -> ());
  t.proposal <- Some (value, proof);
  (match t.validator with
   | Some _ -> Hashtbl.replace t.proofs value proof
   | None -> ());
  send_prevote t 1 value J_initial;
  try_send_mainvote t 1;
  try_finish_round t 1

let decided (t : t) : bool option = Option.map fst t.decided

let abort (t : t) : unit =
  t.aborted <- true;
  Runtime.unregister t.rt ~pid:t.pid
