(** Multi-valued Byzantine agreement with external validity ("array
    agreement", the paper's ArrayAgreement): the protocol of Cachin,
    Kursawe, Petzold and Shoup (CRYPTO 2001), Section 2.4.

    Proposals travel by verifiable consistent broadcast; the parties then
    walk a common candidate permutation, running one biased validated
    binary agreement per candidate until one is accepted — O(t) expected
    iterations.  {b External validity}: the decision satisfies the supplied
    predicate; honest parties never decide a value no honest party would
    accept. *)

type candidate_state

type t = {
  rt : Runtime.t;
  pid : string;
  validator : string -> bool;
  on_decide : string -> unit;
  mutable vcbc : Consistent_broadcast.t array;
  (** per-sender proposal broadcasts (exposed so tests can drive a
      corrupted proposer) *)
  proposals : string option array;
  closings : string option array;
  perm : int array;
  candidates : candidate_state array;
  mutable proposed : bool;
  mutable started_loop : bool;
  mutable loop_index : int;
  mutable decided : bool;
  mutable aborted : bool;
}

val create :
  Runtime.t -> pid:string -> validator:(string -> bool) ->
  on_decide:(string -> unit) -> t
(** [on_decide] fires exactly once with the agreed byte string. *)

val propose : t -> string -> unit
(** @raise Invalid_argument on re-proposal or failing validation. *)

val decided : t -> bool
(** Whether this party has decided. *)

val abort : t -> unit
(** Terminate the local instance and its live sub-protocols. *)
