(* The consistent channel: the aggregated-channel construction over
   consistent (echo) broadcast.  Linear communication per message, paid for
   with threshold-signature computation; corresponds to the WAN multicast of
   Malkhi-Merritt-Rodeh when combined with an external stability mechanism
   (Section 2.7). *)

include Broadcast_channel.Make (struct
  type t = Consistent_broadcast.t

  let create = Consistent_broadcast.create
  let send = Consistent_broadcast.send
  let abort = Consistent_broadcast.abort
end)
