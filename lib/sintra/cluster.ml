(* The test-bed harness: build a full SINTRA group — engine, network,
   dealer, one runtime per party — from a topology, a configuration and a
   seed.  Used by the tests, the examples and the benchmark drivers. *)

type t = {
  engine : Sim.Engine.t;
  net : Sim.Net.t;
  cfg : Config.t;
  dealer : Dealer.t;
  runtimes : Runtime.t array;
}

let create ?(seed = "sintra") ?loss ~(topo : Sim.Topology.t) (cfg : Config.t) : t =
  if Sim.Topology.n topo <> cfg.Config.n then
    invalid_arg "Cluster.create: topology size differs from configured n";
  let dealer = Dealer.deal ~seed cfg in
  let engine = Sim.Engine.create ~seed:("engine|" ^ seed) () in
  let mac_keys = Dealer.net_mac_keys dealer in
  let net =
    match loss with
    | None -> Sim.Net.create ~engine ~topo ~mac_keys
    | Some loss -> Sim.Net.create_lossy ~loss ~engine ~topo ~mac_keys
  in
  let runtimes =
    Array.init cfg.Config.n (fun i ->
      Runtime.create ~engine ~net ~cfg ~keys:dealer.Dealer.parties.(i))
  in
  { engine; net; cfg; dealer; runtimes }

let runtime (c : t) (i : int) : Runtime.t = c.runtimes.(i)
let n (c : t) = c.cfg.Config.n

(* Run the simulation to quiescence (or a virtual-time/event bound).
   Returns the number of events executed. *)
let run ?until ?max_events (c : t) : int =
  Sim.Engine.run ?until ?max_events c.engine

let now (c : t) : float = Sim.Engine.now c.engine

(* Schedule an application action on party [i]'s virtual CPU at the current
   virtual time (e.g. a client request causing a channel send).  [cause]
   optionally names the causal flow id that triggered the action. *)
let inject ?cause (c : t) (i : int) (f : unit -> unit) : unit =
  Sim.Net.inject ?cause c.net i f

let at (c : t) ~(time : float) (f : unit -> unit) : unit =
  Sim.Engine.schedule_at c.engine ~time f

(* Fault injection. *)
let crash (c : t) (i : int) : unit = Sim.Net.crash c.net i
let recover (c : t) (i : int) : unit = Sim.Net.recover c.net i

let set_intercept (c : t) f = Sim.Net.set_intercept c.net f
let clear_intercept (c : t) = Sim.Net.clear_intercept c.net

let honest_indices (c : t) ~(corrupted : int list) : int list =
  List.filter (fun i -> not (List.mem i corrupted)) (List.init c.cfg.Config.n (fun i -> i))

(* Observability. *)

let set_sink (c : t) (s : Trace.Sink.t) : unit = Sim.Engine.set_sink c.engine s

let metrics (c : t) : Trace.Metrics.t = Sim.Engine.metrics c.engine

(* Flush the network/CPU counters into the registry and return it. *)
let publish_metrics (c : t) : Trace.Metrics.t =
  Sim.Net.publish_metrics c.net;
  Array.iter
    (fun rt ->
      if rt.Runtime.dropped_orphans > 0 then
        Trace.Metrics.set
          (Trace.Metrics.counter (Sim.Engine.metrics c.engine)
             (Printf.sprintf "p%d/runtime.dropped_orphans" rt.Runtime.me))
          (float_of_int rt.Runtime.dropped_orphans))
    c.runtimes;
  (* Percentile summaries of every histogram, as <name>/p50|p90|p99. *)
  Trace.Metrics.publish_quantiles (Sim.Engine.metrics c.engine);
  Sim.Engine.metrics c.engine
