(** Cached and batched share/signature verification — the single seam the
    protocol verify paths go through, so the amortization mechanisms
    compose in one place:

    - the verified-share cache ({!Config.share_cache}): a share or
      assembled signature already verified under the same
      (scheme, statement+share digest, sender, index) key is accepted for
      the price of a hash-table probe, so retransmits, replayed
      justifications and catch-up closings stop re-paying
      exponentiations;
    - batch verification ({!Config.batch_verify}): same-statement share
      proofs are checked as one random-linear-combination equation
      ({!Crypto.Batch}), with bisection identifying bad shares exactly.

    Acceptance is exactly that of the reference one-at-a-time verifiers —
    cache keys cover the share bytes, only verified shares are inserted,
    and {!Crypto.Batch} agrees with the single verifiers item by item.
    Only the virtual-CPU charges move.  Counters:
    [verify.cache_hit]/[verify.cache_miss], histogram [verify.batch_size],
    gauge [verify.cache_size] (with [/max] high-water mark). *)

val tsig_share :
  ?charge:Charge.t ->
  Runtime.t -> pub:Tsig.public -> ctx:string -> string -> Tsig.share -> bool
(** Verify one threshold-signature share on a message, through the cache.
    Entries are grouped under [ctx] (the owning instance's pid) for
    eviction.  [charge] names the meter the cost lands on (default: the
    party's protocol CPU, [rt.charge]); a durability endpoint passes the
    storage core's context ([rt.store_charge]) instead. *)

val tsig_shares :
  ?charge:Charge.t ->
  Runtime.t -> pub:Tsig.public -> ctx:string -> string -> Tsig.share list ->
  bool array
(** Verify same-message shares together: cached shares are skipped, and
    two or more fresh Shoup shares go through one RLC batch when
    {!Config.batch_verify} is on (multi-signature shares have no combined
    equation and fall back to cached singles).  [result.(i)] reports the
    [i]-th input share, matching {!tsig_share} share by share.  [charge]
    as in {!tsig_share}. *)

val tsig_signature :
  ?charge:Charge.t ->
  Runtime.t -> pub:Tsig.public -> ctx:string -> signature:string -> string ->
  bool
(** Verify an assembled threshold signature, through the cache — closings
    and vote justifications repeat the same (statement, signature) pair
    across many messages, which all but the first collapse to a probe.
    [charge] as in {!tsig_share}. *)

val enc_dec_share :
  Runtime.t -> group:string -> ct:Crypto.Threshold_enc.ciphertext ->
  Crypto.Threshold_enc.dec_share -> bool
(** Verify one threshold-decryption share against its ciphertext, through
    the cache; [group] is the owning channel's decryption pid. *)

val coin_share :
  Runtime.t -> group:string -> name:string -> Crypto.Threshold_coin.share ->
  bool
(** Verify one threshold-coin share for coin [name], through the cache;
    [group] is the owning instance's pid (eviction group). *)

val coin_shares :
  Runtime.t -> group:string -> name:string ->
  Crypto.Threshold_coin.share list -> bool
(** Verify a justification's coin shares together (all-or-nothing): cached
    shares are skipped, the rest go through one RLC batch (or singles when
    batching is off).  On failure the individually-valid complement is
    still cached, so a corrected retransmission amortizes. *)
