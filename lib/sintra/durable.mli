(** The durability controller: binds the deterministic store (lib/store)
    to an atomic broadcast channel — write-ahead logging of delivered
    rounds, threshold-signed checkpoints every [interval] rounds, log and
    DECIDED-backlog garbage collection below the latest stable checkpoint,
    and verified snapshot state transfer for rebuilt or lagging parties.

    Byzantine-safety invariant: state is only ever adopted under a
    checkpoint certificate assembled from n-t threshold-signature shares
    over the state digest — whether it comes from a peer or from this
    party's own disk — and replayed tail rounds are re-validated through
    the channel's signature checks.  No single replica's word (or disk)
    is trusted. *)

type t
(** One party's durability controller for one channel. *)

val attach :
  Runtime.t -> chan:Atomic_channel.t -> pid:string -> dev:Store.Device.t ->
  ?interval:int -> unit -> t
(** Attach durability to a channel: restore from [dev] (verified snapshot
    adoption plus re-validated tail replay), install the channel's round
    and catch-up-miss hooks, register the controller's own network pid
    ([pid ^ "!dur"]) and announce our round to the cluster.  [pid] must be
    the channel's pid — it names the certified statement.  [interval]
    (default 256) is the checkpoint period in rounds; [0] disables
    checkpointing (log only).  The device must be held OUTSIDE the
    runtime so it survives [Runtime.crash], like a disk. *)

val log_delta : t -> key:string -> data:string -> unit
(** Append a channel-state delta record.  A delta supersedes earlier
    deltas with the same key; compaction keeps only the newest per key. *)

val observe_optimistic : t -> Optimistic_channel.t -> unit
(** Wire the optimistic channel's epoch-change hook to {!log_delta}
    (key ["opt.epoch"]), so epoch progress survives restarts. *)

val device : t -> Store.Device.t
(** The backing device (for inspection and crash/recover tests). *)

val stable_checkpoint : t -> Store.Checkpoint.t option
(** The latest stable (certificate-backed) checkpoint, if any. *)

val deltas : t -> (string * string) list
(** The delta records replayed from the device at attach time, oldest
    first. *)

val checkpoints : t -> int
(** Checkpoints this party saw reach stability locally. *)

val snapshots_served : t -> int
(** Snapshots sent to stragglers whose history fell below the GC floor. *)

val snapshots_adopted : t -> int
(** Peer snapshots verified and installed here. *)

val replayed_rounds : t -> int
(** Rounds re-delivered from the local log during the last restore. *)

val restored_from : t -> int
(** The checkpoint round the last restore started from: [-1] if the
    device held no usable snapshot (fresh start or distrusted disk),
    [0] or more when a verified local snapshot was installed. *)
