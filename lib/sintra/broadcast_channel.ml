(* Aggregated broadcast channels (Section 2.7): a virtual channel that runs
   n broadcast instances in parallel — one per sender — and allocates a new
   instance for a sender whenever its current one delivers.  The channel
   guarantees agreement (reliable) or only consistency (consistent) but no
   ordering; it exchanges no messages of its own.

   Termination: to close, a party sends a termination request as its last
   message; on delivering t+1 such requests the channel aborts the live
   instances and terminates. *)

module type BROADCAST = sig
  type t

  val create :
    Runtime.t -> pid:string -> sender:int -> on_deliver:(string -> unit) -> t

  val send : t -> string -> unit
  val abort : t -> unit
end

module Make (B : BROADCAST) = struct
  type t = {
    rt : Runtime.t;
    pid : string;
    on_deliver : sender:int -> string -> unit;
    on_close : unit -> unit;
    mutable instances : B.t array;        (* current instance per sender *)
    seqs : int array;                     (* current instance number *)
    pending : string Queue.t;             (* our queued sends *)
    mutable sending : bool;               (* our current instance is in use *)
    term_requests : (int, unit) Hashtbl.t;
    mutable closing : bool;
    mutable closed : bool;
    mutable deliveries : int;
  }

  let frame_payload (s : string) : string = "\x01" ^ s
  let frame_term : string = "\x00"

  let instance_pid (pid : string) (sender : int) (seq : int) : string =
    Printf.sprintf "%s/%d.%d" pid sender seq

  (* Start this party's next broadcast if one is queued and the current
     instance is free. *)
  let rec pump (t : t) : unit =
    if not t.closed && not t.sending then begin
      match Queue.take_opt t.pending with
      | None -> ()
      | Some framed ->
        t.sending <- true;
        B.send t.instances.(t.rt.Runtime.me) framed
    end

  and deliver (t : t) (sender : int) (framed : string) : unit =
    if not t.closed then begin
      (* Roll the sender's instance forward. *)
      t.seqs.(sender) <- t.seqs.(sender) + 1;
      t.instances.(sender) <-
        make_instance t sender t.seqs.(sender);
      if sender = t.rt.Runtime.me then begin
        t.sending <- false;
        pump t
      end;
      if framed = frame_term then begin
        Hashtbl.replace t.term_requests sender ();
        if Hashtbl.length t.term_requests >= Config.one_honest t.rt.Runtime.cfg
        then begin
          t.closed <- true;
          Array.iter B.abort t.instances;
          t.on_close ()
        end
      end
      else if String.length framed >= 1 && framed.[0] = '\x01' then begin
        t.deliveries <- t.deliveries + 1;
        Trace.Ctx.incr t.rt.Runtime.trace "bcast.deliveries";
        let tr = t.rt.Runtime.trace in
        if Trace.Ctx.enabled tr then
          Trace.Ctx.instant tr ~pid:t.pid ~cat:"bcast"
            ~args:[ ("sender", Trace.Event.Int sender) ]
            "channel_deliver";
        t.on_deliver ~sender (String.sub framed 1 (String.length framed - 1))
      end
    end

  and make_instance (t : t) (sender : int) (seq : int) : B.t =
    B.create t.rt ~pid:(instance_pid t.pid sender seq) ~sender
      ~on_deliver:(fun framed -> deliver t sender framed)

  let create (rt : Runtime.t) ~(pid : string)
      ~(on_deliver : sender:int -> string -> unit)
      ?(on_close = fun () -> ()) () : t =
    let n = rt.Runtime.cfg.Config.n in
    let t = {
      rt; pid; on_deliver; on_close;
      instances = [||];
      seqs = Array.make n 0;
      pending = Queue.create ();
      sending = false;
      term_requests = Hashtbl.create 4;
      closing = false;
      closed = false;
      deliveries = 0;
    }
    in
    t.instances <- Array.init n (fun i -> make_instance t i 0);
    t

  let send (t : t) (payload : string) : unit =
    if t.closed then invalid_arg "Broadcast_channel.send: channel closed";
    if t.closing then invalid_arg "Broadcast_channel.send: channel closing";
    Queue.push (frame_payload payload) t.pending;
    pump t

  let close (t : t) : unit =
    if not t.closing && not t.closed then begin
      t.closing <- true;
      Queue.push frame_term t.pending;
      pump t
    end

  let is_closed (t : t) = t.closed
  let deliveries (t : t) = t.deliveries

  let abort (t : t) : unit =
    t.closed <- true;
    Array.iter B.abort t.instances
end
