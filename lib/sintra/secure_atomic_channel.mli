(** Secure causal atomic broadcast (Section 2.6): atomic broadcast whose
    payloads stay confidential — TDH2-encrypted under the group key — until
    their position in the total order is fixed, which enforces causal order
    against a Byzantine rushing adversary (Reiter-Birman).

    On every atomic delivery each party releases a verifiable decryption
    share (one extra round of interaction); [t+1] shares recover the
    cleartext, and cleartexts are delivered strictly in atomic order.  The
    decryption round is on the critical path, as in the prototype (it gates
    the underlying channel's next round). *)

type t

val create :
  Runtime.t -> pid:string ->
  on_deliver:(sender:int -> string -> unit) ->
  ?on_ciphertext:(sender:int -> string -> unit) ->
  ?on_close:(unit -> unit) -> unit -> t
(** [on_ciphertext] is the paper's receiveCiphertext: observe the next
    ordered ciphertext before it is decrypted. *)

val encrypt :
  drbg:Hashes.Drbg.t -> enc_pub:Crypto.Threshold_enc.public -> pid:string ->
  string -> string
(** Encrypt for channel [pid] knowing only the group public key — usable by
    a non-member (the paper's static encrypt). *)

val send : t -> string -> unit
(** Encrypt locally and broadcast atomically. *)

val send_ciphertext : t -> string -> unit
(** Broadcast an externally produced ciphertext (the paper's
    sendCiphertext). *)

val close : t -> unit
(** Close the underlying atomic channel (this party's last message). *)

val is_closed : t -> bool
(** Whether the underlying channel has terminated at this party. *)

val abort : t -> unit
(** Terminate the local instance and the underlying channel. *)
