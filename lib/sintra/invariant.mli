(** Runtime protocol-invariant checker, enabled by
    {!Config.check_invariants}.

    Local invariant violations (broken quorum arithmetic, duplicate-sender
    tallies, out-of-range indices) are bugs in this party's code and raise
    {!Violation}; remote misbehaviour (equivocation by a Byzantine peer) is
    tolerated by the protocols and therefore only {i recorded}, for tests
    and operators to inspect via {!flagged}. *)

exception Violation of string

type t

val create : Config.t -> t option
(** [None] unless the configuration enables invariant checking; every
    checker below is a no-op on [None], so call sites stay unconditional. *)

val enabled : t option -> bool
(** Whether checks are live (i.e. the option is [Some]). *)

val require : t option -> bool -> string -> unit
(** Assert a local invariant.  @raise Violation when enabled and false. *)

val check_quorums : Config.t -> unit
(** Verify the quorum arithmetic (n > 3t; echo/vote/ready/coin thresholds
    and their intersection properties).  @raise Violation on failure. *)

val sender_in_range : t option -> int -> unit
(** 0-based sender index must lie in [0, n). *)

val share_index : t option -> int -> unit
(** 1-based share origin must lie in [1, n]. *)

val fresh_sender : t option -> (int, 'a) Hashtbl.t -> int -> string -> unit
(** Call immediately before adding to a sender-keyed tally: the sender must
    be in range, not already present, and the tally must have room. *)

val flag : t option -> offender:int -> string -> unit
(** Record evidence of remote (Byzantine) misbehaviour; never raises. *)

val flagged : t option -> (int * string) list
(** All recorded misbehaviour, oldest first; [] when disabled. *)
