(** The trusted dealer (Section 2): generates, from one seed, every key of
    a configuration — per-pair link-MAC keys, per-party RSA signing keys,
    the [(n, t+1, t)] coin, two threshold-signature keys (broadcast quorum
    [ceil((n+t+1)/2)] and agreement quorum [n-t]) and the [(n, t+1, t)]
    threshold-encryption keys.  Runs once at initialization, exactly as in
    the paper; key distribution is by construction (each party gets its
    [party_keys] record). *)

type party_keys = {
  index : int;                                     (** 0-based party id *)
  sign_sk : Crypto.Rsa.secret;
  sign_pks : Crypto.Rsa.public array;
  coin_pub : Crypto.Threshold_coin.public;
  coin_share : Crypto.Threshold_coin.secret_share;
  bc_tsig : Tsig.secret;                           (** broadcast quorum *)
  ag_tsig : Tsig.secret;                           (** agreement quorum *)
  enc_pub : Crypto.Threshold_enc.public;
  enc_share : Crypto.Threshold_enc.secret_share;
}

type t = {
  cfg : Config.t;
  mac_keys : string array array;
  parties : party_keys array;
  coin_pub : Crypto.Threshold_coin.public;
  bc_tsig_pub : Tsig.public;
  ag_tsig_pub : Tsig.public;
  enc_pub : Crypto.Threshold_enc.public;
  group : Crypto.Group.t;
}

val deal : seed:string -> Config.t -> t
(** Deterministic in [seed] and the configuration's actual key sizes. *)

val net_mac_keys : t -> string array array
(** The MAC-key matrix in the symmetric layout {!Sim.Net.create} expects. *)
