(* Optimistic atomic broadcast — the paper's "largest performance gain"
   future-work item (Section 6), after Kursawe-Shoup (ePrint 2001/022) and
   Castro-Liskov: when the network is timely and a designated sequencer is
   honest, a message is ordered by one verifiable consistent broadcast and
   one acknowledgement round — no Byzantine agreement, no coin — and the
   protocol falls back to the randomized machinery only on complaints.

   Fast path (epoch e, leader = e mod n):
   - a party broadcasts its payload as a REQUEST to everyone (so a censored
     party is noticed by all);
   - the leader assigns the next sequence number s to the *vector* of all
     pending unordered requests (capped at [Config.max_batch]) and
     broadcasts it with one verifiable consistent broadcast (instance
     pid/e.<e>.<s>), whose threshold signature makes the ordering
     transferable — batching amortizes the VCBC's threshold signature over
     every request in the slot, exactly as the atomic channel amortizes its
     agreement rounds;
   - when a party's consecutive VCBC prefix reaches s it broadcasts
     ACK(e, s); a slot's requests are *delivered* (in vector order) once
     the prefix is complete and
     n-t parties have acknowledged it — the quorum that makes recovery
     safe.

   Fallback: a party that sees a request (its own or anyone's) unordered
   after [timeout] virtual seconds broadcasts COMPLAIN(e); on n-t distinct
   complaints the epoch ends:
   - every party broadcasts a signed REPORT carrying the closing messages
     of its whole VCBC prefix (self-certifying evidence of how far the
     epoch got);
   - one multi-valued agreement (pid/rec.<e>) decides a set of n-t distinct
     valid reports; the new common prefix is the *longest* report in the
     decided set.  Safety: delivery required n-t ACKs, any n-t reports
     include at least one party from that quorum (n > 3t), so the decided
     cut covers every fast-delivered message at every honest party.
   - parties deliver the cut (recovering payloads from the closings), move
     to epoch e+1 with the next leader, and re-request their pending
     payloads (duplicates are suppressed by (origin, client-seq) ids).

   The timing assumption lives only here: SINTRA's core is fully
   asynchronous, and this channel inherits that safety — a wrong timeout
   can only cost performance, never correctness (exactly the Castro-Liskov
   trade the paper describes). *)

type request = {
  rq_orig : int;
  rq_cseq : int;            (* per-origin client sequence number *)
  rq_payload : string;
}

type t = {
  rt : Runtime.t;
  pid : string;
  on_deliver : sender:int -> string -> unit;
  timeout : float;
  (* epoch state *)
  mutable epoch : int;
  mutable in_recovery : bool;
  mutable next_assign : int;           (* leader: next sequence number *)
  mutable vcbc_prefix : int;           (* consecutive VCBC deliveries *)
  mutable delivered_seq : int;         (* consecutive fast deliveries *)
  insts : (int, Consistent_broadcast.t) Hashtbl.t;   (* seq -> instance *)
  ordered : (int, request list) Hashtbl.t;   (* seq -> request vector (this epoch) *)
  closings : (int, string) Hashtbl.t;            (* seq -> closing (this epoch) *)
  acks : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* seq -> ackers (this epoch) *)
  complaints : (int, unit) Hashtbl.t;            (* complainers (this epoch) *)
  mutable complained : bool;
  reports : (int, string list) Hashtbl.t;        (* reporter -> closings *)
  mutable recovery_mvba : Array_agreement.t option;
  (* cross-epoch state *)
  delivered_ids : (int * int, unit) Hashtbl.t;   (* (orig, cseq) *)
  assigned_ids : (int * int, unit) Hashtbl.t;    (* leader-side dedup, this epoch *)
  requests : (int * int, request) Hashtbl.t;     (* known outstanding requests *)
  mutable my_cseq : int;
  mutable stats_fast : int;
  mutable stats_recovered : int;
  mutable epochs_started : int;
  mutable rec_span_open : bool;        (* a "recovery" trace span is open *)
  (* Durability: fires after each epoch change with a state delta for the
     write-ahead log. *)
  mutable epoch_hook : (epoch:int -> data:string -> unit) option;
}

let tag_request = 0
let tag_ack = 1
let tag_complain = 2
let tag_report = 3

(* Leader window: at most this many assigned-but-incomplete VCBC slots,
   scaled by the configured pipeline depth (4 slots per depth unit, so
   [pipeline_depth = 1] keeps the original 4-slot sequencer).  Requests
   arriving while the window is full wait in [requests] and ride the next
   free slot together — without the window the leader would open one slot
   per arriving request and batching would never happen. *)
let max_outstanding (t : t) : int = 4 * t.rt.Runtime.cfg.Config.pipeline_depth

let vcbc_pid (t : t) ~(epoch : int) ~(seq : int) : string =
  Printf.sprintf "%s/e.%d.%d" t.pid epoch seq

let recovery_pid (t : t) ~(epoch : int) : string = Printf.sprintf "%s/rec.%d" t.pid epoch

let leader (t : t) : int = t.epoch mod t.rt.Runtime.cfg.Config.n

let quorum (t : t) : int = Config.vote_quorum t.rt.Runtime.cfg

let trace (t : t) : Trace.Ctx.t = t.rt.Runtime.trace

let enc_request (b : Wire.Enc.t) (rq : request) : unit =
  Wire.Enc.int b rq.rq_orig;
  Wire.Enc.int b rq.rq_cseq;
  Wire.Enc.bytes b rq.rq_payload

let dec_request (d : Wire.Dec.t) : request =
  let rq_orig = Wire.Dec.int d in
  let rq_cseq = Wire.Dec.int d in
  let rq_payload = Wire.Dec.bytes d in
  { rq_orig; rq_cseq; rq_payload }

let report_stmt (t : t) ~(epoch : int) (closings : string list) : string =
  let parts =
    List.concat_map (fun c -> [ string_of_int (String.length c); "|"; c ]) closings
  in
  Charge.hash t.rt.Runtime.charge
    ~bytes:(List.fold_left (fun acc s -> acc + String.length s) 0 parts);
  let h = Hashes.Sha256.digest_list parts in
  Printf.sprintf "opt-report|%s|%d|%s" t.pid epoch h

(* --- fast path --- *)

(* The VCBC instance for (current epoch, seq), created on first use by
   either the follower prefix walk or the leader's assignment. *)
let rec get_inst (t : t) ~(seq : int) : Consistent_broadcast.t =
  match Hashtbl.find_opt t.insts seq with
  | Some inst -> inst
  | None ->
    let epoch = t.epoch in
    let inst =
      Consistent_broadcast.create t.rt ~pid:(vcbc_pid t ~epoch ~seq) ~sender:(leader t)
        ~on_deliver:(fun payload -> on_vcbc_deliver t ~epoch ~seq payload)
    in
    Hashtbl.replace t.insts seq inst;
    inst

and open_next_vcbc (t : t) : unit =
  if not t.in_recovery then ignore (get_inst t ~seq:t.vcbc_prefix)

and on_vcbc_deliver (t : t) ~(epoch : int) ~(seq : int) (payload : string) : unit =
  if epoch = t.epoch && not t.in_recovery then begin
    match Wire.decode payload (fun d -> Wire.Dec.list d dec_request) with
    | None -> ()   (* a Byzantine leader ordered garbage; complaints follow *)
    | Some rqs when List.length rqs > t.rt.Runtime.cfg.Config.max_batch ->
      ()           (* over-cap vector: treat like garbage, complaints follow *)
    | Some rqs ->
      Hashtbl.replace t.ordered seq rqs;
      (match Hashtbl.find_opt t.insts seq with
       | Some inst ->
         (match Consistent_broadcast.get_closing inst with
          | Some cl -> Hashtbl.replace t.closings seq cl
          | None -> ())
       | None -> ());
      (* Instances may complete out of order (the leader broadcasts several
         concurrently); acknowledge each consecutive-prefix extension. *)
      while Hashtbl.mem t.ordered t.vcbc_prefix do
        let s = t.vcbc_prefix in
        t.vcbc_prefix <- s + 1;
        let body =
          Wire.encode (fun b ->
            Wire.Enc.u8 b tag_ack;
            Wire.Enc.int b epoch;
            Wire.Enc.int b s)
        in
        Runtime.broadcast t.rt ~pid:t.pid body
      done;
      open_next_vcbc t;
      (* The prefix advanced, so the leader window may have freed a slot
         for requests that accumulated while it was full. *)
      leader_pump t;
      try_deliver t
  end

and try_deliver (t : t) : unit =
  let continue = ref true in
  while !continue do
    let s = t.delivered_seq in
    let acked =
      match Hashtbl.find_opt t.acks s with
      | Some set -> Hashtbl.length set >= quorum t
      | None -> false
    in
    if (not t.in_recovery) && s < t.vcbc_prefix && acked then begin
      t.delivered_seq <- s + 1;
      match Hashtbl.find_opt t.ordered s with
      | None -> ()
      | Some rqs -> List.iter (fun rq -> deliver_request t rq ~fast:true) rqs
    end
    else continue := false
  done

and deliver_request (t : t) (rq : request) ~(fast : bool) : unit =
  let id = (rq.rq_orig, rq.rq_cseq) in
  if not (Hashtbl.mem t.delivered_ids id) then begin
    Hashtbl.replace t.delivered_ids id ();
    Hashtbl.remove t.requests id;
    if fast then t.stats_fast <- t.stats_fast + 1
    else t.stats_recovered <- t.stats_recovered + 1;
    Trace.Ctx.incr (trace t)
      (if fast then "opt.fast_deliveries" else "opt.recovered_deliveries");
    if Trace.Ctx.enabled (trace t) then
      Trace.Ctx.instant (trace t) ~pid:t.pid ~cat:"opt"
        ~args:[ ("sender", Trace.Event.Int rq.rq_orig) ]
        (if fast then "deliver_fast" else "deliver_recovered");
    t.on_deliver ~sender:rq.rq_orig rq.rq_payload
  end

(* Leader: order every known unordered request, batched — one VCBC slot
   carries the whole pending vector (chunked at [max_batch]), so the slot's
   threshold signature is amortized over all of them. *)
and leader_pump (t : t) : unit =
  if (not t.in_recovery) && leader t = t.rt.Runtime.me then begin
    (* Canonical (orig, cseq) order: the sequence numbers the leader assigns
       must be a function of the known requests, not of hash order. *)
    let pending =
      List.filter_map
        (fun (id, rq) ->
          if Hashtbl.mem t.assigned_ids id || Hashtbl.mem t.delivered_ids id then None
          else Some rq)
        (Det.bindings t.requests ~compare:Det.by_int_pair)
    in
    let cap = t.rt.Runtime.cfg.Config.max_batch in
    let rec chunks = function
      | [] -> []
      | l ->
        let rec take k acc = function
          | x :: rest when k > 0 -> take (k - 1) (x :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let batch, rest = take cap [] l in
        batch :: chunks rest
    in
    List.iter
      (fun batch ->
        if t.next_assign - t.vcbc_prefix < max_outstanding t then begin
          List.iter
            (fun rq -> Hashtbl.replace t.assigned_ids (rq.rq_orig, rq.rq_cseq) ())
            batch;
          let seq = t.next_assign in
          t.next_assign <- seq + 1;
          Trace.Ctx.observe (trace t)
            ~buckets:[| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512. |]
            "opt.batch_occupancy"
            (float_of_int (List.length batch));
          Consistent_broadcast.send (get_inst t ~seq)
            (Wire.encode (fun b -> Wire.Enc.list b enc_request batch))
        end)
      (chunks pending)
  end

(* --- complaints and recovery --- *)

and watch_request (t : t) (id : int * int) : unit =
  (* Complain only when the request is overdue AND the channel made no
     progress during the whole timeout window - a busy-but-honest leader
     with a long queue must not be deposed (the Castro-Liskov timer
     discipline). *)
  let rec arm () =
    let epoch = t.epoch in
    let progress_mark = t.delivered_seq in
    Sim.Engine.schedule t.rt.Runtime.engine ~delay:t.timeout (fun () ->
      if epoch = t.epoch && (not t.in_recovery)
         && Hashtbl.mem t.requests id
         && not (Hashtbl.mem t.delivered_ids id)
      then begin
        if t.delivered_seq > progress_mark then arm ()   (* progress: re-arm *)
        else complain t
      end)
  in
  arm ()

and complain (t : t) : unit =
  if not t.complained && not t.in_recovery then begin
    t.complained <- true;
    if Trace.Ctx.enabled (trace t) then
      Trace.Ctx.instant (trace t) ~pid:t.pid ~cat:"opt" ~level:Trace.Event.Warn
        ~args:[ ("epoch", Trace.Event.Int t.epoch) ]
        "complain";
    let body =
      Wire.encode (fun b ->
        Wire.Enc.u8 b tag_complain;
        Wire.Enc.int b t.epoch)
    in
    Runtime.broadcast t.rt ~pid:t.pid body
  end

and on_complain (t : t) ~(src : int) ~(epoch : int) : unit =
  if epoch = t.epoch && not t.in_recovery then begin
    Hashtbl.replace t.complaints src ();
    (* Join once t+1 complain (an honest party is unhappy)... *)
    if Hashtbl.length t.complaints >= Config.one_honest t.rt.Runtime.cfg then
      complain t;
    (* ...and end the epoch at n-t. *)
    if Hashtbl.length t.complaints >= quorum t then start_recovery t
  end

and start_recovery (t : t) : unit =
  if not t.in_recovery then begin
    t.in_recovery <- true;
    if Trace.Ctx.enabled (trace t) then begin
      t.rec_span_open <- true;
      Trace.Ctx.span_begin (trace t) ~pid:t.pid ~cat:"opt"
        ~args:[ ("epoch", Trace.Event.Int t.epoch) ]
        (Printf.sprintf "recovery %d" t.epoch)
    end;
    Det.iter t.insts ~compare:Det.by_int (fun _ inst -> Consistent_broadcast.abort inst);
    Hashtbl.reset t.insts;
    let epoch = t.epoch in
    (* Broadcast our signed evidence: the closings of our whole prefix. *)
    let closings =
      List.init t.vcbc_prefix (fun s ->
        match Hashtbl.find_opt t.closings s with
        | Some c -> c
        | None ->
          (* VCBC records the closing before delivering, so every seq the
             prefix walk passed has one. *)
          raise (Invariant.Violation "optimistic: prefix entry missing its closing"))
    in
    Charge.rsa_sign t.rt.Runtime.charge;
    let signature =
      Crypto.Rsa.sign t.rt.Runtime.keys.Dealer.sign_sk ~ctx:t.pid
        (report_stmt t ~epoch closings)
    in
    let body =
      Wire.encode (fun b ->
        Wire.Enc.u8 b tag_report;
        Wire.Enc.int b epoch;
        Wire.Enc.list b Wire.Enc.bytes closings;
        Wire.Enc.bytes b signature)
    in
    Runtime.broadcast t.rt ~pid:t.pid body;
    (* Reports buffered while we were still on the fast path may already
       form a quorum. *)
    maybe_propose_recovery t ~epoch
  end

and report_valid (t : t) ~(epoch : int) ~(reporter : int) (closings : string list)
    (signature : string) : bool =
  Charge.rsa_verify t.rt.Runtime.charge;
  Crypto.Rsa.verify t.rt.Runtime.keys.Dealer.sign_pks.(reporter) ~ctx:t.pid
    ~signature (report_stmt t ~epoch closings)
  && List.for_all2
       (fun s closing ->
         Consistent_broadcast.closing_valid t.rt ~pid:(vcbc_pid t ~epoch ~seq:s) closing)
       (List.init (List.length closings) (fun s -> s))
       closings

and on_report (t : t) ~(src : int) ~(epoch : int) (closings : string list)
    (signature : string) : unit =
  (* Reports are accepted even before we entered recovery ourselves: an
     honest party only reports once n-t complained, so a report that may
     arrive ahead of the complaints must not be lost — and it doubles as a
     complaint by its (signing) reporter. *)
  if epoch = t.epoch && not (Hashtbl.mem t.reports src)
     && report_valid t ~epoch ~reporter:src closings signature
  then begin
    Hashtbl.replace t.reports src closings;
    if not t.in_recovery then on_complain t ~src ~epoch;
    maybe_propose_recovery t ~epoch
  end

and maybe_propose_recovery (t : t) ~(epoch : int) : unit =
  if epoch = t.epoch && t.in_recovery
     && Hashtbl.length t.reports >= quorum t && t.recovery_mvba = None
  then begin
    (* Propose our n-t collected reports to the recovery agreement. *)
    let proposal =
      Wire.encode (fun b ->
        Wire.Enc.list b
          (fun b (reporter, cls) ->
            Wire.Enc.int b reporter;
            Wire.Enc.list b Wire.Enc.bytes cls)
          (* Canonical reporter order: the proposal bytes feed an agreement
             and must be identical across replays. *)
          (Det.bindings t.reports ~compare:Det.by_int))
    in
    let mvba =
      Array_agreement.create t.rt ~pid:(recovery_pid t ~epoch)
        ~validator:(fun v -> recovery_proposal_valid t ~epoch v)
        ~on_decide:(fun v -> finish_recovery t ~epoch v)
    in
    t.recovery_mvba <- Some mvba;
    Array_agreement.propose mvba proposal
  end

and parse_recovery_proposal (v : string) : (int * string list) list option =
  Wire.decode v (fun d ->
    Wire.Dec.list d (fun d ->
      let reporter = Wire.Dec.int d in
      let cls = Wire.Dec.list d Wire.Dec.bytes in
      (reporter, cls)))

and recovery_proposal_valid (t : t) ~(epoch : int) (v : string) : bool =
  match parse_recovery_proposal v with
  | None -> false
  | Some reports ->
    let reporters = List.sort_uniq compare (List.map fst reports) in
    List.length reports >= quorum t
    && List.length reporters = List.length reports
    && List.for_all (fun (r, _) -> r >= 0 && r < t.rt.Runtime.cfg.Config.n) reports
    (* Reports inside a proposal are validated by their closings alone
       (self-certifying); the reporter signature was checked on receipt by
       whoever included them, and forged attributions cannot extend the cut
       beyond real closings. *)
    && List.for_all
         (fun (_, cls) ->
           List.for_all2
             (fun s closing ->
               Consistent_broadcast.closing_valid t.rt
                 ~pid:(vcbc_pid t ~epoch ~seq:s) closing)
             (List.init (List.length cls) (fun s -> s))
             cls)
         reports

and finish_recovery (t : t) ~(epoch : int) (decided : string) : unit =
  if epoch = t.epoch && t.in_recovery then begin
    (match parse_recovery_proposal decided with
     | None -> ()   (* impossible: the validator enforced the format *)
     | Some reports ->
       (* The common cut: the longest reported prefix. *)
       let best =
         List.fold_left
           (fun acc (_, cls) -> if List.length cls > List.length acc then cls else acc)
           [] reports
       in
       List.iteri
         (fun s closing ->
           let slot =
             match Hashtbl.find_opt t.ordered s with
             | Some rqs -> Some rqs
             | None ->
               (match Consistent_broadcast.payload_of_closing closing with
                | None -> None
                | Some p -> Wire.decode p (fun d -> Wire.Dec.list d dec_request))
           in
           match slot with
           | Some rqs -> List.iter (fun rq -> deliver_request t rq ~fast:false) rqs
           | None -> ())
         best);
    (* Move to the next epoch under the next leader. *)
    if t.rec_span_open then begin
      t.rec_span_open <- false;
      Trace.Ctx.span_end (trace t) ~pid:t.pid ~cat:"opt"
        (Printf.sprintf "recovery %d" epoch)
    end;
    Trace.Ctx.incr (trace t) "opt.recoveries";
    (match t.recovery_mvba with Some m -> Array_agreement.abort m | None -> ());
    t.recovery_mvba <- None;
    t.epoch <- epoch + 1;
    t.epochs_started <- t.epochs_started + 1;
    (* Log the epoch change: the new epoch and the delivery counters it
       starts from — the delta a durable restart needs to resume complaint
       timing and leader choice without replaying the old epoch. *)
    (match t.epoch_hook with
     | Some f ->
       f ~epoch:t.epoch
         ~data:
           (Wire.encode (fun b ->
             Wire.Enc.int b t.epoch;
             Wire.Enc.int b t.stats_fast;
             Wire.Enc.int b t.stats_recovered))
     | None -> ());
    t.in_recovery <- false;
    t.next_assign <- 0;
    t.vcbc_prefix <- 0;
    t.delivered_seq <- 0;
    Hashtbl.reset t.insts;
    Hashtbl.reset t.ordered;
    Hashtbl.reset t.closings;
    Hashtbl.reset t.acks;
    Hashtbl.reset t.complaints;
    t.complained <- false;
    Hashtbl.reset t.reports;
    Hashtbl.reset t.assigned_ids;
    open_next_vcbc t;
    (* Re-broadcast every request still outstanding and restart timers. *)
    let outstanding = Det.bindings t.requests ~compare:Det.by_int_pair in
    List.iter
      (fun (id, rq) ->
        if not (Hashtbl.mem t.delivered_ids id) then begin
          let body =
            Wire.encode (fun b -> Wire.Enc.u8 b tag_request; enc_request b rq)
          in
          Runtime.broadcast t.rt ~pid:t.pid body;
          watch_request t id
        end)
      outstanding;
    leader_pump t
  end

(* --- dispatch --- *)

let handle (t : t) ~src body =
  Invariant.sender_in_range t.rt.Runtime.inv src;
  match Wire.decode_prefix body (fun d -> (Wire.Dec.u8 d, d)) with
  | None -> ()
  | Some (tag, d) ->
    Runtime.handling t.rt ~pid:t.pid ~cat:"opt"
      (if tag = tag_request then "request"
       else if tag = tag_ack then "ack"
       else if tag = tag_complain then "complain"
       else if tag = tag_report then "report"
       else "other");
    if tag = tag_request then begin
      match (try Some (dec_request d) with Wire.Decode _ -> None) with
      | None -> ()
      | Some rq ->
        let id = (rq.rq_orig, rq.rq_cseq) in
        if (not (Hashtbl.mem t.delivered_ids id)) && not (Hashtbl.mem t.requests id)
        then begin
          Hashtbl.replace t.requests id rq;
          watch_request t id;
          leader_pump t
        end
    end
    else if tag = tag_ack then begin
      match
        (try
           let epoch = Wire.Dec.int d in
           let seq = Wire.Dec.int d in
           Some (epoch, seq)
         with Wire.Decode _ -> None)
      with
      | Some (epoch, seq) when epoch = t.epoch && not t.in_recovery ->
        let set =
          match Hashtbl.find_opt t.acks seq with
          | Some s -> s
          | None ->
            let s = Hashtbl.create 8 in
            Hashtbl.add t.acks seq s;
            s
        in
        Hashtbl.replace set src ();
        try_deliver t
      | Some _ | None -> ()
    end
    else if tag = tag_complain then begin
      match (try Some (Wire.Dec.int d) with Wire.Decode _ -> None) with
      | Some epoch -> on_complain t ~src ~epoch
      | None -> ()
    end
    else if tag = tag_report then begin
      match
        (try
           let epoch = Wire.Dec.int d in
           let closings = Wire.Dec.list d Wire.Dec.bytes in
           let signature = Wire.Dec.bytes d in
           Some (epoch, closings, signature)
         with Wire.Decode _ -> None)
      with
      | Some (epoch, closings, signature) -> on_report t ~src ~epoch closings signature
      | None -> ()
    end

let create ?(timeout = 5.0) (rt : Runtime.t) ~(pid : string)
    ~(on_deliver : sender:int -> string -> unit) () : t =
  let t = {
    rt; pid; on_deliver; timeout;
    epoch = 0;
    in_recovery = false;
    next_assign = 0;
    vcbc_prefix = 0;
    delivered_seq = 0;
    insts = Hashtbl.create 64;
    ordered = Hashtbl.create 64;
    closings = Hashtbl.create 64;
    acks = Hashtbl.create 64;
    complaints = Hashtbl.create 8;
    complained = false;
    reports = Hashtbl.create 8;
    recovery_mvba = None;
    delivered_ids = Hashtbl.create 64;
    assigned_ids = Hashtbl.create 64;
    requests = Hashtbl.create 64;
    my_cseq = 0;
    stats_fast = 0;
    stats_recovered = 0;
    epochs_started = 1;
    rec_span_open = false;
    epoch_hook = None;
  }
  in
  Runtime.register rt ~pid (fun ~src body -> handle t ~src body);
  open_next_vcbc t;
  t

(* Broadcast a payload on the channel. *)
let send (t : t) (payload : string) : unit =
  let rq = { rq_orig = t.rt.Runtime.me; rq_cseq = t.my_cseq; rq_payload = payload } in
  t.my_cseq <- t.my_cseq + 1;
  let id = (rq.rq_orig, rq.rq_cseq) in
  Hashtbl.replace t.requests id rq;
  let body = Wire.encode (fun b -> Wire.Enc.u8 b tag_request; enc_request b rq) in
  Runtime.broadcast t.rt ~pid:t.pid body;
  watch_request t id;
  leader_pump t

let current_epoch (t : t) = t.epoch
let current_leader (t : t) = leader t
let deliveries_fast (t : t) = t.stats_fast
let deliveries_recovered (t : t) = t.stats_recovered

let set_epoch_hook (t : t) (f : epoch:int -> data:string -> unit) : unit =
  t.epoch_hook <- Some f

let abort (t : t) : unit =
  t.in_recovery <- true;
  Det.iter t.insts ~compare:Det.by_int (fun _ inst -> Consistent_broadcast.abort inst);
  Hashtbl.reset t.insts;
  (match t.recovery_mvba with Some m -> Array_agreement.abort m | None -> ());
  Runtime.unregister t.rt ~pid:t.pid
