(* Runtime protocol-invariant checker.

   SINTRA's guarantees rest on mechanical discipline the type system cannot
   see: quorum arithmetic (n > 3t, thresholds t+1, n-t, ceil((n+t+1)/2)),
   one vote per sender per round, 1-based share indices in [1, n].  When
   [Config.check_invariants] is set, the protocol handlers call into this
   module so every simulation doubles as an invariant audit.

   Two severities, because the two failure modes mean different things:

   - a *local* invariant violation (double-counting a sender, an
     out-of-range index reaching a tally, broken quorum arithmetic) is a bug
     in THIS party's code: [require] raises {!Violation} immediately;
   - *remote* misbehaviour (an equivocating pre-vote, a conflicting INIT)
     is exactly what a Byzantine peer is allowed to attempt; the protocols
     must tolerate it, so [flag] records the evidence — offender and
     description — for tests and operators to inspect, and execution
     continues. *)

exception Violation of string

type t = {
  cfg : Config.t;
  mutable flags : (int * string) list;     (* offender, description; newest first *)
}

let create (cfg : Config.t) : t option =
  if cfg.Config.check_invariants then Some { cfg; flags = [] } else None

let enabled (inv : t option) : bool = inv <> None

let require (inv : t option) (cond : bool) (what : string) : unit =
  match inv with
  | None -> ()
  | Some _ -> if not cond then raise (Violation ("invariant violated: " ^ what))

(* The quorum arithmetic every protocol assumes; checked once per runtime. *)
let check_quorums (cfg : Config.t) : unit =
  let n = cfg.Config.n and t = cfg.Config.t in
  let inv = Some { cfg; flags = [] } in
  require inv (n >= 3 * t + 1) "resilience: need n > 3t";
  let echo = Config.echo_quorum cfg in
  let vote = Config.vote_quorum cfg in
  let ready = Config.ready_quorum cfg in
  let coin = Config.coin_threshold cfg in
  let dec = Config.dec_threshold cfg in
  require inv (echo = (n + t + 2) / 2) "echo quorum is ceil((n+t+1)/2)";
  require inv (vote = n - t) "vote quorum is n-t";
  require inv (ready = 2 * t + 1) "ready quorum is 2t+1";
  require inv (coin = t + 1 && dec = t + 1) "coin/decryption thresholds are t+1";
  (* Intersection properties the proofs rely on. *)
  require inv (2 * echo - n >= t + 1)
    "two echo quorums intersect in t+1 parties (consistency)";
  require inv (2 * vote - n >= t + 1)
    "two vote quorums intersect in an honest party (agreement)";
  require inv (vote >= echo) "every vote quorum contains an echo quorum";
  require inv (coin <= n - t) "t+1 coin shares are guaranteed from honest parties"

let sender_in_range (inv : t option) (src : int) : unit =
  match inv with
  | None -> ()
  | Some i ->
    require inv (src >= 0 && src < i.cfg.Config.n)
      (Printf.sprintf "sender index %d outside [0, %d)" src i.cfg.Config.n)

let share_index (inv : t option) (origin : int) : unit =
  match inv with
  | None -> ()
  | Some i ->
    require inv (origin >= 1 && origin <= i.cfg.Config.n)
      (Printf.sprintf "share index %d outside [1, %d]" origin i.cfg.Config.n)

(* One vote per sender: call immediately before [Hashtbl.add]ing a tally
   keyed by sender — a duplicate key there means this party's dedup logic
   failed, not that the peer misbehaved. *)
let fresh_sender (inv : t option) (tbl : (int, 'a) Hashtbl.t) (src : int)
    (what : string) : unit =
  match inv with
  | None -> ()
  | Some i ->
    sender_in_range inv src;
    require inv (not (Hashtbl.mem tbl src))
      (Printf.sprintf "duplicate sender %d in %s" src what);
    require inv (Hashtbl.length tbl < i.cfg.Config.n)
      (Printf.sprintf "%s already holds %d entries (n = %d)" what
         (Hashtbl.length tbl) i.cfg.Config.n)

let flag (inv : t option) ~(offender : int) (what : string) : unit =
  match inv with
  | None -> ()
  | Some i -> i.flags <- (offender, what) :: i.flags

let flagged (inv : t option) : (int * string) list =
  match inv with
  | None -> []
  | Some i -> List.rev i.flags
