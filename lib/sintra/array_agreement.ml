(* Multi-valued Byzantine agreement with external validity ("array
   agreement"): the protocol of Cachin, Kursawe, Petzold and Shoup
   (CRYPTO 2001), Section 2.4 of the paper.

   1. Every party broadcasts its proposal with *verifiable consistent
      broadcast*; the threshold signature in the closing message later
      serves as transferable proof that the candidate proposed.
   2. After n-t validated proposals, the parties walk a common permutation
      of the candidates.  For each candidate P_a:
      (a) send a yes-vote carrying P_a's closing message if we hold the
          proposal, a no-vote otherwise;
      (b) wait for n-t votes (yes-votes also disseminate the proposal);
      (c) run *biased validated binary agreement*, proposing 1 iff we hold
          a valid proposal from P_a, with the closing message as proof;
      (d) on decision 1, deliver P_a's proposal — recovered from the
          agreement's validation data if we never received it directly —
          otherwise move to the next candidate.

   The permutation is either fixed or derived pseudo-randomly from the
   protocol identifier (the paper's "random from local information", which
   balances load; both variants are in SINTRA). *)

type candidate_state = {
  votes : (int, bool) Hashtbl.t;        (* voter -> yes/no *)
  mutable vba : Validated_agreement.t option;
}

type t = {
  rt : Runtime.t;
  pid : string;
  validator : string -> bool;
  on_decide : string -> unit;
  mutable vcbc : Consistent_broadcast.t array;  (* per-sender proposal bcast *)
  proposals : string option array;              (* validated payloads *)
  closings : string option array;               (* VCBC closing messages *)
  perm : int array;
  candidates : candidate_state array;           (* indexed by candidate party *)
  mutable proposed : bool;
  mutable started_loop : bool;
  mutable loop_index : int;                     (* position in perm *)
  mutable decided : bool;
  mutable aborted : bool;
}

let vcbc_pid (pid : string) (i : int) : string = Printf.sprintf "%s/p.%d" pid i
let vba_pid (pid : string) (a : int) : string = Printf.sprintf "%s/ba.%d" pid a

let tag_vote = 0

let permutation (cfg : Config.t) (pid : string) : int array =
  let n = cfg.Config.n in
  let perm = Array.init n (fun i -> i) in
  (match cfg.Config.perm_mode with
   | Config.Fixed -> ()
   | Config.Random_local ->
     (* Fisher-Yates driven by a hash of the pid: every party computes the
        same order from locally available information. *)
     let drbg = Hashes.Drbg.create ~seed:("mvba-perm|" ^ pid) in
     for i = n - 1 downto 1 do
       let j = Hashes.Drbg.int drbg (i + 1) in
       let tmp = perm.(i) in
       perm.(i) <- perm.(j);
       perm.(j) <- tmp
     done);
  perm

(* Number of stored proposals that satisfy the validator. *)
let valid_proposal_count (t : t) : int =
  Array.fold_left (fun acc p -> if p = None then acc else acc + 1) 0 t.proposals

let store_proposal (t : t) (a : int) ~(payload : string) ~(closing : string) : unit =
  if t.proposals.(a) = None && t.validator payload then begin
    t.proposals.(a) <- Some payload;
    t.closings.(a) <- Some closing
  end

let candidate_at (t : t) (idx : int) : int = t.perm.(idx)

let trace (t : t) : Trace.Ctx.t = t.rt.Runtime.trace

let rec maybe_start_loop (t : t) : unit =
  if not t.started_loop && not t.decided
     && valid_proposal_count t >= Config.vote_quorum t.rt.Runtime.cfg
  then begin
    t.started_loop <- true;
    (* The candidate-selection loop: from a quorum of proposals to the
       decided value (one biased agreement per rejected candidate). *)
    Trace.Ctx.span_begin (trace t) ~pid:t.pid ~cat:"mvba" "select";
    start_candidate t
  end

(* Step 2(a): vote on the current candidate. *)
and start_candidate (t : t) : unit =
  if not t.decided then begin
    let a = candidate_at t t.loop_index in
    let body =
      Wire.encode (fun b ->
        Wire.Enc.u8 b tag_vote;
        Wire.Enc.int b a;
        match t.closings.(a) with
        | Some closing -> Wire.Enc.bool b true; Wire.Enc.bytes b closing
        | None -> Wire.Enc.bool b false)
    in
    Runtime.broadcast t.rt ~pid:t.pid body;
    check_candidate_progress t a
  end

(* Step 2(b)-(c): once n-t votes are in, start the biased agreement. *)
and check_candidate_progress (t : t) (a : int) : unit =
  if not t.decided && t.started_loop && candidate_at t t.loop_index = a then begin
    let st = t.candidates.(a) in
    if st.vba = None
       && Hashtbl.length st.votes >= Config.vote_quorum t.rt.Runtime.cfg
    then begin
      let validator b proof =
        if not b then true
        else
          match Consistent_broadcast.payload_of_closing proof with
          | None -> false
          | Some payload ->
            Consistent_broadcast.closing_valid t.rt ~pid:(vcbc_pid t.pid a) proof
            && t.validator payload
      in
      let vba =
        Validated_agreement.create ~bias:true t.rt ~pid:(vba_pid t.pid a) ~validator
          ~on_decide:(fun value ~proof -> candidate_decided t a value ~proof)
      in
      st.vba <- Some vba;
      (match t.closings.(a) with
       | Some closing -> Validated_agreement.propose vba true ~proof:closing
       | None -> Validated_agreement.propose vba false ~proof:"")
    end
  end

(* Step 2(d) / step 3. *)
and candidate_decided (t : t) (a : int) (value : bool) ~(proof : string) : unit =
  if not t.decided then begin
    if value then begin
      (* Deliver P_a's proposal, falling back to the agreement's validation
         data if the consistent broadcast never reached us. *)
      (match t.proposals.(a) with
       | Some payload -> decide t payload
       | None ->
         (match Consistent_broadcast.payload_of_closing proof with
          | Some payload -> decide t payload
          | None -> ()))
    end
    else begin
      t.loop_index <- t.loop_index + 1;
      if t.loop_index < Array.length t.perm then start_candidate t
      (* All candidates rejected cannot happen: the loop always reaches a
         candidate whose proposal n-t parties hold. *)
    end
  end

and decide (t : t) (payload : string) : unit =
  if not t.decided then begin
    t.decided <- true;
    if t.started_loop then
      Trace.Ctx.span_end (trace t) ~pid:t.pid ~cat:"mvba" "select";
    if Trace.Ctx.enabled (trace t) then
      Trace.Ctx.instant (trace t) ~pid:t.pid ~cat:"mvba"
        ~args:[ ("candidate", Trace.Event.Int (candidate_at t t.loop_index)) ]
        "decide";
    t.on_decide payload
  end

let handle (t : t) ~src body =
  if not t.aborted && not t.decided then begin
    match
      Wire.decode body (fun d ->
        let tag = Wire.Dec.u8 d in
        let a = Wire.Dec.int d in
        let yes = Wire.Dec.bool d in
        let closing = if yes then Some (Wire.Dec.bytes d) else None in
        (tag, a, yes, closing))
    with
    | None -> ()
    | Some (tag, a, yes, closing) ->
      Runtime.handling t.rt ~pid:t.pid ~cat:"aba"
        (if tag = tag_vote then "vote" else "other");
      if tag = tag_vote && a >= 0 && a < t.rt.Runtime.cfg.Config.n then begin
        let st = t.candidates.(a) in
        if not (Hashtbl.mem st.votes src) then begin
          let accept =
            if not yes then true
            else
              match closing with
              | None -> false
              | Some c ->
                (match Consistent_broadcast.payload_of_closing c with
                 | None -> false
                 | Some payload ->
                   if Consistent_broadcast.closing_valid t.rt ~pid:(vcbc_pid t.pid a) c
                      && t.validator payload
                   then begin
                     store_proposal t a ~payload ~closing:c;
                     true
                   end
                   else false)
          in
          if accept then begin
            Hashtbl.add st.votes src yes;
            maybe_start_loop t;
            check_candidate_progress t a
          end
        end
      end
  end

let create (rt : Runtime.t) ~(pid : string) ~(validator : string -> bool)
    ~(on_decide : string -> unit) : t =
  let n = rt.Runtime.cfg.Config.n in
  let t = {
    rt; pid; validator; on_decide;
    vcbc = [||];
    proposals = Array.make n None;
    closings = Array.make n None;
    perm = permutation rt.Runtime.cfg pid;
    candidates =
      Array.init n (fun _ ->
        { votes = Hashtbl.create 8; vba = None });
    proposed = false;
    started_loop = false;
    loop_index = 0;
    decided = false;
    aborted = false;
  }
  in
  t.vcbc <-
    Array.init n (fun i ->
      Consistent_broadcast.create rt ~pid:(vcbc_pid pid i) ~sender:i
        ~on_deliver:(fun payload ->
          (match Consistent_broadcast.get_closing t.vcbc.(i) with
           | Some closing -> store_proposal t i ~payload ~closing
           | None -> ());
          maybe_start_loop t;
          check_candidate_progress t i));
  Runtime.register rt ~pid (fun ~src body -> handle t ~src body);
  t

(* Propose this party's value; must satisfy the validator. *)
let propose (t : t) (value : string) : unit =
  if t.proposed then invalid_arg "Array_agreement.propose: already proposed";
  if not (t.validator value) then
    invalid_arg "Array_agreement.propose: proposal fails validation";
  t.proposed <- true;
  Consistent_broadcast.send t.vcbc.(t.rt.Runtime.me) value

let decided (t : t) : bool = t.decided

let abort (t : t) : unit =
  t.aborted <- true;
  Array.iter Consistent_broadcast.abort t.vcbc;
  Array.iter
    (fun st -> match st.vba with Some v -> Validated_agreement.abort v | None -> ())
    t.candidates;
  Runtime.unregister t.rt ~pid:t.pid
