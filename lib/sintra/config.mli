(** Static group configuration.

    SINTRA's group model is static: [n] servers of which at most [t < n/3]
    may be corrupted, all keys dealt up front by a trusted dealer.  The
    [actual] key sizes are what the OCaml cryptography really computes with
    (tests keep them small); the [model] sizes drive the virtual-time cost
    model, so experiments can model the paper's 1024-bit keys — or sweep
    them, as in Figure 6 — independently of the real key size. *)

type tsig_scheme =
  | Shoup        (** proper RSA threshold signatures (Shoup, EUROCRYPT 2000) *)
  | Multi        (** a vector of ordinary RSA signatures (Section 2.1) *)

type perm_mode =
  | Fixed           (** multi-valued agreement candidate order 1..n *)
  | Random_local    (** pseudo-random order derived from the protocol id *)

type t = {
  n : int;
  t : int;
  batch_size : int;          (** atomic broadcast batch, paper: [t+1] *)
  max_batch : int;
  (** Cap on the payload vector each party proposes per atomic-broadcast
      round: a round's INIT carries up to [max_batch] locally-queued
      undelivered payloads under one signature, so agreement cost is
      amortized over the whole vector.  [1] reproduces the original
      one-payload-per-party rounds (the benchmarks' [--no-batching]). *)
  pipeline_depth : int;
  (** Bound on atomic-broadcast rounds in flight concurrently: parties may
      INIT and run agreement for round [k + pipeline_depth - 1] while rounds
      [k ..] are still undecided; delivery stays strictly in round order via
      a reorder buffer.  [1] reproduces the strictly sequential protocol
      (round [k+1] starts only after round [k] delivers). *)
  adaptive_batch : bool;
  (** Self-tune the per-round vector cap by AIMD on the observed queue
      depth, between a floor of [min 8 max_batch] and the [max_batch]
      ceiling.  When off, every round uses the full [max_batch] cap. *)
  tsig_scheme : tsig_scheme;
  perm_mode : perm_mode;
  rsa_bits : int;            (** actual: signing keys / multi-signatures *)
  tsig_bits : int;           (** actual: Shoup threshold-signature modulus *)
  dl_pbits : int;            (** actual: discrete-log field prime *)
  dl_qbits : int;            (** actual: discrete-log subgroup order *)
  model_rsa_bits : int;
  model_dl_pbits : int;
  model_dl_qbits : int;
  check_invariants : bool;
  (** Run the {!Invariant} checker inside protocol handlers: local
      invariant violations raise, remote equivocation is recorded.  Off by
      default. *)
  crypto_fast_path : bool;
  (** Charge virtual CPU for the multi-exponentiation / fixed-base fast
      path the real bignum layer always uses; off prices everything as
      plain square-and-multiply, as in the paper's cost tables.  On by
      default. *)
  batch_verify : bool;
  (** Verify same-message share proofs in one random-linear-combination
      batch instead of one at a time, with bisection fall-back so bad
      shares are still attributed to their senders.  Accepts and rejects
      exactly as the one-at-a-time path; only the virtual-CPU charge
      changes.  On by default ([--no-batch-verify]). *)
  share_cache : bool;
  (** Remember verified shares by (scheme, message digest, sender, index)
      so retransmits, replays and catch-up batches charge a hash-table
      probe instead of re-verifying.  On by default
      ([--no-share-cache]). *)
  coin_pregen : bool;
  (** Release the threshold-coin share for an ABA round when the round's
      prevote is sent (idle virtual time) instead of on the vote-quorum
      critical path.  Decisions are unchanged.  On by default
      ([--no-coin-pregen]). *)
  share_cache_cap : int;
  (** Bound on cached verified shares per party (FIFO eviction). *)
}

val validate : t -> unit
(** @raise Invalid_argument if [n <= 3t] or the batch size is infeasible. *)

val echo_quorum : t -> int
(** [ceil((n+t+1)/2)] — echo/share quorum of the broadcast primitives. *)

val vote_quorum : t -> int
(** [n - t] — the vote quorum of the agreement protocols. *)

val ready_quorum : t -> int
(** [2t + 1] — the delivery quorum of reliable broadcast. *)

val coin_threshold : t -> int
(** [t + 1] — shares needed to assemble the common coin. *)

val dec_threshold : t -> int
(** [t + 1] — decryption shares needed by the secure channel. *)

val one_honest : t -> int
(** [t + 1] — the smallest set certain to contain an honest party (READY
    amplification, batch adoption, termination-request counting). *)

val make :
  ?batch_size:int -> ?max_batch:int -> ?pipeline_depth:int ->
  ?adaptive_batch:bool -> ?tsig_scheme:tsig_scheme ->
  ?perm_mode:perm_mode ->
  ?rsa_bits:int -> ?tsig_bits:int -> ?dl_pbits:int -> ?dl_qbits:int ->
  ?model_rsa_bits:int -> ?model_dl_pbits:int -> ?model_dl_qbits:int ->
  ?check_invariants:bool -> ?crypto_fast_path:bool ->
  ?batch_verify:bool -> ?share_cache:bool -> ?coin_pregen:bool ->
  ?share_cache_cap:int ->
  n:int -> t:int -> unit -> t
(** Defaults: batch [t+1], max batch 256 payloads per party per round,
    pipeline depth 4 with adaptive batching, multi-signatures, fixed
    candidate order, modest real key sizes, modeled 1024-bit RSA and
    1024/160-bit discrete logs, fast-path cost accounting on, the
    amortized-crypto layer (batch verification, share cache, coin
    pre-generation) on with a 4096-entry cache. *)

val test :
  ?n:int -> ?t:int -> ?tsig_scheme:tsig_scheme -> ?perm_mode:perm_mode ->
  ?batch_size:int -> ?max_batch:int -> ?pipeline_depth:int ->
  ?adaptive_batch:bool -> ?check_invariants:bool ->
  ?crypto_fast_path:bool ->
  ?batch_verify:bool -> ?share_cache:bool -> ?coin_pregen:bool ->
  ?share_cache_cap:int -> unit -> t
(** A fast configuration for unit tests (tiny real keys; default n=4, t=1). *)
