(* Virtual-CPU charging for cryptographic operations.

   The protocols run real cryptography at the configured [actual] key sizes,
   but the simulated clock advances according to the [model] key sizes, so
   the experiments reproduce the paper's 1024-bit setting (and Figure 6's
   key-size sweep) regardless of how big the test keys really are.

   Operation counts (exponentiations, by exponent size) are written out per
   scheme below; Cost converts them to milliseconds using the host's
   calibrated 1024-bit exp time. *)

type t = {
  meter : Sim.Cost.meter;
  cfg : Config.t;
  trace : Trace.Ctx.t;
}

let exp (c : t) ~mod_bits ~exp_bits = Sim.Cost.exp c.meter ~mod_bits ~exp_bits
let full (c : t) ~bits = Sim.Cost.exp_full c.meter ~bits
let exp2 (c : t) ~mod_bits ~exp_bits = Sim.Cost.exp2 c.meter ~mod_bits ~exp_bits
let fixed (c : t) ~mod_bits ~exp_bits = Sim.Cost.exp_fixed c.meter ~mod_bits ~exp_bits

(* With [cfg.crypto_fast_path] the per-scheme operation counts below follow
   the real implementations exactly: powers of a base with a precomputed
   window table (the group generator, verification keys, public keys)
   charge [fixed]; the paired commitment recomputations of the DLEQ /
   Shoup proofs charge one [exp2] instead of two [exp]s; powers of
   message-dependent bases stay plain [exp]s.  Off, every operation is a
   plain exponentiation — the paper's accounting. *)
let fast (c : t) = c.cfg.Config.crypto_fast_path

(* Record [f]'s work as a span on the party's "crypto" pseudo-thread.  The
   virtual clock does not advance inside a handler, so the span is anchored
   at the current time plus the CPU milliseconds already charged in this
   step — an approximation of where in the step the operation runs, exact
   in total width.  Costs nothing when the sink is null. *)
let spanned (c : t) (name : string) (f : unit -> unit) : unit =
  if Trace.Ctx.enabled c.trace then begin
    let t0 = Trace.Ctx.now c.trace in
    let before = c.meter.Sim.Cost.charged_ms in
    Trace.Ctx.emit_at c.trace
      ~time:(t0 +. (before /. 1000.0))
      ~pid:"crypto" ~cat:"crypto" ~ph:Trace.Event.Span_begin name;
    f ();
    let after = c.meter.Sim.Cost.charged_ms in
    Trace.Ctx.emit_at c.trace
      ~time:(t0 +. (after /. 1000.0))
      ~pid:"crypto" ~cat:"crypto" ~ph:Trace.Event.Span_end
      ~args:[ ("ms", Trace.Event.Float (after -. before)) ]
      name
  end
  else f ()

(* --- ordinary RSA signatures (atomic broadcast INITs, multi-signatures) --- *)

let rsa_sign (c : t) =
  spanned c "rsa_sign" (fun () ->
    Sim.Cost.rsa_sign c.meter ~bits:c.cfg.Config.model_rsa_bits)

let rsa_verify (c : t) =
  spanned c "rsa_verify" (fun () ->
    Sim.Cost.rsa_verify c.meter ~bits:c.cfg.Config.model_rsa_bits)

(* --- threshold signatures --- *)

(* Shoup release: x_i = x^{2 Delta s_i} (full-size exponent), x~ (tiny),
   plus the correctness proof's two commitments with an exponent ~ |n|+512
   bits.  Fast path: the v-commitment v^r hits v's fixed-base table; the
   x~-commitment has a message-dependent base and stays plain.  Multi
   release: one CRT RSA signature. *)
let tsig_release (c : t) =
  spanned c "tsig_release" (fun () ->
    match c.cfg.Config.tsig_scheme with
    | Config.Multi -> rsa_sign c
    | Config.Shoup ->
      let b = c.cfg.Config.model_rsa_bits in
      full c ~bits:b;
      if fast c then begin
        fixed c ~mod_bits:b ~exp_bits:(b + 512);
        exp c ~mod_bits:b ~exp_bits:(b + 512)
      end
      else begin
        exp c ~mod_bits:b ~exp_bits:(b + 512);
        exp c ~mod_bits:b ~exp_bits:(b + 512)
      end)

(* Shoup share verification: recompute x~ (tiny exponent), the two
   commitments v^z and x~^z (z-bit exponents) and the two challenge
   powers VK_i^c and (x_i^2)^c.  Fast path: v^z is a table hit, the rest
   have share- or message-dependent bases and stay plain.  Multi: one RSA
   verification. *)
let tsig_verify_share (c : t) =
  spanned c "tsig_verify_share" (fun () ->
    match c.cfg.Config.tsig_scheme with
    | Config.Multi -> rsa_verify c
    | Config.Shoup ->
      let b = c.cfg.Config.model_rsa_bits in
      exp c ~mod_bits:b ~exp_bits:256;           (* x~ = x^{4 Delta} *)
      if fast c then fixed c ~mod_bits:b ~exp_bits:(b + 512)
      else exp c ~mod_bits:b ~exp_bits:(b + 512);  (* v^z *)
      exp c ~mod_bits:b ~exp_bits:(b + 512);     (* x~^z *)
      exp c ~mod_bits:b ~exp_bits:256;           (* VK_i^c *)
      exp c ~mod_bits:b ~exp_bits:256)           (* (x_i^2)^c *)

(* Batched Shoup share verification of k shares on one message: x~ once
   for the whole batch, then ONE combined equation — a 2-way multi-exp at
   the random-linear-combination width on the left against a 4k-way
   multi-exp on the right (64-bit coefficients, coefficient*challenge
   products).  Multi-signature shares are independent RSA signatures and
   do not batch. *)
let tsig_verify_share_batch (c : t) ~(k : int) =
  spanned c "tsig_verify_share_batch" (fun () ->
    match c.cfg.Config.tsig_scheme with
    | Config.Multi -> for _ = 1 to k do rsa_verify c done
    | Config.Shoup ->
      let b = c.cfg.Config.model_rsa_bits in
      exp c ~mod_bits:b ~exp_bits:256;           (* x~, once *)
      let w = b + 512 + 64 in                    (* sum of delta_j * z_j *)
      Sim.Cost.exp_multi c.meter ~mod_bits:b ~sq_bits:w ~exp_bits:[ w; w ];
      Sim.Cost.exp_multi c.meter ~mod_bits:b ~sq_bits:320
        ~exp_bits:(List.concat (List.init k (fun _ -> [ 64; 320; 64; 320 ]))))

(* Shoup combination: one k-way multi-exponentiation with small (Lagrange)
   exponents on the fast path — k plain small-exponent powers in the
   paper's accounting — plus the extended-GCD correction pair.  Multi:
   concatenation, free. *)
let tsig_assemble (c : t) ~(k : int) =
  spanned c "tsig_assemble" (fun () ->
    match c.cfg.Config.tsig_scheme with
    | Config.Multi -> ()
    | Config.Shoup ->
      let b = c.cfg.Config.model_rsa_bits in
      if fast c then
        Sim.Cost.exp_multi c.meter ~mod_bits:b ~sq_bits:64
          ~exp_bits:(List.init k (fun _ -> 64))
      else
        for _ = 1 to k do exp c ~mod_bits:b ~exp_bits:64 done;
      exp c ~mod_bits:b ~exp_bits:64;
      exp c ~mod_bits:b ~exp_bits:64)

(* Verifying an assembled signature: one RSA verification for Shoup (it is a
   standard RSA signature); k of them for a multi-signature. *)
let tsig_verify (c : t) ~(k : int) =
  spanned c "tsig_verify" (fun () ->
    match c.cfg.Config.tsig_scheme with
    | Config.Multi -> for _ = 1 to k do rsa_verify c done
    | Config.Shoup -> rsa_verify c)

(* --- the threshold coin --- *)

let dl_exp (c : t) =
  exp c ~mod_bits:c.cfg.Config.model_dl_pbits ~exp_bits:c.cfg.Config.model_dl_qbits

let dl_exp2 (c : t) =
  exp2 c ~mod_bits:c.cfg.Config.model_dl_pbits ~exp_bits:c.cfg.Config.model_dl_qbits

let dl_fixed (c : t) =
  fixed c ~mod_bits:c.cfg.Config.model_dl_pbits ~exp_bits:c.cfg.Config.model_dl_qbits

(* Release: hash-to-group cofactor power (~full-size exponent), the share
   itself (coin-dependent base), and two DLEQ commitments — of which g^w
   hits the generator table on the fast path. *)
let coin_release (c : t) =
  spanned c "coin_release" (fun () ->
    exp c ~mod_bits:c.cfg.Config.model_dl_pbits
      ~exp_bits:(c.cfg.Config.model_dl_pbits - c.cfg.Config.model_dl_qbits);
    dl_exp c;
    if fast c then begin dl_fixed c; dl_exp c end
    else begin dl_exp c; dl_exp c end)

(* Verify: DLEQ verification is four exponentiations; the fast path is two
   table hits (g^z, VK_i^{q-c}) plus one simultaneous double
   exponentiation for the coin-base pair. *)
let coin_verify_share (c : t) =
  spanned c "coin_verify_share" (fun () ->
    if fast c then begin dl_fixed c; dl_fixed c; dl_exp2 c end
    else begin dl_exp c; dl_exp c; dl_exp c; dl_exp c end)

(* Batched DLEQ verification of k coin (or decryption) shares: one
   combined equation — a 2-way multi-exp on the left (combined responses,
   exponents mod q) against a 4k-way multi-exp on the right (64-bit
   coefficients and coefficient*challenge products mod q). *)
let coin_verify_share_batch (c : t) ~(k : int) =
  spanned c "coin_verify_share_batch" (fun () ->
    let p = c.cfg.Config.model_dl_pbits and q = c.cfg.Config.model_dl_qbits in
    Sim.Cost.exp_multi c.meter ~mod_bits:p ~sq_bits:q ~exp_bits:[ q; q ];
    Sim.Cost.exp_multi c.meter ~mod_bits:p ~sq_bits:q
      ~exp_bits:(List.concat (List.init k (fun _ -> [ 64; q; 64; q ]))))

(* Assemble: a k-way Lagrange multi-exponentiation on the fast path; k
   plain exponentiations in the paper's accounting. *)
let coin_assemble (c : t) ~(k : int) =
  spanned c "coin_assemble" (fun () ->
    if fast c then
      Sim.Cost.exp_multi c.meter ~mod_bits:c.cfg.Config.model_dl_pbits
        ~sq_bits:c.cfg.Config.model_dl_qbits
        ~exp_bits:(List.init k (fun _ -> c.cfg.Config.model_dl_qbits))
    else for _ = 1 to k do dl_exp c done)

(* --- threshold encryption (TDH2) --- *)

(* Encrypt: five exponentiations — all of g, h or gbar, so on the fast
   path all five are table hits. *)
let enc_encrypt (c : t) ~(bytes : int) =
  spanned c "enc_encrypt" (fun () ->
    if fast c then for _ = 1 to 5 do dl_fixed c done
    else for _ = 1 to 5 do dl_exp c done;
    Sim.Cost.symmetric c.meter ~bytes)

(* Validity: recompute (w, wbar) — g^f and gbar^f are table hits, the
   u^{-e} / ubar^{-e} halves have ciphertext-dependent bases. *)
let enc_ct_valid (c : t) =
  spanned c "enc_ct_valid" (fun () ->
    if fast c then begin dl_fixed c; dl_fixed c; dl_exp c; dl_exp c end
    else for _ = 1 to 4 do dl_exp c done)

(* Decryption share: ciphertext check + share u^{x_i} + DLEQ proof whose
   g^w commitment is a table hit on the fast path. *)
let enc_dec_share (c : t) =
  spanned c "enc_dec_share" (fun () ->
    enc_ct_valid c;
    dl_exp c;
    if fast c then begin dl_fixed c; dl_exp c end
    else begin dl_exp c; dl_exp c end)

let enc_verify_share (c : t) =
  spanned c "enc_verify_share" (fun () -> coin_verify_share c)

let enc_combine (c : t) ~(k : int) ~(bytes : int) =
  spanned c "enc_combine" (fun () ->
    for _ = 1 to k do dl_exp c done;
    Sim.Cost.symmetric c.meter ~bytes)

(* --- the verified-share cache --- *)

(* A cache hit replaces a share verification with one flat-key hash-table
   probe. *)
let cache_hit (c : t) =
  spanned c "cache_hit" (fun () -> Sim.Cost.lookup c.meter)

(* --- symmetric / hashing --- *)

let hash (c : t) ~(bytes : int) = Sim.Cost.hash c.meter ~bytes

(* --- durable storage --- *)

let store_append (c : t) ~(bytes : int) = Sim.Cost.log_io c.meter ~bytes
