(** The atomic broadcast channel (Section 2.5): state-machine replication.

    Chandra-Toueg-style rounds over {e batches}: each party signs the
    vector of all its locally-queued undelivered payloads — capped at
    [max_batch] ({!Config.t}) — with the round number (or adopts and re-signs
    undelivered payloads seen in this round's INITs), proposes a batch of
    [batch_size] vectors signed by distinct parties to the round's
    multi-valued agreement, and delivers the decided union in one round in
    a deterministic order (by original sender, then sequence number).  One
    signature covers a whole vector, so per-round cryptographic cost is
    amortized over every payload in it; with [max_batch = 1] the channel
    degrades to the original one-payload-per-party rounds.

    {b Pipelining}: up to [pipeline_depth] ({!Config.t}) rounds run their
    agreements concurrently, each carrying a disjoint chunk of the local
    queue; decisions that land out of round order park in a reorder buffer
    and deliver strictly in round order, so the delivered sequence is the
    sequential protocol's.  [pipeline_depth = 1] reproduces the strictly
    sequential channel exactly.  When [adaptive_batch] is set the
    per-round vector cap self-tunes by AIMD on the observed queue depth
    between [min 8 max_batch] and [max_batch].

    {b Agreement & total order}: all honest parties deliver the same
    sequence.  {b Fairness}: a payload known to [f >= t+1] parties is
    delivered within a bounded number of rounds ([batch = n - f + 1]).
    {b Integrity} (the paper's practical weakening): payloads are
    identified by (original sender, per-sender sequence number) and each
    such pair is delivered at most once.

    {b Termination}: [close] broadcasts a termination request as a regular
    payload; the channel closes after the round in which requests from
    [t+1] distinct parties have been delivered — so it terminates iff at
    least one honest party asked. *)

type t

val create :
  Runtime.t -> pid:string ->
  on_deliver:(sender:int -> string -> unit) ->
  ?on_close:(unit -> unit) -> unit -> t
(** Register the channel under [pid]; [on_deliver] fires once per delivered
    payload in the agreed total order, [on_close] when the channel closes. *)

val send : t -> string -> unit
(** Queue a payload for broadcast (the paper's send event); any number of
    sends per party.  Payloads queued while a round is in flight ride in
    the next free in-window round's vector together.
    @raise Invalid_argument after the channel closed. *)

val close : t -> unit
(** Request termination (the paper's close event); idempotent. *)

val is_closed : t -> bool
(** Whether the channel has closed (delivered [t+1] termination requests). *)

val deliveries : t -> int
(** Payloads delivered locally so far. *)

val current_round : t -> int
(** The next round to deliver — the base of the pipeline window; rounds up
    to [pipeline_depth - 1] ahead of it may already be running. *)

val rounds_completed : t -> int
(** Agreement rounds finished locally — [deliveries / rounds_completed] is
    the realized batching factor. *)

val queue_depth : t -> int
(** This party's own payloads queued and not yet known delivered (the
    backlog a closed-loop generator watches). *)

val batch_limit : t -> int
(** The current adaptive per-round vector cap: between [min 8 max_batch]
    and [max_batch] when [adaptive_batch] is set, pinned at [max_batch]
    otherwise. *)

val inflight_rounds : t -> int
(** In-window rounds whose agreement this party has proposed to but which
    have not decided locally — never exceeds [pipeline_depth]. *)

val reorder_depth : t -> int
(** Rounds decided but not yet delivered — the reorder-buffer occupancy
    (0 when the pipeline is drained; bursts above 1 mean decisions landed
    out of round order). *)

val set_gate : t -> (unit -> bool) -> unit
(** Backpressure: while the gate returns false this party neither INITs nor
    proposes for any in-window round — models a consumer that has not
    drained the outputs (the paper: an undrained channel "will stall").
    Call {!kick} when the gate opens. *)

val kick : t -> unit
(** Re-attempt INIT/propose for every in-window round (after the gate
    opens). *)

val abort : t -> unit
(** Tear the channel down without the termination protocol (test harness). *)
