(** The atomic broadcast channel (Section 2.5): state-machine replication.

    Chandra-Toueg-style rounds over {e batches}: each party signs the
    vector of all its locally-queued undelivered payloads — capped at
    [max_batch] ({!Config.t}) — with the round number (or adopts and re-signs
    undelivered payloads seen in this round's INITs), proposes a batch of
    [batch_size] vectors signed by distinct parties to the round's
    multi-valued agreement, and delivers the decided union in one round in
    a deterministic order (by original sender, then sequence number).  One
    signature covers a whole vector, so per-round cryptographic cost is
    amortized over every payload in it; with [max_batch = 1] the channel
    degrades to the original one-payload-per-party rounds.

    {b Pipelining}: up to [pipeline_depth] ({!Config.t}) rounds run their
    agreements concurrently, each carrying a disjoint chunk of the local
    queue; decisions that land out of round order park in a reorder buffer
    and deliver strictly in round order, so the delivered sequence is the
    sequential protocol's.  [pipeline_depth = 1] reproduces the strictly
    sequential channel exactly.  When [adaptive_batch] is set the
    per-round vector cap self-tunes by AIMD on the observed queue depth
    between [min 8 max_batch] and [max_batch].

    {b Agreement & total order}: all honest parties deliver the same
    sequence.  {b Fairness}: a payload known to [f >= t+1] parties is
    delivered within a bounded number of rounds ([batch = n - f + 1]).
    {b Integrity} (the paper's practical weakening): payloads are
    identified by (original sender, per-sender sequence number) and each
    such pair is delivered at most once.

    {b Termination}: [close] broadcasts a termination request as a regular
    payload; the channel closes after the round in which requests from
    [t+1] distinct parties have been delivered — so it terminates iff at
    least one honest party asked. *)

type t

val create :
  Runtime.t -> pid:string ->
  on_deliver:(sender:int -> string -> unit) ->
  ?on_close:(unit -> unit) -> unit -> t
(** Register the channel under [pid]; [on_deliver] fires once per delivered
    payload in the agreed total order, [on_close] when the channel closes. *)

val send : t -> string -> unit
(** Queue a payload for broadcast (the paper's send event); any number of
    sends per party.  Payloads queued while a round is in flight ride in
    the next free in-window round's vector together.
    @raise Invalid_argument after the channel closed. *)

val close : t -> unit
(** Request termination (the paper's close event); idempotent. *)

val is_closed : t -> bool
(** Whether the channel has closed (delivered [t+1] termination requests). *)

val deliveries : t -> int
(** Payloads delivered locally so far. *)

val current_round : t -> int
(** The next round to deliver — the base of the pipeline window; rounds up
    to [pipeline_depth - 1] ahead of it may already be running. *)

val rounds_completed : t -> int
(** Agreement rounds finished locally — [deliveries / rounds_completed] is
    the realized batching factor. *)

val queue_depth : t -> int
(** This party's own payloads queued and not yet known delivered (the
    backlog a closed-loop generator watches). *)

val batch_limit : t -> int
(** The current adaptive per-round vector cap: between [min 8 max_batch]
    and [max_batch] when [adaptive_batch] is set, pinned at [max_batch]
    otherwise. *)

val inflight_rounds : t -> int
(** In-window rounds whose agreement this party has proposed to but which
    have not decided locally — never exceeds [pipeline_depth]. *)

val reorder_depth : t -> int
(** Rounds decided but not yet delivered — the reorder-buffer occupancy
    (0 when the pipeline is drained; bursts above 1 mean decisions landed
    out of round order). *)

val set_round_hook : t -> (round:int -> batch:string -> unit) -> unit
(** Install the durability layer's per-round hook: fires once per delivered
    round, after the window slid past it, with the decided batch exactly as
    agreed on the wire (the bytes a write-ahead log must persist to replay
    the delivery sequence byte for byte).  The closing round does not fire
    it — a closed channel never restarts. *)

val set_catchup_miss : t -> (dst:int -> unit) -> unit
(** Install the hook fired when party [dst] asks for history below the GC
    floor ({!gc_below}): the retained backlog cannot help it, so the
    durability layer should serve its latest signed snapshot instead. *)

val set_init_hook : t -> (round:int -> unit) -> unit
(** Install the write-ahead hook for this party's own round initiations:
    fires with the round number {e before} the INIT leaves, so the
    durability layer can persist it first.  See {!set_init_floor} for why
    initiations must be durable. *)

val set_init_floor : t -> round:int -> unit
(** Bar this party from initiating rounds below [round] (monotone: the
    floor never moves down).  A restarted party must never re-initiate a
    round it may already have initiated before the crash — the pre-crash
    INIT can still be in flight, and a second INIT for the same round with
    different content is equivocation, indistinguishable from Byzantine
    behaviour.  The durability layer replays the persisted initiation
    water-mark ({!set_init_hook}) and sets the floor one past it; barred
    rounds still complete, driven by the other parties' INITs. *)

val backlog_rounds : t -> int
(** Decided batches currently retained (catch-up backlog plus reorder
    buffer) — the resident-memory figure a stable checkpoint bounds. *)

val gc_floor : t -> int
(** The lowest round still retained in the backlog; [0] until {!gc_below}
    raises it. *)

val gc_below : t -> round:int -> unit
(** Drop retained batches strictly below [round], clamped to the current
    base: decided-but-undelivered rounds are never dropped, whatever round
    the caller names.  Raises the floor reported by {!gc_floor}. *)

val adopt_round : t -> round:int -> batch:string -> unit
(** Re-feed one decided round from the local write-ahead log (recovery
    replay).  The batch re-enters through the normal reorder buffer, so
    replaying a log in order re-delivers its rounds in round order.  The
    disk is not trusted: the batch's INIT signatures are re-validated
    against this round number, so a tampered log can lose history but
    never forge it. *)

val catchup_window : int
(** DECIDED batches served per catch-up request ({!serve_backlog} and the
    protocol's own REQUEST path).  A straggler further behind converges by
    re-requesting as it advances; in a quiesced cluster there is no
    traffic to trigger the channel's own re-REQUESTs, so the durability
    layer re-announces its round every window of progress. *)

val serve_backlog : t -> dst:int -> from_round:int -> unit
(** Serve a straggler retained batches starting at [from_round] (the
    durability layer's snapshot-request path funnels into the same
    catch-up machinery as the protocol's own REQUEST message). *)

val encode_state : t -> string
(** The canonical state blob a checkpoint covers: next round to deliver,
    the delivered (origin, sequence) set as sorted runs, and the
    termination requests seen.  Honest parties checkpointing the same
    round produce identical bytes — the digest a threshold quorum signs. *)

val install_state : t -> string -> bool
(** Adopt a snapshot state blob, jumping the channel forward; returns
    false (and changes nothing) if the blob is malformed or does not move
    the base strictly forward.  The caller must have verified the
    checkpoint certificate over the blob's digest first.  Queued own
    payloads whose sequence numbers collide with adopted history are
    renumbered, preserving FIFO order. *)

val set_gate : t -> (unit -> bool) -> unit
(** Backpressure: while the gate returns false this party neither INITs nor
    proposes for any in-window round — models a consumer that has not
    drained the outputs (the paper: an undrained channel "will stall").
    Call {!kick} when the gate opens. *)

val kick : t -> unit
(** Re-attempt INIT/propose for every in-window round (after the gate
    opens). *)

val abort : t -> unit
(** Tear the channel down without the termination protocol (test harness). *)
