(** The atomic broadcast channel (Section 2.5): state-machine replication.

    Chandra-Toueg-style rounds: each party signs its next undelivered
    payload with the round number (or adopts and re-signs the first INIT it
    receives), proposes a batch of [batch_size] messages signed by distinct
    parties to the round's multi-valued agreement, and delivers the decided
    batch in a fixed order.

    {b Agreement & total order}: all honest parties deliver the same
    sequence.  {b Fairness}: a payload known to [f >= t+1] parties is
    delivered within a bounded number of rounds ([batch = n - f + 1]).
    {b Integrity} (the paper's practical weakening): payloads are
    identified by (original sender, per-sender sequence number) and each
    such pair is delivered at most once.

    {b Termination}: [close] broadcasts a termination request as a regular
    payload; the channel closes after the round in which requests from
    [t+1] distinct parties have been delivered — so it terminates iff at
    least one honest party asked. *)

type t

val create :
  Runtime.t -> pid:string ->
  on_deliver:(sender:int -> string -> unit) ->
  ?on_close:(unit -> unit) -> unit -> t

val send : t -> string -> unit
(** Queue a payload for broadcast (the paper's send event); any number of
    sends per party.  @raise Invalid_argument after the channel closed. *)

val close : t -> unit
(** Request termination (the paper's close event); idempotent. *)

val is_closed : t -> bool

val deliveries : t -> int
(** Payloads delivered locally so far. *)

val current_round : t -> int

val set_gate : t -> (unit -> bool) -> unit
(** Backpressure: while the gate returns false this party neither INITs nor
    proposes for its current round — models a consumer that has not drained
    the outputs (the paper: an undrained channel "will stall").  Call
    {!kick} when the gate opens. *)

val kick : t -> unit

val abort : t -> unit
