(** The per-party protocol runtime: multiplexes the single authenticated
    network endpoint among protocol instances, which register by protocol
    identifier (the paper's [pid]).

    Messages for an unregistered pid are buffered (bounded per pid) and
    replayed asynchronously on registration: instances are created lazily at
    different times at different parties, and early messages from faster
    parties must not be lost. *)

type t = {
  me : int;
  cfg : Config.t;
  keys : Dealer.party_keys;
  net : Sim.Net.t;
  engine : Sim.Engine.t;
  drbg : Hashes.Drbg.t;
  charge : Charge.t;
  store_charge : Charge.t;
  (** Charging context bound to the storage core's meter
      ({!Sim.Net.oob_meter}): all durability work — log appends, checkpoint
      crypto, snapshot verification — charges here, never to the protocol
      CPU, so durable runs keep the protocol schedule byte-identical. *)
  inv : Invariant.t option;
  trace : Trace.Ctx.t;
  handlers : (string, src:int -> string -> unit) Hashtbl.t;
  store_handlers : (string, src:int -> string -> unit) Hashtbl.t;
  orphans : (string, (int * string * int) Queue.t) Hashtbl.t;
  mutable dropped_orphans : int;
  mutable rebuild : (unit -> unit) list;
  cache : Crypto.Share_cache.t;
  (** Verified shares, grouped by protocol instance (pid): {!unregister}
      evicts the pid's group, {!crash} clears everything — the cache is
      volatile and can never outlive the state it summarizes. *)
}

val create :
  engine:Sim.Engine.t -> net:Sim.Net.t -> cfg:Config.t ->
  keys:Dealer.party_keys -> t
(** One party's runtime, wired to its network endpoint; installs the
    frame-dispatch handler on creation. *)

val register : t -> pid:string -> (src:int -> string -> unit) -> unit
(** @raise Invalid_argument on a duplicate pid. *)

val unregister : t -> pid:string -> unit
(** Remove a pid's handler; later messages for it are buffered again. *)

val handling : t -> pid:string -> cat:string -> string -> unit
(** Emit an ["h.<kind>"] instant tagging the message currently being
    dispatched with its decoded protocol kind (e.g. ["echo"]), so the
    causal analyzer can label the hop.  No-op outside a causal dispatch
    or when tracing is off. *)

val send : t -> dst:int -> pid:string -> string -> unit
(** Send a protocol message body to one party. *)

val broadcast : t -> pid:string -> string -> unit
(** Send to every party including ourselves (self-delivery goes through the
    network, keeping protocol code uniform). *)

val register_store : t -> pid:string -> (src:int -> string -> unit) -> unit
(** Register a durability endpoint on the storage plane.  Unlike
    {!register} there is no orphan buffering: an endpoint solicits peer
    traffic only after registering, so frames for an unknown pid are
    dropped.
    @raise Invalid_argument on a duplicate pid. *)

val send_store : t -> dst:int -> pid:string -> string -> unit
(** Send a storage-plane message body to one party, out-of-band
    ({!Sim.Net.send_oob}): no protocol-plane resource is touched. *)

val broadcast_store : t -> pid:string -> string -> unit
(** {!send_store} to every party including ourselves. *)

val now : t -> float
(** Current virtual time at this party. *)

val on_rebuild : t -> (unit -> unit) -> unit
(** Register a durable-state reconstruction hook, run (in registration
    order, on the party's virtual CPU) when {!recover} is called after a
    {!crash}.  Typically re-creates protocol instances from persisted
    application state. *)

val crash : t -> unit
(** Power-fail this party: it stops sending and processing at the network
    layer, and all volatile protocol state (registered handlers, buffered
    orphans) is discarded. *)

val recover : t -> unit
(** Restart a crashed party: the network endpoint resumes and the
    {!on_rebuild} hooks run to reconstruct protocol instances.  Messages
    that arrived during the outage are lost. *)
