(* Reliable broadcast: the Bracha-Toueg echo/ready protocol (Section 2.2).

   1. the sender sends the payload to all parties;
   2. every party echoes it to everyone;
   3. on ceil((n+t+1)/2) matching ECHOs, or t+1 matching READYs, a party
      sends READY to everyone (once);
   4. on 2t+1 matching READYs it delivers.

   Agreement holds even against a corrupted sender that equivocates (counts
   are kept per payload digest); no public-key cryptography is used — only
   the authenticated links. *)

type t = {
  rt : Runtime.t;
  pid : string;
  sender : int;
  on_deliver : string -> unit;
  (* per-digest tallies; a Byzantine sender may push several payloads *)
  echoes : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  readies : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  payloads : (string, string) Hashtbl.t;       (* digest -> payload *)
  (* first digest echoed / readied by each sender, for equivocation checks *)
  echo_by_src : (int, string) Hashtbl.t;
  ready_by_src : (int, string) Hashtbl.t;
  mutable echo_sent : bool;
  mutable ready_sent : bool;
  mutable delivered : bool;
  mutable aborted : bool;
}

let tag_send = 0
let tag_echo = 1
let tag_ready = 2

let encode ~tag (payload : string) : string =
  Wire.encode (fun b ->
    Wire.Enc.u8 b tag;
    Wire.Enc.bytes b payload)

let digest (t : t) (payload : string) : string =
  Charge.hash t.rt.Runtime.charge ~bytes:(String.length payload);
  Hashes.Sha256.digest_list [ "rbc|"; t.pid; "|"; payload ]

let trace (t : t) : Trace.Ctx.t = t.rt.Runtime.trace

let tally tbl key src =
  let set =
    match Hashtbl.find_opt tbl key with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.add tbl key s;
      s
  in
  Hashtbl.replace set src ();
  Hashtbl.length set

let rec handle (t : t) ~src body =
  if not t.aborted then
    match Wire.decode body (fun d ->
      let tag = Wire.Dec.u8 d in
      let payload = Wire.Dec.bytes d in
      (tag, payload))
    with
    | None -> ()
    | Some (tag, payload) ->
      let cfg = t.rt.Runtime.cfg in
      let inv = t.rt.Runtime.inv in
      Invariant.sender_in_range inv src;
      Runtime.handling t.rt ~pid:t.pid ~cat:"bcast"
        (if tag = tag_send then "send"
         else if tag = tag_echo then "echo"
         else if tag = tag_ready then "ready"
         else "other");
      if tag = tag_send && src = t.sender && not t.echo_sent then begin
        t.echo_sent <- true;
        Trace.Ctx.span_begin (trace t) ~pid:t.pid ~cat:"bcast" "echo";
        Runtime.broadcast t.rt ~pid:t.pid (encode ~tag:tag_echo payload)
      end
      else if tag = tag_echo then begin
        let dg = digest t payload in
        Hashtbl.replace t.payloads dg payload;
        (* An honest party echoes one payload per instance; a second,
           different digest from the same source is Byzantine evidence. *)
        (match Hashtbl.find_opt t.echo_by_src src with
         | Some dg' when dg' <> dg ->
           Invariant.flag inv ~offender:src
             (Printf.sprintf "rbc %s: equivocating ECHO" t.pid)
         | Some _ -> ()
         | None -> Hashtbl.add t.echo_by_src src dg);
        let count = tally t.echoes dg src in
        Invariant.require inv (count <= cfg.Config.n)
          "echo tally exceeds group size";
        if count >= Config.echo_quorum cfg then send_ready t dg
      end
      else if tag = tag_ready then begin
        let dg = digest t payload in
        Hashtbl.replace t.payloads dg payload;
        (match Hashtbl.find_opt t.ready_by_src src with
         | Some dg' when dg' <> dg ->
           Invariant.flag inv ~offender:src
             (Printf.sprintf "rbc %s: equivocating READY" t.pid)
         | Some _ -> ()
         | None -> Hashtbl.add t.ready_by_src src dg);
        let count = tally t.readies dg src in
        Invariant.require inv (count <= cfg.Config.n)
          "ready tally exceeds group size";
        if count >= Config.one_honest cfg then send_ready t dg;
        if count >= Config.ready_quorum cfg && not t.delivered then begin
          t.delivered <- true;
          if t.ready_sent then
            Trace.Ctx.span_end (trace t) ~pid:t.pid ~cat:"bcast" "ready";
          Trace.Ctx.instant (trace t) ~pid:t.pid ~cat:"bcast" "deliver";
          t.on_deliver payload
        end
      end

and send_ready (t : t) (dg : string) =
  if not t.ready_sent then begin
    t.ready_sent <- true;
    if t.echo_sent then
      Trace.Ctx.span_end (trace t) ~pid:t.pid ~cat:"bcast" "echo";
    Trace.Ctx.span_begin (trace t) ~pid:t.pid ~cat:"bcast" "ready";
    match Hashtbl.find_opt t.payloads dg with
    | Some payload -> Runtime.broadcast t.rt ~pid:t.pid (encode ~tag:tag_ready payload)
    | None -> ()
  end

let create (rt : Runtime.t) ~(pid : string) ~(sender : int)
    ~(on_deliver : string -> unit) : t =
  let t = {
    rt; pid; sender; on_deliver;
    echoes = Hashtbl.create 8;
    readies = Hashtbl.create 8;
    payloads = Hashtbl.create 8;
    echo_by_src = Hashtbl.create 8;
    ready_by_src = Hashtbl.create 8;
    echo_sent = false;
    ready_sent = false;
    delivered = false;
    aborted = false;
  }
  in
  Runtime.register rt ~pid (fun ~src body -> handle t ~src body);
  t

(* Start the broadcast; only the designated sender may call this, once. *)
let send (t : t) (payload : string) : unit =
  if t.rt.Runtime.me <> t.sender then invalid_arg "Reliable_broadcast.send: not the sender";
  Runtime.broadcast t.rt ~pid:t.pid (encode ~tag:tag_send payload)

let delivered (t : t) = t.delivered

let abort (t : t) : unit =
  t.aborted <- true;
  Runtime.unregister t.rt ~pid:t.pid
