(** Validated (binary) Byzantine agreement: external validity and optional
    bias over {!Binary_agreement} (end of Section 2.3).

    The proposal carries a proof accepted by [validator]; every honest
    party decides a value for which validation data exists and obtains that
    data with the decision (the paper's getProof). *)

type t

val create :
  ?bias:bool ->
  Runtime.t -> pid:string ->
  validator:(bool -> string -> bool) ->
  on_decide:(bool -> proof:string -> unit) -> t
(** [on_decide value ~proof] fires exactly once, with validation data for
    the decided value. *)

val propose : t -> bool -> proof:string -> unit
(** @raise Invalid_argument on re-proposal or failing validation. *)

val decided : t -> bool option
(** The decision at this party, if reached. *)

val get_proof : t -> string option
(** Validation data for the decided value (after decision). *)

val abort : t -> unit
(** Terminate the local instance immediately. *)
