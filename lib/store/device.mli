(** The deterministic storage seam — the only module allowed to perform
    file I/O (enforced by the `durable-io' sintra-lint rule).

    A device is an append-only byte sink with a whole-contents read-back
    and a compaction rewrite.  The simulator uses {!mem} devices held
    outside the runtime so they survive [Runtime.crash] the way a disk
    survives a process crash; the CLI uses {!file} devices under
    [--store-dir]. *)

type t
(** An open storage device. *)

val mem : unit -> t
(** A fresh in-memory device — the simulation's disk.  Deterministic:
    contents are a pure function of the bytes appended. *)

val file : string -> t
(** A device backed by the file at the given path, created on first
    append.  Existing contents are loaded at open; each append is flushed
    before returning, so a crash loses at most the record being written. *)

val of_string : string -> string -> t
(** [of_string name bytes]: an in-memory device pre-loaded with [bytes]
    (for inspecting serialized stores, e.g. corruption tests). *)

val name : t -> string
(** The device's label: ["mem"] or the backing file path. *)

val append : t -> string -> unit
(** Append bytes at the end of the device. *)

val rewrite : t -> string -> unit
(** Replace the entire contents — the compaction primitive.  On a file
    device this truncates and rewrites the file. *)

val contents : t -> string
(** The full current contents. *)

val size : t -> int
(** [String.length (contents d)]. *)
