(* The deterministic storage seam: every byte the durability layer reads or
   writes crosses one of these two devices.

   [mem] is the simulation's "disk" — a plain buffer held OUTSIDE the
   runtime, so it survives Runtime.crash/recover exactly like a real disk
   survives a process crash, and a replay of the same seed reproduces its
   contents byte for byte under the virtual clock.

   [file] is the CLI backend (`--store-dir`, `store-check`): it mirrors the
   on-disk file in memory and flushes each append, so reads never touch the
   filesystem twice and a crash mid-append leaves at worst a torn tail —
   which Log.replay tolerates.

   This module is the only place in lib/ allowed to open files: the
   `durable-io' lint rule (S6) fails the build on any raw open_in/open_out
   elsewhere under lib/store or lib/sintra, which is what keeps the
   simulator deterministic.  (lint: allow durable-io — the seam itself) *)

type t = {
  name : string;
  append : string -> unit;
  rewrite : string -> unit;
  contents : unit -> string;
}

let name (d : t) : string = d.name
let append (d : t) (bytes : string) : unit = d.append bytes
let rewrite (d : t) (bytes : string) : unit = d.rewrite bytes
let contents (d : t) : string = d.contents ()
let size (d : t) : int = String.length (d.contents ())

let mem () : t =
  let buf = Buffer.create 1024 in
  {
    name = "mem";
    append = (fun s -> Buffer.add_string buf s);
    rewrite = (fun s -> Buffer.clear buf; Buffer.add_string buf s);
    contents = (fun () -> Buffer.contents buf);
  }

let read_file (path : string) : string =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  end
  else ""

let write_file (path : string) (data : string) : unit =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

let file (path : string) : t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (read_file path);
  {
    name = path;
    append =
      (fun s ->
        Buffer.add_string buf s;
        let oc =
          open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ]
            0o644 path
        in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc s));
    rewrite =
      (fun s ->
        Buffer.clear buf;
        Buffer.add_string buf s;
        write_file path s);
    contents = (fun () -> Buffer.contents buf);
  }

let of_string (name : string) (data : string) : t =
  let d = mem () in
  d.rewrite data;
  { d with name }
