(** Checkpoint certificates: the round / state-digest pair a quorum
    threshold-signs, plus the assembled signature.

    The certificate bytes are opaque at this layer (the store does not
    depend on the crypto stack); [Sintra.Durable] creates and verifies
    them.  This module owns the wire layout and the canonical statement
    string, so all parties sign identical bytes. *)

type t = {
  round : int;  (** The first round NOT covered: state reflects rounds
                    [0 .. round-1]. *)
  digest : string;  (** SHA-256 of the encoded channel state blob. *)
  cert : string;  (** The assembled threshold signature over
                      {!statement} — opaque bytes at this layer. *)
}
(** A checkpoint certificate. *)

val statement : pid:string -> round:int -> digest:string -> string
(** The canonical byte string the threshold-signature quorum signs:
    channel pid, round and state digest, domain-separated with a
    ["sintra.ckpt"] prefix so checkpoint shares can never be confused
    with any other protocol's signatures. *)

val enc : Wire.Enc.t -> t -> unit
(** Append the wire encoding of a certificate. *)

val dec : Wire.Dec.t -> t
(** Decode a certificate.  @raise Wire.Decode on malformed input. *)
