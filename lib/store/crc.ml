(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
   guarding every log record's payload.  Table-driven, one byte at a time;
   the table is built lazily so a process that never touches the store pays
   nothing.  Arithmetic is on the native int (always >= 32 value bits on
   the platforms we build for), masked back to 32 bits at the end. *)

let poly = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
       let c = ref n in
       for _ = 1 to 8 do
         c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
       done;
       !c))

let update (crc : int) (s : string) : int =
  let tbl = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  String.iter
    (fun ch -> c := tbl.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let digest (s : string) : int = update 0 s
