(* The write-ahead log: a flat sequence of framed records.

   Frame layout (all integers little-endian):

     +0  u32  len   — length of the payload that follows the header
     +4  u32  crc   — CRC-32 (IEEE) of the payload bytes
     +8  len  payload

   The payload is the Wire encoding of one record, tagged with a leading
   u8.  A record is never mutated in place; compaction rewrites the whole
   device through [rewrite].

   Replay walks the frames from the start and distinguishes two failure
   modes: a TORN tail (fewer bytes remain than the header or the declared
   payload — the normal aftermath of a crash mid-append; the valid prefix
   is kept and the tail dropped) and CORRUPTION (a CRC mismatch or a
   payload that does not decode — the record was fully written and then
   damaged; replay stops and reports the offset, and the operator runbook
   in OPERATIONS.md says what to do next). *)

type record =
  | Round of { round : int; batch : string }
  | Delta of { key : string; data : string }
  | Snapshot of { checkpoint : Checkpoint.t; state : string }

type status = Complete | Torn of int | Corrupt of int * string

type replay = { records : record list; status : status; bytes : int }

let enc_payload (r : record) : string =
  Wire.encode (fun b ->
    match r with
    | Round { round; batch } ->
      Wire.Enc.u8 b 0;
      Wire.Enc.int b round;
      Wire.Enc.bytes b batch
    | Delta { key; data } ->
      Wire.Enc.u8 b 1;
      Wire.Enc.bytes b key;
      Wire.Enc.bytes b data
    | Snapshot { checkpoint; state } ->
      Wire.Enc.u8 b 2;
      Checkpoint.enc b checkpoint;
      Wire.Enc.bytes b state)

let dec_payload (d : Wire.Dec.t) : record =
  match Wire.Dec.u8 d with
  | 0 ->
    let round = Wire.Dec.int d in
    let batch = Wire.Dec.bytes d in
    Round { round; batch }
  | 1 ->
    let key = Wire.Dec.bytes d in
    let data = Wire.Dec.bytes d in
    Delta { key; data }
  | 2 ->
    let checkpoint = Checkpoint.dec d in
    let state = Wire.Dec.bytes d in
    Snapshot { checkpoint; state }
  | t -> Wire.fail "log record: unknown tag %d" t

let le32 (v : int) : string =
  String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xFF))

let read_le32 (s : string) (off : int) : int =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let frame (r : record) : string =
  let payload = enc_payload r in
  le32 (String.length payload) ^ le32 (Crc.digest payload) ^ payload

let append (dev : Device.t) (r : record) : int =
  let bytes = frame r in
  Device.append dev bytes;
  String.length bytes

let rewrite (dev : Device.t) (rs : record list) : int =
  let bytes = String.concat "" (List.map frame rs) in
  Device.rewrite dev bytes;
  String.length bytes

let replay_string (s : string) : replay =
  let len = String.length s in
  let records = ref [] in
  let off = ref 0 in
  let status = ref Complete in
  let continue = ref true in
  while !continue do
    if !off = len then continue := false
    else if len - !off < 8 then begin
      status := Torn !off;
      continue := false
    end
    else begin
      let plen = read_le32 s !off in
      let crc = read_le32 s (!off + 4) in
      if len - !off - 8 < plen then begin
        status := Torn !off;
        continue := false
      end
      else begin
        let payload = String.sub s (!off + 8) plen in
        if Crc.digest payload <> crc then begin
          status := Corrupt (!off, "CRC mismatch");
          continue := false
        end
        else
          match Wire.decode payload dec_payload with
          | None ->
            status := Corrupt (!off, "payload does not decode");
            continue := false
          | Some r ->
            records := r :: !records;
            off := !off + 8 + plen
      end
    end
  done;
  { records = List.rev !records; status = !status; bytes = !off }

let replay (dev : Device.t) : replay = replay_string (Device.contents dev)
