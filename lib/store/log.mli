(** The append-only write-ahead log: length-prefixed, CRC-guarded frames,
    each carrying one record.

    Frame layout (integers little-endian): a [u32] payload length, a [u32]
    CRC-32 of the payload, then the payload — the {!Wire} encoding of one
    {!record} with a leading [u8] tag (0 = [Round], 1 = [Delta],
    2 = [Snapshot]).  The exact byte layout is an operator-facing contract
    documented in OPERATIONS.md. *)

type record =
  | Round of { round : int; batch : string }
      (** One delivered atomic-broadcast round: the round number and the
          decided batch exactly as agreed on the wire — replaying these in
          order reproduces the delivery sequence byte for byte. *)
  | Delta of { key : string; data : string }
      (** A channel-state delta (e.g. an optimistic-channel epoch change).
          A delta {e supersedes} earlier deltas with the same key, so
          compaction keeps only the newest per key. *)
  | Snapshot of { checkpoint : Checkpoint.t; state : string }
      (** A certified checkpoint plus the full state blob it covers.
          Written by compaction as the first record; everything after it
          is history since the checkpoint. *)
(** One log record. *)

type status =
  | Complete  (** Every byte of the device parsed. *)
  | Torn of int
      (** The device ends mid-frame at the given offset — the normal
          aftermath of a crash during an append.  The parsed prefix is
          valid; the tail is dropped. *)
  | Corrupt of int * string
      (** The frame at the given offset was fully present but damaged
          (CRC mismatch, or a payload that does not decode); parsing
          stopped there.  See the recovery runbook in OPERATIONS.md. *)
(** The outcome of a replay. *)

type replay = {
  records : record list;  (** The valid prefix, oldest first. *)
  status : status;  (** How the scan ended. *)
  bytes : int;  (** Bytes of the device consumed by valid frames. *)
}
(** A parsed device. *)

val frame : record -> string
(** The full framed encoding (header + payload) of one record. *)

val append : Device.t -> record -> int
(** Frame a record and append it to the device; returns the number of
    bytes written. *)

val rewrite : Device.t -> record list -> int
(** Replace the device contents with exactly these records (the
    compaction primitive); returns the new device size. *)

val replay : Device.t -> replay
(** Parse the device from the start: every frame in order, stopping at a
    torn tail or a corrupt frame. *)

val replay_string : string -> replay
(** {!replay} over raw bytes (for [store-check] and tests). *)
