(* A checkpoint certificate: a round number, the SHA-256 digest of the
   channel state at that round, and an assembled threshold signature over
   the two.  The certificate bytes are opaque here — the store does not
   depend on the crypto layer; lib/sintra's Durable controller produces
   and verifies them with Threshold_sig.  What this module fixes is the
   wire layout and the exact statement string the quorum signs, so every
   party (and the offline store-check tool) agrees on the bytes. *)

type t = { round : int; digest : string; cert : string }

let statement ~(pid : string) ~(round : int) ~(digest : string) : string =
  Printf.sprintf "sintra.ckpt|%s|%d|%s" pid round digest

let enc (b : Wire.Enc.t) (cp : t) : unit =
  Wire.Enc.int b cp.round;
  Wire.Enc.bytes b cp.digest;
  Wire.Enc.bytes b cp.cert

let dec (d : Wire.Dec.t) : t =
  let round = Wire.Dec.int d in
  let digest = Wire.Dec.bytes d in
  let cert = Wire.Dec.bytes d in
  { round; digest; cert }
