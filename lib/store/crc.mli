(** CRC-32 (IEEE 802.3) over byte strings — the per-record checksum of the
    write-ahead log.  Detects the torn writes and bit rot an operator's
    disk can inflict; it is {e not} an integrity proof against an
    adversary, which is what the threshold-signed checkpoint certificate
    ({!Checkpoint}) provides. *)

val digest : string -> int
(** The CRC-32 of the whole string, as a non-negative int in
    [\[0, 2^32)]. *)

val update : int -> string -> int
(** [update crc s] extends a running checksum: [update (digest a) b =
    digest (a ^ b)].  Start from [0]. *)
