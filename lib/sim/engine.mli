(** The discrete-event simulation core: a virtual clock and an event heap.

    All asynchrony in the reproduction comes from here; all randomness from
    the engine's seeded DRBG — a run is a pure function of its seed. *)

type t

val create : ?seed:string -> unit -> t
(** A fresh engine at time 0 with an empty heap; all randomness derives
    from [seed] (default ["sim"]). *)

val now : t -> float
(** Current virtual time, in seconds. *)

val drbg : t -> Hashes.Drbg.t
(** The engine's seeded generator — the run's only randomness source. *)

val sink : t -> Trace.Sink.t ref
(** The shared trace sink slot.  Starts null; install one with
    {!set_sink}.  Contexts made by {!trace_ctx} alias this ref, so a sink
    installed after construction is seen by every instrumentation site. *)

val set_sink : t -> Trace.Sink.t -> unit
(** Install a trace sink into the shared slot (see {!sink}). *)

val metrics : t -> Trace.Metrics.t
(** The run-wide metrics registry. *)

val trace_ctx : t -> party:int -> Trace.Ctx.t
(** A tracing context bound to this engine's clock, sink and registry. *)

val fresh_flow_id : t -> int
(** Allocate the next causal flow id (0, 1, 2, …).  Always advances,
    traced or not, so enabling tracing never perturbs the schedule. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the thunk [delay] virtual seconds from now (negative clamps to 0). *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Run the thunk at absolute virtual [time] (the past clamps to now). *)

val stop : t -> unit
(** Make a running {!run} return after the current event. *)

val run : ?until:float -> ?max_events:int -> t -> int
(** Execute events in time order until the queue drains, [until] virtual
    seconds pass, or [max_events] fire.  Returns the number executed. *)

val pending : t -> int
(** Events still queued; [0] means the run quiesced. *)
