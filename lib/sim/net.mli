(** The simulated network: authenticated, reliable, FIFO point-to-point
    links over the event engine, with per-node sequential virtual CPUs.

    - Links carry opaque bytes (real serialized protocol messages),
      authenticated with HMAC-SHA1 under per-pair keys, like the paper's
      TCP links;
    - each node is a sequential processor: handling a message charges
      virtual CPU to the node's meter, and messages sent from inside a
      handler depart when the computation finishes — this is what makes
      slow hosts lag exactly as in Figures 4 and 5;
    - an adversary hook can drop, delay or replace messages in flight
      (replacement is caught by the MAC unless the adversary controls the
      sender), modelling the asynchronous scheduler's power. *)

type action =
  | Deliver
  | Drop
  | Delay of float               (** extra seconds *)
  | Replace of string            (** tamper with the payload in flight *)
  | Duplicate                    (** deliver two copies, back to back *)
  | Replay of float
      (** deliver normally, then re-inject a recorded copy after the given
          extra delay — the copy carries a genuine MAC and bypasses the
          FIFO clamp, so protocols must deduplicate *)

type node

type t

val create :
  engine:Engine.t -> topo:Topology.t -> mac_keys:string array array -> t
(** Reliable FIFO authenticated links, like the prototype's TCP.
    [mac_keys.(i).(j)] must be defined for all pairs (symmetric layout). *)

val create_lossy :
  loss:float -> engine:Engine.t -> topo:Topology.t ->
  mac_keys:string array array -> t
(** Unreliable, reordering datagram links losing each frame with
    probability [loss]; reliability, FIFO order and authentication are
    restored by a per-pair {!Swlink} sliding-window endpoint — the paper's
    planned TCP replacement, carrying the whole protocol stack. *)

val n : t -> int
(** Number of nodes (the topology's host count). *)

val node : t -> int -> node
(** Node [i]'s handle, for the lower-level per-node operations. *)

val meter : t -> int -> Cost.meter
(** Node [i]'s virtual-CPU meter. *)

val set_handler : t -> int -> (src:int -> string -> unit) -> unit
(** Install node [i]'s message handler (one per node). *)

val set_intercept : t -> (src:int -> dst:int -> string -> action) -> unit
(** Install the network adversary. *)

val clear_intercept : t -> unit
(** Remove the adversary installed by {!set_intercept}, if any. *)

val crash : t -> int -> unit
(** Silence a node: it neither sends nor processes until {!recover}. *)

val recover : t -> int -> unit
(** Undo {!crash}: the node resumes sending and processing.  Messages that
    arrived while it was down are lost (dropped at arrival time); frames
    queued before the crash are processed on wake-up. *)

val send : t -> src:int -> dst:int -> string -> unit
(** Transmit bytes.  Inside a handler the message departs when the charged
    computation completes; outside, immediately.  Every send allocates a
    causal flow id from the engine (traced or not); with a sink installed
    it also emits a ["msg"] flow-start record whose ["cause"] argument is
    the message being handled, plus ["xmit"]/["recv"] instants as the
    bytes leave the CPU and arrive. *)

val inject : ?cause:int -> t -> int -> (unit -> unit) -> unit
(** Run an application action on node [i]'s virtual CPU (a client request):
    charges the meter and flushes sends like a handler step.  [cause]
    (default -1 = none) names the causal flow id that triggered the
    action, so records emitted inside it join the trace DAG. *)

(** {2 The storage plane}

    A second, out-of-band message class per node, modelling a dedicated
    storage core and a separate transfer connection: its own CPU meter,
    busy clock, inbox, FIFO clamp and latency jitter stream.  Durability
    traffic (checkpoint shares, snapshot transfer) rides here so that a
    durable run shares {e no} schedule-bearing resource with the protocol
    plane — neither the protocol meter nor the protocol latency stream is
    touched — which keeps its delivery schedule byte-identical to a
    non-durable run at the same seed.  The plane is authenticated with the
    same per-pair MACs but is modelled reliable: the adversary intercept
    and lossy-datagram mode apply to the protocol plane only; Byzantine
    storage-plane {e content} is rejected end-to-end by certificate
    verification, not at the link. *)

val set_oob_handler : t -> int -> (src:int -> string -> unit) -> unit
(** Install node [i]'s storage-plane message handler (one per node). *)

val send_oob : t -> src:int -> dst:int -> string -> unit
(** Transmit bytes on the storage plane.  Departs immediately (the
    protocol thread's handoff to the storage core is modelled free);
    latency is drawn from the plane's own jitter stream and arrival obeys
    the plane's own per-pair FIFO order.  Crashed senders and receivers
    drop the message, as on the protocol plane. *)

val oob_meter : t -> int -> Cost.meter
(** Node [i]'s storage-core meter.  Work done inside a storage-plane
    handler is charged here automatically; synchronous storage work done
    from protocol handlers should charge here too and then call
    {!oob_advance}. *)

val oob_advance : t -> int -> unit
(** Fold cost accrued on the storage meter outside a storage handler
    (e.g. log appends triggered by a delivered round) into the storage
    core's busy clock, so later storage-plane messages queue behind it.
    No-op when the meter holds no pending cost. *)

val mac_failures : t -> int
(** Count of messages dropped by link-authentication failure. *)

val trace_ctx : t -> int -> Trace.Ctx.t
(** Node [i]'s tracing context (bound to the engine's sink and clock). *)

val publish_metrics : t -> unit
(** Dump per-node and per-link message/byte/CPU/exponentiation counters
    into the engine's metrics registry.  Idempotent. *)
