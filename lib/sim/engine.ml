(* The discrete-event simulation core: a virtual clock and an event heap.

   All asynchrony in the reproduction comes from here.  Determinism: events
   at equal times fire in scheduling order, and all jitter is drawn from the
   engine's seeded DRBG, so a run is a pure function of its seed. *)

type t = {
  mutable now : float;                      (* virtual seconds *)
  events : (unit -> unit) Heap.t;
  drbg : Hashes.Drbg.t;
  mutable executed : int;
  mutable stopped : bool;
  sink : Trace.Sink.t ref;                  (* observability: shared trace sink *)
  metrics : Trace.Metrics.t;                (* observability: shared registry *)
  mutable next_flow_id : int;               (* causal-tracing id allocator *)
}

let create ?(seed = "sintra-sim") () : t =
  {
    now = 0.0;
    events = Heap.create ();
    drbg = Hashes.Drbg.create ~seed;
    executed = 0;
    stopped = false;
    sink = ref Trace.Sink.Null;
    metrics = Trace.Metrics.create ();
    next_flow_id = 0;
  }

(* Allocate a fresh causal flow id.  A plain counter, advanced whether or
   not tracing is on, so ids — and therefore the schedule — are identical
   in traced and untraced runs. *)
let fresh_flow_id (t : t) : int =
  let id = t.next_flow_id in
  t.next_flow_id <- id + 1;
  id

let now (t : t) = t.now

let drbg (t : t) = t.drbg

let sink (t : t) = t.sink

let set_sink (t : t) (s : Trace.Sink.t) = t.sink := s

let metrics (t : t) = t.metrics

(* A tracing context bound to this engine's clock, sink and registry for
   party [party]. *)
let trace_ctx (t : t) ~(party : int) : Trace.Ctx.t =
  Trace.Ctx.create ~sink:t.sink ~metrics:t.metrics
    ~now:(fun () -> t.now) ~party

(* Schedule [f] to run [delay] virtual seconds from now (clamped to now). *)
let schedule (t : t) ~(delay : float) (f : unit -> unit) : unit =
  let delay = if delay < 0.0 then 0.0 else delay in
  Heap.push t.events ~time:(t.now +. delay) f

let schedule_at (t : t) ~(time : float) (f : unit -> unit) : unit =
  let time = if time < t.now then t.now else time in
  Heap.push t.events ~time f

let stop (t : t) = t.stopped <- true

(* Run until the event queue drains, [until] virtual seconds pass, or
   [max_events] fire.  Returns the number of events executed. *)
let run ?(until = infinity) ?(max_events = max_int) (t : t) : int =
  t.stopped <- false;
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    if t.stopped || !count >= max_events then continue := false
    else
      match Heap.peek_time t.events with
      | None -> continue := false
      | Some tm when tm > until ->
        t.now <- until;
        continue := false
      | Some _ ->
        (match Heap.pop t.events with
         | None -> continue := false
         | Some (tm, f) ->
           t.now <- tm;
           incr count;
           t.executed <- t.executed + 1;
           f ())
  done;
  !count

let pending (t : t) = Heap.length t.events
