(* A minimal binary min-heap keyed by (time, sequence number); the sequence
   number makes event ordering total and therefore the simulation
   deterministic. *)

type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length h = h.size
let is_empty h = h.size = 0

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap h.data.(0) in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let push (h : 'a t) ~(time : float) (value : 'a) : unit =
  let e = { time; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.data = 0 then h.data <- Array.make 16 e;
  grow h;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  (* Sift up. *)
  let i = ref (h.size - 1) in
  while !i > 0 && entry_lt h.data.(!i) h.data.((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    let tmp = h.data.(parent) in
    h.data.(parent) <- h.data.(!i);
    h.data.(!i) <- tmp;
    i := parent
  done

let pop (h : 'a t) : (float * 'a) option =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && entry_lt h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.size && entry_lt h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.value)
  end

let peek_time (h : 'a t) : float option =
  if h.size = 0 then None else Some h.data.(0).time
