(** The paper's test-beds as simulation topologies.

    A host is characterized by its 1024-bit-exponentiation cost ([exp_ms],
    the [exp] column of Section 4's host tables); the network by a one-way
    latency function.  These are the only physical quantities the
    experiments depend on. *)

type host = {
  name : string;
  exp_ms : float;
}

type t = {
  label : string;
  hosts : host array;
  one_way : int -> int -> int -> Hashes.Drbg.t -> float;
  (** [one_way i j size drbg]: virtual seconds for a [size]-byte message
      from host [i] to host [j]. *)
}

val n : t -> int
(** Number of hosts. *)

val lan : t
(** The four-machine 100 Mbit/s switched-Ethernet setup at the Zurich lab
    (n=4, t=1). *)

val internet : t
(** Zurich, Tokyo, New York, California over the 2002 IBM intranet (n=4,
    t=1), with the RTT matrix of Figure 3. *)

val internet_rtt : float array array
(** The pairwise RTTs (ms), symmetric; exposed for the Figure 3 printout. *)

val combined : t
(** All seven machines (n=7, t=2); hosts 0-3 are the Zurich LAN. *)

val uniform :
  ?exp_ms:float -> ?latency:float -> ?jitter_frac:float -> count:int -> unit -> t
(** A homogeneous topology for unit tests. *)
