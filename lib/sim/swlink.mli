(** A sliding-window reliable FIFO link with {e authenticated}
    acknowledgments — the paper's planned replacement for its TCP links,
    which it notes are "subject to a denial-of-service attack by sending
    forged TCP acknowledgements" (Section 3).

    Selective-repeat over lossy, reordering datagrams; both DATA and ACK
    frames carry HMACs under the pair key, so a spoofed acknowledgement can
    neither advance nor stall the window. *)

type endpoint

val create :
  engine:Engine.t -> mac_key:string -> ?window:int -> ?rto:float ->
  out:(string -> unit) -> deliver:(string -> unit) -> unit -> endpoint
(** One side of a pair.  Outgoing datagrams leave through [out] (which may
    drop, delay, duplicate or reorder them); in-order payloads arrive at
    [deliver].  [window] (default 32) bounds frames in flight; [rto]
    (default 0.5 s virtual) is the retransmission timeout. *)

val send : endpoint -> string -> unit
(** Queue a payload for exactly-once, in-order delivery at the peer. *)

val on_datagram : endpoint -> string -> unit
(** Feed one received datagram — possibly duplicated, reordered, truncated
    or forged; anything unauthentic is counted and dropped. *)

val in_flight : endpoint -> int
(** Unacknowledged DATA frames currently in the window. *)

val backlog_length : endpoint -> int
(** Payloads queued behind a full window, not yet transmitted. *)

val retransmissions : endpoint -> int
(** DATA frames re-sent after a retransmission timeout. *)

val rejected_frames : endpoint -> int
(** Received frames dropped as malformed or failing authentication. *)

val duplicate_frames : endpoint -> int
(** Authentic DATA frames received more than once (loss of our ACK, or a
    replaying network). *)
