(** The virtual-CPU cost model.

    Each simulated host is calibrated by a single number — the milliseconds
    it takes for one full 1024-bit modular exponentiation, the [exp] column
    of the paper's host tables.  All public-key operation costs scale from
    it: a modular multiplication at modulus size [b] costs [(b/1024)^2] and
    an [e]-bit exponent costs [~1.5e] multiplications, matching the paper's
    observation that exponentiation is cubic in the key size (Section 4.2). *)

type meter = {
  mutable charged_ms : float;   (** accumulated in the current step *)
  mutable total_ms : float;     (** accumulated over the whole run *)
  exp_ms : float;               (** host calibration *)
  mutable exp_count : int;      (** modular exponentiations performed *)
  mutable exp2_count : int;     (** simultaneous double exponentiations *)
  mutable fixed_count : int;    (** fixed-base table-driven exponentiations *)
  mutable multi_count : int;    (** k-way simultaneous exponentiations *)
  mutable lookup_count : int;   (** verified-share cache probes charged *)
}

val create_meter : exp_ms:float -> meter
(** A zeroed meter for a host that takes [exp_ms] milliseconds per full
    1024-bit modular exponentiation. *)

val charge : meter -> float -> unit
(** Charge [ms] of virtual CPU to the current step. *)

val take : meter -> float
(** Drain the per-step accumulator; returns seconds. *)

val modexp_ms : exp_ms:float -> mod_bits:int -> exp_bits:int -> float
(** The scaling rule, exposed for tests. *)

val exp_full : meter -> bits:int -> unit
(** One full exponentiation at [bits]-bit modulus and exponent. *)

val exp : meter -> mod_bits:int -> exp_bits:int -> unit
(** One exponentiation with an [exp_bits]-bit exponent at a [mod_bits]-bit
    modulus; counted in [exp_count]. *)

val multi_exp_factor : float
(** Cost of one simultaneous double exponentiation relative to ONE plain
    exponentiation at the wider exponent (Shamir's trick shares the
    squaring chain: ~1.47 vs 1.5 multiplications per exponent bit). *)

val fixed_base_factor : float
(** Cost of a fixed-base table-driven power relative to a plain
    exponentiation of the same width (4-bit windows, no squarings:
    ~0.234 vs 1.5 multiplications per bit). *)

val exp2 : meter -> mod_bits:int -> exp_bits:int -> unit
(** One simultaneous double exponentiation ([Bignum.Nat.powmod2]);
    [exp_bits] is the wider of the two exponents.  Charged at
    {!multi_exp_factor} of a plain exponentiation and counted in
    [exp2_count]. *)

val exp_fixed : meter -> mod_bits:int -> exp_bits:int -> unit
(** One fixed-base table hit ([Bignum.Nat.Fixed_base.pow]).  Charged at
    {!fixed_base_factor} of a plain exponentiation and counted in
    [fixed_count]. *)

val exp_multi :
  meter -> mod_bits:int -> sq_bits:int -> exp_bits:int list -> unit
(** One k-way simultaneous exponentiation ([Bignum.Nat.powmod_multi]):
    a single squaring chain of [sq_bits] squarings (2/3 of a baseline
    exponentiation) plus ~e/4 table multiplies per {e pair} of bases —
    [exp_bits] lists every exponent's width.  The marginal base costs
    ~1/8 of a plain exponentiation, which is what makes batch
    verification amortize.  Counted in [multi_count]. *)

val lookup : meter -> unit
(** One verified-share cache probe: a flat-key hash-table lookup, priced
    far below any exponentiation but non-zero.  Counted in
    [lookup_count]. *)

val rsa_sign : meter -> bits:int -> unit
(** CRT signing: a quarter of a full exponentiation. *)

val rsa_verify : meter -> bits:int -> unit
(** e = 65537: 17 multiplications. *)

val symmetric : meter -> bytes:int -> unit
(** Symmetric encryption/decryption of [bytes], priced per byte. *)

val hash : meter -> bytes:int -> unit
(** Hashing [bytes], priced per byte (cheaper than {!symmetric}). *)

val log_io : meter -> bytes:int -> unit
(** Appending [bytes] to the durable write-ahead log: a CRC pass plus a
    buffered sequential write — priced per byte below {!hash}, with a
    small constant for the frame header. *)

val per_message : meter -> bytes:int -> unit
(** Per-message protocol overhead (deserialization, dispatch, threading),
    scaled by host speed; calibrated against the paper's crypto-free
    reliable-channel measurements. *)
