(** The virtual-CPU cost model.

    Each simulated host is calibrated by a single number — the milliseconds
    it takes for one full 1024-bit modular exponentiation, the [exp] column
    of the paper's host tables.  All public-key operation costs scale from
    it: a modular multiplication at modulus size [b] costs [(b/1024)^2] and
    an [e]-bit exponent costs [~1.5e] multiplications, matching the paper's
    observation that exponentiation is cubic in the key size (Section 4.2). *)

type meter = {
  mutable charged_ms : float;   (** accumulated in the current step *)
  mutable total_ms : float;     (** accumulated over the whole run *)
  exp_ms : float;               (** host calibration *)
  mutable exp_count : int;      (** modular exponentiations performed *)
}

val create_meter : exp_ms:float -> meter

val charge : meter -> float -> unit
(** Charge [ms] of virtual CPU to the current step. *)

val take : meter -> float
(** Drain the per-step accumulator; returns seconds. *)

val modexp_ms : exp_ms:float -> mod_bits:int -> exp_bits:int -> float
(** The scaling rule, exposed for tests. *)

val exp_full : meter -> bits:int -> unit
(** One full exponentiation at [bits]-bit modulus and exponent. *)

val exp : meter -> mod_bits:int -> exp_bits:int -> unit

val rsa_sign : meter -> bits:int -> unit
(** CRT signing: a quarter of a full exponentiation. *)

val rsa_verify : meter -> bits:int -> unit
(** e = 65537: 17 multiplications. *)

val symmetric : meter -> bytes:int -> unit
val hash : meter -> bytes:int -> unit

val per_message : meter -> bytes:int -> unit
(** Per-message protocol overhead (deserialization, dispatch, threading),
    scaled by host speed; calibrated against the paper's crypto-free
    reliable-channel measurements. *)
