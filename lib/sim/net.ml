(* The simulated network: n nodes with authenticated, reliable, FIFO
   point-to-point links over the discrete-event engine.

   Fidelity to the paper's model:
   - links carry opaque byte strings (real serialized protocol messages),
     authenticated by HMAC-SHA1 under a per-pair key from the dealer;
   - each node is a sequential processor: handling a message charges virtual
     CPU time to the node's meter (calibrated by its `exp_ms'), and messages
     sent from within a handler depart only when the computation finishes —
     this is what makes slow hosts lag exactly as in Figures 4 and 5;
   - an adversary hook may drop, delay or replace messages in flight
     (replacement is detected by the MAC unless the adversary controls the
     sender), which models the asynchronous scheduler's power. *)

type action =
  | Deliver
  | Drop
  | Delay of float               (* extra seconds *)
  | Replace of string            (* tamper with the payload in flight *)
  | Duplicate                    (* deliver twice, back to back *)
  | Replay of float              (* deliver now and again after the delay *)

type node = {
  id : int;
  meter : Cost.meter;
  mutable busy_until : float;
  inbox : (int * string * int) Queue.t;      (* src, payload, flow id *)
  outbox : (int * string * int) Queue.t;     (* dst, payload, flow id;
                                                sends buffered in a handler *)
  mutable handler : (src:int -> string -> unit) option;
  mutable wake_scheduled : bool;
  mutable crashed : bool;
  mutable in_handler : bool;
  mutable sent_msgs : int;
  mutable sent_bytes : int;
  mutable received_msgs : int;
  (* The storage plane: a second, out-of-band message class with its own
     CPU meter, busy clock and inbox — a dedicated storage core and a
     separate transfer connection per host.  Durability traffic (checkpoint
     shares, snapshot transfer) rides here so it shares NO schedule-bearing
     resource with the protocol plane: neither the protocol meter nor the
     protocol latency stream is ever touched, which is what keeps a durable
     run's delivery schedule byte-identical to a non-durable one. *)
  oob_meter : Cost.meter;
  mutable oob_busy_until : float;
  oob_inbox : (int * string * int) Queue.t;
  mutable oob_handler : (src:int -> string -> unit) option;
  mutable oob_wake_scheduled : bool;
  mutable oob_sent_msgs : int;
  mutable oob_sent_bytes : int;
}

type t = {
  engine : Engine.t;
  topo : Topology.t;
  nodes : node array;
  mac_keys : string array array;       (* symmetric, per unordered pair *)
  latency_drbg : Hashes.Drbg.t;
  oob_latency_drbg : Hashes.Drbg.t;    (* storage plane's own jitter stream *)
  oob_last_arrival : float array array;  (* FIFO per (src,dst), oob plane *)
  mutable intercept : (src:int -> dst:int -> string -> action) option;
  mutable mac_failures : int;
  last_arrival : float array array;  (* FIFO ordering per (src,dst) *)
  (* Lossy-datagram mode: when [lossy = Some p] the links are unreliable,
     reordering datagram channels losing each frame with probability [p],
     and reliability/FIFO/authentication come from a sliding-window
     {!Swlink} endpoint per directed pair - the paper's planned replacement
     for TCP, running under the whole protocol stack. *)
  lossy : float option;
  mutable links : Swlink.endpoint option array array;
  link_msgs : int array array;       (* per (src,dst) message counts *)
  link_bytes : int array array;      (* per (src,dst) payload bytes *)
  traces : Trace.Ctx.t array;        (* per-node tracing contexts *)
}

let make ?lossy ~(engine : Engine.t) ~(topo : Topology.t)
    ~(mac_keys : string array array) () : t =
  let n = Topology.n topo in
  let nodes =
    Array.init n (fun id ->
      {
        id;
        meter = Cost.create_meter ~exp_ms:topo.Topology.hosts.(id).Topology.exp_ms;
        busy_until = 0.0;
        inbox = Queue.create ();
        outbox = Queue.create ();
        handler = None;
        wake_scheduled = false;
        crashed = false;
        in_handler = false;
        sent_msgs = 0;
        sent_bytes = 0;
        received_msgs = 0;
        oob_meter =
          Cost.create_meter ~exp_ms:topo.Topology.hosts.(id).Topology.exp_ms;
        oob_busy_until = 0.0;
        oob_inbox = Queue.create ();
        oob_handler = None;
        oob_wake_scheduled = false;
        oob_sent_msgs = 0;
        oob_sent_bytes = 0;
      })
  in
  {
    engine;
    topo;
    nodes;
    mac_keys;
    latency_drbg = Hashes.Drbg.fork (Engine.drbg engine) "net-latency";
    oob_latency_drbg = Hashes.Drbg.fork (Engine.drbg engine) "net-oob-latency";
    intercept = None;
    mac_failures = 0;
    last_arrival = Array.init n (fun _ -> Array.make n 0.0);
    oob_last_arrival = Array.init n (fun _ -> Array.make n 0.0);
    lossy;
    links = [||];
    link_msgs = Array.init n (fun _ -> Array.make n 0);
    link_bytes = Array.init n (fun _ -> Array.make n 0);
    traces = Array.init n (fun id -> Engine.trace_ctx engine ~party:id);
  }

let mac_tag (t : t) ~(src : int) ~(dst : int) (payload : string) : string =
  let key = t.mac_keys.(min src dst).(max src dst) in
  Hashes.Hmac.mac ~algo:Hashes.Hmac.SHA1 ~key
    (Printf.sprintf "%d>%d|%s" src dst payload)

(* Process at most one inbox message of node [nd], then reschedule. *)
let rec process_one (t : t) (nd : node) () : unit =
  nd.wake_scheduled <- false;
  if not nd.crashed && not (Queue.is_empty nd.inbox) then begin
    let now = Engine.now t.engine in
    if nd.busy_until > now then wake t nd nd.busy_until
    else begin
      let src, payload, flow = Queue.pop nd.inbox in
      nd.received_msgs <- nd.received_msgs + 1;
      (match nd.handler with
       | None -> ()
       | Some h ->
         nd.in_handler <- true;
         (* Records emitted while the handler runs carry the triggering
            message's flow id — the causal edge the analyzer follows. *)
         Trace.Ctx.set_cause t.traces.(nd.id) flow;
         h ~src payload;
         Trace.Ctx.set_cause t.traces.(nd.id) (-1);
         nd.in_handler <- false);
      let cost = Cost.take nd.meter in
      nd.busy_until <- now +. cost;
      flush_outbox t nd;
      if not (Queue.is_empty nd.inbox) then wake t nd nd.busy_until
    end
  end

and wake (t : t) (nd : node) (at : float) : unit =
  if not nd.wake_scheduled then begin
    nd.wake_scheduled <- true;
    Engine.schedule_at t.engine ~time:at (process_one t nd)
  end

(* Lossy-datagram mode: hand the payload to the sliding-window link at
   departure time; frames below travel as unreliable datagrams. *)
and transmit_lossy (t : t) ~(src : int) ~(dst : int) ~(depart : float) (payload : string)
    : unit =
  match t.links.(src).(dst) with
  | None -> ()
  | Some ep -> Engine.schedule_at t.engine ~time:depart (fun () -> Swlink.send ep payload)

(* Put [payload] on the wire from [src] to [dst], departing at [depart].
   [id] is the causal flow id allocated at send time; the sliding-window
   path cannot carry it through retransmission frames, so lossy-mode
   deliveries enter the inbox with id -1 (no causal edge). *)
and transmit (t : t) ~(src : int) ~(dst : int) ~(id : int) ~(depart : float)
    (payload : string) : unit =
  if t.lossy <> None && src <> dst then transmit_lossy t ~src ~dst ~depart payload
  else transmit_reliable t ~src ~dst ~id ~depart payload

and transmit_reliable (t : t) ~(src : int) ~(dst : int) ~(id : int)
    ~(depart : float) (payload : string) : unit =
  let decide = match t.intercept with
    | None -> Deliver
    | Some f -> f ~src ~dst payload
  in
  (* The bytes leave src's virtual CPU here: the end of the message's
     send→xmit compute window.  One record per transmit, even when the
     adversary duplicates the delivery below. *)
  let tr_src = t.traces.(src) in
  let dropped =
    match decide with
    | Drop -> true
    | Deliver | Delay _ | Replace _ | Duplicate | Replay _ -> false
  in
  if Trace.Ctx.enabled tr_src && not dropped then
    Trace.Ctx.emit_at tr_src ~time:depart ~pid:"net" ~cat:"net"
      ~ph:Trace.Event.Instant
      ~args:[ ("id", Trace.Event.Int id) ]
      "xmit";
  let arrived ~(arrival : float) : unit =
    let tr_dst = t.traces.(dst) in
    if Trace.Ctx.enabled tr_dst then
      Trace.Ctx.emit_at tr_dst ~time:arrival ~pid:"net" ~cat:"net"
        ~ph:Trace.Event.Instant
        ~args:[ ("id", Trace.Event.Int id) ]
        "recv"
  in
  let deliver ~extra_delay payload =
    let tag = mac_tag t ~src ~dst payload in
    let size = String.length payload + String.length tag + 28 in
    let latency = t.topo.Topology.one_way src dst size t.latency_drbg in
    let arrival = depart +. latency +. extra_delay in
    (* FIFO per directed pair, like the TCP streams in the prototype. *)
    let arrival = Stdlib.max arrival (t.last_arrival.(src).(dst) +. 1e-9) in
    t.last_arrival.(src).(dst) <- arrival;
    let nd = t.nodes.(dst) in
    Engine.schedule_at t.engine ~time:arrival (fun () ->
      if not nd.crashed then begin
        (* Verify the link MAC on arrival. *)
        if Hashes.Hmac.verify ~algo:Hashes.Hmac.SHA1
             ~key:t.mac_keys.(min src dst).(max src dst)
             ~tag (Printf.sprintf "%d>%d|%s" src dst payload)
        then begin
          arrived ~arrival;
          Queue.push (src, payload, id) nd.inbox;
          wake t nd (Stdlib.max arrival nd.busy_until)
        end
        else t.mac_failures <- t.mac_failures + 1
      end)
  in
  (* Re-inject a recorded copy of [payload] after [d] extra seconds.  Like
     [Replace], the copy bypasses the FIFO clamp: the adversary is not bound
     by the link's stream order when it replays old frames.  The MAC is the
     genuine one, so honest receivers accept the copy — deduplication is the
     protocol's job, which is exactly what replay schedules probe. *)
  let replay_copy ~extra_delay payload =
    let tag = mac_tag t ~src ~dst payload in
    let size = String.length payload + String.length tag + 28 in
    let latency = t.topo.Topology.one_way src dst size t.latency_drbg in
    let arrival = depart +. latency +. extra_delay in
    let nd = t.nodes.(dst) in
    Engine.schedule_at t.engine ~time:arrival (fun () ->
      if not nd.crashed then begin
        if Hashes.Hmac.verify ~algo:Hashes.Hmac.SHA1
             ~key:t.mac_keys.(min src dst).(max src dst)
             ~tag (Printf.sprintf "%d>%d|%s" src dst payload)
        then begin
          arrived ~arrival;
          Queue.push (src, payload, id) nd.inbox;
          wake t nd (Stdlib.max arrival nd.busy_until)
        end
        else t.mac_failures <- t.mac_failures + 1
      end)
  in
  match decide with
  | Deliver -> deliver ~extra_delay:0.0 payload
  | Drop -> ()
  | Delay d -> deliver ~extra_delay:d payload
  | Duplicate ->
    deliver ~extra_delay:0.0 payload;
    deliver ~extra_delay:0.0 payload
  | Replay d ->
    deliver ~extra_delay:0.0 payload;
    replay_copy ~extra_delay:d payload
  | Replace p ->
    (* The tag is computed over the original payload, so honest receivers
       detect tampering; used to test robustness of link authentication. *)
    let tag = mac_tag t ~src ~dst payload in
    let size = String.length p + String.length tag + 28 in
    let latency = t.topo.Topology.one_way src dst size t.latency_drbg in
    let arrival = depart +. latency in
    let nd = t.nodes.(dst) in
    Engine.schedule_at t.engine ~time:arrival (fun () ->
      if not nd.crashed then begin
        if Hashes.Hmac.verify ~algo:Hashes.Hmac.SHA1
             ~key:t.mac_keys.(min src dst).(max src dst)
             ~tag (Printf.sprintf "%d>%d|%s" src dst p)
        then begin
          arrived ~arrival;
          Queue.push (src, p, id) nd.inbox
        end
        else t.mac_failures <- t.mac_failures + 1
      end)

and flush_outbox (t : t) (nd : node) : unit =
  while not (Queue.is_empty nd.outbox) do
    let dst, payload, id = Queue.pop nd.outbox in
    transmit t ~src:nd.id ~dst ~id ~depart:nd.busy_until payload
  done

(* Build the sliding-window endpoints for lossy mode.  The datagram channel
   below them loses each frame with probability [p] and is free to reorder
   (latency jitter, no FIFO clamp); everything above sees a reliable FIFO
   authenticated link again. *)
let init_links (t : t) (p : float) : unit =
  let n = Array.length t.nodes in
  let chaos = Hashes.Drbg.fork (Engine.drbg t.engine) "net-loss" in
  let datagram ~src ~dst frame =
    if not t.nodes.(src).crashed && Hashes.Drbg.float chaos 1.0 >= p then begin
      let size = String.length frame + 28 in
      let latency = t.topo.Topology.one_way src dst size t.latency_drbg in
      Engine.schedule t.engine ~delay:latency (fun () ->
        if not t.nodes.(dst).crashed then
          match t.links.(dst).(src) with
          | Some ep -> Swlink.on_datagram ep frame
          | None -> ())
    end
  in
  t.links <-
    Array.init n (fun i ->
      Array.init n (fun j ->
        if i = j then None
        else
          Some
            (Swlink.create ~engine:t.engine
               ~mac_key:(t.mac_keys.(min i j).(max i j))
               ~rto:0.4
               ~out:(fun frame -> datagram ~src:i ~dst:j frame)
               ~deliver:(fun payload ->
                 let nd = t.nodes.(i) in
                 if not nd.crashed then begin
                   (* Flow ids don't survive sliding-window reassembly; the
                      causal edge is severed in lossy mode. *)
                   Queue.push (j, payload, -1) nd.inbox;
                   wake t nd (Stdlib.max (Engine.now t.engine) nd.busy_until)
                 end)
               ())))

let n (t : t) = Array.length t.nodes
(* --- the storage plane --- *)

(* Process at most one storage-plane message of node [nd]: same sequential
   core model as [process_one], on the node's storage meter and busy clock.
   Storage handlers send protocol messages only on recovery paths (snapshot
   catch-up), so there is no oob outbox — those sends depart directly. *)
let rec process_oob_one (t : t) (nd : node) () : unit =
  nd.oob_wake_scheduled <- false;
  if not nd.crashed && not (Queue.is_empty nd.oob_inbox) then begin
    let now = Engine.now t.engine in
    if nd.oob_busy_until > now then oob_wake t nd nd.oob_busy_until
    else begin
      let src, payload, flow = Queue.pop nd.oob_inbox in
      (match nd.oob_handler with
       | None -> ()
       | Some h ->
         Trace.Ctx.set_cause t.traces.(nd.id) flow;
         h ~src payload;
         Trace.Ctx.set_cause t.traces.(nd.id) (-1));
      let cost = Cost.take nd.oob_meter in
      nd.oob_busy_until <- now +. cost;
      if not (Queue.is_empty nd.oob_inbox) then oob_wake t nd nd.oob_busy_until
    end
  end

and oob_wake (t : t) (nd : node) (at : float) : unit =
  if not nd.oob_wake_scheduled then begin
    nd.oob_wake_scheduled <- true;
    Engine.schedule_at t.engine ~time:at (process_oob_one t nd)
  end

(* Send on the storage plane: authenticated FIFO point-to-point, latency
   drawn from the plane's own jitter stream, arrival clamped by the plane's
   own per-pair FIFO order.  The adversary intercept and lossy-datagram
   mode apply to the protocol plane only — the transfer connection is
   modeled reliable; Byzantine storage-plane content is handled end-to-end
   (certificate verification), not at the link. *)
let send_oob (t : t) ~(src : int) ~(dst : int) (payload : string) : unit =
  let nd = t.nodes.(src) in
  if not nd.crashed then begin
    nd.oob_sent_msgs <- nd.oob_sent_msgs + 1;
    nd.oob_sent_bytes <- nd.oob_sent_bytes + String.length payload;
    let id = Engine.fresh_flow_id t.engine in
    let tag = mac_tag t ~src ~dst payload in
    let size = String.length payload + String.length tag + 28 in
    let latency = t.topo.Topology.one_way src dst size t.oob_latency_drbg in
    let depart = Engine.now t.engine in
    let arrival = depart +. latency in
    let arrival = Stdlib.max arrival (t.oob_last_arrival.(src).(dst) +. 1e-9) in
    t.oob_last_arrival.(src).(dst) <- arrival;
    let rcv = t.nodes.(dst) in
    Engine.schedule_at t.engine ~time:arrival (fun () ->
      if not rcv.crashed then begin
        if
          Hashes.Hmac.verify ~algo:Hashes.Hmac.SHA1
            ~key:t.mac_keys.(min src dst).(max src dst)
            ~tag
            (Printf.sprintf "%d>%d|%s" src dst payload)
        then begin
          Queue.push (src, payload, id) rcv.oob_inbox;
          oob_wake t rcv (Stdlib.max arrival rcv.oob_busy_until)
        end
        else t.mac_failures <- t.mac_failures + 1
      end)
  end

let set_oob_handler (t : t) (i : int) (h : src:int -> string -> unit) : unit =
  t.nodes.(i).oob_handler <- Some h

let oob_meter (t : t) (i : int) = t.nodes.(i).oob_meter

(* Flush work charged to the storage meter outside a storage handler (log
   appends and checkpoint crypto triggered synchronously by a delivered
   round) into the storage core's busy clock, so snapshot service queues
   behind it honestly. *)
let oob_advance (t : t) (i : int) : unit =
  let nd = t.nodes.(i) in
  let cost = Cost.take nd.oob_meter in
  if cost > 0.0 then
    nd.oob_busy_until <-
      Stdlib.max nd.oob_busy_until (Engine.now t.engine) +. cost

let node (t : t) (i : int) = t.nodes.(i)
let meter (t : t) (i : int) = t.nodes.(i).meter

let set_handler (t : t) (i : int) (h : src:int -> string -> unit) : unit =
  t.nodes.(i).handler <- Some h

let set_intercept (t : t) (f : src:int -> dst:int -> string -> action) : unit =
  t.intercept <- Some f

let clear_intercept (t : t) = t.intercept <- None

let crash (t : t) (i : int) = t.nodes.(i).crashed <- true

(* Bring a crashed node back: messages that arrived while it was down were
   dropped at arrival time (crash = power-off, volatile buffers lost), but
   frames still in flight or queued before the crash are processed again. *)
let recover (t : t) (i : int) : unit =
  let nd = t.nodes.(i) in
  if nd.crashed then begin
    nd.crashed <- false;
    if not (Queue.is_empty nd.inbox) then
      wake t nd (Stdlib.max (Engine.now t.engine) nd.busy_until);
    if not (Queue.is_empty nd.oob_inbox) then
      oob_wake t nd (Stdlib.max (Engine.now t.engine) nd.oob_busy_until)
  end


(* Public constructors: reliable FIFO links (the default, like the
   prototype's TCP), or unreliable datagrams losing each frame with
   probability [loss], recovered by the sliding-window protocol. *)
let create ~(engine : Engine.t) ~(topo : Topology.t)
    ~(mac_keys : string array array) : t =
  make ~engine ~topo ~mac_keys ()

let create_lossy ~(loss : float) ~(engine : Engine.t) ~(topo : Topology.t)
    ~(mac_keys : string array array) : t =
  let t = make ~lossy:loss ~engine ~topo ~mac_keys () in
  init_links t loss;
  t

(* Send [payload] from [src] to [dst].  Inside a handler the message is
   buffered and departs when the handler's charged computation completes;
   outside (e.g. from a test driver), it departs immediately. *)
let send (t : t) ~(src : int) ~(dst : int) (payload : string) : unit =
  let nd = t.nodes.(src) in
  if not nd.crashed then begin
    nd.sent_msgs <- nd.sent_msgs + 1;
    nd.sent_bytes <- nd.sent_bytes + String.length payload;
    t.link_msgs.(src).(dst) <- t.link_msgs.(src).(dst) + 1;
    t.link_bytes.(src).(dst) <- t.link_bytes.(src).(dst) + String.length payload;
    (* Allocate the flow id unconditionally (a pure counter), so traced
       and untraced runs make identical allocations and the schedule is
       never perturbed by observability. *)
    let id = Engine.fresh_flow_id t.engine in
    let tr = t.traces.(src) in
    if Trace.Ctx.enabled tr then begin
      Trace.Ctx.emit_at tr ~time:(Engine.now t.engine) ~pid:"net" ~cat:"net"
        ~ph:Trace.Event.Counter
        ~args:
          [ ("msgs", Trace.Event.Int nd.sent_msgs);
            ("bytes", Trace.Event.Int nd.sent_bytes) ]
        "sent";
      (* The flow starts here; its parent edge is the context's current
         cause (stamped automatically when sent from inside a handler). *)
      Trace.Ctx.emit_at tr ~time:(Engine.now t.engine) ~pid:"net" ~cat:"net"
        ~ph:Trace.Event.Flow_start
        ~args:
          [ ("id", Trace.Event.Int id);
            ("dst", Trace.Event.Int dst);
            ("bytes", Trace.Event.Int (String.length payload)) ]
        "msg"
    end;
    if nd.in_handler then Queue.push (dst, payload, id) nd.outbox
    else
      transmit t ~src ~dst ~id
        ~depart:(Stdlib.max (Engine.now t.engine) nd.busy_until)
        payload
  end

(* Run a computation on node [i] "now": charge its meter and flush sends,
   as if an external request arrived.  Used by the harness for client
   requests (the paper's send events).  [cause] optionally names the causal
   flow id (e.g. a load generator's submit record) that triggered the
   computation, so records emitted inside [f] join the DAG. *)
let inject ?(cause = -1) (t : t) (i : int) (f : unit -> unit) : unit =
  let nd = t.nodes.(i) in
  if not nd.crashed then begin
    let now = Engine.now t.engine in
    let start = Stdlib.max now nd.busy_until in
    Engine.schedule_at t.engine ~time:start (fun () ->
      if not nd.crashed then begin
        nd.in_handler <- true;
        Trace.Ctx.set_cause t.traces.(i) cause;
        f ();
        Trace.Ctx.set_cause t.traces.(i) (-1);
        nd.in_handler <- false;
        let cost = Cost.take nd.meter in
        nd.busy_until <- Engine.now t.engine +. cost;
        flush_outbox t nd
      end)
  end

let mac_failures (t : t) = t.mac_failures

let trace_ctx (t : t) (i : int) : Trace.Ctx.t = t.traces.(i)

(* Dump the accumulated network and CPU counters into the engine's metrics
   registry.  Idempotent ([Metrics.set], not add), so harnesses may call it
   whenever a report is wanted. *)
let publish_metrics (t : t) : unit =
  let m = Engine.metrics t.engine in
  let setc name v = Trace.Metrics.set (Trace.Metrics.counter m name) v in
  Array.iteri
    (fun i nd ->
      setc (Printf.sprintf "p%d/net.sent_msgs" i) (float_of_int nd.sent_msgs);
      setc (Printf.sprintf "p%d/net.sent_bytes" i) (float_of_int nd.sent_bytes);
      setc (Printf.sprintf "p%d/net.recv_msgs" i) (float_of_int nd.received_msgs);
      setc (Printf.sprintf "p%d/cpu.charged_s" i) (nd.meter.Cost.total_ms /. 1000.0);
      setc (Printf.sprintf "p%d/crypto.exps" i) (float_of_int nd.meter.Cost.exp_count);
      setc (Printf.sprintf "p%d/crypto.exp2s" i) (float_of_int nd.meter.Cost.exp2_count);
      setc (Printf.sprintf "p%d/crypto.fixed" i) (float_of_int nd.meter.Cost.fixed_count);
      setc (Printf.sprintf "p%d/store.cpu_s" i) (nd.oob_meter.Cost.total_ms /. 1000.0);
      setc (Printf.sprintf "p%d/store.net_msgs" i) (float_of_int nd.oob_sent_msgs);
      setc (Printf.sprintf "p%d/store.net_bytes" i) (float_of_int nd.oob_sent_bytes))
    t.nodes;
  Array.iteri
    (fun src row ->
      Array.iteri
        (fun dst msgs ->
          if msgs > 0 then begin
            setc (Printf.sprintf "link/%d>%d/msgs" src dst) (float_of_int msgs);
            setc
              (Printf.sprintf "link/%d>%d/bytes" src dst)
              (float_of_int t.link_bytes.(src).(dst))
          end)
        row)
    t.link_msgs;
  setc "net/mac_failures" (float_of_int t.mac_failures)
