(* The paper's test-beds, as simulation topologies.

   A host is characterized by its name and the measured cost of one 1024-bit
   modular exponentiation in milliseconds (the `exp' column of the host
   tables in Section 4); the network by a one-way latency function.  These
   are the only two physical quantities the experiments depend on. *)

type host = {
  name : string;
  exp_ms : float;     (* 1024-bit modular exponentiation, milliseconds *)
}

type t = {
  label : string;
  hosts : host array;
  (* [one_way i j size_bytes drbg] is the virtual latency in seconds of a
     [size_bytes]-byte message from host [i] to host [j]. *)
  one_way : int -> int -> int -> Hashes.Drbg.t -> float;
}

let n (t : t) = Array.length t.hosts

(* ±[frac] multiplicative jitter. *)
let jitter (drbg : Hashes.Drbg.t) (frac : float) : float =
  1.0 +. (Hashes.Drbg.float drbg (2.0 *. frac)) -. frac

(* The LAN setup: four hosts on 100 Mbit/s switched Ethernet at the Zurich
   lab (Section 4, first table). *)
let lan_hosts = [|
  { name = "P0/Linux"; exp_ms = 93.0 };
  { name = "P1/Linux"; exp_ms = 70.0 };
  { name = "P2/AIX"; exp_ms = 105.0 };
  { name = "P3/Win2k"; exp_ms = 132.0 };
|]

let lan_one_way _i _j size drbg =
  (* Switch latency ~0.2 ms plus 100 Mbit/s serialization. *)
  let base = 0.0002 and bw = 100e6 /. 8.0 in
  (base +. (float_of_int size /. bw)) *. jitter drbg 0.15

let lan : t = { label = "LAN"; hosts = lan_hosts; one_way = lan_one_way }

(* The Internet setup: Zurich, Tokyo, New York, California (Section 4,
   second table), with the average round-trip times of Figure 3.  The figure
   gives the six pairwise RTTs {164, 230, 373, 285, 242, 93} ms; we assign
   them geographically (Tokyo hardest to reach, as the paper observes;
   Zurich-NY the shortest transatlantic hop). *)
let internet_hosts = [|
  { name = "P0/Zurich"; exp_ms = 93.0 };
  { name = "P1/Tokyo"; exp_ms = 55.0 };
  { name = "P2/NewYork"; exp_ms = 101.0 };
  { name = "P3/California"; exp_ms = 427.0 };
|]

(* rtt.(i).(j) in milliseconds, symmetric.  The six RTTs of Figure 3 —
   {93, 164, 230, 242, 285, 373} — assigned so that New York is the
   best-connected site (the paper: "New York comes through first ... closer
   to enough fast servers") and Tokyo the worst (sum 900 ms; "the most
   difficult to reach"). *)
let internet_rtt = [|
  (*          Zur    Tok    NY     Cal  *)
  (* Zur *) [| 0.0;  285.0; 164.0; 230.0 |];
  (* Tok *) [| 285.0; 0.0;  373.0; 242.0 |];
  (* NY  *) [| 164.0; 373.0; 0.0;  93.0  |];
  (* Cal *) [| 230.0; 242.0; 93.0;  0.0  |];
|]

(* WAN latency: half the RTT with 10%+ variation (the paper reports its
   measured variation as "often 10% or more"), a heavy tail (a few percent
   of messages hit congestion/retransmission and take 1.5-3.5x as long —
   what makes a remote server's proposal occasionally miss the first
   candidate slot in Figure 5), plus a T1-class bandwidth term that only
   matters for large messages. *)
let wan_one_way_of_rtt rtt i j size drbg =
  if i = j then 1e-6
  else begin
    let base = rtt.(i).(j) /. 2.0 /. 1000.0 in
    let bw = 1.5e6 /. 8.0 in
    let tail =
      if Hashes.Drbg.float drbg 1.0 < 0.06 then 1.5 +. Hashes.Drbg.float drbg 2.0
      else 1.0
    in
    (* The 70 ms constant is application-level overhead above ping RTT/2
       (TCP, gateways on the 2002 IBM intranet), calibrated against the
       paper's Table 1 reliable-channel column — the one measurement with
       no public-key operations in it. *)
    0.070 +. (base *. jitter drbg 0.12 *. tail) +. (float_of_int size /. bw)
  end

let internet : t = {
  label = "Internet";
  hosts = internet_hosts;
  one_way = wan_one_way_of_rtt internet_rtt;
}

(* The combined setup: all seven machines (P0/Zurich belongs to both), i.e.
   n = 7, t = 2.  Hosts 0-3 are the LAN machines in Zurich; 4-6 are Tokyo,
   New York, California. *)
let combined_hosts = [|
  { name = "P0/Linux/Zur"; exp_ms = 93.0 };
  { name = "P1/Linux/Zur"; exp_ms = 70.0 };
  { name = "P2/AIX/Zur"; exp_ms = 105.0 };
  { name = "P3/Win2k/Zur"; exp_ms = 132.0 };
  { name = "P4/Tokyo"; exp_ms = 55.0 };
  { name = "P5/NewYork"; exp_ms = 101.0 };
  { name = "P6/California"; exp_ms = 427.0 };
|]

(* Map combined index to a WAN site: Zurich for 0-3, else the site itself. *)
let combined_site = [| 0; 0; 0; 0; 1; 2; 3 |]

let combined_one_way i j size drbg =
  let si = combined_site.(i) and sj = combined_site.(j) in
  if si = sj then lan_one_way i j size drbg
  else wan_one_way_of_rtt internet_rtt si sj size drbg

let combined : t = {
  label = "LAN+Internet";
  hosts = combined_hosts;
  one_way = combined_one_way;
}

(* A uniform topology for tests: n identical hosts, fixed base latency. *)
let uniform ?(exp_ms = 10.0) ?(latency = 0.01) ?(jitter_frac = 0.2) ~count () : t =
  {
    label = Printf.sprintf "uniform-%d" count;
    hosts = Array.init count (fun i -> { name = Printf.sprintf "N%d" i; exp_ms });
    one_way =
      (fun _i _j _size drbg -> latency *. jitter drbg jitter_frac);
  }
