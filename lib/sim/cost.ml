(* The virtual-CPU cost model.

   Each host is calibrated by one number — the milliseconds it needs for a
   full 1024-bit modular exponentiation (the `exp' column in the paper's
   host tables).  Everything else is scaled from it:

     - a modular multiplication at modulus size b costs  (b/1024)^2,
     - an exponentiation with an e-bit exponent performs ~1.5 e such
       multiplications (square-and-multiply),

   so  cost(mod b, exp e) = exp_ms * (e / 1024) * (b/1024)^2,
   which reproduces the paper's observation that full-size exponentiation is
   cubic in the key size and multiplication quadratic (Section 4.2). *)

type meter = {
  mutable charged_ms : float;        (* accumulated in the current step *)
  mutable total_ms : float;          (* accumulated over the whole run *)
  exp_ms : float;                    (* host calibration *)
  mutable exp_count : int;           (* modular exponentiations performed *)
  mutable exp2_count : int;          (* simultaneous double exponentiations *)
  mutable fixed_count : int;         (* fixed-base table-driven exponentiations *)
  mutable multi_count : int;         (* k-way simultaneous exponentiations *)
  mutable lookup_count : int;        (* verified-share cache probes charged *)
}

let create_meter ~(exp_ms : float) : meter =
  { charged_ms = 0.0; total_ms = 0.0; exp_ms; exp_count = 0;
    exp2_count = 0; fixed_count = 0; multi_count = 0; lookup_count = 0 }

let charge (m : meter) (ms : float) : unit =
  m.charged_ms <- m.charged_ms +. ms;
  m.total_ms <- m.total_ms +. ms

(* Take and reset the per-step accumulator (seconds). *)
let take (m : meter) : float =
  let s = m.charged_ms /. 1000.0 in
  m.charged_ms <- 0.0;
  s

let modexp_ms ~(exp_ms : float) ~(mod_bits : int) ~(exp_bits : int) : float =
  let b = float_of_int mod_bits /. 1024.0 in
  let e = float_of_int exp_bits /. 1024.0 in
  exp_ms *. e *. b *. b

let exp_full (m : meter) ~(bits : int) : unit =
  m.exp_count <- m.exp_count + 1;
  charge m (modexp_ms ~exp_ms:m.exp_ms ~mod_bits:bits ~exp_bits:bits)

let exp (m : meter) ~(mod_bits : int) ~(exp_bits : int) : unit =
  m.exp_count <- m.exp_count + 1;
  charge m (modexp_ms ~exp_ms:m.exp_ms ~mod_bits ~exp_bits)

(* Fast-path charge classes, mirroring the real bignum layer.

   The baseline rule above prices an e-bit exponent at ~1.5e modular
   multiplications (square-and-multiply: e squarings + e/2 multiplies).

   - A simultaneous double exponentiation (Shamir's trick, as in
     Nat.powmod2) shares the squaring chain between the two exponents and
     multiplies in a 2-bit digit-pair table entry when one is non-zero:
     ~1.47e multiplications for BOTH powers — 0.98 of ONE baseline
     exponentiation where two were charged before.

   - A fixed-base windowed power (Nat.Fixed_base, 4-bit windows
     precomputed at dealing time) performs no squarings at all: ~15/16 of
     e/4 table multiplies, i.e. ~0.234e mults = 0.16 of the baseline. *)

let multi_exp_factor = 0.98
let fixed_base_factor = 0.16

let exp2 (m : meter) ~(mod_bits : int) ~(exp_bits : int) : unit =
  m.exp2_count <- m.exp2_count + 1;
  charge m (multi_exp_factor *. modexp_ms ~exp_ms:m.exp_ms ~mod_bits ~exp_bits)

let exp_fixed (m : meter) ~(mod_bits : int) ~(exp_bits : int) : unit =
  m.fixed_count <- m.fixed_count + 1;
  charge m (fixed_base_factor *. modexp_ms ~exp_ms:m.exp_ms ~mod_bits ~exp_bits)

(* A k-way simultaneous exponentiation (Nat.powmod_multi): ONE shared
   squaring chain over the widest exponent plus ~e/4 table multiplies per
   base pair (2-bit digit-pair windows, 15/16 of windows non-zero).
   Against the 1.5e-multiply baseline that is e squarings = 2/3 of one
   baseline exponentiation, plus 15/64 e ~= e/4 multiplies per block of
   two bases — so the marginal base costs ~1/8 of a baseline
   exponentiation and batch verification amortizes.

   [sq_bits] is the widest exponent (the length of the squaring chain) and
   [exp_bits] the list of all exponent widths (one table-multiply stream
   per PAIR of bases). *)
let exp_multi (m : meter) ~(mod_bits : int) ~(sq_bits : int)
    ~(exp_bits : int list) : unit =
  m.multi_count <- m.multi_count + 1;
  let squarings =
    (2.0 /. 3.0) *. modexp_ms ~exp_ms:m.exp_ms ~mod_bits ~exp_bits:sq_bits
  in
  let blocks =
    (* bases are consumed in pairs; each block multiplies on ~15/64 of the
       chain length of its wider member *)
    let rec pair = function
      | [] -> 0.0
      | [ e ] -> float_of_int e
      | e1 :: e2 :: rest -> float_of_int (max e1 e2) +. pair rest
    in
    pair (List.sort compare exp_bits)
  in
  let multiplies =
    (15.0 /. 64.0) /. 1.5
    *. modexp_ms ~exp_ms:m.exp_ms ~mod_bits
         ~exp_bits:(int_of_float (ceil blocks))
  in
  charge m (squarings +. multiplies)

(* A verified-share cache probe (hash-table lookup over a short flat key):
   priced like hashing the key — vanishing next to any exponentiation but
   not literally free, so cache-heavy runs still show up in the meter. *)
let lookup (m : meter) : unit =
  m.lookup_count <- m.lookup_count + 1;
  charge m 2e-4

(* RSA signing with CRT: two half-size exponentiations = 1/4 of a full one
   (the paper credits Chinese remaindering for the fast multi-signature
   path). *)
let rsa_sign (m : meter) ~(bits : int) : unit =
  m.exp_count <- m.exp_count + 1;
  charge m (modexp_ms ~exp_ms:m.exp_ms ~mod_bits:bits ~exp_bits:bits /. 4.0)

(* RSA verification with e = 65537: 17 multiplications. *)
let rsa_verify (m : meter) ~(bits : int) : unit =
  exp m ~mod_bits:bits ~exp_bits:17

(* Symmetric operations: effectively free next to public-key work, but keep
   a small linear term so bulk data is not literally gratis. *)
let symmetric (m : meter) ~(bytes : int) : unit =
  charge m (float_of_int bytes *. 2e-5)

let hash (m : meter) ~(bytes : int) : unit = symmetric m ~bytes

(* Durable-log appends: a CRC pass over the payload plus a buffered
   sequential write — cheaper per byte than hashing (no compression
   function), with a small constant for the frame header and the
   write-path bookkeeping. *)
let log_io (m : meter) ~(bytes : int) : unit =
  charge m (0.002 +. (float_of_int bytes *. 5e-6))

(* Per-message protocol overhead: deserialization, dispatch, threading —
   what the paper calls "protocol overhead" and blames (together with
   network delay) for most of the measured time.  Scaled by the host's CPU
   speed using its exp calibration (P0's 93 ms as the baseline). *)
(* Calibration: the paper's reliable channel needs 0.13 s per delivery on a
   100 Mbit/s LAN with no public-key operations at all — pure per-message
   overhead across the ~9 messages each host handles per broadcast, i.e.
   roughly 8-15 ms per message on the 93 ms-exp reference host. *)
let per_message (m : meter) ~(bytes : int) : unit =
  charge m ((8.0 +. (float_of_int bytes *. 0.004)) *. m.exp_ms /. 93.0)
