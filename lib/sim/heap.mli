(** A binary min-heap keyed by (time, insertion sequence).

    The sequence number totally orders same-time events, which is what makes
    the whole simulation a pure function of its seed. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Earliest entry; ties broken by insertion order. *)

val peek_time : 'a t -> float option
