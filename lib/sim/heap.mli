(** A binary min-heap keyed by (time, insertion sequence).

    The sequence number totally orders same-time events, which is what makes
    the whole simulation a pure function of its seed. *)

type 'a t

val create : unit -> 'a t
(** An empty heap. *)

val length : 'a t -> int
(** Entries currently queued. *)

val is_empty : 'a t -> bool
(** [length h = 0]. *)

val push : 'a t -> time:float -> 'a -> unit
(** Queue a value at [time]; later pushes at the same time pop later. *)

val pop : 'a t -> (float * 'a) option
(** Earliest entry; ties broken by insertion order. *)

val peek_time : 'a t -> float option
(** The time {!pop} would return next, without removing anything. *)
