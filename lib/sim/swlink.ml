(* A sliding-window reliable FIFO link with authenticated acknowledgments.

   The paper (Section 3) notes that SINTRA's TCP links are "subject to a
   denial-of-service attack by sending forged TCP acknowledgements" and
   plans to replace TCP with "SINTRA's own sliding-window implementation,
   which will provide authenticated acknowledgments".  This module is that
   implementation: a go-back-free selective-repeat protocol over lossy,
   reordering datagrams, in which both DATA and ACK frames carry HMACs
   under the pair key — a spoofed acknowledgement is simply dropped, so an
   attacker without the key can neither advance nor stall the window.

   One [endpoint] holds both directions' state for one side of a pair; feed
   incoming datagrams to {!on_datagram}, outgoing datagrams leave through
   the [out] callback (which may lose, delay or reorder them). *)

type endpoint = {
  engine : Engine.t;
  mac_key : string;
  window : int;
  rto : float;                         (* retransmission timeout, seconds *)
  out : string -> unit;
  deliver : string -> unit;
  (* sender state *)
  mutable snd_next : int;              (* next sequence number to assign *)
  mutable snd_una : int;               (* oldest unacknowledged *)
  unacked : (int, string) Hashtbl.t;   (* seq -> payload *)
  backlog : string Queue.t;            (* waiting for window space *)
  mutable retransmit_armed : bool;
  (* receiver state *)
  mutable rcv_next : int;              (* next in-order sequence expected *)
  out_of_order : (int, string) Hashtbl.t;
  (* statistics *)
  mutable sent_frames : int;
  mutable retransmissions : int;
  mutable rejected_frames : int;       (* bad MAC / malformed *)
  mutable duplicate_frames : int;
}

let tag_data = 0
let tag_ack = 1

let mac (ep : endpoint) (parts : string list) : string =
  Hashes.Hmac.mac ~algo:Hashes.Hmac.SHA1 ~key:ep.mac_key (String.concat "\x00" parts)

let create ~(engine : Engine.t) ~(mac_key : string) ?(window = 32) ?(rto = 0.5)
    ~(out : string -> unit) ~(deliver : string -> unit) () : endpoint =
  {
    engine; mac_key; window; rto; out; deliver;
    snd_next = 0;
    snd_una = 0;
    unacked = Hashtbl.create 64;
    backlog = Queue.create ();
    retransmit_armed = false;
    rcv_next = 0;
    out_of_order = Hashtbl.create 64;
    sent_frames = 0;
    retransmissions = 0;
    rejected_frames = 0;
    duplicate_frames = 0;
  }

let encode_data (ep : endpoint) ~(seq : int) (payload : string) : string =
  Wire.encode (fun b ->
    Wire.Enc.u8 b tag_data;
    Wire.Enc.int b seq;
    Wire.Enc.bytes b payload;
    Wire.Enc.bytes b (mac ep [ "data"; string_of_int seq; payload ]))

let encode_ack (ep : endpoint) ~(cumulative : int) : string =
  Wire.encode (fun b ->
    Wire.Enc.u8 b tag_ack;
    Wire.Enc.int b cumulative;
    Wire.Enc.bytes b (mac ep [ "ack"; string_of_int cumulative ]))

let rec arm_retransmit (ep : endpoint) : unit =
  if not ep.retransmit_armed && Hashtbl.length ep.unacked > 0 then begin
    ep.retransmit_armed <- true;
    Engine.schedule ep.engine ~delay:ep.rto (fun () ->
      ep.retransmit_armed <- false;
      if Hashtbl.length ep.unacked > 0 then begin
        (* Selective repeat: re-send every outstanding frame, in sequence
           order so retransmission traces replay deterministically. *)
        Det.iter ep.unacked ~compare:Det.by_int
          (fun seq payload ->
            ep.retransmissions <- ep.retransmissions + 1;
            ep.out (encode_data ep ~seq payload));
        arm_retransmit ep
      end)
  end

let rec pump (ep : endpoint) : unit =
  if ep.snd_next < ep.snd_una + ep.window && not (Queue.is_empty ep.backlog) then begin
    let payload = Queue.pop ep.backlog in
    let seq = ep.snd_next in
    ep.snd_next <- seq + 1;
    Hashtbl.replace ep.unacked seq payload;
    ep.sent_frames <- ep.sent_frames + 1;
    ep.out (encode_data ep ~seq payload);
    arm_retransmit ep;
    pump ep
  end

(* Queue a payload for reliable in-order delivery at the peer. *)
let send (ep : endpoint) (payload : string) : unit =
  Queue.push payload ep.backlog;
  pump ep

let handle_data (ep : endpoint) ~(seq : int) (payload : string) : unit =
  (* Always (re-)acknowledge our cumulative progress: the ACK itself may
     have been lost. *)
  if seq < ep.rcv_next then begin
    ep.duplicate_frames <- ep.duplicate_frames + 1;
    ep.out (encode_ack ep ~cumulative:ep.rcv_next)
  end
  else begin
    if not (Hashtbl.mem ep.out_of_order seq) then Hashtbl.replace ep.out_of_order seq payload
    else ep.duplicate_frames <- ep.duplicate_frames + 1;
    (* Deliver any consecutive run that is now complete. *)
    let rec deliver_run () =
      match Hashtbl.find_opt ep.out_of_order ep.rcv_next with
      | None -> ()
      | Some p ->
        Hashtbl.remove ep.out_of_order ep.rcv_next;
        ep.rcv_next <- ep.rcv_next + 1;
        ep.deliver p;
        deliver_run ()
    in
    deliver_run ();
    ep.out (encode_ack ep ~cumulative:ep.rcv_next)
  end

let handle_ack (ep : endpoint) ~(cumulative : int) : unit =
  if cumulative > ep.snd_una && cumulative <= ep.snd_next then begin
    for seq = ep.snd_una to cumulative - 1 do
      Hashtbl.remove ep.unacked seq
    done;
    ep.snd_una <- cumulative;
    pump ep
  end

(* Feed one incoming datagram (possibly lost-order, duplicated, forged). *)
let on_datagram (ep : endpoint) (frame : string) : unit =
  match
    Wire.decode frame (fun d ->
      match Wire.Dec.u8 d with
      | 0 ->
        let seq = Wire.Dec.int d in
        let payload = Wire.Dec.bytes d in
        let tag = Wire.Dec.bytes d in
        `Data (seq, payload, tag)
      | 1 ->
        let cumulative = Wire.Dec.int d in
        let tag = Wire.Dec.bytes d in
        `Ack (cumulative, tag)
      | t -> Wire.fail "Swlink: bad frame tag %d" t)
  with
  | None -> ep.rejected_frames <- ep.rejected_frames + 1
  | Some (`Data (seq, payload, tag)) ->
    if tag = mac ep [ "data"; string_of_int seq; payload ] && seq >= 0 then
      handle_data ep ~seq payload
    else ep.rejected_frames <- ep.rejected_frames + 1
  | Some (`Ack (cumulative, tag)) ->
    if tag = mac ep [ "ack"; string_of_int cumulative ] then
      handle_ack ep ~cumulative
    else ep.rejected_frames <- ep.rejected_frames + 1

let in_flight (ep : endpoint) = Hashtbl.length ep.unacked
let backlog_length (ep : endpoint) = Queue.length ep.backlog
let retransmissions (ep : endpoint) = ep.retransmissions
let rejected_frames (ep : endpoint) = ep.rejected_frames
let duplicate_frames (ep : endpoint) = ep.duplicate_frames
