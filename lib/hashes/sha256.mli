(** SHA-256 (FIPS 180-4), incremental and one-shot. *)

type ctx

val init : unit -> ctx
(** A fresh hashing context. *)

val feed_string : ctx -> string -> unit
(** Absorb the next chunk of input. *)

val finish : ctx -> string
(** Finalize and return the 32-byte digest. The context must not be reused. *)

val digest : string -> string
(** One-shot 32-byte digest. *)

val digest_list : string list -> string
(** Digest of the concatenation, without building it. *)

val hex_of_digest : string -> string
(** Lowercase hex of an arbitrary byte string. *)
