(* SHA-256 (FIPS 180-4). Words are 32-bit values kept in OCaml ints and
   masked after every operation. *)

let mask = 0xFFFFFFFF

let k = [|
  0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
  0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
  0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
  0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
  0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
  0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
  0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
  0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
  0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
  0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
  0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array;       (* 8 state words *)
  buf : Bytes.t;               (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int;         (* total bytes fed *)
}

let init () = {
  h = [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
         0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
  buf = Bytes.create 64;
  buf_len = 0;
  total = 0;
}

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let w = Array.make 64 0

let compress (ctx : ctx) (block : Bytes.t) (off : int) =
  for i = 0 to 15 do
    w.(i) <-
      (Char.code (Bytes.get block (off + 4 * i)) lsl 24)
      lor (Char.code (Bytes.get block (off + 4 * i + 1)) lsl 16)
      lor (Char.code (Bytes.get block (off + 4 * i + 2)) lsl 8)
      lor Char.code (Bytes.get block (off + 4 * i + 3))
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor (w.(i - 15) lsr 3) in
    let s1 = rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor (w.(i - 2) lsr 10) in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + k.(i) + w.(i)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask in
    hh := !g; g := !f; f := !e;
    e := (!d + t1) land mask;
    d := !c; c := !b; b := !a;
    a := (t1 + t2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

let feed_string (ctx : ctx) (s : string) =
  let n = String.length s in
  ctx.total <- ctx.total + n;
  let pos = ref 0 in
  (* Fill a partial buffer first. *)
  if ctx.buf_len > 0 then begin
    let take = min (64 - ctx.buf_len) n in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  let tmp = Bytes.create 64 in
  while n - !pos >= 64 do
    Bytes.blit_string s !pos tmp 0 64;
    compress ctx tmp 0;
    pos := !pos + 64
  done;
  if !pos < n then begin
    Bytes.blit_string s !pos ctx.buf 0 (n - !pos);
    ctx.buf_len <- n - !pos
  end

let finish (ctx : ctx) : string =
  let bit_len = ctx.total * 8 in
  (* Append 0x80, pad with zeros, then 64-bit big-endian length. *)
  let pad_len =
    let r = (ctx.total + 1) mod 64 in
    if r <= 56 then 56 - r else 120 - r
  in
  let tail = Bytes.make (1 + pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail (1 + pad_len + i) (Char.chr ((bit_len lsr (8 * (7 - i))) land 0xff))
  done;
  feed_string ctx (Bytes.to_string tail);
  assert (ctx.buf_len = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out (4 * i + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out (4 * i + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out (4 * i + 3) (Char.chr (v land 0xff))
  done;
  Bytes.to_string out

let digest (s : string) : string =
  let ctx = init () in
  feed_string ctx s;
  finish ctx

let digest_list (parts : string list) : string =
  let ctx = init () in
  List.iter (feed_string ctx) parts;
  finish ctx

let hex_of_digest (d : string) : string =
  let buf = Buffer.create (2 * String.length d) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf
