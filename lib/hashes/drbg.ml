(* A deterministic random byte generator built from SHA-256 in counter mode
   (a simplified Hash_DRBG).  Every piece of randomness in this repository —
   the dealer's key generation, the simulator's jitter, fault injection,
   property-test corpora — flows through a seeded DRBG so that every run is
   reproducible. *)

type t = {
  mutable key : string;    (* 32-byte state *)
  mutable counter : int;
  mutable pool : string;   (* unread bytes from the current block *)
  mutable pool_pos : int;
}

let create ~(seed : string) : t =
  { key = Sha256.digest ("sintra-drbg-v1|" ^ seed); counter = 0; pool = ""; pool_pos = 0 }

let of_int_seed (n : int) : t = create ~seed:(string_of_int n)

let reseed (t : t) (extra : string) =
  t.key <- Sha256.digest_list [ t.key; "|reseed|"; extra ];
  t.counter <- 0;
  t.pool <- "";
  t.pool_pos <- 0

let next_block (t : t) : string =
  let b = Sha256.digest_list [ t.key; "|"; string_of_int t.counter ] in
  t.counter <- t.counter + 1;
  b

let bytes (t : t) (n : int) : string =
  let out = Buffer.create n in
  let remaining = ref n in
  while !remaining > 0 do
    if t.pool_pos >= String.length t.pool then begin
      t.pool <- next_block t;
      t.pool_pos <- 0
    end;
    let take = min !remaining (String.length t.pool - t.pool_pos) in
    Buffer.add_substring out t.pool t.pool_pos take;
    t.pool_pos <- t.pool_pos + take;
    remaining := !remaining - take
  done;
  Buffer.contents out

(* Uniform int in [0, bound) by rejection sampling on 62-bit draws. *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Drbg.int: non-positive bound";
  let draw () =
    let s = bytes t 8 in
    let v = ref 0 in
    String.iter (fun c -> v := ((!v lsl 8) lor Char.code c) land max_int) s;
    !v land max_int
  in
  let limit = max_int - (max_int mod bound) in
  let rec go () =
    let v = draw () in
    if v < limit then v mod bound else go ()
  in
  go ()

let float (t : t) (bound : float) : float =
  let v = int t (1 lsl 53) in
  bound *. (Stdlib.float_of_int v /. Stdlib.float_of_int (1 lsl 53))

let bool (t : t) : bool = int t 2 = 1

(* Derive an independent child generator; used to give each simulated
   component its own stream without cross-talk. *)
let fork (t : t) (label : string) : t =
  create ~seed:(Sha256.hex_of_digest t.key ^ "|fork|" ^ label)

let random_bytes (t : t) : int -> string = fun n -> bytes t n
