(* HMAC (RFC 2104) over SHA-1 or SHA-256. *)

type algo = SHA1 | SHA256

let block_size = 64

let hash algo s =
  match algo with
  | SHA1 -> Sha1.digest s
  | SHA256 -> Sha256.digest s

let mac ~(algo : algo) ~(key : string) (msg : string) : string =
  let key = if String.length key > block_size then hash algo key else key in
  let pad c =
    String.init block_size (fun i ->
      let k = if i < String.length key then Char.code key.[i] else 0 in
      Char.chr (k lxor c))
  in
  let ipad = pad 0x36 and opad = pad 0x5c in
  hash algo (opad ^ hash algo (ipad ^ msg))

let verify ~(algo : algo) ~(key : string) ~(tag : string) (msg : string) : bool =
  (* Constant-time comparison. *)
  let expected = mac ~algo ~key msg in
  if String.length expected <> String.length tag then false
  else begin
    let diff = ref 0 in
    String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code tag.[i])) expected;
    !diff = 0
  end
