(* SHA-1 (FIPS 180-4) — used by SINTRA for link authentication (HMAC-SHA1)
   and as the 160-bit hash inside the threshold schemes, as in the paper. *)

let mask = 0xFFFFFFFF

type ctx = {
  h : int array;
  buf : Bytes.t;
  mutable buf_len : int;
  mutable total : int;
}

let init () = {
  h = [| 0x67452301; 0xEFCDAB89; 0x98BADCFE; 0x10325476; 0xC3D2E1F0 |];
  buf = Bytes.create 64;
  buf_len = 0;
  total = 0;
}

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let w = Array.make 80 0

let compress (ctx : ctx) (block : Bytes.t) (off : int) =
  for i = 0 to 15 do
    w.(i) <-
      (Char.code (Bytes.get block (off + 4 * i)) lsl 24)
      lor (Char.code (Bytes.get block (off + 4 * i + 1)) lsl 16)
      lor (Char.code (Bytes.get block (off + 4 * i + 2)) lsl 8)
      lor Char.code (Bytes.get block (off + 4 * i + 3))
  done;
  for i = 16 to 79 do
    w.(i) <- rotl (w.(i - 3) lxor w.(i - 8) lxor w.(i - 14) lxor w.(i - 16)) 1
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) and e = ref h.(4) in
  for i = 0 to 79 do
    let f, k =
      if i < 20 then (!b land !c) lor (lnot !b land !d), 0x5A827999
      else if i < 40 then !b lxor !c lxor !d, 0x6ED9EBA1
      else if i < 60 then (!b land !c) lor (!b land !d) lor (!c land !d), 0x8F1BBCDC
      else !b lxor !c lxor !d, 0xCA62C1D6
    in
    let f = f land mask in
    let tmp = (rotl !a 5 + f + !e + k + w.(i)) land mask in
    e := !d; d := !c;
    c := rotl !b 30;
    b := !a; a := tmp
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask

let feed_string (ctx : ctx) (s : string) =
  let n = String.length s in
  ctx.total <- ctx.total + n;
  let pos = ref 0 in
  if ctx.buf_len > 0 then begin
    let take = min (64 - ctx.buf_len) n in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  let tmp = Bytes.create 64 in
  while n - !pos >= 64 do
    Bytes.blit_string s !pos tmp 0 64;
    compress ctx tmp 0;
    pos := !pos + 64
  done;
  if !pos < n then begin
    Bytes.blit_string s !pos ctx.buf 0 (n - !pos);
    ctx.buf_len <- n - !pos
  end

let finish (ctx : ctx) : string =
  let bit_len = ctx.total * 8 in
  let pad_len =
    let r = (ctx.total + 1) mod 64 in
    if r <= 56 then 56 - r else 120 - r
  in
  let tail = Bytes.make (1 + pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail (1 + pad_len + i) (Char.chr ((bit_len lsr (8 * (7 - i))) land 0xff))
  done;
  feed_string ctx (Bytes.to_string tail);
  assert (ctx.buf_len = 0);
  let out = Bytes.create 20 in
  for i = 0 to 4 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out (4 * i + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out (4 * i + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out (4 * i + 3) (Char.chr (v land 0xff))
  done;
  Bytes.to_string out

let digest (s : string) : string =
  let ctx = init () in
  feed_string ctx s;
  finish ctx
