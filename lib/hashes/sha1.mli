(** SHA-1 (FIPS 180-4). SINTRA uses SHA-1 for link authentication and as the
    160-bit hash inside its threshold schemes; kept for fidelity to the paper
    (SHA-256 is used where the repo needs a 256-bit PRF). *)

type ctx

val init : unit -> ctx
(** A fresh hashing context. *)

val feed_string : ctx -> string -> unit
(** Absorb the next chunk of input. *)

val finish : ctx -> string
(** Finalize and return the 20-byte digest. The context must not be reused. *)

val digest : string -> string
(** One-shot 20-byte digest. *)
