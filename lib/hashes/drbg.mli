(** Deterministic random byte generator (SHA-256 in counter mode).

    Every piece of randomness in the repository flows through a seeded DRBG,
    so dealer key generation, simulated network jitter, fault injection and
    test corpora are all reproducible run-to-run. *)

type t

val create : seed:string -> t
(** A fresh generator; equal seeds yield identical output streams. *)

val of_int_seed : int -> t
(** {!create} with the decimal rendering of the seed — for callers that
    derive streams from party indices or counters. *)

val reseed : t -> string -> unit
(** Mix extra entropy into the state and reset the output stream. *)

val bytes : t -> int -> string
(** [bytes t n] draws the next [n] bytes. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [[0, bound)]. *)

val bool : t -> bool
(** A uniform coin flip (one byte consumed). *)

val fork : t -> string -> t
(** [fork t label] derives an independent child stream.  Forks are keyed by
    the parent's {e current} state and [label] only, so use distinct labels
    for distinct children. *)

val random_bytes : t -> int -> string
(** [random_bytes t] as a partially-applied byte source, in the shape the
    [Bignum.Prime] generators expect. *)
