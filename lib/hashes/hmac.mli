(** HMAC (RFC 2104) over SHA-1 or SHA-256.  SINTRA authenticates every
    point-to-point link with HMAC under a per-pair symmetric key from the
    dealer (the paper uses HMAC-SHA1 with 128-bit keys). *)

type algo = SHA1 | SHA256

val mac : algo:algo -> key:string -> string -> string
(** [mac ~algo ~key msg] is the authentication tag (20 or 32 bytes). *)

val verify : algo:algo -> key:string -> tag:string -> string -> bool
(** Constant-time tag check. *)
