(* Adversarial schedules: a concrete, replayable list of mutations applied
   to one simulation run.

   A schedule is drawn up front from a per-run DRBG (so the whole run is a
   pure function of its seed), can be printed and re-parsed exactly (the
   counterexample-reproduction line), and can be shrunk by removing
   mutations.  Frame-indexed mutations count every message interception
   globally; link mutations count frames per directed pair; crash/recover
   are virtual-time events.  All numeric fields are integers (milliseconds
   for times) so the string round-trip is exact. *)

type mutation =
  | Delay_frame of int * int       (* global frame index, extra ms *)
  | Dup_frame of int               (* deliver the frame twice *)
  | Replay_frame of int * int      (* re-inject a copy after extra ms *)
  | Drop_link of int * int * int   (* src, dst, from the kth frame on the link *)
  | Crash_at of int * int          (* party, virtual ms *)
  | Recover_at of int * int        (* party, virtual ms *)
  | Byz_equivocate of int          (* party runs an equivocating harness *)
  | Byz_selective of int           (* party pseudo-randomly omits sends *)

type t = mutation list

(* --- string codec (the --mutations syntax) --- *)

let mutation_to_string (m : mutation) : string =
  match m with
  | Delay_frame (f, ms) -> Printf.sprintf "delay@%d:%d" f ms
  | Dup_frame f -> Printf.sprintf "dup@%d" f
  | Replay_frame (f, ms) -> Printf.sprintf "replay@%d:%d" f ms
  | Drop_link (p, q, k) -> Printf.sprintf "drop@%d>%d:%d" p q k
  | Crash_at (p, ms) -> Printf.sprintf "crash@%d:%d" p ms
  | Recover_at (p, ms) -> Printf.sprintf "recover@%d:%d" p ms
  | Byz_equivocate p -> Printf.sprintf "byz@%d:equiv" p
  | Byz_selective p -> Printf.sprintf "byz@%d:sel" p

let to_string (s : t) : string =
  String.concat "," (List.map mutation_to_string s)

let mutation_of_string (s : string) : mutation option =
  match String.index_opt s '@' with
  | None -> None
  | Some i ->
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let two (sep : char) (str : string) : (string * string) option =
      match String.index_opt str sep with
      | None -> None
      | Some j ->
        Some
          ( String.sub str 0 j,
            String.sub str (j + 1) (String.length str - j - 1) )
    in
    let int2 (k : int -> int -> mutation) : mutation option =
      match two ':' rest with
      | None -> None
      | Some (a, b) ->
        (match (int_of_string_opt a, int_of_string_opt b) with
         | Some x, Some y -> Some (k x y)
         | _, _ -> None)
    in
    (match kind with
     | "delay" -> int2 (fun f ms -> Delay_frame (f, ms))
     | "dup" -> Option.map (fun f -> Dup_frame f) (int_of_string_opt rest)
     | "replay" -> int2 (fun f ms -> Replay_frame (f, ms))
     | "drop" ->
       (match two '>' rest with
        | None -> None
        | Some (p, qk) ->
          (match two ':' qk with
           | None -> None
           | Some (q, k) ->
             (match
                (int_of_string_opt p, int_of_string_opt q, int_of_string_opt k)
              with
              | Some p, Some q, Some k -> Some (Drop_link (p, q, k))
              | _, _, _ -> None)))
     | "crash" -> int2 (fun p ms -> Crash_at (p, ms))
     | "recover" -> int2 (fun p ms -> Recover_at (p, ms))
     | "byz" ->
       (match two ':' rest with
        | Some (p, "equiv") ->
          Option.map (fun p -> Byz_equivocate p) (int_of_string_opt p)
        | Some (p, "sel") ->
          Option.map (fun p -> Byz_selective p) (int_of_string_opt p)
        | Some _ | None -> None)
     | _ -> None)

let of_string (s : string) : t option =
  let s = String.trim s in
  if s = "" then Some []
  else
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | part :: rest ->
        (match mutation_of_string (String.trim part) with
         | Some m -> go (m :: acc) rest
         | None -> None)
    in
    go [] (String.split_on_char ',' s)

(* --- queries --- *)

let dedup_sorted (xs : int list) : int list = List.sort_uniq Int.compare xs

let degraded (s : t) : int list =
  dedup_sorted
    (List.filter_map
       (fun m ->
         match m with
         | Drop_link (p, _, _) | Crash_at (p, _) | Byz_equivocate p
         | Byz_selective p ->
           Some p
         | Delay_frame _ | Dup_frame _ | Replay_frame _ | Recover_at _ -> None)
       s)

let equivocators (s : t) : int list =
  dedup_sorted
    (List.filter_map
       (fun m -> match m with Byz_equivocate p -> Some p | _ -> None)
       s)

let selective (s : t) : int list =
  dedup_sorted
    (List.filter_map
       (fun m -> match m with Byz_selective p -> Some p | _ -> None)
       s)

let crashes (s : t) : (int * float) list =
  List.filter_map
    (fun m ->
      match m with
      | Crash_at (p, ms) -> Some (p, float_of_int ms /. 1000.0)
      | _ -> None)
    s

let recovers (s : t) : (int * float) list =
  List.filter_map
    (fun m ->
      match m with
      | Recover_at (p, ms) -> Some (p, float_of_int ms /. 1000.0)
      | _ -> None)
    s

(* --- generation --- *)

(* Draw [k] distinct party indices < n. *)
let distinct_parties (drbg : Hashes.Drbg.t) ~(n : int) (k : int) : int list =
  let picked = ref [] in
  let tries = ref 0 in
  while List.length !picked < k && !tries < 64 do
    incr tries;
    let p = Hashes.Drbg.int drbg n in
    if not (List.mem p !picked) then picked := p :: !picked
  done;
  List.rev !picked

let generate ~(drbg : Hashes.Drbg.t) ~(n : int) ~(max_faulty : int)
    ~(allow_equiv : bool) : t =
  (* Benign scheduling noise first: it may hit any frame because it never
     destroys a message, so every liveness guarantee survives it. *)
  let n_benign = Hashes.Drbg.int drbg 9 in
  let benign = ref [] in
  for _ = 1 to n_benign do
    let frame = Hashes.Drbg.int drbg 400 in
    let ms = 1 + Hashes.Drbg.int drbg 4000 in
    let m =
      match Hashes.Drbg.int drbg 3 with
      | 0 -> Delay_frame (frame, ms)
      | 1 -> Dup_frame frame
      | _ -> Replay_frame (frame, ms)
    in
    benign := m :: !benign
  done;
  (* Destructive behaviour is confined to a "degraded" set of at most
     [max_faulty] parties, so the protocols' fault bound t is respected and
     the oracles can reason about the never-degraded majority. *)
  let n_deg = Hashes.Drbg.int drbg (max_faulty + 1) in
  let deg = distinct_parties drbg ~n n_deg in
  let destructive =
    List.concat_map
      (fun p ->
        match Hashes.Drbg.int drbg (if allow_equiv then 5 else 4) with
        | 0 ->
          (* crash forever *)
          [ Crash_at (p, 100 + Hashes.Drbg.int drbg 20000) ]
        | 1 ->
          (* crash then recover *)
          let at = 100 + Hashes.Drbg.int drbg 15000 in
          let back = at + 100 + Hashes.Drbg.int drbg 15000 in
          [ Crash_at (p, at); Recover_at (p, back) ]
        | 2 ->
          (* link failure: silently lose this party's frames to one peer *)
          let q = (p + 1 + Hashes.Drbg.int drbg (n - 1)) mod n in
          [ Drop_link (p, q, Hashes.Drbg.int drbg 12) ]
        | 3 -> [ Byz_selective p ]
        | _ -> [ Byz_equivocate p ])
      deg
  in
  List.rev_append !benign destructive

(* --- application to a cluster --- *)

let arm (c : Sintra.Cluster.t) ~(run_seed : string) (s : t) : unit =
  List.iter
    (fun (p, at) ->
      Sintra.Cluster.at c ~time:at (fun () -> Sintra.Cluster.crash c p))
    (crashes s);
  List.iter
    (fun (p, at) ->
      Sintra.Cluster.at c ~time:at (fun () -> Sintra.Cluster.recover c p))
    (recovers s);
  let delay_ms : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let dup : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let replay_ms : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let drop_from : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun m ->
      match m with
      | Delay_frame (f, ms) ->
        if not (Hashtbl.mem delay_ms f) then Hashtbl.replace delay_ms f ms
      | Dup_frame f -> Hashtbl.replace dup f ()
      | Replay_frame (f, ms) ->
        if not (Hashtbl.mem replay_ms f) then Hashtbl.replace replay_ms f ms
      | Drop_link (p, q, k) ->
        let k' =
          match Hashtbl.find_opt drop_from (p, q) with
          | Some k0 -> min k0 k
          | None -> k
        in
        Hashtbl.replace drop_from (p, q) k'
      | Crash_at _ | Recover_at _ | Byz_equivocate _ | Byz_selective _ -> ())
    s;
  (* Each selectively-sending party omits roughly a third of its frames,
     chosen by a DRBG derived from the run seed — deterministic, and
     independent of the schedule-generation draws so a parsed --mutations
     list replays identically. *)
  let sel : (int, Hashes.Drbg.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun p ->
      Hashtbl.replace sel p
        (Hashes.Drbg.create ~seed:(Printf.sprintf "sel|%s|%d" run_seed p)))
    (selective s);
  let frame = ref 0 in
  let link_count : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  Sintra.Cluster.set_intercept c (fun ~src ~dst _payload ->
    let f = !frame in
    incr frame;
    let lk =
      match Hashtbl.find_opt link_count (src, dst) with Some k -> k | None -> 0
    in
    Hashtbl.replace link_count (src, dst) (lk + 1);
    let link_dropped =
      match Hashtbl.find_opt drop_from (src, dst) with
      | Some k -> lk >= k
      | None -> false
    in
    let sel_dropped =
      match Hashtbl.find_opt sel src with
      | Some d -> Hashes.Drbg.int d 3 = 0
      | None -> false
    in
    if link_dropped || sel_dropped then Sim.Net.Drop
    else
      match Hashtbl.find_opt delay_ms f with
      | Some ms -> Sim.Net.Delay (float_of_int ms /. 1000.0)
      | None ->
        (match Hashtbl.find_opt replay_ms f with
         | Some ms -> Sim.Net.Replay (float_of_int ms /. 1000.0)
         | None -> if Hashtbl.mem dup f then Sim.Net.Duplicate else Sim.Net.Deliver))
