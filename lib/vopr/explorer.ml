(* The seed-sweeping explorer: derive a schedule per seed, run the
   workload, check the oracles, and on failure shrink the schedule to a
   minimal failing mutation list (ddmin over the mutation list, re-running
   the deterministic workload per candidate).

   Everything is replayable: run k of a sweep uses run seed
   [base ^ "#" ^ k], the schedule DRBG is seeded ["sched|" ^ run_seed],
   and {!repro} prints the exact CLI line that re-executes one failing
   run with its (shrunk) schedule. *)

type runner = seed:string -> Schedule.t -> Oracle.obs

type fail = {
  oracle : string;
  reason : string;
}

type outcome = Clean | Failed of fail

let check (oracles : Oracle.oracle list) (obs : Oracle.obs) : outcome =
  match
    List.find_map
      (fun o ->
        match o.Oracle.check obs with
        | Oracle.Pass -> None
        | Oracle.Fail why -> Some { oracle = o.Oracle.name; reason = why })
      oracles
  with
  | Some f -> Failed f
  | None -> Clean

let eval ~(runner : runner) ~(oracles : Oracle.oracle list) ~(seed : string)
    (sched : Schedule.t) : outcome =
  match runner ~seed sched with
  | obs -> check oracles obs
  | exception Sintra.Invariant.Violation why ->
    Failed { oracle = "invariant"; reason = why }
  | exception e -> Failed { oracle = "exception"; reason = Printexc.to_string e }

(* --- counterexample shrinking (ddmin over the mutation list) --- *)

let split_chunks (g : int) (l : 'a list) : 'a list list =
  let len = List.length l in
  let base = len / g and extra = len mod g in
  let rec go i rest acc =
    if i >= g then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let rec take k l =
        if k = 0 then ([], l)
        else
          match l with
          | [] -> ([], [])
          | x :: r ->
            let taken, rest = take (k - 1) r in
            (x :: taken, rest)
      in
      let chunk, rest = take size rest in
      go (i + 1) rest (chunk :: acc)
  in
  go 0 l []

let shrink ~(runner : runner) ~(oracles : Oracle.oracle list) ~(seed : string)
    ~(budget : int) (sched : Schedule.t) (orig : fail) :
    Schedule.t * fail * int =
  let runs = ref 0 in
  let fails (s : Schedule.t) : fail option =
    if !runs >= budget then None
    else begin
      incr runs;
      match eval ~runner ~oracles ~seed s with
      | Clean -> None
      | Failed f -> Some f
    end
  in
  match fails [] with
  | Some f -> ([], f, !runs)
  | None ->
    let rec go (current : Schedule.t) (cur : fail) (g : int) :
        Schedule.t * fail =
      let len = List.length current in
      if len <= 1 || !runs >= budget then (current, cur)
      else begin
        let g = min g len in
        let chunks = split_chunks g current in
        let rec try_without (before : Schedule.t list) (after : Schedule.t list)
            : (Schedule.t * fail) option =
          match after with
          | [] -> None
          | chunk :: rest ->
            let candidate = List.concat (List.rev_append before rest) in
            (match fails candidate with
             | Some f -> Some (candidate, f)
             | None -> try_without (chunk :: before) rest)
        in
        match try_without [] chunks with
        | Some (candidate, f) -> go candidate f (Stdlib.max (g - 1) 2)
        | None -> if g >= len then (current, cur) else go current cur (2 * g)
      end
    in
    let minimal, f = go sched orig 2 in
    (minimal, f, !runs)

(* --- the sweep --- *)

type failure = {
  index : int;
  run_seed : string;
  schedule : Schedule.t;
  outcome : fail;
  shrunk : Schedule.t;
  shrunk_outcome : fail;
  shrink_runs : int;
}

type report = {
  base_seed : string;
  runs : int;
  failures : failure list;
}

let run_seed_of ~(base : string) (k : int) : string =
  base ^ "#" ^ string_of_int k

let schedule_of ~(run_seed : string) ~(n : int) ~(max_faulty : int)
    ~(allow_equiv : bool) : Schedule.t =
  let drbg = Hashes.Drbg.create ~seed:("sched|" ^ run_seed) in
  Schedule.generate ~drbg ~n ~max_faulty ~allow_equiv

let explore ?(progress : (int -> unit) option) ?(max_failures = 1)
    ?(shrink_budget = 200) ~(runner : runner)
    ~(oracles : Oracle.oracle list)
    ~(generate : run_seed:string -> Schedule.t) ~(seed : string)
    ~(seeds : int) () : report =
  let failures = ref [] in
  let n_failures = ref 0 in
  let runs = ref 0 in
  let k = ref 0 in
  let stop = ref false in
  while (not !stop) && !k < seeds do
    (match progress with Some f -> f !k | None -> ());
    let run_seed = run_seed_of ~base:seed !k in
    let sched = generate ~run_seed in
    incr runs;
    (match eval ~runner ~oracles ~seed:run_seed sched with
     | Clean -> ()
     | Failed f ->
       let shrunk, shrunk_outcome, shrink_runs =
         shrink ~runner ~oracles ~seed:run_seed ~budget:shrink_budget sched f
       in
       runs := !runs + shrink_runs;
       failures :=
         {
           index = !k;
           run_seed;
           schedule = sched;
           outcome = f;
           shrunk;
           shrunk_outcome;
           shrink_runs;
         }
         :: !failures;
       incr n_failures;
       if !n_failures >= max_failures then stop := true);
    incr k
  done;
  { base_seed = seed; runs = !runs; failures = List.rev !failures }

let repro ~(workload : Oracle.kind) ~(base_seed : string) (f : failure) :
    string =
  Printf.sprintf
    "sintra_sim explore --workload %s --seed %s --index %d --mutations '%s'"
    (Oracle.kind_to_string workload) base_seed f.index
    (Schedule.to_string f.shrunk)
