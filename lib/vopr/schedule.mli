(** Adversarial schedules: a concrete, replayable list of mutations applied
    to one simulation run.

    A schedule is drawn up front from a per-run DRBG, prints to (and parses
    back from) the exact [--mutations] syntax, and shrinks by removing
    mutations.  Destructive mutations (drops, crashes, Byzantine
    behaviours) are confined to at most [t] parties by {!generate}, so the
    oracle library can reason about the never-degraded majority. *)

type mutation =
  | Delay_frame of int * int
      (** [(frame, ms)]: deliver the frame [ms] milliseconds late.  Frames
          are counted globally, in interception order. *)
  | Dup_frame of int  (** deliver the frame twice, back to back *)
  | Replay_frame of int * int
      (** [(frame, ms)]: deliver normally, re-inject a copy [ms] later *)
  | Drop_link of int * int * int
      (** [(src, dst, k)]: silently lose [src]'s frames to [dst] from the
          [k]th frame on that link onwards (a one-way link failure) *)
  | Crash_at of int * int  (** [(party, ms)]: network-level crash *)
  | Recover_at of int * int  (** [(party, ms)]: undo an earlier crash *)
  | Byz_equivocate of int
      (** the party runs an equivocating Byzantine harness instead of an
          honest instance (workload-dependent) *)
  | Byz_selective of int
      (** the party pseudo-randomly omits about a third of its sends *)

type t = mutation list

val mutation_to_string : mutation -> string
(** One mutation in [--mutations] syntax, e.g. ["delay@17:250"]. *)

val to_string : t -> string
(** Comma-joined {!mutation_to_string}; the empty schedule is [""]. *)

val of_string : string -> t option
(** Inverse of {!to_string}; [None] on any malformed mutation. *)

val degraded : t -> int list
(** Sorted distinct parties subject to destructive mutations (drops,
    crashes, Byzantine behaviour).  Never-degraded parties keep every
    protocol guarantee. *)

val equivocators : t -> int list
(** Sorted distinct parties with a [Byz_equivocate] mutation. *)

val selective : t -> int list
(** Sorted distinct parties with a [Byz_selective] mutation. *)

val crashes : t -> (int * float) list
(** [(party, virtual seconds)] for every [Crash_at]. *)

val recovers : t -> (int * float) list
(** [(party, virtual seconds)] for every [Recover_at]. *)

val generate :
  drbg:Hashes.Drbg.t -> n:int -> max_faulty:int -> allow_equiv:bool -> t
(** Draw a schedule: a burst of benign scheduling noise (delay, duplicate,
    replay — any frame), plus destructive behaviour for a random set of at
    most [max_faulty] parties.  [allow_equiv] enables [Byz_equivocate]
    for workloads that support an equivocating-party harness. *)

val arm : Sintra.Cluster.t -> run_seed:string -> t -> unit
(** Install the schedule on a cluster: schedules the crash/recover events
    and sets the network intercept implementing the frame and link
    mutations.  [run_seed] seeds the [Byz_selective] omission pattern, so
    a parsed [--mutations] list replays identically.  [Byz_equivocate] is
    not handled here — the workload substitutes the harness at setup. *)
