(** Workloads: one seeded, schedule-mutated run of a protocol family,
    producing the {!Oracle.obs} record the oracles consume.

    Each run builds a fresh 4-party cluster (n = 4, t = 1, invariant
    checking on) whose engine is seeded from the run seed, installs the
    schedule's mutations, drives the chosen protocol with a fixed message
    pattern, and collects what every party observed.  Dealer key material
    is memoized across runs — it is seed-independent — so a sweep pays the
    key-generation cost once. *)

(** A minimal send-capable handle, so planted-bug tests can substitute a
    deliberately broken channel implementation. *)
type chan = { send : string -> unit  (** submit one payload *) }

(** Planted-bug injection points, exercised by the self-tests to prove each
    oracle actually fires.  {!no_tweaks} leaves the real protocols in
    place. *)
type tweaks = {
  make_channel :
    (Sintra.Runtime.t -> party:int ->
     on_deliver:(sender:int -> string -> unit) -> chan)
      option;
      (** substitute the channel implementation (channel workloads only) *)
  wrap_deliver : (party:int -> (int * string -> unit) -> int * string -> unit) option;
      (** wrap the per-party delivery recorder, e.g. to duplicate or
          reorder observations *)
  unanimous : bool option;
      (** force every honest binary-agreement proposal to this value *)
  flip_decisions : bool;
      (** record the negated/garbled decision, simulating a protocol that
          decides outside the proposal set *)
  spurious_flag : bool;
      (** make party 0 flag honest party 1 before the run starts *)
}

val no_tweaks : tweaks
(** All injection points disabled: the honest production protocols. *)

val byz_supported : Oracle.kind -> bool
(** Whether an equivocating-party harness exists for the workload, i.e.
    whether {!Schedule.generate} may draw [Byz_equivocate] for it. *)

val run :
  ?tweaks:tweaks -> ?until:float -> ?max_events:int -> kind:Oracle.kind ->
  seed:string -> Schedule.t -> Oracle.obs
(** Execute one run: a pure function of [(kind, tweaks, seed, schedule)].
    [until] (default 300 virtual seconds) and [max_events] (default
    400_000) bound the simulation; a run still busy at the bound reports
    [quiesced = false] and fails the liveness oracle. *)
