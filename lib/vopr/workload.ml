(* Workloads: one seeded, schedule-mutated run of a protocol family over a
   fresh 4-party cluster, producing the observation record the oracles
   consume.

   Dealer key material is memoized (it dominates start-up cost and is
   independent of the run seed); the engine — and with it every latency
   draw and protocol coin — is seeded per run, so a run is a pure function
   of [(kind, tweaks, seed, schedule)].

   Corrupted parties (Byz_equivocate mutations) are replaced by the
   Byzantine harnesses from {!Sintra.Faults}; all other mutations act at
   the network layer via {!Schedule.arm}. *)

open Sintra

type chan = { send : string -> unit }

type tweaks = {
  make_channel :
    (Runtime.t -> party:int -> on_deliver:(sender:int -> string -> unit) ->
     chan)
      option;
  wrap_deliver : (party:int -> (int * string -> unit) -> int * string -> unit) option;
  unanimous : bool option;
  flip_decisions : bool;
  spurious_flag : bool;
}

let no_tweaks : tweaks =
  {
    make_channel = None;
    wrap_deliver = None;
    unanimous = None;
    flip_decisions = false;
    spurious_flag = false;
  }

let byz_supported (k : Oracle.kind) : bool =
  match k with
  | Oracle.Reliable | Oracle.Consistent | Oracle.Aba | Oracle.Amortized ->
    true
  | Oracle.Mvba | Oracle.Atomic | Oracle.Secure | Oracle.Throughput
  | Oracle.Pipeline | Oracle.Durable ->
    false

(* Key material is independent of the run seed; share it across the sweep. *)
let dealer_cache : (string, Dealer.t) Hashtbl.t = Hashtbl.create 4

let make_cluster ?max_batch ~(run_seed : string) ~(n : int) ~(t : int) () :
    Cluster.t =
  let cfg = Config.test ~n ~t ?max_batch ~check_invariants:true () in
  let topo = Sim.Topology.uniform ~count:n () in
  let key = Printf.sprintf "%d|%d" n t in
  let dealer =
    match Hashtbl.find_opt dealer_cache key with
    | Some d -> d
    | None ->
      let d = Dealer.deal ~seed:"vopr-dealer" cfg in
      Hashtbl.replace dealer_cache key d;
      d
  in
  let engine = Sim.Engine.create ~seed:("engine|" ^ run_seed) () in
  let net =
    Sim.Net.create ~engine ~topo ~mac_keys:(Dealer.net_mac_keys dealer)
  in
  let runtimes =
    Array.init n (fun i ->
      Runtime.create ~engine ~net ~cfg ~keys:dealer.Dealer.parties.(i))
  in
  { Cluster.engine; net; cfg; dealer; runtimes }

(* Broadcast_channel frames payloads with a leading 0x01; the Byzantine
   sender harnesses speak the inner-instance wire format directly. *)
let framed (s : string) : string = "\x01" ^ s

let run ?(tweaks = no_tweaks) ?(until = 300.0) ?(max_events = 400_000)
    ~(kind : Oracle.kind) ~(seed : string) (sched : Schedule.t) : Oracle.obs =
  let n = 4 and t = 1 in
  (* The pipeline workload caps vectors low so its staggered waves spread
     over several concurrent rounds instead of one big batch; the durable
     workload does the same so its scripted power-fail lands with several
     rounds on disk. *)
  let max_batch =
    match kind with
    | Oracle.Pipeline -> Some 6
    | Oracle.Durable -> Some 8
    | _ -> None
  in
  let c = make_cluster ?max_batch ~run_seed:seed ~n ~t () in
  (* The amortized-crypto workload layers a deterministic retransmit storm
     over the generated schedule: every 4th frame duplicated, every 4th+2
     frame replayed out of FIFO order.  Dups and replays re-present
     already-verified echo shares and closings, so the verified-share cache
     and the batch verifier absorb them; on a frame collision Schedule.arm
     keeps the generated schedule's entry (it comes first). *)
  let sched =
    if kind = Oracle.Amortized then
      sched
      @ List.concat
          (List.init 60 (fun i ->
             [ Schedule.Dup_frame (4 * i);
               Schedule.Replay_frame ((4 * i) + 2, 300 + (17 * i mod 900)) ]))
    else sched
  in
  let corrupted =
    if byz_supported kind then Schedule.equivocators sched else []
  in
  let honest = List.filter (fun p -> not (List.mem p corrupted)) (List.init n Fun.id) in
  Schedule.arm c ~run_seed:seed sched;
  let sent : (int * string) list ref = ref [] in
  (* Durable workload only: every controller ever attached (restarts make
     several per party), inspected after the run — a party that adopted a
     peer snapshot jumped over history, so its app log legitimately has
     gaps and the full-history oracles must not hold it to totality. *)
  let durables : (int * Durable.t) list ref = ref [] in
  let delivered : (int * string) list array = Array.make n [] in
  let decisions : string option array = Array.make n None in
  let proposals : string option array = Array.make n None in
  let recorder (p : int) : int * string -> unit =
    let base (entry : int * string) = delivered.(p) <- entry :: delivered.(p) in
    match tweaks.wrap_deliver with Some w -> w ~party:p base | None -> base
  in
  if tweaks.spurious_flag then
    Invariant.flag (Cluster.runtime c 0).Runtime.inv ~offender:1
      "vopr planted spurious flag";
  (match kind with
   | Oracle.Reliable | Oracle.Consistent | Oracle.Atomic | Oracle.Secure
   | Oracle.Throughput | Oracle.Pipeline | Oracle.Amortized
   | Oracle.Durable ->
     let chans : chan option array = Array.make n None in
     (* Durable workload state: per-party in-memory devices held OUTSIDE
        the runtimes (a disk survives a power failure), and per-party
        dedup sets modelling an idempotent application — replaying the
        log after a restart re-delivers rounds the app already saw. *)
     let devs = Array.init n (fun _ -> Store.Device.mem ()) in
     let seen : (int * string, unit) Hashtbl.t array =
       Array.init n (fun _ -> Hashtbl.create 64)
     in
     List.iter
       (fun p ->
         let rt = Cluster.runtime c p in
         let record = recorder p in
         let on_deliver ~sender m = record (sender, m) in
         let ch =
           match tweaks.make_channel with
           | Some mk -> mk rt ~party:p ~on_deliver
           | None ->
             (match kind with
              | Oracle.Reliable ->
                let ch = Reliable_channel.create rt ~pid:"vopr" ~on_deliver () in
                { send = (fun m -> Reliable_channel.send ch m) }
              | Oracle.Consistent | Oracle.Amortized ->
                let ch =
                  Consistent_channel.create rt ~pid:"vopr" ~on_deliver ()
                in
                { send = (fun m -> Consistent_channel.send ch m) }
              | Oracle.Atomic | Oracle.Throughput | Oracle.Pipeline ->
                let ch = Atomic_channel.create rt ~pid:"vopr" ~on_deliver () in
                { send = (fun m -> Atomic_channel.send ch m) }
              | Oracle.Durable ->
                (* Atomic channel + the durability layer over the party's
                   device.  [cur] survives the scripted power-fail below;
                   the rebuild hook re-creates channel and controller from
                   the same device, exactly as a restarted process would. *)
                let cur = ref None in
                let make () =
                  let ch =
                    Atomic_channel.create rt ~pid:"vopr"
                      ~on_deliver:(fun ~sender m ->
                        if not (Hashtbl.mem seen.(p) (sender, m)) then begin
                          Hashtbl.add seen.(p) (sender, m) ();
                          record (sender, m)
                        end)
                      ()
                  in
                  let d =
                    Durable.attach rt ~chan:ch ~pid:"vopr" ~dev:devs.(p)
                      ~interval:2 ()
                  in
                  durables := (p, d) :: !durables;
                  cur := Some ch
                in
                make ();
                Runtime.on_rebuild rt make;
                { send =
                    (fun m ->
                      match !cur with
                      | Some ch -> Atomic_channel.send ch m
                      | None -> ()) }
              | Oracle.Secure ->
                let ch =
                  Secure_atomic_channel.create rt ~pid:"vopr" ~on_deliver ()
                in
                { send = (fun m -> Secure_atomic_channel.send ch m) }
              | Oracle.Aba | Oracle.Mvba -> { send = (fun _ -> ()) })
         in
         chans.(p) <- Some ch)
       honest;
     (* Two payloads per honest party, one burst at t=0 and one at t=2
        virtual seconds, so destructive mutations land mid-traffic.  The
        throughput workload sends four-payload bursts instead, so decided
        batches carry multi-item vectors and the oracles check the
        batched delivery path (deterministic union order, batch-wide
        catch-up) under the same adversarial schedules. *)
     let times =
       match kind with
       | Oracle.Throughput -> [ 0.0; 0.0; 0.0; 0.0; 2.0; 2.0; 2.0; 2.0 ]
       | Oracle.Pipeline ->
         (* staggered waves: fresh payloads arrive while earlier rounds are
            still in flight, keeping several rounds open concurrently *)
         [ 0.0; 0.0; 0.3; 0.6; 0.9; 2.0 ]
       | Oracle.Durable ->
         (* waves bracketing the scripted power-fail window (1.0..2.5):
            history lands on disk before the crash, traffic continues
            while party 3 is down, and a final wave exercises ordering
            after its restart-from-disk *)
         [ 0.0; 0.5; 2.0; 3.0 ]
       | _ -> [ 0.0; 2.0 ]
     in
     List.iter
       (fun p ->
         List.iteri
           (fun j time ->
             let payload = Printf.sprintf "p%d.m%d" p j in
             let submit () =
               Cluster.inject c p (fun () ->
                 match chans.(p) with
                 | Some ch ->
                   sent := (p, payload) :: !sent;
                   ch.send payload
                 | None -> ())
             in
             if time <= 0.0 then submit ()
             else Cluster.at c ~time submit)
           times)
       honest;
     List.iter
       (fun p ->
         let ipid = Printf.sprintf "vopr/%d.0" p in
         match kind with
         | Oracle.Consistent ->
           (* The closing needs echo_quorum - 1 = 2 honest shares for a. *)
           let to_a =
             match honest with q0 :: q1 :: _ -> [ q0; q1 ] | rest -> rest
           in
           Faults.equivocating_cbc_sender c ~party:p ~pid:ipid ~to_a
             ~a:(framed "equiv-a") ~b:(framed "equiv-b")
         | Oracle.Amortized ->
           (* Answer every honest sender's SEND — both instances — with a
              well-formed-but-invalid echo share: each sender's echo batch
              then carries a bad share for Batch bisection to isolate. *)
           let pids =
             List.concat_map
               (fun q ->
                 [ Printf.sprintf "vopr/%d.0" q; Printf.sprintf "vopr/%d.1" q ])
               honest
           in
           Faults.bad_share_cbc_responder c ~party:p ~pids
         | Oracle.Reliable | Oracle.Atomic | Oracle.Secure | Oracle.Aba
         | Oracle.Mvba | Oracle.Throughput | Oracle.Pipeline
         | Oracle.Durable ->
           let to_a = match honest with q0 :: _ -> [ q0 ] | [] -> [] in
           Faults.equivocate_send c ~party:p ~pid:ipid ~to_a
             ~a:(framed "equiv-a") ~b:(framed "equiv-b"))
       corrupted;
     (* The durable workload's signature event: a full power failure of
        party 3 — process state AND volatile protocol state lost, only the
        device survives — followed by a restart that restores from disk
        and catches up.  [Runtime.crash] (not the schedule's net-level
        [Cluster.crash]) so handlers and orphans really are discarded. *)
     if kind = Oracle.Durable then begin
       let rt3 = Cluster.runtime c 3 in
       Cluster.at c ~time:1.0 (fun () -> Runtime.crash rt3);
       Cluster.at c ~time:2.5 (fun () -> Runtime.recover rt3)
     end
   | Oracle.Aba ->
     let prop_drbg = Hashes.Drbg.create ~seed:("prop|" ^ seed) in
     List.iter
       (fun p ->
         let rt = Cluster.runtime c p in
         let aba =
           Binary_agreement.create rt ~pid:"vopr-aba"
             ~on_decide:(fun v _proof ->
               let v = if tweaks.flip_decisions then not v else v in
               decisions.(p) <- Some (string_of_bool v))
         in
         let v =
           match tweaks.unanimous with
           | Some u -> u
           | None -> Hashes.Drbg.bool prop_drbg
         in
         Cluster.inject c p (fun () ->
           proposals.(p) <- Some (string_of_bool v);
           Binary_agreement.propose aba v))
       honest;
     List.iter
       (fun p ->
         let to_true = match honest with q0 :: _ -> [ q0 ] | [] -> [] in
         Faults.equivocating_aba c ~party:p ~pid:"vopr-aba" ~to_true)
       corrupted
   | Oracle.Mvba ->
     List.iter
       (fun p ->
         let rt = Cluster.runtime c p in
         let ag =
           Array_agreement.create rt ~pid:"vopr-mvba"
             ~validator:(fun _ -> true)
             ~on_decide:(fun v ->
               decisions.(p) <-
                 Some (if tweaks.flip_decisions then v ^ "!" else v))
         in
         let v = Printf.sprintf "mv%d" p in
         Cluster.inject c p (fun () ->
           proposals.(p) <- Some v;
           Array_agreement.propose ag v))
       honest);
  let events = Cluster.run ~until ~max_events c in
  {
    Oracle.kind;
    n;
    t;
    degraded =
      (* The scripted power-fail makes party 3 a degraded party for the
         oracles: safety is still demanded of it, liveness is not.  So is
         any party that adopted a peer snapshot — state transfer jumps
         over history by design, so its app log has gaps and cannot be
         held to totality or position-wise consistency. *)
      (let d = Schedule.degraded sched in
       let d =
         if kind = Oracle.Durable && not (List.mem 3 d) then d @ [ 3 ] else d
       in
       let jumped =
         List.filter_map
           (fun (p, dur) ->
             if Durable.snapshots_adopted dur > 0 && not (List.mem p d) then
               Some p
             else None)
           !durables
       in
       d @ List.sort_uniq compare jumped);
    corrupted;
    sent = List.rev !sent;
    delivered = Array.map List.rev delivered;
    decisions;
    proposals;
    flagged =
      Array.init n (fun p ->
        Invariant.flagged (Cluster.runtime c p).Runtime.inv);
    quiesced = Sim.Engine.pending c.Cluster.engine = 0;
    events;
    vtime = Cluster.now c;
  }
