(** The seed-sweeping schedule explorer with counterexample shrinking.

    For each seed index [k] in a sweep, the run seed is
    [base ^ "#" ^ string_of_int k]; a schedule is derived from a DRBG
    seeded ["sched|" ^ run_seed], the workload runs under it, and the
    oracle suite judges the result.  On failure, the schedule is shrunk by
    delta debugging (ddmin over the mutation list, re-running the
    deterministic workload for each candidate) to a minimal failing
    schedule, and {!repro} renders the exact CLI line that replays it. *)

type runner = seed:string -> Schedule.t -> Oracle.obs
(** One deterministic workload run (see {!Workload.run}). *)

(** Why a run failed. *)
type fail = {
  oracle : string;
      (** the failing oracle's name, or ["invariant"] / ["exception"] for
          runs that raised instead of finishing *)
  reason : string;  (** the oracle's verdict message *)
}

(** The judgement of one run. *)
type outcome = Clean | Failed of fail

val check : Oracle.oracle list -> Oracle.obs -> outcome
(** First failing oracle wins, in suite order. *)

val eval :
  runner:runner -> oracles:Oracle.oracle list -> seed:string -> Schedule.t ->
  outcome
(** Run and judge once; exceptions (including invariant violations) are
    converted into failures rather than propagated. *)

val shrink :
  runner:runner -> oracles:Oracle.oracle list -> seed:string -> budget:int ->
  Schedule.t -> fail -> Schedule.t * fail * int
(** [shrink ~runner ~oracles ~seed ~budget sched f] minimizes a failing
    schedule: returns a sub-list that still fails (with its possibly
    different failure) and the number of verification runs spent, at most
    [budget].  The failure an oracle reports for the minimal schedule may
    differ from the original — both are kept in {!failure}. *)

(** One failing seed, with its original and shrunk schedules. *)
type failure = {
  index : int;  (** seed index within the sweep *)
  run_seed : string;  (** the full run seed, [base ^ "#" ^ index] *)
  schedule : Schedule.t;  (** the generated schedule *)
  outcome : fail;  (** the original failure *)
  shrunk : Schedule.t;  (** the minimal failing schedule found *)
  shrunk_outcome : fail;  (** the failure the minimal schedule produces *)
  shrink_runs : int;  (** verification runs the shrinker spent *)
}

(** The result of a sweep. *)
type report = {
  base_seed : string;  (** the sweep's base seed *)
  runs : int;  (** total workload runs, including shrinking *)
  failures : failure list;  (** failing seeds, in sweep order *)
}

val run_seed_of : base:string -> int -> string
(** The run seed for sweep index [k]: [base ^ "#" ^ string_of_int k]. *)

val schedule_of :
  run_seed:string -> n:int -> max_faulty:int -> allow_equiv:bool -> Schedule.t
(** The schedule a sweep derives for [run_seed]: {!Schedule.generate} from
    a DRBG seeded ["sched|" ^ run_seed]. *)

val explore :
  ?progress:(int -> unit) -> ?max_failures:int -> ?shrink_budget:int ->
  runner:runner -> oracles:Oracle.oracle list ->
  generate:(run_seed:string -> Schedule.t) -> seed:string -> seeds:int ->
  unit -> report
(** Sweep [seeds] consecutive seed indices; stop early after
    [max_failures] (default 1) failing seeds.  Each failure is shrunk
    within [shrink_budget] (default 200) extra runs.  [progress] is called
    with each index before its run. *)

val repro :
  workload:Oracle.kind -> base_seed:string -> failure -> string
(** The CLI line replaying one failure's shrunk schedule exactly. *)
