(* The oracle library: protocol-level correctness predicates evaluated over
   the observations of one finished run.

   The observation record is deliberately protocol-agnostic — origins and
   payloads, per-party delivery logs, per-party decisions — so one oracle
   set serves every workload.  Soundness relies on the schedule generator's
   contract (Schedule.generate): destructive mutations only ever hit the
   [degraded] parties, at most t of them, so

   - safety properties (agreement, order, integrity, validity) must hold
     for every honest party, degraded or not;
   - liveness properties are only demanded of the never-degraded honest
     majority, and only for messages submitted by never-degraded honest
     senders. *)

type kind =
  | Reliable | Consistent | Aba | Mvba | Atomic | Secure | Throughput
  | Pipeline | Amortized | Durable

let kind_to_string (k : kind) : string =
  match k with
  | Reliable -> "reliable"
  | Consistent -> "consistent"
  | Aba -> "aba"
  | Mvba -> "mvba"
  | Atomic -> "atomic"
  | Secure -> "secure"
  | Throughput -> "throughput"
  | Pipeline -> "pipeline"
  | Amortized -> "crypto-amortized"
  | Durable -> "durable"

let kind_of_string (s : string) : kind option =
  match s with
  | "reliable" -> Some Reliable
  | "consistent" -> Some Consistent
  | "aba" -> Some Aba
  | "mvba" -> Some Mvba
  | "atomic" -> Some Atomic
  | "secure" -> Some Secure
  | "throughput" -> Some Throughput
  | "pipeline" -> Some Pipeline
  | "crypto-amortized" -> Some Amortized
  | "durable" -> Some Durable
  | _ -> None

type obs = {
  kind : kind;
  n : int;
  t : int;
  degraded : int list;
  corrupted : int list;
  sent : (int * string) list;
  delivered : (int * string) list array;
  decisions : string option array;
  proposals : string option array;
  flagged : (int * string) list array;
  quiesced : bool;
  events : int;
  vtime : float;
}

type verdict = Pass | Fail of string

type oracle = {
  name : string;
  check : obs -> verdict;
}

(* --- helpers --- *)

let honest (o : obs) (p : int) : bool = not (List.mem p o.corrupted)
let steady (o : obs) (p : int) : bool = honest o p && not (List.mem p o.degraded)

let parties (o : obs) : int list = List.init o.n (fun i -> i)

let cmp_entry ((o1, p1) : int * string) ((o2, p2) : int * string) : int =
  if o1 <> o2 then Int.compare o1 o2 else String.compare p1 p2

let sorted_log (o : obs) (p : int) : (int * string) list =
  List.sort cmp_entry o.delivered.(p)

(* Is [small] a sub-multiset of [big]?  Both sorted by {!cmp_entry}. *)
let rec sub_multiset (small : (int * string) list) (big : (int * string) list)
    : bool =
  match (small, big) with
  | [], _ -> true
  | _ :: _, [] -> false
  | s :: srest, b :: brest ->
    let c = cmp_entry s b in
    if c = 0 then sub_multiset srest brest
    else if c > 0 then sub_multiset small brest
    else false

let rec is_prefix (short : (int * string) list) (long : (int * string) list)
    : bool =
  match (short, long) with
  | [], _ -> true
  | _ :: _, [] -> false
  | s :: srest, l :: lrest -> cmp_entry s l = 0 && is_prefix srest lrest

let describe_entry ((origin, payload) : int * string) : string =
  Printf.sprintf "(%d,%S)" origin payload

(* --- the oracles --- *)

(* Agreement.  For the agreement workloads: every honest decision is the
   same.  For the broadcast workloads: (a) consistency — for each origin,
   the k-th delivery from that origin is the same at every honest party
   that got that far (per-origin deliveries are in sequence order); and
   (b) totality where the protocol promises it (reliable, atomic, secure):
   at quiescence all never-degraded honest parties hold the same delivery
   multiset.  Consistent broadcast promises no totality, so only (a). *)
let agreement : oracle =
  let check (o : obs) : verdict =
    match o.kind with
    | Aba | Mvba ->
      let decisions =
        List.filter_map
          (fun p -> if honest o p then o.decisions.(p) else None)
          (parties o)
      in
      (match decisions with
       | [] -> Pass
       | first :: rest ->
         (match List.find_opt (fun d -> d <> first) rest with
          | Some other ->
            Fail (Printf.sprintf "honest decisions differ: %S vs %S" first other)
          | None -> Pass))
    | Reliable | Consistent | Atomic | Secure | Throughput | Pipeline
    | Amortized | Durable ->
      (* The durable kind holds only steady parties to position-wise
         consistency: snapshot state transfer legitimately skips history
         (the adopter's app log has gaps), and a restarted party's
         re-proposed own payloads can deliver late at itself while
         deduplicating away at full-history parties.  Such parties are in
         [degraded]; integrity still covers them. *)
      let honest_parties =
        List.filter
          (if o.kind = Durable then steady o else honest o)
          (parties o)
      in
      let per_origin (p : int) (origin : int) : string list =
        List.filter_map
          (fun (og, pl) -> if og = origin then Some pl else None)
          o.delivered.(p)
      in
      let consistency_breach =
        List.find_map
          (fun origin ->
            let logs = List.map (fun p -> (p, per_origin p origin)) honest_parties in
            List.find_map
              (fun (p, log) ->
                List.find_map
                  (fun (q, log') ->
                    if q <= p then None
                    else
                      let rec conflict k l l' =
                        match (l, l') with
                        | x :: lr, y :: lr' ->
                          if String.equal x y then conflict (k + 1) lr lr'
                          else
                            Some
                              (Printf.sprintf
                                 "origin %d delivery %d: party %d got %S, party %d got %S"
                                 origin k p x q y)
                        | _, _ -> None
                      in
                      conflict 0 log log')
                  logs)
              logs)
          (parties o)
      in
      (match consistency_breach with
       | Some why -> Fail why
       | None ->
         if o.kind = Consistent || o.kind = Amortized || not o.quiesced then
           Pass
         else begin
           let steady_logs =
             List.filter_map
               (fun p -> if steady o p then Some (p, sorted_log o p) else None)
               (parties o)
           in
           match steady_logs with
           | [] -> Pass
           | (p0, log0) :: rest ->
             (match List.find_opt (fun (_, log) -> log <> log0) rest with
              | Some (q, _) ->
                Fail
                  (Printf.sprintf
                     "totality: parties %d and %d delivered different sets" p0 q)
              | None -> Pass)
         end)
  in
  { name = "agreement"; check }

(* Total order (atomic and secure channels): any two honest delivery
   sequences are prefix-comparable. *)
let total_order : oracle =
  let check (o : obs) : verdict =
    match o.kind with
    | Reliable | Consistent | Aba | Mvba | Amortized -> Pass
    | Atomic | Secure | Throughput | Pipeline | Durable ->
      (* Durable: steady parties only, for the same reason as the
         agreement oracle — snapshot adopters and restarted parties hold
         gappy or locally-reordered (but integrity-clean) logs. *)
      let honest_parties =
        List.filter
          (if o.kind = Durable then steady o else honest o)
          (parties o)
      in
      let logs = List.map (fun p -> (p, o.delivered.(p))) honest_parties in
      let breach =
        List.find_map
          (fun (p, lp) ->
            List.find_map
              (fun (q, lq) ->
                if q <= p then None
                else if
                  List.length lp <= List.length lq
                  && is_prefix lp lq
                  || List.length lq < List.length lp
                     && is_prefix lq lp
                then None
                else
                  Some
                    (Printf.sprintf
                       "parties %d and %d delivered non-prefix-comparable sequences"
                       p q))
              logs)
          logs
      in
      (match breach with Some why -> Fail why | None -> Pass)
  in
  { name = "total-order"; check }

(* Integrity: no creation (every delivery from an honest origin was really
   submitted by it) and no duplication (each party delivers a given message
   at most once; workload payloads are unique). *)
let integrity : oracle =
  let check (o : obs) : verdict =
    let sent_sorted = List.sort cmp_entry o.sent in
    let breach =
      List.find_map
        (fun p ->
          if not (honest o p) then None
          else begin
            let log = sorted_log o p in
            let rec dup l =
              match l with
              | a :: (b :: _ as rest) ->
                if cmp_entry a b = 0 then Some a else dup rest
              | [ _ ] | [] -> None
            in
            match dup log with
            | Some e ->
              Some
                (Printf.sprintf "party %d delivered %s twice" p (describe_entry e))
            | None ->
              let from_honest =
                List.filter (fun (origin, _) -> honest o origin) log
              in
              if sub_multiset from_honest sent_sorted then None
              else
                let ghost =
                  List.find_opt
                    (fun e -> not (List.exists (fun s -> cmp_entry s e = 0) o.sent))
                    from_honest
                in
                Some
                  (Printf.sprintf "party %d delivered %s never submitted" p
                     (match ghost with
                      | Some e -> describe_entry e
                      | None -> "a message"))
          end)
        (parties o)
    in
    (match breach with Some why -> Fail why | None -> Pass)
  in
  { name = "integrity"; check }

(* Validity (agreement workloads, no corrupted parties): a decision must be
   one of the honest proposals, and under unanimity it must be the common
   proposal.  Gated on [corrupted = []] because binary agreement without
   external validity does not promise unanimity-validity against forged
   Byzantine pre-votes. *)
let validity : oracle =
  let check (o : obs) : verdict =
    match o.kind with
    | Reliable | Consistent | Atomic | Secure | Throughput | Pipeline
    | Amortized | Durable -> Pass
    | Aba | Mvba ->
      if o.corrupted <> [] then Pass
      else begin
        let props =
          List.filter_map
            (fun p -> if honest o p then o.proposals.(p) else None)
            (parties o)
        in
        let unanimous =
          match props with
          | [] -> None
          | first :: rest ->
            if List.for_all (fun v -> String.equal v first) rest then Some first
            else None
        in
        let breach =
          List.find_map
            (fun p ->
              match o.decisions.(p) with
              | None -> None
              | Some d ->
                (match unanimous with
                 | Some v when not (String.equal d v) ->
                   Some
                     (Printf.sprintf
                        "party %d decided %S against unanimous proposal %S" p d v)
                 | _ ->
                   if List.exists (String.equal d) props then None
                   else
                     Some
                       (Printf.sprintf
                          "party %d decided %S, which no honest party proposed" p d)))
            (parties o)
        in
        match breach with Some why -> Fail why | None -> Pass
      end
  in
  { name = "validity"; check }

(* Bounded-quiescence liveness: the run must quiesce within its bounds, and
   then every never-degraded honest party must have delivered everything
   submitted by never-degraded honest senders (or decided, for the
   agreement workloads). *)
let liveness : oracle =
  let check (o : obs) : verdict =
    if not o.quiesced then
      Fail
        (Printf.sprintf "did not quiesce within bounds (%d events, %.1fs)"
           o.events o.vtime)
    else
      match o.kind with
      | Aba | Mvba ->
        (match
           List.find_opt
             (fun p -> steady o p && o.decisions.(p) = None)
             (parties o)
         with
         | Some p -> Fail (Printf.sprintf "party %d never decided" p)
         | None -> Pass)
      | Reliable | Consistent | Atomic | Secure | Throughput | Pipeline
      | Amortized | Durable ->
        let required =
          List.sort cmp_entry
            (List.filter (fun (origin, _) -> steady o origin) o.sent)
        in
        (match
           List.find_map
             (fun p ->
               if not (steady o p) then None
               else if sub_multiset required (sorted_log o p) then None
               else
                 let missing =
                   List.find_opt
                     (fun e ->
                       not
                         (List.exists
                            (fun d -> cmp_entry d e = 0)
                            o.delivered.(p)))
                     required
                 in
                 Some
                   (Printf.sprintf "party %d never delivered %s" p
                      (match missing with
                       | Some e -> describe_entry e
                       | None -> "a required message")))
             (parties o)
         with
         | Some why -> Fail why
         | None -> Pass)
  in
  { name = "liveness"; check }

(* Invariant flags: protocols may flag corrupted parties, but an honest
   party flagged by an honest observer is a false accusation — either a
   protocol bug or an oracle-model bug, and either way a finding. *)
let flags : oracle =
  let check (o : obs) : verdict =
    match
      List.find_map
        (fun p ->
          if not (honest o p) then None
          else
            List.find_map
              (fun (offender, why) ->
                if honest o offender then
                  Some
                    (Printf.sprintf "party %d flagged honest party %d: %s" p
                       offender why)
                else None)
              o.flagged.(p))
        (parties o)
    with
    | Some why -> Fail why
    | None -> Pass
  in
  { name = "flags"; check }

let all (k : kind) : oracle list =
  match k with
  | Reliable | Consistent | Amortized ->
    [ agreement; integrity; liveness; flags ]
  | Aba | Mvba -> [ agreement; validity; liveness; flags ]
  | Atomic | Secure | Throughput | Pipeline | Durable ->
    [ agreement; total_order; integrity; liveness; flags ]
