(** Protocol oracles: correctness predicates over one finished run.

    Each workload produces an {!obs} record of what every party observed;
    the oracles check the paper's protocol properties over it — agreement,
    total order, integrity, validity, bounded-quiescence liveness — plus
    the runtime {!Sintra.Invariant} flags.  Soundness leans on the schedule
    contract: destructive mutations only ever hit the [degraded] parties,
    at most [t] of them, so safety is demanded of every honest party while
    liveness is only demanded of the never-degraded honest majority. *)

(** The workload families the explorer can drive. *)
type kind =
  | Reliable  (** reliable broadcast channel *)
  | Consistent  (** consistent (echo) broadcast channel *)
  | Aba  (** binary Byzantine agreement *)
  | Mvba  (** multi-valued Byzantine agreement *)
  | Atomic  (** atomic broadcast channel (total order) *)
  | Secure  (** secure causal atomic channel *)
  | Throughput
      (** atomic broadcast under bursty multi-payload traffic: the same
          oracle suite as the [Atomic] kind, run against rounds whose decided
          batches carry many payloads per party *)
  | Pipeline
      (** atomic broadcast with several rounds in flight: staggered payload
          waves keep the pipeline window full, so the [Atomic] oracle suite
          checks the reorder buffer and window-aware catch-up under the same
          adversarial schedules (crashes, drops, replays) *)
  | Amortized
      (** consistent broadcast under the amortized-crypto stress mix: a
          deterministic retransmit storm (duplicated and replayed frames
          exercising the verified-share cache) plus a Byzantine responder
          that answers every SEND with a wire-well-formed but invalid
          signature share, landing a bad share in echo batches so
          {!Crypto.Batch} bisection must isolate it.  The [Consistent]
          oracle suite applies (consistency without totality) *)
  | Durable
      (** atomic broadcast with the durability layer attached (WAL,
          checkpoints, snapshots) and a scripted mid-run power failure of
          party 3 — volatile state lost, in-memory device preserved —
          followed by a restart that restores from disk and catches up.
          The [Atomic] oracle suite applies, with party 3 — and any party
          that adopted a peer snapshot, since state transfer legitimately
          skips history — added to the degraded set: position-wise
          consistency, total order, totality and liveness are demanded of
          the full-history parties, integrity of everyone *)

val kind_to_string : kind -> string
(** Lower-case CLI name, e.g. ["atomic"]. *)

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string}. *)

(** Everything one run exposes to the oracles. *)
type obs = {
  kind : kind;  (** which workload produced this run *)
  n : int;  (** group size *)
  t : int;  (** fault threshold *)
  degraded : int list;  (** parties hit by destructive mutations *)
  corrupted : int list;  (** parties replaced by Byzantine harnesses *)
  sent : (int * string) list;
      (** [(origin, payload)] for every honestly submitted message;
          recorded at submission time, so a crashed party's unsent
          messages never appear *)
  delivered : (int * string) list array;
      (** per party, [(origin, payload)] in delivery order *)
  decisions : string option array;
      (** per party, the agreement decision if any *)
  proposals : string option array;
      (** per party, the agreement proposal if any *)
  flagged : (int * string) list array;
      (** per party, [(offender, reason)] invariant flags it raised *)
  quiesced : bool;  (** the run drained within its event/time bounds *)
  events : int;  (** simulation events executed *)
  vtime : float;  (** final virtual time *)
}

(** The outcome of one oracle on one run. *)
type verdict = Pass | Fail of string

(** A named, reusable check. *)
type oracle = {
  name : string;  (** short stable name, e.g. ["total-order"] *)
  check : obs -> verdict;  (** evaluate the property over one run *)
}

val agreement : oracle
(** Honest decisions are all equal (agreement workloads); per-origin
    deliveries are consistent across honest parties, and — for the
    totality-promising kinds, at quiescence — never-degraded honest
    parties hold identical delivery multisets (broadcast workloads). *)

val total_order : oracle
(** Atomic/secure channels only: any two honest delivery sequences are
    prefix-comparable. *)

val integrity : oracle
(** No honest party delivers the same message twice, and every delivery
    attributed to an honest origin was really submitted by it. *)

val validity : oracle
(** Agreement workloads with no corrupted parties: decisions come from
    honest proposals, and a unanimous proposal forces that decision. *)

val liveness : oracle
(** The run quiesced, and every never-degraded honest party delivered all
    messages from never-degraded honest senders (or decided, for the
    agreement workloads). *)

val flags : oracle
(** No honest party's invariant checker flagged another honest party. *)

val all : kind -> oracle list
(** The oracle suite applicable to a workload kind. *)
