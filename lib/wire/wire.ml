(* A small binary codec.  Every SINTRA protocol message crosses the simulated
   network as bytes produced here, so wire sizes (and hence the latency and
   bandwidth accounting) are real, and link MACs are computed over real
   encodings.

   Encoding: unsigned LEB128 varints for integers; byte strings are
   length-prefixed; sums are tagged with a u8. *)

exception Decode of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode s)) fmt

module Enc = struct
  type t = Buffer.t

  let create () : t = Buffer.create 64

  let u8 (b : t) (v : int) =
    if v < 0 || v > 0xff then invalid_arg "Wire.Enc.u8";
    Buffer.add_char b (Char.chr v)

  (* Unsigned LEB128. *)
  let int (b : t) (v : int) =
    if v < 0 then invalid_arg "Wire.Enc.int: negative";
    let rec go v =
      if v < 0x80 then Buffer.add_char b (Char.chr v)
      else begin
        Buffer.add_char b (Char.chr (0x80 lor (v land 0x7f)));
        go (v lsr 7)
      end
    in
    go v

  let bool (b : t) (v : bool) = u8 b (if v then 1 else 0)

  let bytes (b : t) (s : string) =
    int b (String.length s);
    Buffer.add_string b s

  let list (b : t) (f : t -> 'a -> unit) (xs : 'a list) =
    int b (List.length xs);
    List.iter (fun x -> f b x) xs

  let option (b : t) (f : t -> 'a -> unit) (x : 'a option) =
    match x with
    | None -> u8 b 0
    | Some v -> u8 b 1; f b v

  let to_string (b : t) = Buffer.contents b
end

module Dec = struct
  type t = { s : string; mutable pos : int }

  let of_string s = { s; pos = 0 }

  let ensure (d : t) (n : int) =
    (* [n] can be adversarial (a decoded varint), so compare without the
       overflow in [pos + n]. *)
    if n < 0 || n > String.length d.s - d.pos then
      fail "truncated input (need %d at %d)" n d.pos

  let u8 (d : t) : int =
    ensure d 1;
    let v = Char.code d.s.[d.pos] in
    d.pos <- d.pos + 1;
    v

  let int (d : t) : int =
    let rec go shift acc =
      if shift > 62 then fail "varint too long";
      let c = u8 d in
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let bool (d : t) : bool =
    match u8 d with
    | 0 -> false
    | 1 -> true
    | v -> fail "bad bool tag %d" v

  let bytes (d : t) : string =
    let n = int d in
    ensure d n;
    let s = String.sub d.s d.pos n in
    d.pos <- d.pos + n;
    s

  let list (d : t) (f : t -> 'a) : 'a list =
    let n = int d in
    if n < 0 || n > 1_000_000 then fail "bad list length %d" n;
    List.init n (fun _ -> f d)

  let option (d : t) (f : t -> 'a) : 'a option =
    match u8 d with
    | 0 -> None
    | 1 -> Some (f d)
    | v -> fail "bad option tag %d" v

  let finished (d : t) : bool = d.pos = String.length d.s

  let expect_end (d : t) : unit =
    if not (finished d) then fail "trailing bytes at %d" d.pos
end

(* Encode via a function; decode catching [Decode] into an option. *)
let encode (f : Enc.t -> unit) : string =
  let b = Enc.create () in
  f b;
  Enc.to_string b

(* Like {!decode} but tolerates trailing bytes — for reading a tagged prefix
   and handing the decoder to per-tag logic. *)
let decode_prefix (s : string) (f : Dec.t -> 'a) : 'a option =
  let d = Dec.of_string s in
  match f d with
  | v -> Some v
  | exception Decode _ -> None

let decode (s : string) (f : Dec.t -> 'a) : 'a option =
  let d = Dec.of_string s in
  match
    let v = f d in
    Dec.expect_end d;
    v
  with
  | v -> Some v
  | exception Decode _ -> None
