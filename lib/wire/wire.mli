(** The binary codec every SINTRA protocol message crosses the simulated
    network in — so wire sizes (latency/bandwidth accounting) and MAC'd
    bytes are real.

    Unsigned LEB128 varints; length-prefixed byte strings; u8-tagged sums.
    Decoders are total against adversarial bytes: any malformed input
    raises {!Decode}, which the [decode]/[decode_prefix] wrappers turn into
    [None]. *)

exception Decode of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Decode} with a formatted message (for protocol-level decoders
    built on {!Dec}). *)

module Enc : sig
  type t

  val create : unit -> t

  val u8 : t -> int -> unit
  (** @raise Invalid_argument outside [0, 255]. *)

  val int : t -> int -> unit
  (** Unsigned LEB128. @raise Invalid_argument on negatives. *)

  val bool : t -> bool -> unit
  val bytes : t -> string -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val to_string : t -> string
end

module Dec : sig
  type t

  val of_string : string -> t

  val u8 : t -> int
  val int : t -> int
  val bool : t -> bool
  val bytes : t -> string
  val list : t -> (t -> 'a) -> 'a list
  val option : t -> (t -> 'a) -> 'a option
  (** All raise {!Decode} on malformed or truncated input. *)

  val finished : t -> bool
  val expect_end : t -> unit
end

val encode : (Enc.t -> unit) -> string

val decode : string -> (Dec.t -> 'a) -> 'a option
(** Strict: trailing bytes are an error. *)

val decode_prefix : string -> (Dec.t -> 'a) -> 'a option
(** Tolerates trailing bytes — for reading a tag and dispatching. *)
