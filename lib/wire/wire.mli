(** The binary codec every SINTRA protocol message crosses the simulated
    network in — so wire sizes (latency/bandwidth accounting) and MAC'd
    bytes are real.

    Unsigned LEB128 varints; length-prefixed byte strings; u8-tagged sums.
    Decoders are total against adversarial bytes: any malformed input
    raises {!Decode}, which the [decode]/[decode_prefix] wrappers turn into
    [None]. *)

exception Decode of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Decode} with a formatted message (for protocol-level decoders
    built on {!Dec}). *)

module Enc : sig
  type t

  val create : unit -> t
  (** A fresh empty encoder buffer. *)

  val u8 : t -> int -> unit
  (** @raise Invalid_argument outside [0, 255]. *)

  val int : t -> int -> unit
  (** Unsigned LEB128. @raise Invalid_argument on negatives. *)

  val bool : t -> bool -> unit
  (** One byte, [0] or [1]. *)

  val bytes : t -> string -> unit
  (** Length-prefixed byte string (varint length, then the bytes). *)

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** Varint element count, then each element via the callback. *)

  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  (** A presence {!bool}, then the payload if [Some]. *)

  val to_string : t -> string
  (** The accumulated wire bytes. *)
end

module Dec : sig
  type t

  val of_string : string -> t
  (** A decoder positioned at the start of the given bytes. *)

  val u8 : t -> int
  (** The next single byte. *)

  val int : t -> int
  (** The next unsigned LEB128 varint. *)

  val bool : t -> bool
  (** The next byte, which must be [0] or [1]. *)

  val bytes : t -> string
  (** The next length-prefixed byte string. *)

  val list : t -> (t -> 'a) -> 'a list
  (** A varint count, then that many elements via the callback. *)

  val option : t -> (t -> 'a) -> 'a option
  (** All raise {!Decode} on malformed or truncated input. *)

  val finished : t -> bool
  (** Whether every input byte has been consumed. *)

  val expect_end : t -> unit
  (** @raise Decode if input remains — the strict-decode tail check. *)
end

val encode : (Enc.t -> unit) -> string
(** Run an encoding callback on a fresh {!Enc.t} and return the bytes. *)

val decode : string -> (Dec.t -> 'a) -> 'a option
(** Strict: trailing bytes are an error. *)

val decode_prefix : string -> (Dec.t -> 'a) -> 'a option
(** Tolerates trailing bytes — for reading a tag and dispatching. *)
