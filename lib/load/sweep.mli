(** The throughput sweep: latency-vs-offered-load curves for the atomic
    channel, batched against unbatched.

    For each group size the sweep runs the channel twice — once at the
    configured [max_batch] ({!Config.t}) (batched) and once at [max_batch = 1]
    (the pre-batching, one-payload-per-party rounds) — under
    {ul
    {- an {e open-loop} ladder: Poisson clients at increasing offered
       rates, measuring delivered throughput and completion latency at
       each point (overload included — open-loop clients do not throttle);}
    {- a {e closed-loop} saturation probe: a fixed population of clients
       with one request outstanding each, whose aggregate completion rate
       is the channel's sustainable throughput.}}

    All times are virtual seconds from the simulated clock; the real
    cryptography runs at small key sizes while the cost model prices the
    paper's 1024-bit keys, exactly as in the other benchmarks. *)

type point = {
  offered_per_s : float;
  (** Offered load across the group (requests per virtual second); for the
      closed-loop saturation point this equals the achieved throughput. *)
  issued : int;              (** requests issued by the generator *)
  completed : int;           (** completions observed by their clients *)
  delivered : int;           (** payloads delivered at the measuring party *)
  throughput_per_s : float;  (** [delivered / duration] *)
  latency_mean_s : float;    (** mean completion latency; 0 if none completed *)
  latency_p50_s : float;     (** median completion latency *)
  latency_p90_s : float;     (** 90th-percentile completion latency *)
}

type series = {
  n : int;                   (** group size *)
  t : int;                   (** corruption bound *)
  batched : bool;            (** false = forced [max_batch = 1] *)
  points : point list;       (** the open-loop ladder, one per offered rate *)
  saturation : point;        (** the closed-loop probe *)
  rounds : int;              (** agreement rounds at the measuring party
                                 during the saturation run *)
}

type report = {
  smoke : bool;              (** tiny parameters, CI-sized *)
  duration_s : float;        (** virtual seconds per measurement run *)
  series : series list;
}

val sweep_cfg :
  ?pipeline_depth:int -> ?adaptive_batch:bool -> n:int -> t:int ->
  max_batch:int -> unit -> Sintra.Config.t
(** The benchmark configuration: real 256-bit cryptography priced at the
    paper's 1024-bit key sizes, pseudo-random candidate permutation.
    [pipeline_depth]/[adaptive_batch] default to the {!Sintra.Config.make}
    defaults (window of 4 rounds, adaptive cap). *)

val make_cluster : seed:string -> Sintra.Config.t -> Sintra.Cluster.t
(** A fresh simulated group for one measurement run.  Dealers are cached
    per [(n, t)] across runs — key generation dominates setup and keys do
    not depend on the load shape. *)

val quantile : float array -> float -> float
(** [quantile sorted q] is the element at rank [q] (nearest-rank on a
    {e sorted} array); [0.0] when empty. *)

val run :
  ?smoke:bool -> ?sizes:(int * int) list -> ?duration:float ->
  ?rates:float list -> ?clients_per_party:int -> ?max_batch:int ->
  ?seed:string -> unit -> report
(** Run the sweep.  Defaults: full mode measures [n ∈ {4, 7, 10}] for 10
    virtual seconds per point over rates [{5, 10, 20, 40, 80}] requests/s;
    [~smoke:true] shrinks this to [n = 4], 2 virtual seconds and a single
    rate so the whole sweep finishes in CI time.  [clients_per_party]
    sizes the closed-loop population (default 64 — enough outstanding
    requests that the pipelined, batched channel saturates on round cost
    rather than on the population bound); [max_batch] is the cap used by
    the batched series (default 256).  The unbatched series always runs
    [max_batch = 1] with [pipeline_depth = 1]: the paper's original
    one-payload-per-party sequential rounds. *)

val to_json : report -> string
(** Render the report in the [sintra-bench-throughput-v1] schema (see
    OPERATIONS.md). *)

val saturation_throughput : report -> n:int -> batched:bool -> float option
(** The closed-loop saturation throughput of one series, if present. *)
