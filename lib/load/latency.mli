(** The latency-attribution bench: traced open-loop runs at several
    offered loads, reporting completion-latency percentiles alongside a
    critical-path phase breakdown ({!Trace.Causal}) at each point.

    Each point's percentiles are over per-payload enqueue→deliver
    latencies — the same intervals the phase buckets tile — so the
    attribution explains exactly the latency being reported.  All numbers
    derive from virtual time and the run seed, never the wall clock, so
    the rendered JSON is byte-deterministic for a given seed. *)

(** One offered-load measurement with its attribution. *)
type point = {
  offered_per_s : float;  (** offered load across the group, requests/s *)
  issued : int;  (** requests issued by the open-loop clients *)
  completed : int;  (** completions observed by their clients *)
  payloads : int;  (** payloads the causal analysis attributed *)
  latency_p50_s : float;  (** median enqueue→deliver latency *)
  latency_p90_s : float;  (** 90th-percentile enqueue→deliver latency *)
  latency_p99_s : float;  (** 99th-percentile enqueue→deliver latency *)
  hops_mean : float;  (** mean critical-path length, in messages *)
  phases_s : (string * float) list;
      (** summed per-phase attribution, canonical order *)
  stages_s : (string * float) list;
      (** summed per-protocol-stage hop wall time, descending *)
  unattributed_s : float;  (** summed seconds the chains do not cover *)
  coverage : float;  (** attributed / total over all payloads *)
}

(** A whole bench run at one group size. *)
type report = {
  smoke : bool;  (** tiny parameters, CI-sized *)
  n : int;  (** group size *)
  t : int;  (** corruption bound *)
  duration_s : float;  (** virtual seconds per measurement run *)
  points : point list;  (** one per offered rate, ascending *)
}

val run :
  ?smoke:bool -> ?n:int -> ?t:int -> ?duration:float -> ?rates:float list ->
  ?max_batch:int -> ?seed:string -> unit -> report
(** Run the bench.  Defaults: [n = 4], [t = 1]; full mode measures 8
    virtual seconds per point over rates [{5, 10, 20, 40, 80}] requests/s,
    [~smoke:true] shrinks this to 1 virtual second over [{10, 20, 40}] so
    the whole bench finishes in CI time.  [max_batch] caps the channel's
    payload batching (default 256). *)

val to_json : report -> string
(** Render the report in the [sintra-bench-latency-v1] schema (see
    OPERATIONS.md).  Byte-deterministic for a given seed. *)
