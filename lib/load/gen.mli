(** The load generator: open- and closed-loop clients over a simulated
    group.

    A generator owns a set of clients, each attached to one party.  A
    client issues marker payloads through a [submit] callback (typically
    [Cluster.inject] + [Atomic_channel.send]) and observes completions
    when the harness feeds its party's deliveries back through
    {!deliver}.  Per-client latency is recorded as delivery time minus
    issue time, in virtual seconds.

    {b Open-loop} clients draw issue times from an {!Arrival} process
    regardless of completions — they measure latency as a function of
    {e offered} load, including overload, where the closed feedback of a
    closed-loop client would throttle the offered rate.  {b Closed-loop}
    clients keep exactly one request outstanding and issue the next one a
    think time after the previous completes — a saturation probe: their
    aggregate completion rate is the channel's sustainable throughput. *)

type t

val create : ?ctx_of:(int -> Trace.Ctx.t) -> engine:Sim.Engine.t -> unit -> t
(** A generator scheduling on [engine]'s virtual clock.  [ctx_of] supplies
    the trace context used for a party's clients (default: a fresh
    engine-bound context).  Pass the party's shared network context
    ({!Sim.Net.trace_ctx}) so each request's "complete" instant is
    causally stamped with the message that delivered it. *)

val add_open :
  t -> party:int -> arrival:Arrival.t -> until:float ->
  submit:(cause:int -> string -> unit) -> unit
(** Attach an open-loop client to [party]: issues at the arrival process's
    instants from now until virtual time [until].  [submit] receives the
    request's causal flow id (thread it into [Cluster.inject ~cause]) and
    the marker payload. *)

val add_closed :
  t -> party:int -> think:float -> until:float ->
  submit:(cause:int -> string -> unit) -> unit
(** Attach a closed-loop client to [party]: issues immediately, then again
    [think] seconds after each completion, stopping at [until].  [submit]
    is as in {!add_open}. *)

val deliver : t -> party:int -> string -> unit
(** Feed one delivered payload at [party] back to the generator.  Payloads
    that are not this generator's markers, or belong to a client at a
    different party, are ignored — so every party's channel deliveries can
    be forwarded unconditionally. *)

val issued : t -> int
(** Requests issued by all clients so far. *)

val completed : t -> int
(** Requests whose completion was observed by their issuing client. *)

val latencies : t -> float list
(** All recorded completion latencies (virtual seconds), oldest first. *)
