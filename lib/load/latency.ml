(* The latency-attribution bench: open-loop atomic broadcast at several
   offered loads, traced end to end, with each point's completion-latency
   percentiles and a critical-path phase breakdown from the causal DAG.

   Unlike the throughput sweep, every run here collects its own trace (an
   in-memory Fn sink) and feeds it through [Trace.Causal.analyze]; the
   reported percentiles are over per-payload enqueue→deliver latencies —
   the same intervals the phase buckets tile — so the attribution explains
   exactly the latency being reported.  Everything derives from virtual
   time and the run seed: the rendered JSON is byte-deterministic. *)

open Sintra

type point = {
  offered_per_s : float;
  issued : int;
  completed : int;
  payloads : int;
  latency_p50_s : float;
  latency_p90_s : float;
  latency_p99_s : float;
  hops_mean : float;
  phases_s : (string * float) list;
  stages_s : (string * float) list;
  unattributed_s : float;
  coverage : float;
}

type report = {
  smoke : bool;
  n : int;
  t : int;
  duration_s : float;
  points : point list;
}

(* One traced measurement run at a fixed offered rate. *)
let run_point ~(seed : string) ~(cfg : Config.t) ~(duration : float)
    ~(rate : float) : point =
  let n = cfg.Config.n in
  let c = Sweep.make_cluster ~seed cfg in
  let events = ref [] in
  Sim.Engine.set_sink c.Cluster.engine
    (Trace.Sink.Fn (fun e -> events := e :: !events));
  let gen =
    Gen.create ~ctx_of:(Sim.Net.trace_ctx c.Cluster.net) ~engine:c.Cluster.engine
      ()
  in
  let chans =
    Array.init n (fun i ->
      Atomic_channel.create (Cluster.runtime c i) ~pid:"load"
        ~on_deliver:(fun ~sender:_ payload -> Gen.deliver gen ~party:i payload)
        ())
  in
  let submit party ~cause payload =
    Cluster.inject ~cause c party (fun () ->
      Atomic_channel.send chans.(party) payload)
  in
  let drbg = Hashes.Drbg.create ~seed:("latency-arrivals|" ^ seed) in
  for p = 0 to n - 1 do
    let arrival =
      Arrival.poisson ~rate:(rate /. float_of_int n)
        (Hashes.Drbg.fork drbg (string_of_int p))
    in
    Gen.add_open gen ~party:p ~arrival ~until:duration ~submit:(submit p)
  done;
  ignore (Cluster.run c ~until:duration);
  let rep = Trace.Causal.analyze (List.rev !events) in
  let totals =
    Array.of_list (List.map (fun p -> p.Trace.Causal.p_total) rep.Trace.Causal.r_payloads)
  in
  Array.sort Float.compare totals;
  let payloads = Array.length totals in
  let hops_mean =
    if payloads = 0 then 0.0
    else
      float_of_int
        (List.fold_left
           (fun acc p -> acc + p.Trace.Causal.p_hops)
           0 rep.Trace.Causal.r_payloads)
      /. float_of_int payloads
  in
  {
    offered_per_s = rate;
    issued = Gen.issued gen;
    completed = Gen.completed gen;
    payloads;
    latency_p50_s = Sweep.quantile totals 0.5;
    latency_p90_s = Sweep.quantile totals 0.9;
    latency_p99_s = Sweep.quantile totals 0.99;
    hops_mean;
    phases_s = Trace.Causal.phases_fields rep.Trace.Causal.r_phases;
    stages_s = rep.Trace.Causal.r_stages;
    unattributed_s = rep.Trace.Causal.r_unattributed;
    coverage = rep.Trace.Causal.r_coverage;
  }

let run ?(smoke = false) ?n ?t ?duration ?rates ?(max_batch = 256)
    ?(seed = "latency") () : report =
  let n = match n with Some n -> n | None -> 4 in
  let t = match t with Some t -> t | None -> 1 in
  let duration =
    match duration with Some d -> d | None -> if smoke then 1.0 else 8.0
  in
  let rates =
    match rates with
    | Some r -> r
    | None -> if smoke then [ 10.0; 20.0; 40.0 ] else [ 5.0; 10.0; 20.0; 40.0; 80.0 ]
  in
  let cfg = Sweep.sweep_cfg ~n ~t ~max_batch () in
  let points =
    List.map
      (fun rate ->
        run_point
          ~seed:(Printf.sprintf "%s|n%d|open%.3f" seed n rate)
          ~cfg ~duration ~rate)
      rates
  in
  { smoke; n; t; duration_s = duration; points }

(* --- JSON rendering (sintra-bench-latency-v1) --- *)

let json_fields (fields : (string * float) list) : string
    =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%S:%.6g" k v) fields)

let json_point (p : point) : string =
  Printf.sprintf
    "{\"offered_per_s\":%.6g,\"issued\":%d,\"completed\":%d,\"payloads\":%d,\
     \"latency_p50_s\":%.6g,\"latency_p90_s\":%.6g,\"latency_p99_s\":%.6g,\
     \"hops_mean\":%.6g,\"phases_s\":{%s},\"stages_s\":{%s},\
     \"unattributed_s\":%.6g,\"coverage\":%.6g}"
    p.offered_per_s p.issued p.completed p.payloads p.latency_p50_s
    p.latency_p90_s p.latency_p99_s p.hops_mean
    (json_fields p.phases_s)
    (json_fields p.stages_s)
    p.unattributed_s p.coverage

let to_json (r : report) : string =
  Printf.sprintf
    "{\n\"format\":\"sintra-bench-latency-v1\",\n\"smoke\":%b,\n\"n\":%d,\n\
     \"t\":%d,\n\"duration_s\":%.6g,\n\"points\":[\n%s\n]\n}\n"
    r.smoke r.n r.t r.duration_s
    (String.concat ",\n" (List.map json_point r.points))
