(* The throughput sweep driver: batched vs unbatched atomic broadcast under
   open-loop (offered-load ladder) and closed-loop (saturation) clients. *)

open Sintra

type point = {
  offered_per_s : float;
  issued : int;
  completed : int;
  delivered : int;
  throughput_per_s : float;
  latency_mean_s : float;
  latency_p50_s : float;
  latency_p90_s : float;
}

type series = {
  n : int;
  t : int;
  batched : bool;
  points : point list;
  saturation : point;
  rounds : int;
}

type report = {
  smoke : bool;
  duration_s : float;
  series : series list;
}

(* Key generation dominates setup; share dealers across runs (keys do not
   depend on max_batch or the load shape). *)
let dealer_cache : (string, Dealer.t) Hashtbl.t = Hashtbl.create 4

let sweep_cfg ?pipeline_depth ?adaptive_batch ~(n : int) ~(t : int)
    ~(max_batch : int) () : Config.t =
  Config.make ~max_batch ?pipeline_depth ?adaptive_batch
    ~perm_mode:Config.Random_local
    ~rsa_bits:256 ~tsig_bits:256 ~dl_pbits:256 ~dl_qbits:96
    ~model_rsa_bits:1024 ~model_dl_pbits:1024 ~model_dl_qbits:160 ~n ~t ()

let make_cluster ~(seed : string) (cfg : Config.t) : Cluster.t =
  let key = Printf.sprintf "%d|%d" cfg.Config.n cfg.Config.t in
  let dealer =
    match Hashtbl.find_opt dealer_cache key with
    | Some d -> d
    | None ->
      let d = Dealer.deal ~seed:"load-dealer" cfg in
      Hashtbl.replace dealer_cache key d;
      d
  in
  let engine = Sim.Engine.create ~seed:("load-engine|" ^ seed) () in
  let topo = Sim.Topology.uniform ~count:cfg.Config.n () in
  let net = Sim.Net.create ~engine ~topo ~mac_keys:(Dealer.net_mac_keys dealer) in
  let runtimes =
    Array.init cfg.Config.n (fun i ->
      Runtime.create ~engine ~net ~cfg ~keys:dealer.Dealer.parties.(i))
  in
  { Cluster.engine; net; cfg; dealer; runtimes }

let quantile (sorted : float array) (q : float) : float =
  let len = Array.length sorted in
  if len = 0 then 0.0
  else sorted.(int_of_float (q *. float_of_int (len - 1)))

type load_shape =
  | Open_loop of float          (* offered rate across the group, req/s *)
  | Closed_loop of int          (* clients per party, zero think time *)

(* One measurement run: a fresh cluster, an atomic channel per party, a
   generator in the given shape, [duration] virtual seconds. *)
let run_point ~(seed : string) ~(cfg : Config.t) ~(duration : float)
    (shape : load_shape) : point * int =
  let n = cfg.Config.n in
  let c = make_cluster ~seed cfg in
  (* Clients share each party's network trace context, so request
     submit/complete events join the message-level causal DAG. *)
  let gen =
    Gen.create ~ctx_of:(Sim.Net.trace_ctx c.Cluster.net) ~engine:c.Cluster.engine ()
  in
  let chans =
    Array.init n (fun i ->
      Atomic_channel.create (Cluster.runtime c i) ~pid:"load"
        ~on_deliver:(fun ~sender:_ payload -> Gen.deliver gen ~party:i payload)
        ())
  in
  let submit party ~cause payload =
    Cluster.inject ~cause c party (fun () ->
      Atomic_channel.send chans.(party) payload)
  in
  let offered =
    match shape with
    | Open_loop rate ->
      let drbg = Hashes.Drbg.create ~seed:("load-arrivals|" ^ seed) in
      for p = 0 to n - 1 do
        let arrival =
          Arrival.poisson ~rate:(rate /. float_of_int n)
            (Hashes.Drbg.fork drbg (string_of_int p))
        in
        Gen.add_open gen ~party:p ~arrival ~until:duration ~submit:(submit p)
      done;
      rate
    | Closed_loop per_party ->
      for p = 0 to n - 1 do
        for _ = 1 to per_party do
          Gen.add_closed gen ~party:p ~think:0.0 ~until:duration
            ~submit:(submit p)
        done
      done;
      0.0 (* patched below: closed-loop offered = achieved *)
  in
  ignore (Cluster.run c ~until:duration);
  let delivered = Atomic_channel.deliveries chans.(0) in
  let rounds = Atomic_channel.rounds_completed chans.(0) in
  let lats = Array.of_list (Gen.latencies gen) in
  Array.sort compare lats;
  let mean =
    if Array.length lats = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 lats /. float_of_int (Array.length lats)
  in
  let throughput = float_of_int delivered /. duration in
  ( {
      offered_per_s = (if offered > 0.0 then offered else throughput);
      issued = Gen.issued gen;
      completed = Gen.completed gen;
      delivered;
      throughput_per_s = throughput;
      latency_mean_s = mean;
      latency_p50_s = quantile lats 0.5;
      latency_p90_s = quantile lats 0.9;
    },
    rounds )

let run_series ~(seed : string) ~(n : int) ~(t : int) ~(batched : bool)
    ~(max_batch : int) ~(duration : float) ~(rates : float list)
    ~(clients_per_party : int) : series =
  (* The unbatched series is the pre-batching baseline: one payload per
     party per round AND one round in flight at a time. *)
  let cfg =
    if batched then sweep_cfg ~n ~t ~max_batch ()
    else
      sweep_cfg ~n ~t ~max_batch:1 ~pipeline_depth:1 ~adaptive_batch:false ()
  in
  let mode = if batched then "batched" else "unbatched" in
  let points =
    List.map
      (fun rate ->
        let p, _ =
          run_point
            ~seed:(Printf.sprintf "%s|n%d|%s|open%.3f" seed n mode rate)
            ~cfg ~duration (Open_loop rate)
        in
        p)
      rates
  in
  let saturation, rounds =
    run_point
      ~seed:(Printf.sprintf "%s|n%d|%s|closed" seed n mode)
      ~cfg ~duration (Closed_loop clients_per_party)
  in
  { n; t; batched; points; saturation; rounds }

let run ?(smoke = false) ?sizes ?duration ?rates ?(clients_per_party = 64)
    ?(max_batch = 256) ?(seed = "throughput") () : report =
  let sizes =
    match sizes with
    | Some s -> s
    | None -> if smoke then [ (4, 1) ] else [ (4, 1); (7, 2); (10, 3) ]
  in
  let duration =
    match duration with Some d -> d | None -> if smoke then 2.0 else 10.0
  in
  let rates =
    match rates with
    | Some r -> r
    | None -> if smoke then [ 20.0 ] else [ 5.0; 10.0; 20.0; 40.0; 80.0 ]
  in
  let series =
    List.concat_map
      (fun (n, t) ->
        List.map
          (fun batched ->
            run_series ~seed ~n ~t ~batched ~max_batch ~duration ~rates
              ~clients_per_party)
          [ true; false ])
      sizes
  in
  { smoke; duration_s = duration; series }

let saturation_throughput (r : report) ~(n : int) ~(batched : bool) :
    float option =
  List.find_map
    (fun s ->
      if s.n = n && s.batched = batched then Some s.saturation.throughput_per_s
      else None)
    r.series

(* --- JSON rendering (sintra-bench-throughput-v1) --- *)

let json_point (p : point) : string =
  Printf.sprintf
    "{\"offered_per_s\":%.6g,\"issued\":%d,\"completed\":%d,\"delivered\":%d,\
     \"throughput_per_s\":%.6g,\"latency_mean_s\":%.6g,\"latency_p50_s\":%.6g,\
     \"latency_p90_s\":%.6g}"
    p.offered_per_s p.issued p.completed p.delivered p.throughput_per_s
    p.latency_mean_s p.latency_p50_s p.latency_p90_s

let json_series (s : series) : string =
  Printf.sprintf
    "{\"n\":%d,\"t\":%d,\"mode\":%S,\"points\":[%s],\"saturation\":%s,\
     \"rounds\":%d}"
    s.n s.t
    (if s.batched then "batched" else "unbatched")
    (String.concat "," (List.map json_point s.points))
    (json_point s.saturation) s.rounds

let to_json (r : report) : string =
  let crossover =
    match r.series with
    | [] -> "null"
    | first :: _ ->
      let n = first.n in
      (match
         ( saturation_throughput r ~n ~batched:true,
           saturation_throughput r ~n ~batched:false )
       with
       | Some b, Some u when u > 0.0 ->
         Printf.sprintf
           "{\"n\":%d,\"batched_saturation_per_s\":%.6g,\
            \"unbatched_saturation_per_s\":%.6g,\"ratio\":%.6g}"
           n b u (b /. u)
       | _ -> "null")
  in
  Printf.sprintf
    "{\n\"format\":\"sintra-bench-throughput-v1\",\n\"smoke\":%b,\n\
     \"duration_s\":%.6g,\n\"series\":[\n%s\n],\n\"crossover\":%s\n}\n"
    r.smoke r.duration_s
    (String.concat ",\n" (List.map json_series r.series))
    crossover
