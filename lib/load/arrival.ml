(* Arrival processes: stateful gap streams over a seeded DRBG. *)

type t = unit -> float

(* Exponential gap with mean 1/rate; u in [0,1) so 1-u in (0,1] and the
   log is finite. *)
let exp_gap (drbg : Hashes.Drbg.t) (rate : float) : float =
  let u = Hashes.Drbg.float drbg 1.0 in
  -.log (1.0 -. u) /. rate

let poisson ~(rate : float) (drbg : Hashes.Drbg.t) : t =
  if rate <= 0.0 then invalid_arg "Arrival.poisson: rate must be > 0";
  fun () -> exp_gap drbg rate

let bursty ~(rate : float) ~(burst : int) (drbg : Hashes.Drbg.t) : t =
  if rate <= 0.0 then invalid_arg "Arrival.bursty: rate must be > 0";
  if burst < 1 then invalid_arg "Arrival.bursty: burst must be >= 1";
  (* Mean idle between bursts = burst/rate, so the long-run rate matches
     the Poisson process at the same [rate]. *)
  let idle_rate = rate /. float_of_int burst in
  let left = ref 0 in
  fun () ->
    if !left > 0 then begin
      decr left;
      0.0
    end
    else begin
      left := burst - 1;
      exp_gap drbg idle_rate
    end

let fixed ~(period : float) : t =
  if period < 0.0 then invalid_arg "Arrival.fixed: period must be >= 0";
  fun () -> period

let next_gap (t : t) : float = t ()
