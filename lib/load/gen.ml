(* Open- and closed-loop clients issuing marker payloads on virtual time.

   Marker format: "ld|<client>|<k>".  The generator only ever parses its
   own markers back out of the delivery stream; anything else is ignored,
   so generated traffic can share a channel with other payloads. *)

type client = {
  id : int;
  party : int;
  mutable next_k : int;
  outstanding : (int, float) Hashtbl.t;   (* k -> issue time *)
}

(* Closed-loop continuation, looked up by client id when its completion
   comes back through [deliver]. *)
type closed_hook = { think : float; until : float; submit : string -> unit }

type t = {
  engine : Sim.Engine.t;
  mutable clients : client array;
  closed_hooks : (int, closed_hook) Hashtbl.t;   (* client id -> hook *)
  mutable issued : int;
  mutable completed : int;
  mutable latencies : float list;         (* newest first *)
}

let create ~(engine : Sim.Engine.t) : t =
  {
    engine;
    clients = [||];
    closed_hooks = Hashtbl.create 8;
    issued = 0;
    completed = 0;
    latencies = [];
  }

let new_client (t : t) ~(party : int) : client =
  let c = {
    id = Array.length t.clients;
    party;
    next_k = 0;
    outstanding = Hashtbl.create 8;
  }
  in
  t.clients <- Array.append t.clients [| c |];
  c

let payload_of (c : client) (k : int) : string = Printf.sprintf "ld|%d|%d" c.id k

let issue (t : t) (c : client) (submit : string -> unit) : unit =
  let k = c.next_k in
  c.next_k <- k + 1;
  t.issued <- t.issued + 1;
  Hashtbl.replace c.outstanding k (Sim.Engine.now t.engine);
  submit (payload_of c k)

let add_open (t : t) ~(party : int) ~(arrival : Arrival.t) ~(until : float)
    ~(submit : string -> unit) : unit =
  let c = new_client t ~party in
  (* Lazy schedule: each arrival schedules the next, so an overload rate
     never materializes more than one future event at a time. *)
  let rec arm () =
    let gap = Arrival.next_gap arrival in
    let at = Sim.Engine.now t.engine +. gap in
    if at <= until then
      Sim.Engine.schedule t.engine ~delay:gap (fun () ->
        issue t c submit;
        arm ())
  in
  arm ()

let add_closed (t : t) ~(party : int) ~(think : float) ~(until : float)
    ~(submit : string -> unit) : unit =
  let c = new_client t ~party in
  Hashtbl.replace t.closed_hooks c.id { think; until; submit };
  issue t c submit

let deliver (t : t) ~(party : int) (payload : string) : unit =
  match String.split_on_char '|' payload with
  | [ "ld"; cid; k ] ->
    (match (int_of_string_opt cid, int_of_string_opt k) with
     | Some cid, Some k when cid >= 0 && cid < Array.length t.clients ->
       let c = t.clients.(cid) in
       (* A client observes only its own party's delivery of its own
          request; deliveries at other parties are the same payload seen
          elsewhere. *)
       if c.party = party then begin
         match Hashtbl.find_opt c.outstanding k with
         | None -> ()
         | Some t0 ->
           Hashtbl.remove c.outstanding k;
           t.completed <- t.completed + 1;
           t.latencies <- (Sim.Engine.now t.engine -. t0) :: t.latencies;
           (match Hashtbl.find_opt t.closed_hooks cid with
            | Some h ->
              let next = Sim.Engine.now t.engine +. h.think in
              if next <= h.until then
                Sim.Engine.schedule t.engine ~delay:h.think (fun () ->
                  issue t c h.submit)
            | None -> ())
       end
     | _ -> ())
  | _ -> ()

let issued (t : t) = t.issued
let completed (t : t) = t.completed
let latencies (t : t) = List.rev t.latencies
