(* Open- and closed-loop clients issuing marker payloads on virtual time.

   Marker format: "ld|<client>|<k>".  The generator only ever parses its
   own markers back out of the delivery stream; anything else is ignored,
   so generated traffic can share a channel with other payloads.

   Causal tracing: every request allocates a flow id at issue time and
   emits a "submit" instant — the root of the request's causal DAG — plus
   a per-client request span.  The id is handed to the submit callback so
   the harness can thread it into [Cluster.inject ~cause], and the
   matching "complete" instant (emitted from inside the delivering
   handler, when the client's context is the party's shared one) carries
   the delivering message's id, closing the submit→deliver span. *)

type client = {
  id : int;
  party : int;
  mutable next_k : int;
  outstanding : (int, float * int) Hashtbl.t;  (* k -> issue time, flow id *)
  ctx : Trace.Ctx.t;                           (* party-bound trace context *)
}

(* Closed-loop continuation, looked up by client id when its completion
   comes back through [deliver]. *)
type closed_hook = {
  think : float;
  until : float;
  submit : cause:int -> string -> unit;
}

type t = {
  engine : Sim.Engine.t;
  ctx_of : int -> Trace.Ctx.t;
  mutable clients : client array;
  closed_hooks : (int, closed_hook) Hashtbl.t;   (* client id -> hook *)
  mutable issued : int;
  mutable completed : int;
  mutable latencies : float list;         (* newest first *)
}

let create ?ctx_of ~(engine : Sim.Engine.t) () : t =
  {
    engine;
    ctx_of =
      (match ctx_of with
      | Some f -> f
      | None -> fun party -> Sim.Engine.trace_ctx engine ~party);
    clients = [||];
    closed_hooks = Hashtbl.create 8;
    issued = 0;
    completed = 0;
    latencies = [];
  }

let new_client (t : t) ~(party : int) : client =
  let c = {
    id = Array.length t.clients;
    party;
    next_k = 0;
    outstanding = Hashtbl.create 8;
    ctx = t.ctx_of party;
  }
  in
  t.clients <- Array.append t.clients [| c |];
  c

let payload_of (c : client) (k : int) : string = Printf.sprintf "ld|%d|%d" c.id k

let span_pid (c : client) : string = Printf.sprintf "load/c%d" c.id

let issue (t : t) (c : client) (submit : cause:int -> string -> unit) : unit =
  let k = c.next_k in
  c.next_k <- k + 1;
  t.issued <- t.issued + 1;
  (* Allocated whether or not tracing is on, so the schedule is identical. *)
  let id = Sim.Engine.fresh_flow_id t.engine in
  Hashtbl.replace c.outstanding k (Sim.Engine.now t.engine, id);
  if Trace.Ctx.enabled c.ctx then begin
    Trace.Ctx.instant c.ctx ~pid:"load" ~cat:"load"
      ~args:
        [ ("id", Trace.Event.Int id);
          ("client", Trace.Event.Int c.id);
          ("k", Trace.Event.Int k) ]
      "submit";
    Trace.Ctx.span_begin c.ctx ~pid:(span_pid c) ~cat:"load"
      ~args:[ ("id", Trace.Event.Int id) ]
      (Printf.sprintf "req %d" k)
  end;
  submit ~cause:id (payload_of c k)

let add_open (t : t) ~(party : int) ~(arrival : Arrival.t) ~(until : float)
    ~(submit : cause:int -> string -> unit) : unit =
  let c = new_client t ~party in
  (* Lazy schedule: each arrival schedules the next, so an overload rate
     never materializes more than one future event at a time. *)
  let rec arm () =
    let gap = Arrival.next_gap arrival in
    let at = Sim.Engine.now t.engine +. gap in
    if at <= until then
      Sim.Engine.schedule t.engine ~delay:gap (fun () ->
        issue t c submit;
        arm ())
  in
  arm ()

let add_closed (t : t) ~(party : int) ~(think : float) ~(until : float)
    ~(submit : cause:int -> string -> unit) : unit =
  let c = new_client t ~party in
  Hashtbl.replace t.closed_hooks c.id { think; until; submit };
  issue t c submit

let deliver (t : t) ~(party : int) (payload : string) : unit =
  match String.split_on_char '|' payload with
  | [ "ld"; cid; k ] ->
    (match (int_of_string_opt cid, int_of_string_opt k) with
     | Some cid, Some k when cid >= 0 && cid < Array.length t.clients ->
       let c = t.clients.(cid) in
       (* A client observes only its own party's delivery of its own
          request; deliveries at other parties are the same payload seen
          elsewhere. *)
       if c.party = party then begin
         match Hashtbl.find_opt c.outstanding k with
         | None -> ()
         | Some (t0, id) ->
           Hashtbl.remove c.outstanding k;
           t.completed <- t.completed + 1;
           t.latencies <- (Sim.Engine.now t.engine -. t0) :: t.latencies;
           if Trace.Ctx.enabled c.ctx then begin
             (* Emitted inside the delivering handler: with the party's
                shared context, the "cause" stamp joins this completion to
                the message that delivered it. *)
             Trace.Ctx.instant c.ctx ~pid:"load" ~cat:"load"
               ~args:
                 [ ("id", Trace.Event.Int id);
                   ("client", Trace.Event.Int c.id);
                   ("k", Trace.Event.Int k) ]
               "complete";
             Trace.Ctx.span_end c.ctx ~pid:(span_pid c) ~cat:"load"
               ~args:[ ("id", Trace.Event.Int id) ]
               (Printf.sprintf "req %d" k)
           end;
           (match Hashtbl.find_opt t.closed_hooks cid with
            | Some h ->
              let next = Sim.Engine.now t.engine +. h.think in
              if next <= h.until then
                Sim.Engine.schedule t.engine ~delay:h.think (fun () ->
                  issue t c h.submit)
            | None -> ())
       end
     | _ -> ())
  | _ -> ()

let issued (t : t) = t.issued
let completed (t : t) = t.completed
let latencies (t : t) = List.rev t.latencies
