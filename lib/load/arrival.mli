(** Arrival processes for the load generator.

    A process is a stateful stream of inter-arrival gaps in virtual
    seconds; every random draw comes from a seeded {!Hashes.Drbg}, so a
    load run is as replayable as the protocols it drives. *)

type t

val poisson : rate:float -> Hashes.Drbg.t -> t
(** Poisson arrivals: exponentially distributed gaps with mean [1/rate]
    (arrivals per virtual second).  The memoryless baseline of open-loop
    load.  @raise Invalid_argument if [rate <= 0]. *)

val bursty : rate:float -> burst:int -> Hashes.Drbg.t -> t
(** Bursty arrivals averaging [rate] per second: bursts of exactly [burst]
    back-to-back requests (zero gap within a burst) separated by
    exponential idle periods with mean [burst/rate] — same offered load as
    {!poisson} at equal [rate], maximally clumped.  The batching stressor.
    @raise Invalid_argument if [rate <= 0] or [burst < 1]. *)

val fixed : period:float -> t
(** Deterministic arrivals every [period] seconds.
    @raise Invalid_argument if [period < 0]. *)

val next_gap : t -> float
(** Draw the gap until the next arrival; always finite and [>= 0]. *)
