(** RSA with full-domain-hash signatures.

    Every SINTRA party holds an ordinary signing key (used by the atomic
    broadcast protocol to sign per-round messages), and the multi-signature
    implementation of threshold signatures is a vector of these.  Signing
    uses CRT, the optimization the paper credits for the fast
    multi-signature path (Figure 6). *)

type public = {
  n : Bignum.Nat.t;
  e : Bignum.Nat.t;
}

type secret = {
  pub : public;
  d : Bignum.Nat.t;
  p : Bignum.Nat.t;
  q : Bignum.Nat.t;
  d_p : Bignum.Nat.t;     (** [d mod p-1] *)
  d_q : Bignum.Nat.t;     (** [d mod q-1] *)
  q_inv : Bignum.Nat.t;   (** [q^-1 mod p] *)
}

val default_e : Bignum.Nat.t
(** 65537. *)

val keygen : ?e:Bignum.Nat.t -> drbg:Hashes.Drbg.t -> bits:int -> unit -> secret
(** Deterministic (DRBG-driven) key generation with a [bits]-bit modulus. *)

val fdh : public -> ctx:string -> string -> Bignum.Nat.t
(** Full-domain hash of a message into [[0, n)], domain-separated by [ctx]
    (SINTRA binds every signature to its protocol instance). *)

val crt_power : secret -> Bignum.Nat.t -> Bignum.Nat.t
(** [x^d mod n] by the Chinese remainder theorem (~4x faster than the
    direct exponentiation). *)

val sign : secret -> ctx:string -> string -> string
(** FDH signature, as a fixed-width byte string. *)

val verify : public -> ctx:string -> signature:string -> string -> bool
(** FDH verification: one short exponentiation ([e = 65537] is 17
    multiplications). *)

val signature_bytes : public -> int
(** Signature size, for wire-cost accounting. *)

val public_to_bytes : public -> string
(** A canonical encoding of the public key (for hashing/binding). *)
