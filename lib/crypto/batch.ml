(* Batch verification of share proofs by small-exponent random linear
   combination, with bisection fall-back to isolate the bad shares.

   Both proof systems in this repository carry their Fiat-Shamir
   commitments, so each proof reduces to algebraic verification equations

     DLEQ (order-q group):   g1^z = a1 * h1^c      g2^z = a2 * h2^c
     Shoup (unknown order):  v^z  = v' * v_i^c     xt^z = x' * (x_i^2)^c

   To check k proofs at once, draw small coefficients d_1..d_k (64 bits,
   nonzero) and test the single combined equation

     prod_j LHS_j^{d_j}  =  prod_j RHS_j^{d_j}

   by two k-way multi-exponentiations (Nat.powmod_multi) sharing one
   squaring chain.  If every proof is valid the combined equation holds
   identically.  If some proof is invalid, the combination detects it
   unless the coefficients hit a bad-share cancellation — probability
   2^-64 per coefficient for an adversary that cannot predict them.  The
   coefficients are derived deterministically from a hash of the entire
   batch (statements and proofs), so verification is reproducible and an
   adversary must commit to its shares before learning the coefficients —
   the standard derandomization of Bellare-Garay-Rabin batch verification.

   A failing batch is bisected: each half is re-checked (with fresh
   coefficients, since they hash the sub-batch), and singleton leaves run
   the exact one-share verifier — so the returned indices are precisely
   the shares that fail individual verification, and Byzantine senders are
   identified exactly as on the one-at-a-time path. *)

open Bignum

type verdict =
  | All_valid
  | Invalid of int list

(* Nonzero 64-bit coefficients derived from the batch transcript. *)
let coefficients ~(tag : string) (parts : string list) (k : int) : Nat.t array =
  let seed = Hashes.Sha256.digest_list ("sintra-batch|" :: tag :: parts) in
  let drbg = Hashes.Drbg.create ~seed in
  Array.init k (fun _ ->
    Nat.add Nat.one (Nat.of_bytes_be (Hashes.Drbg.bytes drbg 8)))

(* Generic driver: [pre i] is the cheap per-item well-formedness check
   (mirroring what the single verifier rejects before any exponentiation),
   [combined idxs] the RLC test over a sub-batch, [single i] the exact
   one-item verifier used at the leaves.  Returns the indices failing
   individual verification, in increasing order. *)
let run ~(n : int) ~(pre : int -> bool) ~(combined : int list -> bool)
    ~(single : int -> bool) : verdict =
  let malformed = ref [] in
  let candidates = ref [] in
  for i = n - 1 downto 0 do
    if pre i then candidates := i :: !candidates
    else malformed := i :: !malformed
  done;
  let rec isolate idxs =
    match idxs with
    | [] -> []
    | [ i ] -> if single i then [] else [ i ]
    | _ ->
      if combined idxs then []
      else begin
        let arr = Array.of_list idxs in
        let mid = Array.length arr / 2 in
        let left = Array.to_list (Array.sub arr 0 mid) in
        let right = Array.to_list (Array.sub arr mid (Array.length arr - mid)) in
        isolate left @ isolate right
      end
  in
  let bad =
    match !candidates with
    | [] -> []
    | [ i ] -> if single i then [] else [ i ]
    | idxs -> if combined idxs then [] else isolate idxs
  in
  match List.sort compare (!malformed @ bad) with
  | [] -> All_valid
  | bad -> Invalid bad

(* --- DLEQ proofs sharing both statement bases (the coin-share shape) --- *)

(* Items are (ctx, h1, h2, proof) with common g1 and g2.  [h1_trusted]
   skips the subgroup membership test on the h1 side — sound when the h1
   are dealer-published verification keys, which are group members by
   construction (the one-at-a-time path re-checks them on every share). *)
let dleq (grp : Group.t) ~(g1 : Group.elt) ~(g2 : Group.elt)
    ?(h1_trusted = false)
    (items : (string * Group.elt * Group.elt * Dleq.t) list) : verdict =
  let items = Array.of_list items in
  let n = Array.length items in
  let q = grp.Group.q in
  let transcript_parts () =
    let buf = Buffer.create (64 * n) in
    Buffer.add_string buf (Group.elt_to_bytes grp g1);
    Buffer.add_string buf (Group.elt_to_bytes grp g2);
    Array.iter
      (fun (ctx, h1, h2, pf) ->
        Buffer.add_string buf ctx;
        Buffer.add_char buf '\x00';
        Buffer.add_string buf (Group.elt_to_bytes grp h1);
        Buffer.add_string buf (Group.elt_to_bytes grp h2);
        Buffer.add_string buf (Dleq.to_bytes grp pf))
      items;
    [ Buffer.contents buf ]
  in
  let pre i =
    let (_, h1, h2, pf) = items.(i) in
    (not (Nat.is_zero pf.Dleq.a1)) && Nat.compare pf.Dleq.a1 grp.Group.p < 0
    && (not (Nat.is_zero pf.Dleq.a2)) && Nat.compare pf.Dleq.a2 grp.Group.p < 0
    && (h1_trusted || Group.is_member grp h1)
    && Group.is_member grp h2
  in
  let combined idxs =
    let k = List.length idxs in
    let delta = coefficients ~tag:"dleq" (transcript_parts ()) (2 * k) in
    (* g1^(sum d_j z_j) * g2^(sum e_j z_j)  =
       prod a1_j^{d_j} h1_j^{d_j c_j} a2_j^{e_j} h2_j^{e_j c_j}, all
       exponents mod q (the hypothesis side lives in the order-q
       subgroup; the commitment side carries its own small exponents). *)
    let sum_d_z = ref Nat.zero and sum_e_z = ref Nat.zero in
    let rhs = ref [] in
    List.iteri
      (fun pos i ->
        let (ctx, h1, h2, pf) = items.(i) in
        let d = delta.(2 * pos) and e = delta.((2 * pos) + 1) in
        let c = Dleq.challenge grp ~ctx ~g1 ~h1 ~g2 ~h2 pf in
        let z = Nat.rem pf.Dleq.response q in
        sum_d_z := Nat.rem (Nat.add !sum_d_z (Nat.mul d z)) q;
        sum_e_z := Nat.rem (Nat.add !sum_e_z (Nat.mul e z)) q;
        rhs :=
          (pf.Dleq.a1, d)
          :: (h1, Nat.rem (Nat.mul d c) q)
          :: (pf.Dleq.a2, e)
          :: (h2, Nat.rem (Nat.mul e c) q)
          :: !rhs)
      idxs;
    let lhs = Group.mul_exp_multi grp [ (g1, !sum_d_z); (g2, !sum_e_z) ] in
    Group.elt_equal lhs (Group.mul_exp_multi grp !rhs)
  in
  let single i =
    let (ctx, h1, h2, pf) = items.(i) in
    Dleq.verify grp ~ctx ~g1 ~h1 ~g2 ~h2 pf
  in
  run ~n ~pre ~combined ~single

(* --- threshold-coin shares --- *)

let coin_shares (pub : Threshold_coin.public) ~(name : string)
    (shares : Threshold_coin.share list) : verdict =
  let grp = pub.Threshold_coin.group in
  let gtilde = Threshold_coin.coin_base pub name in
  (* Shares with an out-of-range origin have no verification key; split
     them out as invalid before forming the DLEQ items. *)
  let shares = Array.of_list shares in
  let n = Array.length shares in
  let in_range s =
    s.Threshold_coin.origin >= 1 && s.Threshold_coin.origin <= pub.Threshold_coin.n
  in
  let items = ref [] in
  let item_index = Array.make n (-1) in
  let bad_origin = ref [] in
  for i = n - 1 downto 0 do
    let s = shares.(i) in
    if in_range s then begin
      item_index.(i) <- 0;  (* mark as participating; position fixed below *)
      items :=
        ( "coin-share|" ^ name ^ "|" ^ string_of_int s.Threshold_coin.origin,
          pub.Threshold_coin.share_vks.(s.Threshold_coin.origin - 1),
          s.Threshold_coin.value,
          s.Threshold_coin.proof )
        :: !items
    end
    else bad_origin := i :: !bad_origin
  done;
  (* Map positions in the filtered item list back to input indices. *)
  let back = Array.of_list (List.filteri (fun i _ -> item_index.(i) >= 0)
                              (List.init n (fun i -> i))) in
  match dleq grp ~g1:grp.Group.g ~g2:gtilde ~h1_trusted:true !items with
  | All_valid ->
    if !bad_origin = [] then All_valid else Invalid !bad_origin
  | Invalid bad ->
    Invalid (List.sort compare (!bad_origin @ List.map (fun j -> back.(j)) bad))

(* --- Shoup threshold-signature shares --- *)

let tsig_shares (pub : Threshold_sig.public) ~(ctx : string) (msg : string)
    (shares : Threshold_sig.share list) : verdict =
  let shares = Array.of_list shares in
  let n = Array.length shares in
  let nmod = pub.Threshold_sig.n_mod in
  (* xtilde = x^{4 Delta} is shared by every proof on this message:
     computed once per batch, where the one-at-a-time path pays it per
     share. *)
  let xtilde = lazy (Threshold_sig.xtilde_rep pub ~ctx msg) in
  let pre i =
    let s = shares.(i) in
    s.Threshold_sig.origin >= 1
    && s.Threshold_sig.origin <= pub.Threshold_sig.nparties
    && Nat.compare s.Threshold_sig.x_i nmod < 0
    && not (Nat.is_zero s.Threshold_sig.x_i)
  in
  let transcript_parts () =
    let buf = Buffer.create (64 * n) in
    Buffer.add_string buf ctx;
    Buffer.add_char buf '\x00';
    Buffer.add_string buf msg;
    Array.iter
      (fun s ->
        Buffer.add_string buf (string_of_int s.Threshold_sig.origin);
        Buffer.add_string buf (Nat.to_bytes_be s.Threshold_sig.x_i);
        Buffer.add_string buf (Nat.to_bytes_be s.Threshold_sig.proof_v);
        Buffer.add_string buf (Nat.to_bytes_be s.Threshold_sig.proof_x);
        Buffer.add_string buf (Nat.to_bytes_be s.Threshold_sig.proof_z))
      shares;
    [ Buffer.contents buf ]
  in
  let combined idxs =
    let k = List.length idxs in
    let xt = Lazy.force xtilde in
    let delta = coefficients ~tag:"tsig" (transcript_parts ()) (2 * k) in
    (* v^(sum d_j z_j) * xt^(sum e_j z_j)  =
       prod v'_j^{d_j} v_ij^{d_j c_j} x'_j^{e_j} (x_ij^2)^{e_j c_j}.
       The group QR_n has unknown order, so the exponents stay full-size
       integers — never reduced. *)
    let sum_d_z = ref Nat.zero and sum_e_z = ref Nat.zero in
    let rhs = ref [] in
    List.iteri
      (fun pos i ->
        let s = shares.(i) in
        let d = delta.(2 * pos) and e = delta.((2 * pos) + 1) in
        let c = Threshold_sig.share_challenge pub ~xtilde:xt s in
        let x_i_sq = Nat.rem (Nat.sqr s.Threshold_sig.x_i) nmod in
        sum_d_z := Nat.add !sum_d_z (Nat.mul d s.Threshold_sig.proof_z);
        sum_e_z := Nat.add !sum_e_z (Nat.mul e s.Threshold_sig.proof_z);
        rhs :=
          (s.Threshold_sig.proof_v, d)
          :: (pub.Threshold_sig.vks.(s.Threshold_sig.origin - 1), Nat.mul d c)
          :: (s.Threshold_sig.proof_x, e)
          :: (x_i_sq, Nat.mul e c)
          :: !rhs)
      idxs;
    let lhs =
      Nat.powmod_multi
        [ (pub.Threshold_sig.v, !sum_d_z); (xt, !sum_e_z) ] nmod
    in
    Nat.equal lhs (Nat.powmod_multi !rhs nmod)
  in
  let single i = Threshold_sig.verify_share pub ~ctx msg shares.(i) in
  run ~n ~pre ~combined ~single
