(** Shoup's practical RSA threshold signatures (EUROCRYPT 2000).

    Dual-threshold [(n, k, t)] signatures over a safe-prime RSA modulus: any
    [k] verified signature shares combine — by integer Lagrange
    interpolation in the exponent, scaled by [Delta = n!] — into a
    {e standard} RSA signature verifiable with the public key [(n, e)]
    alone.  Share correctness is proved with a non-interactive
    equality-of-logs proof over the unknown-order group [QR_n].  SINTRA uses
    these (or the interchangeable multi-signatures) inside consistent
    broadcast (k = ceil((n+t+1)/2)) and Byzantine agreement (k = n-t). *)

type public = {
  n_mod : Bignum.Nat.t;         (** RSA modulus [pq], safe primes *)
  e : Bignum.Nat.t;             (** public exponent, prime *)
  nparties : int;
  k : int;
  t : int;
  v : Bignum.Nat.t;             (** verification base, generates [QR_n] *)
  vks : Bignum.Nat.t array;     (** [v_i = v^(s_i)], index [i-1] *)
  v_tbl : Bignum.Nat.Fixed_base.ctx;
  (** fixed-base window table for [v], wide enough for the integer proof
      response [z = s_i*c + r] ([|n| + 2*256 + 1] bits), built by {!deal};
      makes the [v]-power of every {!release} and {!verify_share} a
      squaring-free table walk *)
}

type secret_share = {
  index : int;                  (** 1-based *)
  s_i : Bignum.Nat.t;           (** polynomial share of [d = e^-1 mod p'q'] *)
}

type share = {
  origin : int;
  x_i : Bignum.Nat.t;           (** [x^(2*Delta*s_i) mod n] *)
  proof_v : Bignum.Nat.t;       (** proof commitment [v^r] *)
  proof_x : Bignum.Nat.t;       (** proof commitment [xtilde^r] *)
  proof_z : Bignum.Nat.t;       (** integer response [s_i*c + r] *)
}
(** The equality-of-logs proof carries its commitments; the Fiat-Shamir
    challenge is recomputed by verifiers.  This keeps the verification
    equations [v^z = v' * v_i^c] and [xtilde^z = x' * (x_i^2)^c] algebraic
    in the proof components, so {!Batch.tsig_shares} can check many shares
    with one small-exponent random linear combination. *)

type keys = { public : public; shares : secret_share array }

val deal :
  ?e:Bignum.Nat.t -> drbg:Hashes.Drbg.t -> modulus_bits:int ->
  nparties:int -> k:int -> t:int -> unit -> keys
(** The trusted dealer: safe-prime modulus, sharing of [d], verification
    keys.  @raise Invalid_argument unless [t < k <= nparties - t]. *)

val message_rep : public -> ctx:string -> string -> Bignum.Nat.t
(** The full-domain hash actually signed. *)

val release : drbg:Hashes.Drbg.t -> public -> secret_share -> ctx:string -> string -> share
(** Party [i]'s signature share [x^(2*Delta*s_i)] with its proof of
    correctness; the proof commitment [v^r] rides the {!v_tbl}
    fixed-base table. *)

val xtilde_rep : public -> ctx:string -> string -> Bignum.Nat.t
(** [xtilde = x^(4*Delta) mod n] for the message representative [x] — the
    common base of every share proof on the same message.  Exposed so batch
    verification computes it once per message instead of once per share. *)

val share_challenge : public -> xtilde:Bignum.Nat.t -> share -> Bignum.Nat.t
(** The Fiat-Shamir challenge [c = H(v, xtilde, v_i, x_i^2, v', x')] this
    share's proof is checked against — exposed for {!Batch}'s combined
    verification equation. *)

val verify_share : public -> ctx:string -> string -> share -> bool
(** Check the share's equality-of-logs proof: recompute the challenge from
    the carried commitments and check both verification equations.  All
    exponents positive (no inversions); the [v]-power is a fixed-base
    table walk ({!v_tbl}) and the challenge powers are short. *)

val verify_share_reference : public -> ctx:string -> string -> share -> bool
(** The textbook path: {!verify_share}'s exact accept set computed with
    plain modular exponentiations only (no fixed-base table) — the
    reference twin the equivalence tests and the amortization benchmarks
    compare the fast single and {!Batch} paths against. *)

val assemble : public -> ctx:string -> string -> share list -> string
(** Combine [k] distinct verified shares into the standard RSA signature
    (the same bytes whichever subset is used).
    @raise Invalid_argument with fewer than [k] distinct origins. *)

val verify : public -> ctx:string -> signature:string -> string -> bool
(** Plain RSA verification — usable by anyone holding only [(n, e)]. *)

val signature_bytes : public -> int
(** Size of an assembled signature ([|n|] bytes), for wire-cost
    accounting. *)
