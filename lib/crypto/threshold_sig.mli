(** Shoup's practical RSA threshold signatures (EUROCRYPT 2000).

    Dual-threshold [(n, k, t)] signatures over a safe-prime RSA modulus: any
    [k] verified signature shares combine — by integer Lagrange
    interpolation in the exponent, scaled by [Delta = n!] — into a
    {e standard} RSA signature verifiable with the public key [(n, e)]
    alone.  Share correctness is proved with a non-interactive
    equality-of-logs proof over the unknown-order group [QR_n].  SINTRA uses
    these (or the interchangeable multi-signatures) inside consistent
    broadcast (k = ceil((n+t+1)/2)) and Byzantine agreement (k = n-t). *)

type public = {
  n_mod : Bignum.Nat.t;         (** RSA modulus [pq], safe primes *)
  e : Bignum.Nat.t;             (** public exponent, prime *)
  nparties : int;
  k : int;
  t : int;
  v : Bignum.Nat.t;             (** verification base, generates [QR_n] *)
  vks : Bignum.Nat.t array;     (** [v_i = v^(s_i)], index [i-1] *)
  v_tbl : Bignum.Nat.Fixed_base.ctx;
  (** fixed-base window table for [v], wide enough for the integer proof
      response [z = s_i*c + r] ([|n| + 2*256 + 1] bits), built by {!deal};
      makes the [v]-power of every {!release} and {!verify_share} a
      squaring-free table walk *)
}

type secret_share = {
  index : int;                  (** 1-based *)
  s_i : Bignum.Nat.t;           (** polynomial share of [d = e^-1 mod p'q'] *)
}

type share = {
  origin : int;
  x_i : Bignum.Nat.t;           (** [x^(2*Delta*s_i) mod n] *)
  proof_c : Bignum.Nat.t;       (** Fiat-Shamir challenge *)
  proof_z : Bignum.Nat.t;       (** integer response [s_i*c + r] *)
}

type keys = { public : public; shares : secret_share array }

val deal :
  ?e:Bignum.Nat.t -> drbg:Hashes.Drbg.t -> modulus_bits:int ->
  nparties:int -> k:int -> t:int -> unit -> keys
(** The trusted dealer: safe-prime modulus, sharing of [d], verification
    keys.  @raise Invalid_argument unless [t < k <= nparties - t]. *)

val message_rep : public -> ctx:string -> string -> Bignum.Nat.t
(** The full-domain hash actually signed. *)

val release : drbg:Hashes.Drbg.t -> public -> secret_share -> ctx:string -> string -> share
(** Party [i]'s signature share [x^(2*Delta*s_i)] with its proof of
    correctness; the proof commitment [v^r] rides the {!v_tbl}
    fixed-base table. *)

val verify_share : public -> ctx:string -> string -> share -> bool
(** Check the share's equality-of-logs proof.  The two proof checks are a
    fixed-base [v]-power ({!v_tbl}) and one simultaneous double
    exponentiation ([Bignum.Nat.powmod2]) — the Montgomery/multi-exp fast
    path for the hot verification loop. *)

val assemble : public -> ctx:string -> string -> share list -> string
(** Combine [k] distinct verified shares into the standard RSA signature
    (the same bytes whichever subset is used).
    @raise Invalid_argument with fewer than [k] distinct origins. *)

val verify : public -> ctx:string -> signature:string -> string -> bool
(** Plain RSA verification — usable by anyone holding only [(n, e)]. *)

val signature_bytes : public -> int
(** Size of an assembled signature ([|n|] bytes), for wire-cost
    accounting. *)
