(** Shoup's practical RSA threshold signatures (EUROCRYPT 2000).

    Dual-threshold [(n, k, t)] signatures over a safe-prime RSA modulus: any
    [k] verified signature shares combine — by integer Lagrange
    interpolation in the exponent, scaled by [Delta = n!] — into a
    {e standard} RSA signature verifiable with the public key [(n, e)]
    alone.  Share correctness is proved with a non-interactive
    equality-of-logs proof over the unknown-order group [QR_n].  SINTRA uses
    these (or the interchangeable multi-signatures) inside consistent
    broadcast (k = ceil((n+t+1)/2)) and Byzantine agreement (k = n-t). *)

type public = {
  n_mod : Bignum.Nat.t;         (** RSA modulus [pq], safe primes *)
  e : Bignum.Nat.t;             (** public exponent, prime *)
  nparties : int;
  k : int;
  t : int;
  v : Bignum.Nat.t;             (** verification base, generates [QR_n] *)
  vks : Bignum.Nat.t array;     (** [v_i = v^(s_i)], index [i-1] *)
}

type secret_share = {
  index : int;                  (** 1-based *)
  s_i : Bignum.Nat.t;           (** polynomial share of [d = e^-1 mod p'q'] *)
}

type share = {
  origin : int;
  x_i : Bignum.Nat.t;           (** [x^(2*Delta*s_i) mod n] *)
  proof_c : Bignum.Nat.t;       (** Fiat-Shamir challenge *)
  proof_z : Bignum.Nat.t;       (** integer response [s_i*c + r] *)
}

type keys = { public : public; shares : secret_share array }

val deal :
  ?e:Bignum.Nat.t -> drbg:Hashes.Drbg.t -> modulus_bits:int ->
  nparties:int -> k:int -> t:int -> unit -> keys
(** The trusted dealer: safe-prime modulus, sharing of [d], verification
    keys.  @raise Invalid_argument unless [t < k <= nparties - t]. *)

val message_rep : public -> ctx:string -> string -> Bignum.Nat.t
(** The full-domain hash actually signed. *)

val release : drbg:Hashes.Drbg.t -> public -> secret_share -> ctx:string -> string -> share
val verify_share : public -> ctx:string -> string -> share -> bool

val assemble : public -> ctx:string -> string -> share list -> string
(** Combine [k] distinct verified shares into the standard RSA signature
    (the same bytes whichever subset is used).
    @raise Invalid_argument with fewer than [k] distinct origins. *)

val verify : public -> ctx:string -> signature:string -> string -> bool
(** Plain RSA verification — usable by anyone holding only [(n, e)]. *)

val signature_bytes : public -> int
