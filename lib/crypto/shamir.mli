(** Shamir polynomial secret sharing over [Z_m].

    Used with a prime modulus for the discrete-log schemes, and — via the
    integer Lagrange coefficients scaled by [Delta = n!] — for interpolation
    "in the exponent" over groups of unknown order, as required by Shoup's
    RSA threshold signatures. *)

type share = { index : int;  (** evaluation point, 1-based *)
               value : Bignum.Nat.t }

val share_secret :
  drbg:Hashes.Drbg.t -> modulus:Bignum.Nat.t -> secret:Bignum.Nat.t ->
  n:int -> k:int -> share array
(** Draw a uniform degree-(k-1) polynomial [f] with [f(0) = secret] and
    return [f(1) .. f(n)].
    @raise Invalid_argument unless [1 <= k <= n]. *)

val lagrange_coeff :
  modulus:Bignum.Nat.t -> points:int list -> j:int -> at:int -> Bignum.Nat.t
(** The weight of share [j] when interpolating [f(at)] from the shares at
    [points], mod [modulus]. *)

val interpolate :
  modulus:Bignum.Nat.t -> shares:share list -> at:int -> Bignum.Nat.t
(** Reconstruct [f(at)] (use [at = 0] for the secret) from [>= k] shares. *)

val delta : int -> Bignum.Nat.t
(** [delta n = n!]. *)

val integer_lagrange_coeff :
  n:int -> points:int list -> j:int -> at:int -> Bignum.Bigint.t
(** The [Delta]-scaled Lagrange numerator
    [n! * prod_{l <> j} (at - l)/(j - l)], always an integer; signed. *)
