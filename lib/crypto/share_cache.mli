(** A bounded, deterministic cache of verified shares.

    Retransmits, replays and catch-up DECIDED batches carry shares the
    receiver has already verified; this cache remembers
    [(scheme, message digest, sender, share index)] for every share that
    passed verification so the second sighting costs a hash-table probe
    instead of a multi-exponentiation.

    Keys are built over a {e digest} of the message (SHA-1 or SHA-256
    output, enforced by length here and by the sintra-lint S5 rule
    [cache-key-digest] at call sites), membership and insertion never
    iterate the table, and eviction is FIFO in insertion order — cache
    behaviour is a pure function of the call sequence.  Entries belong to
    a [group] (protocol-instance id) evicted wholesale when the instance
    is garbage-collected, and the table never exceeds its capacity. *)

type t
(** A cache instance (one per party; volatile — crash discards it). *)

val create : cap:int -> t
(** An empty cache holding at most [cap] entries.
    @raise Invalid_argument if [cap < 1]. *)

val mem :
  t -> scheme:string -> digest:string -> sender:int -> index:int -> bool
(** Membership probe; updates the hit/miss counters.
    @raise Invalid_argument if [digest] is not a SHA-1/SHA-256 digest. *)

val add :
  t -> group:string -> scheme:string -> digest:string -> sender:int ->
  index:int -> unit
(** Record a verified share under eviction group [group], evicting the
    oldest live entry first when at capacity.  Idempotent.
    @raise Invalid_argument if [digest] is not a SHA-1/SHA-256 digest. *)

val evict_group : t -> string -> unit
(** Drop every entry added under this group — called when the owning
    protocol instance is garbage-collected, so replayed frames cannot
    resurrect verification state. *)

val clear : t -> unit
(** Drop everything (crash recovery). *)

val size : t -> int
(** Current number of live entries ([<= cap] always) — the cache-size
    gauge. *)

val cap : t -> int
(** The capacity the cache was created with. *)

val hits : t -> int
(** Probes that found their key. *)

val misses : t -> int
(** Probes that did not. *)
