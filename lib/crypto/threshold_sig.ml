(* Shoup's practical RSA threshold signatures (EUROCRYPT 2000).

   Dealer: a safe-prime RSA modulus n = pq with p = 2p'+1, q = 2q'+1 and
   secret group order m = p'q'; public exponent e (prime, coprime to m);
   d = e^{-1} mod m shared with a degree-(k-1) polynomial over Z_m.
   Verification keys v (a generator of the cyclic group QR_n) and
   v_i = v^{s_i}.

   To sign a message hash x in Z_n*, party i releases
       x_i = x^{2*Delta*s_i} mod n,   Delta = nparties!
   together with a non-interactive proof (over the unknown-order group, so
   the response is an integer, not reduced) that
       log_{x^{4 Delta}} (x_i^2)  =  log_v (v_i).
   Any k valid shares combine by integer-Lagrange interpolation in the
   exponent to w = x^{4 Delta^2 d}; since gcd(4 Delta^2, e) = 1, an extended
   GCD step recovers y = x^d — a *standard* RSA signature verifiable with
   (n, e) alone, exactly as the paper requires. *)

open Bignum

type public = {
  n_mod : Nat.t;                (* RSA modulus *)
  e : Nat.t;                    (* public exponent, prime *)
  nparties : int;
  k : int;
  t : int;
  v : Nat.t;                    (* verification base, generator of QR_n *)
  vks : Nat.t array;            (* v_i = v^{s_i}, index i-1 *)
  v_tbl : Nat.Fixed_base.ctx;   (* fixed-base table for v, covering z = s_i*c + r *)
}

type secret_share = {
  index : int;                  (* 1-based *)
  s_i : Nat.t;                  (* polynomial share of d, mod m *)
}

(* The correctness proof carries its two Fiat-Shamir commitments (v^r and
   xtilde^r) and the integer response; the challenge is recomputed by the
   verifier as c = H(..., v', x').  Commitment-carrying proofs make the
   verification equations v^z = v' * v_i^c and xtilde^z = x' * (x_i^2)^c
   algebraic in the proof components — checkable for many shares at once by
   a small-exponent random linear combination (see {!Batch}), and with no
   modular inversions even one at a time. *)
type share = {
  origin : int;
  x_i : Nat.t;                  (* x^{2 Delta s_i} *)
  proof_v : Nat.t;              (* commitment v^r *)
  proof_x : Nat.t;              (* commitment xtilde^r *)
  proof_z : Nat.t;              (* integer response z = s_i*c + r *)
}

type keys = { public : public; shares : secret_share array }

let challenge_bits = 256

let deal ?(e = Nat.of_int 65537) ~(drbg : Hashes.Drbg.t) ~(modulus_bits : int) ~nparties ~k ~t ()
    : keys =
  if not (k > t && k <= nparties - t) then
    invalid_arg "Threshold_sig.deal: need t < k <= n - t";
  let random_bytes = Hashes.Drbg.random_bytes drbg in
  let half = modulus_bits / 2 in
  let p = Prime.gen_safe_prime ~random_bytes half in
  let rec gen_q () =
    let q = Prime.gen_safe_prime ~random_bytes half in
    if Nat.equal p q then gen_q () else q
  in
  let q = gen_q () in
  let n_mod = Nat.mul p q in
  let p' = Nat.shift_right (Nat.sub p Nat.one) 1 in
  let q' = Nat.shift_right (Nat.sub q Nat.one) 1 in
  let m = Nat.mul p' q' in
  let d = Bigint.to_nat (Bigint.invmod (Bigint.of_nat e) (Bigint.of_nat m)) in
  let shamir = Shamir.share_secret ~drbg ~modulus:m ~secret:d ~n:nparties ~k in
  (* v: square of a random unit is a QR; with overwhelming probability a
     generator of the cyclic group QR_n (order p'q'). *)
  let v =
    let r = Nat.add Nat.two (Nat.random_below ~random_bytes (Nat.sub n_mod (Nat.of_int 4))) in
    Nat.rem (Nat.sqr r) n_mod
  in
  (* Proof exponents reach z = s_i*c + r < 2^(|n| + 2*challenge_bits + 1);
     build v's window table wide enough that every v-power in release and
     verify_share is a table hit. *)
  let v_tbl =
    Nat.Fixed_base.create ~base:v ~modulus:n_mod
      ~max_bits:(Nat.numbits n_mod + (2 * challenge_bits) + 1)
  in
  let vks = Array.map (fun s -> Nat.Fixed_base.pow v_tbl s.Shamir.value) shamir in
  {
    public = { n_mod; e; nparties; k; t; v; vks; v_tbl };
    shares = Array.map (fun s -> { index = s.Shamir.index; s_i = s.Shamir.value }) shamir;
  }

let delta (pub : public) : Nat.t = Shamir.delta pub.nparties

(* The value being signed: a full-domain hash of the message into Z_n,
   domain-separated by the protocol context. *)
let message_rep (pub : public) ~(ctx : string) (msg : string) : Nat.t =
  Rsa.fdh { Rsa.n = pub.n_mod; e = pub.e } ~ctx msg

let hash_challenge (parts : Nat.t list) : Nat.t =
  let joined =
    String.concat "\x00" (List.map (fun p -> Nat.to_bytes_be p) parts)
  in
  let b0 = Hashes.Sha256.digest_list [ "tsig-chal|0|"; joined ] in
  let b1 = Hashes.Sha256.digest_list [ "tsig-chal|1|"; joined ] in
  Nat.shift_right (Nat.of_bytes_be (b0 ^ b1)) (512 - challenge_bits)

let release ~(drbg : Hashes.Drbg.t) (pub : public) (sk : secret_share) ~(ctx : string)
    (msg : string) : share =
  let x = message_rep pub ~ctx msg in
  let dlt = delta pub in
  let two_delta = Nat.shift_left dlt 1 in
  let x_i = Nat.powmod x (Nat.mul two_delta sk.s_i) pub.n_mod in
  (* Proof of correctness over the unknown-order group QR_n. *)
  let xtilde = Nat.powmod x (Nat.shift_left dlt 2) pub.n_mod in
  let x_i_sq = Nat.rem (Nat.sqr x_i) pub.n_mod in
  (* r is drawn from [0, 2^(nbits + 2*challenge_bits)) so that z = s_i*c + r
     statistically hides s_i * c. *)
  let rbits = Nat.numbits pub.n_mod + 2 * challenge_bits in
  let r = Nat.random_bits ~random_bytes:(Hashes.Drbg.random_bytes drbg) rbits in
  let v' = Nat.Fixed_base.pow pub.v_tbl r in
  let x' = Nat.powmod xtilde r pub.n_mod in
  let c = hash_challenge [ pub.v; xtilde; pub.vks.(sk.index - 1); x_i_sq; v'; x' ] in
  let z = Nat.add (Nat.mul sk.s_i c) r in
  { origin = sk.index; x_i; proof_v = v'; proof_x = x'; proof_z = z }

(* The challenge a share's proof is checked against, given the message
   representative's xtilde = x^{4 Delta} (shared by every share on the same
   message — batch verification computes it once). *)
let share_challenge (pub : public) ~(xtilde : Nat.t) (s : share) : Nat.t =
  let x_i_sq = Nat.rem (Nat.sqr s.x_i) pub.n_mod in
  hash_challenge [ pub.v; xtilde; pub.vks.(s.origin - 1); x_i_sq; s.proof_v; s.proof_x ]

let xtilde_rep (pub : public) ~(ctx : string) (msg : string) : Nat.t =
  let x = message_rep pub ~ctx msg in
  Nat.powmod x (Nat.shift_left (delta pub) 2) pub.n_mod

let verify_share (pub : public) ~(ctx : string) (msg : string) (s : share) : bool =
  s.origin >= 1 && s.origin <= pub.nparties
  && Nat.compare s.x_i pub.n_mod < 0
  && not (Nat.is_zero s.x_i)
  && begin
    let xtilde = xtilde_rep pub ~ctx msg in
    let x_i_sq = Nat.rem (Nat.sqr s.x_i) pub.n_mod in
    let c = share_challenge pub ~xtilde s in
    (* Check v^z = v' * v_i^c and xtilde^z = x' * (x_i^2)^c.  All exponents
       positive — no inversions; v^z hits v's fixed-base table (no
       squarings over the |n|+512-bit z) and the c-powers are short
       (challenge_bits).  Out-of-range commitments reject on the compare:
       the recomputed sides are reduced mod n. *)
    Nat.equal (Nat.Fixed_base.pow pub.v_tbl s.proof_z)
      (Nat.rem (Nat.mul s.proof_v (Nat.powmod pub.vks.(s.origin - 1) c pub.n_mod))
         pub.n_mod)
    && Nat.equal (Nat.powmod xtilde s.proof_z pub.n_mod)
         (Nat.rem (Nat.mul s.proof_x (Nat.powmod x_i_sq c pub.n_mod)) pub.n_mod)
  end

(* The textbook verification path: both equations by plain modular
   exponentiation, no fixed-base table — the reference twin of
   {!verify_share} (compare {!Dleq.verify_reference}).  The equivalence
   tests hold the production and batch paths to exactly this accept set,
   and the amortization benchmarks measure k-share batch verification
   against k of these. *)
let verify_share_reference (pub : public) ~(ctx : string) (msg : string)
    (s : share) : bool =
  s.origin >= 1 && s.origin <= pub.nparties
  && Nat.compare s.x_i pub.n_mod < 0
  && not (Nat.is_zero s.x_i)
  && begin
    let xtilde = xtilde_rep pub ~ctx msg in
    let x_i_sq = Nat.rem (Nat.sqr s.x_i) pub.n_mod in
    let c = share_challenge pub ~xtilde s in
    Nat.equal (Nat.powmod pub.v s.proof_z pub.n_mod)
      (Nat.rem (Nat.mul s.proof_v (Nat.powmod pub.vks.(s.origin - 1) c pub.n_mod))
         pub.n_mod)
    && Nat.equal (Nat.powmod xtilde s.proof_z pub.n_mod)
         (Nat.rem (Nat.mul s.proof_x (Nat.powmod x_i_sq c pub.n_mod)) pub.n_mod)
  end

(* Combine k verified shares into a standard RSA signature on the FDH of
   [msg]: a string verifiable by {!verify}. *)
let assemble (pub : public) ~(ctx : string) (msg : string) (shares : share list) : string =
  let seen = Hashtbl.create 8 in
  let shares =
    List.filter
      (fun s ->
        if Hashtbl.mem seen s.origin || Hashtbl.length seen >= pub.k then false
        else begin Hashtbl.add seen s.origin (); true end)
      shares
  in
  if List.length shares < pub.k then invalid_arg "Threshold_sig.assemble: not enough distinct shares";
  let x = message_rep pub ~ctx msg in
  let points = List.map (fun s -> s.origin) shares in
  let nb = Bigint.of_nat pub.n_mod in
  (* w = prod x_i^{2 lambda_i}: one k-way multi-exponentiation per sign
     (the integer Lagrange coefficients are signed), then a single
     inversion folds the negative-exponent half in — against k separate
     signed powmods, the shared squaring chain does the combination in
     ~1/3 the multiplications at k = 3. *)
  let pos, neg =
    List.fold_left
      (fun (pos, neg) s ->
        let lam =
          Shamir.integer_lagrange_coeff ~n:pub.nparties ~points ~j:s.origin ~at:0
        in
        let e2 = Bigint.shift_left lam 1 in
        if Bigint.is_neg e2 then (pos, (s.x_i, Bigint.to_nat (Bigint.abs e2)) :: neg)
        else ((s.x_i, Bigint.to_nat e2) :: pos, neg))
      ([], []) shares
  in
  let p_part = Nat.powmod_multi pos pub.n_mod in
  let w =
    if neg = [] then Bigint.of_nat p_part
    else begin
      let n_part = Nat.powmod_multi neg pub.n_mod in
      Bigint.erem
        (Bigint.mul (Bigint.of_nat p_part)
           (Bigint.invmod (Bigint.of_nat n_part) nb))
        nb
    end
  in
  (* w = x^{e' d} with e' = 4*Delta^2; recover y = x^d via egcd(e', e) = 1. *)
  let dlt = Bigint.of_nat (delta pub) in
  let e' = Bigint.shift_left (Bigint.mul dlt dlt) 2 in
  let g, a, b = Bigint.egcd e' (Bigint.of_nat pub.e) in
  if not (Bigint.equal g Bigint.one) then invalid_arg "Threshold_sig.assemble: gcd(e', e) <> 1";
  let y =
    Bigint.erem
      (Bigint.mul (Bigint.powmod_signed w a nb)
         (Bigint.powmod_signed (Bigint.of_nat x) b nb))
      nb
  in
  let nbytes = (Nat.numbits pub.n_mod + 7) / 8 in
  Nat.to_bytes_be ~len:nbytes (Bigint.to_nat y)

(* Verify an assembled signature: plain RSA verification, usable by anyone
   holding only (n, e). *)
let verify (pub : public) ~(ctx : string) ~(signature : string) (msg : string) : bool =
  Rsa.verify { Rsa.n = pub.n_mod; e = pub.e } ~ctx ~signature msg

let signature_bytes (pub : public) : int = (Nat.numbits pub.n_mod + 7) / 8
