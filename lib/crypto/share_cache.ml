(* A bounded, deterministic cache of verified shares.

   Retransmitted frames, replayed justifications and catch-up DECIDED
   batches carry shares the receiver has already verified; re-running the
   proof check costs a multi-exponentiation per share.  This cache
   remembers (scheme, message digest, sender, share index) for every share
   that passed verification, so the second sighting costs a hash-table
   probe.

   Determinism and bounded memory are load-bearing:

   - Keys are flat strings over a *digest* of the message (enforced here by
     length, and at call sites by the sintra-lint S5 rule `cache-key-digest`)
     — never structural values, whose polymorphic hashing would leak
     representation details into behaviour.
   - Membership tests and insertions never iterate the table; eviction is
     FIFO in insertion order (a queue), so cache behaviour is a pure
     function of the call sequence.
   - Entries belong to a [group] (protocol-instance id); when an instance
     is garbage-collected its group is evicted wholesale, so a replayed
     frame arriving after round GC cannot resurrect verification state.
   - The table never exceeds [cap] entries. *)

type t = {
  cap : int;
  tbl : (string, string) Hashtbl.t;            (* key -> group *)
  order : string Queue.t;                      (* insertion order; may hold stale keys *)
  groups : (string, string list ref) Hashtbl.t;  (* group -> its keys *)
  mutable hits : int;
  mutable misses : int;
}

let create ~(cap : int) : t =
  if cap < 1 then invalid_arg "Share_cache.create: cap must be >= 1";
  {
    cap;
    tbl = Hashtbl.create (min cap 256);
    order = Queue.create ();
    groups = Hashtbl.create 64;
    hits = 0;
    misses = 0;
  }

let key ~(scheme : string) ~(digest : string) ~(sender : int) ~(index : int)
    : string =
  (* 20- and 32-byte digests are the repository's SHA-1/SHA-256 outputs;
     anything else is a structural key smuggled in. *)
  if String.length digest <> 20 && String.length digest <> 32 then
    invalid_arg "Share_cache: key digest must be a SHA-1 or SHA-256 digest";
  Printf.sprintf "%s|%d|%d|%s" scheme sender index digest

let size (t : t) : int = Hashtbl.length t.tbl
let cap (t : t) : int = t.cap
let hits (t : t) : int = t.hits
let misses (t : t) : int = t.misses

let mem (t : t) ~scheme ~digest ~sender ~index : bool =
  let k = key ~scheme ~digest ~sender ~index in
  let found = Hashtbl.mem t.tbl k in
  if found then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  found

(* Pop FIFO entries until one is still live, and drop it.  Stale queue
   entries (evicted with their group) are skipped for free. *)
let rec evict_oldest (t : t) : unit =
  match Queue.take_opt t.order with
  | None -> ()
  | Some k ->
    if Hashtbl.mem t.tbl k then Hashtbl.remove t.tbl k
    else evict_oldest t

let add (t : t) ~(group : string) ~scheme ~digest ~sender ~index : unit =
  let k = key ~scheme ~digest ~sender ~index in
  if not (Hashtbl.mem t.tbl k) then begin
    if Hashtbl.length t.tbl >= t.cap then evict_oldest t;
    Hashtbl.replace t.tbl k group;
    Queue.add k t.order;
    let keys =
      match Hashtbl.find_opt t.groups group with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace t.groups group l;
        l
    in
    keys := k :: !keys
  end

let evict_group (t : t) (group : string) : unit =
  match Hashtbl.find_opt t.groups group with
  | None -> ()
  | Some keys ->
    List.iter (fun k -> Hashtbl.remove t.tbl k) !keys;
    Hashtbl.remove t.groups group

let clear (t : t) : unit =
  Hashtbl.reset t.tbl;
  Queue.clear t.order;
  Hashtbl.reset t.groups
