(** The Cachin-Kursawe-Shoup threshold coin ("Random oracles in
    Constantinople", PODC 2000) — the source of common randomness that lets
    SINTRA's binary agreement terminate in expected-constant rounds despite
    FLP.

    Dual-threshold [(n, k, t)]: of [n] parties at most [t] are corrupted and
    any [k > t] shares reconstruct the coin; SINTRA uses [k = t+1].  The
    coin named by string [C] evaluates [H'(HashToGroup(C)^x)] where the
    secret [x] is Shamir-shared; unpredictable to any coalition of fewer
    than [k] parties, yet every party's share is publicly verifiable via a
    DLEQ proof. *)

type public = {
  group : Group.t;
  n : int;
  k : int;
  t : int;
  global_vk : Group.elt;         (** [g^x] *)
  share_vks : Group.elt array;   (** [VK_i = g^(x_i)], index [i-1] *)
  share_vk_tbls : Group.table array;
  (** fixed-base window tables for the [VK_i], built by {!deal} so that
      every {!verify_share} is table-driven (see {!Dleq.verify}) *)
}

type secret_share = {
  index : int;                   (** 1-based party index *)
  key : Group.exponent;          (** [x_i] *)
}

type share = {
  origin : int;                  (** releasing party, 1-based *)
  value : Group.elt;             (** [HashToGroup(C)^(x_i)] *)
  proof : Dleq.t;
}

type keys = { public : public; shares : secret_share array }

val deal : drbg:Hashes.Drbg.t -> group:Group.t -> n:int -> k:int -> t:int -> keys
(** The trusted dealer.  @raise Invalid_argument unless [t < k <= n-t]. *)

val coin_base : public -> string -> Group.elt
(** [HashToGroup] of the coin name. *)

val release : drbg:Hashes.Drbg.t -> public -> secret_share -> name:string -> share
(** Party [share.index]'s share of the coin [name], with its proof. *)

val verify_share : public -> name:string -> share -> bool
(** Check the share's DLEQ proof against [VK_origin] — table-driven on the
    [g] side via {!share_vk_tbls} (see {!Dleq.verify}). *)

val verify_share_reference : public -> name:string -> share -> bool
(** {!verify_share}'s exact accept set checked by {!Dleq.verify_reference}
    (no precomputed tables) — the reference twin the equivalence tests and
    the amortization benchmarks compare the fast single and {!Batch} paths
    against. *)

val assemble : public -> name:string -> share list -> len:int -> string
(** Combine [k] distinct verified shares into [len] pseudo-random bytes.
    Any [k]-subset yields the same value.
    @raise Invalid_argument with fewer than [k] distinct origins. *)

val assemble_bit : public -> name:string -> share list -> bool
(** The common case: one unpredictable bit. *)
