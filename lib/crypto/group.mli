(** Schnorr groups: the order-[q] subgroup of [Z_p*] for primes [q | p-1].

    The discrete-log setting of SINTRA's threshold coin (Cachin-Kursawe-
    Shoup) and threshold cryptosystem (Shoup-Gennaro TDH2).  The paper uses
    a 1024-bit [p] whose [p-1] has a 160-bit prime factor [q]; [generate]
    produces such parameters for any sizes.

    {b Fast paths.} [p] is odd by construction (asserted in {!make}), so
    every operation here runs over {!Nat.Montgomery} arithmetic.  Generator
    powers additionally hit a fixed-base window table built once in {!make}
    and stored in the group ({!pow_g}, and {!pow} when the base is [g]);
    {!precompute} builds the same kind of table for any other long-lived
    base, and {!mul_exp2} is Shamir's-trick double exponentiation for the
    [g^z * h^(-c)] shape of share verification. *)

type table
(** A fixed-base exponentiation window table for one group element
    (see {!Nat.Fixed_base}): ~[|q|/4] multiplications and no squarings per
    power, ~6x cheaper than a cold exponentiation once amortized. *)

type t = {
  p : Bignum.Nat.t;         (** field prime (odd) *)
  q : Bignum.Nat.t;         (** subgroup order (prime) *)
  g : Bignum.Nat.t;         (** generator of the order-[q] subgroup *)
  cofactor : Bignum.Nat.t;  (** [(p-1)/q] *)
  g_tbl : table;            (** fixed-base table for [g], built by {!make} *)
}

type elt = Bignum.Nat.t
(** A subgroup element, in [[1, p)]. *)

type exponent = Bignum.Nat.t
(** An exponent, in [[0, q)] (the closed upper end appears transiently as
    [q - c] with [c = 0] in verification). *)

val make : p:Bignum.Nat.t -> q:Bignum.Nat.t -> g:Bignum.Nat.t -> t
(** Validate and package externally supplied parameters, and build the
    generator's fixed-base table (O([15 * |q|/4]) multiplications, done
    once per group).
    @raise Invalid_argument if [p] is even, [q] does not divide [p-1], or
    [g] does not have order [q]. *)

val generate : drbg:Hashes.Drbg.t -> pbits:int -> qbits:int -> t
(** Deterministically generate fresh parameters from the DRBG. *)

val one : t -> elt
(** The identity element. *)

val mul : t -> elt -> elt -> elt
(** Product in [Z_p*]: one multiplication + reduction. *)

val div : t -> elt -> elt -> elt
(** [div grp a b = a * b^-1]; costs a modular inversion (extended GCD).
    Verification paths avoid it via {!mul_exp2} with exponent [q - c]. *)

val inv : t -> elt -> elt
(** Inverse in [Z_p*] by extended GCD. *)

val pow : t -> elt -> exponent -> elt
(** [pow grp a e] is [a^e mod p] over Montgomery windows (~1.23
    multiplications per exponent bit); when [a] is the generator it
    transparently uses the stored fixed-base table instead. *)

val pow_g : t -> exponent -> elt
(** [pow_g grp e] is [g^e] via the generator's fixed-base table: ~[|q|/4]
    multiplications, no squarings. *)

val pow_table : table -> exponent -> elt
(** [pow_table tbl e] is [base^e] for the base the table was built from
    (falls back to a plain exponentiation if [e] exceeds the table's
    exponent width). *)

val precompute : ?max_bits:int -> t -> elt -> table
(** [precompute grp a] builds a fixed-base table for [a] covering exponents
    up to [max_bits] bits (default [|q|]).  Dealers call this for each
    party's verification key so every later share verification is
    table-driven. *)

val mul_exp2 : t -> elt -> exponent -> elt -> exponent -> elt
(** [mul_exp2 grp a ea b eb] is [a^ea * b^eb mod p] by simultaneous double
    exponentiation ({!Nat.powmod2}): ~1.9x faster than two {!pow} calls,
    and no inversion when used as [a^z * b^(q-c)]. *)

val mul_exp_multi : t -> (elt * exponent) list -> elt
(** [mul_exp_multi grp [(a1, e1); ...; (ak, ek)]] is the k-way simultaneous
    product [a1^e1 * ... * ak^ek mod p] ({!Nat.powmod_multi}): one shared
    squaring chain for all [k] exponents, ~[|q|/4] marginal multiplications
    per extra base.  The shape of Lagrange combination over all [k] shares
    and of batched share verification. *)

val pow_signed : t -> elt -> Bignum.Bigint.t -> elt
(** Power with a signed exponent (Lagrange interpolation in the exponent);
    negative exponents cost one extra inversion. *)

val elt_equal : elt -> elt -> bool
(** Element equality (use instead of [(=)]). *)

val is_member : t -> elt -> bool
(** Full subgroup membership test ([a^q = 1], [0 < a < p]); applied to every
    incoming group element before use.  One full-width exponentiation. *)

val random_exponent : t -> drbg:Hashes.Drbg.t -> exponent
(** Uniform draw from [[0, q)] by rejection sampling on the DRBG. *)

val hash_to_group : t -> string -> elt
(** Hash an arbitrary string onto the subgroup (counter-mode expansion, then
    cofactor exponentiation) — the random oracle [H'] that names coins.
    Costs one [(|p|-|q|)]-bit exponentiation. *)

val hash_to_exponent : t -> string list -> exponent
(** Fiat-Shamir challenge derivation into [[0, q)]. *)

val elt_to_bytes : t -> elt -> string
(** Fixed-width big-endian encoding ([ceil(|p|/8)] bytes). *)

val elt_of_bytes : string -> elt
(** Inverse of {!elt_to_bytes} (no validation; callers use {!is_member}). *)

val exponent_to_bytes : t -> exponent -> string
(** Fixed-width big-endian encoding ([ceil(|q|/8)] bytes). *)

val exponent_of_bytes : string -> exponent
(** Inverse of {!exponent_to_bytes}. *)
