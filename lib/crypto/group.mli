(** Schnorr groups: the order-[q] subgroup of [Z_p*] for primes [q | p-1].

    The discrete-log setting of SINTRA's threshold coin (Cachin-Kursawe-
    Shoup) and threshold cryptosystem (Shoup-Gennaro TDH2).  The paper uses
    a 1024-bit [p] whose [p-1] has a 160-bit prime factor [q]; [generate]
    produces such parameters for any sizes. *)

type t = {
  p : Bignum.Nat.t;         (** field prime *)
  q : Bignum.Nat.t;         (** subgroup order (prime) *)
  g : Bignum.Nat.t;         (** generator of the order-[q] subgroup *)
  cofactor : Bignum.Nat.t;  (** [(p-1)/q] *)
}

type elt = Bignum.Nat.t
(** A subgroup element, in [[1, p)]. *)

type exponent = Bignum.Nat.t
(** An exponent, in [[0, q)]. *)

val make : p:Bignum.Nat.t -> q:Bignum.Nat.t -> g:Bignum.Nat.t -> t
(** Validate and package externally supplied parameters.
    @raise Invalid_argument if [q] does not divide [p-1] or [g] does not
    have order [q]. *)

val generate : drbg:Hashes.Drbg.t -> pbits:int -> qbits:int -> t
(** Deterministically generate fresh parameters from the DRBG. *)

val one : t -> elt
val mul : t -> elt -> elt -> elt
val div : t -> elt -> elt -> elt
val inv : t -> elt -> elt
val pow : t -> elt -> exponent -> elt

val pow_g : t -> exponent -> elt
(** [pow_g grp e] is [g^e]. *)

val pow_signed : t -> elt -> Bignum.Bigint.t -> elt
(** Power with a signed exponent (Lagrange interpolation in the exponent). *)

val elt_equal : elt -> elt -> bool

val is_member : t -> elt -> bool
(** Full subgroup membership test ([a^q = 1], [0 < a < p]); applied to every
    incoming group element before use. *)

val random_exponent : t -> drbg:Hashes.Drbg.t -> exponent

val hash_to_group : t -> string -> elt
(** Hash an arbitrary string onto the subgroup (counter-mode expansion, then
    cofactor exponentiation) — the random oracle [H'] that names coins. *)

val hash_to_exponent : t -> string list -> exponent
(** Fiat-Shamir challenge derivation into [[0, q)]. *)

val elt_to_bytes : t -> elt -> string
(** Fixed-width big-endian encoding ([ceil(|p|/8)] bytes). *)

val elt_of_bytes : string -> elt

val exponent_to_bytes : t -> exponent -> string
val exponent_of_bytes : string -> exponent
