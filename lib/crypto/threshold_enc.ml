(* The Shoup-Gennaro TDH2 threshold cryptosystem (EUROCRYPT '98), secure
   against adaptive chosen-ciphertext attack in the random-oracle model.

   Dealer: Schnorr group (p, q, g), an independent second generator gbar,
   secret key x in Z_q shared with a degree-(k-1) polynomial, public key
   h = g^x and per-party verification keys h_i = g^{x_i}.

   Encryption of message msg with label L (hybrid, the "MARS" role played by
   a SHA-256 counter-mode stream cipher):
     r, s <- Z_q
     c    = msg XOR keystream(H(h^r))
     u = g^r, w = g^s, ubar = gbar^r, wbar = gbar^s
     e = H2(c, L, u, w, ubar, wbar);  f = s + r*e mod q
   ciphertext = (c, L, u, ubar, e, f).  The (e, f) pair is a NIZK proof that
   log_g u = log_gbar ubar, which is what makes the scheme CCA-secure: a
   ciphertext cannot be mauled without breaking the proof.

   Decryption share from party i (after checking ciphertext validity):
     u_i = u^{x_i} with a DLEQ proof against h_i.
   Any k valid shares interpolate h^r in the exponent and recover msg. *)

open Bignum

type public = {
  group : Group.t;
  gbar : Group.elt;
  n : int;
  k : int;
  t : int;
  h : Group.elt;                 (* g^x *)
  hks : Group.elt array;         (* h_i = g^{x_i} *)
  gbar_tbl : Group.table;        (* fixed-base table for gbar *)
  h_tbl : Group.table;           (* fixed-base table for h *)
  hk_tbls : Group.table array;   (* fixed-base tables for the h_i *)
}

type secret_share = {
  index : int;
  key : Group.exponent;          (* x_i *)
}

type keys = { public : public; shares : secret_share array }

type ciphertext = {
  c : string;                    (* bulk-encrypted payload *)
  label : string;
  u : Group.elt;
  ubar : Group.elt;
  e : Group.exponent;
  f : Group.exponent;
}

type dec_share = {
  origin : int;
  u_i : Group.elt;
  proof : Dleq.t;
}

let deal ~(drbg : Hashes.Drbg.t) ~(group : Group.t) ~n ~k ~t : keys =
  if not (k > t && k <= n - t) then invalid_arg "Threshold_enc.deal: need t < k <= n - t";
  let gbar =
    Group.hash_to_group group ("tdh2-gbar|" ^ Nat.to_hex group.Group.p)
  in
  let x = Group.random_exponent group ~drbg in
  let shamir = Shamir.share_secret ~drbg ~modulus:group.Group.q ~secret:x ~n ~k in
  let h = Group.pow_g group x in
  let hks = Array.map (fun s -> Group.pow_g group s.Shamir.value) shamir in
  {
    public = {
      group; gbar; n; k; t; h; hks;
      (* Window tables built once at dealing time: every exponentiation in
         encrypt/ciphertext_valid/verify_dec_share becomes table-driven. *)
      gbar_tbl = Group.precompute group gbar;
      h_tbl = Group.precompute group h;
      hk_tbls = Array.map (fun hk -> Group.precompute group hk) hks;
    };
    shares = Array.map (fun s -> { index = s.Shamir.index; key = s.Shamir.value }) shamir;
  }

(* SHA-256 counter-mode keystream XOR. *)
let stream_xor ~(key : string) (data : string) : string =
  let n = String.length data in
  let out = Bytes.create n in
  let block = ref "" in
  for i = 0 to n - 1 do
    if i mod 32 = 0 then
      block := Hashes.Sha256.digest_list [ "tdh2-stream|"; string_of_int (i / 32); "|"; key ];
    Bytes.set out i (Char.chr (Char.code data.[i] lxor Char.code (!block).[i mod 32]))
  done;
  Bytes.to_string out

let session_key (pub : public) (hr : Group.elt) : string =
  Hashes.Sha256.digest_list [ "tdh2-key|"; Group.elt_to_bytes pub.group hr ]

let hash2 (pub : public) ~c ~label ~u ~w ~ubar ~wbar : Group.exponent =
  let grp = pub.group in
  Group.hash_to_exponent grp
    [ "tdh2-e"; c; label;
      Group.elt_to_bytes grp u; Group.elt_to_bytes grp w;
      Group.elt_to_bytes grp ubar; Group.elt_to_bytes grp wbar ]

let encrypt ~(drbg : Hashes.Drbg.t) (pub : public) ~(label : string) (msg : string) : ciphertext =
  let grp = pub.group in
  let r = Group.random_exponent grp ~drbg in
  let s = Group.random_exponent grp ~drbg in
  (* All five exponentiations hit fixed-base tables (g, h, gbar). *)
  let hr = Group.pow_table pub.h_tbl r in
  let c = stream_xor ~key:(session_key pub hr) msg in
  let u = Group.pow_g grp r in
  let w = Group.pow_g grp s in
  let ubar = Group.pow_table pub.gbar_tbl r in
  let wbar = Group.pow_table pub.gbar_tbl s in
  let e = hash2 pub ~c ~label ~u ~w ~ubar ~wbar in
  let f = Nat.rem (Nat.add s (Nat.mul r e)) grp.Group.q in
  { c; label; u; ubar; e; f }

(* Public ciphertext validity: recompute w = g^f * u^{-e} and
   wbar = gbar^f * ubar^{-e} and check the challenge.  u^{-e} is computed
   as u^{q-e} (u passed the order-q membership test), so each pair costs
   one table hit plus one exponentiation — no inversions. *)
let ciphertext_valid (pub : public) (ct : ciphertext) : bool =
  let grp = pub.group in
  (* e >= q cannot have come from hash2; reject before forming q - e. *)
  Nat.compare ct.e grp.Group.q < 0
  && Group.is_member grp ct.u && Group.is_member grp ct.ubar
  && begin
    let neg_e = Nat.sub grp.Group.q ct.e in
    let w = Group.mul grp (Group.pow_g grp ct.f) (Group.pow grp ct.u neg_e) in
    let wbar =
      Group.mul grp (Group.pow_table pub.gbar_tbl ct.f) (Group.pow grp ct.ubar neg_e)
    in
    let e = hash2 pub ~c:ct.c ~label:ct.label ~u:ct.u ~w ~ubar:ct.ubar ~wbar in
    Nat.equal e ct.e
  end

let dec_share ~(drbg : Hashes.Drbg.t) (pub : public) (sk : secret_share) (ct : ciphertext)
    : dec_share option =
  if not (ciphertext_valid pub ct) then None
  else begin
    let grp = pub.group in
    let u_i = Group.pow grp ct.u sk.key in
    let proof =
      Dleq.prove grp ~drbg ~ctx:("tdh2-share|" ^ string_of_int sk.index)
        ~g1:grp.Group.g ~h1:pub.hks.(sk.index - 1) ~g2:ct.u ~h2:u_i ~x:sk.key
    in
    Some { origin = sk.index; u_i; proof }
  end

let verify_dec_share (pub : public) (ct : ciphertext) (s : dec_share) : bool =
  s.origin >= 1 && s.origin <= pub.n
  && Dleq.verify pub.group ~ctx:("tdh2-share|" ^ string_of_int s.origin)
       ~h1_tbl:pub.hk_tbls.(s.origin - 1)
       ~g1:pub.group.Group.g ~h1:pub.hks.(s.origin - 1) ~g2:ct.u ~h2:s.u_i s.proof

let combine (pub : public) (ct : ciphertext) (shares : dec_share list) : string option =
  if not (ciphertext_valid pub ct) then None
  else begin
    let seen = Hashtbl.create 8 in
    let shares =
      List.filter
        (fun s ->
          if Hashtbl.mem seen s.origin || Hashtbl.length seen >= pub.k then false
          else begin Hashtbl.add seen s.origin (); true end)
        shares
    in
    if List.length shares < pub.k then None
    else begin
      let grp = pub.group in
      let points = List.map (fun s -> s.origin) shares in
      let hr =
        List.fold_left
          (fun acc s ->
            let lam = Shamir.lagrange_coeff ~modulus:grp.Group.q ~points ~j:s.origin ~at:0 in
            Group.mul grp acc (Group.pow grp s.u_i lam))
          (Group.one grp) shares
      in
      Some (stream_xor ~key:(session_key pub hr) ct.c)
    end
  end

(* Serialize a ciphertext so it can travel on the atomic broadcast channel. *)
let ciphertext_to_bytes (pub : public) (ct : ciphertext) : string =
  let grp = pub.group in
  let parts =
    [ ct.c; ct.label;
      Group.elt_to_bytes grp ct.u; Group.elt_to_bytes grp ct.ubar;
      Group.exponent_to_bytes grp ct.e; Group.exponent_to_bytes grp ct.f ]
  in
  String.concat ""
    (List.map (fun p -> Printf.sprintf "%08d%s" (String.length p) p) parts)

let ciphertext_of_bytes (s : string) : ciphertext option =
  let len = String.length s in
  let read pos =
    if pos + 8 > len then None
    else
      match int_of_string_opt (String.sub s pos 8) with
      | Some l when pos + 8 + l <= len -> Some (String.sub s (pos + 8) l, pos + 8 + l)
      | _ -> None
  in
  match read 0 with
  | None -> None
  | Some (c, p1) ->
    (match read p1 with
     | None -> None
     | Some (label, p2) ->
       (match read p2 with
        | None -> None
        | Some (ub, p3) ->
          (match read p3 with
           | None -> None
           | Some (ubarb, p4) ->
             (match read p4 with
              | None -> None
              | Some (eb, p5) ->
                (match read p5 with
                 | Some (fb, p6) when p6 = len ->
                   Some {
                     c; label;
                     u = Group.elt_of_bytes ub;
                     ubar = Group.elt_of_bytes ubarb;
                     e = Group.exponent_of_bytes eb;
                     f = Group.exponent_of_bytes fb;
                   }
                 | _ -> None)))))
