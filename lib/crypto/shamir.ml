(* Shamir polynomial secret sharing over Z_m.

   Used with a prime modulus q for the discrete-log schemes and with the
   secret composite modulus m = p'q' for Shoup RSA threshold signatures (the
   interpolation there happens "in the exponent" with integer Lagrange
   coefficients scaled by Delta = n!; see {!Threshold_sig}). *)

open Bignum

type share = { index : int; value : Nat.t }  (* index in [1, n] *)

(* [share_secret ~drbg ~modulus ~secret ~n ~k] draws a uniform polynomial f of
   degree k-1 over Z_modulus with f(0) = secret, and returns [f(1) .. f(n)]. *)
let share_secret ~(drbg : Hashes.Drbg.t) ~(modulus : Nat.t) ~(secret : Nat.t) ~n ~k
    : share array =
  if k < 1 || n < k then invalid_arg "Shamir.share_secret: need 1 <= k <= n";
  let random_bytes = Hashes.Drbg.random_bytes drbg in
  let coeffs = Array.init k (fun i ->
    if i = 0 then Nat.rem secret modulus
    else Nat.random_below ~random_bytes modulus)
  in
  let eval (x : int) : Nat.t =
    (* Horner evaluation at the small point x. *)
    let acc = ref Nat.zero in
    for i = k - 1 downto 0 do
      acc := Nat.rem (Nat.add (Nat.mul_limb !acc x) coeffs.(i)) modulus
    done;
    !acc
  in
  Array.init n (fun i -> { index = i + 1; value = eval (i + 1) })

(* Lagrange coefficient lambda_{S,j}(at) over Z_q for the point set S:
   the weight of share j when interpolating f(at). *)
let lagrange_coeff ~(modulus : Nat.t) ~(points : int list) ~(j : int) ~(at : int) : Nat.t =
  let q = Bigint.of_nat modulus in
  let num = ref Bigint.one and den = ref Bigint.one in
  List.iter
    (fun l ->
      if l <> j then begin
        num := Bigint.mul !num (Bigint.of_int (at - l));
        den := Bigint.mul !den (Bigint.of_int (j - l))
      end)
    points;
  let den_inv = Bigint.invmod !den q in
  Bigint.to_nat (Bigint.erem (Bigint.mul !num den_inv) q)

(* Reconstruct f(at) (typically at = 0, the secret) from >= k shares. *)
let interpolate ~(modulus : Nat.t) ~(shares : share list) ~(at : int) : Nat.t =
  let points = List.map (fun s -> s.index) shares in
  let acc = ref Nat.zero in
  List.iter
    (fun s ->
      let lam = lagrange_coeff ~modulus ~points ~j:s.index ~at in
      acc := Nat.rem (Nat.add !acc (Nat.mul lam (Nat.rem s.value modulus))) modulus)
    shares;
  !acc

(* Integer Lagrange numerator scaled by Delta = n!, for interpolation in a
   group of unknown order (Shoup's threshold RSA):
     lambda'_{S,j}(at) = Delta * prod_{l in S, l<>j} (at - l) / (j - l)
   which is always an integer. *)
let delta (n : int) : Nat.t =
  let acc = ref Nat.one in
  for i = 2 to n do acc := Nat.mul_limb !acc i done;
  !acc

let integer_lagrange_coeff ~(n : int) ~(points : int list) ~(j : int) ~(at : int) : Bigint.t =
  let num = ref (Bigint.of_nat (delta n)) and den = ref Bigint.one in
  List.iter
    (fun l ->
      if l <> j then begin
        num := Bigint.mul !num (Bigint.of_int (at - l));
        den := Bigint.mul !den (Bigint.of_int (j - l))
      end)
    points;
  let q, r = Bigint.divmod_trunc !num !den in
  if not (Bigint.is_zero r) then invalid_arg "Shamir.integer_lagrange_coeff: not integral";
  q
