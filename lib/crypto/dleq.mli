(** Non-interactive Chaum-Pedersen proofs of discrete-logarithm equality
    (Fiat-Shamir transformed).

    A proof for [(g1, h1, g2, h2)] shows [log_g1 h1 = log_g2 h2] without
    revealing the exponent.  These proofs make the threshold coin and the
    TDH2 threshold cryptosystem {e robust}: a corrupted party cannot inject
    a malformed share. *)

type t = {
  challenge : Group.exponent;
  response : Group.exponent;
}

val prove :
  Group.t -> drbg:Hashes.Drbg.t -> ctx:string ->
  g1:Group.elt -> h1:Group.elt -> g2:Group.elt -> h2:Group.elt ->
  x:Group.exponent -> t
(** Prove knowledge of [x] with [h1 = g1^x] and [h2 = g2^x], bound to the
    domain-separation string [ctx]. *)

val verify :
  Group.t -> ctx:string -> ?h1_tbl:Group.table ->
  g1:Group.elt -> h1:Group.elt -> g2:Group.elt -> h2:Group.elt -> t -> bool
(** Verify a proof.  Fast path: each commitment is recomputed as
    [g_i^z * h_i^(q-c)] by one {!Group.mul_exp2} (no inversion — [h_i] is
    order-[q], so [h_i^(q-c) = h_i^(-c)]); passing [h1_tbl] (the
    verification key's fixed-base table) turns the first pair into two
    table hits, and [g1 = g] hits the group's generator table
    automatically.  ~2-3x faster than {!verify_reference}; accepts exactly
    the same proofs. *)

val verify_reference :
  Group.t -> ctx:string ->
  g1:Group.elt -> h1:Group.elt -> g2:Group.elt -> h2:Group.elt -> t -> bool
(** The plain verifier (two exponentiations + one inversion per pair),
    kept as the semantic reference for equivalence tests and as the
    benchmark baseline. *)

val to_bytes : Group.t -> t -> string
(** Serialize as [challenge || response], each [ceil(|q|/8)] bytes. *)

val of_bytes : Group.t -> string -> t option
(** Inverse of {!to_bytes}; [None] on wrong length. *)
