(** Non-interactive Chaum-Pedersen proofs of discrete-logarithm equality
    (Fiat-Shamir transformed).

    A proof for [(g1, h1, g2, h2)] shows [log_g1 h1 = log_g2 h2] without
    revealing the exponent.  These proofs make the threshold coin and the
    TDH2 threshold cryptosystem {e robust}: a corrupted party cannot inject
    a malformed share. *)

type t = {
  challenge : Group.exponent;
  response : Group.exponent;
}

val prove :
  Group.t -> drbg:Hashes.Drbg.t -> ctx:string ->
  g1:Group.elt -> h1:Group.elt -> g2:Group.elt -> h2:Group.elt ->
  x:Group.exponent -> t
(** Prove knowledge of [x] with [h1 = g1^x] and [h2 = g2^x], bound to the
    domain-separation string [ctx]. *)

val verify :
  Group.t -> ctx:string ->
  g1:Group.elt -> h1:Group.elt -> g2:Group.elt -> h2:Group.elt -> t -> bool

val to_bytes : Group.t -> t -> string
val of_bytes : Group.t -> string -> t option
