(** Non-interactive Chaum-Pedersen proofs of discrete-logarithm equality
    (Fiat-Shamir transformed).

    A proof for [(g1, h1, g2, h2)] shows [log_g1 h1 = log_g2 h2] without
    revealing the exponent.  These proofs make the threshold coin and the
    TDH2 threshold cryptosystem {e robust}: a corrupted party cannot inject
    a malformed share.

    Proofs carry the two Fiat-Shamir {e commitments} [(a1, a2)] and the
    response [z]; the challenge [c] is recomputed by the verifier as the
    hash of the statement and commitments.  This makes the verification
    equations [g1^z = a1 * h1^c] and [g2^z = a2 * h2^c] algebraic in the
    proof components, so many proofs can be verified together with one
    small-exponent random linear combination (see {!Batch}); the
    challenge-carrying encoding admits no batching at all. *)

type t = {
  a1 : Group.elt;             (** commitment [g1^r] *)
  a2 : Group.elt;             (** commitment [g2^r] *)
  response : Group.exponent;  (** [z = r + c*x mod q] *)
}

val prove :
  Group.t -> drbg:Hashes.Drbg.t -> ctx:string ->
  g1:Group.elt -> h1:Group.elt -> g2:Group.elt -> h2:Group.elt ->
  x:Group.exponent -> t
(** Prove knowledge of [x] with [h1 = g1^x] and [h2 = g2^x], bound to the
    domain-separation string [ctx]. *)

val challenge :
  Group.t -> ctx:string ->
  g1:Group.elt -> h1:Group.elt -> g2:Group.elt -> h2:Group.elt -> t ->
  Group.exponent
(** The Fiat-Shamir challenge [c = H(statement, a1, a2)] this proof is
    checked against — exposed for {!Batch}'s combined verification. *)

val verify :
  Group.t -> ctx:string -> ?h1_tbl:Group.table ->
  g1:Group.elt -> h1:Group.elt -> g2:Group.elt -> h2:Group.elt -> t -> bool
(** Verify a proof.  Fast path: each commitment is recomputed as
    [g_i^z * h_i^(q-c)] by one {!Group.mul_exp2} (no inversion — [h_i] is
    order-[q], so [h_i^(q-c) = h_i^(-c)]) and compared to the carried
    commitment; passing [h1_tbl] (the verification key's fixed-base table)
    turns the first pair into two table hits, and [g1 = g] hits the group's
    generator table automatically.  ~2-3x faster than {!verify_reference};
    accepts exactly the same proofs. *)

val verify_reference :
  Group.t -> ctx:string ->
  g1:Group.elt -> h1:Group.elt -> g2:Group.elt -> h2:Group.elt -> t -> bool
(** The plain verifier (two exponentiations + one inversion per pair),
    kept as the semantic reference for equivalence tests and as the
    benchmark baseline. *)

val to_bytes : Group.t -> t -> string
(** Serialize as [a1 || a2 || response]: two [ceil(|p|/8)]-byte elements
    and one [ceil(|q|/8)]-byte exponent. *)

val of_bytes : Group.t -> string -> t option
(** Inverse of {!to_bytes}; [None] on wrong length. *)
