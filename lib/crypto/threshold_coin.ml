(* The Cachin-Kursawe-Shoup threshold coin ("Random oracles in
   Constantinople", PODC 2000), based on the Diffie-Hellman problem.

   Dealer: secret x in Z_q shared with a degree-(k-1) polynomial; global
   verification keys VK = g^x and VK_i = g^{x_i}.

   A coin named by a string C evaluates the function
       F(C) = H'( g~^x )      where g~ = HashToGroup(C),
   which no coalition of fewer than k parties can predict.  Party i releases
   the share g~^{x_i} together with a DLEQ proof that it used its dealt key;
   any k valid shares interpolate g~^x in the exponent. *)

type public = {
  group : Group.t;
  n : int;
  k : int;                       (* shares needed *)
  t : int;                       (* corruption bound *)
  global_vk : Group.elt;         (* g^x *)
  share_vks : Group.elt array;   (* VK_i = g^{x_i}, index i-1 *)
  share_vk_tbls : Group.table array;  (* fixed-base tables for the VK_i *)
}

type secret_share = {
  index : int;                   (* 1-based *)
  key : Group.exponent;          (* x_i *)
}

type share = {
  origin : int;                  (* releasing party, 1-based *)
  value : Group.elt;             (* g~^{x_i} *)
  proof : Dleq.t;
}

type keys = { public : public; shares : secret_share array }

let deal ~(drbg : Hashes.Drbg.t) ~(group : Group.t) ~n ~k ~t : keys =
  if not (k > t && k <= n - t) then invalid_arg "Threshold_coin.deal: need t < k <= n - t";
  let x = Group.random_exponent group ~drbg in
  let shamir =
    Shamir.share_secret ~drbg ~modulus:group.Group.q ~secret:x ~n ~k
  in
  let share_vks = Array.map (fun s -> Group.pow_g group s.Shamir.value) shamir in
  (* Precompute each verification key's window table once, at dealing time:
     every later share verification becomes table-driven. *)
  let share_vk_tbls = Array.map (fun vk -> Group.precompute group vk) share_vks in
  {
    public = { group; n; k; t; global_vk = Group.pow_g group x; share_vks; share_vk_tbls };
    shares = Array.map (fun s -> { index = s.Shamir.index; key = s.Shamir.value }) shamir;
  }

let coin_base (pub : public) (name : string) : Group.elt =
  Group.hash_to_group pub.group ("coin|" ^ name)

(* Party [share] releases its share of the coin [name]. *)
let release ~(drbg : Hashes.Drbg.t) (pub : public) (sk : secret_share) ~(name : string) : share =
  let grp = pub.group in
  let gtilde = coin_base pub name in
  let value = Group.pow grp gtilde sk.key in
  let proof =
    Dleq.prove grp ~drbg ~ctx:("coin-share|" ^ name ^ "|" ^ string_of_int sk.index)
      ~g1:grp.Group.g ~h1:pub.share_vks.(sk.index - 1)
      ~g2:gtilde ~h2:value ~x:sk.key
  in
  { origin = sk.index; value; proof }

let verify_share (pub : public) ~(name : string) (s : share) : bool =
  s.origin >= 1 && s.origin <= pub.n
  && begin
    let grp = pub.group in
    let gtilde = coin_base pub name in
    Dleq.verify grp ~ctx:("coin-share|" ^ name ^ "|" ^ string_of_int s.origin)
      ~h1_tbl:pub.share_vk_tbls.(s.origin - 1)
      ~g1:grp.Group.g ~h1:pub.share_vks.(s.origin - 1)
      ~g2:gtilde ~h2:s.value s.proof
  end

(* Reference twin of {!verify_share}: the same proof checked by
   {!Dleq.verify_reference} (inversions and plain exponentiations, no
   precomputed tables).  The equivalence tests and the amortization
   benchmarks compare the fast single and batch paths against it. *)
let verify_share_reference (pub : public) ~(name : string) (s : share) : bool =
  s.origin >= 1 && s.origin <= pub.n
  && begin
    let grp = pub.group in
    let gtilde = coin_base pub name in
    Dleq.verify_reference grp
      ~ctx:("coin-share|" ^ name ^ "|" ^ string_of_int s.origin)
      ~g1:grp.Group.g ~h1:pub.share_vks.(s.origin - 1)
      ~g2:gtilde ~h2:s.value s.proof
  end

(* Assemble k distinct valid shares into the coin value: [len] pseudo-random
   bytes derived from g~^x.  Shares are assumed already verified. *)
let assemble (pub : public) ~(name : string) (shares : share list) ~(len : int) : string =
  let distinct = List.sort_uniq compare (List.map (fun s -> s.origin) shares) in
  if List.length distinct < pub.k then invalid_arg "Threshold_coin.assemble: not enough distinct shares";
  let shares =
    (* Keep one share per origin, first k. *)
    let seen = Hashtbl.create 8 in
    List.filter
      (fun s ->
        if Hashtbl.mem seen s.origin || Hashtbl.length seen >= pub.k then false
        else begin Hashtbl.add seen s.origin (); true end)
      shares
  in
  let grp = pub.group in
  let points = List.map (fun s -> s.origin) shares in
  (* Interpolate g~^x in the exponent with one k-way multi-exponentiation:
     all k Lagrange powers share a single squaring chain (Nat.powmod_multi)
     instead of k separate windowed exponentiations. *)
  let acc =
    Group.mul_exp_multi grp
      (List.map
         (fun s ->
           let lam =
             Shamir.lagrange_coeff ~modulus:grp.Group.q ~points ~j:s.origin ~at:0
           in
           (s.value, lam))
         shares)
  in
  (* Expand H(g~^x) into len output bytes. *)
  let seed = Group.elt_to_bytes grp acc in
  let out = Buffer.create len in
  let i = ref 0 in
  while Buffer.length out < len do
    Buffer.add_string out
      (Hashes.Sha256.digest_list [ "coin-out|"; name; "|"; string_of_int !i; "|"; seed ]);
    incr i
  done;
  String.sub (Buffer.contents out) 0 len

(* The common case: a single unpredictable bit. *)
let assemble_bit (pub : public) ~(name : string) (shares : share list) : bool =
  let b = assemble pub ~name shares ~len:1 in
  Char.code b.[0] land 1 = 1
