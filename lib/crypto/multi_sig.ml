(* Multi-signatures: the threshold-signature interface implemented by a
   vector of k ordinary RSA signatures from distinct parties (Section 2.1 of
   the paper).  No change to the protocols that use threshold signatures is
   required; this trades longer messages for much cheaper computation, which
   the paper's Figure 6 shows is the better trade in most settings. *)

type public = {
  nparties : int;
  k : int;
  t : int;
  party_keys : Rsa.public array;   (* index i-1 *)
}

type secret_share = {
  index : int;                     (* 1-based *)
  key : Rsa.secret;
}

type share = {
  origin : int;
  signature : string;
}

type keys = { public : public; shares : secret_share array }

let deal ~(drbg : Hashes.Drbg.t) ~(modulus_bits : int) ~nparties ~k ~t () : keys =
  if not (k > t && k <= nparties - t) then
    invalid_arg "Multi_sig.deal: need t < k <= n - t";
  let shares =
    Array.init nparties (fun i ->
      let child = Hashes.Drbg.fork drbg (Printf.sprintf "multisig-key-%d" (i + 1)) in
      { index = i + 1; key = Rsa.keygen ~drbg:child ~bits:modulus_bits () })
  in
  {
    public = {
      nparties; k; t;
      party_keys = Array.map (fun s -> s.key.Rsa.pub) shares;
    };
    shares;
  }

let release (pub : public) (sk : secret_share) ~(ctx : string) (msg : string) : share =
  ignore pub;
  { origin = sk.index; signature = Rsa.sign sk.key ~ctx msg }

let verify_share (pub : public) ~(ctx : string) (msg : string) (s : share) : bool =
  s.origin >= 1 && s.origin <= pub.nparties
  && Rsa.verify pub.party_keys.(s.origin - 1) ~ctx ~signature:s.signature msg

(* An assembled multi-signature is the concatenation of k (origin, sig)
   pairs; a compact length-prefixed encoding. *)
let assemble (pub : public) ~(ctx : string) (msg : string) (shares : share list) : string =
  ignore ctx;
  ignore msg;
  let seen = Hashtbl.create 8 in
  let shares =
    List.filter
      (fun s ->
        if Hashtbl.mem seen s.origin || Hashtbl.length seen >= pub.k then false
        else begin Hashtbl.add seen s.origin (); true end)
      shares
  in
  if List.length shares < pub.k then invalid_arg "Multi_sig.assemble: not enough distinct shares";
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%04d" (List.length shares));
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "%04d%08d" s.origin (String.length s.signature));
      Buffer.add_string buf s.signature)
    shares;
  Buffer.contents buf

let parse_assembled (s : string) : share list option =
  let len = String.length s in
  if len < 4 then None
  else
    match int_of_string_opt (String.sub s 0 4) with
    | None -> None
    | Some count ->
      let rec go pos remaining acc =
        if remaining = 0 then (if pos = len then Some (List.rev acc) else None)
        else if pos + 12 > len then None
        else
          match
            int_of_string_opt (String.sub s pos 4),
            int_of_string_opt (String.sub s (pos + 4) 8)
          with
          | Some origin, Some siglen when pos + 12 + siglen <= len ->
            let signature = String.sub s (pos + 12) siglen in
            go (pos + 12 + siglen) (remaining - 1) ({ origin; signature } :: acc)
          | _ -> None
      in
      go 4 count []

let verify (pub : public) ~(ctx : string) ~(signature : string) (msg : string) : bool =
  match parse_assembled signature with
  | None -> false
  | Some shares ->
    let distinct = List.sort_uniq compare (List.map (fun s -> s.origin) shares) in
    List.length distinct >= pub.k
    && List.length distinct = List.length shares
    && List.for_all (fun s -> verify_share pub ~ctx msg s) shares

let signature_bytes (pub : public) : int =
  (* Size of an assembled multi-signature, for wire-cost accounting. *)
  let per = 12 + Rsa.signature_bytes pub.party_keys.(0) in
  4 + (pub.k * per)
