(* RSA with full-domain-hash signatures.

   Used for (a) each party's ordinary signing key in the atomic broadcast
   protocol, and (b) the multi-signature implementation of threshold
   signatures.  Signing uses the Chinese remainder theorem, the optimization
   the paper credits for the fast multi-signature path. *)

open Bignum

type public = {
  n : Nat.t;
  e : Nat.t;
}

type secret = {
  pub : public;
  d : Nat.t;
  p : Nat.t;
  q : Nat.t;
  d_p : Nat.t;       (* d mod p-1 *)
  d_q : Nat.t;       (* d mod q-1 *)
  q_inv : Nat.t;     (* q^{-1} mod p *)
}

let default_e = Nat.of_int 65537

let keygen ?(e = default_e) ~(drbg : Hashes.Drbg.t) ~(bits : int) () : secret =
  let random_bytes = Hashes.Drbg.random_bytes drbg in
  let half = bits / 2 in
  let e_big = Bigint.of_nat e in
  let rec gen_factor () =
    let p = Prime.gen_prime ~random_bytes half in
    let p1 = Bigint.of_nat (Nat.sub p Nat.one) in
    if Bigint.equal (Bigint.gcd e_big p1) Bigint.one then p else gen_factor ()
  in
  let p = gen_factor () in
  let rec gen_q () =
    let q = gen_factor () in
    if Nat.equal p q then gen_q () else q
  in
  let q = gen_q () in
  let p, q = if Nat.compare p q >= 0 then p, q else q, p in
  let n = Nat.mul p q in
  let p1 = Nat.sub p Nat.one and q1 = Nat.sub q Nat.one in
  let phi = Nat.mul p1 q1 in
  let d = Bigint.to_nat (Bigint.invmod e_big (Bigint.of_nat phi)) in
  let q_inv = Bigint.to_nat (Bigint.invmod (Bigint.of_nat q) (Bigint.of_nat p)) in
  {
    pub = { n; e };
    d; p; q;
    d_p = Nat.rem d p1;
    d_q = Nat.rem d q1;
    q_inv;
  }

(* Full-domain hash of a message into [0, n), domain-separated by a context
   string (the protocol identifier in SINTRA). *)
let fdh (pub : public) ~(ctx : string) (msg : string) : Nat.t =
  let nbytes = (Nat.numbits pub.n + 7) / 8 in
  let nblocks = (nbytes + 8 + 31) / 32 in
  let buf = Buffer.create (32 * nblocks) in
  for i = 0 to nblocks - 1 do
    Buffer.add_string buf
      (Hashes.Sha256.digest_list
         [ "rsa-fdh|"; ctx; "|"; string_of_int i; "|"; msg ])
  done;
  Nat.rem (Nat.of_bytes_be (Buffer.contents buf)) pub.n

(* CRT exponentiation x^d mod n. *)
let crt_power (sk : secret) (x : Nat.t) : Nat.t =
  let mp = Nat.powmod (Nat.rem x sk.p) sk.d_p sk.p in
  let mq = Nat.powmod (Nat.rem x sk.q) sk.d_q sk.q in
  (* h = q_inv * (mp - mq) mod p *)
  let diff = Bigint.erem (Bigint.sub (Bigint.of_nat mp) (Bigint.of_nat mq)) (Bigint.of_nat sk.p) in
  let h = Nat.rem (Nat.mul sk.q_inv (Bigint.to_nat diff)) sk.p in
  Nat.add mq (Nat.mul h sk.q)

let sign (sk : secret) ~(ctx : string) (msg : string) : string =
  let h = fdh sk.pub ~ctx msg in
  let s = crt_power sk h in
  let nbytes = (Nat.numbits sk.pub.n + 7) / 8 in
  Nat.to_bytes_be ~len:nbytes s

let verify (pub : public) ~(ctx : string) ~(signature : string) (msg : string) : bool =
  let nbytes = (Nat.numbits pub.n + 7) / 8 in
  String.length signature = nbytes
  && begin
    let s = Nat.of_bytes_be signature in
    Nat.compare s pub.n < 0
    && Nat.equal (Nat.powmod s pub.e pub.n) (fdh pub ~ctx msg)
  end

let signature_bytes (pub : public) : int = (Nat.numbits pub.n + 7) / 8

let public_to_bytes (pub : public) : string =
  let nb = Nat.to_bytes_be pub.n and eb = Nat.to_bytes_be pub.e in
  Printf.sprintf "%d|%d|" (String.length nb) (String.length eb) ^ nb ^ eb
