(* Schnorr groups: the order-q subgroup of Z_p^* for primes q | p - 1.

   The paper's discrete-log based schemes (threshold coin-tossing and
   threshold encryption) use a 1024-bit prime p such that p - 1 has a 160-bit
   prime factor q; this module provides those groups for arbitrary sizes. *)

type table = Bignum.Nat.Fixed_base.ctx

type t = {
  p : Bignum.Nat.t;         (* field prime *)
  q : Bignum.Nat.t;         (* subgroup order, prime, q | p-1 *)
  g : Bignum.Nat.t;         (* generator of the order-q subgroup *)
  cofactor : Bignum.Nat.t;  (* (p-1)/q *)
  g_tbl : table;            (* fixed-base window table for g *)
}

type elt = Bignum.Nat.t  (* element of the subgroup, in [1, p) *)
type exponent = Bignum.Nat.t  (* in [0, q) *)

let make ~p ~q ~g =
  let open Bignum in
  (* Odd p means the Montgomery fast path is statically known-taken for
     every operation in this group (p is prime > 2 in all real uses). *)
  if not (Nat.testbit p 0) then invalid_arg "Group.make: modulus must be odd";
  let p_minus_1 = Nat.sub p Nat.one in
  if not (Nat.is_zero (Nat.rem p_minus_1 q)) then invalid_arg "Group.make: q does not divide p-1";
  if not (Nat.equal (Nat.powmod g q p) Nat.one) then invalid_arg "Group.make: g not of order q";
  if Nat.equal g Nat.one then invalid_arg "Group.make: trivial generator";
  (* Exponents run over [0, q] (q itself appears as q - c when c = 0), so
     the table covers the full |q| bit width. *)
  let g_tbl = Nat.Fixed_base.create ~base:g ~modulus:p ~max_bits:(Nat.numbits q) in
  { p; q; g; cofactor = Nat.div p_minus_1 q; g_tbl }

let generate ~(drbg : Hashes.Drbg.t) ~pbits ~qbits : t =
  let random_bytes = Hashes.Drbg.random_bytes drbg in
  let p, q, g = Bignum.Prime.gen_schnorr_group ~random_bytes ~pbits ~qbits () in
  make ~p ~q ~g

let one (_ : t) : elt = Bignum.Nat.one

let mul (grp : t) (a : elt) (b : elt) : elt = Bignum.Nat.rem (Bignum.Nat.mul a b) grp.p

(* Power: generator powers hit the precomputed window table (no squarings);
   everything else takes the Montgomery-windowed powmod. *)
let pow (grp : t) (a : elt) (e : exponent) : elt =
  if Bignum.Nat.equal a grp.g then Bignum.Nat.Fixed_base.pow grp.g_tbl e
  else Bignum.Nat.powmod a e grp.p

let pow_g (grp : t) (e : exponent) : elt = Bignum.Nat.Fixed_base.pow grp.g_tbl e

(* Fixed-base tables for long-lived non-generator bases (party verification
   keys, TDH2's gbar and h), built once at dealer setup. *)
let precompute ?max_bits (grp : t) (a : elt) : table =
  let mb = match max_bits with
    | Some b -> b
    | None -> Bignum.Nat.numbits grp.q
  in
  Bignum.Nat.Fixed_base.create ~base:a ~modulus:grp.p ~max_bits:mb

let pow_table (tbl : table) (e : exponent) : elt = Bignum.Nat.Fixed_base.pow tbl e

(* Simultaneous double exponentiation a^ea * b^eb (Shamir's trick) — the
   shape of every share verification. *)
let mul_exp2 (grp : t) (a : elt) (ea : exponent) (b : elt) (eb : exponent) : elt =
  Bignum.Nat.powmod2 a ea b eb grp.p

(* k-way simultaneous multi-exponentiation — Lagrange combination over all
   k shares and batched share verification in one shared squaring chain. *)
let mul_exp_multi (grp : t) (pairs : (elt * exponent) list) : elt =
  Bignum.Nat.powmod_multi pairs grp.p

let inv (grp : t) (a : elt) : elt =
  let open Bignum in
  Bigint.to_nat (Bigint.invmod (Bigint.of_nat a) (Bigint.of_nat grp.p))

let div (grp : t) (a : elt) (b : elt) : elt = mul grp a (inv grp b)

(* Signed-exponent power, used by Lagrange interpolation in the exponent. *)
let pow_signed (grp : t) (a : elt) (e : Bignum.Bigint.t) : elt =
  let open Bignum in
  Bigint.to_nat (Bigint.powmod_signed (Bigint.of_nat a) e (Bigint.of_nat grp.p))

let elt_equal (a : elt) (b : elt) = Bignum.Nat.equal a b

let is_member (grp : t) (a : elt) : bool =
  let open Bignum in
  not (Nat.is_zero a)
  && Nat.compare a grp.p < 0
  && Nat.equal (Nat.powmod a grp.q grp.p) Nat.one

(* Random exponent in [0, q). *)
let random_exponent (grp : t) ~(drbg : Hashes.Drbg.t) : exponent =
  Bignum.Nat.random_below ~random_bytes:(Hashes.Drbg.random_bytes drbg) grp.q

(* Hash an arbitrary string into the order-q subgroup: expand the input to a
   field element with a counter-mode hash, then raise to the cofactor.  Retry
   on the (negligible) chance of hitting the identity. *)
let hash_to_group (grp : t) (s : string) : elt =
  let open Bignum in
  let pbytes = (Nat.numbits grp.p + 7) / 8 in
  let rec attempt ctr =
    let needed = pbytes + 8 in
    let nblocks = (needed + 31) / 32 in
    let buf = Buffer.create (32 * nblocks) in
    for i = 0 to nblocks - 1 do
      Buffer.add_string buf
        (Hashes.Sha256.digest_list
           [ "sintra-h2g|"; string_of_int ctr; "|"; string_of_int i; "|"; s ])
    done;
    let x = Nat.rem (Nat.of_bytes_be (Buffer.contents buf)) grp.p in
    let e = Nat.powmod x grp.cofactor grp.p in
    if Nat.is_zero e || Nat.equal e Nat.one then attempt (ctr + 1) else e
  in
  attempt 0

(* Hash group elements / strings to a challenge exponent in [0, q)
   (Fiat-Shamir). *)
let hash_to_exponent (grp : t) (parts : string list) : exponent =
  let open Bignum in
  let qbytes = (Nat.numbits grp.q + 7) / 8 in
  let nblocks = (qbytes + 8 + 31) / 32 in
  let buf = Buffer.create (32 * nblocks) in
  let joined = String.concat "\x00" parts in
  for i = 0 to nblocks - 1 do
    Buffer.add_string buf
      (Hashes.Sha256.digest_list [ "sintra-h2e|"; string_of_int i; "|"; joined ])
  done;
  Nat.rem (Nat.of_bytes_be (Buffer.contents buf)) grp.q

let elt_to_bytes (grp : t) (a : elt) : string =
  let pbytes = (Bignum.Nat.numbits grp.p + 7) / 8 in
  Bignum.Nat.to_bytes_be ~len:pbytes a

let elt_of_bytes (s : string) : elt = Bignum.Nat.of_bytes_be s

let exponent_to_bytes (grp : t) (e : exponent) : string =
  let qbytes = (Bignum.Nat.numbits grp.q + 7) / 8 in
  Bignum.Nat.to_bytes_be ~len:qbytes e

let exponent_of_bytes (s : string) : exponent = Bignum.Nat.of_bytes_be s
