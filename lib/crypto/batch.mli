(** Batch verification of share proofs by small-exponent random linear
    combination (Bellare-Garay-Rabin style), with bisection fall-back.

    Both proof systems carry their Fiat-Shamir commitments, so each proof
    is a pair of algebraic verification equations; [k] proofs are checked
    at once by raising each equation to a nonzero 64-bit coefficient and
    testing the single combined equation with two k-way
    multi-exponentiations ({!Bignum.Nat.powmod_multi}).  Coefficients are
    derived deterministically by hashing the whole batch, so verification
    is reproducible and an adversary must fix its shares before learning
    them; a bad share then survives with probability [2^-64].

    When the combined check fails, the batch is bisected (each sub-batch
    re-derives its own coefficients) down to singleton leaves, which run
    the exact one-share verifier — the reported indices are {e precisely}
    the shares failing individual verification, so Byzantine senders are
    identified exactly as on the one-at-a-time path. *)

type verdict =
  | All_valid          (** every share passes individual verification *)
  | Invalid of int list
  (** the 0-based input positions failing individual verification,
      increasing *)

val dleq :
  Group.t -> g1:Group.elt -> g2:Group.elt -> ?h1_trusted:bool ->
  (string * Group.elt * Group.elt * Dleq.t) list -> verdict
(** Batch-verify DLEQ proofs sharing both statement bases — the
    coin-share/decryption-share shape.  Each item is
    [(ctx, h1, h2, proof)].  [h1_trusted] (default false) skips the
    subgroup membership test on the [h1] side, sound when the [h1] are
    dealer-published verification keys (members by construction); all
    other checks match {!Dleq.verify} item-for-item. *)

val coin_shares :
  Threshold_coin.public -> name:string -> Threshold_coin.share list ->
  verdict
(** Batch-verify threshold-coin shares for one coin: the {!dleq} batch
    over [g1 = g], [g2 = HashToGroup(name)] with the dealer's verification
    keys trusted.  Agrees with {!Threshold_coin.verify_share} share by
    share. *)

val tsig_shares :
  Threshold_sig.public -> ctx:string -> string -> Threshold_sig.share list ->
  verdict
(** Batch-verify Shoup signature shares on one message.  The shared base
    [xtilde = x^(4*Delta)] is computed once for the batch (the
    one-at-a-time path pays it per share), and the combined equation runs
    over integer exponents (the group [QR_n] has unknown order, so nothing
    is reduced).  Agrees with {!Threshold_sig.verify_share} share by
    share. *)
