(* Non-interactive Chaum-Pedersen proofs of discrete-log equality, made
   non-interactive with the Fiat-Shamir transform.

   A proof for ((g1, h1), (g2, h2)) convinces a verifier that
   log_{g1} h1 = log_{g2} h2 without revealing the exponent.  These proofs
   justify threshold-coin shares and threshold-decryption shares, making both
   schemes robust: a corrupted party cannot inject a bogus share.

   The proof carries the two commitments (a1, a2) and the response z; the
   challenge is recomputed by the verifier as c = H(statement, a1, a2).
   Carrying commitments instead of the challenge costs two group elements of
   wire size but makes the verification equations

       g1^z = a1 * h1^c        g2^z = a2 * h2^c

   algebraic in the proof components, which is what allows many proofs to be
   checked together by a small-exponent random linear combination (see
   {!Batch}); a challenge-carrying proof hides the commitments inside the
   hash and admits no batching at all. *)

open Bignum

type t = {
  a1 : Group.elt;              (* commitment g1^r *)
  a2 : Group.elt;              (* commitment g2^r *)
  response : Group.exponent;   (* z = r + c*x mod q, c = H(...,a1,a2) *)
}

let transcript grp ~ctx ~g1 ~h1 ~g2 ~h2 ~a1 ~a2 =
  [ "dleq"; ctx;
    Group.elt_to_bytes grp g1; Group.elt_to_bytes grp h1;
    Group.elt_to_bytes grp g2; Group.elt_to_bytes grp h2;
    Group.elt_to_bytes grp a1; Group.elt_to_bytes grp a2 ]

(* The commitments must be serializable into the transcript, so reject
   out-of-range field elements up front (proofs arrive off the wire). *)
let well_formed grp (proof : t) : bool =
  not (Nat.is_zero proof.a1)
  && Nat.compare proof.a1 grp.Group.p < 0
  && not (Nat.is_zero proof.a2)
  && Nat.compare proof.a2 grp.Group.p < 0

let challenge grp ~(ctx : string) ~g1 ~h1 ~g2 ~h2 (proof : t) : Group.exponent =
  Group.hash_to_exponent grp
    (transcript grp ~ctx ~g1 ~h1 ~g2 ~h2 ~a1:proof.a1 ~a2:proof.a2)

(* [prove grp ~drbg ~ctx ~g1 ~h1 ~g2 ~h2 ~x] with h1 = g1^x, h2 = g2^x. *)
let prove grp ~(drbg : Hashes.Drbg.t) ~(ctx : string) ~g1 ~h1 ~g2 ~h2 ~(x : Group.exponent) : t =
  let r = Group.random_exponent grp ~drbg in
  let a1 = Group.pow grp g1 r and a2 = Group.pow grp g2 r in
  let c = Group.hash_to_exponent grp (transcript grp ~ctx ~g1 ~h1 ~g2 ~h2 ~a1 ~a2) in
  let response = Nat.rem (Nat.add r (Nat.mul c x)) grp.Group.q in
  { a1; a2; response }

(* Fast verification.  Each commitment is recomputed as
     a_i = g_i^z * h_i^(q-c)
   — valid because h_i passed the order-q membership test, so h_i^(q-c) =
   h_i^(-c) with no modular inversion — and compared against the carried
   commitment.  Each pair costs one simultaneous double exponentiation
   (Shamir's trick) instead of two exponentiations plus an inversion; when
   the verifier holds fixed-base tables (g1 = g hits the group's own table
   inside [Group.pow], and [h1_tbl] covers the long-lived verification key)
   the first pair drops to two table hits. *)
let verify grp ~(ctx : string) ?h1_tbl ~g1 ~h1 ~g2 ~h2 (proof : t) : bool =
  well_formed grp proof
  && Group.is_member grp h1 && Group.is_member grp h2
  && begin
    let c = challenge grp ~ctx ~g1 ~h1 ~g2 ~h2 proof in
    let neg_c = Nat.sub grp.Group.q c in
    let a1 =
      match h1_tbl with
      | Some tbl ->
        Group.mul grp (Group.pow grp g1 proof.response) (Group.pow_table tbl neg_c)
      | None -> Group.mul_exp2 grp g1 proof.response h1 neg_c
    in
    Group.elt_equal a1 proof.a1
    && Group.elt_equal (Group.mul_exp2 grp g2 proof.response h2 neg_c) proof.a2
  end

(* The pre-fast-path verifier (two powmods + an inversion per pair), kept
   for equivalence tests and the bench comparison.  [Group.pow] still hits
   the generator table when g_i = g; [Nat.powmod_barrett] below it is the
   benchmark's fully-plain baseline. *)
let verify_reference grp ~(ctx : string) ~g1 ~h1 ~g2 ~h2 (proof : t) : bool =
  well_formed grp proof
  && Group.is_member grp h1 && Group.is_member grp h2
  && begin
    let c = challenge grp ~ctx ~g1 ~h1 ~g2 ~h2 proof in
    (* Recompute the commitments: a_i = g_i^z * h_i^(-c). *)
    let recompute g h =
      Group.div grp
        (Nat.powmod g proof.response grp.Group.p)
        (Nat.powmod h c grp.Group.p)
    in
    Group.elt_equal (recompute g1 h1) proof.a1
    && Group.elt_equal (recompute g2 h2) proof.a2
  end

let to_bytes grp (t : t) : string =
  Group.elt_to_bytes grp t.a1 ^ Group.elt_to_bytes grp t.a2
  ^ Group.exponent_to_bytes grp t.response

let of_bytes grp (s : string) : t option =
  let pbytes = (Nat.numbits grp.Group.p + 7) / 8 in
  let qbytes = (Nat.numbits grp.Group.q + 7) / 8 in
  if String.length s <> (2 * pbytes) + qbytes then None
  else
    Some {
      a1 = Group.elt_of_bytes (String.sub s 0 pbytes);
      a2 = Group.elt_of_bytes (String.sub s pbytes pbytes);
      response = Group.exponent_of_bytes (String.sub s (2 * pbytes) qbytes);
    }
