(* Non-interactive Chaum-Pedersen proofs of discrete-log equality, made
   non-interactive with the Fiat-Shamir transform.

   A proof for ((g1, h1), (g2, h2)) convinces a verifier that
   log_{g1} h1 = log_{g2} h2 without revealing the exponent.  These proofs
   justify threshold-coin shares and threshold-decryption shares, making both
   schemes robust: a corrupted party cannot inject a bogus share. *)

open Bignum

type t = {
  challenge : Group.exponent;  (* c = H(g1,h1,g2,h2,a1,a2,ctx) *)
  response : Group.exponent;   (* z = r + c*x mod q *)
}

let transcript grp ~ctx ~g1 ~h1 ~g2 ~h2 ~a1 ~a2 =
  [ "dleq"; ctx;
    Group.elt_to_bytes grp g1; Group.elt_to_bytes grp h1;
    Group.elt_to_bytes grp g2; Group.elt_to_bytes grp h2;
    Group.elt_to_bytes grp a1; Group.elt_to_bytes grp a2 ]

(* [prove grp ~drbg ~ctx ~g1 ~h1 ~g2 ~h2 ~x] with h1 = g1^x, h2 = g2^x. *)
let prove grp ~(drbg : Hashes.Drbg.t) ~(ctx : string) ~g1 ~h1 ~g2 ~h2 ~(x : Group.exponent) : t =
  let r = Group.random_exponent grp ~drbg in
  let a1 = Group.pow grp g1 r and a2 = Group.pow grp g2 r in
  let challenge = Group.hash_to_exponent grp (transcript grp ~ctx ~g1 ~h1 ~g2 ~h2 ~a1 ~a2) in
  let response = Nat.rem (Nat.add r (Nat.mul challenge x)) grp.Group.q in
  { challenge; response }

(* Fast verification.  The commitments are recomputed as
     a_i = g_i^z * h_i^(q-c)
   — valid because h_i passed the order-q membership test, so h_i^(q-c) =
   h_i^(-c) with no modular inversion.  Each pair costs one simultaneous
   double exponentiation (Shamir's trick) instead of two exponentiations
   plus an inversion; when the verifier holds fixed-base tables (g1 = g
   hits the group's own table inside [Group.pow], and [h1_tbl] covers the
   long-lived verification key) the first pair drops to two table hits. *)
let verify grp ~(ctx : string) ?h1_tbl ~g1 ~h1 ~g2 ~h2 (proof : t) : bool =
  (* c >= q cannot have come from hash_to_exponent, so reject up front
     (the reference path rejects it at the final hash comparison). *)
  Nat.compare proof.challenge grp.Group.q < 0
  && Group.is_member grp h1 && Group.is_member grp h2
  && begin
    let neg_c = Nat.sub grp.Group.q proof.challenge in
    let a1 =
      match h1_tbl with
      | Some tbl ->
        Group.mul grp (Group.pow grp g1 proof.response) (Group.pow_table tbl neg_c)
      | None -> Group.mul_exp2 grp g1 proof.response h1 neg_c
    in
    let a2 = Group.mul_exp2 grp g2 proof.response h2 neg_c in
    let c = Group.hash_to_exponent grp (transcript grp ~ctx ~g1 ~h1 ~g2 ~h2 ~a1 ~a2) in
    Nat.equal c proof.challenge
  end

(* The pre-fast-path verifier (two powmods + an inversion per pair), kept
   for equivalence tests and the bench comparison.  [Group.pow] still hits
   the generator table when g_i = g; [Nat.powmod_barrett] below it is the
   benchmark's fully-plain baseline. *)
let verify_reference grp ~(ctx : string) ~g1 ~h1 ~g2 ~h2 (proof : t) : bool =
  Group.is_member grp h1 && Group.is_member grp h2
  && begin
    (* Recompute the commitments: a_i = g_i^z * h_i^(-c). *)
    let recompute g h =
      Group.div grp
        (Nat.powmod g proof.response grp.Group.p)
        (Nat.powmod h proof.challenge grp.Group.p)
    in
    let a1 = recompute g1 h1 and a2 = recompute g2 h2 in
    let c = Group.hash_to_exponent grp (transcript grp ~ctx ~g1 ~h1 ~g2 ~h2 ~a1 ~a2) in
    Nat.equal c proof.challenge
  end

let to_bytes grp (t : t) : string =
  Group.exponent_to_bytes grp t.challenge ^ Group.exponent_to_bytes grp t.response

let of_bytes grp (s : string) : t option =
  let qbytes = (Nat.numbits grp.Group.q + 7) / 8 in
  if String.length s <> 2 * qbytes then None
  else
    Some {
      challenge = Group.exponent_of_bytes (String.sub s 0 qbytes);
      response = Group.exponent_of_bytes (String.sub s qbytes qbytes);
    }
