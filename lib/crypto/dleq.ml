(* Non-interactive Chaum-Pedersen proofs of discrete-log equality, made
   non-interactive with the Fiat-Shamir transform.

   A proof for ((g1, h1), (g2, h2)) convinces a verifier that
   log_{g1} h1 = log_{g2} h2 without revealing the exponent.  These proofs
   justify threshold-coin shares and threshold-decryption shares, making both
   schemes robust: a corrupted party cannot inject a bogus share. *)

open Bignum

type t = {
  challenge : Group.exponent;  (* c = H(g1,h1,g2,h2,a1,a2,ctx) *)
  response : Group.exponent;   (* z = r + c*x mod q *)
}

let transcript grp ~ctx ~g1 ~h1 ~g2 ~h2 ~a1 ~a2 =
  [ "dleq"; ctx;
    Group.elt_to_bytes grp g1; Group.elt_to_bytes grp h1;
    Group.elt_to_bytes grp g2; Group.elt_to_bytes grp h2;
    Group.elt_to_bytes grp a1; Group.elt_to_bytes grp a2 ]

(* [prove grp ~drbg ~ctx ~g1 ~h1 ~g2 ~h2 ~x] with h1 = g1^x, h2 = g2^x. *)
let prove grp ~(drbg : Hashes.Drbg.t) ~(ctx : string) ~g1 ~h1 ~g2 ~h2 ~(x : Group.exponent) : t =
  let r = Group.random_exponent grp ~drbg in
  let a1 = Group.pow grp g1 r and a2 = Group.pow grp g2 r in
  let challenge = Group.hash_to_exponent grp (transcript grp ~ctx ~g1 ~h1 ~g2 ~h2 ~a1 ~a2) in
  let response = Nat.rem (Nat.add r (Nat.mul challenge x)) grp.Group.q in
  { challenge; response }

let verify grp ~(ctx : string) ~g1 ~h1 ~g2 ~h2 (proof : t) : bool =
  Group.is_member grp h1 && Group.is_member grp h2
  && begin
    (* Recompute the commitments: a_i = g_i^z * h_i^(-c). *)
    let recompute g h =
      Group.div grp (Group.pow grp g proof.response) (Group.pow grp h proof.challenge)
    in
    let a1 = recompute g1 h1 and a2 = recompute g2 h2 in
    let c = Group.hash_to_exponent grp (transcript grp ~ctx ~g1 ~h1 ~g2 ~h2 ~a1 ~a2) in
    Nat.equal c proof.challenge
  end

let to_bytes grp (t : t) : string =
  Group.exponent_to_bytes grp t.challenge ^ Group.exponent_to_bytes grp t.response

let of_bytes grp (s : string) : t option =
  let qbytes = (Nat.numbits grp.Group.q + 7) / 8 in
  if String.length s <> 2 * qbytes then None
  else
    Some {
      challenge = Group.exponent_of_bytes (String.sub s 0 qbytes);
      response = Group.exponent_of_bytes (String.sub s qbytes qbytes);
    }
