(** Multi-signatures: the threshold-signature interface implemented by a
    vector of [k] ordinary RSA signatures from distinct parties
    (Section 2.1 of the paper).

    Drop-in interchangeable with {!Threshold_sig} — no protocol changes —
    trading longer messages for much cheaper computation; Figure 6 shows
    this is the better trade in most settings. *)

type public = {
  nparties : int;
  k : int;
  t : int;
  party_keys : Rsa.public array;   (** index [i-1] *)
}

type secret_share = {
  index : int;                     (** 1-based *)
  key : Rsa.secret;
}

type share = {
  origin : int;
  signature : string;
}

type keys = { public : public; shares : secret_share array }

val deal :
  drbg:Hashes.Drbg.t -> modulus_bits:int -> nparties:int -> k:int -> t:int ->
  unit -> keys
(** The trusted dealer: one independent RSA key pair per party.
    @raise Invalid_argument unless [t < k <= nparties - t]. *)

val release : public -> secret_share -> ctx:string -> string -> share
(** One ordinary (CRT) RSA signature. *)

val verify_share : public -> ctx:string -> string -> share -> bool
(** One RSA verification against the origin's public key. *)

val assemble : public -> ctx:string -> string -> share list -> string
(** Concatenate [k] shares from distinct origins (length-prefixed).
    @raise Invalid_argument with fewer than [k] distinct origins. *)

val parse_assembled : string -> share list option
(** Decode {!assemble}'s framing; [None] on malformed input. *)

val verify : public -> ctx:string -> signature:string -> string -> bool
(** At least [k] valid signatures from distinct parties, no duplicates. *)

val signature_bytes : public -> int
(** Size of an assembled multi-signature (larger than a threshold
    signature by ~[k]x — the wire-size cost Figure 6 trades against CPU). *)
