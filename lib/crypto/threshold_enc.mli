(** The Shoup-Gennaro TDH2 threshold cryptosystem (EUROCRYPT '98), secure
    against adaptive chosen-ciphertext attack in the random-oracle model.

    The engine of secure {e causal} atomic broadcast (Section 2.6): clients
    encrypt under the single group public key; servers release
    non-interactively verifiable decryption shares only {e after} the
    ciphertext's position in the total order is fixed; any [t+1] shares
    recover the plaintext.  CCA security is what prevents a Byzantine
    server from mauling an honest ciphertext into a related one and
    front-running it. *)

type public = {
  group : Group.t;
  gbar : Group.elt;              (** independent second generator *)
  n : int;
  k : int;
  t : int;
  h : Group.elt;                 (** public key [g^x] *)
  hks : Group.elt array;         (** [h_i = g^(x_i)] *)
  gbar_tbl : Group.table;        (** fixed-base table for [gbar] *)
  h_tbl : Group.table;           (** fixed-base table for [h] *)
  hk_tbls : Group.table array;
  (** fixed-base tables for the [h_i]; with these and the group's own
      generator table, all five exponentiations of {!encrypt} and the first
      verification pair of every {!verify_dec_share} are table-driven *)
}

type secret_share = {
  index : int;
  key : Group.exponent;
}

type keys = { public : public; shares : secret_share array }

type ciphertext = {
  c : string;                    (** bulk-encrypted payload *)
  label : string;                (** bound cleartext label *)
  u : Group.elt;                 (** [g^r] *)
  ubar : Group.elt;              (** [gbar^r] *)
  e : Group.exponent;            (** NIZK challenge *)
  f : Group.exponent;            (** NIZK response *)
}

type dec_share = {
  origin : int;
  u_i : Group.elt;               (** [u^(x_i)] *)
  proof : Dleq.t;
}

val deal : drbg:Hashes.Drbg.t -> group:Group.t -> n:int -> k:int -> t:int -> keys
(** The trusted dealer: Shamir-share [x], derive [gbar] and the per-party
    [h_i], and precompute all fixed-base tables.
    @raise Invalid_argument unless [t < k <= n-t]. *)

val encrypt : drbg:Hashes.Drbg.t -> public -> label:string -> string -> ciphertext
(** Hybrid encryption: a SHA-256 counter-mode stream cipher keyed by
    [H(h^r)] (standing in for the paper's MARS), plus the TDH2 validity
    proof. *)

val ciphertext_valid : public -> ciphertext -> bool
(** Publicly checkable well-formedness; fails for any mauled ciphertext. *)

val dec_share : drbg:Hashes.Drbg.t -> public -> secret_share -> ciphertext -> dec_share option
(** A decryption share with its DLEQ correctness proof; [None] if the
    ciphertext is invalid (honest servers refuse to touch it). *)

val verify_dec_share : public -> ciphertext -> dec_share -> bool
(** Ciphertext validity plus the share's DLEQ proof against [h_origin]
    (table-driven via {!hk_tbls}). *)

val combine : public -> ciphertext -> dec_share list -> string option
(** Recover the plaintext from [k] distinct verified shares. *)

val stream_xor : key:string -> string -> string
(** The bulk cipher (exposed for testing). *)

val ciphertext_to_bytes : public -> ciphertext -> string
(** Canonical fixed-width wire encoding (what travels in broadcast
    payloads, and what the cost model charges for). *)

val ciphertext_of_bytes : string -> ciphertext option
(** Inverse of {!ciphertext_to_bytes}; [None] on malformed input. *)
