(* Arbitrary-precision natural numbers.

   Representation: little-endian array of limbs in base 2^31, normalized so
   that the most significant limb is non-zero; zero is the empty array.
   Base 2^31 is chosen so that a limb product plus two limb-sized carries
   fits in OCaml's 63-bit native [int] without overflow. *)

let limb_bits = 31
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

type t = int array

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int (x : int) : t =
  if x < 0 then invalid_arg "Nat.of_int: negative";
  normalize
    [| x land limb_mask; (x lsr limb_bits) land limb_mask; x lsr (2 * limb_bits) |]

let to_int_opt (a : t) : int option =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some (a.(0) lor (a.(1) lsl limb_bits))
  | 3 when a.(2) < 1 lsl (62 - 2 * limb_bits) ->
    Some (a.(0) lor (a.(1) lsl limb_bits) lor (a.(2) lsl (2 * limb_bits)))
  | _ -> None

let one = of_int 1
let two = of_int 2

let num_limbs = Array.length

let compare (a : t) (b : t) : int =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i = if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

(* Number of significant bits; 0 for zero. *)
let numbits (a : t) : int =
  let l = Array.length a in
  if l = 0 then 0
  else
    let top = a.(l - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((l - 1) * limb_bits) + width 1

let testbit (a : t) (i : int) : bool =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let l = max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(l) <- !carry;
  normalize r

(* [sub a b] requires a >= b. *)
let sub (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < lb then invalid_arg "Nat.sub: underflow";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + limb_base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  if !borrow <> 0 then invalid_arg "Nat.sub: underflow";
  normalize r

let mul_limb (a : t) (m : int) : t =
  if m = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (a.(i) * m) + !carry in
      r.(i) <- p land limb_mask;
      carry := p lsr limb_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

let schoolbook_mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let cur = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- cur land limb_mask;
          carry := cur lsr limb_bits
        done;
        (* Propagate the final carry; it can ripple at most a few limbs. *)
        let k = ref (i + lb) in
        while !carry <> 0 do
          let cur = r.(!k) + !carry in
          r.(!k) <- cur land limb_mask;
          carry := cur lsr limb_bits;
          incr k
        done
      end
    done;
    normalize r
  end

(* Split [a] into (low [k] limbs, rest) for Karatsuba. *)
let split_at (a : t) (k : int) : t * t =
  let la = Array.length a in
  if la <= k then (a, zero)
  else (normalize (Array.sub a 0 k), normalize (Array.sub a k (la - k)))

let shift_limbs (a : t) (k : int) : t =
  if is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r
  end

let karatsuba_threshold = 32

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then schoolbook_mul a b
  else begin
    let k = (max la lb + 1) / 2 in
    let a0, a1 = split_at a k and b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 k)) (shift_limbs z2 (2 * k))
  end

let sqr a = mul a a

let shift_left (a : t) (bits : int) : t =
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if off = 0 then Array.blit a 0 r limbs la
    else
      for i = 0 to la - 1 do
        let v = a.(i) lsl off in
        r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
        r.(i + limbs + 1) <- v lsr limb_bits
      done;
    normalize r
  end

let shift_right (a : t) (bits : int) : t =
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let l = la - limbs in
      let r = Array.make l 0 in
      if off = 0 then Array.blit a limbs r 0 l
      else
        for i = 0 to l - 1 do
          let hi = if i + limbs + 1 < la then a.(i + limbs + 1) else 0 in
          r.(i) <- (a.(i + limbs) lsr off) lor ((hi lsl (limb_bits - off)) land limb_mask)
        done;
      normalize r
    end
  end

(* Division: Knuth Algorithm D on normalized operands.
   Returns (quotient, remainder). *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    (* Single-limb divisor: simple long division. *)
    let d = b.(0) in
    let la = Array.length a in
    let q = Array.make la 0 in
    let rem = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!rem lsl limb_bits) lor a.(i) in
      q.(i) <- cur / d;
      rem := cur mod d
    done;
    (normalize q, of_int !rem)
  end
  else begin
    (* Normalize so the divisor's top limb has its high bit set. *)
    let shift = limb_bits - (numbits b - (Array.length b - 1) * limb_bits) in
    let u = shift_left a shift and v = shift_left b shift in
    let n = Array.length v in
    let m = Array.length u - n in
    let m = if m < 0 then 0 else m in
    (* u gets an extra high limb. *)
    let u = Array.append u (Array.make (m + n + 1 - Array.length u) 0) in
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) in
    let vnext = if n >= 2 then v.(n - 2) else 0 in
    for j = m downto 0 do
      (* Estimate the quotient limb from the top two limbs of u. *)
      let top2 = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
      let qhat = ref (top2 / vtop) in
      let rhat = ref (top2 mod vtop) in
      if !qhat >= limb_base then begin qhat := limb_base - 1; rhat := top2 - !qhat * vtop end;
      let continue = ref true in
      while !continue do
        (* qhat*vnext must not exceed rhat*base + u[j+n-2]; qhat < 2^31 and
           vnext < 2^31 so the product fits in 62 bits. *)
        if !rhat < limb_base
           && !qhat * vnext > (!rhat lsl limb_bits) lor (if n >= 2 then u.(j + n - 2) else 0)
        then begin decr qhat; rhat := !rhat + vtop end
        else continue := false
      done;
      (* Multiply and subtract: u[j .. j+n] -= qhat * v. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = !qhat * v.(i) + !carry in
        carry := p lsr limb_bits;
        let d = u.(i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin u.(i + j) <- d + limb_base; borrow := 1 end
        else begin u.(i + j) <- d; borrow := 0 end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* Estimate was one too large: add back. *)
        u.(j + n) <- d + limb_base;
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(i + j) + v.(i) + !carry in
          u.(i + j) <- s land limb_mask;
          carry := s lsr limb_bits
        done;
        u.(j + n) <- (u.(j + n) + !carry) land limb_mask
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    (normalize q, shift_right r shift)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* Barrett reduction: for a fixed modulus m of k limbs, precompute
   mu = floor(base^(2k) / m); then for x < base^(2k),
     q = floor( floor(x / base^(k-1)) * mu / base^(k+1) )
   satisfies 0 <= x - q*m < 3m, so at most two subtractions complete the
   reduction — no per-operation division.  This is the workhorse under
   every modular exponentiation. *)
module Barrett = struct
  type ctx = {
    m : t;
    k : int;          (* limbs of m *)
    mu : t;           (* floor(base^(2k) / m) *)
  }

  let create (m : t) : ctx =
    if is_zero m then raise Division_by_zero;
    let k = num_limbs m in
    let mu = div (shift_limbs one (2 * k)) m in
    { m; k; mu }

  (* Drop the low [k] limbs (floor division by base^k). *)
  let drop_limbs (a : t) (k : int) : t =
    let la = Array.length a in
    if la <= k then zero else normalize (Array.sub a k (la - k))

  let reduce (ctx : ctx) (x : t) : t =
    if compare x ctx.m < 0 then x
    else if num_limbs x > 2 * ctx.k then rem x ctx.m   (* out of range: fall back *)
    else begin
      let q1 = drop_limbs x (ctx.k - 1) in
      let q2 = mul q1 ctx.mu in
      let q3 = drop_limbs q2 (ctx.k + 1) in
      let r = sub x (mul q3 ctx.m) in
      let r = if compare r ctx.m >= 0 then sub r ctx.m else r in
      let r = if compare r ctx.m >= 0 then sub r ctx.m else r in
      r
    end
end

(* Montgomery representation (HAC 14.32/14.36): for an odd modulus m of k
   limbs, let R = base^k.  A residue x is stored as xR mod m; the product of
   two stored residues is recovered by REDC, which replaces the division by m
   with k limb-sized multiply-accumulate sweeps (one per limb of the input),
   each chosen so that the low limb cancels.  REDC(T) = T * R^-1 mod m for
   any T < mR, at the cost of a schoolbook k x k multiply — no quotient
   estimation at all.  This beats Barrett by a constant factor on every
   multiplication inside an exponentiation, which is where almost all of
   SINTRA's CPU time goes. *)
module Montgomery = struct
  type ctx = {
    m : t;            (* odd modulus, exactly k limbs *)
    k : int;
    m_prime : int;    (* -m^-1 mod 2^limb_bits *)
    r2 : t;           (* R^2 mod m, for entering the representation *)
    one_m : t;        (* R mod m = the representation of 1 *)
  }

  (* Inverse of an odd limb modulo 2^limb_bits by Hensel/Newton lifting:
     x := x(2 - m0 x) doubles the number of correct low bits each round, and
     x = m0 is already correct mod 8. *)
  let inv_limb (m0 : int) : int =
    let x = ref m0 in
    for _ = 1 to 5 do
      let t = (2 - (m0 * !x)) land limb_mask in
      x := (!x * t) land limb_mask
    done;
    !x

  (* REDC on T < m*R: add multiples of m so the low k limbs vanish, then
     drop them.  The result is < 2m, so one conditional subtract finishes. *)
  let redc (ctx : ctx) (x : t) : t =
    let k = ctx.k in
    let mm = ctx.m in
    let t = Array.make ((2 * k) + 1) 0 in
    Array.blit x 0 t 0 (Array.length x);
    for i = 0 to k - 1 do
      let u = (t.(i) * ctx.m_prime) land limb_mask in
      if u <> 0 then begin
        let carry = ref 0 in
        for j = 0 to k - 1 do
          let p = t.(i + j) + (u * mm.(j)) + !carry in
          t.(i + j) <- p land limb_mask;
          carry := p lsr limb_bits
        done;
        let idx = ref (i + k) in
        while !carry <> 0 do
          let p = t.(!idx) + !carry in
          t.(!idx) <- p land limb_mask;
          carry := p lsr limb_bits;
          incr idx
        done
      end
    done;
    let r = normalize (Array.sub t k (k + 1)) in
    if compare r ctx.m >= 0 then sub r ctx.m else r

  let create (m : t) : ctx =
    if is_zero m then raise Division_by_zero;
    if not (testbit m 0) then invalid_arg "Nat.Montgomery.create: even modulus";
    let k = num_limbs m in
    let r2 = rem (shift_limbs one (2 * k)) m in
    let ctx = { m; k; m_prime = (limb_base - inv_limb m.(0)) land limb_mask; r2; one_m = zero } in
    { ctx with one_m = redc ctx r2 }

  (* [to_mont ctx x] requires x < m (callers reduce first). *)
  let to_mont (ctx : ctx) (x : t) : t = redc ctx (mul x ctx.r2)
  let of_mont (ctx : ctx) (x : t) : t = redc ctx x
  let mul (ctx : ctx) (a : t) (b : t) : t = redc ctx (mul a b)
  let sqr (ctx : ctx) (a : t) : t = redc ctx (sqr a)
  let one_m (ctx : ctx) : t = ctx.one_m
end

(* A modular-arithmetic "domain": multiplication/squaring with the reduction
   strategy chosen once per modulus, plus entry/exit conversions.  Odd moduli
   get Montgomery form; even moduli (only RSA-free test vectors — every group
   and RSA modulus in SINTRA is odd) keep the Barrett path.  [enter] requires
   its argument already reduced below the modulus. *)
type domain = {
  one_d : t;
  muld : t -> t -> t;
  sqrd : t -> t;
  enter : t -> t;
  leave : t -> t;
}

let barrett_domain (m : t) : domain =
  let ctx = Barrett.create m in
  let red x = Barrett.reduce ctx x in
  { one_d = rem one m;
    muld = (fun a b -> red (mul a b));
    sqrd = (fun a -> red (sqr a));
    enter = (fun x -> x);
    leave = (fun x -> x) }

let mod_domain (m : t) : domain =
  if testbit m 0 then begin
    let ctx = Montgomery.create m in
    { one_d = Montgomery.one_m ctx;
      muld = Montgomery.mul ctx;
      sqrd = Montgomery.sqr ctx;
      enter = Montgomery.to_mont ctx;
      leave = Montgomery.of_mont ctx }
  end
  else barrett_domain m

(* Fixed-window exponentiation over an abstract domain: 4-bit windows above
   64 exponent bits, plain square-and-multiply below (where the 15-entry
   table would not amortize).  [base_d] is already in the domain. *)
let powmod_gen (dom : domain) (base_d : t) (e : t) : t =
  let ebits = numbits e in
  let window = if ebits <= 64 then 1 else 4 in
  if window = 1 then begin
    let r = ref dom.one_d in
    for i = ebits - 1 downto 0 do
      r := dom.sqrd !r;
      if testbit e i then r := dom.muld !r base_d
    done;
    !r
  end
  else begin
    (* Precompute base^0 .. base^15. *)
    let tbl = Array.make 16 dom.one_d in
    for i = 1 to 15 do tbl.(i) <- dom.muld tbl.(i - 1) base_d done;
    let nwin = (ebits + window - 1) / window in
    let r = ref dom.one_d in
    for w = nwin - 1 downto 0 do
      for _ = 1 to window do r := dom.sqrd !r done;
      let d = ref 0 in
      for b = window - 1 downto 0 do
        let bit = if testbit e ((w * window) + b) then 1 else 0 in
        d := (!d lsl 1) lor bit
      done;
      if !d <> 0 then r := dom.muld !r tbl.(!d)
    done;
    !r
  end

let powmod_in (dom_of_m : t -> domain) (base : t) (e : t) (m : t) : t =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else if is_zero e then one
  else begin
    let dom = dom_of_m m in
    dom.leave (powmod_gen dom (dom.enter (rem base m)) e)
  end

(* Modular exponentiation: 4-bit fixed windows over Montgomery
   multiplication for odd moduli, Barrett reduction otherwise. *)
let powmod (base : t) (e : t) (m : t) : t = powmod_in mod_domain base e m

(* The pre-Montgomery reference path, kept callable for equivalence tests
   and for benchmarking the fast path against it. *)
let powmod_barrett (base : t) (e : t) (m : t) : t = powmod_in barrett_domain base e m

(* Simultaneous double exponentiation b1^e1 * b2^e2 mod m by 2-bit
   interleaved windows (Shamir's trick, HAC 14.88 generalized): one shared
   squaring chain for both exponents, with a 16-entry table over the digit
   pairs.  Per 2 exponent bits: 2 squarings + at most one multiply, versus
   2 squarings + ~2.5 multiplies for two separate windowed exponentiations
   — about 1.9x faster on the DLEQ verification shape where both exponents
   are full group-order size. *)
let powmod2 (b1 : t) (e1 : t) (b2 : t) (e2 : t) (m : t) : t =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else if is_zero e1 then powmod b2 e2 m
  else if is_zero e2 then powmod b1 e1 m
  else begin
    let dom = mod_domain m in
    let b1 = dom.enter (rem b1 m) and b2 = dom.enter (rem b2 m) in
    (* tbl.((i lsl 2) lor j) = b1^i * b2^j for digits i, j in 0..3. *)
    let tbl = Array.make 16 dom.one_d in
    tbl.(4) <- b1;
    tbl.(8) <- dom.sqrd b1;
    tbl.(12) <- dom.muld tbl.(8) b1;
    tbl.(1) <- b2;
    tbl.(2) <- dom.sqrd b2;
    tbl.(3) <- dom.muld tbl.(2) b2;
    for i = 1 to 3 do
      for j = 1 to 3 do
        tbl.((i lsl 2) lor j) <- dom.muld tbl.(i lsl 2) tbl.(j)
      done
    done;
    let nbits = max (numbits e1) (numbits e2) in
    let nwin = (nbits + 1) / 2 in
    let bit e i = if testbit e i then 1 else 0 in
    let r = ref dom.one_d in
    for w = nwin - 1 downto 0 do
      r := dom.sqrd !r;
      r := dom.sqrd !r;
      let hi = (2 * w) + 1 and lo = 2 * w in
      let d1 = (bit e1 hi lsl 1) lor bit e1 lo in
      let d2 = (bit e2 hi lsl 1) lor bit e2 lo in
      let d = (d1 lsl 2) lor d2 in
      if d <> 0 then r := dom.muld !r tbl.(d)
    done;
    dom.leave !r
  end

(* k-way simultaneous multi-exponentiation, generalizing powmod2: the bases
   are paired into blocks of two, each block carrying the same 16-entry
   2-bit digit-pair table powmod2 uses, and all blocks share one squaring
   chain over the longest exponent.  Per 2 exponent bits: 2 squarings plus
   at most one multiply per block — so the marginal cost of each further
   base is ~e/4 multiplies against ~1.5e for a separate powmod. *)
let powmod_multi (pairs : (t * t) list) (m : t) : t =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else begin
    let pairs = List.filter (fun (_, e) -> not (is_zero e)) pairs in
    match pairs with
    | [] -> one
    | [ (b, e) ] -> powmod b e m
    | [ (b1, e1); (b2, e2) ] -> powmod2 b1 e1 b2 e2 m
    | pairs ->
      let dom = mod_domain m in
      let bases =
        Array.of_list (List.map (fun (b, _) -> dom.enter (rem b m)) pairs)
      in
      let exps = Array.of_list (List.map snd pairs) in
      let k = Array.length bases in
      let nblocks = (k + 1) / 2 in
      (* tbls.(blk).((i lsl 2) lor j) = b_{2blk}^i * b_{2blk+1}^j for digit
         pair (i, j); a trailing odd base gets a 4-entry single-base row. *)
      let tbls =
        Array.init nblocks (fun blk ->
          let b1 = bases.(2 * blk) in
          let tbl = Array.make 16 dom.one_d in
          tbl.(4) <- b1;
          tbl.(8) <- dom.sqrd b1;
          tbl.(12) <- dom.muld tbl.(8) b1;
          if (2 * blk) + 1 < k then begin
            let b2 = bases.((2 * blk) + 1) in
            tbl.(1) <- b2;
            tbl.(2) <- dom.sqrd b2;
            tbl.(3) <- dom.muld tbl.(2) b2;
            for i = 1 to 3 do
              for j = 1 to 3 do
                tbl.((i lsl 2) lor j) <- dom.muld tbl.(i lsl 2) tbl.(j)
              done
            done
          end;
          tbl)
      in
      let nbits = Array.fold_left (fun acc e -> max acc (numbits e)) 0 exps in
      let nwin = (nbits + 1) / 2 in
      let bit e i = if testbit e i then 1 else 0 in
      let r = ref dom.one_d in
      for w = nwin - 1 downto 0 do
        r := dom.sqrd !r;
        r := dom.sqrd !r;
        let hi = (2 * w) + 1 and lo = 2 * w in
        for blk = 0 to nblocks - 1 do
          let e1 = exps.(2 * blk) in
          let d1 = (bit e1 hi lsl 1) lor bit e1 lo in
          let d2 =
            if (2 * blk) + 1 < k then begin
              let e2 = exps.((2 * blk) + 1) in
              (bit e2 hi lsl 1) lor bit e2 lo
            end
            else 0
          in
          let d = (d1 lsl 2) lor d2 in
          if d <> 0 then r := dom.muld !r tbls.(blk).(d)
        done
      done;
      dom.leave !r
  end

(* Fixed-base precomputation (BGMW/HAC 14.109 with full per-block tables):
   for a base reused across many exponentiations — the group generator, a
   party's public verification key — precompute base^(d * 16^i) for every
   4-bit digit position i below [max_bits] and every digit d in 1..15.  An
   exponentiation then multiplies one table entry per non-zero digit: no
   squarings at all, ~max_bits/4 multiplies instead of ~1.5 * max_bits, a
   ~6x reduction once the table is amortized.  Entries are stored in the
   modulus's domain (Montgomery form for odd moduli). *)
module Fixed_base = struct
  let window = 4

  type ctx = {
    base : t;           (* original base, for the oversized-exponent fallback *)
    modulus : t;
    max_bits : int;
    dom : domain;
    tbl : t array array;  (* tbl.(i).(d-1) = base^(d * 16^i), in-domain *)
  }

  let create ~(base : t) ~(modulus : t) ~(max_bits : int) : ctx =
    if is_zero modulus then raise Division_by_zero;
    if max_bits <= 0 then invalid_arg "Nat.Fixed_base.create: max_bits must be positive";
    let dom = mod_domain modulus in
    let nblocks = (max_bits + window - 1) / window in
    let tbl = Array.init nblocks (fun _ -> Array.make 15 dom.one_d) in
    let cur = ref (dom.enter (rem base modulus)) in
    for i = 0 to nblocks - 1 do
      let row = tbl.(i) in
      row.(0) <- !cur;
      for d = 1 to 14 do row.(d) <- dom.muld row.(d - 1) !cur done;
      (* base^(16^(i+1)) = row.(14) * cur = base^(15 * 16^i) * base^(16^i) *)
      if i < nblocks - 1 then cur := dom.muld row.(14) !cur
    done;
    { base; modulus; max_bits; dom; tbl }

  let max_bits (ctx : ctx) : int = ctx.max_bits

  let pow (ctx : ctx) (e : t) : t =
    if equal ctx.modulus one then zero
    else if is_zero e then one
    else if numbits e > ctx.max_bits then powmod ctx.base e ctx.modulus
    else begin
      let nblocks = Array.length ctx.tbl in
      let r = ref ctx.dom.one_d in
      let started = ref false in
      for i = 0 to nblocks - 1 do
        let pos = i * window in
        let d =
          (if testbit e pos then 1 else 0)
          lor (if testbit e (pos + 1) then 2 else 0)
          lor (if testbit e (pos + 2) then 4 else 0)
          lor if testbit e (pos + 3) then 8 else 0
        in
        if d <> 0 then begin
          if !started then r := ctx.dom.muld !r ctx.tbl.(i).(d - 1)
          else begin
            r := ctx.tbl.(i).(d - 1);
            started := true
          end
        end
      done;
      ctx.dom.leave !r
    end
end

(* Byte-string codecs, big-endian. *)
let of_bytes_be (s : string) : t =
  let n = String.length s in
  let r = ref zero in
  let i = ref 0 in
  while !i < n do
    (* Consume up to 3 bytes at a time (24 bits < limb). *)
    let take = min 3 (n - !i) in
    let v = ref 0 in
    for j = 0 to take - 1 do
      v := (!v lsl 8) lor Char.code s.[!i + j]
    done;
    r := add (shift_left !r (8 * take)) (of_int !v);
    i := !i + take
  done;
  !r

let to_bytes_be ?len (a : t) : string =
  let nbytes = (numbits a + 7) / 8 in
  let nbytes = max nbytes 1 in
  let out_len = match len with
    | None -> nbytes
    | Some l ->
      if l < nbytes then invalid_arg "Nat.to_bytes_be: value too large for len";
      l
  in
  let b = Bytes.make out_len '\000' in
  let rec go a pos =
    if not (is_zero a) then begin
      let low = (match to_int_opt (rem a (of_int 256)) with Some v -> v | None -> assert false) in
      Bytes.set b pos (Char.chr low);
      go (shift_right a 8) (pos - 1)
    end
  in
  go a (out_len - 1);
  Bytes.to_string b

let of_hex (s : string) : t =
  let r = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> r := add (shift_left !r 4) (of_int (Char.code c - Char.code '0'))
      | 'a' .. 'f' -> r := add (shift_left !r 4) (of_int (Char.code c - Char.code 'a' + 10))
      | 'A' .. 'F' -> r := add (shift_left !r 4) (of_int (Char.code c - Char.code 'A' + 10))
      | ' ' | '\n' | '\t' | '_' -> ()
      | _ -> invalid_arg "Nat.of_hex")
    s;
  !r

let to_hex (a : t) : string =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let nb = numbits a in
    let ndigits = (nb + 3) / 4 in
    for i = ndigits - 1 downto 0 do
      let d =
        ((if testbit a ((4 * i) + 3) then 8 else 0)
        lor (if testbit a ((4 * i) + 2) then 4 else 0)
        lor (if testbit a ((4 * i) + 1) then 2 else 0)
        lor if testbit a (4 * i) then 1 else 0)
      in
      Buffer.add_char buf "0123456789abcdef".[d]
    done;
    Buffer.contents buf
  end

let billion = of_int 1_000_000_000

let to_string (a : t) : string =
  if is_zero a then "0"
  else begin
    let chunks = ref [] in
    let rec go a =
      if not (is_zero a) then begin
        let q, r = divmod a billion in
        let r = match to_int_opt r with Some v -> v | None -> assert false in
        chunks := r :: !chunks;
        go q
      end
    in
    go a;
    match !chunks with
    | [] -> "0"
    | first :: rest ->
      let buf = Buffer.create 32 in
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let of_string (s : string) : t =
  if s = "" then invalid_arg "Nat.of_string";
  let r = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> r := add (mul_limb !r 10) (of_int (Char.code c - Char.code '0'))
      | '_' -> ()
      | _ -> invalid_arg "Nat.of_string")
    s;
  !r

let pp fmt a = Format.pp_print_string fmt (to_string a)

(* Uniform random natural below [bound], given a source of random bytes. *)
let random_below ~(random_bytes : int -> string) (bound : t) : t =
  if is_zero bound then invalid_arg "Nat.random_below: zero bound";
  let bits = numbits bound in
  let nbytes = (bits + 7) / 8 in
  let excess = (8 * nbytes) - bits in
  let rec try_draw () =
    let s = random_bytes nbytes in
    let v = shift_right (of_bytes_be s) excess in
    if compare v bound < 0 then v else try_draw ()
  in
  try_draw ()

let random_bits ~(random_bytes : int -> string) (bits : int) : t =
  if bits <= 0 then zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let excess = (8 * nbytes) - bits in
    shift_right (of_bytes_be (random_bytes nbytes)) excess
  end
