(* Primality testing and prime generation.

   All randomness is supplied by the caller as a [random_bytes : int -> string]
   function so that generation is deterministic under a seeded DRBG. *)

(* Small primes used for trial division before Miller-Rabin. *)
let small_primes =
  let limit = 2000 in
  let sieve = Array.make (limit + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to limit do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j <= limit do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  let out = ref [] in
  for i = limit downto 2 do
    if sieve.(i) then out := i :: !out
  done;
  Array.of_list !out

let divisible_by_small_prime (n : Nat.t) : bool =
  let found = ref false in
  (try
     Array.iter
       (fun p ->
         let p_nat = Nat.of_int p in
         if Nat.compare n p_nat > 0 && Nat.is_zero (Nat.rem n p_nat) then begin
           found := true;
           raise Exit
         end)
       small_primes
   with Exit -> ());
  !found

(* One Miller-Rabin round with witness [a]. [n] odd, > 3.
   n - 1 = d * 2^s with d odd. *)
let miller_rabin_round (n : Nat.t) (n_minus_1 : Nat.t) (d : Nat.t) (s : int) (a : Nat.t) : bool =
  let x = ref (Nat.powmod a d n) in
  if Nat.equal !x Nat.one || Nat.equal !x n_minus_1 then true
  else begin
    let ok = ref false in
    (try
       for _ = 1 to s - 1 do
         x := Nat.rem (Nat.sqr !x) n;
         if Nat.equal !x n_minus_1 then begin
           ok := true;
           raise Exit
         end
       done
     with Exit -> ());
    !ok
  end

let is_probable_prime ?(rounds = 24) ~(random_bytes : int -> string) (n : Nat.t) : bool =
  match Nat.to_int_opt n with
  | Some v when v < 2 -> false
  | Some 2 | Some 3 -> true
  | _ ->
    if not (Nat.testbit n 0) then false
    else if divisible_by_small_prime n then false
    else begin
      let n_minus_1 = Nat.sub n Nat.one in
      let s = ref 0 in
      let d = ref n_minus_1 in
      while not (Nat.testbit !d 0) do
        d := Nat.shift_right !d 1;
        incr s
      done;
      let two = Nat.two in
      let span = Nat.sub n (Nat.of_int 4) in
      let all_pass = ref true in
      (try
         for _ = 1 to rounds do
           (* witness in [2, n-2] *)
           let a = Nat.add two (Nat.random_below ~random_bytes span) in
           if not (miller_rabin_round n n_minus_1 !d !s a) then begin
             all_pass := false;
             raise Exit
           end
         done
       with Exit -> ());
      !all_pass
    end

(* Generate a random probable prime of exactly [bits] bits. *)
let gen_prime ?(rounds = 24) ~(random_bytes : int -> string) (bits : int) : Nat.t =
  if bits < 2 then invalid_arg "Prime.gen_prime: bits < 2";
  let rec go () =
    let c = Nat.random_bits ~random_bytes bits in
    (* Force the top bit (so the candidate has exactly [bits] bits) and the
       bottom bit (odd). *)
    let c = if Nat.testbit c (bits - 1) then c else Nat.add c (Nat.shift_left Nat.one (bits - 1)) in
    let c = if Nat.testbit c 0 then c else Nat.add c Nat.one in
    if is_probable_prime ~rounds ~random_bytes c then c else go ()
  in
  go ()

(* Generate a safe prime p = 2q + 1 of [bits] bits (q a Sophie Germain prime).
   Used by Shoup threshold RSA. *)
let gen_safe_prime ?(rounds = 24) ~(random_bytes : int -> string) (bits : int) : Nat.t =
  let rec go () =
    let q = gen_prime ~rounds:4 ~random_bytes (bits - 1) in
    let p = Nat.add (Nat.shift_left q 1) Nat.one in
    if divisible_by_small_prime p then go ()
    else if is_probable_prime ~rounds ~random_bytes p
            && is_probable_prime ~rounds ~random_bytes q
    then p
    else go ()
  in
  go ()

(* Generate Schnorr group parameters: primes (p, q) with q | p - 1,
   |q| = qbits, |p| = pbits, and a generator g of the order-q subgroup. *)
let gen_schnorr_group ?(rounds = 24) ~(random_bytes : int -> string) ~pbits ~qbits ()
    : Nat.t * Nat.t * Nat.t =
  let q = gen_prime ~rounds ~random_bytes qbits in
  let rec find_p () =
    (* p = q * k + 1 with k even so that p is odd; draw k of the right size. *)
    let kbits = pbits - qbits in
    let k = Nat.random_bits ~random_bytes kbits in
    let k = if Nat.testbit k (kbits - 1) then k else Nat.add k (Nat.shift_left Nat.one (kbits - 1)) in
    let k = if Nat.testbit k 0 then Nat.add k Nat.one else k in
    let p = Nat.add (Nat.mul q k) Nat.one in
    if Nat.numbits p <> pbits then find_p ()
    else if divisible_by_small_prime p then find_p ()
    else if is_probable_prime ~rounds ~random_bytes p then p
    else find_p ()
  in
  let p = find_p () in
  let p_minus_1 = Nat.sub p Nat.one in
  let cofactor = Nat.div p_minus_1 q in
  let rec find_g () =
    let h = Nat.add Nat.two (Nat.random_below ~random_bytes (Nat.sub p (Nat.of_int 4))) in
    let g = Nat.powmod h cofactor p in
    if Nat.equal g Nat.one then find_g () else g
  in
  let g = find_g () in
  (p, q, g)
