(** Arbitrary-precision natural numbers (unsigned).

    This is the arithmetic substrate for all of SINTRA's public-key
    cryptography (the sealed build environment has no [zarith]).  Values are
    immutable.  Unless noted, operations cost the usual schoolbook bounds;
    multiplication switches to Karatsuba above a fixed limb threshold. *)

type t
(** A natural number. *)

val zero : t
val one : t
val two : t

val is_zero : t -> bool

val of_int : int -> t
(** [of_int x] converts a non-negative OCaml int.
    @raise Invalid_argument on negative input. *)

val to_int_opt : t -> int option
(** [to_int_opt a] is [Some x] iff [a] fits in an OCaml [int]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val numbits : t -> int
(** Number of significant bits; [numbits zero = 0]. *)

val num_limbs : t -> int
(** Internal limb count (for cost accounting). *)

val testbit : t -> int -> bool
(** [testbit a i] is bit [i] (LSB = bit 0). *)

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] requires [a >= b].
    @raise Invalid_argument on underflow. *)

val mul : t -> t -> t
val mul_limb : t -> int -> t
val sqr : t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)] by Knuth's Algorithm D.
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

(** Barrett reduction for a fixed modulus: one precomputed reciprocal turns
    every reduction into two multiplications and at most two subtractions
    (HAC 14.42).  Used internally by {!powmod}; exposed for callers with
    long-lived moduli. *)
module Barrett : sig
  type ctx

  val create : t -> ctx
  (** @raise Division_by_zero on a zero modulus. *)

  val reduce : ctx -> t -> t
  (** [reduce ctx x] is [x mod m]; fastest when [x < m]{^ 2}. *)
end

val powmod : t -> t -> t -> t
(** [powmod b e m] is [b]{^ [e]} mod [m], by 4-bit fixed windows over
    Barrett reduction. *)

val of_bytes_be : string -> t
(** Big-endian bytes to natural. *)

val to_bytes_be : ?len:int -> t -> string
(** Big-endian encoding, zero-padded to [len] when given.
    @raise Invalid_argument if the value does not fit in [len] bytes. *)

val of_hex : string -> t
val to_hex : t -> string

val of_string : string -> t
(** Parse a decimal string (underscores allowed). *)

val to_string : t -> string
(** Decimal representation. *)

val pp : Format.formatter -> t -> unit

val random_below : random_bytes:(int -> string) -> t -> t
(** [random_below ~random_bytes bound] draws uniformly from [[0, bound)] by
    rejection sampling on the supplied byte source. *)

val random_bits : random_bytes:(int -> string) -> int -> t
(** [random_bits ~random_bytes n] draws a uniform [n]-bit value (top bit not
    forced). *)
