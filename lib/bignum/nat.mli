(** Arbitrary-precision natural numbers (unsigned).

    This is the arithmetic substrate for all of SINTRA's public-key
    cryptography (the sealed build environment has no [zarith]).  Values are
    immutable little-endian limb arrays in base 2{^31}, chosen so a limb
    product plus two carries fits OCaml's 63-bit native [int].

    Complexity notes below write [k] for the operand size in limbs and [e]
    for exponent bits.  Unless noted, operations cost the usual schoolbook
    bounds; multiplication switches to Karatsuba above a fixed limb
    threshold.

    {b Fast paths.} Modular exponentiation — the dominant cost of every
    SINTRA protocol instance — has three accelerated forms layered on
    {!Montgomery} arithmetic: {!powmod} (single base, Montgomery windows for
    odd moduli), {!powmod2} (simultaneous double exponentiation, Shamir's
    trick) and {!Fixed_base} (precomputed window tables for a long-lived
    base).  {!powmod_barrett} is the pre-Montgomery reference path kept for
    equivalence testing and benchmarking. *)

type t
(** A natural number.  Structurally comparable only via {!compare}/{!equal}
    (the representation is normalized, but do not rely on it). *)

val zero : t
(** The natural number 0. *)

val one : t
(** The natural number 1. *)

val two : t
(** The natural number 2. *)

val is_zero : t -> bool
(** [is_zero a] iff [a = 0].  O(1). *)

val of_int : int -> t
(** [of_int x] converts a non-negative OCaml int.
    @raise Invalid_argument on negative input. *)

val to_int_opt : t -> int option
(** [to_int_opt a] is [Some x] iff [a] fits in an OCaml [int]. *)

val compare : t -> t -> int
(** Total order; magnitude comparison in O(k). *)

val equal : t -> t -> bool
(** [equal a b] iff the values are equal (O(k)); use instead of [(=)]. *)

val numbits : t -> int
(** Number of significant bits; [numbits zero = 0].  O(1). *)

val num_limbs : t -> int
(** Internal limb count (for cost accounting).  O(1). *)

val testbit : t -> int -> bool
(** [testbit a i] is bit [i] (LSB = bit 0); [false] beyond the top.  O(1). *)

val add : t -> t -> t
(** Addition, O(k). *)

val sub : t -> t -> t
(** [sub a b] requires [a >= b].  O(k).
    @raise Invalid_argument on underflow. *)

val mul : t -> t -> t
(** Product: schoolbook O(k{^2}) below 32 limbs, Karatsuba
    O(k{^ 1.585}) above. *)

val mul_limb : t -> int -> t
(** [mul_limb a m] for a single limb [0 <= m < 2]{^31}.  O(k). *)

val sqr : t -> t
(** [sqr a = mul a a]. *)

val shift_left : t -> int -> t
(** [shift_left a n] is [a * 2]{^ [n]}.  O(k). *)

val shift_right : t -> int -> t
(** [shift_right a n] is [a / 2]{^ [n]} (floor).  O(k). *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)] by Knuth's Algorithm D (TAOCP 4.3.1;
    HAC 14.20).  O(k{^2}).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
(** Quotient of {!divmod}. *)

val rem : t -> t -> t
(** Remainder of {!divmod}. *)

(** Barrett reduction for a fixed modulus: one precomputed reciprocal turns
    every reduction into two multiplications and at most two subtractions
    (HAC 14.42).  The pre-Montgomery workhorse; still used by {!powmod} for
    even moduli and exposed for callers with long-lived moduli. *)
module Barrett : sig
  type ctx
  (** Precomputed reciprocal [floor(base]{^ 2k}[ / m)] for a fixed modulus
      [m] of [k] limbs. *)

  val create : t -> ctx
  (** [create m] precomputes the reciprocal: one O(k{^2}) division.
      @raise Division_by_zero on a zero modulus. *)

  val reduce : ctx -> t -> t
  (** [reduce ctx x] is [x mod m]; two multiplications when
      [x < base]{^ 2k}, falling back to plain division beyond. *)
end

(** Montgomery representation for a fixed {e odd} modulus (HAC 14.32/14.36):
    residues are stored as [x * R mod m] with [R = base]{^ k}, and REDC
    recovers products without any quotient estimation — each of the [k]
    reduction sweeps cancels one low limb by adding a multiple of [m].
    Strictly faster than {!Barrett} per multiplication, which is why
    {!powmod} routes every odd-modulus exponentiation (all of SINTRA's
    groups and RSA moduli) through it. *)
module Montgomery : sig
  type ctx
  (** Precomputed [-m]{^ -1}[ mod 2]{^31} and [R]{^2}[ mod m] for an odd
      modulus [m]. *)

  val create : t -> ctx
  (** [create m] for odd [m].  O(k{^2}).
      @raise Invalid_argument on an even modulus.
      @raise Division_by_zero on a zero modulus. *)

  val to_mont : ctx -> t -> t
  (** [to_mont ctx x] is [x * R mod m]; requires [x < m]. *)

  val of_mont : ctx -> t -> t
  (** [of_mont ctx x] is [x * R]{^ -1}[ mod m] — inverse of {!to_mont}. *)

  val mul : ctx -> t -> t -> t
  (** Product of two Montgomery-form residues, in Montgomery form:
      one k x k multiply plus one REDC. *)

  val sqr : ctx -> t -> t
  (** [sqr ctx a = mul ctx a a]. *)

  val one_m : ctx -> t
  (** The Montgomery form of 1, i.e. [R mod m]. *)
end

val powmod : t -> t -> t -> t
(** [powmod b e m] is [b]{^ [e]}[ mod m] by 4-bit fixed windows — over
    {!Montgomery} multiplication when [m] is odd (the fast path taken by
    every SINTRA group operation), over {!Barrett} reduction otherwise.
    ~1.23 modular multiplications per exponent bit (HAC 14.82/14.94).
    [powmod b zero m = 1] for [m > 1]; [powmod b e one = 0].
    @raise Division_by_zero if [m] is zero. *)

val powmod_barrett : t -> t -> t -> t
(** Reference path: {!powmod} forced onto Barrett reduction regardless of
    modulus parity.  Same results as {!powmod} always; kept for randomized
    equivalence tests and for the [bench/micro.ml] plain-vs-Montgomery
    comparison. *)

val powmod2 : t -> t -> t -> t -> t -> t
(** [powmod2 b1 e1 b2 e2 m] is [b1]{^ [e1]}[ * b2]{^ [e2]}[ mod m] by
    simultaneous double exponentiation — Shamir's trick with 2-bit
    interleaved windows (HAC 14.88): one shared squaring chain over
    [max (numbits e1) (numbits e2)] bits and a 16-entry digit-pair table,
    i.e. ~1.5 multiplications per bit where two separate {!powmod} calls
    pay ~2.5.  This is the shape of every DLEQ / threshold-share
    verification ([g]{^ z}[ h]{^ -c}), the protocols' hottest operation.
    Exponents of differing bit-lengths are handled by the shared chain
    (the shorter exponent simply contributes zero digits at the top).
    Montgomery domain for odd [m], Barrett otherwise.
    @raise Division_by_zero if [m] is zero. *)

val powmod_multi : (t * t) list -> t -> t
(** [powmod_multi [(b1, e1); ...; (bk, ek)] m] is the k-way simultaneous
    multi-exponentiation [b1]{^ [e1]}[ * ... * bk]{^ [ek]}[ mod m],
    generalizing {!powmod2} to any number of bases: one shared squaring
    chain over the longest exponent, with the bases grouped into blocks of
    two sharing {!powmod2}-style 16-entry digit-pair tables, so each block
    adds at most one multiplication per two exponent bits to the shared
    chain.  For [k] full-width exponents this costs ~[(1 + k/2) * e/2 + e]
    multiplications where [k] separate {!powmod} calls pay ~[1.5 * k * e] —
    the shape of batched share verification and Lagrange combination over
    all [k] shares.  [powmod_multi [] m = 1 mod m]; one pair delegates to
    {!powmod}, two to {!powmod2}.
    @raise Division_by_zero if [m] is zero. *)

(** Fixed-base precomputation (HAC 14.109 family): for a base reused across
    many exponentiations — the group generator, a party's public key —
    precompute [base]{^ d*16{^i}} for every 4-bit digit position [i] and
    digit [d].  {!Fixed_base.pow} then multiplies one table entry per
    non-zero exponent digit: {e no squarings}, ~[max_bits/4] multiplies
    versus ~[1.5 * max_bits] for a cold {!powmod} — ~6x per op once the
    O([15 * max_bits / 4])-multiply table build is amortized.  Built once
    at dealer setup and carried in [Group.t] / key records. *)
module Fixed_base : sig
  type ctx
  (** The window table for one (base, modulus, exponent-width) triple.
      Entries are stored in the modulus's {!Montgomery} domain when odd. *)

  val create : base:t -> modulus:t -> max_bits:int -> ctx
  (** [create ~base ~modulus ~max_bits] builds the table covering exponents
      of up to [max_bits] bits.
      @raise Invalid_argument if [max_bits <= 0].
      @raise Division_by_zero if [modulus] is zero. *)

  val pow : ctx -> t -> t
  (** [pow ctx e] is [base]{^ [e]}[ mod modulus].  Table-driven for
      [numbits e <= max_bits]; transparently falls back to {!powmod} for
      oversized exponents (correct, just not accelerated). *)

  val max_bits : ctx -> int
  (** The exponent-width bound the table was built for. *)
end

val of_bytes_be : string -> t
(** Big-endian bytes to natural. *)

val to_bytes_be : ?len:int -> t -> string
(** Big-endian encoding, zero-padded to [len] when given.
    @raise Invalid_argument if the value does not fit in [len] bytes. *)

val of_hex : string -> t
(** Parse hexadecimal (case-insensitive; spaces and underscores skipped).
    @raise Invalid_argument on other characters. *)

val to_hex : t -> string
(** Lowercase hexadecimal, no leading zeros ("0" for zero). *)

val of_string : string -> t
(** Parse a decimal string (underscores allowed).
    @raise Invalid_argument on other characters or empty input. *)

val to_string : t -> string
(** Decimal representation. *)

val pp : Format.formatter -> t -> unit
(** Decimal printer for [%a]. *)

val random_below : random_bytes:(int -> string) -> t -> t
(** [random_below ~random_bytes bound] draws uniformly from [[0, bound)] by
    rejection sampling on the supplied byte source.
    @raise Invalid_argument on a zero bound. *)

val random_bits : random_bytes:(int -> string) -> int -> t
(** [random_bits ~random_bytes n] draws a uniform [n]-bit value (top bit not
    forced); [zero] for [n <= 0]. *)
