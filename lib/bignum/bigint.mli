(** Signed arbitrary-precision integers on top of {!Nat}, plus the number
    theory needed by threshold cryptography: extended GCD, modular inverse,
    signed modular exponentiation and the Jacobi symbol. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

val of_nat : Nat.t -> t

val to_nat : t -> Nat.t
(** @raise Invalid_argument if negative. *)

val of_int : int -> t
val to_int_opt : t -> int option

val is_zero : t -> bool
val is_neg : t -> bool

val neg : t -> t
val abs : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod_trunc : t -> t -> t * t
(** Truncated division: quotient rounds toward zero, remainder carries the
    dividend's sign (like OCaml's [(/)] and [mod]). *)

val erem : t -> t -> t
(** Euclidean remainder: [erem a m] is in [[0, |m|)].
    @raise Division_by_zero if [m] is zero. *)

val ediv : t -> t -> t
(** Euclidean quotient matching {!erem}: [a = m * ediv a m + erem a m]. *)

val shift_left : t -> int -> t

val egcd : t -> t -> t * t * t
(** [egcd a b = (g, x, y)] with [a*x + b*y = g = gcd(|a|,|b|)], [g >= 0]. *)

val gcd : t -> t -> t

val invmod : t -> t -> t
(** [invmod a m] is the inverse of [a] modulo [m], in [[0, m)].
    @raise Not_found if [gcd(a,m) <> 1]. *)

val powmod : t -> t -> t -> t
(** [powmod b e m] for [e >= 0].
    @raise Invalid_argument on negative exponent. *)

val powmod_signed : t -> t -> t -> t
(** Like {!powmod} but accepts a negative exponent when [b] is invertible
    mod [m] (needed when combining Shoup threshold-signature shares, whose
    Lagrange exponents are signed). *)

val jacobi : t -> t -> int
(** Jacobi symbol [(a/n)] for odd positive [n]: -1, 0 or +1. *)

val of_string : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
