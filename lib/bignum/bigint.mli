(** Signed arbitrary-precision integers on top of {!Nat}, plus the number
    theory needed by threshold cryptography: extended GCD, modular inverse,
    signed modular exponentiation and the Jacobi symbol. *)

type t

val zero : t
(** The integer 0. *)

val one : t
(** The integer 1. *)

val two : t
(** The integer 2. *)

val minus_one : t
(** The integer -1. *)

val of_nat : Nat.t -> t
(** Inject a natural number (non-negative, by construction). *)

val to_nat : t -> Nat.t
(** @raise Invalid_argument if negative. *)

val of_int : int -> t
(** Exact conversion from a native [int] (any sign). *)

val to_int_opt : t -> int option
(** [None] when the value does not fit in a native [int]. *)

val is_zero : t -> bool
(** [is_zero x] iff [x = 0]. *)

val is_neg : t -> bool
(** [is_neg x] iff [x < 0] (zero is not negative). *)

val neg : t -> t
(** Additive inverse. *)

val abs : t -> t
(** Absolute value. *)

val compare : t -> t -> int
(** Signed total order; the canonical comparison for this type. *)

val equal : t -> t -> bool
(** Value equality (constant-size representation, so O(min digits)). *)

val add : t -> t -> t
(** Signed addition. *)

val sub : t -> t -> t
(** Signed subtraction. *)

val mul : t -> t -> t
(** Signed multiplication (delegates to {!Nat.mul}, so Karatsuba above
    the schoolbook threshold). *)

val divmod_trunc : t -> t -> t * t
(** Truncated division: quotient rounds toward zero, remainder carries the
    dividend's sign (like OCaml's [(/)] and [mod]). *)

val erem : t -> t -> t
(** Euclidean remainder: [erem a m] is in [[0, |m|)].
    @raise Division_by_zero if [m] is zero. *)

val ediv : t -> t -> t
(** Euclidean quotient matching {!erem}: [a = m * ediv a m + erem a m]. *)

val shift_left : t -> int -> t
(** [shift_left x k] is [x * 2]{^ [k]} (sign preserved). *)

val egcd : t -> t -> t * t * t
(** [egcd a b = (g, x, y)] with [a*x + b*y = g = gcd(|a|,|b|)], [g >= 0]. *)

val gcd : t -> t -> t
(** [gcd a b = gcd(|a|, |b|) >= 0]. *)

val invmod : t -> t -> t
(** [invmod a m] is the inverse of [a] modulo [m], in [[0, m)].
    @raise Not_found if [gcd(a,m) <> 1]. *)

val powmod : t -> t -> t -> t
(** [powmod b e m] for [e >= 0].
    @raise Invalid_argument on negative exponent. *)

val powmod2 : t -> t -> t -> t -> t -> t
(** [powmod2 b1 e1 b2 e2 m] is [b1]{^ [e1]}[ * b2]{^ [e2]}[ mod m] for
    [e1, e2 >= 0], via {!Nat.powmod2} (Shamir's trick — one shared squaring
    chain, ~1.9x faster than two separate {!powmod} calls at equal exponent
    widths).  Used by Shoup threshold-signature share verification.
    @raise Invalid_argument on a negative exponent. *)

val powmod_signed : t -> t -> t -> t
(** Like {!powmod} but accepts a negative exponent when [b] is invertible
    mod [m] (needed when combining Shoup threshold-signature shares, whose
    Lagrange exponents are signed). *)

val jacobi : t -> t -> int
(** Jacobi symbol [(a/n)] for odd positive [n]: -1, 0 or +1. *)

val of_string : string -> t
(** Parse a decimal integer with an optional leading [-].
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal rendering, [-]-prefixed when negative. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer ({!to_string}), for [%a] and Alcotest testables. *)
