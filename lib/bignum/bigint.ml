(* Signed arbitrary-precision integers on top of {!Nat}. *)

type sign = Pos | Neg

type t = { sign : sign; mag : Nat.t }

let mk sign mag = if Nat.is_zero mag then { sign = Pos; mag } else { sign; mag }

let zero = { sign = Pos; mag = Nat.zero }
let one = { sign = Pos; mag = Nat.one }
let two = { sign = Pos; mag = Nat.two }
let minus_one = { sign = Neg; mag = Nat.one }

let of_nat mag = { sign = Pos; mag }

let to_nat (a : t) : Nat.t =
  match a.sign with
  | Pos -> a.mag
  | Neg -> invalid_arg "Bigint.to_nat: negative"

let of_int x =
  if x >= 0 then { sign = Pos; mag = Nat.of_int x }
  else { sign = Neg; mag = Nat.of_int (-x) }

let to_int_opt (a : t) =
  match Nat.to_int_opt a.mag with
  | None -> None
  | Some v -> Some (match a.sign with Pos -> v | Neg -> -v)

let is_zero a = Nat.is_zero a.mag
let is_neg a = a.sign = Neg && not (Nat.is_zero a.mag)

let neg a = mk (match a.sign with Pos -> Neg | Neg -> Pos) a.mag
let abs a = { a with sign = Pos }

let compare (a : t) (b : t) : int =
  match a.sign, b.sign with
  | Pos, Neg -> if is_zero a && is_zero b then 0 else 1
  | Neg, Pos -> if is_zero a && is_zero b then 0 else -1
  | Pos, Pos -> Nat.compare a.mag b.mag
  | Neg, Neg -> Nat.compare b.mag a.mag

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  match a.sign, b.sign with
  | Pos, Pos -> mk Pos (Nat.add a.mag b.mag)
  | Neg, Neg -> mk Neg (Nat.add a.mag b.mag)
  | Pos, Neg | Neg, Pos ->
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk a.sign (Nat.sub a.mag b.mag)
    else mk b.sign (Nat.sub b.mag a.mag)

let sub a b = add a (neg b)

let mul (a : t) (b : t) : t =
  let sign = if a.sign = b.sign then Pos else Neg in
  mk sign (Nat.mul a.mag b.mag)

(* Truncated division (quotient rounds toward zero), like OCaml's (/). *)
let divmod_trunc (a : t) (b : t) : t * t =
  let q, r = Nat.divmod a.mag b.mag in
  let qs = if a.sign = b.sign then Pos else Neg in
  (mk qs q, mk a.sign r)

(* Euclidean modulus: [erem a m] is in [0, |m|). *)
let erem (a : t) (m : t) : t =
  if Nat.is_zero m.mag then raise Division_by_zero;
  let r = Nat.rem a.mag m.mag in
  if Nat.is_zero r then zero
  else match a.sign with
    | Pos -> of_nat r
    | Neg -> of_nat (Nat.sub m.mag r)

let ediv (a : t) (m : t) : t =
  let r = erem a m in
  fst (divmod_trunc (sub a r) m)

let shift_left a n = mk a.sign (Nat.shift_left a.mag n)

let to_string (a : t) =
  (if is_neg a then "-" else "") ^ Nat.to_string a.mag

let of_string (s : string) : t =
  if s = "" then invalid_arg "Bigint.of_string";
  if s.[0] = '-' then mk Neg (Nat.of_string (String.sub s 1 (String.length s - 1)))
  else of_nat (Nat.of_string s)

let pp fmt a = Format.pp_print_string fmt (to_string a)

(* Extended binary GCD via the classic iterative schoolbook method on signed
   values: returns (g, x, y) with a*x + b*y = g = gcd(|a|, |b|), g >= 0. *)
let rec egcd (a : t) (b : t) : t * t * t =
  if is_zero b then
    if is_neg a then (neg a, minus_one, zero) else (a, one, zero)
  else begin
    let q, r = divmod_trunc a b in
    let g, x, y = egcd b r in
    (g, y, sub x (mul q y))
  end

let gcd (a : t) (b : t) : t =
  let g, _, _ = egcd a b in
  g

(* Modular inverse of a modulo m (m > 1); raises [Not_found] if none. *)
let invmod (a : t) (m : t) : t =
  let g, x, _ = egcd (erem a m) m in
  if not (equal g one) then raise Not_found;
  erem x m

let powmod (base : t) (e : t) (m : t) : t =
  if is_neg e then invalid_arg "Bigint.powmod: negative exponent; use powmod_signed";
  of_nat (Nat.powmod (to_nat (erem base m)) e.mag (to_nat (abs m)))

(* Simultaneous double exponentiation (Shamir's trick) via Nat.powmod2. *)
let powmod2 (b1 : t) (e1 : t) (b2 : t) (e2 : t) (m : t) : t =
  if is_neg e1 || is_neg e2 then
    invalid_arg "Bigint.powmod2: negative exponent; invert the base instead";
  of_nat
    (Nat.powmod2 (to_nat (erem b1 m)) e1.mag (to_nat (erem b2 m)) e2.mag
       (to_nat (abs m)))

(* Exponentiation with a possibly negative exponent: requires the base to be
   invertible modulo m. *)
let powmod_signed (base : t) (e : t) (m : t) : t =
  if is_neg e then powmod (invmod base m) (neg e) m
  else powmod base e m

(* Jacobi symbol (a/n) for odd positive n. *)
let jacobi (a : t) (n : t) : int =
  if is_neg n || not (Nat.testbit n.mag 0) then invalid_arg "Bigint.jacobi: n must be odd positive";
  let rec go a n acc =
    (* invariant: n odd positive, a in [0, n) *)
    if Nat.is_zero a then (if Nat.equal n Nat.one then acc else 0)
    else begin
      (* Pull out factors of two. *)
      let twos = ref 0 in
      let a = ref a in
      while not (Nat.testbit !a 0) do
        a := Nat.shift_right !a 1;
        incr twos
      done;
      let acc =
        if !twos land 1 = 1 then begin
          (* (2/n) = -1 iff n ≡ 3,5 (mod 8) *)
          let n_mod8 = (match Nat.to_int_opt (Nat.rem n (Nat.of_int 8)) with Some v -> v | None -> assert false) in
          if n_mod8 = 3 || n_mod8 = 5 then -acc else acc
        end
        else acc
      in
      (* Quadratic reciprocity flip. *)
      let a_mod4 = (match Nat.to_int_opt (Nat.rem !a (Nat.of_int 4)) with Some v -> v | None -> assert false) in
      let n_mod4 = (match Nat.to_int_opt (Nat.rem n (Nat.of_int 4)) with Some v -> v | None -> assert false) in
      let acc = if a_mod4 = 3 && n_mod4 = 3 then -acc else acc in
      go (Nat.rem n !a) !a acc
    end
  in
  go (Nat.rem (erem a n).mag n.mag) n.mag 1
