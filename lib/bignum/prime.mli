(** Primality testing and prime generation.

    Everything takes an explicit [random_bytes] byte source so results are
    deterministic under a seeded DRBG — the SINTRA dealer derives all group
    and key parameters reproducibly from a seed. *)

val is_probable_prime : ?rounds:int -> random_bytes:(int -> string) -> Nat.t -> bool
(** Trial division by all primes below 2000, then [rounds] (default 24)
    Miller-Rabin rounds with random witnesses. *)

val gen_prime : ?rounds:int -> random_bytes:(int -> string) -> int -> Nat.t
(** [gen_prime ~random_bytes bits] draws a probable prime of exactly [bits]
    bits (top bit forced). *)

val gen_safe_prime : ?rounds:int -> random_bytes:(int -> string) -> int -> Nat.t
(** A safe prime [p = 2q + 1] with [q] prime; the modulus shape required by
    Shoup's RSA threshold-signature scheme. *)

val gen_schnorr_group :
  ?rounds:int -> random_bytes:(int -> string) -> pbits:int -> qbits:int -> unit ->
  Nat.t * Nat.t * Nat.t
(** [(p, q, g)] with [q] prime of [qbits] bits, [p = q*k + 1] prime of
    [pbits] bits, and [g] generating the order-[q] subgroup of [Z_p*].
    This matches the paper's 1024-bit prime with a 160-bit prime factor of
    [p - 1] used by the coin-tossing and threshold-encryption schemes. *)
