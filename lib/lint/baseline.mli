(** The repo-root lint policy file ([.sintra-lint]): standing [allow]
    entries and count-based [baseline] debt, complementing the inline
    [lint: allow] comment directives.

    Grammar (one directive per line, [#] comments):
    {v
    allow <rule> <path-prefix>
    baseline <rule> <path-prefix> <count>
    v}

    Precedence: inline comment directives and [allow] lines suppress
    unconditionally; a [baseline] entry absorbs up to [<count>] remaining
    findings under its prefix, and anything beyond that is new and fails
    the lint run.  Path prefixes match whole segments after dropping
    [.]/[..], so staged-tree paths like [../lib/sintra/x.ml] match a
    [lib/sintra] prefix. *)

type t

val empty : t
(** The policy with no entries: every finding is new. *)

val parse : string -> (t, string) result
(** Parse policy text; [Error] names the offending line (unknown rule,
    malformed count, unrecognized directive). *)

val load : string -> (t, string) result
(** [parse] over a file on disk. *)

val apply : t -> Rules.finding list -> Rules.finding list * int
(** [(new_findings, suppressed_count)].  Findings should arrive in the
    deterministic (file, line) order produced by [Lint.check_sources] so
    baseline budgets absorb a stable subset. *)
