(* The repo-root lint policy file (.sintra-lint).

   Two directive kinds, one per line, [#] starts a comment:

     allow <rule> <path-prefix>
     baseline <rule> <path-prefix> <count>

   [allow] suppresses a rule under a path outright — standing policy, e.g.
   the adversary harness whose CPU is deliberately unmetered.  [baseline]
   tolerates up to <count> findings — pre-existing debt being paid down;
   counts rather than line numbers, so unrelated edits do not shift the
   baseline.  Precedence: inline (* lint: allow ... *) directives and
   [allow] lines both suppress unconditionally; [baseline] only absorbs
   findings neither of those caught, and anything beyond its count is NEW
   and fails the build.

   Paths are matched by whole segments after dropping [.]/[..] (so the
   staged-test roots [../lib/...] match a [lib/...] prefix). *)

type entry = {
  e_rule : string;
  e_prefix : string list;        (* normalized path segments *)
  e_count : int;                 (* max_int for allow entries *)
}

type t = { entries : entry list }

let empty = { entries = [] }

let normalize (path : string) : string list =
  String.split_on_char '/' path
  |> List.filter (fun s -> s <> "" && s <> "." && s <> "..")

let rec is_prefix (pre : string list) (segs : string list) : bool =
  match pre, segs with
  | [], _ -> true
  | p :: pre', s :: segs' -> p = s && is_prefix pre' segs'
  | _ :: _, [] -> false

let known_rules : string list =
  List.map fst Rules.rule_names @ List.map fst Sema.rule_names

let parse (text : string) : (t, string) result =
  let err = ref None in
  let entries = ref [] in
  List.iteri
    (fun i line ->
      if !err = None then begin
        let line =
          match String.index_opt line '#' with
          | Some k -> String.sub line 0 k
          | None -> line
        in
        let words =
          String.split_on_char ' ' line
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun w -> w <> "")
        in
        let fail msg =
          err := Some (Printf.sprintf "line %d: %s" (i + 1) msg)
        in
        let check_rule rule k =
          if not (List.mem rule known_rules) then
            fail (Printf.sprintf "unknown rule %S" rule)
          else k ()
        in
        match words with
        | [] -> ()
        | [ "allow"; rule; prefix ] ->
          check_rule rule (fun () ->
            entries :=
              { e_rule = rule; e_prefix = normalize prefix;
                e_count = max_int }
              :: !entries)
        | [ "baseline"; rule; prefix; count ] ->
          check_rule rule (fun () ->
            match int_of_string_opt count with
            | Some c when c >= 0 ->
              entries :=
                { e_rule = rule; e_prefix = normalize prefix; e_count = c }
                :: !entries
            | _ -> fail (Printf.sprintf "bad count %S" count))
        | w :: _ -> fail (Printf.sprintf "unrecognized directive %S" w)
      end)
    (String.split_on_char '\n' text);
  match !err with
  | Some e -> Error e
  | None -> Ok { entries = List.rev !entries }

let load (path : string) : (t, string) result =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    text
  with
  | text ->
    (match parse text with
     | Ok t -> Ok t
     | Error e -> Error (path ^ ": " ^ e))
  | exception Sys_error e -> Error e

(* Partition findings into (new, suppressed-count).  Findings must arrive
   in a deterministic order — baseline budgets absorb the first <count>
   matches. *)
let apply (t : t) (findings : Rules.finding list) :
    Rules.finding list * int =
  let remaining = Array.of_list (List.map (fun e -> e.e_count) t.entries) in
  let entries = Array.of_list t.entries in
  let suppressed = ref 0 in
  let kept =
    List.filter
      (fun (f : Rules.finding) ->
        let segs = normalize f.Rules.file in
        let rec try_entries k =
          if k >= Array.length entries then true
          else
            let e = entries.(k) in
            if e.e_rule = f.Rules.rule && is_prefix e.e_prefix segs
               && remaining.(k) > 0
            then begin
              if remaining.(k) <> max_int then
                remaining.(k) <- remaining.(k) - 1;
              incr suppressed;
              false
            end
            else try_entries (k + 1)
        in
        try_entries 0)
      findings
  in
  (kept, !suppressed)
