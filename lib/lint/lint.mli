(** sintra-lint driver plumbing: file discovery, running the rule set over
    a tree or over in-memory fixtures, and rendering findings.  This
    library never prints — the [sintra_lint] executable does. *)

type finding = Rules.finding = {
  file : string;
  line : int;      (** 1-based *)
  rule : string;
  message : string;
}

val rule_names : (string * string) list
(** [(name, one-line description)] for every rule, for docs and [--help]. *)

val discover : string list -> string list
(** All [.ml]/[.mli] files under the roots, sorted; skips hidden and
    [_build]-style directories. *)

val check_sources : (string * string) list -> finding list
(** Run the full rule set over [(path, contents)] pairs — the fixture entry
    point for tests.  Findings are sorted by file, then line. *)

val check_paths : string list -> finding list
(** [check_sources] over on-disk files. *)

val render : finding -> string
(** ["file:line: [rule] message"]. *)

module Doccheck : module type of Doccheck
(** The documentation checker behind the [@doc] alias (doc coverage of the
    strict interfaces, [\{!...\}] reference resolution). *)

module Baseline : module type of Baseline
(** The [.sintra-lint] policy file: [allow] and count-based [baseline]
    entries applied after the inline comment directives. *)

module Lex : module type of Lex
(** The lossless tokenizer behind the semantic rules. *)

module Sema : module type of Sema
(** The semantic rule family (S1–S6). *)

val per_rule : finding list -> (string * int) list
(** Finding counts per rule, in [rule_names] order (zero counts kept). *)

val summary : ?suppressed:int -> files:int -> finding list -> string
(** One-line human summary: files scanned, new findings, suppressed
    count (when [?suppressed] is given). *)

val render_json : files:int -> suppressed:int -> finding list -> string
(** One JSON object: [{"tool","files","suppressed","new","by_rule",
    "findings":[{"file","line","rule","message"}]}]. *)
