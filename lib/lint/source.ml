(* Source-file model for the linter.

   A file is lexed once into (a) per-line "masked" text, in which comments
   and string/char literals are replaced by spaces so that token-level rules
   never fire inside them, and (b) the set of allowlist directives found in
   comments.

   The lexer is a small state machine that understands the OCaml surface
   forms that matter for masking: nested [(* *)] comments (including string
   literals inside comments, which OCaml's lexer also tracks), ["..."]
   strings with backslash escapes, [{|...|}] / [{id|...|id}] quoted strings,
   and character literals — the classic ['"'] pitfall — while leaving type
   variables like ['a] alone.

   An allowlist directive is a comment containing

     lint: allow <rule>[, <rule>...] — reason

   It suppresses findings of the named rule(s) on every line the comment
   touches and on the first following line that contains code, so both the
   trailing-comment and the comment-above styles work. *)

type t = {
  path : string;
  masked : string array;              (* masked code, index = line - 1 *)
  allows : (string * int, unit) Hashtbl.t;   (* (rule, 1-based line) *)
  file_allows : (string, unit) Hashtbl.t;    (* rules allowed file-wide *)
}

let path (s : t) = s.path
let line_count (s : t) = Array.length s.masked
let masked_line (s : t) (line : int) = s.masked.(line - 1)

let allowed (s : t) ~(rule : string) ~(line : int) : bool =
  Hashtbl.mem s.allows (rule, line)

let allowed_anywhere (s : t) ~(rule : string) : bool =
  Hashtbl.mem s.file_allows rule

(* --- directive parsing --- *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9') || c = '_' || c = '-'

(* Extract the rule names of every "lint: allow ..." directive in a comment
   body.  Rules are comma-separated identifiers; everything after them (the
   em-dash or hyphen and the reason) is ignored. *)
let directive_rules (comment : string) : string list =
  let key = "lint: allow" in
  let klen = String.length key in
  let len = String.length comment in
  let rec find_key i =
    if i + klen > len then None
    else if String.sub comment i klen = key then Some (i + klen)
    else find_key (i + 1)
  in
  match find_key 0 with
  | None -> []
  | Some start ->
    let rec rules acc i =
      let i = ref i in
      while !i < len && (comment.[!i] = ' ' || comment.[!i] = ',') do incr i done;
      let s = !i in
      while !i < len && is_ident_char comment.[!i] do incr i done;
      if !i = s then List.rev acc
      else begin
        let name = String.sub comment s (!i - s) in
        if !i < len && comment.[!i] = ',' then rules (name :: acc) !i
        else List.rev (name :: acc)
      end
    in
    rules [] start

(* --- the lexer --- *)

type state =
  | Code
  | Comment of int                      (* nesting depth *)
  | Str                                 (* "..." (also inside comments) *)
  | Quoted of string                    (* {id| ... |id}: the closing id *)

let of_string ~(path : string) (text : string) : t =
  let len = String.length text in
  let lines = ref [] in
  let cur = Buffer.create 120 in
  let allows : (string * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let file_allows : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  (* The comment currently being lexed, with its starting line. *)
  let comment = Buffer.create 120 in
  let comment_start = ref 0 in
  let pending : (string list * int * int) list ref = ref [] in
  let line = ref 1 in
  let state = ref Code in
  let in_comment_string = ref false in
  let emit_line () =
    lines := Buffer.contents cur :: !lines;
    Buffer.clear cur
  in
  let close_comment () =
    let rules = directive_rules (Buffer.contents comment) in
    if rules <> [] then pending := (rules, !comment_start, !line) :: !pending;
    Buffer.clear comment
  in
  let i = ref 0 in
  while !i < len do
    let c = text.[!i] in
    let peek k = if !i + k < len then Some text.[!i + k] else None in
    (match !state with
     | Code ->
       if c = '(' && peek 1 = Some '*' then begin
         state := Comment 1;
         in_comment_string := false;
         comment_start := !line;
         Buffer.add_string cur "  ";
         incr i
       end
       else if c = '"' then begin
         state := Str;
         Buffer.add_char cur ' '
       end
       else if c = '{' then begin
         (* {|...|} or {id|...|id} quoted string *)
         let j = ref (!i + 1) in
         while !j < len && text.[!j] >= 'a' && text.[!j] <= 'z' || !j < len && text.[!j] = '_' do
           incr j
         done;
         if !j < len && text.[!j] = '|' then begin
           let id = String.sub text (!i + 1) (!j - !i - 1) in
           state := Quoted id;
           for _ = !i to !j do Buffer.add_char cur ' ' done;
           i := !j
         end
         else Buffer.add_char cur c
       end
       else if c = '\'' then begin
         (* Character literal or type variable.  A literal is 'x' or an
            escape '\...'; anything else is a type variable / quote. *)
         (match peek 1, peek 2 with
          | Some '\\', _ ->
            (* escape: skip to the closing quote *)
            let j = ref (!i + 2) in
            while !j < len && text.[!j] <> '\'' do incr j done;
            for _ = !i to min !j (len - 1) do Buffer.add_char cur ' ' done;
            i := !j
          | Some _, Some '\'' ->
            Buffer.add_string cur "   ";
            i := !i + 2
          | _ -> Buffer.add_char cur c)
       end
       else if c = '\n' then emit_line ()
       else Buffer.add_char cur c
     | Str ->
       if c = '\\' then begin
         Buffer.add_char cur ' ';
         (match peek 1 with
          | Some '\n' -> ()              (* line continuation: keep the \n *)
          | Some _ -> (Buffer.add_char cur ' '; incr i)
          | None -> ())
       end
       else if c = '"' then begin
         state := Code;
         Buffer.add_char cur ' '
       end
       else if c = '\n' then emit_line ()
       else Buffer.add_char cur ' '
     | Quoted id ->
       let close = "|" ^ id ^ "}" in
       let clen = String.length close in
       if c = '|' && !i + clen <= len && String.sub text !i clen = close then begin
         state := Code;
         for _ = 1 to clen do Buffer.add_char cur ' ' done;
         i := !i + clen - 1
       end
       else if c = '\n' then emit_line ()
       else Buffer.add_char cur ' '
     | Comment depth ->
       if !in_comment_string then begin
         Buffer.add_char comment c;
         if c = '\\' then begin
           (match peek 1 with
            | Some ch when ch <> '\n' ->
              Buffer.add_char comment ch;
              incr i
            | _ -> ())
         end
         else if c = '"' then in_comment_string := false
         else if c = '\n' then emit_line ()
       end
       else if c = '(' && peek 1 = Some '*' then begin
         state := Comment (depth + 1);
         Buffer.add_string comment "(*";
         incr i
       end
       else if c = '*' && peek 1 = Some ')' then begin
         if depth = 1 then begin
           state := Code;
           Buffer.add_string cur "  "
         end;
         if depth > 1 then state := Comment (depth - 1);
         Buffer.add_string comment "*)";
         if depth = 1 then close_comment ();
         incr i
       end
       else begin
         if c = '"' then in_comment_string := true;
         Buffer.add_char comment c;
         if c = '\n' then emit_line ()
       end);
    (if !i < len && text.[!i] = '\n' then incr line);
    incr i
  done;
  if Buffer.length cur > 0 || !lines = [] then emit_line ();
  (match !state with Comment _ -> close_comment () | Code | Str | Quoted _ -> ());
  let masked = Array.of_list (List.rev !lines) in
  let nlines = Array.length masked in
  let has_code l = l >= 1 && l <= nlines && String.trim masked.(l - 1) <> "" in
  (* Resolve each directive: it covers the comment's own lines plus the
     first code-bearing line after it. *)
  List.iter
    (fun (rules, first, last) ->
      List.iter
        (fun rule ->
          Hashtbl.replace file_allows rule ();
          for l = first to last do
            Hashtbl.replace allows (rule, l) ()
          done;
          let l = ref (last + 1) in
          while !l <= nlines && not (has_code !l) do incr l done;
          if !l <= nlines then Hashtbl.replace allows (rule, !l) ())
        rules)
    !pending;
  { path; masked; allows; file_allows }

let load (path : string) : t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string ~path text

(* --- tokenizing a masked line --- *)

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9') || c = '_' || c = '\''

let is_sym_char c = String.contains "=<>|&!@^+-*/%$.:" c

(* Split a masked line into tokens: qualified identifiers (dots join
   capitalized path segments, so [Hashtbl.fold] and [Crypto.Rsa.sign] are
   single tokens), maximal runs of operator characters, and single-character
   punctuation. *)
let tokenize (line : string) : string list =
  let len = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  while !i < len do
    let c = line.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if is_word_char c then begin
      let s = ref !i in
      let buf = Buffer.create 16 in
      let continue = ref true in
      while !continue do
        while !i < len && is_word_char line.[!i] do incr i done;
        Buffer.add_string buf (String.sub line !s (!i - !s));
        (* A dot followed by a word char extends a qualified name. *)
        if !i + 1 < len && line.[!i] = '.' && is_word_char line.[!i + 1] then begin
          Buffer.add_char buf '.';
          incr i;
          s := !i
        end
        else continue := false
      done;
      toks := Buffer.contents buf :: !toks
    end
    else if is_sym_char c then begin
      let s = !i in
      while !i < len && is_sym_char line.[!i] do incr i done;
      toks := String.sub line s (!i - s) :: !toks
    end
    else begin
      toks := String.make 1 c :: !toks;
      incr i
    end
  done;
  List.rev !toks
