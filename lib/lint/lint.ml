(* Driver plumbing for sintra-lint: file discovery, running the rule set,
   and rendering findings.  Kept free of I/O to stdout — printing is the
   executable's job (rule debug-print applies to this library too). *)

type finding = Rules.finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

let rule_names : (string * string) list = Rules.rule_names

(* Recursively collect .ml/.mli files under the given roots, in a sorted,
   platform-independent order.  Hidden and build directories are skipped. *)
let discover (roots : string list) : string list =
  let skip_dir name =
    String.length name = 0 || name.[0] = '.' || name.[0] = '_'
  in
  let rec walk acc path =
    if Sys.is_directory path then
      Array.to_list (Sys.readdir path)
      |> List.sort String.compare
      |> List.fold_left
           (fun acc entry ->
             if skip_dir entry then acc
             else walk acc (Filename.concat path entry))
           acc
    else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
    then path :: acc
    else acc
  in
  List.rev (List.fold_left walk [] roots)

let check_sources (sources : (string * string) list) : finding list =
  let srcs = List.map (fun (path, text) -> Source.of_string ~path text) sources in
  let by_location a b =
    let c = String.compare a.file b.file in
    if c <> 0 then c else Int.compare a.line b.line
  in
  List.sort by_location (Rules.check_tree srcs)

let read_file (path : string) : string =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let check_paths (paths : string list) : finding list =
  check_sources (List.map (fun p -> (p, read_file p)) paths)

let render (f : finding) : string =
  Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.message

module Doccheck = Doccheck

let summary ~(files : int) (findings : finding list) : string =
  if findings = [] then
    Printf.sprintf "sintra-lint: OK — %d files, %d rules, 0 violations"
      files (List.length Rules.rule_names)
  else
    Printf.sprintf "sintra-lint: %d violation%s in %d files"
      (List.length findings)
      (if List.length findings = 1 then "" else "s")
      files
