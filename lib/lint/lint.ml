(* Driver plumbing for sintra-lint: file discovery, running the rule set,
   and rendering findings.  Kept free of I/O to stdout — printing is the
   executable's job (rule debug-print applies to this library too). *)

type finding = Rules.finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

let rule_names : (string * string) list = Rules.rule_names @ Sema.rule_names

(* Recursively collect .ml/.mli files under the given roots, in a sorted,
   platform-independent order.  Hidden and build directories are skipped. *)
let discover (roots : string list) : string list =
  let skip_dir name =
    String.length name = 0 || name.[0] = '.' || name.[0] = '_'
  in
  let rec walk acc path =
    if Sys.is_directory path then
      Array.to_list (Sys.readdir path)
      |> List.sort String.compare
      |> List.fold_left
           (fun acc entry ->
             if skip_dir entry then acc
             else walk acc (Filename.concat path entry))
           acc
    else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
    then path :: acc
    else acc
  in
  List.rev (List.fold_left walk [] roots)

let check_sources (sources : (string * string) list) : finding list =
  let pairs =
    List.map
      (fun (path, text) -> (Source.of_string ~path text, Lex.tokenize text))
      sources
  in
  let srcs = List.map fst pairs in
  let by_location a b =
    let c = String.compare a.file b.file in
    if c <> 0 then c
    else
      let c = Int.compare a.line b.line in
      if c <> 0 then c else String.compare a.rule b.rule
  in
  List.sort by_location (Rules.check_tree srcs @ Sema.check_tree pairs)

let read_file (path : string) : string =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let check_paths (paths : string list) : finding list =
  check_sources (List.map (fun p -> (p, read_file p)) paths)

let render (f : finding) : string =
  Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.message

module Doccheck = Doccheck
module Baseline = Baseline
module Lex = Lex
module Sema = Sema

(* Findings per rule, in rule_names order, zero-count rules included — the
   driver's per-rule summary table. *)
let per_rule (findings : finding list) : (string * int) list =
  List.map
    (fun (rule, _) ->
      (rule, List.length (List.filter (fun f -> f.rule = rule) findings)))
    rule_names

let summary ?(suppressed = 0) ~(files : int) (findings : finding list) :
    string =
  let supp =
    if suppressed = 0 then ""
    else Printf.sprintf " (%d suppressed by policy)" suppressed
  in
  if findings = [] then
    Printf.sprintf "sintra-lint: OK — %d files, %d rules, 0 new violations%s"
      files (List.length rule_names) supp
  else
    Printf.sprintf "sintra-lint: %d new violation%s in %d files%s"
      (List.length findings)
      (if List.length findings = 1 then "" else "s")
      files supp

(* --- machine-readable output --- *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json ~(files : int) ~(suppressed : int) (findings : finding list) :
    string =
  let finding_json (f : finding) =
    Printf.sprintf
      "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"message\":\"%s\"}"
      (json_escape f.file) f.line (json_escape f.rule) (json_escape f.message)
  in
  let rules_json =
    per_rule findings
    |> List.map (fun (rule, count) ->
         Printf.sprintf "\"%s\":%d" (json_escape rule) count)
    |> String.concat ","
  in
  Printf.sprintf
    "{\"tool\":\"sintra-lint\",\"files\":%d,\"suppressed\":%d,\"new\":%d,\
     \"by_rule\":{%s},\"findings\":[%s]}"
    files suppressed (List.length findings) rules_json
    (String.concat "," (List.map finding_json findings))
