(* The sintra-lint rule set.

   Five rules target this codebase's real protocol-safety hazards.  They
   work on masked token streams (Source), so string literals and comments
   never trigger them, and every rule can be suppressed per line with

     (* lint: allow <rule> — reason *)

   L1 hashtbl-order   Hashtbl.iter/Hashtbl.fold outside Det: iteration
                      order is seed- and history-dependent, so anything
                      derived from it (vote lists, share subsets, message
                      bytes) breaks replay determinism.
   L2 poly-compare    polymorphic =/<>/compare and physical ==/!= applied
                      to bignum/crypto abstract values, whose structural
                      representation is not canonical.
   L3 partial-fn      partial functions (List.hd, Option.get, Hashtbl.find,
                      failwith, ...) in protocol code: a malformed message
                      must never be able to raise.
   L4 debug-print     stdout/stderr output from library code.
   L5 missing-mli     a lib/ module without an interface file.  *)

type finding = {
  file : string;
  line : int;                     (* 1-based; 0 for file-level findings *)
  rule : string;
  message : string;
}

let l1 = "hashtbl-order"
let l2 = "poly-compare"
let l3 = "partial-fn"
let l4 = "debug-print"
let l5 = "missing-mli"

let rule_names : (string * string) list = [
  (l1, "raw Hashtbl.iter/fold: nondeterministic order; use Det or allowlist");
  (l2, "polymorphic/physical comparison of abstract (bignum/crypto) values");
  (l3, "partial function in protocol code (List.hd, Option.get, Hashtbl.find, failwith, ...)");
  (l4, "debug output (print_endline, Printf.printf, ...) in library code");
  (l5, "lib/ module without a .mli interface");
]

(* --- path predicates --- *)

let segments (path : string) : string list = String.split_on_char '/' path

let under_lib (path : string) : bool = List.mem "lib" (segments path)

(* test/ and bench/ are scanned only by the determinism rule (Sema S1):
   test code legitimately uses List.hd, printf, raw Hashtbl folds. *)
let aux_tree (path : string) : bool =
  let segs = segments path in
  List.mem "test" segs || List.mem "bench" segs

let is_ml (path : string) = Filename.check_suffix path ".ml"

(* The Det library is the sanctioned Hashtbl-iteration seam; its own
   implementation necessarily folds over tables. *)
let in_det (path : string) : bool = List.mem "det" (segments path)

(* --- token helpers --- *)

let ends_with_name (tok : string) (name : string) : bool =
  tok = name
  || (let lt = String.length tok and ln = String.length name in
      lt > ln + 1
      && String.sub tok (lt - ln) ln = name
      && tok.[lt - ln - 1] = '.')

let token_is (names : string list) (tok : string) : bool =
  List.exists (fun n -> ends_with_name tok n) names

let abstract_prefixes = [ "Nat."; "Bignum."; "Bigint."; "Group." ]

let contains_sub (s : string) (sub : string) : bool =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  go 0

let mentions_abstract (tok : string) : bool =
  List.exists (fun p -> contains_sub tok p) abstract_prefixes

let is_word_token (tok : string) : bool =
  tok <> ""
  && (let c = tok.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
      || (c >= '0' && c <= '9') || c = '\'')

(* Classify an [=] token: walking left over identifiers and type/parameter
   punctuation, a binder keyword means let-binding / record-field /
   optional-argument syntax, anything else means comparison.  Running off
   the start of the line (a multi-line binding) counts as a binding, the
   conservative direction for a lint. *)
let binders = [ "let"; "and"; "rec"; "type"; "module"; "val"; "external";
                "method"; "for"; "{"; ";"; "?"; "~"; "with" ]

let eq_is_binding (before_rev : string list) : bool =
  let rec go = function
    | [] -> true
    | tok :: rest ->
      if List.mem tok binders then true
      else if is_word_token tok || tok = ")" || tok = "(" || tok = ":" || tok = ","
              || tok = "->" || tok = "*"       (* type annotations: (x : a -> b * c) = *)
      then go rest
      else false
  in
  go before_rev

(* --- the line rules --- *)

let hashtbl_iteration = [ "Hashtbl.iter"; "Hashtbl.fold" ]

let partial_functions =
  [ "List.hd"; "List.tl"; "List.nth"; "Option.get"; "Hashtbl.find";
    "List.assoc"; "List.find"; "failwith" ]

let print_functions =
  [ "print_endline"; "print_string"; "print_newline"; "print_int";
    "print_float"; "print_char"; "prerr_endline"; "prerr_string";
    "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf" ]

let check_line ~(path : string) (toks : string list) : (string * string) list =
  let arr = Array.of_list toks in
  let n = Array.length arr in
  let out = ref [] in
  let add rule msg = out := (rule, msg) :: !out in
  for k = 0 to n - 1 do
    let tok = arr.(k) in
    (* L1 *)
    if (not (in_det path)) && token_is hashtbl_iteration tok then
      add l1
        (Printf.sprintf
           "%s iterates in nondeterministic order; use Det.bindings/values/iter \
            with an explicit key order" tok);
    (* L2: physical equality *)
    if tok = "==" || tok = "!=" then
      add l2 (tok ^ " is physical equality; use structural or typed comparison");
    (* L2: bare polymorphic compare near abstract values *)
    let line_abstract = Array.exists mentions_abstract arr in
    if line_abstract
       && (tok = "compare" || tok = "Stdlib.compare" || tok = "Pervasives.compare")
       && not (k > 0 && arr.(k - 1) = "~")          (* a ~compare: label *)
    then
      add l2
        "polymorphic compare near an abstract bignum/crypto value; use the \
         module's typed compare/equal";
    (* L2: =/<> with an abstract operand *)
    if tok = "=" || tok = "<>" then begin
      let before_rev = List.rev (Array.to_list (Array.sub arr 0 k)) in
      let is_cmp = tok = "<>" || not (eq_is_binding before_rev) in
      let neighbor_abstract =
        (k > 0 && mentions_abstract arr.(k - 1))
        || (k + 1 < n && mentions_abstract arr.(k + 1))
      in
      if is_cmp && neighbor_abstract then
        add l2
          (Printf.sprintf
             "polymorphic %s applied to an abstract bignum/crypto value; use \
              the module's typed equal/compare" tok)
    end;
    (* L3 *)
    if token_is partial_functions tok then
      add l3
        (Printf.sprintf
           "%s is partial; use the _opt variant or explicit matching so \
            malformed input cannot raise" tok);
    (* L4 *)
    if under_lib path && token_is print_functions tok then
      add l4 (tok ^ ": library code must not write to stdout/stderr")
  done;
  List.rev !out

let check_file (src : Source.t) : finding list =
  let path = Source.path src in
  if aux_tree path then []
  else begin
  let out = ref [] in
  for line = 1 to Source.line_count src do
    let toks = Source.tokenize (Source.masked_line src line) in
    List.iter
      (fun (rule, message) ->
        if not (Source.allowed src ~rule ~line) then
          out := { file = path; line; rule; message } :: !out)
      (check_line ~path toks)
  done;
  List.rev !out
  end

(* --- the tree rule (L5) --- *)

let check_tree (srcs : Source.t list) : finding list =
  let paths = List.map Source.path srcs in
  let line_findings = List.concat_map check_file srcs in
  let mli_findings =
    List.filter_map
      (fun src ->
        let path = Source.path src in
        if is_ml path && under_lib path
           && not (List.mem (Filename.remove_extension path ^ ".mli") paths)
           && not (Source.allowed_anywhere src ~rule:l5)
        then
          Some { file = path; line = 1; rule = l5;
                 message = "lib/ module has no .mli interface" }
        else None)
      srcs
  in
  line_findings @ mli_findings
