(** The sintra-lint rule set — protocol-safety rules for this codebase.

    - [hashtbl-order]: raw [Hashtbl.iter]/[Hashtbl.fold] (nondeterministic
      iteration order) outside the [Det] seam;
    - [poly-compare]: polymorphic [=]/[<>]/[compare] or physical [==]/[!=]
      applied to abstract bignum/crypto values;
    - [partial-fn]: partial functions in protocol code;
    - [debug-print]: stdout/stderr output from library code;
    - [missing-mli]: a [lib/] module without an interface.

    Any finding is suppressed by a per-line allowlist comment:
    [(* lint: allow <rule> — reason *)] on the offending line or the line
    above. *)

type finding = {
  file : string;
  line : int;      (** 1-based; file-level findings use line 1 *)
  rule : string;
  message : string;
}

val rule_names : (string * string) list
(** [(name, one-line description)] for every rule, for docs and [--help]. *)

val check_file : Source.t -> finding list
(** The per-line rules (L1–L4), allowlist already applied. *)

val check_tree : Source.t list -> finding list
(** All rules over a file set, including [missing-mli]. *)
