(** Source-file model for the linter: per-line masked text (comments and
    string/char literals blanked, so token rules never fire inside them)
    plus the allowlist directives found in comments.

    A directive [lint: allow <rule>[, <rule>...] — reason] inside a comment
    suppresses the named rules on every line the comment touches and on the
    first code-bearing line after it. *)

type t

val of_string : path:string -> string -> t
val load : string -> t

val path : t -> string
val line_count : t -> int

val masked_line : t -> int -> string
(** The masked text of a 1-based line. *)

val allowed : t -> rule:string -> line:int -> bool
val allowed_anywhere : t -> rule:string -> bool

val tokenize : string -> string list
(** Split a masked line into tokens: qualified identifiers ([Hashtbl.fold]
    is one token), maximal operator runs, single punctuation characters. *)
