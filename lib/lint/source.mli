(** Source-file model for the linter: per-line masked text (comments and
    string/char literals blanked, so token rules never fire inside them)
    plus the allowlist directives found in comments.

    A directive [lint: allow <rule>[, <rule>...] — reason] inside a comment
    suppresses the named rules on every line the comment touches and on the
    first code-bearing line after it. *)

type t

val of_string : path:string -> string -> t
(** Parse file contents already in memory; [path] is used only for
    reporting. *)

val load : string -> t
(** {!of_string} over a file on disk. *)

val path : t -> string
(** The path the file was loaded under. *)

val line_count : t -> int
(** Number of lines in the file. *)

val masked_line : t -> int -> string
(** The masked text of a 1-based line. *)

val allowed : t -> rule:string -> line:int -> bool
(** Whether an allowlist directive suppresses [rule] on this line. *)

val allowed_anywhere : t -> rule:string -> bool
(** Whether any directive in the file names [rule] — used by whole-file
    rules that have no single anchor line. *)

val tokenize : string -> string list
(** Split a masked line into tokens: qualified identifiers ([Hashtbl.fold]
    is one token), maximal operator runs, single punctuation characters. *)
