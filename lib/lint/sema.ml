(* The semantic rule family (S1–S6): protocol-aware checks that need more
   than a masked line — a real token stream (Lex) grouped into top-level
   module items.

   Items are split at column-0 significant tokens, which is exact for this
   uniformly-formatted tree (continuation lines are always indented); an
   [and] item continues the kind of the item before it, so a [type ... and
   ...] chain stays one declaration group.

   S1 determinism    Unix.*, Random.*, Sys.time, Hashtbl.hash in protocol,
                     simulator, test, or bench code: wall clocks and OS
                     entropy break replayable simulation.
   S2 charge-coverage a priced crypto call (Tsig, Threshold_coin,
                     Threshold_enc, Rsa, Sha256) in a protocol module whose
                     enclosing top-level function never charges the paired
                     Charge.* meter entry — Sim.Cost silently goes blind.
   S3 handler-flow   a message-type constructor declared in a protocol
                     module must be both constructed (send/encode path) and
                     matched (receive/decode path); public constructors
                     (exported via the .mli) are exempt.
   S4 quorum-literal inline n/3, 2t+1-style arithmetic on Config.n /
                     Config.t in protocol code; thresholds must come from
                     the Config/Invariant helpers so they stay consistent
                     with the n > 3t validation.
   S5 cache-key-digest a Share_cache.add insertion whose [~digest] key is
                     not visibly a Hashes digest: raw statement bytes as
                     keys defeat the cache's fixed-size-key contract (and
                     its runtime length check only fires when the bad path
                     executes).  The key expression's head — or, for a
                     punned [~digest], its [let]-binding in the same item —
                     must be a [Hashes.Sha1/Sha256.digest*] call or a
                     helper whose name ends in [digest]; an item that
                     receives [~digest] as a parameter is a trusted
                     forwarder (its callers are in scope instead).
   S6 durable-io     raw file I/O (open_in/open_out and friends,
                     In_channel/Out_channel, Sys.remove/Sys.rename) under
                     lib/store or lib/sintra: every durable byte must flow
                     through the Store.Device seam so a replayed run sees
                     the same device contents the recorded run wrote.  The
                     seam itself (device.ml) is allowlisted in
                     .sintra-lint — which file is the seam is policy, not
                     definition. *)

type finding = Rules.finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

let s1 = "determinism"
let s2 = "charge-coverage"
let s3 = "handler-flow"
let s4 = "quorum-literal"
let s5 = "cache-key-digest"
let s6 = "durable-io"

let rule_names : (string * string) list = [
  (s1, "wall clock / OS entropy (Unix.*, Random.*, Sys.time, Hashtbl.hash) in deterministic code");
  (s2, "priced crypto call without the paired Charge.* meter entry in the same function");
  (s3, "message constructor not both constructed (send) and matched (receive)");
  (s4, "inline quorum arithmetic on Config.n/Config.t; use the Config helpers");
  (s5, "Share_cache insertion keyed by something other than a Hashes digest");
  (s6, "raw file I/O outside the Store.Device seam in lib/store or lib/sintra");
]

(* --- path predicates --- *)

let segments (path : string) : string list =
  String.split_on_char '/' path
  |> List.filter (fun s -> s <> "" && s <> "." && s <> "..")

let in_dir (name : string) (path : string) : bool = List.mem name (segments path)
let is_ml (path : string) : bool = Filename.check_suffix path ".ml"
let base (path : string) : string = Filename.basename path

let s1_scope path =
  is_ml path
  && (in_dir "sintra" path || in_dir "sim" path || in_dir "test" path
      || in_dir "bench" path)

(* charge.ml and tsig.ml ARE the charging seam; dealer/config hold no
   online crypto.  faults.ml (adversary CPU is deliberately unmetered) is
   allowlisted in .sintra-lint rather than here: it is policy, not
   definition. *)
let s2_scope path =
  is_ml path && in_dir "sintra" path
  && not (List.mem (base path) [ "charge.ml"; "tsig.ml" ])

let s3_scope path = is_ml path && in_dir "sintra" path

let s4_scope path =
  is_ml path && in_dir "sintra" path
  && not (List.mem (base path) [ "config.ml"; "invariant.ml" ])

(* share_cache.ml is the definition site; everything that inserts into a
   cache (protocol code today, crypto helpers tomorrow) is in scope. *)
let s5_scope path =
  is_ml path
  && (in_dir "sintra" path || in_dir "crypto" path)
  && base path <> "share_cache.ml"

(* The sanctioned seam (device.ml) is allowlisted in .sintra-lint rather
   than excluded here: which file is the seam is policy, not definition. *)
let s6_scope path =
  is_ml path && (in_dir "store" path || in_dir "sintra" path)

(* --- token helpers --- *)

let segs_of_tok (tok : string) : string list = String.split_on_char '.' tok

let qualified_matches (tok : string) (pattern : string) : bool =
  tok = pattern
  || (let lt = String.length tok and lp = String.length pattern in
      lt > lp + 1
      && String.sub tok (lt - lp) lp = pattern
      && tok.[lt - lp - 1] = '.')

let is_cap (s : string) : bool =
  s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'

(* --- items --- *)

type item = {
  it_kind : string;            (* first token, with [and] resolved *)
  it_toks : Lex.token array;   (* significant tokens only *)
}

let split_items (sig_toks : Lex.token list) : item list =
  let groups = ref [] and cur = ref [] in
  List.iter
    (fun (t : Lex.token) ->
      if t.Lex.col = 0 && !cur <> [] then begin
        groups := List.rev !cur :: !groups;
        cur := [ t ]
      end
      else cur := t :: !cur)
    sig_toks;
  if !cur <> [] then groups := List.rev !cur :: !groups;
  let prev_kind = ref "" in
  List.rev_map
    (fun toks ->
      let first = (List.hd toks).Lex.text in   (* lint: allow partial-fn — groups are built non-empty *)
      let kind = if first = "and" then !prev_kind else first in
      prev_kind := kind;
      { it_kind = kind; it_toks = Array.of_list toks })
    !groups
  |> List.rev

(* --- S1: determinism taint --- *)

let s1_banned (tok : string) : bool =
  let segs = segs_of_tok tok in
  List.mem "Unix" segs || List.mem "Random" segs
  || qualified_matches tok "Sys.time"
  || qualified_matches tok "Hashtbl.hash"
  || qualified_matches tok "Hashtbl.seeded_hash"
  || qualified_matches tok "Hashtbl.hash_param"

let check_s1 (src : Source.t) (sig_toks : Lex.token list) : finding list =
  let path = Source.path src in
  if not (s1_scope path) then []
  else
    List.filter_map
      (fun (t : Lex.token) ->
        if t.Lex.kind = Lex.Word && s1_banned t.Lex.text
           && not (Source.allowed src ~rule:s1 ~line:t.Lex.line)
        then
          Some { file = path; line = t.Lex.line; rule = s1;
                 message =
                   t.Lex.text
                   ^ " is nondeterministic (wall clock / OS entropy); use the \
                      engine's virtual clock, the seeded DRBG, or the Det seam" }
        else None)
      sig_toks

(* --- S2: charge coverage --- *)

(* Priced operation -> the Charge entry that must appear in the same
   top-level item.  First match in list order wins. *)
let priced_ops : (string * string) list = [
  ("Tsig.release", "tsig_release");
  ("Tsig.verify_share", "tsig_verify_share");
  ("Tsig.assemble", "tsig_assemble");
  ("Tsig.verify", "tsig_verify");
  ("Crypto.Threshold_sig.release", "tsig_release");
  ("Crypto.Threshold_sig.verify_share", "tsig_verify_share");
  ("Crypto.Threshold_sig.assemble", "tsig_assemble");
  ("Crypto.Threshold_sig.verify", "tsig_verify");
  ("Crypto.Multi_sig.release", "tsig_release");
  ("Crypto.Multi_sig.verify_share", "tsig_verify_share");
  ("Crypto.Multi_sig.assemble", "tsig_assemble");
  ("Crypto.Multi_sig.verify", "tsig_verify");
  ("Crypto.Threshold_coin.release", "coin_release");
  ("Crypto.Threshold_coin.verify_share", "coin_verify_share");
  ("Crypto.Threshold_coin.assemble", "coin_assemble");
  ("Crypto.Threshold_coin.assemble_bit", "coin_assemble");
  ("Crypto.Threshold_enc.encrypt", "enc_encrypt");
  ("Crypto.Threshold_enc.ciphertext_valid", "enc_ct_valid");
  ("Crypto.Threshold_enc.dec_share", "enc_dec_share");
  ("Crypto.Threshold_enc.verify_dec_share", "enc_verify_share");
  ("Crypto.Threshold_enc.combine", "enc_combine");
  ("Batch.tsig_shares", "tsig_verify_share_batch");
  ("Batch.coin_shares", "coin_verify_share_batch");
  ("Crypto.Rsa.sign", "rsa_sign");
  ("Crypto.Rsa.verify", "rsa_verify");
  ("Hashes.Sha256.digest", "hash");
  ("Hashes.Sha256.digest_list", "hash");
]

let priced_charge (tok : string) : string option =
  List.find_map
    (fun (pat, chg) -> if qualified_matches tok pat then Some chg else None)
    priced_ops

let charge_entry (tok : string) : string option =
  match List.rev (segs_of_tok tok) with
  | fn :: "Charge" :: _ -> Some fn
  | _ -> None

(* A priced name only counts as a *call* when it is applied: the next token
   must start an argument and the previous one must not put us in a type
   expression (dec_share is both a function and a type). *)
let starts_argument (t : Lex.token) : bool =
  match t.Lex.kind with
  | Lex.Word | Lex.Number | Lex.Str | Lex.Chr | Lex.Quoted -> true
  | Lex.Op -> t.Lex.text = "~" || t.Lex.text = "?"
  | Lex.Punct -> t.Lex.text = "(" || t.Lex.text = "{" || t.Lex.text = "["
                 || t.Lex.text = "[|"
  | _ -> false

let check_s2_item (src : Source.t) (it : item) : finding list =
  if it.it_kind = "type" || it.it_kind = "exception" then []
  else begin
    let toks = it.it_toks in
    let n = Array.length toks in
    let charges = ref [] in
    Array.iter
      (fun (t : Lex.token) ->
        match charge_entry t.Lex.text with
        | Some fn -> charges := fn :: !charges
        | None -> ())
      toks;
    let out = ref [] in
    for k = 0 to n - 1 do
      let t = toks.(k) in
      if t.Lex.kind = Lex.Word then
        match priced_charge t.Lex.text with
        | None -> ()
        | Some required ->
          let prev_ok =
            k = 0
            || (let p = toks.(k - 1).Lex.text in p <> ":" && p <> "*")
          in
          let next_ok = k + 1 < n && starts_argument toks.(k + 1) in
          if prev_ok && next_ok
             && not (List.mem required !charges)
             && not (Source.allowed src ~rule:s2 ~line:t.Lex.line)
          then
            out :=
              { file = Source.path src; line = t.Lex.line; rule = s2;
                message =
                  Printf.sprintf
                    "%s is priced by Sim.Cost but this function never calls \
                     Charge.%s; the virtual-CPU accounting goes silent"
                    t.Lex.text required }
              :: !out
    done;
    List.rev !out
  end

(* --- S3: handler flow --- *)

(* Constructors declared by the [type] items of one file, with their
   declaration lines.  A capitalized, dot-free word right after [=] or [|]
   inside a type declaration is a constructor. *)
let declared_constructors (items : item list) : (string * int) list =
  List.concat_map
    (fun it ->
      if it.it_kind <> "type" then []
      else begin
        let out = ref [] and expect = ref false in
        Array.iter
          (fun (t : Lex.token) ->
            let tx = t.Lex.text in
            if tx = "=" || tx = "|" then expect := true
            else begin
              if !expect && t.Lex.kind = Lex.Word && is_cap tx
                 && not (String.contains tx '.')
              then out := (tx, t.Lex.line) :: !out;
              expect := false
            end)
          it.it_toks;
        List.rev !out
      end)
    items

(* Pattern-vs-expression mode: a small state machine good enough for this
   tree's style.  [with]/[function]/[|] open pattern position; [->], [=],
   [when] and friends return to expression position. *)
let count_uses (items : item list) (names : (string, int * int) Hashtbl.t) :
    unit =
  List.iter
    (fun it ->
      if it.it_kind <> "type" && it.it_kind <> "exception" then begin
        let in_pat = ref false in
        Array.iter
          (fun (t : Lex.token) ->
            let tx = t.Lex.text in
            (match t.Lex.kind with
             | Lex.Word when Hashtbl.mem names tx ->
               let e, p = Hashtbl.find names tx in  (* lint: allow partial-fn — guarded by mem *)
               if !in_pat then Hashtbl.replace names tx (e, p + 1)
               else Hashtbl.replace names tx (e + 1, p)
             | _ -> ());
            if tx = "with" || tx = "function" || tx = "|" then in_pat := true
            else if tx = "->" || tx = "=" || tx = "when" || tx = "in"
                    || tx = "then" || tx = "else" || tx = "do" || tx = ";"
                    || tx = "match" || tx = "try" || tx = "fun" || tx = "<-"
            then in_pat := false)
          it.it_toks
      end)
    items

let check_s3 (src : Source.t) (items : item list)
    (mli_words : (string, unit) Hashtbl.t option) : finding list =
  let decls = declared_constructors items in
  if decls = [] then []
  else begin
    let counts : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
    List.iter (fun (name, _) -> Hashtbl.replace counts name (0, 0)) decls;
    count_uses items counts;
    List.filter_map
      (fun (name, line) ->
        let public =
          match mli_words with
          | Some tbl -> Hashtbl.mem tbl name
          | None -> false
        in
        if public || Source.allowed src ~rule:s3 ~line then None
        else
          let e, p = match Hashtbl.find_opt counts name with
            | Some c -> c | None -> (0, 0)
          in
          let msg =
            if e = 0 && p = 0 then
              Some (Printf.sprintf "constructor %s is never used" name)
            else if p = 0 then
              Some (Printf.sprintf
                      "constructor %s is constructed but never matched: a \
                       message sent with it would be dropped by every handler"
                      name)
            else if e = 0 then
              Some (Printf.sprintf
                      "constructor %s is matched but never constructed (dead \
                       receive path?)" name)
            else None
          in
          Option.map
            (fun message ->
              { file = Source.path src; line; rule = s3; message })
            msg)
      decls
  end

(* --- S4: quorum literals --- *)

let cfg_field (last : string) (tok : string) : bool =
  match List.rev (segs_of_tok tok) with
  | f :: "Config" :: _ -> f = last
  | _ -> false

let is_cfg_t tok = cfg_field "t" tok
let is_cfg_n tok = cfg_field "n" tok
let is_cfg tok = is_cfg_t tok || is_cfg_n tok

let check_s4_item (src : Source.t) (it : item) : finding list =
  if it.it_kind = "type" || it.it_kind = "exception" then []
  else begin
    let toks = it.it_toks in
    let n = Array.length toks in
    let out = ref [] in
    for k = 1 to n - 2 do
      let a = toks.(k - 1) and op = toks.(k) and b = toks.(k + 1) in
      if op.Lex.kind = Lex.Op then begin
        let at = a.Lex.text and bt = b.Lex.text in
        let a_num = a.Lex.kind = Lex.Number and b_num = b.Lex.kind = Lex.Number in
        let fires =
          match op.Lex.text with
          | "+" | "-" ->
            (is_cfg_t at && (b_num || is_cfg bt))
            || (is_cfg_t bt && (a_num || is_cfg at))
          | "*" -> (is_cfg_t at && b_num) || (a_num && is_cfg_t bt)
          | "/" -> is_cfg at && b_num
          | _ -> false
        in
        if fires && not (Source.allowed src ~rule:s4 ~line:op.Lex.line) then
          out :=
            { file = Source.path src; line = op.Lex.line; rule = s4;
              message =
                Printf.sprintf
                  "inline quorum arithmetic (%s %s %s); use the Config \
                   helpers (echo_quorum, vote_quorum, ready_quorum, \
                   one_honest, ...) so thresholds stay consistent"
                  at op.Lex.text bt }
            :: !out
      end
    done;
    List.rev !out
  end

(* --- S5: cache-key-digest --- *)

(* An expression head that visibly produces a digest: a Hashes.Sha* digest
   call, or a lowercase helper whose name ends in "digest" (stmt_digest,
   coin_digest, ... — the naming convention carries the obligation). *)
let s5_producer (tok : string) : bool =
  qualified_matches tok "Hashes.Sha256.digest"
  || qualified_matches tok "Hashes.Sha256.digest_list"
  || qualified_matches tok "Hashes.Sha1.digest"
  || (match List.rev (segs_of_tok tok) with
      | last :: _ ->
        let n = String.length last and suf = "digest" in
        let m = String.length suf in
        (not (is_cap last)) && n >= m && String.sub last (n - m) m = suf
      | [] -> false)

(* The position of the defining [=] of a [let] item: label punning before
   it is a parameter declaration, after it an argument. *)
let defining_eq (toks : Lex.token array) : int =
  let n = Array.length toks in
  let rec find k = if k >= n then n else if toks.(k).Lex.text = "=" then k else find (k + 1) in
  find 0

let check_s5_item (src : Source.t) (it : item) : finding list =
  if it.it_kind = "type" || it.it_kind = "exception" then []
  else begin
    let toks = it.it_toks in
    let n = Array.length toks in
    let inserts = ref false in
    for k = 0 to n - 2 do
      if toks.(k).Lex.kind = Lex.Word
         && qualified_matches toks.(k).Lex.text "Share_cache.add"
         && starts_argument toks.(k + 1)
      then inserts := true
    done;
    if not !inserts then []
    else begin
      let eq = defining_eq toks in
      (* [~digest] (or [~(digest : ...)]) before the defining [=] makes this
         item a forwarding wrapper: the key was computed by its callers,
         which the rule inspects at their own Share_cache/helper sites. *)
      let wrapper = ref false in
      for k = 0 to eq - 2 do
        if toks.(k).Lex.text = "~"
           && (toks.(k + 1).Lex.text = "digest"
               || (toks.(k + 1).Lex.text = "(" && k + 2 < n
                   && toks.(k + 2).Lex.text = "digest"))
        then wrapper := true
      done;
      (* [let digest = <head> ...] anywhere in the item body. *)
      let let_bound_ok = ref false in
      for k = 0 to n - 3 do
        if toks.(k).Lex.text = "let" && toks.(k + 1).Lex.text = "digest"
           && toks.(k + 2).Lex.text = "="
           && k + 3 < n
           && toks.(k + 3).Lex.kind = Lex.Word
           && s5_producer toks.(k + 3).Lex.text
        then let_bound_ok := true
      done;
      let out = ref [] in
      let flag line detail =
        if not (Source.allowed src ~rule:s5 ~line) then
          out :=
            { file = Source.path src; line; rule = s5;
              message =
                detail
                ^ "; Share_cache keys must be Hashes digests (fixed-size, \
                   collision-resistant), not raw statement bytes" }
            :: !out
      in
      for k = eq to n - 2 do
        if toks.(k).Lex.text = "~" && toks.(k + 1).Lex.text = "digest" then begin
          let line = toks.(k + 1).Lex.line in
          if k + 2 < n && toks.(k + 2).Lex.text = ":" then begin
            (* explicit argument: check the head of the expression *)
            let head =
              if k + 3 < n && toks.(k + 3).Lex.text = "(" && k + 4 < n
              then Some toks.(k + 4)
              else if k + 3 < n then Some toks.(k + 3)
              else None
            in
            match head with
            | Some h when h.Lex.kind = Lex.Word && s5_producer h.Lex.text -> ()
            | Some h ->
              flag line
                (Printf.sprintf "cache key [~digest:%s...] is not a digest"
                   h.Lex.text)
            | None -> flag line "cache key [~digest:] has no argument"
          end
          else if not !wrapper && not !let_bound_ok then
            flag line
              "punned [~digest] is not let-bound from a digest in this \
               function"
        end
      done;
      List.rev !out
    end
  end

(* --- S6: durable I/O seam --- *)

(* The raw-I/O surface: the Stdlib channel openers (bare or qualified),
   the In_channel/Out_channel modules wholesale, and the Sys file
   mutators.  Reads are banned alongside writes — a recovery path that
   reads bytes the Device never saw replays differently. *)
let s6_banned (tok : string) : bool =
  let segs = segs_of_tok tok in
  let opener s =
    match s with
    | "open_in" | "open_in_bin" | "open_in_gen"
    | "open_out" | "open_out_bin" | "open_out_gen" -> true
    | _ -> false
  in
  List.exists opener segs
  || List.mem "In_channel" segs || List.mem "Out_channel" segs
  || qualified_matches tok "Sys.remove"
  || qualified_matches tok "Sys.rename"

let check_s6 (src : Source.t) (sig_toks : Lex.token list) : finding list =
  let path = Source.path src in
  List.filter_map
    (fun (t : Lex.token) ->
      if t.Lex.kind = Lex.Word && s6_banned t.Lex.text
         && not (Source.allowed src ~rule:s6 ~line:t.Lex.line)
      then
        Some { file = path; line = t.Lex.line; rule = s6;
               message =
                 t.Lex.text
                 ^ " is raw file I/O; durable bytes must go through the \
                    Store.Device seam so recovery replays deterministically" }
      else None)
    sig_toks

(* --- driver --- *)

let check_tree (files : (Source.t * Lex.token list) list) : finding list =
  (* exported-name sets of the .mli files, for the S3 public exemption *)
  let mli_words : (string, (string, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (src, toks) ->
      let path = Source.path src in
      if Filename.check_suffix path ".mli" then begin
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun (t : Lex.token) ->
            if t.Lex.kind = Lex.Word then Hashtbl.replace tbl t.Lex.text ())
          (Lex.significant toks);
        Hashtbl.replace mli_words (Filename.remove_extension path) tbl
      end)
    files;
  List.concat_map
    (fun (src, toks) ->
      let path = Source.path src in
      if not (is_ml path) then []
      else begin
        let sig_toks = Lex.significant toks in
        let items = split_items sig_toks in
        let f1 = check_s1 src sig_toks in
        let f2 =
          if s2_scope path then List.concat_map (check_s2_item src) items
          else []
        in
        let f3 =
          if s3_scope path then
            check_s3 src items
              (Hashtbl.find_opt mli_words (Filename.remove_extension path))
          else []
        in
        let f4 =
          if s4_scope path then List.concat_map (check_s4_item src) items
          else []
        in
        let f5 =
          if s5_scope path then List.concat_map (check_s5_item src) items
          else []
        in
        let f6 = if s6_scope path then check_s6 src sig_toks else [] in
        f1 @ f2 @ f3 @ f4 @ f5 @ f6
      end)
    files
