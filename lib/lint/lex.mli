(** A lossless OCaml tokenizer for the semantic lint rules (S1–S6).

    Every byte of the input lands in exactly one token — whitespace and
    comments included — so [concat (tokenize s) = s] for any input; the
    test suite checks this round-trip over all of lib/.  Qualified paths
    join across dots: [t.rt.Runtime.cfg] is a single [Word] token, which is
    what the semantic rules key on. *)

type kind =
  | Word        (** identifier, keyword, or dotted qualified path *)
  | Number
  | Op          (** maximal run of symbol characters, e.g. [->], [>=] *)
  | Punct       (** single delimiter; also the [[|] / [|]] array brackets *)
  | Str         (** ["..."] with escapes, possibly spanning lines *)
  | Chr         (** a char literal — never a type variable's quote *)
  | Quoted      (** [{|...|}] and [{id|...|id}] quoted strings *)
  | Comment     (** [(* ... *)], nesting-aware, strings inside respected *)
  | White

type token = {
  kind : kind;
  text : string;
  line : int;   (** 1-based start line *)
  col : int;    (** 0-based start column *)
}

val tokenize : string -> token list
(** Total: never raises; an unterminated comment or literal extends to the
    end of input. *)

val significant : token list -> token list
(** Drop [White] and [Comment] trivia. *)

val concat : token list -> string
(** Reassemble the exact input text (the round-trip property). *)

val is_keyword : string -> bool
(** Whether a [Word] token's text is an OCaml keyword. *)
