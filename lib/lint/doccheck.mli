(** Documentation checker backing the [@doc] alias (the odoc binary is not
    part of the build environment, so this is what "building the docs" means
    here).

    Two kinds of findings:

    - {b doc-coverage}: every [val] declared in a {e strict} interface must
      carry an odoc comment — [(** ... *)] ending on the line directly above
      the declaration, or starting after it and before the next item.
    - {b doc-ref}: every [\{!...\}] reference in any scanned interface must
      resolve against the symbol table built from the whole scanned set
      (library wrapper modules, file modules, nested modules, and their
      [val]/[type]/[exception] members).

    This library never prints; the [sintra_doc] executable renders. *)

type finding = {
  file : string;
  line : int;        (** 1-based *)
  rule : string;     (** ["doc-coverage"] or ["doc-ref"] *)
  message : string;
}

type file = {
  library : string;  (** wrapper module name, e.g. ["Bignum"]; [""] for none *)
  path : string;
  contents : string;
  strict : bool;     (** require a doc comment on every [val] *)
}

val check : file list -> finding list
(** Findings sorted by file, then line. *)

val render : finding -> string
(** ["file:line: [rule] message"]. *)
