(* Documentation checker backing the @doc alias.

   Coverage works off the same masked-source model as the linter (comments
   and strings blanked), so keyword detection never fires inside prose;
   doc-comment spans and {!...} references are found with a small dedicated
   lexer over the raw text, since that is exactly the part the mask blanks
   out. *)

type finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

type file = {
  library : string;
  path : string;
  contents : string;
  strict : bool;
}

(* --- doc-comment spans -------------------------------------------------- *)

(* (start_line, end_line) of every (** ... *) comment, 1-based, nesting and
   in-comment string literals respected. *)
let doc_spans (contents : string) : (int * int) list =
  let n = String.length contents in
  let spans = ref [] in
  let line = ref 1 in
  let depth = ref 0 in
  let doc_start = ref 0 in       (* line where a depth-1 doc comment began *)
  let is_doc = ref false in
  let i = ref 0 in
  let peek k = if !i + k < n then contents.[!i + k] else '\x00' in
  while !i < n do
    let c = contents.[!i] in
    if c = '\n' then incr line;
    if !depth > 0 then begin
      (* inside a comment: honour nesting and skip string literals *)
      if c = '(' && peek 1 = '*' then begin incr depth; incr i end
      else if c = '*' && peek 1 = ')' then begin
        decr depth;
        incr i;
        if !depth = 0 && !is_doc then spans := (!doc_start, !line) :: !spans
      end
      else if c = '"' then begin
        incr i;
        let stop = ref false in
        while (not !stop) && !i < n do
          (match contents.[!i] with
           | '\\' -> incr i
           | '"' -> stop := true
           | '\n' -> incr line
           | _ -> ());
          incr i
        done;
        decr i
      end
    end
    else if c = '(' && peek 1 = '*' then begin
      depth := 1;
      (* doc comment: exactly "(**" not followed by another '*' or ')' *)
      is_doc := peek 2 = '*' && peek 3 <> '*' && peek 3 <> ')';
      doc_start := !line;
      incr i
    end
    else if c = '"' then begin
      incr i;
      let stop = ref false in
      while (not !stop) && !i < n do
        (match contents.[!i] with
         | '\\' -> incr i
         | '"' -> stop := true
         | '\n' -> incr line
         | _ -> ());
        incr i
      done;
      decr i
    end;
    incr i
  done;
  List.rev !spans

(* --- declared items ----------------------------------------------------- *)

type item = {
  kind : string;          (* "val" | "type" | "module" | "exception" | "include" *)
  name : string;          (* "" when anonymous (include) *)
  item_line : int;
  scope : string list;    (* enclosing nested-module names, outermost first *)
}

let is_lower_ident (s : string) : bool =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true | _ -> false)
       s

let is_upper_ident (s : string) : bool =
  String.length s > 0
  && (match s.[0] with 'A' .. 'Z' -> true | _ -> false)

(* The declaration name of a `type`/`and` item: the first lowercase
   identifier after the parameters. *)
let type_name (tokens : string list) : string =
  let rec scan = function
    | [] -> ""
    | t :: rest ->
      if is_lower_ident t && t <> "nonrec" then t
      else if t = "=" || t = ":" then ""
      else scan rest
  in
  scan tokens

let items_of_source (src : Source.t) : item list =
  let items = ref [] in
  let scope : string list ref = ref [] in       (* innermost first *)
  let pending_module = ref "" in
  let brace_depth = ref 0 in                    (* inside a record type body *)
  for ln = 1 to Source.line_count src do
    let tokens = Source.tokenize (Source.masked_line src ln) in
    let emit kind name =
      items := { kind; name; item_line = ln; scope = List.rev !scope } :: !items
    in
    (match tokens with
     | "val" :: name :: _ when is_lower_ident name -> emit "val" name
     | "exception" :: name :: _ when is_upper_ident name -> emit "exception" name
     | "include" :: _ -> emit "include" ""
     | "type" :: rest -> emit "type" (type_name rest)
     | "and" :: rest when type_name rest <> "" -> emit "type" (type_name rest)
     | "module" :: "type" :: name :: _ -> emit "module" name
     | "module" :: name :: _ when is_upper_ident name ->
       emit "module" name;
       pending_module := name
     (* record fields, referenceable as {!Module.field}; not coverage items *)
     | "mutable" :: name :: ":" :: _ when !brace_depth > 0 && is_lower_ident name ->
       emit "field" name
     | name :: ":" :: _ when !brace_depth > 0 && is_lower_ident name ->
       emit "field" name
     | _ -> ());
    List.iter
      (fun t ->
        if t = "sig" then begin
          scope := !pending_module :: !scope;
          pending_module := ""
        end
        else if t = "end" then begin
          match !scope with [] -> () | _ :: outer -> scope := outer
        end
        else if t = "{" then incr brace_depth
        else if t = "}" then (if !brace_depth > 0 then decr brace_depth))
      tokens
  done;
  List.rev !items

(* --- symbol table ------------------------------------------------------- *)

(* Registered module paths (e.g. ["Bignum"; "Nat"; "Montgomery"]) with
   their member names.  Assoc-list keyed by the dotted path: the scanned
   sets are small and order stays deterministic. *)
type table = {
  mutable modules : (string * string list ref) list;   (* dotted path -> members *)
  mutable per_file : (string * string list) list;      (* path -> local names *)
}

let module_key (path : string list) : string = String.concat "." path

let members (tbl : table) (path : string list) : string list ref =
  let key = module_key path in
  match List.assoc_opt key tbl.modules with
  | Some m -> m
  | None ->
    let m = ref [] in
    tbl.modules <- (key, m) :: tbl.modules;
    m

let add_member (tbl : table) (path : string list) (name : string) : unit =
  if name <> "" then begin
    let m = members tbl path in
    if not (List.mem name !m) then m := name :: !m
  end

let top_module_of_path (path : string) : string =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let file_base (f : file) : string list =
  let top = top_module_of_path f.path in
  if f.library = "" then [ top ] else [ f.library; top ]

let build_table (files : (file * item list) list) : table =
  let tbl = { modules = []; per_file = [] } in
  List.iter
    (fun (f, items) ->
      let base = file_base f in
      (match base with
       | lib :: _ :: _ -> add_member tbl [ lib ] (top_module_of_path f.path)
       | _ -> ());
      ignore (members tbl base);
      let locals = ref [] in
      List.iter
        (fun it ->
          let parent = base @ it.scope in
          add_member tbl parent it.name;
          if it.kind = "module" && it.name <> "" then
            ignore (members tbl (parent @ [ it.name ]));
          if it.name <> "" && not (List.mem it.name !locals) then
            locals := it.name :: !locals)
        items;
      tbl.per_file <- (f.path, !locals) :: tbl.per_file)
    files;
  tbl

(* [segs] names a module iff it is a suffix of some registered path. *)
let module_matches (tbl : table) (segs : string list) : string list option =
  let suffix_of full =
    let lf = List.length full and ls = List.length segs in
    lf >= ls
    && (let rec drop k l =
          match l with _ :: tl when k > 0 -> drop (k - 1) tl | _ -> l
        in
        drop (lf - ls) full = segs)
  in
  let rec scan = function
    | [] -> None
    | (key, _) :: rest ->
      let full = String.split_on_char '.' key in
      if suffix_of full then Some full else scan rest
  in
  scan tbl.modules

let resolves (tbl : table) ~(path : string) (ref_text : string) : bool =
  let segs = String.split_on_char '.' ref_text in
  match segs with
  | [] -> false
  | [ single ] ->
    let locals =
      match List.assoc_opt path tbl.per_file with Some l -> l | None -> []
    in
    List.mem single locals || module_matches tbl [ single ] <> None
  | _ ->
    (match module_matches tbl segs with
     | Some _ -> true
     | None ->
       let rec split_last acc = function
         | [] -> (List.rev acc, "")
         | [ last ] -> (List.rev acc, last)
         | hd :: tl -> split_last (hd :: acc) tl
       in
       let prefix, last = split_last [] segs in
       (match module_matches tbl prefix with
        | None -> false
        | Some full ->
          (match List.assoc_opt (module_key full) tbl.modules with
           | Some m -> List.mem last !m
           | None -> false)))

(* --- {!...} references -------------------------------------------------- *)

type reference = { ref_line : int; kind : string; target : string }

let refs_of_contents (contents : string) : reference list =
  let n = String.length contents in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i < n do
    (if contents.[!i] = '\n' then incr line);
    (* \{ is odoc's escape for a literal brace: not a reference *)
    if !i + 1 < n && contents.[!i] = '{' && contents.[!i + 1] = '!'
       && not (!i > 0 && contents.[!i - 1] = '\\') then begin
      let j = ref (!i + 2) in
      let ident_char c =
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '\'' -> true
        | _ -> false
      in
      let start = !j in
      while !j < n && ident_char contents.[!j] do incr j done;
      let head = String.sub contents start (!j - start) in
      let kind, target =
        if !j < n && contents.[!j] = ':' then begin
          let start2 = !j + 1 in
          let k = ref start2 in
          while !k < n && ident_char contents.[!k] do incr k done;
          (head, String.sub contents start2 (!k - start2))
        end
        else ("", head)
      in
      out := { ref_line = !line; kind; target } :: !out;
      i := !j
    end;
    incr i
  done;
  List.rev !out

(* --- the checker -------------------------------------------------------- *)

let check_coverage (f : file) (items : item list) (spans : (int * int) list)
    (line_count : int) : finding list =
  let item_lines = List.map (fun it -> it.item_line) items in
  let next_item_after ln =
    List.fold_left
      (fun acc l -> if l > ln && l < acc then l else acc)
      (line_count + 1) item_lines
  in
  List.filter_map
    (fun (it : item) ->
      if it.kind <> "val" then None
      else begin
        let v = it.item_line in
        let limit = next_item_after v in
        let documented =
          List.exists
            (fun (s, e) -> e = v - 1 || (s >= v && s < limit))
            spans
        in
        if documented then None
        else
          Some {
            file = f.path; line = v; rule = "doc-coverage";
            message =
              Printf.sprintf "val %s has no documentation comment"
                (String.concat "."
                   (List.filter (fun s -> s <> "") (it.scope @ [ it.name ])));
          }
      end)
    items

let skip_kinds = [ "section"; "label"; "modules"; "page" ]

let check_refs (tbl : table) (f : file) : finding list =
  List.filter_map
    (fun (r : reference) ->
      if List.mem r.kind skip_kinds then None
      else if r.target = "" then
        Some { file = f.path; line = r.ref_line; rule = "doc-ref";
               message = "empty or malformed {!...} reference" }
      else if resolves tbl ~path:f.path r.target then None
      else
        Some { file = f.path; line = r.ref_line; rule = "doc-ref";
               message = Printf.sprintf "unresolved reference {!%s}" r.target })
    (refs_of_contents f.contents)

let check (files : file list) : finding list =
  let parsed =
    List.map
      (fun f ->
        let src = Source.of_string ~path:f.path f.contents in
        (f, src, items_of_source src))
      files
  in
  let tbl = build_table (List.map (fun (f, _, items) -> (f, items)) parsed) in
  let findings =
    List.concat_map
      (fun (f, src, items) ->
        let coverage =
          if f.strict then
            check_coverage f items (doc_spans f.contents) (Source.line_count src)
          else []
        in
        coverage @ check_refs tbl f)
      parsed
  in
  List.sort
    (fun a b ->
      match String.compare a.file b.file with
      | 0 -> compare a.line b.line
      | c -> c)
    findings

let render (f : finding) : string =
  Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.message
