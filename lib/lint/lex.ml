(* A real OCaml tokenizer for the semantic lint pass.

   Unlike Source (which masks comments and literals per line so the regexy
   L rules cannot misfire inside them), this lexer keeps everything: every
   byte of the input lands in exactly one token, so concatenating the
   [text] fields reproduces the file — the property the round-trip
   meta-test checks over all of lib/.  Trivia (whitespace, comments) are
   tokens too; Sema filters them out with [significant].

   Qualified identifiers are joined across dots ([t.rt.Runtime.cfg] is one
   token), matching Source.tokenize, because every semantic rule keys on
   qualified paths.  Known deliberate approximations, none of which matter
   to the S rules: a float exponent splits from its sign only when
   malformed, and [#] directives lex as operator runs. *)

type kind =
  | Word        (* identifier / keyword / qualified path *)
  | Number
  | Op          (* maximal run of symbol characters *)
  | Punct       (* single delimiter, plus the [| and |] array brackets *)
  | Str         (* "..." with escapes, possibly spanning lines *)
  | Chr         (* 'c' or '\n' — a char literal, not a type variable *)
  | Quoted      (* {|...|} / {id|...|id} *)
  | Comment     (* (* ... *) with nesting; strings inside do not close it *)
  | White

type token = {
  kind : kind;
  text : string;
  line : int;   (* 1-based start line *)
  col : int;    (* 0-based start column *)
}

let is_white c = c = ' ' || c = '\t' || c = '\r' || c = '\n'
let is_digit c = c >= '0' && c <= '9'
let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_word_start c = is_letter c || c = '_'
let is_word_char c = is_word_start c || is_digit c || c = '\''
let is_sym c = String.contains "!$%&*+-./:<=>?@^|~#" c

let keywords =
  [ "and"; "as"; "assert"; "begin"; "class"; "constraint"; "do"; "done";
    "downto"; "else"; "end"; "exception"; "external"; "false"; "for"; "fun";
    "function"; "functor"; "if"; "in"; "include"; "inherit"; "initializer";
    "lazy"; "let"; "match"; "method"; "module"; "mutable"; "new"; "nonrec";
    "object"; "of"; "open"; "private"; "rec"; "sig"; "struct"; "then"; "to";
    "true"; "try"; "type"; "val"; "virtual"; "when"; "while"; "with" ]

let is_keyword (s : string) : bool = List.mem s keywords

let tokenize (input : string) : token list =
  let n = String.length input in
  let out = ref [] in
  let line = ref 1 and col = ref 0 in
  let pos = ref 0 in
  let peek k = if !pos + k < n then input.[!pos + k] else '\000' in
  (* Emit [input[start .. !pos)] as one token, updating line/col. *)
  let emit kind start =
    let text = String.sub input start (!pos - start) in
    out := { kind; text; line = !line; col = !col } :: !out;
    String.iter
      (fun c -> if c = '\n' then (incr line; col := 0) else incr col)
      text
  in
  (* Scan a "..." literal body starting just after the opening quote. *)
  let scan_string () =
    let fin = ref false in
    while (not !fin) && !pos < n do
      (match input.[!pos] with
       | '\\' -> pos := !pos + 1            (* skip the escaped char *)
       | '"' -> fin := true
       | _ -> ());
      pos := !pos + 1
    done
  in
  while !pos < n do
    let start = !pos in
    let c = input.[!pos] in
    if is_white c then begin
      while !pos < n && is_white input.[!pos] do incr pos done;
      emit White start
    end
    else if c = '(' && peek 1 = '*' then begin
      (* Nested comment; a string literal inside it hides any closer it
         holds. *)
      pos := !pos + 2;
      let depth = ref 1 in
      while !depth > 0 && !pos < n do
        if input.[!pos] = '(' && peek 1 = '*' then (depth := !depth + 1; pos := !pos + 2)
        else if input.[!pos] = '*' && peek 1 = ')' then (decr depth; pos := !pos + 2)
        else if input.[!pos] = '"' then (incr pos; scan_string ())
        else incr pos
      done;
      emit Comment start
    end
    else if c = '"' then begin
      incr pos;
      scan_string ();
      emit Str start
    end
    else if c = '{'
            && (peek 1 = '|'
                || (let k = ref 1 in
                    while is_letter (peek !k) || peek !k = '_' do incr k done;
                    !k > 1 && peek !k = '|'))
    then begin
      (* {|...|} / {id|...|id}: find the id, then scan for |id}. *)
      incr pos;
      let id_start = !pos in
      while !pos < n && (is_letter input.[!pos] || input.[!pos] = '_') do incr pos done;
      let id = String.sub input id_start (!pos - id_start) in
      incr pos;                                   (* the opening '|' *)
      let close = "|" ^ id ^ "}" in
      let lc = String.length close in
      let fin = ref false in
      while (not !fin) && !pos < n do
        if input.[!pos] = '|' && !pos + lc <= n
           && String.sub input !pos lc = close
        then (pos := !pos + lc; fin := true)
        else incr pos
      done;
      emit Quoted start
    end
    else if c = '\'' && peek 1 = '\\' then begin
      (* '\n', '\\', '\'', '\xFF', '\123' *)
      pos := !pos + 3;                            (* quote, backslash, first escaped char *)
      while !pos < n && input.[!pos] <> '\'' do incr pos done;
      if !pos < n then incr pos;
      emit Chr start
    end
    else if c = '\'' && peek 1 <> '\000' && peek 2 = '\'' && peek 1 <> '\'' then begin
      pos := !pos + 3;
      emit Chr start
    end
    else if is_digit c then begin
      while !pos < n && (is_word_char input.[!pos]) do incr pos done;
      (* one dot joins a float's fractional part / exponent *)
      if !pos < n && input.[!pos] = '.'
         && !pos + 1 < n
         && (is_digit input.[!pos + 1] || input.[!pos + 1] = 'e'
             || input.[!pos + 1] = 'E')
      then begin
        incr pos;
        while !pos < n && is_word_char input.[!pos] do incr pos done
      end;
      emit Number start
    end
    else if is_word_start c then begin
      while !pos < n && is_word_char input.[!pos] do incr pos done;
      (* join qualified paths: field access and module paths alike *)
      while !pos + 1 < n && input.[!pos] = '.' && is_word_start input.[!pos + 1] do
        pos := !pos + 2;
        while !pos < n && is_word_char input.[!pos] do incr pos done
      done;
      emit Word start
    end
    else if c = '[' && peek 1 = '|' then (pos := !pos + 2; emit Punct start)
    else if c = '|' && peek 1 = ']' then (pos := !pos + 2; emit Punct start)
    else if is_sym c then begin
      while !pos < n && is_sym input.[!pos]
            && not (input.[!pos] = '|' && peek 1 = ']')
            && not (input.[!pos] = '(' && peek 1 = '*')
      do incr pos done;
      emit Op start
    end
    else begin
      incr pos;
      emit Punct start
    end
  done;
  List.rev !out

let significant (toks : token list) : token list =
  List.filter (fun t -> t.kind <> White && t.kind <> Comment) toks

let concat (toks : token list) : string =
  String.concat "" (List.map (fun t -> t.text) toks)
