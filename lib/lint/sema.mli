(** The semantic lint rules (S1–S6), running on Lex token streams grouped
    into top-level module items.

    - [determinism] (S1): [Unix.*], [Random.*], [Sys.time], [Hashtbl.hash]
      in protocol ([lib/sintra]), simulator ([lib/sim]), test, or bench
      code — wall clocks and OS entropy break replayable simulation.
    - [charge-coverage] (S2): a priced crypto operation ([Tsig],
      [Threshold_coin], [Threshold_enc], [Rsa], [Sha256]) in a protocol
      module whose enclosing top-level function never calls the paired
      [Charge.*] entry, silently corrupting [Sim.Cost].
    - [handler-flow] (S3): a constructor of a protocol-private variant
      must be both constructed (send path) and matched (receive path);
      constructors exported through the companion [.mli] are exempt.
    - [quorum-literal] (S4): inline [2t+1]-style arithmetic on [Config.n]
      / [Config.t]; thresholds must come from the [Config]/[Invariant]
      helpers.
    - [cache-key-digest] (S5): a [Share_cache.add] insertion whose
      [~digest] key is not visibly a [Hashes] digest — raw statement bytes
      defeat the cache's fixed-size-key contract.
    - [durable-io] (S6): raw file I/O ([open_in]/[open_out] and friends,
      [In_channel]/[Out_channel], [Sys.remove]/[Sys.rename]) under
      [lib/store] or [lib/sintra]; every durable byte must flow through
      the [Store.Device] seam so recovery replays deterministically.  The
      seam itself ([device.ml]) is allowlisted in [.sintra-lint]. *)

type finding = Rules.finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

val s1 : string
(** The [determinism] rule name. *)

val s2 : string
(** The [charge-coverage] rule name. *)

val s3 : string
(** The [handler-flow] rule name. *)

val s4 : string
(** The [quorum-literal] rule name. *)

val s5 : string
(** The [cache-key-digest] rule name. *)

val s6 : string
(** The [durable-io] rule name. *)

val rule_names : (string * string) list
(** [(name, one-line description)] for the S rules. *)

val check_tree : (Source.t * Lex.token list) list -> finding list
(** Run S1–S6 over the tree; each file is paired with its Lex token
    stream.  [.mli] files contribute only the S3 public-constructor
    exemption. *)
