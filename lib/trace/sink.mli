(** Trace sinks: where event records go.

    The null sink is the default; [enabled] lets instrumentation sites skip
    all argument building when nothing is listening, so an untraced run
    pays one pointer dereference per site.  The JSONL and Chrome sinks are
    deterministic renderers — same seed, byte-identical output. *)

type t =
  | Null
  | Fn of (Event.t -> unit)

val null : t
(** The discarding sink ([Null]). *)

val enabled : t -> bool
(** False exactly for {!null} — the fast-path test at every site. *)

val emit : t -> Event.t -> unit
(** Hand one record to the sink (no-op on {!null}). *)

val jsonl_line : Event.t -> string
(** One event as a single-line JSON object (no trailing newline). *)

val jsonl : Buffer.t -> t
(** A sink appending one JSONL line per event to [buf]. *)

val console : unit -> t
(** A JSONL sink writing to stdout, for ad-hoc CLI use. *)

(** {2 Chrome trace-event format} *)

type chrome
(** A buffering sink state for the Chrome trace-event JSON format
    (chrome://tracing, Perfetto): parties are processes, protocol pids are
    threads. *)

val chrome : unit -> chrome
(** Fresh, empty buffering state. *)

val chrome_sink : chrome -> t
(** The sink feeding that state. *)

val chrome_count : chrome -> int
(** Events buffered so far. *)

val chrome_contents : chrome -> string
(** Render the buffered events as a complete Chrome trace JSON document.
    Spans still open at the end of the run are closed at the final
    timestamp (balanced B/E guaranteed), and process/thread naming
    metadata records are appended. *)
