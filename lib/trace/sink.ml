(* Trace sinks: where event records go.

   The null sink is the default and must be near-free: instrumentation sites
   test [enabled] (one pointer dereference and a match) before building any
   argument lists, so an untraced run does no allocation for tracing.

   The JSONL sink renders one JSON object per line into a caller-supplied
   buffer, using only the deterministic renderers in Event — two runs with
   the same seed produce byte-identical output.

   The Chrome sink buffers records and renders the Chrome trace-event JSON
   format on demand: parties become processes, protocol pids become threads
   (tids assigned in first-seen order), and any span still open at the end
   of the run is closed at the final timestamp so every B has a matching E
   and the file always loads in Perfetto / chrome://tracing. *)

type t =
  | Null
  | Fn of (Event.t -> unit)

let null : t = Null

let enabled (s : t) : bool = match s with Null -> false | Fn _ -> true

let emit (s : t) (ev : Event.t) : unit =
  match s with Null -> () | Fn f -> f ev

(* --- JSONL --- *)

let jsonl_line (ev : Event.t) : string =
  Printf.sprintf
    "{\"t\":%s,\"party\":%d,\"pid\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\
     \"level\":\"%s\",\"name\":\"%s\",\"args\":%s}"
    (Event.float_str ev.Event.time)
    ev.Event.party
    (Event.escape ev.Event.pid)
    (Event.escape ev.Event.cat)
    (Event.phase_letter ev.Event.ph)
    (Event.level_name ev.Event.level)
    (Event.escape ev.Event.name)
    (Event.args_json ev.Event.args)

let jsonl (buf : Buffer.t) : t =
  Fn
    (fun ev ->
      Buffer.add_string buf (jsonl_line ev);
      Buffer.add_char buf '\n')

(* A JSONL sink that writes straight to stdout, for ad-hoc console use from
   the CLI.  This is lib/trace's own formatting seam, so the debug-print
   lint rule is explicitly allowlisted here. *)
let console () : t =
  Fn
    (fun ev ->
      (* lint: allow debug-print — the console sink's entire job is stdout *)
      print_string (jsonl_line ev);
      (* lint: allow debug-print — the console sink's entire job is stdout *)
      print_newline ())

(* --- Chrome trace-event --- *)

type chrome = {
  mutable events : Event.t list;      (* reverse emission order *)
  mutable count : int;
  mutable max_time : float;
}

let chrome () : chrome = { events = []; count = 0; max_time = 0.0 }

let chrome_sink (c : chrome) : t =
  Fn
    (fun ev ->
      c.events <- ev :: c.events;
      c.count <- c.count + 1;
      if ev.Event.time > c.max_time then c.max_time <- ev.Event.time)

let chrome_count (c : chrome) : int = c.count

(* Virtual seconds -> microseconds, the unit of the "ts" field. *)
let us (time : float) : string = Event.float_str (time *. 1e6)

let chrome_event_json ~(tid : int) (ev : Event.t) : string =
  let args =
    match ev.Event.level with
    | Event.Info -> ev.Event.args
    | Event.Warn -> ev.Event.args @ [ ("level", Event.Str "warn") ]
  in
  (* Flow events need a top-level "id" binding the arrow's two ends, and the
     landing end needs "bp":"e" so Perfetto attaches it to the enclosing
     slice.  The id travels in the args at emission time; hoist it. *)
  let flow_id =
    match ev.Event.ph with
    | Event.Flow_start | Event.Flow_end ->
      (match List.assoc_opt "id" args with Some (Event.Int i) -> Some i | _ -> Some 0)
    | Event.Span_begin | Event.Span_end | Event.Instant | Event.Counter ->
      None
  in
  let extra =
    match ev.Event.ph, flow_id with
    | Event.Instant, _ -> ",\"s\":\"t\""
    | Event.Flow_start, Some id -> Printf.sprintf ",\"id\":%d" id
    | Event.Flow_end, Some id -> Printf.sprintf ",\"id\":%d,\"bp\":\"e\"" id
    | _, _ -> ""
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%s,\"pid\":%d,\
     \"tid\":%d%s,\"args\":%s}"
    (Event.escape ev.Event.name)
    (Event.escape ev.Event.cat)
    (Event.phase_letter ev.Event.ph)
    (us ev.Event.time)
    ev.Event.party tid extra
    (Event.args_json args)

let meta_json ~(party : int) ~(tid : int option) ~(name : string)
    ~(value : string) : string =
  match tid with
  | None ->
    Printf.sprintf
      "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
      name party (Event.escape value)
  | Some tid ->
    Printf.sprintf
      "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\
       \"args\":{\"name\":\"%s\"}}"
      name party tid (Event.escape value)

let chrome_contents (c : chrome) : string =
  let events = List.rev c.events in
  (* Thread ids per (party, pid), assigned in first-seen order so the
     mapping is a function of the event stream (hence of the seed). *)
  let tids : (int * string, int) Hashtbl.t = Hashtbl.create 64 in
  let tid_order : (int * string * int) list ref = ref [] in
  let next_tid : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let parties_seen : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let party_order : int list ref = ref [] in
  let tid_of (ev : Event.t) : int =
    let key = (ev.Event.party, ev.Event.pid) in
    match Hashtbl.find_opt tids key with
    | Some tid -> tid
    | None ->
      let tid =
        match Hashtbl.find_opt next_tid ev.Event.party with
        | Some n -> n
        | None -> 1
      in
      Hashtbl.replace next_tid ev.Event.party (tid + 1);
      Hashtbl.replace tids key tid;
      tid_order := (ev.Event.party, ev.Event.pid, tid) :: !tid_order;
      if not (Hashtbl.mem parties_seen ev.Event.party) then begin
        Hashtbl.replace parties_seen ev.Event.party ();
        party_order := ev.Event.party :: !party_order
      end;
      tid
  in
  (* Per-thread stacks of open span names, so unclosed spans can be closed
     at the final timestamp (Perfetto rejects unbalanced B/E). *)
  let open_spans : (int * int, string list) Hashtbl.t = Hashtbl.create 64 in
  let open_order : (int * int) list ref = ref [] in
  let body = Buffer.create 4096 in
  let first = ref true in
  let add_json (s : string) : unit =
    if !first then first := false else Buffer.add_string body ",\n";
    Buffer.add_string body "  ";
    Buffer.add_string body s
  in
  List.iter
    (fun ev ->
      let tid = tid_of ev in
      let key = (ev.Event.party, tid) in
      (match ev.Event.ph with
      | Event.Span_begin ->
        let stack =
          match Hashtbl.find_opt open_spans key with
          | Some st -> st
          | None ->
            open_order := key :: !open_order;
            []
        in
        Hashtbl.replace open_spans key (ev.Event.name :: stack)
      | Event.Span_end ->
        (match Hashtbl.find_opt open_spans key with
        | Some (_ :: rest) -> Hashtbl.replace open_spans key rest
        | Some [] | None -> ())
      | Event.Instant | Event.Counter | Event.Flow_start | Event.Flow_end ->
        ());
      add_json (chrome_event_json ~tid ev))
    events;
  (* Close anything still open, innermost first, in thread-first-seen order. *)
  List.iter
    (fun ((party, tid) as key) ->
      match Hashtbl.find_opt open_spans key with
      | Some names ->
        List.iter
          (fun name ->
            add_json
              (chrome_event_json ~tid
                 (Event.make ~time:c.max_time ~party ~pid:"" ~cat:"trace"
                    ~ph:Event.Span_end name)))
          names
      | None -> ())
    (List.rev !open_order);
  (* Process / thread naming metadata. *)
  List.iter
    (fun party ->
      let pname = if party < 0 then "global" else Printf.sprintf "party %d" party in
      add_json (meta_json ~party ~tid:None ~name:"process_name" ~value:pname))
    (List.rev !party_order);
  List.iter
    (fun (party, pid, tid) ->
      let tname = if pid = "" then "main" else pid in
      add_json (meta_json ~party ~tid:(Some tid) ~name:"thread_name" ~value:tname))
    (List.rev !tid_order);
  "{\"traceEvents\":[\n" ^ Buffer.contents body
  ^ "\n],\"displayTimeUnit\":\"ms\"}\n"
