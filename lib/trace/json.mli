(** A minimal JSON reader used to validate sink output (trace-check CLI,
    tests).  Parse-only; numbers become floats; objects keep field order. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

val parse : string -> (value, string) result
(** Parse one JSON document; [Error] carries a position-annotated reason. *)

val parse_lines : string -> (value list, string) result
(** Parse a JSONL document: one JSON value per non-empty line. *)

val member : string -> value -> value option
(** Object field lookup; [None] on missing field or non-object. *)

val str_opt : value -> string option
(** The string if the value is a [Str], else [None]. *)

val num_opt : value -> float option
(** The number if the value is a [Num], else [None]. *)

val list_opt : value -> value list option
(** The elements if the value is a [List], else [None]. *)
