(** The in-memory metrics registry: named counters and fixed-bucket latency
    histograms, queryable at the end of a run.  Enumeration is sorted by
    name, never by hashtable order, so reports are deterministic. *)

type t
type counter
type hist

val create : unit -> t
(** An empty registry. *)

val default_buckets : float array
(** Latency bucket upper bounds (seconds) spanning the paper's measurement
    range, from batch-mate deliveries to recovery epochs. *)

(** {2 Counters} *)

val counter : t -> string -> counter
(** Get or create.  @raise Invalid_argument if the name is a histogram. *)

val add : counter -> float -> unit
(** Add a (possibly negative) amount. *)

val inc : counter -> unit
(** [add c 1.0]. *)

val set : counter -> float -> unit
(** Overwrite the value (gauge-style use). *)

val value : counter -> float
(** The current value. *)

val counter_name : counter -> string
(** The registered name. *)

(** {2 Histograms} *)

val histogram : ?buckets:float array -> t -> string -> hist
(** Get or create a histogram with the given ascending bucket upper bounds
    (default {!default_buckets}) plus an implicit overflow bucket.
    @raise Invalid_argument if the name is a counter or bounds are not
    strictly ascending. *)

val observe : hist -> float -> unit
(** Record a value: it lands in the first bucket whose bound is >= value,
    or in the overflow bucket. *)

val hist_count : hist -> int
(** Observations recorded so far. *)

val hist_sum : hist -> float
(** Sum of all observed values. *)

val hist_mean : hist -> float
(** [hist_sum / hist_count]; 0 on an empty histogram. *)

val hist_name : hist -> string
(** The registered name. *)

val hist_buckets : hist -> (float * int) list
(** (upper bound, count) pairs; the overflow bucket reports [infinity]. *)

val hist_quantile : hist -> float -> float
(** Approximate quantile: the upper bound of the bucket holding the q-th
    observation.  Returns 0 on an empty histogram. *)

val merge_into : into:hist -> hist -> unit
(** Add [src]'s buckets into [into].
    @raise Invalid_argument if bucket bounds differ. *)

val publish_quantiles : t -> unit
(** For every histogram [h], set counters ["<h>/p50"], ["<h>/p90"] and
    ["<h>/p99"] to {!hist_quantile} at those ranks, so percentiles appear
    in plain counter dumps.  Idempotent. *)

(** {2 Deterministic enumeration} *)

val dump : t -> (string * float) list
(** All counters, sorted by name. *)

val hists : t -> hist list
(** All histograms, sorted by name. *)

val find_counter : t -> string -> counter option
(** Look up a counter without creating it. *)

val find_hist : t -> string -> hist option
(** Look up a histogram without creating it. *)

val to_json : t -> string
(** The whole registry as one deterministic JSON object. *)
