(* The structured trace-event model.

   Every record carries the virtual clock, the party (the Chrome "process")
   and the protocol instance pid (the Chrome "thread"), so a trace can be
   cut per party, per protocol, or per phase.  Records are plain data; the
   sinks decide how to render them.  Everything in a record is a pure
   function of the simulation seed — no wall-clock, no hashes of addresses —
   which is what makes traces byte-reproducible. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type phase =
  | Span_begin                    (* Chrome "B" *)
  | Span_end                      (* Chrome "E" *)
  | Instant                       (* Chrome "i" *)
  | Counter                       (* Chrome "C" *)
  | Flow_start                    (* Chrome "s": a causal edge leaves here *)
  | Flow_end                      (* Chrome "f": the edge lands here *)

type level = Info | Warn

type t = {
  time : float;                   (* virtual seconds *)
  party : int;                    (* 0-based party id; -1 for global records *)
  pid : string;                   (* protocol instance id; "" for party-level *)
  cat : string;                   (* taxonomy: bcast | aba | abc | opt | crypto | net | runtime *)
  name : string;
  ph : phase;
  level : level;
  args : (string * arg) list;
}

let make ?(level = Info) ?(args = []) ~time ~party ~pid ~cat ~ph name : t =
  { time; party; pid; cat; name; ph; level; args }

let phase_letter = function
  | Span_begin -> "B"
  | Span_end -> "E"
  | Instant -> "i"
  | Counter -> "C"
  | Flow_start -> "s"
  | Flow_end -> "f"

let phase_of_letter = function
  | "B" -> Some Span_begin
  | "E" -> Some Span_end
  | "i" -> Some Instant
  | "C" -> Some Counter
  | "s" -> Some Flow_start
  | "f" -> Some Flow_end
  | _ -> None

let level_name = function Info -> "info" | Warn -> "warn"

(* --- JSON rendering helpers shared by the sinks --- *)

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Deterministic float rendering: fixed-point with enough digits for
   nanosecond-resolution virtual time.  %.9f of a float is locale-free and
   reproducible, unlike %g across printf implementations. *)
let float_str (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9f" f

let arg_json = function
  | Int i -> string_of_int i
  | Float f -> float_str f
  | Str s -> "\"" ^ escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let args_json (args : (string * arg) list) : string =
  let b = Buffer.create 64 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b ("\"" ^ escape k ^ "\":" ^ arg_json v))
    args;
  Buffer.add_char b '}';
  Buffer.contents b
