(** A tracing context: the handle instrumentation sites hold.  Bundles the
    shared sink slot (a ref, so a sink can be installed after construction),
    the shared metrics registry, the virtual clock and the owning party.
    Every helper is a no-op costing one dereference when the sink is null. *)

type t

val create :
  sink:Sink.t ref -> metrics:Metrics.t -> now:(unit -> float) -> party:int ->
  t
(** A context reading the clock through [now] and recording as [party];
    [sink] is aliased, not copied, so installing a sink later is seen. *)

val null : unit -> t
(** A context that never records anything (private sink ref and registry). *)

val enabled : t -> bool
(** True when the sink is live.  Instrumentation sites with nontrivial
    argument building should test this first. *)

val metrics : t -> Metrics.t
(** The shared metrics registry this context records into. *)

val party : t -> int
(** The owning party's index. *)

val now : t -> float
(** The current virtual time, read through the context's clock. *)

val cause : t -> int
(** The flow id of the message currently being handled on this party, or
    -1 outside a handler.  Maintained by the network layer. *)

val set_cause : t -> int -> unit
(** Install (or, with -1, clear) the current causal flow id.  Every record
    subsequently emitted through this context carries a ["cause"] argument
    until the id is cleared, which is how protocol spans join the DAG. *)

val emit_at :
  t -> time:float -> pid:string -> cat:string -> ph:Event.phase ->
  ?level:Event.level -> ?args:(string * Event.arg) list -> string -> unit
(** Emit a record at an explicit virtual time (crypto spans are anchored at
    charged-cost offsets rather than the current clock). *)

val span_begin :
  t -> pid:string -> cat:string -> ?args:(string * Event.arg) list ->
  string -> unit
(** Open a duration span at the current time; pair with {!span_end}. *)

val span_end :
  t -> pid:string -> cat:string -> ?args:(string * Event.arg) list ->
  string -> unit
(** Close the innermost open span with the same name/pid. *)

val instant :
  t -> pid:string -> cat:string -> ?level:Event.level ->
  ?args:(string * Event.arg) list -> string -> unit
(** Emit a point-in-time event at the current clock. *)

(** {2 Metrics conveniences}

    Names are prefixed ["p<party>/"] so per-party tables fall out of a
    plain sorted dump. *)

val count : t -> string -> float -> unit
(** Add to the per-party counter [name] (created on first use). *)

val incr : t -> string -> unit
(** [count t name 1.0]. *)

val observe : t -> ?buckets:float array -> string -> float -> unit
(** Record one sample into the per-party histogram [name]; [buckets]
    (upper bounds) only takes effect when the histogram is created. *)

val gauge : t -> string -> float -> unit
(** Overwrite the per-party counter [name] with the current level of some
    quantity (a gauge), and keep its high-water mark in ["<name>/max"] —
    used e.g. for the verified-share cache size, whose bound is asserted
    after a run. *)
