(** A tracing context: the handle instrumentation sites hold.  Bundles the
    shared sink slot (a ref, so a sink can be installed after construction),
    the shared metrics registry, the virtual clock and the owning party.
    Every helper is a no-op costing one dereference when the sink is null. *)

type t

val create :
  sink:Sink.t ref -> metrics:Metrics.t -> now:(unit -> float) -> party:int ->
  t

val null : unit -> t
(** A context that never records anything (private sink ref and registry). *)

val enabled : t -> bool
(** True when the sink is live.  Instrumentation sites with nontrivial
    argument building should test this first. *)

val metrics : t -> Metrics.t
val party : t -> int
val now : t -> float

val emit_at :
  t -> time:float -> pid:string -> cat:string -> ph:Event.phase ->
  ?level:Event.level -> ?args:(string * Event.arg) list -> string -> unit
(** Emit a record at an explicit virtual time (crypto spans are anchored at
    charged-cost offsets rather than the current clock). *)

val span_begin :
  t -> pid:string -> cat:string -> ?args:(string * Event.arg) list ->
  string -> unit

val span_end :
  t -> pid:string -> cat:string -> ?args:(string * Event.arg) list ->
  string -> unit

val instant :
  t -> pid:string -> cat:string -> ?level:Event.level ->
  ?args:(string * Event.arg) list -> string -> unit

(** {2 Metrics conveniences}

    Names are prefixed ["p<party>/"] so per-party tables fall out of a
    plain sorted dump. *)

val count : t -> string -> float -> unit
val incr : t -> string -> unit
val observe : t -> ?buckets:float array -> string -> float -> unit
