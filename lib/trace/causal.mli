(** Causal-DAG reconstruction and critical-path latency attribution.

    The simulator stamps every message with a flow id and emits "msg"
    flow-start/flow-end events plus "xmit"/"recv" instants; handler-side
    records carry their triggering message's id in a ["cause"] argument.
    This module rebuilds the message DAG from such a stream and, for each
    payload delivered at its origin party, walks the parent chain of the
    delivery's triggering message, tiling the enqueue→deliver interval
    with named phases (pending, queue, transit, crypto, compute).  The
    remainder is reported explicitly as unattributed. *)

(** {2 Event ingestion} *)

val of_json : Json.value -> Event.t option
(** Convert one parsed JSONL trace record back into an {!Event.t};
    [None] when required fields are missing or the phase letter is
    unknown.  Integer-valued numbers become [Event.Int] arguments. *)

val of_jsonl : string -> (Event.t list, string) result
(** Parse a whole JSONL document and convert every well-formed record;
    [Error] carries the JSON parser's position-annotated reason. *)

(** {2 Attribution} *)

(** Wall-clock attribution buckets, in seconds of virtual time. *)
type phases = {
  mutable ph_pending : float;
      (** enqueue until the critical path's first send (batch queue wait) *)
  mutable ph_queue : float;
      (** arrival until handler dispatch (inbox wait behind the CPU) *)
  mutable ph_transit : float;  (** network latency (xmit → arrival) *)
  mutable ph_crypto : float;
      (** outermost crypto-charge spans inside handler execution *)
  mutable ph_compute : float;
      (** the rest of each send→xmit CPU window *)
}

val phases_zero : unit -> phases
(** A fresh all-zero bucket set. *)

val phases_sum : phases -> float
(** Total attributed seconds across the five buckets. *)

val phases_fields : phases -> (string * float) list
(** The buckets as (name, seconds) pairs in canonical order. *)

(** One delivered payload's critical-path attribution. *)
type payload = {
  p_party : int;  (** origin party (the payload's sender) *)
  p_seq : int;  (** per-party sequence number *)
  p_enqueue : float;  (** enqueue instant at the origin *)
  p_deliver : float;  (** delivery instant at the origin *)
  p_total : float;  (** [p_deliver - p_enqueue] *)
  p_hops : int;  (** messages on the reconstructed critical path *)
  p_phases : phases;  (** per-phase attribution *)
  p_stages : (string * float) list;
      (** per-protocol-stage hop wall time, descending *)
  p_unattributed : float;  (** seconds the chain does not cover *)
  p_coverage : float;  (** attributed / total; 1.0 when total is 0 *)
}

(** A whole-trace attribution report. *)
type report = {
  r_messages : int;  (** messages seen in the trace *)
  r_unmatched : int;  (** deliveries skipped for lack of an enqueue *)
  r_payloads : payload list;  (** per-payload attributions, trace order *)
  r_phases : phases;  (** summed per-phase attribution *)
  r_stages : (string * float) list;  (** summed stage times, descending *)
  r_total : float;  (** summed enqueue→deliver latency *)
  r_unattributed : float;  (** summed unattributed seconds *)
  r_coverage : float;  (** attributed / total over all payloads *)
}

val analyze : Event.t list -> report
(** Reconstruct the DAG and attribute every origin-party delivery.
    Deterministic: equal streams yield byte-equal rendered reports. *)

val min_coverage : report -> float
(** The worst per-payload coverage in the report; 1.0 with no payloads. *)

val validate : Event.t list -> string list
(** Causal well-formedness errors (empty when the stream is sound):
    every flow/cause id must reference an emitted message or load-submit
    root, parent edges must be monotone in id (which rules out cycles and
    self-edges), and each message's send ≤ xmit ≤ recv ≤ dispatch with
    children never sent before their parent.  At most 20 errors are
    listed, with a final count line when more were found. *)

(** {2 Rendering} *)

val report_text : report -> string
(** Human-readable attribution tables (phases, stages, per payload). *)

val report_json : report -> string
(** The report as one deterministic ["sintra-critical-path-v1"] JSON
    object. *)
