(* A tracing context: the handle instrumentation sites actually hold.

   It bundles the shared sink slot (a ref, so the CLI can install a sink
   after the cluster is built), the shared metrics registry, the virtual
   clock, and the owning party.  Every helper checks [enabled] first —
   when the sink is null, an instrumented call is a dereference, a match
   and a return, with no allocation. *)

type t = {
  sink : Sink.t ref;
  metrics : Metrics.t;
  now : unit -> float;
  party : int;
  (* The flow id of the message currently being handled on this party, or
     -1 outside a handler.  Set by the network layer around each dispatch;
     emit_at stamps it onto every record so protocol spans automatically
     carry the causal edge back to their triggering message. *)
  mutable cause : int;
}

let create ~(sink : Sink.t ref) ~(metrics : Metrics.t)
    ~(now : unit -> float) ~(party : int) : t =
  { sink; metrics; now; party; cause = -1 }

(* A context that never records anything; the default for components built
   without an engine attached (unit tests of single modules). *)
let null () : t =
  {
    sink = ref Sink.Null;
    metrics = Metrics.create ();
    now = (fun () -> 0.0);
    party = -1;
    cause = -1;
  }

let enabled (t : t) : bool = Sink.enabled !(t.sink)
let metrics (t : t) : Metrics.t = t.metrics
let party (t : t) : int = t.party
let now (t : t) : float = t.now ()
let cause (t : t) : int = t.cause
let set_cause (t : t) (id : int) : unit = t.cause <- id

let emit_at (t : t) ~(time : float) ~(pid : string) ~(cat : string)
    ~(ph : Event.phase) ?(level = Event.Info) ?(args = []) (name : string) :
    unit =
  match !(t.sink) with
  | Sink.Null -> ()
  | Sink.Fn f ->
    let args =
      if t.cause >= 0 then args @ [ ("cause", Event.Int t.cause) ] else args
    in
    f (Event.make ~level ~args ~time ~party:t.party ~pid ~cat ~ph name)

let span_begin (t : t) ~(pid : string) ~(cat : string) ?(args = [])
    (name : string) : unit =
  emit_at t ~time:(t.now ()) ~pid ~cat ~ph:Event.Span_begin ~args name

let span_end (t : t) ~(pid : string) ~(cat : string) ?(args = [])
    (name : string) : unit =
  emit_at t ~time:(t.now ()) ~pid ~cat ~ph:Event.Span_end ~args name

let instant (t : t) ~(pid : string) ~(cat : string) ?(level = Event.Info)
    ?(args = []) (name : string) : unit =
  emit_at t ~time:(t.now ()) ~pid ~cat ~ph:Event.Instant ~level ~args name

(* Metrics conveniences, prefixed with the owning party so per-party tables
   fall out of a plain sorted dump. *)

let scoped (t : t) (name : string) : string =
  if t.party < 0 then name else Printf.sprintf "p%d/%s" t.party name

let count (t : t) (name : string) (v : float) : unit =
  Metrics.add (Metrics.counter t.metrics (scoped t name)) v

let incr (t : t) (name : string) : unit = count t name 1.0

let observe (t : t) ?buckets (name : string) (v : float) : unit =
  Metrics.observe (Metrics.histogram ?buckets t.metrics (scoped t name)) v

(* A gauge is a counter written with [set] instead of [add]; the high-water
   mark is published alongside as "<name>/max" so bounded-memory claims
   (e.g. the verified-share cache) can be checked after a run. *)
let gauge (t : t) (name : string) (v : float) : unit =
  Metrics.set (Metrics.counter t.metrics (scoped t name)) v;
  let peak = Metrics.counter t.metrics (scoped t (name ^ "/max")) in
  if v > Metrics.value peak then Metrics.set peak v
