(* Causal-DAG reconstruction and critical-path latency attribution.

   The simulator stamps every message with a flow id at send time and
   records four per-message events: "msg" Flow_start (at the sender, with
   the parent edge in its "cause" arg), an "xmit" instant when the bytes
   leave the sender's virtual CPU, a "recv" instant when they arrive at the
   destination, and a "msg" Flow_end when the runtime dispatches them to a
   protocol handler (whose pid names the stage).  Handler-side records —
   crypto spans, protocol instants, further sends — carry the triggering
   message's id in their "cause" arg.

   From those events this module rebuilds the message DAG and, for every
   payload delivered at its origin party, walks the parent chain backwards
   from the delivery's triggering message.  Because the virtual clock is
   frozen while a handler runs, dispatch(parent) == send(child), so the
   chain tiles the enqueue→deliver interval with named segments:

     pending  — enqueue until the chain's first send (batch queue wait)
     queue    — arrival until handler dispatch (inbox wait behind the CPU)
     transit  — network latency between xmit and arrival
     crypto   — outermost crypto-charge span time inside handler execution
     compute  — the rest of each send→xmit CPU window

   Whatever the chain does not cover is reported explicitly as
   "unattributed" — the acceptance bar is that it stays under 5%.

   Determinism: Hashtbls here are lookup-only; every enumeration walks an
   insertion-order list, so reports are byte-stable for a given trace. *)

let eps = 1e-9

(* --- normalized access to event args --- *)

let int_arg (args : (string * Event.arg) list) (k : string) : int option =
  match List.assoc_opt k args with
  | Some (Event.Int i) -> Some i
  | Some (Event.Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let float_arg (args : (string * Event.arg) list) (k : string) : float option =
  match List.assoc_opt k args with
  | Some (Event.Float f) -> Some f
  | Some (Event.Int i) -> Some (float_of_int i)
  | _ -> None

(* --- JSONL record -> Event.t --- *)

let arg_of_json (v : Json.value) : Event.arg option =
  match v with
  | Json.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Some (Event.Int (int_of_float f))
    else Some (Event.Float f)
  | Json.Str s -> Some (Event.Str s)
  | Json.Bool b -> Some (Event.Bool b)
  | Json.Null | Json.List _ | Json.Obj _ -> None

let of_json (v : Json.value) : Event.t option =
  let str k = Option.bind (Json.member k v) Json.str_opt in
  let num k = Option.bind (Json.member k v) Json.num_opt in
  match num "t", str "pid", str "cat", str "ph", str "name" with
  | Some time, Some pid, Some cat, Some ph, Some name ->
    (match Event.phase_of_letter ph with
    | None -> None
    | Some ph ->
      let party =
        match num "party" with Some p -> int_of_float p | None -> -1
      in
      let level =
        match str "level" with Some "warn" -> Event.Warn | _ -> Event.Info
      in
      let args =
        match Json.member "args" v with
        | Some (Json.Obj fields) ->
          List.filter_map
            (fun (k, v) ->
              match arg_of_json v with Some a -> Some (k, a) | None -> None)
            fields
        | _ -> []
      in
      Some (Event.make ~level ~args ~time ~party ~pid ~cat ~ph name))
  | _ -> None

let of_jsonl (s : string) : (Event.t list, string) result =
  match Json.parse_lines s with
  | Error e -> Error e
  | Ok vs -> Ok (List.filter_map of_json vs)

(* --- the reconstructed DAG --- *)

type msg = {
  m_parent : int;                   (* flow id of the cause, or -1 *)
  m_send : float;
  mutable m_xmit : float;           (* nan until seen *)
  mutable m_recv : float;
  mutable m_disp : float;
  mutable m_disp_pid : string;      (* envelope pid at dispatch *)
  mutable m_kind : string;          (* decoded message kind ("echo", ...) *)
}

type dag = {
  msgs : (int, msg) Hashtbl.t;
  mutable msg_order : int list;     (* reverse first-seen order *)
  mutable n_msgs : int;
  roots : (int, float) Hashtbl.t;   (* load "submit" instants: id -> time *)
  crypto_ms : (int, float) Hashtbl.t;  (* cause id -> outermost crypto ms *)
  enqueues : (int * int, float) Hashtbl.t;  (* (party, seq) -> time *)
  mutable delivers : (int * int * float * int) list;
      (* origin-party deliveries, reverse order: party, seq, time, cause *)
}

let seen (f : float) : bool = not (Float.is_nan f)

let find_msg (d : dag) (id : int) : msg option = Hashtbl.find_opt d.msgs id

let build (events : Event.t list) : dag =
  let d =
    {
      msgs = Hashtbl.create 1024;
      msg_order = [];
      n_msgs = 0;
      roots = Hashtbl.create 64;
      crypto_ms = Hashtbl.create 256;
      enqueues = Hashtbl.create 256;
      delivers = [];
    }
  in
  (* Per-party crypto span nesting depth, to sum only outermost spans
     (tsig verification nests the per-share RSA checks inside one span). *)
  let depth : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (ev : Event.t) ->
      match ev.Event.ph with
      | Event.Flow_start when ev.Event.name = "msg" -> (
        match int_arg ev.Event.args "id" with
        | Some id when not (Hashtbl.mem d.msgs id) ->
          let parent =
            match int_arg ev.Event.args "cause" with Some c -> c | None -> -1
          in
          let m =
            {
              m_parent = parent;
              m_send = ev.Event.time;
              m_xmit = Float.nan;
              m_recv = Float.nan;
              m_disp = Float.nan;
              m_disp_pid = "";
              m_kind = "";
            }
          in
          Hashtbl.replace d.msgs id m;
          d.msg_order <- id :: d.msg_order;
          d.n_msgs <- d.n_msgs + 1
        | Some _ | None -> ())
      | Event.Flow_end when ev.Event.name = "msg" -> (
        match Option.bind (int_arg ev.Event.args "id") (find_msg d) with
        | Some m when not (seen m.m_disp) ->
          m.m_disp <- ev.Event.time;
          m.m_disp_pid <- ev.Event.pid
        | Some _ | None -> ())
      | Event.Instant -> (
        match ev.Event.name with
        | "xmit" when ev.Event.cat = "net" -> (
          match Option.bind (int_arg ev.Event.args "id") (find_msg d) with
          | Some m when not (seen m.m_xmit) -> m.m_xmit <- ev.Event.time
          | Some _ | None -> ())
        | "recv" when ev.Event.cat = "net" -> (
          match Option.bind (int_arg ev.Event.args "id") (find_msg d) with
          | Some m when not (seen m.m_recv) -> m.m_recv <- ev.Event.time
          | Some _ | None -> ())
        | "submit" when ev.Event.cat = "load" -> (
          match int_arg ev.Event.args "id" with
          | Some id when not (Hashtbl.mem d.roots id) ->
            Hashtbl.replace d.roots id ev.Event.time
          | Some _ | None -> ())
        | "enqueue" when ev.Event.cat = "abc" -> (
          match int_arg ev.Event.args "seq" with
          | Some seq ->
            let key = (ev.Event.party, seq) in
            if not (Hashtbl.mem d.enqueues key) then
              Hashtbl.replace d.enqueues key ev.Event.time
          | None -> ())
        | "deliver" when ev.Event.cat = "abc" -> (
          match
            (int_arg ev.Event.args "sender", int_arg ev.Event.args "seq")
          with
          | Some sender, Some seq when sender = ev.Event.party ->
            let cause =
              match int_arg ev.Event.args "cause" with
              | Some c -> c
              | None -> -1
            in
            d.delivers <- (sender, seq, ev.Event.time, cause) :: d.delivers
          | _, _ -> ())
        | name
          when String.length name > 2
               && String.sub name 0 2 = "h." -> (
          match Option.bind (int_arg ev.Event.args "cause") (find_msg d) with
          | Some m when m.m_kind = "" ->
            m.m_kind <- String.sub name 2 (String.length name - 2)
          | Some _ | None -> ())
        | _ -> ())
      | Event.Span_begin when ev.Event.cat = "crypto" ->
        let p = ev.Event.party in
        let n = match Hashtbl.find_opt depth p with Some n -> n | None -> 0 in
        Hashtbl.replace depth p (n + 1)
      | Event.Span_end when ev.Event.cat = "crypto" -> (
        let p = ev.Event.party in
        let n = match Hashtbl.find_opt depth p with Some n -> n | None -> 0 in
        Hashtbl.replace depth p (max 0 (n - 1));
        if n = 1 then
          match
            (float_arg ev.Event.args "ms", int_arg ev.Event.args "cause")
          with
          | Some ms, Some c when c >= 0 ->
            let prev =
              match Hashtbl.find_opt d.crypto_ms c with
              | Some x -> x
              | None -> 0.0
            in
            Hashtbl.replace d.crypto_ms c (prev +. ms)
          | _, _ -> ())
      | Event.Flow_start | Event.Flow_end | Event.Span_begin | Event.Span_end
      | Event.Counter ->
        ())
    events;
  d

(* --- stage naming --- *)

let has_prefix (p : string) (s : string) : bool =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Protocol family from an envelope pid: the last '/'-separated segment
   follows the instance naming convention ("mv.3", "ba.7", "p.2", "e.4.1",
   "rec.2", or the base channel pid). *)
let family_of_pid (pid : string) : string =
  let seg =
    match String.rindex_opt pid '/' with
    | Some i -> String.sub pid (i + 1) (String.length pid - i - 1)
    | None -> pid
  in
  if has_prefix "mv." seg then "mvba"
  else if has_prefix "ba." seg then "aba"
  else if has_prefix "p." seg then "vcbc"
  else if has_prefix "e." seg then "opt"
  else if has_prefix "rec." seg then "recovery"
  else "abc"

let stage_of (m : msg) : string =
  let fam = family_of_pid m.m_disp_pid in
  if m.m_kind = "" then fam else fam ^ "." ^ m.m_kind

(* --- attribution --- *)

type phases = {
  mutable ph_pending : float;
  mutable ph_queue : float;
  mutable ph_transit : float;
  mutable ph_crypto : float;
  mutable ph_compute : float;
}

let phases_zero () : phases =
  {
    ph_pending = 0.0;
    ph_queue = 0.0;
    ph_transit = 0.0;
    ph_crypto = 0.0;
    ph_compute = 0.0;
  }

let phases_sum (p : phases) : float =
  p.ph_pending +. p.ph_queue +. p.ph_transit +. p.ph_crypto +. p.ph_compute

let phases_fields (p : phases) : (string * float) list =
  [
    ("pending", p.ph_pending);
    ("queue", p.ph_queue);
    ("transit", p.ph_transit);
    ("crypto", p.ph_crypto);
    ("compute", p.ph_compute);
  ]

type payload = {
  p_party : int;
  p_seq : int;
  p_enqueue : float;
  p_deliver : float;
  p_total : float;
  p_hops : int;
  p_phases : phases;
  p_stages : (string * float) list;   (* descending time, then name *)
  p_unattributed : float;
  p_coverage : float;                 (* attributed / total; 1.0 if total=0 *)
}

type report = {
  r_messages : int;
  r_unmatched : int;                  (* deliveries without an enqueue *)
  r_payloads : payload list;
  r_phases : phases;
  r_stages : (string * float) list;
  r_total : float;
  r_unattributed : float;
  r_coverage : float;
}

let sort_stages (l : (string * float) list) : (string * float) list =
  List.sort
    (fun (n1, v1) (n2, v2) ->
      match compare v2 v1 with 0 -> compare n1 n2 | c -> c)
    l

let add_stage (acc : (string * float) list ref) (name : string) (v : float) :
    unit =
  if v > 0.0 then
    match List.assoc_opt name !acc with
    | Some prev -> acc := (name, prev +. v) :: List.remove_assoc name !acc
    | None -> acc := (name, v) :: !acc

(* Walk the parent chain of the delivery-triggering message and tile
   [t0, td] with attributed segments. *)
let attribute (d : dag) ~(party : int) ~(seq : int) ~(t0 : float)
    ~(td : float) ~(trigger : int) : payload =
  let total = td -. t0 in
  let ph = phases_zero () in
  let stages : (string * float) list ref = ref [] in
  let hops = ref 0 in
  let chain_min = ref td in
  let clip lo hi = (max lo t0, min hi td) in
  let seg lo hi (bump : float -> unit) (stage : string option) : unit =
    if seen lo && seen hi then begin
      let lo, hi = clip lo hi in
      if hi > lo then begin
        bump (hi -. lo);
        match stage with Some s -> add_stage stages s (hi -. lo) | None -> ()
      end
    end
  in
  let cur = ref trigger in
  let continue = ref true in
  while !continue && !cur >= 0 do
    match find_msg d !cur with
    | None -> continue := false
    | Some m ->
      incr hops;
      if max m.m_send t0 < !chain_min then chain_min := max m.m_send t0;
      let stage = stage_of m in
      (* CPU window [send, xmit]: crypto charged during the parent's
         dispatch (cause = m_parent) occupies part of it. *)
      (if seen m.m_xmit then begin
         let lo, hi = clip m.m_send m.m_xmit in
         if hi > lo then begin
           let width = hi -. lo in
           let cry =
             if m.m_parent >= 0 then
               match Hashtbl.find_opt d.crypto_ms m.m_parent with
               | Some ms -> Float.min (ms /. 1000.0) width
               | None -> 0.0
             else 0.0
           in
           ph.ph_crypto <- ph.ph_crypto +. cry;
           ph.ph_compute <- ph.ph_compute +. (width -. cry);
           add_stage stages stage width
         end
       end);
      seg m.m_xmit m.m_recv
        (fun w -> ph.ph_transit <- ph.ph_transit +. w)
        (Some stage);
      seg m.m_recv m.m_disp
        (fun w -> ph.ph_queue <- ph.ph_queue +. w)
        (Some stage);
      if m.m_parent >= !cur then continue := false  (* malformed: stop *)
      else if m.m_send <= t0 then continue := false (* chain precedes enqueue *)
      else cur := m.m_parent
  done;
  if !hops > 0 && !chain_min > t0 then ph.ph_pending <- !chain_min -. t0;
  let attributed = phases_sum ph in
  let unattributed = Float.max 0.0 (total -. attributed) in
  let coverage =
    if total <= eps then 1.0 else Float.min 1.0 (attributed /. total)
  in
  {
    p_party = party;
    p_seq = seq;
    p_enqueue = t0;
    p_deliver = td;
    p_total = total;
    p_hops = !hops;
    p_phases = ph;
    p_stages = sort_stages !stages;
    p_unattributed = unattributed;
    p_coverage = coverage;
  }

let analyze (events : Event.t list) : report =
  let d = build events in
  let payloads = ref [] in
  let unmatched = ref 0 in
  List.iter
    (fun (party, seq, td, cause) ->
      match Hashtbl.find_opt d.enqueues (party, seq) with
      | None -> incr unmatched
      | Some t0 ->
        payloads :=
          attribute d ~party ~seq ~t0 ~td ~trigger:cause :: !payloads)
    (List.rev d.delivers);
  let payloads = List.rev !payloads in
  let tot = phases_zero () in
  let stages = ref [] in
  let total = ref 0.0 in
  let unattr = ref 0.0 in
  List.iter
    (fun p ->
      tot.ph_pending <- tot.ph_pending +. p.p_phases.ph_pending;
      tot.ph_queue <- tot.ph_queue +. p.p_phases.ph_queue;
      tot.ph_transit <- tot.ph_transit +. p.p_phases.ph_transit;
      tot.ph_crypto <- tot.ph_crypto +. p.p_phases.ph_crypto;
      tot.ph_compute <- tot.ph_compute +. p.p_phases.ph_compute;
      List.iter (fun (n, v) -> add_stage stages n v) p.p_stages;
      total := !total +. p.p_total;
      unattr := !unattr +. p.p_unattributed)
    payloads;
  {
    r_messages = d.n_msgs;
    r_unmatched = !unmatched;
    r_payloads = payloads;
    r_phases = tot;
    r_stages = sort_stages !stages;
    r_total = !total;
    r_unattributed = !unattr;
    r_coverage =
      (if !total <= eps then 1.0
       else Float.min 1.0 ((!total -. !unattr) /. !total));
  }

let min_coverage (r : report) : float =
  List.fold_left (fun acc p -> Float.min acc p.p_coverage) 1.0 r.r_payloads

(* --- causal well-formedness --- *)

let validate (events : Event.t list) : string list =
  let errors = ref [] in
  let n_errors = ref 0 in
  let err fmt =
    Printf.ksprintf
      (fun s ->
        incr n_errors;
        if !n_errors <= 20 then errors := s :: !errors)
      fmt
  in
  (* Pass 1: which flow ids exist (messages and load-submit roots)? *)
  let defined : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (ev : Event.t) ->
      let id_def () =
        match int_arg ev.Event.args "id" with
        | Some id ->
          if Hashtbl.mem defined id then err "duplicate flow id %d" id
          else Hashtbl.replace defined id ()
        | None -> err "%s event without an id arg" ev.Event.name
      in
      match ev.Event.ph with
      | Event.Flow_start when ev.Event.name = "msg" -> id_def ()
      | Event.Instant
        when ev.Event.name = "submit" && ev.Event.cat = "load" ->
        id_def ()
      | _ -> ())
    events;
  (* Pass 2: every reference resolves; parent edges are monotone (hence the
     graph is acyclic and free of self-loops). *)
  List.iter
    (fun (ev : Event.t) ->
      (match int_arg ev.Event.args "cause" with
      | Some c when c >= 0 && not (Hashtbl.mem defined c) ->
        err "%s@%s references unknown cause %d" ev.Event.name
          (Event.float_str ev.Event.time) c
      | Some _ | None -> ());
      match ev.Event.ph with
      | Event.Flow_start when ev.Event.name = "msg" -> (
        match (int_arg ev.Event.args "id", int_arg ev.Event.args "cause") with
        | Some id, Some c when c >= id ->
          err "flow %d has non-monotone parent %d (cycle or self-edge)" id c
        | _, _ -> ())
      | Event.Flow_end when ev.Event.name = "msg" -> (
        match int_arg ev.Event.args "id" with
        | Some id when not (Hashtbl.mem defined id) ->
          err "flow end for unknown id %d" id
        | Some _ -> ()
        | None -> err "flow end without an id arg")
      | Event.Instant
        when (ev.Event.name = "xmit" || ev.Event.name = "recv")
             && ev.Event.cat = "net" -> (
        match int_arg ev.Event.args "id" with
        | Some id when not (Hashtbl.mem defined id) ->
          err "%s for unknown id %d" ev.Event.name id
        | Some _ -> ()
        | None -> err "%s without an id arg" ev.Event.name)
      | _ -> ())
    events;
  (* Pass 3: per-message and parent-edge virtual-time order. *)
  let d = build events in
  List.iter
    (fun id ->
      match find_msg d id with
      | None -> ()
      | Some m ->
        let check lo hi what =
          if seen lo && seen hi && hi < lo -. eps then
            err "flow %d: %s (%s < %s)" id what (Event.float_str hi)
              (Event.float_str lo)
        in
        check m.m_send m.m_xmit "departs before send";
        check m.m_xmit m.m_recv "arrives before departure";
        check m.m_recv m.m_disp "dispatched before arrival";
        if m.m_parent >= 0 then begin
          match find_msg d m.m_parent with
          | Some parent ->
            if m.m_send < parent.m_send -. eps then
              err "flow %d sent before its parent %d" id m.m_parent;
            if seen parent.m_disp && m.m_send < parent.m_disp -. eps then
              err "flow %d sent before its parent %d was dispatched" id
                m.m_parent
          | None -> (
            match Hashtbl.find_opt d.roots m.m_parent with
            | Some t when m.m_send < t -. eps ->
              err "flow %d sent before its root submit %d" id m.m_parent
            | Some _ | None -> ())
        end)
    (List.rev d.msg_order);
  let tail =
    if !n_errors > 20 then [ Printf.sprintf "(+%d more)" (!n_errors - 20) ]
    else []
  in
  List.rev !errors @ tail

(* --- rendering --- *)

let pct (part : float) (total : float) : string =
  if total <= eps then "  0.0%"
  else Printf.sprintf "%5.1f%%" (100.0 *. part /. total)

let report_text (r : report) : string =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "critical path: %d message(s), %d delivered payload(s)%s\n"
    r.r_messages
    (List.length r.r_payloads)
    (if r.r_unmatched > 0 then
       Printf.sprintf " (%d without enqueue, skipped)" r.r_unmatched
     else "");
  Printf.bprintf b
    "total enqueue->deliver latency %.6f s, attributed %.1f%% \
     (unattributed %.6f s)\n"
    r.r_total
    (100.0 *. r.r_coverage)
    r.r_unattributed;
  Buffer.add_string b "phases:\n";
  List.iter
    (fun (name, v) ->
      Printf.bprintf b "  %-8s %12.6f s  %s\n" name v (pct v r.r_total))
    (phases_fields r.r_phases);
  Printf.bprintf b "  %-8s %12.6f s  %s\n" "(none)" r.r_unattributed
    (pct r.r_unattributed r.r_total);
  Buffer.add_string b "stages (hop wall time on the critical path):\n";
  List.iter
    (fun (name, v) ->
      Printf.bprintf b "  %-16s %12.6f s  %s\n" name v (pct v r.r_total))
    r.r_stages;
  Buffer.add_string b "per payload:\n";
  List.iter
    (fun p ->
      Printf.bprintf b
        "  p%d seq %-4d total %9.6f s  hops %-3d coverage %5.1f%%  \
         pending %.6f queue %.6f transit %.6f crypto %.6f compute %.6f\n"
        p.p_party p.p_seq p.p_total p.p_hops
        (100.0 *. p.p_coverage)
        p.p_phases.ph_pending p.p_phases.ph_queue p.p_phases.ph_transit
        p.p_phases.ph_crypto p.p_phases.ph_compute)
    r.r_payloads;
  Buffer.contents b

let phases_json (p : phases) : string =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":%s" k (Event.float_str v))
         (phases_fields p))
  ^ "}"

let stages_json (l : (string * float) list) : string =
  "["
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "[\"%s\",%s]" (Event.escape k) (Event.float_str v))
         l)
  ^ "]"

let report_json (r : report) : string =
  let b = Buffer.create 2048 in
  Printf.bprintf b
    "{\"format\":\"sintra-critical-path-v1\",\"messages\":%d,\
     \"payloads\":%d,\"unmatched\":%d,\"total_s\":%s,\
     \"unattributed_s\":%s,\"coverage\":%s,\"phases_s\":%s,\"stages_s\":%s,\
     \"per_payload\":["
    r.r_messages
    (List.length r.r_payloads)
    r.r_unmatched
    (Event.float_str r.r_total)
    (Event.float_str r.r_unattributed)
    (Event.float_str r.r_coverage)
    (phases_json r.r_phases)
    (stages_json r.r_stages);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"party\":%d,\"seq\":%d,\"enqueue_s\":%s,\"deliver_s\":%s,\
         \"total_s\":%s,\"hops\":%d,\"coverage\":%s,\"phases_s\":%s,\
         \"unattributed_s\":%s,\"stages_s\":%s}"
        p.p_party p.p_seq
        (Event.float_str p.p_enqueue)
        (Event.float_str p.p_deliver)
        (Event.float_str p.p_total)
        p.p_hops
        (Event.float_str p.p_coverage)
        (phases_json p.p_phases)
        (Event.float_str p.p_unattributed)
        (stages_json p.p_stages))
    r.r_payloads;
  Buffer.add_string b "]}";
  Buffer.contents b
