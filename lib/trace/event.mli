(** The structured trace-event model: one record per observation, carrying
    the virtual clock, the party (Chrome "process") and the protocol
    instance pid (Chrome "thread").  Records are pure functions of the
    simulation seed, which is what makes traces byte-reproducible. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type phase =
  | Span_begin                    (** Chrome "B" *)
  | Span_end                      (** Chrome "E" *)
  | Instant                       (** Chrome "i" *)
  | Counter                       (** Chrome "C" *)
  | Flow_start                    (** Chrome "s": a causal edge leaves here *)
  | Flow_end                      (** Chrome "f": the edge lands here *)

type level = Info | Warn

type t = {
  time : float;                   (** virtual seconds *)
  party : int;                    (** 0-based party id; -1 for global records *)
  pid : string;                   (** protocol instance id; "" for party-level *)
  cat : string;                   (** bcast | aba | abc | opt | crypto | net | runtime *)
  name : string;
  ph : phase;
  level : level;
  args : (string * arg) list;
}

val make :
  ?level:level -> ?args:(string * arg) list -> time:float -> party:int ->
  pid:string -> cat:string -> ph:phase -> string -> t
(** Build a record; [level] defaults to [Info], [args] to []. *)

val phase_letter : phase -> string
(** The Chrome trace-event phase letter ("B", "E", "i", "C", "s" or "f"). *)

val phase_of_letter : string -> phase option
(** The inverse of {!phase_letter}; [None] on an unknown letter. *)

val level_name : level -> string
(** ["info"] or ["warn"]. *)

val escape : string -> string
(** JSON string escaping (quotes not included). *)

val float_str : float -> string
(** Deterministic fixed-point float rendering used by every sink. *)

val arg_json : arg -> string
(** One argument value as JSON. *)

val args_json : (string * arg) list -> string
(** An argument list as one JSON object (field order preserved). *)
