(* A minimal JSON reader, used by the trace-check CLI and the tests to
   validate that the sinks emit well-formed JSON.  Parse-only: numbers
   become floats, objects keep field order.  No dependencies, no partial
   stdlib functions — errors come back as [Error msg]. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

exception Fail of string

type state = { src : string; mutable pos : int }

let fail (st : state) (msg : string) : 'a =
  raise (Fail (Printf.sprintf "%s at offset %d" msg st.pos))

let peek (st : state) : char option =
  if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance (st : state) : unit = st.pos <- st.pos + 1

let skip_ws (st : state) : unit =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | Some _ | None -> continue := false
  done

let expect (st : state) (c : char) : unit =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %c, got %c" c c')
  | None -> fail st (Printf.sprintf "expected %c, got end of input" c)

let literal (st : state) (word : string) (v : value) : value =
  let n = String.length word in
  if st.pos + n <= String.length st.src
     && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st ("expected " ^ word)

let parse_string_body (st : state) : string =
  let b = Buffer.create 16 in
  let finished = ref false in
  while not !finished do
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st; finished := true
    | Some '\\' -> begin
      advance st;
      match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if st.pos + 4 > String.length st.src then
            fail st "truncated \\u escape";
          let hex = String.sub st.src st.pos 4 in
          st.pos <- st.pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | None -> fail st "bad \\u escape"
          | Some code ->
            (* Keep it simple: only BMP code points, encoded as UTF-8. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end)
        | c -> fail st (Printf.sprintf "bad escape \\%c" c))
    end
    | Some c -> advance st; Buffer.add_char b c
  done;
  Buffer.contents b

let parse_number (st : state) : float =
  let start = st.pos in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> advance st
    | Some _ | None -> continue := false
  done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail st ("bad number " ^ text)

let rec parse_value (st : state) : value =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> advance st; Str (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '{' -> advance st; parse_obj st
  | Some '[' -> advance st; parse_list st
  | Some ('0' .. '9' | '-') -> Num (parse_number st)
  | Some c -> fail st (Printf.sprintf "unexpected %c" c)

and parse_obj (st : state) : value =
  skip_ws st;
  match peek st with
  | Some '}' -> advance st; Obj []
  | _ ->
    let fields = ref [] in
    let continue = ref true in
    while !continue do
      skip_ws st;
      expect st '"';
      let key = parse_string_body st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      fields := (key, v) :: !fields;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st
      | Some '}' -> advance st; continue := false
      | _ -> fail st "expected , or } in object"
    done;
    Obj (List.rev !fields)

and parse_list (st : state) : value =
  skip_ws st;
  match peek st with
  | Some ']' -> advance st; List []
  | _ ->
    let items = ref [] in
    let continue = ref true in
    while !continue do
      let v = parse_value st in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st
      | Some ']' -> advance st; continue := false
      | _ -> fail st "expected , or ] in array"
    done;
    List (List.rev !items)

let parse (s : string) : (value, string) result =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    (match peek st with
    | Some _ -> fail st "trailing content"
    | None -> ());
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* Parse a JSONL document: one JSON value per non-empty line. *)
let parse_lines (s : string) : (value list, string) result =
  let lines = String.split_on_char '\n' s in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go acc (lineno + 1) rest
      else (
        match parse line with
        | Ok v -> go (v :: acc) (lineno + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 lines

(* --- accessors --- *)

let member (key : string) (v : value) : value option =
  match v with
  | Obj fields ->
    (match List.find_opt (fun (k, _) -> String.equal k key) fields with
    | Some (_, v) -> Some v
    | None -> None)
  | _ -> None

let str_opt (v : value) : string option =
  match v with Str s -> Some s | _ -> None

let num_opt (v : value) : float option =
  match v with Num f -> Some f | _ -> None

let list_opt (v : value) : value list option =
  match v with List l -> Some l | _ -> None
