(* The in-memory metrics registry: named counters and fixed-bucket latency
   histograms, queryable at the end of a run.

   The registry is deliberately dumb — get-or-create by name, float adds,
   integer bucket counts — so the always-on cost of a metric update is a
   hashtable probe and a mutation.  Enumeration never touches hashtable
   order: an insertion-order list is kept on the side and [dump]/[hists]
   sort by name, so reports are deterministic. *)

type counter = {
  c_name : string;
  mutable c_value : float;
}

type hist = {
  h_name : string;
  bounds : float array;           (* ascending inclusive upper bounds *)
  counts : int array;             (* length bounds + 1; last = overflow *)
  mutable h_sum : float;
  mutable h_count : int;
}

type item = C of counter | H of hist

type t = {
  tbl : (string, item) Hashtbl.t;
  mutable names : string list;    (* insertion order, newest first *)
}

let create () : t = { tbl = Hashtbl.create 64; names = [] }

(* Latency buckets (seconds) matching the paper's measurement range: the
   0-second batch-mate band, sub-second LAN rounds, multi-second Internet
   rounds, and a tail for recovery epochs. *)
let default_buckets =
  [| 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0; 2.0; 3.0; 5.0; 10.0; 30.0 |]

let counter (t : t) (name : string) : counter =
  match Hashtbl.find_opt t.tbl name with
  | Some (C c) -> c
  | Some (H _) -> invalid_arg ("Metrics.counter: " ^ name ^ " is a histogram")
  | None ->
    let c = { c_name = name; c_value = 0.0 } in
    Hashtbl.replace t.tbl name (C c);
    t.names <- name :: t.names;
    c

let add (c : counter) (v : float) : unit = c.c_value <- c.c_value +. v
let inc (c : counter) : unit = add c 1.0
let set (c : counter) (v : float) : unit = c.c_value <- v
let value (c : counter) : float = c.c_value
let counter_name (c : counter) : string = c.c_name

let make_hist ?(buckets = default_buckets) (name : string) : hist =
  let ok = ref (Array.length buckets > 0) in
  Array.iteri
    (fun i b -> if i > 0 && b <= buckets.(i - 1) then ok := false)
    buckets;
  if not !ok then invalid_arg "Metrics.histogram: bounds must be ascending";
  {
    h_name = name;
    bounds = Array.copy buckets;
    counts = Array.make (Array.length buckets + 1) 0;
    h_sum = 0.0;
    h_count = 0;
  }

let histogram ?buckets (t : t) (name : string) : hist =
  match Hashtbl.find_opt t.tbl name with
  | Some (H h) -> h
  | Some (C _) -> invalid_arg ("Metrics.histogram: " ^ name ^ " is a counter")
  | None ->
    let h = make_hist ?buckets name in
    Hashtbl.replace t.tbl name (H h);
    t.names <- name :: t.names;
    h

(* Bucket of [v]: the first bound with v <= bound, else the overflow slot. *)
let bucket_index (h : hist) (v : float) : int =
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do incr i done;
  !i

let observe (h : hist) (v : float) : unit =
  let i = bucket_index h v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let hist_count (h : hist) : int = h.h_count
let hist_sum (h : hist) : float = h.h_sum
let hist_mean (h : hist) : float =
  if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count
let hist_name (h : hist) : string = h.h_name

(* (upper bound, count) pairs; the overflow bucket reports [infinity]. *)
let hist_buckets (h : hist) : (float * int) list =
  List.init
    (Array.length h.counts)
    (fun i ->
      let bound =
        if i < Array.length h.bounds then h.bounds.(i) else infinity
      in
      (bound, h.counts.(i)))

(* Approximate quantile from bucket counts: the upper bound of the bucket in
   which the q-th observation falls (overflow reports the largest bound). *)
let hist_quantile (h : hist) (q : float) : float =
  if h.h_count = 0 then 0.0
  else begin
    let target =
      let r = int_of_float (Float.of_int h.h_count *. q) in
      if r >= h.h_count then h.h_count - 1 else if r < 0 then 0 else r
    in
    let acc = ref 0 and found = ref (-1) in
    Array.iteri
      (fun i c ->
        if !found < 0 then begin
          acc := !acc + c;
          if !acc > target then found := i
        end)
      h.counts;
    let i = if !found < 0 then Array.length h.counts - 1 else !found in
    if i < Array.length h.bounds then h.bounds.(i)
    else h.bounds.(Array.length h.bounds - 1)
  end

let merge_into ~(into : hist) (src : hist) : unit =
  if Array.length into.bounds <> Array.length src.bounds
     || not (Array.for_all2 (fun a b -> Float.equal a b) into.bounds src.bounds)
  then invalid_arg "Metrics.merge_into: bucket bounds differ";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.h_sum <- into.h_sum +. src.h_sum;
  into.h_count <- into.h_count + src.h_count

(* Publish p50/p90/p99 of every histogram as counters named
   "<hist>/p50" etc., so percentile summaries appear in any plain counter
   dump (the published registry, --stats, BENCH_trace.json).  Idempotent:
   counters are overwritten with [set]. *)
let publish_quantiles (t : t) : unit =
  let hist_names =
    List.filter
      (fun name ->
        match Hashtbl.find_opt t.tbl name with
        | Some (H _) -> true
        | Some (C _) | None -> false)
      (List.sort compare t.names)
  in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | Some (H h) ->
        List.iter
          (fun (label, q) ->
            set (counter t (name ^ "/" ^ label)) (hist_quantile h q))
          [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]
      | Some (C _) | None -> ())
    hist_names

(* --- deterministic enumeration --- *)

let sorted_names (t : t) : string list = List.sort compare t.names

let dump (t : t) : (string * float) list =
  List.filter_map
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | Some (C c) -> Some (name, c.c_value)
      | Some (H _) | None -> None)
    (sorted_names t)

let hists (t : t) : hist list =
  List.filter_map
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | Some (H h) -> Some h
      | Some (C _) | None -> None)
    (sorted_names t)

let find_counter (t : t) (name : string) : counter option =
  match Hashtbl.find_opt t.tbl name with
  | Some (C c) -> Some c
  | Some (H _) | None -> None

let find_hist (t : t) (name : string) : hist option =
  match Hashtbl.find_opt t.tbl name with
  | Some (H h) -> Some h
  | Some (C _) | None -> None

(* Render the whole registry as one deterministic JSON object: counters as
   numbers, histograms as {buckets, counts, sum, count}. *)
let to_json (t : t) : string =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b ("\"" ^ Event.escape name ^ "\":");
      match Hashtbl.find_opt t.tbl name with
      | Some (C c) -> Buffer.add_string b (Event.float_str c.c_value)
      | Some (H h) ->
        Buffer.add_string b "{\"bounds\":[";
        Array.iteri
          (fun i bd ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Event.float_str bd))
          h.bounds;
        Buffer.add_string b "],\"counts\":[";
        Array.iteri
          (fun i c ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b (string_of_int c))
          h.counts;
        Buffer.add_string b
          (Printf.sprintf "],\"sum\":%s,\"count\":%d}"
             (Event.float_str h.h_sum) h.h_count)
      | None -> Buffer.add_string b "null")
    (sorted_names t);
  Buffer.add_char b '}';
  Buffer.contents b
