(* The benchmark harness: regenerates every table and figure from Section 4
   of "Secure Intrusion-tolerant Replication on the Internet" (DSN 2002).

     dune exec bench/main.exe                 - everything, reduced message
                                                counts (finishes in minutes)
     dune exec bench/main.exe -- --full       - paper-scale message counts
     dune exec bench/main.exe -- fig4 table1  - a subset
     dune exec bench/main.exe -- micro        - bechamel crypto microbenches
     dune exec bench/main.exe -- perf         - fast-path wall-clock comparison
                                                (writes BENCH_perf.json; 512-bit
                                                quick mode unless --full)
     dune exec bench/main.exe -- throughput   - batched vs unbatched atomic
                                                broadcast sweep (writes
                                                BENCH_throughput.json; smoke
                                                size unless --full)
     dune exec bench/main.exe -- latency      - traced offered-load ladder
                                                with critical-path phase
                                                attribution (writes
                                                BENCH_latency.json; smoke
                                                size unless --full)
     dune exec bench/main.exe -- durability   - rebuild-at-tip cost, full log
                                                replay vs checkpointed replay
                                                vs snapshot transfer (writes
                                                BENCH_durability.json; smoke
                                                size unless --full)

   Absolute numbers come from a simulator calibrated with the paper's host
   and network measurements; the claims to check are the *shapes* (see
   EXPERIMENTS.md). *)

let known =
  [ "fig3"; "fig4"; "fig5"; "table1"; "fig6"; "hosts"; "micro"; "perf";
    "ablations"; "vopr"; "throughput"; "latency"; "durability" ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let fast_path = not (List.mem "--no-fast-path" args) in
  let args =
    List.filter (fun a -> a <> "--full" && a <> "--no-fast-path") args
  in
  List.iter
    (fun a ->
      if not (List.mem a known) then begin
        Printf.eprintf
          "unknown experiment %S (known: %s, plus --full and --no-fast-path)\n" a
          (String.concat " " known);
        exit 2
      end)
    args;
  let selected name = args = [] || List.mem name args in
  let t0 = Unix.gettimeofday () in
  let section name f =
    if selected name then begin
      let t = Unix.gettimeofday () in
      f ();
      Printf.printf "[%s took %.1fs real time]\n\n%!" name (Unix.gettimeofday () -. t)
    end
  in
  print_endline "SINTRA benchmark harness - reproducing DSN 2002, Section 4";
  Printf.printf "mode: %s%s\n\n%!"
    (if full then "full (paper-scale runs)" else "reduced (use --full for paper-scale)")
    (if fast_path then "" else ", fast-path cost accounting OFF (fig4/fig5)");
  section "hosts" (fun () -> Experiments.hosts ());
  section "fig3" (fun () -> Experiments.fig3 ());
  section "fig4" (fun () ->
    Experiments.fig4 ~fast_path ~messages:(if full then 999 else 150) ());
  section "fig5" (fun () ->
    Experiments.fig5 ~fast_path ~messages:(if full then 999 else 150) ());
  section "table1" (fun () -> Experiments.table1 ~messages:(if full then 500 else 60) ());
  section "fig6" (fun () -> Experiments.fig6 ~messages:(if full then 100 else 25) ());
  section "ablations" (fun () -> Ablations.all ());
  section "micro" (fun () -> Micro.all ());
  section "perf" (fun () -> Micro.perf ~quick:(not full) ());
  section "vopr" (fun () -> Vopr_bench.run ~quick:(not full) ());
  section "throughput" (fun () -> Throughput_bench.run ~quick:(not full) ());
  section "latency" (fun () -> Latency_bench.run ~quick:(not full) ());
  section "durability" (fun () -> Durability_bench.run ~quick:(not full) ());
  if Experiments.metrics_count () > 0 then begin
    let path = "BENCH_trace.json" in
    let oc = open_out path in
    output_string oc (Experiments.metrics_json ());
    close_out oc;
    Printf.printf "wrote %s (%d experiment metric sets)\n" path
      (Experiments.metrics_count ())
  end;
  Printf.printf "total: %.1fs real time\n" (Unix.gettimeofday () -. t0)
