(* Rebuild-at-tip cost at growing history lengths: what does it take to
   bring a party back after a power failure?

   Three recovery modes per history length H:

     replay-full   no checkpoints (interval > H): the WAL holds every
                   round record, so the restart re-validates and re-feeds
                   all H rounds — cost grows with the history.
     replay-ckpt   checkpoints every [interval] rounds, device intact:
                   compaction left a verified snapshot plus at most an
                   interval-sized tail, so replay cost is O(interval).
     snapshot      checkpoints on, device WIPED: nothing to replay — the
                   restart adopts a certificate-verified peer snapshot and
                   pulls the tail over the storage plane.

   The shape to check (EXPERIMENTS.md): replay-full scales linearly in H;
   the two checkpointed modes stay flat.  Emitted as BENCH_durability.json. *)

open Sintra

let interval = 32

type row = {
  history : int;
  mode : string;
  rebuild_ms : float;
  rebuild_events : int;
  log_bytes : int;           (* victim's WAL size at the moment of the crash *)
  replayed : int;
  adopted : int;
}

(* Drive H one-payload rounds to quiescence, power-fail the last party
   (optionally wiping its device), restart it and drain the recovery,
   returning the rebuild measurements.  Mirrors `sintra_sim
   durability-check`, which gates correctness; here we only time it. *)
let rebuild ~(seed : string) ~(history : int) ~(ckpt_interval : int)
    ~(wipe : bool) ~(mode : string) : row =
  let n = 4 and t = 1 in
  let cfg = Experiments.bench_cfg ~n ~t () in
  let topo = Sim.Topology.lan in
  let c = Experiments.make_cluster ~seed:(seed ^ "|" ^ mode) ~topo cfg in
  let devs = Array.init n (fun _ -> Store.Device.mem ()) in
  let durs : Durable.t list ref array = Array.init n (fun _ -> ref []) in
  let chans : Atomic_channel.t option array = Array.make n None in
  let make_party i =
    let rt = Cluster.runtime c i in
    let ch =
      Atomic_channel.create rt ~pid:"dbench" ~on_deliver:(fun ~sender:_ _ -> ()) ()
    in
    let d =
      Durable.attach rt ~chan:ch ~pid:"dbench" ~dev:devs.(i)
        ~interval:ckpt_interval ()
    in
    durs.(i) := d :: !(durs.(i));
    chans.(i) <- Some ch
  in
  for i = 0 to n - 1 do
    make_party i;
    Runtime.on_rebuild (Cluster.runtime c i) (fun () -> make_party i)
  done;
  for k = 0 to history - 1 do
    let p = k mod n in
    let payload = Printf.sprintf "p%d.m%d" p k in
    Cluster.inject c p (fun () ->
      match chans.(p) with
      | Some ch -> Atomic_channel.send ch payload
      | None -> ());
    ignore (Cluster.run c)
  done;
  let victim = n - 1 in
  let log_bytes = Store.Device.size devs.(victim) in
  let t0 = Unix.gettimeofday () in
  Runtime.crash (Cluster.runtime c victim);
  if wipe then Store.Device.rewrite devs.(victim) "";
  Runtime.recover (Cluster.runtime c victim);
  let rebuild_events = Cluster.run c in
  let rebuild_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  let newest =
    match !(durs.(victim)) with
    | d :: _ -> d
    | [] -> failwith "durability bench: victim never rebuilt"
  in
  let tip p =
    match chans.(p) with Some ch -> Atomic_channel.current_round ch | None -> 0
  in
  if tip victim < tip 0 then
    failwith
      (Printf.sprintf "durability bench [%s H=%d]: rebuilt party stopped at \
                       round %d, cluster is at %d"
         mode history (tip victim) (tip 0));
  { history; mode; rebuild_ms; rebuild_events; log_bytes;
    replayed = Durable.replayed_rounds newest;
    adopted = Durable.snapshots_adopted newest }

let check (r : row) : unit =
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        failwith (Printf.sprintf "durability bench [%s H=%d]: %s" r.mode
                    r.history s))
      fmt
  in
  match r.mode with
  | "replay-full" ->
    if r.adopted <> 0 then fail "adopted a snapshot with no checkpoints dealt";
    if r.replayed < r.history then
      fail "replayed only %d of %d rounds" r.replayed r.history
  | "replay-ckpt" ->
    if r.replayed > (2 * interval) + 1 then
      fail "replayed %d rounds; compaction should bound this near %d"
        r.replayed interval
  | "snapshot" ->
    if r.adopted < 1 then fail "wiped restart adopted no peer snapshot";
    if r.replayed <> 0 then fail "replayed %d rounds from a wiped disk" r.replayed
  | m -> fail "unknown mode %s" m

let run ?(quick = true) ?(out = "BENCH_durability.json") () : unit =
  (* H must exceed the interval: at H <= interval the GC floor is still 0,
     peers retain the whole history, and a wiped restart is (correctly)
     served plain DECIDED catch-up rather than a snapshot. *)
  let lengths = if quick then [ 64; 128; 256 ] else [ 256; 512; 1024 ] in
  Printf.printf
    "=== Durability: rebuild-at-tip, replay vs snapshot (interval %d) ===\n\n"
    interval;
  Printf.printf "  %8s  %-12s %11s %9s %9s %9s %8s\n" "history" "mode"
    "rebuild ms" "events" "log B" "replayed" "adopted";
  let rows =
    List.concat_map
      (fun history ->
        let modes =
          [ ("replay-full", history + 1, false);
            ("replay-ckpt", interval, false);
            ("snapshot", interval, true) ]
        in
        List.map
          (fun (mode, ckpt_interval, wipe) ->
            let r =
              rebuild ~seed:"bench-durability" ~history ~ckpt_interval ~wipe
                ~mode
            in
            check r;
            Printf.printf "  %8d  %-12s %11.1f %9d %9d %9d %8d\n%!" r.history
              r.mode r.rebuild_ms r.rebuild_events r.log_bytes r.replayed
              r.adopted;
            r)
          modes)
      lengths
  in
  let json_row (r : row) =
    Printf.sprintf
      "    {\"history\": %d, \"mode\": \"%s\", \"rebuild_ms\": %.2f, \
       \"rebuild_events\": %d, \"log_bytes\": %d, \"replayed_rounds\": %d, \
       \"snapshots_adopted\": %d}"
      r.history r.mode r.rebuild_ms r.rebuild_events r.log_bytes r.replayed
      r.adopted
  in
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"durability\",\n  \"version\": 1,\n  \
       \"checkpoint_interval\": %d,\n  \"rows\": [\n%s\n  ]\n}\n"
      interval
      (String.concat ",\n" (List.map json_row rows))
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote %s (%d rows)\n" out (List.length rows)
