(* Ablation benchmarks for the design choices DESIGN.md calls out:

   - the atomic-broadcast batch size B = n - f + 1 (the fairness/latency
     trade of Section 2.5);
   - fixed vs. locally-randomized candidate order in multi-valued agreement
     (the load-balancing variation of Section 2.4);
   - the optimistic sequencer-based channel of Section 6 (future work in
     the paper, implemented here) vs. the fully randomized channel, with
     and without a leader failure. *)

open Sintra

let avg_gap (ds : Experiments.delivery list) : float =
  match ds with
  | [] | [ _ ] -> nan
  | first :: _ ->
    let last = List.nth ds (List.length ds - 1) in
    (last.Experiments.time -. first.Experiments.time)
    /. float_of_int (List.length ds - 1)

let batch_size () =
  print_endline "=== Ablation: atomic-broadcast batch size (n=4, t=1, LAN) ===";
  print_endline
    "B = n - f + 1 trades fairness (delivery guaranteed when f parties know\n\
     a message) against per-round work; the paper runs B = t+1 = 2.\n";
  Printf.printf "%8s %14s %16s\n" "B" "avg gap (s)" "virtual total (s)";
  List.iter
    (fun b ->
      let cfg = Experiments.bench_cfg ~batch_size:b ~n:4 ~t:1 () in
      let ds =
        Experiments.run_channel ~seed:(Printf.sprintf "ab-batch%d" b)
          ~topo:Sim.Topology.lan ~cfg ~kind:Experiments.Atomic
          ~senders:[ 0; 1; 2 ] ~per_sender:20 ~measure_at:0 ()
      in
      let total =
        match List.rev ds with d :: _ -> d.Experiments.time | [] -> nan
      in
      Printf.printf "%8d %14.3f %16.2f\n" b (avg_gap ds) total)
    [ 2; 3 ];
  print_endline
    "\nexpected: larger batches amortize the agreement over more deliveries\n\
     (smaller average gap) at the cost of waiting for more signers per round.\n"

let perm_mode () =
  print_endline "=== Ablation: candidate order in multi-valued agreement (Internet) ===";
  print_endline
    "fixed order always tries party 1 first (hot-spotting it); the\n\
     locally-randomized order balances load without extra messages\n\
     (Section 2.4, second variation).\n";
  Printf.printf "%-14s %14s\n" "order" "avg gap (s)";
  List.iter
    (fun (label, mode) ->
      let cfg =
        Config.make ~tsig_scheme:Config.Multi ~perm_mode:mode
          ~rsa_bits:256 ~tsig_bits:256 ~dl_pbits:256 ~dl_qbits:96
          ~model_rsa_bits:1024 ~model_dl_pbits:1024 ~model_dl_qbits:160
          ~n:4 ~t:1 ()
      in
      let ds =
        Experiments.run_channel ~seed:("ab-perm" ^ label)
          ~topo:Sim.Topology.internet ~cfg ~kind:Experiments.Atomic
          ~senders:[ 0; 1; 2 ] ~per_sender:15 ~measure_at:0 ()
      in
      Printf.printf "%-14s %14.3f\n" label (avg_gap ds))
    [ ("fixed", Config.Fixed); ("random-local", Config.Random_local) ];
  print_endline
    "\nexpected: similar latency - the variation balances load, not speed\n\
     (the paper: \"does not offer more security than a fixed order\").\n"

let optimistic () =
  print_endline "=== Ablation: optimistic (sequencer) vs randomized atomic broadcast ===";
  print_endline
    "the paper's Section 6: optimistic protocols reduce the cost of atomic\n\
     broadcast \"essentially to a single (consistent) broadcast per message\"\n\
     while the sequencer behaves; one leader crash forces a recovery.\n";
  let run_opt ~topo ~seed ~crash_leader ~messages =
    let n = Sim.Topology.n topo in
    let cfg = Experiments.bench_cfg ~n ~t:((n - 1) / 3) () in
    let c = Experiments.make_cluster ~seed ~topo cfg in
    let deliveries = ref [] in
    let chans =
      Array.init n (fun i ->
        Optimistic_channel.create ~timeout:8.0 (Cluster.runtime c i) ~pid:"ab-opt"
          ~on_deliver:(fun ~sender:_ _ ->
            (* measure at party 1: party 0 (the epoch-0 leader) may crash *)
            if i = 1 then deliveries := Cluster.now c :: !deliveries)
          ())
    in
    for k = 0 to messages - 1 do
      Cluster.inject c 1 (fun () ->
        Optimistic_channel.send chans.(1) (Printf.sprintf "m%d" k))
    done;
    if crash_leader then
      Sim.Engine.schedule c.Cluster.engine ~delay:2.0 (fun () -> Cluster.crash c 0);
    ignore (Cluster.run c ~until:2000.0 ~max_events:20_000_000);
    let ds = List.rev !deliveries in
    match ds, List.rev ds with
    | first :: _, last :: _ when List.length ds > 1 ->
      (List.length ds, (last -. first) /. float_of_int (List.length ds - 1))
    | _ -> (List.length ds, nan)
  in
  let run_full ~topo ~seed ~messages =
    let n = Sim.Topology.n topo in
    let cfg = Experiments.bench_cfg ~n ~t:((n - 1) / 3) () in
    let ds =
      Experiments.run_channel ~seed ~topo ~cfg ~kind:Experiments.Atomic
        ~senders:[ 1 ] ~per_sender:messages ~measure_at:0 ()
    in
    (List.length ds, avg_gap ds)
  in
  Printf.printf "%-34s %10s %12s\n" "configuration" "delivered" "avg gap (s)";
  List.iter
    (fun (label, topo) ->
      let messages = 25 in
      let n1, g1 = run_full ~topo ~seed:("ab-full" ^ label) ~messages in
      Printf.printf "%-34s %10d %12.3f\n"
        (Printf.sprintf "%s randomized" label) n1 g1;
      let n2, g2 = run_opt ~topo ~seed:("ab-opt" ^ label) ~crash_leader:false ~messages in
      Printf.printf "%-34s %10d %12.3f\n"
        (Printf.sprintf "%s optimistic (honest leader)" label) n2 g2;
      let n3, g3 = run_opt ~topo ~seed:("ab-optc" ^ label) ~crash_leader:true ~messages in
      Printf.printf "%-34s %10d %12.3f\n"
        (Printf.sprintf "%s optimistic (leader crash)" label) n3 g3)
    [ ("LAN", Sim.Topology.lan); ("Internet", Sim.Topology.internet) ];
  print_endline
    "\nexpected: the honest-leader fast path beats the randomized protocol by\n\
     a large factor (Castro-Liskov run in milliseconds on a LAN); a leader\n\
     crash costs one recovery agreement, then the new epoch resumes fast.\n"

let lossy_links () =
  print_endline "=== Ablation: TCP-like links vs sliding-window over lossy datagrams ===";
  print_endline
    "the paper planned to replace TCP with its own sliding-window protocol\n\
     with authenticated acknowledgments (Section 3); here the whole atomic\n\
     broadcast stack runs over datagrams dropped with probability p.\n";
  Printf.printf "%-22s %14s\n" "frame loss" "avg gap (s)";
  List.iter
    (fun loss ->
      let cfg = Experiments.bench_cfg ~n:4 ~t:1 () in
      let topo = Sim.Topology.lan in
      let seed = Printf.sprintf "ab-loss-%.2f" loss in
      let c =
        let dealer_cfg = cfg in
        let mac_keys =
          Dealer.net_mac_keys (Experiments.make_cluster ~seed:"x" ~topo cfg).Cluster.dealer
        in
        let engine = Sim.Engine.create ~seed () in
        let net =
          if loss = 0.0 then Sim.Net.create ~engine ~topo ~mac_keys
          else Sim.Net.create_lossy ~loss ~engine ~topo ~mac_keys
        in
        let dealer = (Experiments.make_cluster ~seed:"x" ~topo cfg).Cluster.dealer in
        let runtimes =
          Array.init 4 (fun i ->
            Runtime.create ~engine ~net ~cfg:dealer_cfg ~keys:dealer.Dealer.parties.(i))
        in
        { Cluster.engine; net; cfg = dealer_cfg; dealer; runtimes }
      in
      let deliveries = ref [] in
      let chans =
        Array.init 4 (fun i ->
          Atomic_channel.create (Cluster.runtime c i) ~pid:"ab-loss"
            ~on_deliver:(fun ~sender:_ _ ->
              if i = 0 then deliveries := Cluster.now c :: !deliveries)
            ())
      in
      for k = 0 to 19 do
        Cluster.inject c 1 (fun () ->
          Atomic_channel.send chans.(1) (Printf.sprintf "m%d" k))
      done;
      ignore (Cluster.run c ~until:2000.0);
      let ds = List.rev !deliveries in
      let gap =
        match ds, List.rev ds with
        | first :: _, last :: _ when List.length ds > 1 ->
          (last -. first) /. float_of_int (List.length ds - 1)
        | _ -> nan
      in
      Printf.printf "%-22s %14.3f   (%d/20 delivered)\n"
        (if loss = 0.0 then "none (reliable FIFO)" else Printf.sprintf "%.0f%%" (loss *. 100.0))
        gap (List.length ds))
    [ 0.0; 0.05; 0.15 ];
  print_endline
    "\nexpected: total order survives any loss rate; latency grows with the\n\
     retransmission rate (RTO 0.4s per lost frame on the critical path).\n"

let all () =
  batch_size ();
  perm_mode ();
  optimistic ();
  lossy_links ()
