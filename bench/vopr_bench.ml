(* Schedule-explorer throughput: sweep a batch of seeds per workload and
   report seeds/sec, emitted as BENCH_vopr.json.  The sweep doubles as a
   bench-time regression check — any oracle failure on trunk fails the
   experiment loudly. *)

let workloads =
  [ Vopr.Oracle.Reliable; Vopr.Oracle.Consistent; Vopr.Oracle.Aba;
    Vopr.Oracle.Mvba; Vopr.Oracle.Atomic; Vopr.Oracle.Secure;
    Vopr.Oracle.Throughput; Vopr.Oracle.Amortized ]

let run ?(quick = true) ?(out = "BENCH_vopr.json") () : unit =
  let seeds = if quick then 20 else 200 in
  Printf.printf "=== Schedule explorer throughput (%d seeds per workload) ===\n\n"
    seeds;
  let rows =
    List.map
      (fun kind ->
        let runner ~seed sched = Vopr.Workload.run ~kind ~seed sched in
        let oracles = Vopr.Oracle.all kind in
        let t0 = Unix.gettimeofday () in
        let report =
          Vopr.Explorer.explore ~runner ~oracles
            ~generate:(fun ~run_seed ->
              Vopr.Explorer.schedule_of ~run_seed ~n:4 ~max_faulty:1
                ~allow_equiv:(Vopr.Workload.byz_supported kind))
            ~seed:"bench-vopr" ~seeds ()
        in
        let dt = Unix.gettimeofday () -. t0 in
        let rate = float_of_int seeds /. (dt +. 1e-9) in
        let failures = List.length report.Vopr.Explorer.failures in
        Printf.printf "  %-12s %4d runs  %d failure(s)  %8.1f seeds/sec\n%!"
          (Vopr.Oracle.kind_to_string kind)
          report.Vopr.Explorer.runs failures rate;
        (kind, report.Vopr.Explorer.runs, failures, rate))
      workloads
  in
  let total_failures =
    List.fold_left (fun acc (_, _, f, _) -> acc + f) 0 rows
  in
  let json =
    Printf.sprintf
      "{\n  \"schema\": \"sintra-bench-vopr-v1\",\n  \"seeds_per_workload\": \
       %d,\n  \"failures\": %d,\n  \"results\": [\n%s\n  ]\n}\n"
      seeds total_failures
      (String.concat ",\n"
         (List.map
            (fun (kind, runs, failures, rate) ->
              Printf.sprintf
                "    {\"workload\": %S, \"runs\": %d, \"failures\": %d, \
                 \"seeds_per_sec\": %.2f}"
                (Vopr.Oracle.kind_to_string kind)
                runs failures rate)
            rows))
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote %s\n\n" out;
  if total_failures > 0 then begin
    Printf.eprintf "vopr bench: %d oracle failure(s) on trunk\n" total_failures;
    exit 1
  end
