(* The latency section of the bench harness: traced open-loop atomic
   broadcast at several offered loads, with completion-latency percentiles
   and a critical-path phase breakdown per point (lib/load latency bench),
   written to BENCH_latency.json.

   Quick mode runs the CI-sized smoke bench; --full measures 8 virtual
   seconds per point over five offered rates and is what the committed
   BENCH_latency.json is regenerated with. *)

let run ~(quick : bool) () : unit =
  print_endline "--- latency: critical-path attribution by offered load ---";
  let report = Load.Latency.run ~smoke:quick () in
  Printf.printf "n=%d t=%d, %.1f virtual seconds per point:\n"
    report.Load.Latency.n report.Load.Latency.t report.Load.Latency.duration_s;
  Printf.printf "  %10s %9s %9s %9s %9s %9s %9s\n" "offered/s" "payloads"
    "p50 (s)" "p90 (s)" "p99 (s)" "hops" "coverage";
  List.iter
    (fun (p : Load.Latency.point) ->
      Printf.printf "  %10.1f %9d %9.3f %9.3f %9.3f %9.1f %8.1f%%\n"
        p.Load.Latency.offered_per_s p.Load.Latency.payloads
        p.Load.Latency.latency_p50_s p.Load.Latency.latency_p90_s
        p.Load.Latency.latency_p99_s p.Load.Latency.hops_mean
        (100.0 *. p.Load.Latency.coverage))
    report.Load.Latency.points;
  (* The headline of the experiment: which phase dominates, per point. *)
  List.iter
    (fun (p : Load.Latency.point) ->
      let total =
        List.fold_left (fun acc (_, v) -> acc +. v) 0.0 p.Load.Latency.phases_s
      in
      Printf.printf "  offered %.0f req/s phases:" p.Load.Latency.offered_per_s;
      List.iter
        (fun (name, v) ->
          if total > 0.0 then
            Printf.printf "  %s %.1f%%" name (100.0 *. v /. total))
        p.Load.Latency.phases_s;
      print_newline ())
    report.Load.Latency.points;
  let path = "BENCH_latency.json" in
  let oc = open_out path in
  output_string oc (Load.Latency.to_json report);
  close_out oc;
  Printf.printf "wrote %s\n\n" path
