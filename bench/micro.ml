(* Bechamel micro-benchmarks of the real cryptography: one group of
   Test.make cases per table/figure, measuring the CPU-side ingredients of
   each experiment on the machine running this binary.

   These are honest wall-clock numbers for our pure-OCaml bignum — the
   analogue of the paper's `exp' column (there: Java BigInteger, 55-427 ms
   per 1024-bit exponentiation; here: whatever this host does). *)

open Bechamel
open Toolkit

let drbg = Hashes.Drbg.create ~seed:"bench-micro"

(* --- fixtures --- *)

let modexp_fixture bits =
  let rb = Hashes.Drbg.random_bytes (Hashes.Drbg.fork drbg (Printf.sprintf "me%d" bits)) in
  let base = Bignum.Nat.random_bits ~random_bytes:rb bits in
  let e = Bignum.Nat.random_bits ~random_bytes:rb bits in
  let m =
    Bignum.Nat.add (Bignum.Nat.random_bits ~random_bytes:rb bits)
      (Bignum.Nat.shift_left Bignum.Nat.one (bits - 1))
  in
  (base, e, m)

let rsa = lazy (Crypto.Rsa.keygen ~drbg:(Hashes.Drbg.fork drbg "rsa") ~bits:1024 ())

let group =
  lazy (Crypto.Group.generate ~drbg:(Hashes.Drbg.fork drbg "grp") ~pbits:1024 ~qbits:160)

let coin =
  lazy
    (Crypto.Threshold_coin.deal ~drbg:(Hashes.Drbg.fork drbg "coin")
       ~group:(Lazy.force group) ~n:4 ~k:2 ~t:1)

let tsig =
  lazy
    (Crypto.Threshold_sig.deal ~drbg:(Hashes.Drbg.fork drbg "tsig") ~modulus_bits:512
       ~nparties:4 ~k:3 ~t:1 ())

let enc =
  lazy
    (Crypto.Threshold_enc.deal ~drbg:(Hashes.Drbg.fork drbg "enc")
       ~group:(Lazy.force group) ~n:4 ~k:2 ~t:1)

(* --- test groups --- *)

(* Host tables: the `exp' column = one full modular exponentiation. *)
let host_table_tests () =
  List.map
    (fun bits ->
      let base, e, m = modexp_fixture bits in
      Test.make ~name:(Printf.sprintf "modexp-%d" bits)
        (Staged.stage (fun () -> ignore (Bignum.Nat.powmod base e m))))
    [ 128; 256; 512; 1024 ]

(* Table 1 / Figures 4-5: the per-message public-key work of the atomic
   channel - ordinary RSA signatures (INITs) and multi-signature shares. *)
let table1_tests () =
  let sk = Lazy.force rsa in
  let signature = Crypto.Rsa.sign sk ~ctx:"bench" "message" in
  [
    Test.make ~name:"rsa1024-sign-crt"
      (Staged.stage (fun () -> ignore (Crypto.Rsa.sign sk ~ctx:"bench" "message")));
    Test.make ~name:"rsa1024-verify"
      (Staged.stage (fun () ->
         ignore (Crypto.Rsa.verify sk.Crypto.Rsa.pub ~ctx:"bench" ~signature "message")));
  ]

(* Figures 4-5 run randomized agreement: the threshold coin. *)
let coin_tests () =
  let keys = Lazy.force coin in
  let pub = keys.Crypto.Threshold_coin.public in
  let d = Hashes.Drbg.fork drbg "coin-run" in
  let share i =
    Crypto.Threshold_coin.release ~drbg:d pub keys.Crypto.Threshold_coin.shares.(i)
      ~name:"bench-coin"
  in
  let s0 = share 0 and s1 = share 1 in
  [
    Test.make ~name:"coin-release"
      (Staged.stage (fun () -> ignore (share 0)));
    Test.make ~name:"coin-verify-share"
      (Staged.stage (fun () ->
         ignore (Crypto.Threshold_coin.verify_share pub ~name:"bench-coin" s0)));
    Test.make ~name:"coin-assemble-k2"
      (Staged.stage (fun () ->
         ignore (Crypto.Threshold_coin.assemble pub ~name:"bench-coin" [ s0; s1 ] ~len:16)));
  ]

(* Figure 6: Shoup threshold signatures (at 512-bit moduli; safe-prime
   generation for 1024 is minutes of dealer time) vs multi-signatures. *)
let fig6_tests () =
  let keys = Lazy.force tsig in
  let pub = keys.Crypto.Threshold_sig.public in
  let d = Hashes.Drbg.fork drbg "tsig-run" in
  let share i =
    Crypto.Threshold_sig.release ~drbg:d pub keys.Crypto.Threshold_sig.shares.(i)
      ~ctx:"bench" "message"
  in
  let shares = [ share 0; share 1; share 2 ] in
  let assembled = Crypto.Threshold_sig.assemble pub ~ctx:"bench" "message" shares in
  [
    Test.make ~name:"shoup512-release-share"
      (Staged.stage (fun () -> ignore (share 0)));
    Test.make ~name:"shoup512-verify-share"
      (Staged.stage (fun () ->
         ignore (Crypto.Threshold_sig.verify_share pub ~ctx:"bench" "message" (List.hd shares))));
    Test.make ~name:"shoup512-assemble-k3"
      (Staged.stage (fun () ->
         ignore (Crypto.Threshold_sig.assemble pub ~ctx:"bench" "message" shares)));
    Test.make ~name:"shoup512-verify-final"
      (Staged.stage (fun () ->
         ignore (Crypto.Threshold_sig.verify pub ~ctx:"bench" ~signature:assembled "message")));
  ]

(* Table 1 secure channel: the TDH2 threshold cryptosystem. *)
let tdh2_tests () =
  let keys = Lazy.force enc in
  let pub = keys.Crypto.Threshold_enc.public in
  let d = Hashes.Drbg.fork drbg "enc-run" in
  let ct = Crypto.Threshold_enc.encrypt ~drbg:d pub ~label:"L" "thirty-two bytes of payload....." in
  let share i =
    Crypto.Threshold_enc.dec_share ~drbg:d pub keys.Crypto.Threshold_enc.shares.(i) ct
  in
  match share 0, share 1 with
  | Some d0, Some d1 ->
    [
      Test.make ~name:"tdh2-encrypt"
        (Staged.stage (fun () ->
           ignore (Crypto.Threshold_enc.encrypt ~drbg:d pub ~label:"L" "msg")));
      Test.make ~name:"tdh2-ct-valid"
        (Staged.stage (fun () -> ignore (Crypto.Threshold_enc.ciphertext_valid pub ct)));
      Test.make ~name:"tdh2-dec-share"
        (Staged.stage (fun () -> ignore (share 0)));
      Test.make ~name:"tdh2-verify-share"
        (Staged.stage (fun () -> ignore (Crypto.Threshold_enc.verify_dec_share pub ct d0)));
      Test.make ~name:"tdh2-combine-k2"
        (Staged.stage (fun () -> ignore (Crypto.Threshold_enc.combine pub ct [ d0; d1 ])));
    ]
  | _ -> []

let run_group ~(name : string) (tests : Test.t list) : unit =
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (Test.make_grouped ~name tests) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (test_name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> Printf.printf "  %-28s %12.3f ms/op\n" test_name (est /. 1e6)
      | Some [] | None -> Printf.printf "  %-28s (no estimate)\n" test_name)
    (List.sort compare rows)

let all () =
  print_endline "=== Micro-benchmarks (real wall-clock on this host, pure-OCaml bignum) ===\n";
  print_endline "host `exp' column (paper: 55-427 ms in Java on 2002 hardware):";
  run_group ~name:"modexp" (host_table_tests ());
  print_endline "\natomic channel signatures (Table 1, Figures 4-5):";
  run_group ~name:"rsa" (table1_tests ());
  print_endline "\nthreshold coin (randomized agreement in Figures 4-5):";
  run_group ~name:"coin" (coin_tests ());
  print_endline "\nthreshold signatures (Figure 6):";
  run_group ~name:"tsig" (fig6_tests ());
  print_endline "\nTDH2 threshold encryption (secure channel, Table 1):";
  run_group ~name:"tdh2" (tdh2_tests ());
  print_newline ()
