(* Bechamel micro-benchmarks of the real cryptography: one group of
   Test.make cases per table/figure, measuring the CPU-side ingredients of
   each experiment on the machine running this binary.

   These are honest wall-clock numbers for our pure-OCaml bignum — the
   analogue of the paper's `exp' column (there: Java BigInteger, 55-427 ms
   per 1024-bit exponentiation; here: whatever this host does). *)

open Bechamel
open Toolkit

let drbg = Hashes.Drbg.create ~seed:"bench-micro"

(* --- fixtures --- *)

let modexp_fixture bits =
  let rb = Hashes.Drbg.random_bytes (Hashes.Drbg.fork drbg (Printf.sprintf "me%d" bits)) in
  let base = Bignum.Nat.random_bits ~random_bytes:rb bits in
  let e = Bignum.Nat.random_bits ~random_bytes:rb bits in
  let m =
    Bignum.Nat.add (Bignum.Nat.random_bits ~random_bytes:rb bits)
      (Bignum.Nat.shift_left Bignum.Nat.one (bits - 1))
  in
  (base, e, m)

let rsa = lazy (Crypto.Rsa.keygen ~drbg:(Hashes.Drbg.fork drbg "rsa") ~bits:1024 ())

let group =
  lazy (Crypto.Group.generate ~drbg:(Hashes.Drbg.fork drbg "grp") ~pbits:1024 ~qbits:160)

let coin =
  lazy
    (Crypto.Threshold_coin.deal ~drbg:(Hashes.Drbg.fork drbg "coin")
       ~group:(Lazy.force group) ~n:4 ~k:2 ~t:1)

let tsig =
  lazy
    (Crypto.Threshold_sig.deal ~drbg:(Hashes.Drbg.fork drbg "tsig") ~modulus_bits:512
       ~nparties:4 ~k:3 ~t:1 ())

let enc =
  lazy
    (Crypto.Threshold_enc.deal ~drbg:(Hashes.Drbg.fork drbg "enc")
       ~group:(Lazy.force group) ~n:4 ~k:2 ~t:1)

(* --- test groups --- *)

(* Host tables: the `exp' column = one full modular exponentiation. *)
let host_table_tests () =
  List.map
    (fun bits ->
      let base, e, m = modexp_fixture bits in
      Test.make ~name:(Printf.sprintf "modexp-%d" bits)
        (Staged.stage (fun () -> ignore (Bignum.Nat.powmod base e m))))
    [ 128; 256; 512; 1024 ]

(* Table 1 / Figures 4-5: the per-message public-key work of the atomic
   channel - ordinary RSA signatures (INITs) and multi-signature shares. *)
let table1_tests () =
  let sk = Lazy.force rsa in
  let signature = Crypto.Rsa.sign sk ~ctx:"bench" "message" in
  [
    Test.make ~name:"rsa1024-sign-crt"
      (Staged.stage (fun () -> ignore (Crypto.Rsa.sign sk ~ctx:"bench" "message")));
    Test.make ~name:"rsa1024-verify"
      (Staged.stage (fun () ->
         ignore (Crypto.Rsa.verify sk.Crypto.Rsa.pub ~ctx:"bench" ~signature "message")));
  ]

(* Figures 4-5 run randomized agreement: the threshold coin. *)
let coin_tests () =
  let keys = Lazy.force coin in
  let pub = keys.Crypto.Threshold_coin.public in
  let d = Hashes.Drbg.fork drbg "coin-run" in
  let share i =
    Crypto.Threshold_coin.release ~drbg:d pub keys.Crypto.Threshold_coin.shares.(i)
      ~name:"bench-coin"
  in
  let s0 = share 0 and s1 = share 1 in
  [
    Test.make ~name:"coin-release"
      (Staged.stage (fun () -> ignore (share 0)));
    Test.make ~name:"coin-verify-share"
      (Staged.stage (fun () ->
         ignore (Crypto.Threshold_coin.verify_share pub ~name:"bench-coin" s0)));
    Test.make ~name:"coin-assemble-k2"
      (Staged.stage (fun () ->
         ignore (Crypto.Threshold_coin.assemble pub ~name:"bench-coin" [ s0; s1 ] ~len:16)));
  ]

(* Figure 6: Shoup threshold signatures (at 512-bit moduli; safe-prime
   generation for 1024 is minutes of dealer time) vs multi-signatures. *)
let fig6_tests () =
  let keys = Lazy.force tsig in
  let pub = keys.Crypto.Threshold_sig.public in
  let d = Hashes.Drbg.fork drbg "tsig-run" in
  let share i =
    Crypto.Threshold_sig.release ~drbg:d pub keys.Crypto.Threshold_sig.shares.(i)
      ~ctx:"bench" "message"
  in
  let shares = [ share 0; share 1; share 2 ] in
  let assembled = Crypto.Threshold_sig.assemble pub ~ctx:"bench" "message" shares in
  [
    Test.make ~name:"shoup512-release-share"
      (Staged.stage (fun () -> ignore (share 0)));
    Test.make ~name:"shoup512-verify-share"
      (Staged.stage (fun () ->
         ignore (Crypto.Threshold_sig.verify_share pub ~ctx:"bench" "message" (List.hd shares))));
    Test.make ~name:"shoup512-assemble-k3"
      (Staged.stage (fun () ->
         ignore (Crypto.Threshold_sig.assemble pub ~ctx:"bench" "message" shares)));
    Test.make ~name:"shoup512-verify-final"
      (Staged.stage (fun () ->
         ignore (Crypto.Threshold_sig.verify pub ~ctx:"bench" ~signature:assembled "message")));
  ]

(* Table 1 secure channel: the TDH2 threshold cryptosystem. *)
let tdh2_tests () =
  let keys = Lazy.force enc in
  let pub = keys.Crypto.Threshold_enc.public in
  let d = Hashes.Drbg.fork drbg "enc-run" in
  let ct = Crypto.Threshold_enc.encrypt ~drbg:d pub ~label:"L" "thirty-two bytes of payload....." in
  let share i =
    Crypto.Threshold_enc.dec_share ~drbg:d pub keys.Crypto.Threshold_enc.shares.(i) ct
  in
  match share 0, share 1 with
  | Some d0, Some d1 ->
    [
      Test.make ~name:"tdh2-encrypt"
        (Staged.stage (fun () ->
           ignore (Crypto.Threshold_enc.encrypt ~drbg:d pub ~label:"L" "msg")));
      Test.make ~name:"tdh2-ct-valid"
        (Staged.stage (fun () -> ignore (Crypto.Threshold_enc.ciphertext_valid pub ct)));
      Test.make ~name:"tdh2-dec-share"
        (Staged.stage (fun () -> ignore (share 0)));
      Test.make ~name:"tdh2-verify-share"
        (Staged.stage (fun () -> ignore (Crypto.Threshold_enc.verify_dec_share pub ct d0)));
      Test.make ~name:"tdh2-combine-k2"
        (Staged.stage (fun () -> ignore (Crypto.Threshold_enc.combine pub ct [ d0; d1 ])));
    ]
  | _ -> []

let run_group ~(name : string) (tests : Test.t list) : unit =
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (Test.make_grouped ~name tests) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (test_name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> Printf.printf "  %-28s %12.3f ms/op\n" test_name (est /. 1e6)
      | Some [] | None -> Printf.printf "  %-28s (no estimate)\n" test_name)
    (List.sort compare rows)

(* --- fast-path wall-clock comparison, emitted as BENCH_perf.json ---

   Honest end-to-end timings of the bignum fast path against the plain
   algorithms it replaces: Barrett vs Montgomery powmod, two powmods vs one
   simultaneous double exponentiation, plain powmod vs a fixed-base window
   table, DLEQ verification (reference: two inversions + four plain
   exponentiations) vs the production path (two table hits + one double
   exponentiation), and amortized batch verification (Crypto.Batch random
   linear combination over k shares) vs k single reference verifications
   (plain exponentiations, no tables — the *-reference rows), for both
   Shoup threshold-signature shares and threshold-coin (DLEQ) shares at
   n=4, k=3.  The production one-at-a-time rows are reported alongside for
   scale.

   Schema v2: every result row carries its own mod_bits.  Quick mode runs
   the 512-bit ladder only so `dune runtest` can afford it (a 1024-bit
   Shoup deal alone is minutes of safe-prime search); --full runs 512 and
   1024 and the committed BENCH_perf.json reports its speedups at the
   paper's 1024 bits. *)

(* Median of three runs of [iters] calls, where [iters] targets [budget]
   wall seconds per run (calibrated by one warm-up call); ms/op. *)
let time_ms ~(budget : float) (f : unit -> unit) : float =
  let once () =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let warm = once () in
  let iters = max 1 (min 2000 (int_of_float (budget /. (warm +. 1e-9)))) in
  let sample () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do f () done;
    (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int iters
  in
  let samples = List.sort compare [ sample (); sample (); sample () ] in
  List.nth samples 1

let perf ?(quick = true) ?(out = "BENCH_perf.json") () : unit =
  let open Bignum in
  let qbits = 160 in
  let budget = if quick then 0.1 else 0.5 in
  let sizes = if quick then [ 512 ] else [ 512; 1024 ] in
  Printf.printf
    "=== Fast-path wall-clock comparison (%s-bit moduli, %d-bit group order) ===\n\n"
    (String.concat "/" (List.map string_of_int sizes))
    qbits;
  let results : (string * int * float) list ref = ref [] in
  let speedups : (string * float) list ref = ref [] in
  let speedup_bits = ref 0 in
  let run_at pbits =
    let d = Hashes.Drbg.fork drbg (Printf.sprintf "perf%d" pbits) in
    let rb = Hashes.Drbg.random_bytes d in
    Printf.printf "--- %d-bit modulus ---\n" pbits;
    let bench name f =
      let ms = time_ms ~budget f in
      results := (name, pbits, ms) :: !results;
      Printf.printf "  %-32s %12.4f ms/op\n%!" name ms;
      ms
    in
    (* modular exponentiation: Barrett reference vs the Montgomery default *)
    let m = Nat.add (Nat.random_bits ~random_bytes:rb pbits) Nat.one in
    let m = if Nat.testbit m 0 then m else Nat.add m Nat.one in
    let base = Nat.rem (Nat.random_bits ~random_bytes:rb pbits) m in
    let e_full = Nat.random_bits ~random_bytes:rb pbits in
    let plain =
      bench "powmod-barrett" (fun () -> ignore (Nat.powmod_barrett base e_full m))
    in
    let mont = bench "powmod-montgomery" (fun () -> ignore (Nat.powmod base e_full m)) in
    (* simultaneous double exponentiation vs two separate exponentiations,
       at the group-order exponent width of every DLEQ verification *)
    let b2 = Nat.rem (Nat.random_bits ~random_bytes:rb pbits) m in
    let e1 = Nat.random_bits ~random_bytes:rb qbits in
    let e2 = Nat.random_bits ~random_bytes:rb qbits in
    let two =
      bench "two-powmods" (fun () ->
        ignore (Nat.rem (Nat.mul (Nat.powmod base e1 m) (Nat.powmod b2 e2 m)) m))
    in
    let multi = bench "powmod2" (fun () -> ignore (Nat.powmod2 base e1 b2 e2 m)) in
    (* fixed-base window table vs plain powmod, same base and width *)
    let tbl = Nat.Fixed_base.create ~base ~modulus:m ~max_bits:qbits in
    let single = bench "powmod-160bit" (fun () -> ignore (Nat.powmod base e1 m)) in
    let fixed = bench "fixed-base-160bit" (fun () -> ignore (Nat.Fixed_base.pow tbl e1)) in
    (* DLEQ verification: the hot path of coin and decryption shares *)
    let grp = Crypto.Group.generate ~drbg:d ~pbits ~qbits in
    let x = Crypto.Group.random_exponent grp ~drbg:d in
    let g2 = Crypto.Group.hash_to_group grp "perf-dleq-base" in
    let h1 = Crypto.Group.pow_g grp x in
    let h2 = Crypto.Group.pow grp g2 x in
    let h1_tbl = Crypto.Group.precompute grp h1 in
    let proof =
      Crypto.Dleq.prove grp ~drbg:d ~ctx:"perf" ~g1:grp.Crypto.Group.g ~h1 ~g2 ~h2 ~x
    in
    let dleq_ref =
      bench "dleq-verify-reference" (fun () ->
        ignore
          (Crypto.Dleq.verify_reference grp ~ctx:"perf" ~g1:grp.Crypto.Group.g ~h1 ~g2
             ~h2 proof))
    in
    let dleq_fast =
      bench "dleq-verify-fast" (fun () ->
        ignore
          (Crypto.Dleq.verify grp ~ctx:"perf" ~h1_tbl ~g1:grp.Crypto.Group.g ~h1 ~g2 ~h2
           proof))
    in
    (* amortized batch verification: k Shoup signature shares checked as one
       random linear combination vs k one-at-a-time verifications (the
       reference path), n=4 / k=3 as in the protocol smoke runs *)
    if pbits >= 1024 then
      Printf.printf "  (dealing a %d-bit Shoup key: safe-prime search, minutes...)\n%!"
        pbits;
    let tkeys =
      Crypto.Threshold_sig.deal ~drbg:(Hashes.Drbg.fork d "tsig")
        ~modulus_bits:pbits ~nparties:4 ~k:3 ~t:1 ()
    in
    let tpub = tkeys.Crypto.Threshold_sig.public in
    let tshares =
      List.map
        (fun i ->
          Crypto.Threshold_sig.release ~drbg:d tpub
            tkeys.Crypto.Threshold_sig.shares.(i) ~ctx:"perf" "message")
        [ 0; 1; 2 ]
    in
    let _ =
      bench "tsig-verify-share" (fun () ->
        ignore
          (Crypto.Threshold_sig.verify_share tpub ~ctx:"perf" "message"
             (List.hd tshares)))
    in
    let tsig_ref =
      bench "tsig-verify-share-reference" (fun () ->
        ignore
          (Crypto.Threshold_sig.verify_share_reference tpub ~ctx:"perf" "message"
             (List.hd tshares)))
    in
    let tsig_batch =
      bench "tsig-batch-verify-k3" (fun () ->
        match Crypto.Batch.tsig_shares tpub ~ctx:"perf" "message" tshares with
        | Crypto.Batch.All_valid -> ()
        | Crypto.Batch.Invalid _ -> failwith "perf: honest tsig batch rejected")
    in
    (* threshold-coin (DLEQ) shares, same shape *)
    let ckeys =
      Crypto.Threshold_coin.deal ~drbg:(Hashes.Drbg.fork d "coin") ~group:grp ~n:4
        ~k:2 ~t:1
    in
    let cpub = ckeys.Crypto.Threshold_coin.public in
    let cshares =
      List.map
        (fun i ->
          Crypto.Threshold_coin.release ~drbg:d cpub
            ckeys.Crypto.Threshold_coin.shares.(i) ~name:"perf-coin")
        [ 0; 1; 2 ]
    in
    let _ =
      bench "coin-verify-share" (fun () ->
        ignore (Crypto.Threshold_coin.verify_share cpub ~name:"perf-coin" (List.hd cshares)))
    in
    let coin_ref =
      bench "coin-verify-share-reference" (fun () ->
        ignore
          (Crypto.Threshold_coin.verify_share_reference cpub ~name:"perf-coin"
             (List.hd cshares)))
    in
    let coin_batch =
      bench "coin-batch-verify-k3" (fun () ->
        match Crypto.Batch.coin_shares cpub ~name:"perf-coin" cshares with
        | Crypto.Batch.All_valid -> ()
        | Crypto.Batch.Invalid _ -> failwith "perf: honest coin batch rejected")
    in
    (* Speedups from the largest modulus measured (the committed --full
       report therefore quotes them at the paper's 1024 bits). *)
    speedup_bits := pbits;
    speedups :=
      [ ("montgomery", plain /. mont);
        ("multi_exp", two /. multi);
        ("fixed_base", single /. fixed);
        ("dleq_verify", dleq_ref /. dleq_fast);
        ("tsig_batch_verify", 3.0 *. tsig_ref /. tsig_batch);
        ("coin_batch_verify", 3.0 *. coin_ref /. coin_batch) ];
    print_newline ()
  in
  List.iter run_at sizes;
  List.iter
    (fun (n, s) -> Printf.printf "  speedup %-20s %6.2fx  (at %d bits)\n" n s !speedup_bits)
    !speedups;
  let json =
    Printf.sprintf
      "{\n  \"schema\": \"sintra-bench-perf-v2\",\n  \"qbits\": %d,\n  \
       \"speedup_mod_bits\": %d,\n  \"results\": [\n%s\n  ],\n  \
       \"speedups\": {\n%s\n  }\n}\n"
      qbits !speedup_bits
      (String.concat ",\n"
         (List.rev_map
            (fun (n, bits, ms) ->
              Printf.sprintf "    {\"name\": %S, \"mod_bits\": %d, \"ms_per_op\": %.6f}"
                n bits ms)
            !results))
      (String.concat ",\n"
         (List.map (fun (n, s) -> Printf.sprintf "    %S: %.4f" n s) !speedups))
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote %s\n\n" out

let all () =
  print_endline "=== Micro-benchmarks (real wall-clock on this host, pure-OCaml bignum) ===\n";
  print_endline "host `exp' column (paper: 55-427 ms in Java on 2002 hardware):";
  run_group ~name:"modexp" (host_table_tests ());
  print_endline "\natomic channel signatures (Table 1, Figures 4-5):";
  run_group ~name:"rsa" (table1_tests ());
  print_endline "\nthreshold coin (randomized agreement in Figures 4-5):";
  run_group ~name:"coin" (coin_tests ());
  print_endline "\nthreshold signatures (Figure 6):";
  run_group ~name:"tsig" (fig6_tests ());
  print_endline "\nTDH2 threshold encryption (secure channel, Table 1):";
  run_group ~name:"tdh2" (tdh2_tests ());
  print_newline ()
