(* The experiment drivers that regenerate every table and figure of the
   paper's evaluation (Section 4).

   All protocol logic and cryptography are real; the clock is the simulated
   one, driven by (a) the RTT matrix / LAN latency of the paper's test-beds
   and (b) each host's measured 1024-bit-exponentiation cost (the `exp'
   column), scaled by the *modeled* key size.  The real crypto runs at small
   key sizes so a bench finishes in seconds; the virtual time is what the
   paper's plots show. *)

open Sintra

type channel_kind = Atomic | Secure | Reliable | Consistent

let kind_name = function
  | Atomic -> "atomic"
  | Secure -> "secure"
  | Reliable -> "reliable"
  | Consistent -> "consistent"

(* Benchmark configuration: small real keys, paper-sized modeled keys. *)
let bench_cfg ?batch_size ?(scheme = Config.Multi) ?(model_rsa_bits = 1024)
    ?(fast_path = true) ~n ~t () : Config.t =
  Config.make ?batch_size ~tsig_scheme:scheme ~perm_mode:Config.Random_local
    ~crypto_fast_path:fast_path
    ~rsa_bits:256 ~tsig_bits:256 ~dl_pbits:256 ~dl_qbits:96
    ~model_rsa_bits ~model_dl_pbits:1024 ~model_dl_qbits:160 ~n ~t ()

(* Key generation is the slow part of a run; share dealers across
   experiments (model sizes do not affect the dealt keys). *)
let dealer_cache : (string, Dealer.t) Hashtbl.t = Hashtbl.create 8

let make_cluster ~(seed : string) ~(topo : Sim.Topology.t) (cfg : Config.t) : Cluster.t =
  let key =
    Printf.sprintf "%d|%d|%s" cfg.Config.n cfg.Config.t
      (match cfg.Config.tsig_scheme with Config.Shoup -> "s" | Config.Multi -> "m")
  in
  let dealer =
    match Hashtbl.find_opt dealer_cache key with
    | Some d -> d
    | None ->
      let d = Dealer.deal ~seed:"bench-dealer" cfg in
      Hashtbl.replace dealer_cache key d;
      d
  in
  let engine = Sim.Engine.create ~seed:("bench-engine|" ^ seed) () in
  let net = Sim.Net.create ~engine ~topo ~mac_keys:(Dealer.net_mac_keys dealer) in
  let runtimes =
    Array.init cfg.Config.n (fun i ->
      Runtime.create ~engine ~net ~cfg ~keys:dealer.Dealer.parties.(i))
  in
  { Cluster.engine; net; cfg; dealer; runtimes }

type delivery = {
  number : int;           (* delivery index at the measuring party *)
  time : float;           (* virtual seconds *)
  gap : float;            (* seconds since the previous delivery *)
  sender : int;
}

(* Per-experiment metrics, collected after each channel run and written to
   BENCH_trace.json by the harness: message/byte counts, charged CPU time
   and exponentiations per party, so a figure's cost story is inspectable
   without re-running. *)
let metrics_log : (string * string) list ref = ref []

let record_metrics ~(label : string) (c : Cluster.t) : unit =
  metrics_log :=
    (label, Trace.Metrics.to_json (Cluster.publish_metrics c)) :: !metrics_log

let metrics_count () = List.length !metrics_log

let metrics_json () : string =
  let entries = List.rev !metrics_log in
  "[\n"
  ^ String.concat ",\n"
      (List.map
         (fun (label, json) ->
           Printf.sprintf "{\"experiment\":%S,\"metrics\":%s}" label json)
         entries)
  ^ "\n]\n"

(* Run one channel experiment: [senders] each broadcast [per_sender] short
   payloads at maximum capacity from t=0; deliveries are recorded at
   [measure_at].  Returns the delivery series and the cluster. *)
let run_channel ?(seed = "run") ~(topo : Sim.Topology.t) ~(cfg : Config.t)
    ~(kind : channel_kind) ~(senders : int list) ~(per_sender : int)
    ~(measure_at : int) () : delivery list =
  let c = make_cluster ~seed ~topo cfg in
  let n = cfg.Config.n in
  let deliveries = ref [] in
  let count = ref 0 in
  let last = ref 0.0 in
  let record sender =
    let now = Cluster.now c in
    incr count;
    deliveries := { number = !count; time = now; gap = now -. !last; sender } :: !deliveries;
    last := now
  in
  let on_deliver i ~sender (_ : string) = if i = measure_at then record sender in
  let send_fns =
    match kind with
    | Atomic ->
      let chans =
        Array.init n (fun i ->
          Atomic_channel.create (Cluster.runtime c i) ~pid:"bench"
            ~on_deliver:(on_deliver i) ())
      in
      Array.map (fun ch payload -> Atomic_channel.send ch payload) chans
    | Secure ->
      let chans =
        Array.init n (fun i ->
          Secure_atomic_channel.create (Cluster.runtime c i) ~pid:"bench"
            ~on_deliver:(on_deliver i) ())
      in
      Array.map (fun ch payload -> Secure_atomic_channel.send ch payload) chans
    | Reliable ->
      let chans =
        Array.init n (fun i ->
          Reliable_channel.create (Cluster.runtime c i) ~pid:"bench"
            ~on_deliver:(on_deliver i) ())
      in
      Array.map (fun ch payload -> Reliable_channel.send ch payload) chans
    | Consistent ->
      let chans =
        Array.init n (fun i ->
          Consistent_channel.create (Cluster.runtime c i) ~pid:"bench"
            ~on_deliver:(on_deliver i) ())
      in
      Array.map (fun ch payload -> Consistent_channel.send ch payload) chans
  in
  List.iter
    (fun s ->
      for k = 0 to per_sender - 1 do
        let payload = Printf.sprintf "p%d-m%d-xxxxxxxxxxxx" s k in  (* < 32 bytes *)
        Cluster.inject c s (fun () -> send_fns.(s) payload)
      done)
    senders;
  ignore (Cluster.run c ~max_events:50_000_000);
  record_metrics c
    ~label:(Printf.sprintf "%s|%s|%s" (kind_name kind) topo.Sim.Topology.label seed);
  List.rev !deliveries

(* --- Figure 3: the WAN topology --- *)

let fig3 () =
  print_endline "=== Figure 3: Internet test-bed, average round-trip times (ms) ===";
  print_endline "(pairwise RTTs as encoded in the simulator's latency model)\n";
  let names = [| "Zurich"; "Tokyo"; "NewYork"; "California" |] in
  Printf.printf "%12s" "";
  Array.iter (Printf.printf "%12s") names;
  print_newline ();
  Array.iteri
    (fun i row ->
      Printf.printf "%12s" names.(i);
      Array.iter (fun v -> Printf.printf "%12.0f" v) row;
      print_newline ())
    Sim.Topology.internet_rtt;
  print_endline "\npaper: RTTs between 93 and 373 ms; Tokyo hardest to reach.\n"

(* --- Figures 4 and 5: per-delivery latency series --- *)

let band_summary (ds : delivery list) =
  let gaps = List.map (fun d -> d.gap) ds in
  let zero_band = List.filter (fun g -> g < 0.05) gaps in
  let upper = List.filter (fun g -> g >= 0.05) gaps in
  let mean l = if l = [] then 0.0 else List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  let sorted = List.sort compare upper in
  let pct p =
    match sorted with
    | [] -> 0.0
    | _ -> List.nth sorted (min (List.length sorted - 1)
                              (int_of_float (p *. float_of_int (List.length sorted))))
  in
  (List.length zero_band, List.length upper, mean upper, pct 0.1, pct 0.5, pct 0.9)

let print_series_summary ~(label : string) (ds : delivery list) ~(host_names : string array) =
  let zeros, uppers, mean_u, p10, p50, p90 = band_summary ds in
  Printf.printf "%s: %d deliveries\n" label (List.length ds);
  Printf.printf
    "  batch-mate band (gap < 0.05s): %d points;  round band: %d points\n"
    zeros uppers;
  Printf.printf "  round band gaps: mean %.2fs, p10 %.2fs, median %.2fs, p90 %.2fs\n"
    mean_u p10 p50 p90;
  (* who gets delivered when: first/last delivery index per sender *)
  let senders = List.sort_uniq compare (List.map (fun d -> d.sender) ds) in
  List.iter
    (fun s ->
      let mine = List.filter (fun d -> d.sender = s) ds in
      let nums = List.map (fun d -> d.number) mine in
      Printf.printf "  sender %-14s: %4d msgs, delivery numbers %d..%d\n"
        host_names.(s) (List.length mine)
        (List.fold_left min max_int nums) (List.fold_left max 0 nums))
    senders

let write_csv ~(path : string) (ds : delivery list) =
  let oc = open_out path in
  output_string oc "delivery,time_s,gap_s,sender\n";
  List.iter
    (fun d -> Printf.fprintf oc "%d,%.6f,%.6f,%d\n" d.number d.time d.gap d.sender)
    ds;
  close_out oc;
  Printf.printf "  (full series written to %s)\n" path

let fig4 ?(fast_path = true) ~(messages : int) () =
  print_endline "=== Figure 4: AtomicChannel delivery times on the LAN ===";
  Printf.printf
    "setup: n=4 t=1 batch=t+1, senders P0/Linux P2/AIX P3/Win2k, %d messages,\n\
     measured at P0; multi-signatures; modeled 1024-bit keys%s.\n\n" messages
    (if fast_path then "" else "; fast-path cost accounting OFF");
  let cfg = bench_cfg ~fast_path ~n:4 ~t:1 () in
  let per = messages / 3 in
  let ds =
    run_channel ~seed:"fig4" ~topo:Sim.Topology.lan ~cfg ~kind:Atomic
      ~senders:[ 0; 2; 3 ] ~per_sender:per ~measure_at:0 ()
  in
  let names = Array.map (fun h -> h.Sim.Topology.name) Sim.Topology.lan.Sim.Topology.hosts in
  print_series_summary ~label:"LAN series" ds ~host_names:names;
  write_csv ~path:(if fast_path then "fig4.csv" else "fig4-nofast.csv") ds;
  print_endline
    "\npaper: two bands - 0s (second message of each batch) and 0.5-1s (round\n\
     time); P0's messages delivered first, P3/Win2k (slowest host) last.\n"

let fig5 ?(fast_path = true) ~(messages : int) () =
  print_endline "=== Figure 5: AtomicChannel delivery times on the Internet ===";
  Printf.printf
    "setup: n=4 t=1 batch=t+1, senders Zurich Tokyo NewYork, %d messages,\n\
     measured at Zurich; multi-signatures; modeled 1024-bit keys%s.\n\n" messages
    (if fast_path then "" else "; fast-path cost accounting OFF");
  let cfg = bench_cfg ~fast_path ~n:4 ~t:1 () in
  let per = messages / 3 in
  let ds =
    run_channel ~seed:"fig5" ~topo:Sim.Topology.internet ~cfg ~kind:Atomic
      ~senders:[ 0; 1; 2 ] ~per_sender:per ~measure_at:0 ()
  in
  let names = Array.map (fun h -> h.Sim.Topology.name) Sim.Topology.internet.Sim.Topology.hosts in
  print_series_summary ~label:"Internet series" ds ~host_names:names;
  (* the paper's second feature: two upper bands separated by ~1 ABA *)
  let uppers = List.filter (fun d -> d.gap >= 0.05) ds in
  let lower_band = List.filter (fun d -> d.gap < 2.75) uppers in
  let upper_band = List.filter (fun d -> d.gap >= 2.75) uppers in
  Printf.printf
    "  round-band split at 2.75s: %d fast rounds (one agreement), %d slow\n\
     rounds (extra binary agreement) = %.0f%% of round band\n"
    (List.length lower_band) (List.length upper_band)
    (100.0 *. float_of_int (List.length upper_band)
     /. float_of_int (max 1 (List.length uppers)));
  write_csv ~path:(if fast_path then "fig5.csv" else "fig5-nofast.csv") ds;
  print_endline
    "\npaper: bands at 2-2.5s and 3-3.5s (~1/4 of points need a second binary\n\
     agreement); NewYork delivered first, Tokyo (best CPU, worst connectivity)\n\
     last - order driven by connectivity, not speed.\n"

(* --- Table 1: average delivery times across channels and setups --- *)

let table1 ~(messages : int) () =
  print_endline "=== Table 1: average delivery times (s), one sender (P0/Zurich) ===";
  Printf.printf "%d messages per run; multi-signatures; modeled 1024-bit keys.\n\n" messages;
  let setups =
    [ ("LAN", Sim.Topology.lan, 4, 1);
      ("Internet", Sim.Topology.internet, 4, 1);
      ("LAN+I'net", Sim.Topology.combined, 7, 2) ]
  in
  let kinds = [ Atomic; Secure; Reliable; Consistent ] in
  Printf.printf "%-10s %10s %10s %10s %10s\n" "Setup" "atomic" "secure" "reliable" "consistent";
  let paper =
    [ ("LAN", [ 0.69; 1.07; 0.13; 0.11 ]);
      ("Internet", [ 2.95; 3.61; 0.72; 0.83 ]);
      ("LAN+I'net", [ 2.74; 3.79; 0.60; 0.64 ]) ]
  in
  List.iter
    (fun (label, topo, n, t) ->
      let cfg = bench_cfg ~n ~t () in
      Printf.printf "%-10s" label;
      List.iter
        (fun kind ->
          let ds =
            run_channel ~seed:("table1-" ^ label ^ kind_name kind) ~topo ~cfg ~kind
              ~senders:[ 0 ] ~per_sender:messages ~measure_at:0 ()
          in
          let avg =
            match ds with
            | [] | [ _ ] -> nan
            | first :: _ ->
              let last = List.nth ds (List.length ds - 1) in
              (last.time -. first.time) /. float_of_int (List.length ds - 1)
          in
          Printf.printf " %10.2f" avg)
        kinds;
      print_newline ())
    setups;
  print_endline "\npaper reported:";
  Printf.printf "%-10s %10s %10s %10s %10s\n" "Setup" "atomic" "secure" "reliable" "consistent";
  List.iter
    (fun (label, vals) ->
      Printf.printf "%-10s" label;
      List.iter (fun v -> Printf.printf " %10.2f" v) vals;
      print_newline ())
    paper;
  print_endline
    "\nshape checks: reliable/consistent fastest; atomic 4-6x consistent;\n\
     secure = atomic + 0.5-1s threshold decryption.\n"

(* --- Figure 6: delivery time vs public-key size --- *)

let fig6 ~(messages : int) () =
  print_endline "=== Figure 6: average delivery time vs public-key size ===";
  Printf.printf
    "AtomicChannel, one sender, %d messages; modeled RSA key size sweeps\n\
     128..1024 bits for both threshold-signature implementations.\n\n" messages;
  let keysizes = [ 128; 256; 512; 1024 ] in
  let schemes = [ (Config.Shoup, "ts"); (Config.Multi, "multi") ] in
  let setups = [ ("LAN", Sim.Topology.lan); ("Internet", Sim.Topology.internet) ] in
  Printf.printf "%-16s" "series";
  List.iter (fun k -> Printf.printf " %8d" k) keysizes;
  print_newline ();
  List.iter
    (fun (setup_label, topo) ->
      List.iter
        (fun (scheme, scheme_label) ->
          Printf.printf "%-16s" (Printf.sprintf "%s %s" setup_label scheme_label);
          List.iter
            (fun bits ->
              let cfg = bench_cfg ~scheme ~model_rsa_bits:bits ~n:4 ~t:1 () in
              let ds =
                run_channel
                  ~seed:(Printf.sprintf "fig6-%s-%s-%d" setup_label scheme_label bits)
                  ~topo ~cfg ~kind:Atomic ~senders:[ 0 ] ~per_sender:messages
                  ~measure_at:0 ()
              in
              let avg =
                match ds with
                | [] | [ _ ] -> nan
                | first :: _ ->
                  let last = List.nth ds (List.length ds - 1) in
                  (last.time -. first.time) /. float_of_int (List.length ds - 1)
              in
              Printf.printf " %8.2f" avg)
            keysizes;
          print_newline ())
        schemes)
    setups;
  print_endline
    "\npaper: multi-signature curves flat in the key size (CRT signing is\n\
     cheap); threshold-signature curves rise above 256 bits - by ~4x per\n\
     doubling on the LAN, < 2x on the Internet where latency masks CPU.\n"

(* --- host tables: the `exp' column, as used by the cost model --- *)

let hosts () =
  print_endline "=== Host tables (Section 4): 1024-bit modexp cost driving the cost model ===\n";
  let dump label (topo : Sim.Topology.t) =
    Printf.printf "%s:\n" label;
    Array.iter
      (fun h -> Printf.printf "  %-16s exp = %5.0f ms\n" h.Sim.Topology.name h.Sim.Topology.exp_ms)
      topo.Sim.Topology.hosts;
    print_newline ()
  in
  dump "LAN setup" Sim.Topology.lan;
  dump "Internet setup" Sim.Topology.internet;
  dump "Combined setup (n=7, t=2)" Sim.Topology.combined
