(* The throughput section of the bench harness: latency-vs-offered-load
   curves for batched vs unbatched atomic broadcast (lib/load sweep),
   written to BENCH_throughput.json.

   Quick mode runs the CI-sized smoke sweep; --full runs the real thing
   (n in {4, 7, 10}, five offered rates, 10 virtual seconds per point) and
   is what the committed BENCH_throughput.json is regenerated with. *)

let run ~(quick : bool) () : unit =
  print_endline "--- throughput: batched vs unbatched atomic broadcast ---";
  let report = Load.Sweep.run ~smoke:quick () in
  List.iter
    (fun (s : Load.Sweep.series) ->
      Printf.printf "\nn=%d t=%d, %s (open-loop ladder, then closed-loop):\n"
        s.Load.Sweep.n s.Load.Sweep.t
        (if s.Load.Sweep.batched then "batched" else "unbatched (max_batch=1)");
      Printf.printf "  %12s %14s %12s %12s\n" "offered/s" "throughput/s"
        "p50 (s)" "p90 (s)";
      List.iter
        (fun (p : Load.Sweep.point) ->
          Printf.printf "  %12.1f %14.1f %12.3f %12.3f\n"
            p.Load.Sweep.offered_per_s p.Load.Sweep.throughput_per_s
            p.Load.Sweep.latency_p50_s p.Load.Sweep.latency_p90_s)
        s.Load.Sweep.points;
      let sat = s.Load.Sweep.saturation in
      Printf.printf "  %12s %14.1f %12.3f %12.3f  (%d rounds)\n" "closed-loop"
        sat.Load.Sweep.throughput_per_s sat.Load.Sweep.latency_p50_s
        sat.Load.Sweep.latency_p90_s s.Load.Sweep.rounds)
    report.Load.Sweep.series;
  (match
     ( Load.Sweep.saturation_throughput report ~n:4 ~batched:true,
       Load.Sweep.saturation_throughput report ~n:4 ~batched:false )
   with
   | Some b, Some u when u > 0.0 ->
     Printf.printf "\nn=4 batched/unbatched saturation ratio: %.2fx\n" (b /. u)
   | _ -> ());
  let path = "BENCH_throughput.json" in
  let oc = open_out path in
  output_string oc (Load.Sweep.to_json report);
  close_out oc;
  Printf.printf "wrote %s\n\n" path
